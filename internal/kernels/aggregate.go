package kernels

import (
	"context"

	"graphite/internal/graph"
	"graphite/internal/sched"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// Options tunes the optimized aggregation kernels. Zero values pick the
// defaults the paper's constants suggest.
type Options struct {
	// Threads is the worker count (<=0 uses GOMAXPROCS).
	Threads int
	// TaskSize is T in Algorithm 1: vertices per dynamically-scheduled
	// task (default 256).
	TaskSize int
	// PrefetchDistance is D in Algorithm 1 (default 4; 0 disables the
	// software-prefetch emulation).
	PrefetchDistance int
	// Order is the vertex processing order M (§4.4); nil means natural
	// order. Must be a permutation of the vertex set.
	Order []int32
	// Tel receives kernel counters and scheduler accounting; nil disables
	// instrumentation at the cost of one branch per claimed chunk.
	Tel *telemetry.Sink
}

func (o Options) taskSize() int {
	if o.TaskSize <= 0 {
		return 256
	}
	return o.TaskSize
}

func (o Options) vertexAt(i int) int {
	if o.Order == nil {
		return i
	}
	return int(o.Order[i])
}

// AggregateVertex computes one vertex's aggregation feature vector:
// dst = Σ_{e∈row v} factors[e]·src[Col[e]] (Lines 4-7 of Algorithm 1).
// The self edge is part of the row (AddSelfLoops), so N(v) ∪ {v} needs no
// special case.
func AggregateVertex(dst []float32, g *graph.CSR, factors []float32, src Source, v int) {
	clear(dst)
	for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
		src.AXPYRow(dst, int(g.Col[e]), factors[e])
	}
}

// prefetchVertex touches the first cache lines of every input row vertex v
// will gather (Line 9 of Algorithm 1).
func prefetchVertex(g *graph.CSR, src Source, v int) float32 {
	var sink float32
	for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
		sink += src.Touch(int(g.Col[e]))
	}
	return sink
}

// Basic is the paper's parallel vectorized aggregation (Algorithm 1):
// dynamic scheduling over vertex chunks, width-specialised inner loops, and
// software prefetch of the features needed D vertices ahead. A worker panic
// re-panics on the calling goroutine as a *sched.WorkerError; BasicCtx is
// the error-returning, cancellable form.
func Basic(out *tensor.Matrix, g *graph.CSR, factors []float32, src Source, opt Options) {
	if err := BasicCtx(context.Background(), out, g, factors, src, opt); err != nil {
		panic(err)
	}
}

// BasicCtx is Basic observing ctx at task boundaries and returning worker
// panics as *sched.WorkerError instead of crashing. With a background
// context the scheduler's uncancellable fast path is taken, so the kernel
// pays nothing per row for the error plumbing.
func BasicCtx(ctx context.Context, out *tensor.Matrix, g *graph.CSR, factors []float32, src Source, opt Options) error {
	n := g.NumVertices()
	checkAggArgs(out, n, g.NumEdges(), factors, src)
	dist := opt.PrefetchDistance
	_, srcCompressed := src.(*CompressedSource)
	return sched.DynamicTelCtx(ctx, n, opt.taskSize(), opt.Threads, opt.Tel, func(_, start, end int) {
		var sink float32
		var edges int64
		for i := start; i < end; i++ {
			v := opt.vertexAt(i)
			edges += int64(g.Ptr[v+1] - g.Ptr[v])
			AggregateVertex(out.Row(v), g, factors, src, v)
			if dist > 0 && i+dist < n {
				sink += prefetchVertex(g, src, opt.vertexAt(i+dist))
			}
		}
		foldSink(sink)
		countAggregate(opt.Tel, int64(end-start), edges, srcCompressed)
	})
}

// countAggregate flushes one task's aggregation counts: vertex rows
// produced, edges traversed, and (for compressed sources) one row expansion
// per edge gather. One call per claimed chunk keeps atomics off the
// per-edge path.
func countAggregate(tel *telemetry.Sink, vertices, edges int64, srcCompressed bool) {
	if !tel.Enabled() {
		return
	}
	tel.Add(telemetry.CtrVerticesAggregated, vertices)
	tel.Add(telemetry.CtrEdgesAggregated, edges)
	if srcCompressed {
		tel.Add(telemetry.CtrRowsDecompressed, edges)
	}
}

// AggregateBlock aggregates the vertices at positions [posStart, posEnd) of
// the processing order into consecutive rows of dst starting at dstRow,
// with prefetch for the next block. It is the aggregation half of one
// j-loop iteration of the fused kernel (Algorithm 2, Lines 3-7); the fused
// drivers in the gnn package pair it with their update.
func AggregateBlock(dst *tensor.Matrix, dstRow int, g *graph.CSR, factors []float32, src Source, opt Options, posStart, posEnd int) {
	n := g.NumVertices()
	dist := opt.PrefetchDistance
	var sink float32
	for i := posStart; i < posEnd; i++ {
		v := opt.vertexAt(i)
		AggregateVertex(dst.Row(dstRow+i-posStart), g, factors, src, v)
		if dist > 0 && i+dist < n {
			sink += prefetchVertex(g, src, opt.vertexAt(i+dist))
		}
	}
	foldSink(sink)
}

// AggregateBlockByVertex is AggregateBlock writing each vertex's result to
// its own row of dst (dst row index = vertex id), as the fused training
// kernel needs: the full aggregation matrix a is kept for back-propagation
// (§4.2), so rows live at their global positions.
func AggregateBlockByVertex(dst *tensor.Matrix, g *graph.CSR, factors []float32, src Source, opt Options, posStart, posEnd int) {
	n := g.NumVertices()
	dist := opt.PrefetchDistance
	var sink float32
	for i := posStart; i < posEnd; i++ {
		v := opt.vertexAt(i)
		AggregateVertex(dst.Row(v), g, factors, src, v)
		if dist > 0 && i+dist < n {
			sink += prefetchVertex(g, src, opt.vertexAt(i+dist))
		}
	}
	foldSink(sink)
}

// DistGNN is the baseline aggregation standing in for DistGNN's
// single-socket kernel (§6): statically scheduled over contiguous vertex
// ranges, generic (non-specialised) inner loop, no software prefetch, no
// processing-order support. The evaluation normalises everything to this.
func DistGNN(out *tensor.Matrix, g *graph.CSR, factors []float32, h *tensor.Matrix, threads int) {
	DistGNNTel(out, g, factors, h, threads, nil)
}

// DistGNNTel is DistGNN with kernel counters and per-worker accounting.
func DistGNNTel(out *tensor.Matrix, g *graph.CSR, factors []float32, h *tensor.Matrix, threads int, tel *telemetry.Sink) {
	if err := DistGNNCtx(context.Background(), out, g, factors, h, threads, tel); err != nil {
		panic(err)
	}
}

// DistGNNCtx is DistGNNTel with cancellation (checked before each worker's
// static range) and panic containment.
func DistGNNCtx(ctx context.Context, out *tensor.Matrix, g *graph.CSR, factors []float32, h *tensor.Matrix, threads int, tel *telemetry.Sink) error {
	n := g.NumVertices()
	checkAggArgs(out, n, g.NumEdges(), factors, NewDenseSource(h))
	return sched.StaticTelCtx(ctx, n, threads, tel, func(_, start, end int) {
		var edges int64
		for v := start; v < end; v++ {
			dst := out.Row(v)
			clear(dst)
			edges += int64(g.Ptr[v+1] - g.Ptr[v])
			for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
				tensor.AXPY(dst, h.Row(int(g.Col[e])), factors[e])
			}
		}
		countAggregate(tel, int64(end-start), edges, false)
	})
}
