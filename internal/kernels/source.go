// Package kernels implements the aggregation-phase kernels: the paper's
// parallel vectorized aggregation (§4.1, Algorithm 1), the block helpers the
// fused drivers build on (§4.2, Algorithm 2), and the DistGNN-style baseline
// aggregation the evaluation compares against (§6).
//
// All kernels are output-parallel: each task owns disjoint rows of the
// aggregation matrix and every other operand is read-only, so no
// synchronization is needed (§4.1).
package kernels

import (
	"fmt"
	"math"

	"graphite/internal/compress"
	"graphite/internal/tensor"
)

// Source abstracts where the input feature rows come from: a dense
// tensor.Matrix or a compressed compress.Matrix (§4.3). The kernels only
// ever accumulate rows (gather + ψ + reduce in one pass) and touch rows for
// prefetching, so the interface stays minimal and the per-row cost
// amortises the dynamic dispatch.
type Source interface {
	// Cols is the feature vector length F.
	Cols() int
	// Rows is the number of feature vectors.
	Rows() int
	// AXPYRow accumulates dst += alpha · row(i).
	AXPYRow(dst []float32, i int, alpha float32)
	// Touch reads the first cache lines of row i and returns a value
	// derived from them, emulating the paper's software prefetch of "only
	// the first two cache lines of each feature vector" (§4.1). The
	// caller folds the return value into a live sink so the loads are not
	// dead-code eliminated.
	Touch(i int) float32
}

// DenseSource adapts a tensor.Matrix. The AXPY inner loop is specialised at
// construction time for the row width — the substitute for the paper's JIT
// assembler, which generates a kernel "tailored to each layer's
// specification" once per session (§4.1): the specialised closure has a
// fixed trip count and no tail handling.
type DenseSource struct {
	m    *tensor.Matrix
	axpy func(dst, src []float32, alpha float32)
}

// NewDenseSource wraps m.
func NewDenseSource(m *tensor.Matrix) *DenseSource {
	return &DenseSource{m: m, axpy: MakeAXPY(m.Cols)}
}

// Cols implements Source.
func (s *DenseSource) Cols() int { return s.m.Cols }

// Rows implements Source.
func (s *DenseSource) Rows() int { return s.m.Rows }

// AXPYRow implements Source.
func (s *DenseSource) AXPYRow(dst []float32, i int, alpha float32) {
	s.axpy(dst, s.m.Row(i), alpha)
}

// Touch implements Source.
func (s *DenseSource) Touch(i int) float32 {
	row := s.m.RowPadded(i)
	v := row[0]
	if len(row) > tensor.LineFloats {
		v += row[tensor.LineFloats]
	}
	return v
}

// CompressedSource adapts a compress.Matrix.
type CompressedSource struct {
	m *compress.Matrix
}

// NewCompressedSource wraps m.
func NewCompressedSource(m *compress.Matrix) *CompressedSource {
	return &CompressedSource{m: m}
}

// Cols implements Source.
func (s *CompressedSource) Cols() int { return s.m.Cols }

// Rows implements Source.
func (s *CompressedSource) Rows() int { return s.m.Rows }

// AXPYRow implements Source. Decompression happens on the fly against the
// mask (Fig. 6c) fused with the reduction, so the dense row is never
// materialised.
func (s *CompressedSource) AXPYRow(dst []float32, i int, alpha float32) {
	s.m.AXPYRow(dst, i, alpha)
}

// Touch implements Source.
func (s *CompressedSource) Touch(i int) float32 {
	mask := s.m.Mask(i)
	return float32(mask[0] & 1)
}

// MakeAXPY returns an axpy specialised for the given vector width. Widths
// that are a multiple of 16 (one cache line of floats — the common case for
// the paper's 256-wide hidden features) get a tail-free 8-way-unrolled
// loop; other widths get the generic version.
func MakeAXPY(cols int) func(dst, src []float32, alpha float32) {
	if cols >= 16 && cols%16 == 0 {
		return func(dst, src []float32, alpha float32) {
			_ = dst[cols-1]
			_ = src[cols-1]
			for j := 0; j < cols; j += 8 {
				dst[j] += alpha * src[j]
				dst[j+1] += alpha * src[j+1]
				dst[j+2] += alpha * src[j+2]
				dst[j+3] += alpha * src[j+3]
				dst[j+4] += alpha * src[j+4]
				dst[j+5] += alpha * src[j+5]
				dst[j+6] += alpha * src[j+6]
				dst[j+7] += alpha * src[j+7]
			}
		}
	}
	return func(dst, src []float32, alpha float32) {
		tensor.AXPY(dst[:cols], src[:cols], alpha)
	}
}

// checkAggArgs validates the common kernel preconditions.
func checkAggArgs(out *tensor.Matrix, numVertices, numEdges int, factors []float32, src Source) {
	if out.Rows != numVertices {
		panic(fmt.Sprintf("kernels: output rows %d, want %d", out.Rows, numVertices))
	}
	if src.Rows() != numVertices {
		panic(fmt.Sprintf("kernels: source rows %d, want %d", src.Rows(), numVertices))
	}
	if out.Cols != src.Cols() {
		panic(fmt.Sprintf("kernels: output cols %d, source cols %d", out.Cols, src.Cols()))
	}
	if len(factors) != numEdges {
		panic(fmt.Sprintf("kernels: factor array length %d, want %d", len(factors), numEdges))
	}
}

// foldSink keeps prefetch-touch loads alive without a data race: the
// comparison consumes the value, and no real feature equals MaxFloat32.
func foldSink(sink float32) {
	if sink == math.MaxFloat32 {
		panic("kernels: prefetch sink observed sentinel value")
	}
}
