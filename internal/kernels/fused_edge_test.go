package kernels

import (
	"math/rand"
	"testing"

	"graphite/internal/compress"
	"graphite/internal/graph"
	"graphite/internal/locality"
	"graphite/internal/sparse"
	"graphite/internal/tensor"
)

// TestCompressedSourceWithOrder combines compression and a processing
// order, the paper's "combined + locality" configuration, at kernel level.
func TestCompressedSourceWithOrder(t *testing.T) {
	g, f, h := fixture(t, graph.Products, 260, 96)
	want := reference(g, f, h)
	cm := compress.FromDense(h, 2)
	got := tensor.NewMatrix(g.NumVertices(), 96)
	Basic(got, g, f, NewCompressedSource(cm), Options{
		Threads: 3, Order: locality.Reorder(g), PrefetchDistance: 4, TaskSize: 13,
	})
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("max diff %g", d)
	}
}

// TestStarGraphLoadImbalance: one vertex owns nearly all the work; every
// kernel must still be correct.
func TestStarGraphLoadImbalance(t *testing.T) {
	g, err := graph.Star(500)
	if err != nil {
		t.Fatal(err)
	}
	g = g.AddSelfLoops()
	f := sparse.Factors(g, sparse.NormMean)
	h := tensor.NewMatrix(500, 24)
	h.FillRandom(rand.New(rand.NewSource(4)), 1)
	want := reference(g, f, h)
	got := tensor.NewMatrix(500, 24)
	Basic(got, g, f, NewDenseSource(h), Options{Threads: 4, TaskSize: 8})
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("basic on star: max diff %g", d)
	}
	DistGNN(got, g, f, h, 4)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("distgnn on star: max diff %g", d)
	}
}

// TestSingleVertexGraph is the smallest possible aggregation.
func TestSingleVertexGraph(t *testing.T) {
	g, err := graph.FromEdges(1, []int32{0}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	f := sparse.Factors(g, sparse.NormMean)
	h := tensor.NewMatrix(1, 4)
	h.Set(0, 2, 7)
	out := tensor.NewMatrix(1, 4)
	Basic(out, g, f, NewDenseSource(h), Options{})
	if out.At(0, 2) != 7 {
		t.Fatalf("self mean aggregation got %g", out.At(0, 2))
	}
}

// TestPrefetchDistanceBeyondEnd must not panic near the end of the order.
func TestPrefetchDistanceBeyondEnd(t *testing.T) {
	g, f, h := fixture(t, graph.Wikipedia, 40, 16)
	out := tensor.NewMatrix(g.NumVertices(), 16)
	Basic(out, g, f, NewDenseSource(h), Options{PrefetchDistance: 1000})
	if d := tensor.MaxAbsDiff(out, reference(g, f, h)); d > 1e-4 {
		t.Fatalf("max diff %g", d)
	}
}

func BenchmarkCompressedAggregation(b *testing.B) {
	g, f, h := fixture(b, graph.Products, 2000, 256)
	cm := compress.FromDense(h, 0)
	out := tensor.NewMatrix(g.NumVertices(), 256)
	src := NewCompressedSource(cm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Basic(out, g, f, src, Options{Threads: 2})
	}
}
