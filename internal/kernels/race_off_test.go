//go:build !race

package kernels

// raceEnabled gates the AllocsPerRun assertions: race instrumentation
// allocates shadow state, so the zero-alloc tests only run without -race
// (CI runs them as a separate non-race step).
const raceEnabled = false
