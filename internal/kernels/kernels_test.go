package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphite/internal/compress"
	"graphite/internal/graph"
	"graphite/internal/locality"
	"graphite/internal/sparse"
	"graphite/internal/tensor"
)

func fixture(t testing.TB, p graph.Profile, n, cols int) (*graph.CSR, []float32, *tensor.Matrix) {
	t.Helper()
	g, err := graph.GenerateProfile(p, n)
	if err != nil {
		t.Fatal(err)
	}
	g = g.AddSelfLoops()
	f := sparse.Factors(g, sparse.NormGCN)
	h := tensor.NewMatrix(g.NumVertices(), cols)
	h.FillSparse(rand.New(rand.NewSource(11)), 1, 0.5)
	return g, f, h
}

func reference(g *graph.CSR, f []float32, h *tensor.Matrix) *tensor.Matrix {
	out := tensor.NewMatrix(g.NumVertices(), h.Cols)
	sparse.SpMM(out, g, f, h, 1)
	return out
}

func TestBasicMatchesSpMM(t *testing.T) {
	for _, cols := range []int{5, 16, 100, 256} {
		g, f, h := fixture(t, graph.Wikipedia, 300, cols)
		want := reference(g, f, h)
		got := tensor.NewMatrix(g.NumVertices(), cols)
		Basic(got, g, f, NewDenseSource(h), Options{Threads: 3, TaskSize: 17, PrefetchDistance: 4})
		if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("cols=%d: max diff %g", cols, d)
		}
	}
}

func TestBasicCompressedMatchesDense(t *testing.T) {
	g, f, h := fixture(t, graph.Products, 300, 128)
	want := reference(g, f, h)
	cm := compress.FromDense(h, 2)
	got := tensor.NewMatrix(g.NumVertices(), 128)
	Basic(got, g, f, NewCompressedSource(cm), Options{Threads: 2, PrefetchDistance: 2})
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("max diff %g", d)
	}
}

func TestBasicWithProcessingOrder(t *testing.T) {
	g, f, h := fixture(t, graph.Products, 250, 32)
	want := reference(g, f, h)
	for _, order := range [][]int32{
		locality.Reorder(g),
		locality.Randomized(g.NumVertices(), 5),
	} {
		got := tensor.NewMatrix(g.NumVertices(), 32)
		Basic(got, g, f, NewDenseSource(h), Options{Threads: 2, Order: order, PrefetchDistance: 3})
		if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("order changed results: max diff %g", d)
		}
	}
}

func TestDistGNNMatchesSpMM(t *testing.T) {
	g, f, h := fixture(t, graph.Twitter, 300, 64)
	want := reference(g, f, h)
	got := tensor.NewMatrix(g.NumVertices(), 64)
	DistGNN(got, g, f, h, 3)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("max diff %g", d)
	}
}

func TestAggregateBlockConsecutiveRows(t *testing.T) {
	g, f, h := fixture(t, graph.Wikipedia, 120, 48)
	want := reference(g, f, h)
	order := locality.Reorder(g)
	opt := Options{Order: order, PrefetchDistance: 2}
	buf := tensor.NewMatrix(16, 48)
	AggregateBlock(buf, 0, g, f, NewDenseSource(h), opt, 32, 48)
	for i := 0; i < 16; i++ {
		v := int(order[32+i])
		for j := 0; j < 48; j++ {
			if d := buf.At(i, j) - want.At(v, j); d > 1e-4 || d < -1e-4 {
				t.Fatalf("block row %d (vertex %d) col %d: %g vs %g", i, v, j, buf.At(i, j), want.At(v, j))
			}
		}
	}
}

func TestAggregateBlockByVertexRows(t *testing.T) {
	g, f, h := fixture(t, graph.Wikipedia, 120, 48)
	want := reference(g, f, h)
	order := locality.Randomized(g.NumVertices(), 1)
	opt := Options{Order: order}
	out := tensor.NewMatrix(g.NumVertices(), 48)
	AggregateBlockByVertex(out, g, f, NewDenseSource(h), opt, 0, g.NumVertices())
	if d := tensor.MaxAbsDiff(out, want); d > 1e-4 {
		t.Fatalf("max diff %g", d)
	}
}

func TestZeroDegreeVertexYieldsZeroRow(t *testing.T) {
	// Vertex 2 has no edges at all (no self loop added).
	g, err := graph.FromEdges(3, []int32{0, 1}, []int32{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	f := sparse.Factors(g, sparse.NormSum)
	h := tensor.NewMatrix(3, 8)
	h.FillRandom(rand.New(rand.NewSource(1)), 1)
	out := tensor.NewMatrix(3, 8)
	for j := 0; j < 8; j++ {
		out.Set(2, j, 99) // stale garbage that must be cleared
	}
	Basic(out, g, f, NewDenseSource(h), Options{Threads: 1})
	for j := 0; j < 8; j++ {
		if out.At(2, j) != 0 {
			t.Fatalf("isolated vertex row not zeroed: col %d = %g", j, out.At(2, j))
		}
	}
}

func TestMakeAXPYSpecializedMatchesGeneric(t *testing.T) {
	f := func(seed int64, colsSel uint8) bool {
		cols := []int{16, 32, 256, 7, 100, 1}[int(colsSel)%6]
		rng := rand.New(rand.NewSource(seed))
		dst1 := make([]float32, cols)
		dst2 := make([]float32, cols)
		src := make([]float32, cols)
		for j := range src {
			src[j] = rng.Float32()
			dst1[j] = rng.Float32()
			dst2[j] = dst1[j]
		}
		MakeAXPY(cols)(dst1, src, 0.7)
		tensor.AXPY(dst2, src, 0.7)
		for j := range dst1 {
			if dst1[j] != dst2[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAggArgsPanics(t *testing.T) {
	g, f, h := fixture(t, graph.Products, 50, 16)
	cases := []func(){
		func() { Basic(tensor.NewMatrix(10, 16), g, f, NewDenseSource(h), Options{}) },
		func() { Basic(tensor.NewMatrix(g.NumVertices(), 8), g, f, NewDenseSource(h), Options{}) },
		func() { Basic(tensor.NewMatrix(g.NumVertices(), 16), g, f[:3], NewDenseSource(h), Options{}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkBasicAggregation(b *testing.B) {
	g, f, h := fixture(b, graph.Products, 2000, 256)
	out := tensor.NewMatrix(g.NumVertices(), 256)
	src := NewDenseSource(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Basic(out, g, f, src, Options{Threads: 2, PrefetchDistance: 4})
	}
}

func BenchmarkDistGNNAggregation(b *testing.B) {
	g, f, h := fixture(b, graph.Products, 2000, 256)
	out := tensor.NewMatrix(g.NumVertices(), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistGNN(out, g, f, h, 2)
	}
}
