package kernels

import (
	"math/rand"
	"testing"

	"graphite/internal/compress"
	"graphite/internal/graph"
	"graphite/internal/sparse"
	"graphite/internal/tensor"
)

// The zero-allocation contract (ROADMAP 3): the steady-state aggregation
// path — everything that runs per vertex and per edge once the operands are
// built — allocates nothing. These assertions are the dynamic half of the
// contract; the static half is the compiler-diagnostics baseline gate in
// internal/lint (TestRepoCompilerDiagBaseline), which enumerates every heap
// escape in these packages and admits none in the per-row code. If an
// assertion here starts failing, the baseline diff names the escape site.

// allocFixture builds a small self-looped graph with GCN factors and a
// feature matrix of the given width.
func allocFixture(t testing.TB, cols int) (*graph.CSR, []float32, *tensor.Matrix) {
	t.Helper()
	g, err := graph.ErdosRenyi(256, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	g = g.AddSelfLoops()
	f := sparse.Factors(g, sparse.NormGCN)
	h := tensor.NewMatrix(g.NumVertices(), cols)
	h.FillSparse(rand.New(rand.NewSource(3)), 1, 0.5)
	return g, f, h
}

func requireNoRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race (CI has a dedicated step)")
	}
}

// TestZeroAllocAggregate asserts the per-block aggregation path allocates
// zero bytes for the specialised widths (multiples of 16 — the tail-free
// unrolled AXPY) and for the generic fallback width, over both source
// kinds, with prefetch on.
func TestZeroAllocAggregate(t *testing.T) {
	requireNoRace(t)
	for _, cols := range []int{16, 64, 256, 7} {
		g, f, h := allocFixture(t, cols)
		out := tensor.NewMatrix(g.NumVertices(), cols)
		sources := map[string]Source{
			"dense":      NewDenseSource(h),
			"compressed": NewCompressedSource(compress.FromDense(h, 1)),
		}
		for name, src := range sources {
			opt := Options{PrefetchDistance: 4}
			n := g.NumVertices()
			if avg := testing.AllocsPerRun(10, func() {
				AggregateBlock(out, 0, g, f, src, opt, 0, n)
			}); avg != 0 {
				t.Errorf("cols=%d src=%s: AggregateBlock allocates %.1f/run, want 0", cols, name, avg)
			}
			if avg := testing.AllocsPerRun(10, func() {
				AggregateBlockByVertex(out, g, f, src, opt, 0, n)
			}); avg != 0 {
				t.Errorf("cols=%d src=%s: AggregateBlockByVertex allocates %.1f/run, want 0", cols, name, avg)
			}
			if avg := testing.AllocsPerRun(10, func() {
				for v := 0; v < n; v++ {
					AggregateVertex(out.Row(v), g, f, src, v)
				}
			}); avg != 0 {
				t.Errorf("cols=%d src=%s: AggregateVertex allocates %.1f/run, want 0", cols, name, avg)
			}
		}
	}
}

// TestZeroAllocReorderedAggregate covers the processing-order path (§4.4):
// indexing through Options.Order must not change the allocation story.
func TestZeroAllocReorderedAggregate(t *testing.T) {
	requireNoRace(t)
	g, f, h := allocFixture(t, 64)
	n := g.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(n - 1 - i)
	}
	out := tensor.NewMatrix(n, 64)
	src := NewDenseSource(h)
	opt := Options{PrefetchDistance: 4, Order: order}
	if avg := testing.AllocsPerRun(10, func() {
		AggregateBlockByVertex(out, g, f, src, opt, 0, n)
	}); avg != 0 {
		t.Errorf("ordered AggregateBlockByVertex allocates %.1f/run, want 0", avg)
	}
}
