package dma

import (
	"graphite/internal/memsim"
)

// Span is a contiguous run of cache lines.
type Span struct {
	First int64
	Count int64
}

// Job is one aggregation descriptor prepared for timing simulation: the
// line addresses the engine will fetch, with the dependency structure of
// Fig. 10 (an input block's fetch is gated by the arrival of the index
// line that names it).
type Job struct {
	// Ready is the cycle the core enqueued the descriptor.
	Ready int64
	// Idx are the index-array line spans, fetched with priority.
	Idx []Span
	// Factor are the factor-array line spans (fetched like indices).
	Factor []Span
	// Inputs holds one line span per gathered data block.
	Inputs []Span
	// InputGate[i] is the ordinal (within the flattened Idx spans) of the
	// index line that must arrive before Inputs[i] can be fetched.
	InputGate []int
	// Output is the result's line span, written to the core's L2.
	Output Span
	// Elems is E, the reduced vector length, for compute-time modelling.
	Elems int
}

// TimedEngine is the cycle model of one enhanced DMA engine attached to a
// core's L2 (Fig. 7). Its fetches bypass the private caches (inputs are
// read-only by design, so no coherence hazard, §5.2), go through the shared
// L3/DRAM path, and are limited by the memory-request tracking table; the
// output buffer is flushed to the attached core's L2.
type TimedEngine struct {
	m    *memsim.Machine
	core int
	cfg  EngineConfig

	cycle        int64   // fetch-issue frontier
	computeFree  int64   // when the vector unit finishes its current backlog
	lastComplete int64   // in-order job completion horizon
	lastLine     int64   // previous fetched line, for stream detection
	outstanding  []int64 // tracking-table entries: completion times, sorted

	// Stats.
	LinesFetched int64
	QueueDelay   int64
	JobsDone     int64
	TrackStall   int64
}

// NewTimedEngine attaches an engine model to core `core` of machine m.
func NewTimedEngine(m *memsim.Machine, core int, cfg EngineConfig) *TimedEngine {
	if cfg.TrackingEntries <= 0 {
		panic("dma: engine needs tracking-table entries")
	}
	if cfg.VectorLanes <= 0 {
		panic("dma: engine needs vector lanes")
	}
	return &TimedEngine{m: m, core: core, cfg: cfg}
}

// Cycle returns the engine clock.
func (e *TimedEngine) Cycle() int64 { return e.cycle }

func (e *TimedEngine) retire(now int64) {
	i := 0
	for i < len(e.outstanding) && e.outstanding[i] <= now {
		i++
	}
	if i > 0 {
		e.outstanding = e.outstanding[i:]
	}
}

// issue books one line fetch no earlier than `earliest` (its dependency
// gate), obeying the issue bandwidth (one request per cycle from the
// control unit) and the tracking table. Requests issue out of order with
// respect to each other — a gated input waiting for its index does not
// block an independent later request — which is exactly what lets the
// engine give "priority to indices to make progress" (Fig. 10). When the
// table is full the whole frontier stalls until the oldest entry frees.
// Consecutive lines (the body of a feature-vector span) are detected as a
// stream, matching the core path. Returns the completion time of this
// fetch.
func (e *TimedEngine) issue(line int64, earliest int64) int64 {
	// Consume one issue slot of control-unit bandwidth.
	slot := e.cycle
	e.cycle++
	at := slot
	if earliest > at {
		at = earliest
	}
	e.retire(at)
	if len(e.outstanding) >= e.cfg.TrackingEntries {
		wait := e.outstanding[0] - at
		if wait > 0 {
			e.TrackStall += wait
			at = e.outstanding[0]
		}
		e.retire(at)
		// A full table blocks the issue frontier too.
		if at > e.cycle {
			e.cycle = at
		}
	}
	// The engine translates through the attached core's STLB (§5).
	at += e.m.Translate(e.core, line)
	complete, queued := e.m.L3Read(line, at, line == e.lastLine+1)
	e.lastLine = line
	e.QueueDelay += queued
	e.LinesFetched++
	// Insert sorted (table is small).
	idx := len(e.outstanding)
	for idx > 0 && e.outstanding[idx-1] > complete {
		idx--
	}
	e.outstanding = append(e.outstanding, 0)
	copy(e.outstanding[idx+1:], e.outstanding[idx:])
	e.outstanding[idx] = complete
	return complete
}

// Run simulates one job and returns its completion cycle. Index lines are
// fetched first (the tracking table "gives priority to indices to make
// progress", Fig. 10); input blocks issue once their gating index line has
// arrived; the 4-lane vector unit reduces each block after its data lands,
// pipelined with the fetches; finally the output buffer flushes to L2.
//
// The engine clock tracks the *fetch frontier*, not job completion: while a
// job's last loads are in flight the engine already fetches for the next
// descriptor ("rather than underutilizing the memory bandwidth, the DMA
// engine simultaneously processes a second descriptor", §5.2). Jobs
// complete in order; the returned completion time is monotone.
func (e *TimedEngine) Run(job *Job) int64 {
	ready := job.Ready
	if e.cycle > ready {
		ready = e.cycle
	} else {
		e.cycle = ready
	}
	// Phase 1: index (and factor) fetches with priority (no gate).
	idxDone := make([]int64, 0, 4)
	for _, sp := range job.Idx {
		for l := int64(0); l < sp.Count; l++ {
			idxDone = append(idxDone, e.issue(sp.First+l, ready))
		}
	}
	for _, sp := range job.Factor {
		for l := int64(0); l < sp.Count; l++ {
			e.issue(sp.First+l, ready)
		}
	}
	// Phase 2: gated input fetches, reduction pipelined behind them. The
	// vector unit is busy from the end of the previous job's reduction.
	computeEnd := e.computeFree
	lanes := int64(e.cfg.VectorLanes)
	for i, sp := range job.Inputs {
		gate := ready
		if len(idxDone) > 0 {
			g := 0
			if i < len(job.InputGate) {
				g = job.InputGate[i]
			}
			if g >= len(idxDone) {
				g = len(idxDone) - 1
			}
			if idxDone[g] > gate {
				gate = idxDone[g]
			}
		}
		blockDone := gate
		for l := int64(0); l < sp.Count; l++ {
			done := e.issue(sp.First+l, gate)
			if done > blockDone {
				blockDone = done
			}
		}
		if blockDone > computeEnd {
			computeEnd = blockDone
		}
		computeEnd += int64(job.Elems) / lanes
	}
	// Phase 3: flush the output buffer to the attached L2 (§5.2: the
	// results are placed in L2 so the core's update phase hits).
	for l := int64(0); l < job.Output.Count; l++ {
		e.m.L2WriteFromDMA(e.core, job.Output.First+l)
		computeEnd++
	}
	// Fetch frontier moves on; the reduction pipeline stays busy until
	// computeEnd; completion is in order.
	e.computeFree = computeEnd
	if computeEnd < e.lastComplete {
		computeEnd = e.lastComplete
	}
	e.lastComplete = computeEnd
	e.JobsDone++
	return computeEnd
}
