package dma

import (
	"fmt"
	"math"

	"graphite/internal/faultinject"
	"graphite/internal/telemetry"
)

// EngineConfig sizes the engine's storage, defaulting to the paper's
// configuration (§6): 2KB output buffer, 2KB input buffer, 128B factor
// buffer, 128B index buffer, 32-entry memory request tracking table, and a
// 32-entry descriptor queue — 4.5KB of storage total.
type EngineConfig struct {
	OutputBufferBytes int
	InputBufferBytes  int
	FactorBufferBytes int
	IndexBufferBytes  int
	TrackingEntries   int
	DescQueueEntries  int
	VectorLanes       int
}

// DefaultEngineConfig returns the §6 configuration.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		OutputBufferBytes: 2048,
		InputBufferBytes:  2048,
		FactorBufferBytes: 128,
		IndexBufferBytes:  128,
		TrackingEntries:   32,
		DescQueueEntries:  32,
		VectorLanes:       4,
	}
}

// StorageBytes totals the engine's SRAM (the paper reports 4.5KB).
func (c EngineConfig) StorageBytes() int {
	return c.OutputBufferBytes + c.InputBufferBytes + c.FactorBufferBytes + c.IndexBufferBytes +
		c.TrackingEntries*8 + c.DescQueueEntries*DescriptorBytes/8
}

// Engine executes aggregation descriptors functionally (Algorithm 4). One
// engine sits next to each core's L2 (Fig. 7a); the functional model here
// is shared by the correctness tests and by the end-to-end DMA examples,
// while timing.go models the cycle behaviour.
type Engine struct {
	cfg    EngineConfig
	buf    []float32
	tel    *telemetry.Sink
	inject *faultinject.Injector
}

// NewEngine builds an engine.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.OutputBufferBytes <= 0 || cfg.VectorLanes <= 0 {
		panic("dma: engine needs an output buffer and vector lanes")
	}
	return &Engine{cfg: cfg, buf: make([]float32, cfg.OutputBufferBytes/4)}
}

// Config returns the engine configuration.
func (e *Engine) Config() EngineConfig { return e.cfg }

// SetTelemetry attaches a sink; every executed descriptor then credits the
// DMA counters with the descriptor count and the bytes it moved (index,
// factor, and input loads plus the output flush — the traffic §5.2's
// engine takes over from the core).
func (e *Engine) SetTelemetry(tel *telemetry.Sink) { e.tel = tel }

// SetFaultInjector arms the engine's fault-injection sites for robustness
// tests: "dma/descriptor" fires before a descriptor executes (modelling a
// rejected or lost descriptor), "dma/block" fires per input block
// (modelling a memory fault mid-transfer, which surfaces as a StatusFault
// completion record exactly like an organic fault). A nil injector disarms.
func (e *Engine) SetFaultInjector(in *faultinject.Injector) { e.inject = in }

// trafficBytes returns the memory traffic of one descriptor execution.
func trafficBytes(d *Descriptor) int64 {
	idxSz := int64(d.IdxT.Size())
	valSz := int64(d.ValT.Size())
	n := int64(d.N)
	e := int64(d.E)
	bytes := n*idxSz + n*e*valSz + e*valSz // index loads + input loads + output flush
	if d.Bin != BinNone {
		bytes += n * valSz // factor loads
	}
	return bytes
}

// Execute runs Algorithm 4 for one descriptor against mem. Each input
// block's completion status is written to the STATUS record; on a memory
// fault the faulting block's status is StatusFault and the remaining
// operation is aborted (§5.2: "If the status indicates a failure, the
// remaining operations are aborted"). The error return mirrors the fault
// for the software driver.
func (e *Engine) Execute(d *Descriptor, mem Memory) error {
	if err := e.inject.Fault("dma/descriptor"); err != nil {
		return fmt.Errorf("dma: descriptor rejected: %w", err)
	}
	if err := d.Validate(e.cfg.OutputBufferBytes); err != nil {
		return err
	}
	elems := int(d.E)
	buf := e.buf[:elems]
	switch d.Red {
	case RedMax:
		for j := range buf {
			buf[j] = float32(math.Inf(-1))
		}
	case RedMin:
		for j := range buf {
			buf[j] = float32(math.Inf(1))
		}
	default:
		clear(buf)
	}
	valSz := uint64(d.ValT.Size())
	for i := uint64(0); i < uint64(d.N); i++ {
		if err := e.executeBlock(d, mem, i, buf); err != nil {
			if serr := mem.StoreStatus(d.STATUS+i, StatusFault); serr != nil {
				return fmt.Errorf("dma: fault (%v) and status store failed: %w", err, serr)
			}
			return fmt.Errorf("dma: input block %d: %w", i, err)
		}
		if err := mem.StoreStatus(d.STATUS+i, StatusOK); err != nil {
			return fmt.Errorf("dma: status store for block %d: %w", i, err)
		}
	}
	// Flush the output buffer (Lines 8-9 of Algorithm 4).
	for j := 0; j < elems; j++ {
		if err := mem.StoreVal(d.OUT+uint64(j)*valSz, d.ValT, buf[j]); err != nil {
			return fmt.Errorf("dma: output flush element %d: %w", j, err)
		}
	}
	if e.tel.Enabled() {
		e.tel.Inc(telemetry.CtrDMADescriptors)
		e.tel.Add(telemetry.CtrDMABytesMoved, trafficBytes(d))
	}
	return nil
}

func (e *Engine) executeBlock(d *Descriptor, mem Memory, i uint64, buf []float32) error {
	if err := e.inject.Fault("dma/block"); err != nil {
		return err
	}
	idxSz := uint64(d.IdxT.Size())
	valSz := uint64(d.ValT.Size())
	idx, err := mem.LoadIdx(d.IDX+i*idxSz, d.IdxT)
	if err != nil {
		return err
	}
	if idx < 0 {
		return fmt.Errorf("negative block index %d", idx)
	}
	var factor float32
	if d.Bin != BinNone {
		factor, err = mem.LoadVal(d.FACTOR+i*valSz, d.ValT)
		if err != nil {
			return err
		}
	}
	base := d.IN + uint64(idx)*uint64(d.S)
	for j := 0; j < len(buf); j++ {
		v, err := mem.LoadVal(base+uint64(j)*valSz, d.ValT)
		if err != nil {
			return err
		}
		switch d.Bin {
		case BinMul:
			v *= factor
		case BinAdd:
			v += factor
		}
		switch d.Red {
		case RedSum:
			buf[j] += v
		case RedMax:
			if v > buf[j] {
				buf[j] = v
			}
		case RedMin:
			if v < buf[j] {
				buf[j] = v
			}
		}
	}
	return nil
}
