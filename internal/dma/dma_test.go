package dma

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"graphite/internal/graph"
	"graphite/internal/memsim"
	"graphite/internal/sparse"
	"graphite/internal/tensor"
)

func TestDescriptorEncodeDecodeRoundTrip(t *testing.T) {
	f := func(e, s, n uint32, idx, in, out, factor, status uint64, red, bin, it uint8) bool {
		d := Descriptor{
			Red: RedOp(red % 3), Bin: BinOp(bin % 3), IdxT: IdxType(it % 2), ValT: Val32,
			E: e, S: s, N: n, IDX: idx, IN: in, OUT: out, FACTOR: factor, STATUS: status,
		}
		return Decode(d.Encode()) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorWireLayout(t *testing.T) {
	d := Descriptor{Red: RedSum, Bin: BinMul, IdxT: Idx32, ValT: Val32,
		E: 3, S: 16, N: 5, IDX: 0x1000, IN: 0x2000, OUT: 0x3000, FACTOR: 0x4000, STATUS: 0x5000}
	b := d.Encode()
	if b[0] != 0 || b[1] != 1 || b[2] != 0 || b[3] != 0 {
		t.Fatalf("op bytes %v", b[:4])
	}
	if b[4] != 3 || b[8] != 16 || b[12] != 5 {
		t.Fatalf("E/S/N bytes wrong: %v", b[:16])
	}
	if b[16] != 0 || b[17] != 0x10 {
		t.Fatalf("IDX little-endian encoding wrong: %v", b[16:24])
	}
	if len(b) != DescriptorBytes {
		t.Fatalf("descriptor size %d", len(b))
	}
}

func TestDescriptorValidate(t *testing.T) {
	good := Descriptor{Red: RedSum, Bin: BinMul, E: 4, S: 16, N: 1}
	if err := good.Validate(2048); err != nil {
		t.Fatal(err)
	}
	cases := []Descriptor{
		{Red: 99, E: 4, S: 16},
		{Bin: 99, E: 4, S: 16},
		{IdxT: 99, E: 4, S: 16},
		{ValT: 99, E: 4, S: 16},
		{E: 0, S: 16},
		{E: 1024, S: 4096}, // exceeds 2KB output buffer
		{E: 8, S: 16},      // E*4 > S
	}
	for i, d := range cases {
		if d.Red == 0 && i != 0 {
			d.Red = RedSum
		}
		if err := d.Validate(2048); err == nil {
			t.Errorf("case %d accepted: %+v", i, d)
		}
	}
}

func TestDescriptorSplit(t *testing.T) {
	d := Descriptor{Red: RedSum, E: 400, S: 1600, N: 3, IN: 1000, OUT: 5000}
	parts := d.Split(256)
	if len(parts) != 2 {
		t.Fatalf("got %d parts", len(parts))
	}
	if parts[0].E != 256 || parts[1].E != 144 {
		t.Fatalf("E split %d/%d, want 256/144 (the §5.2 example)", parts[0].E, parts[1].E)
	}
	if parts[1].IN != 1000+256*4 || parts[1].OUT != 5000+256*4 {
		t.Fatalf("addresses not offset: %+v", parts[1])
	}
	if parts[0].N != 3 || parts[1].N != 3 {
		t.Fatal("N must be unchanged by splitting")
	}
	one := d.Split(512)
	if len(one) != 1 || one[0] != d {
		t.Fatal("small descriptor should not split")
	}
}

func TestSliceMemoryBoundsAndTypes(t *testing.T) {
	var m SliceMemory
	if err := m.MapF32(0x1000, make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
	if err := m.MapI32(0x2000, []int32{7}); err != nil {
		t.Fatal(err)
	}
	if err := m.MapF32(0x1008, make([]float32, 4)); err == nil {
		t.Fatal("overlapping segment accepted")
	}
	if _, err := m.LoadVal(0x1010, Val32); err == nil {
		t.Fatal("out-of-bounds load accepted")
	}
	if _, err := m.LoadVal(0x1001, Val32); err == nil {
		t.Fatal("misaligned load accepted")
	}
	if _, err := m.LoadVal(0x2000, Val32); err == nil {
		t.Fatal("type-mismatched load accepted")
	}
	if v, err := m.LoadIdx(0x2000, Idx32); err != nil || v != 7 {
		t.Fatalf("LoadIdx got %d, %v", v, err)
	}
	if err := m.StoreVal(0x1000, Val32, 3.5); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.LoadVal(0x1000, Val32); v != 3.5 {
		t.Fatalf("stored value %g", v)
	}
}

// buildAggregationSetup maps a graph's CSR arrays and feature matrix into a
// SliceMemory the way Fig. 9 lays them out, and returns descriptor
// builders.
type aggSetup struct {
	mem     SliceMemory
	g       *graph.CSR
	h       *tensor.Matrix
	factors []float32
	out     []float32
	status  []uint8

	inBase, outBase, idxBase, facBase, stBase uint64
	strideBytes                               uint64
}

func newAggSetup(t *testing.T, n, cols int) *aggSetup {
	t.Helper()
	g, err := graph.GenerateProfile(graph.Wikipedia, n)
	if err != nil {
		t.Fatal(err)
	}
	g = g.AddSelfLoops()
	s := &aggSetup{
		g:       g,
		factors: sparse.Factors(g, sparse.NormGCN),
		h:       tensor.NewMatrix(n, cols),
		inBase:  0x10_0000,
		outBase: 0x80_0000,
		idxBase: 0xA0_0000,
		facBase: 0xB0_0000,
		stBase:  0xC0_0000,
	}
	s.h.FillRandom(rand.New(rand.NewSource(9)), 1)
	s.out = make([]float32, n*s.h.Stride)
	s.status = make([]uint8, g.NumEdges())
	s.strideBytes = uint64(s.h.Stride) * 4
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.mem.MapF32(s.inBase, s.h.Data))
	must(s.mem.MapF32(s.outBase, s.out))
	must(s.mem.MapI32(s.idxBase, g.Col))
	must(s.mem.MapF32(s.facBase, s.factors))
	must(s.mem.MapU8(s.stBase, s.status))
	return s
}

// descriptorFor builds the Fig. 9 descriptor for vertex v.
func (s *aggSetup) descriptorFor(v int) Descriptor {
	return Descriptor{
		Red: RedSum, Bin: BinMul, IdxT: Idx32, ValT: Val32,
		E:      uint32(s.h.Cols),
		S:      uint32(s.strideBytes),
		N:      uint32(s.g.Degree(v)),
		IDX:    s.idxBase + uint64(s.g.Ptr[v])*4,
		IN:     s.inBase,
		OUT:    s.outBase + uint64(v)*s.strideBytes,
		FACTOR: s.facBase + uint64(s.g.Ptr[v])*4,
		STATUS: s.stBase + uint64(s.g.Ptr[v]),
	}
}

func TestEngineMatchesSoftwareAggregation(t *testing.T) {
	s := newAggSetup(t, 120, 48)
	eng := NewEngine(DefaultEngineConfig())
	for v := 0; v < s.g.NumVertices(); v++ {
		d := s.descriptorFor(v)
		if err := eng.Execute(&d, &s.mem); err != nil {
			t.Fatalf("vertex %d: %v", v, err)
		}
	}
	want := tensor.NewMatrix(s.g.NumVertices(), s.h.Cols)
	sparse.SpMM(want, s.g, s.factors, s.h, 1)
	for v := 0; v < s.g.NumVertices(); v++ {
		for j := 0; j < s.h.Cols; j++ {
			got := s.out[v*s.h.Stride+j]
			if math.Abs(float64(got-want.At(v, j))) > 1e-4 {
				t.Fatalf("vertex %d col %d: %g vs %g", v, j, got, want.At(v, j))
			}
		}
	}
	for _, st := range s.status {
		if Status(st) != StatusOK {
			t.Fatal("completion record not OK")
		}
	}
}

func TestEngineSplitDescriptorsMatch(t *testing.T) {
	s := newAggSetup(t, 40, 100) // 100 elements split at 64
	eng := NewEngine(DefaultEngineConfig())
	for v := 0; v < s.g.NumVertices(); v++ {
		d := s.descriptorFor(v)
		for _, part := range d.Split(64) {
			if err := eng.Execute(&part, &s.mem); err != nil {
				t.Fatalf("vertex %d: %v", v, err)
			}
		}
	}
	want := tensor.NewMatrix(s.g.NumVertices(), s.h.Cols)
	sparse.SpMM(want, s.g, s.factors, s.h, 1)
	for v := 0; v < s.g.NumVertices(); v++ {
		for j := 0; j < s.h.Cols; j++ {
			got := s.out[v*s.h.Stride+j]
			if math.Abs(float64(got-want.At(v, j))) > 1e-4 {
				t.Fatalf("vertex %d col %d: %g vs %g", v, j, got, want.At(v, j))
			}
		}
	}
}

func TestEngineMaxMinReductions(t *testing.T) {
	var mem SliceMemory
	in := []float32{1, 5, -2, 8, 0, 3, -7, 2} // two blocks of 4
	out := make([]float32, 4)
	idx := []int32{0, 1}
	status := make([]uint8, 2)
	if err := mem.MapF32(0x1000, in); err != nil {
		t.Fatal(err)
	}
	if err := mem.MapF32(0x2000, out); err != nil {
		t.Fatal(err)
	}
	if err := mem.MapI32(0x3000, idx); err != nil {
		t.Fatal(err)
	}
	if err := mem.MapU8(0x4000, status); err != nil {
		t.Fatal(err)
	}
	d := Descriptor{Red: RedMax, Bin: BinNone, E: 4, S: 16, N: 2,
		IDX: 0x3000, IN: 0x1000, OUT: 0x2000, STATUS: 0x4000}
	eng := NewEngine(DefaultEngineConfig())
	if err := eng.Execute(&d, &mem); err != nil {
		t.Fatal(err)
	}
	wantMax := []float32{1, 5, -2, 8}
	for j, w := range wantMax {
		if out[j] != w {
			t.Fatalf("max[%d]=%g want %g", j, out[j], w)
		}
	}
	d.Red = RedMin
	if err := eng.Execute(&d, &mem); err != nil {
		t.Fatal(err)
	}
	wantMin := []float32{0, 3, -7, 2}
	for j, w := range wantMin {
		if out[j] != w {
			t.Fatalf("min[%d]=%g want %g", j, out[j], w)
		}
	}
}

func TestEngineFaultAbortsAndRecordsStatus(t *testing.T) {
	var mem SliceMemory
	in := make([]float32, 8)
	out := make([]float32, 4)
	idx := []int32{0, 500, 1} // block 1 points out of bounds
	status := make([]uint8, 3)
	for _, err := range []error{
		mem.MapF32(0x1000, in), mem.MapF32(0x2000, out),
		mem.MapI32(0x3000, idx), mem.MapU8(0x4000, status),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	d := Descriptor{Red: RedSum, E: 4, S: 16, N: 3,
		IDX: 0x3000, IN: 0x1000, OUT: 0x2000, STATUS: 0x4000}
	eng := NewEngine(DefaultEngineConfig())
	err := eng.Execute(&d, &mem)
	if err == nil {
		t.Fatal("out-of-bounds gather succeeded")
	}
	if !strings.Contains(err.Error(), "block 1") {
		t.Fatalf("error does not name the faulting block: %v", err)
	}
	if Status(status[0]) != StatusOK || Status(status[1]) != StatusFault || Status(status[2]) != StatusPending {
		t.Fatalf("status record %v, want [OK Fault Pending]", status)
	}
}

func TestEngineConfigStorage(t *testing.T) {
	cfg := DefaultEngineConfig()
	// §6: "The DMA engine's storage is 4.5KB."
	if got := cfg.StorageBytes(); got < 4300 || got > 4900 {
		t.Fatalf("engine storage %dB, want ≈4.5KB", got)
	}
}

func TestTimedEngineTrackingTableScaling(t *testing.T) {
	// Fig. 16: more tracking-table entries → faster DMA aggregation, with
	// diminishing returns. A single engine can consume a large share of
	// the chip's pin bandwidth, so simulate on the full-width machine.
	run := func(entries int) int64 {
		m := memsim.NewMachine(memsim.DefaultConfig(8))
		cfg := DefaultEngineConfig()
		cfg.TrackingEntries = entries
		e := NewTimedEngine(m, 0, cfg)
		var last int64
		for v := 0; v < 200; v++ {
			job := &Job{
				Ready: e.Cycle(),
				Idx:   []Span{{First: int64(1_000_000 + v), Count: 1}},
				Inputs: []Span{
					{First: int64(2_000_000 + v*97), Count: 4},
					{First: int64(4_000_000 + v*89), Count: 4},
					{First: int64(6_000_000 + v*83), Count: 4},
					{First: int64(12_000_000 + v*79), Count: 4},
				},
				InputGate: []int{0, 0, 0, 0},
				Output:    Span{First: int64(8_000_000 + v*4), Count: 4},
				Elems:     64,
			}
			last = e.Run(job)
		}
		return last
	}
	t8, t16, t32 := run(8), run(16), run(32)
	if !(t8 > t16 && t16 > t32) {
		t.Fatalf("tracking table scaling broken: 8→%d 16→%d 32→%d", t8, t16, t32)
	}
	t.Logf("tracking table sweep: 8→%d 16→%d 32→%d (normalized %.2f/%.2f/%.2f)",
		t8, t16, t32, 1.0, float64(t16)/float64(t8), float64(t32)/float64(t8))
}

func TestTimedEngineWritesOutputToL2(t *testing.T) {
	m := memsim.NewMachine(memsim.DefaultConfig(1))
	e := NewTimedEngine(m, 0, DefaultEngineConfig())
	job := &Job{
		Idx:       []Span{{First: 100, Count: 1}},
		Inputs:    []Span{{First: 200, Count: 2}},
		InputGate: []int{0},
		Output:    Span{First: 300, Count: 2},
		Elems:     32,
	}
	done := e.Run(job)
	if done <= 0 {
		t.Fatal("no completion time")
	}
	// The core should now hit L2 on the output lines.
	m.Read(0, 300)
	m.Drain(0)
	if m.Stats().L2Misses > m.Stats().L2Accesses {
		t.Fatal("stat bookkeeping broken")
	}
	if got := m.Cycle(0); got >= m.Config().L3Lat {
		t.Fatalf("core read of DMA output took %d cycles, should hit L2", got)
	}
	// Private caches saw no engine input traffic.
	if m.Stats().L1Misses != 1 {
		t.Fatalf("L1 misses %d, want only the core's own read", m.Stats().L1Misses)
	}
	if e.JobsDone != 1 || e.LinesFetched != 3 {
		t.Fatalf("engine stats: jobs %d lines %d", e.JobsDone, e.LinesFetched)
	}
}
