package dma

import (
	"fmt"
	"sort"
)

// Memory is the engine's view of virtual memory. The engine works in user
// space with virtual addresses (§5: it translates through the STLB); this
// interface is the functional analogue, with errors standing in for
// translation faults reported through the completion record.
type Memory interface {
	// LoadIdx reads one index element of the given type at a byte address.
	LoadIdx(addr uint64, t IdxType) (int64, error)
	// LoadVal reads one value element at a byte address.
	LoadVal(addr uint64, t ValType) (float32, error)
	// StoreVal writes one value element at a byte address.
	StoreVal(addr uint64, t ValType, v float32) error
	// StoreStatus writes one completion-record byte.
	StoreStatus(addr uint64, s Status) error
}

// Status is a completion record entry (§5.1's STATUS array).
type Status uint8

// Completion states.
const (
	StatusPending Status = iota
	StatusOK
	StatusFault
)

// segKind discriminates the backing slice type of a segment.
type segKind uint8

const (
	segF32 segKind = iota
	segI32
	segI64
	segU8
)

type segment struct {
	base uint64
	size uint64
	kind segKind
	f32  []float32
	i32  []int32
	i64  []int64
	u8   []uint8
}

// SliceMemory is a Memory backed by registered typed Go slices, each
// mapped at a chosen virtual base address. It performs the bounds and
// alignment checks a real engine's address unit would fault on.
type SliceMemory struct {
	segs []segment
}

func (m *SliceMemory) add(s segment) error {
	for _, o := range m.segs {
		if s.base < o.base+o.size && o.base < s.base+s.size {
			return fmt.Errorf("dma: segment [%#x,%#x) overlaps [%#x,%#x)", s.base, s.base+s.size, o.base, o.base+o.size)
		}
	}
	m.segs = append(m.segs, s)
	sort.Slice(m.segs, func(i, j int) bool { return m.segs[i].base < m.segs[j].base })
	return nil
}

// MapF32 maps a float32 slice at base.
func (m *SliceMemory) MapF32(base uint64, data []float32) error {
	return m.add(segment{base: base, size: uint64(len(data)) * 4, kind: segF32, f32: data})
}

// MapI32 maps an int32 slice at base.
func (m *SliceMemory) MapI32(base uint64, data []int32) error {
	return m.add(segment{base: base, size: uint64(len(data)) * 4, kind: segI32, i32: data})
}

// MapI64 maps an int64 slice at base.
func (m *SliceMemory) MapI64(base uint64, data []int64) error {
	return m.add(segment{base: base, size: uint64(len(data)) * 8, kind: segI64, i64: data})
}

// MapU8 maps a byte slice at base (completion records).
func (m *SliceMemory) MapU8(base uint64, data []uint8) error {
	return m.add(segment{base: base, size: uint64(len(data)), kind: segU8, u8: data})
}

func (m *SliceMemory) find(addr uint64, size uint64) (*segment, uint64, error) {
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].base+m.segs[i].size > addr })
	if i == len(m.segs) || addr < m.segs[i].base || addr+size > m.segs[i].base+m.segs[i].size {
		return nil, 0, fmt.Errorf("dma: address %#x (+%d) unmapped", addr, size)
	}
	return &m.segs[i], addr - m.segs[i].base, nil
}

// LoadIdx implements Memory.
func (m *SliceMemory) LoadIdx(addr uint64, t IdxType) (int64, error) {
	sz := uint64(t.Size())
	seg, off, err := m.find(addr, sz)
	if err != nil {
		return 0, err
	}
	if off%sz != 0 {
		return 0, fmt.Errorf("dma: misaligned index load at %#x", addr)
	}
	switch {
	case t == Idx32 && seg.kind == segI32:
		return int64(seg.i32[off/4]), nil
	case t == Idx64 && seg.kind == segI64:
		return seg.i64[off/8], nil
	}
	return 0, fmt.Errorf("dma: index load type mismatch at %#x", addr)
}

// LoadVal implements Memory.
func (m *SliceMemory) LoadVal(addr uint64, t ValType) (float32, error) {
	sz := uint64(t.Size())
	seg, off, err := m.find(addr, sz)
	if err != nil {
		return 0, err
	}
	if off%sz != 0 {
		return 0, fmt.Errorf("dma: misaligned value load at %#x", addr)
	}
	if seg.kind != segF32 {
		return 0, fmt.Errorf("dma: value load type mismatch at %#x", addr)
	}
	return seg.f32[off/4], nil
}

// StoreVal implements Memory.
func (m *SliceMemory) StoreVal(addr uint64, t ValType, v float32) error {
	sz := uint64(t.Size())
	seg, off, err := m.find(addr, sz)
	if err != nil {
		return err
	}
	if off%sz != 0 {
		return fmt.Errorf("dma: misaligned value store at %#x", addr)
	}
	if seg.kind != segF32 {
		return fmt.Errorf("dma: value store type mismatch at %#x", addr)
	}
	seg.f32[off/4] = v
	return nil
}

// StoreStatus implements Memory.
func (m *SliceMemory) StoreStatus(addr uint64, s Status) error {
	seg, off, err := m.find(addr, 1)
	if err != nil {
		return err
	}
	if seg.kind != segU8 {
		return fmt.Errorf("dma: status store type mismatch at %#x", addr)
	}
	seg.u8[off] = uint8(s)
	return nil
}
