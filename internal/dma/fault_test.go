package dma

import (
	"errors"
	"testing"

	"graphite/internal/faultinject"
)

// faultFixture maps a two-block sum descriptor into a SliceMemory.
func faultFixture(t *testing.T) (*Descriptor, *SliceMemory, []uint8) {
	t.Helper()
	var mem SliceMemory
	in := []float32{1, 2, 3, 4, 10, 20, 30, 40}
	out := make([]float32, 4)
	idx := []int32{0, 1}
	status := make([]uint8, 2)
	for _, err := range []error{
		mem.MapF32(0x1000, in), mem.MapF32(0x2000, out),
		mem.MapI32(0x3000, idx), mem.MapU8(0x4000, status),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	d := &Descriptor{Red: RedSum, E: 4, S: 16, N: 2,
		IDX: 0x3000, IN: 0x1000, OUT: 0x2000, STATUS: 0x4000}
	return d, &mem, status
}

// TestEngineInjectedDescriptorFault proves the engine degrades gracefully
// when a descriptor is rejected: the error wraps the injected fault, memory
// is untouched, and the engine keeps working once the fault clears.
func TestEngineInjectedDescriptorFault(t *testing.T) {
	d, mem, status := faultFixture(t)
	eng := NewEngine(DefaultEngineConfig())
	in := faultinject.New(5)
	in.FailAt("dma/descriptor", 1)
	eng.SetFaultInjector(in)

	if err := eng.Execute(d, mem); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if Status(status[0]) != StatusPending || Status(status[1]) != StatusPending {
		t.Fatalf("rejected descriptor touched status records: %v", status)
	}
	// Fault cleared (FailAt fires once): the same descriptor now executes.
	if err := eng.Execute(d, mem); err != nil {
		t.Fatalf("post-fault execution failed: %v", err)
	}
	if Status(status[0]) != StatusOK || Status(status[1]) != StatusOK {
		t.Fatalf("status after recovery %v, want all OK", status)
	}
}

// TestEngineInjectedBlockFault proves an injected mid-transfer memory fault
// surfaces exactly like an organic one: the faulting block's STATUS record
// is StatusFault and the remaining operation is aborted (§5.2).
func TestEngineInjectedBlockFault(t *testing.T) {
	d, mem, status := faultFixture(t)
	eng := NewEngine(DefaultEngineConfig())
	in := faultinject.New(5)
	in.FailAt("dma/block", 2)
	eng.SetFaultInjector(in)

	err := eng.Execute(d, mem)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if Status(status[0]) != StatusOK || Status(status[1]) != StatusFault {
		t.Fatalf("status %v, want [OK Fault]", status)
	}
}

// TestEngineProbabilisticFaultsDeterministic replays a probabilistic fault
// storm twice under one seed and requires identical outcomes per descriptor
// — the sim-determinism contract for the injection harness.
func TestEngineProbabilisticFaultsDeterministic(t *testing.T) {
	run := func() []bool {
		d, mem, _ := faultFixture(t)
		eng := NewEngine(DefaultEngineConfig())
		in := faultinject.New(99)
		in.SetProbability("dma/descriptor", 0.25)
		eng.SetFaultInjector(in)
		outcomes := make([]bool, 40)
		for i := range outcomes {
			outcomes[i] = eng.Execute(d, mem) == nil
		}
		return outcomes
	}
	a, b := run(), run()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d diverged between identically-seeded runs", i)
		}
		if !a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("%d/%d faults; p=0.25 should fault some but not all", faults, len(a))
	}
}
