package dma

import (
	"testing"

	"graphite/internal/memsim"
)

// TestEngineZeroInputsFlushesZeros covers an isolated vertex: a descriptor
// with N=0 must still write the (zero) reduction result.
func TestEngineZeroInputsFlushesZeros(t *testing.T) {
	var mem SliceMemory
	out := []float32{9, 9, 9, 9}
	if err := mem.MapF32(0x1000, out); err != nil {
		t.Fatal(err)
	}
	d := Descriptor{Red: RedSum, E: 4, S: 16, N: 0, OUT: 0x1000}
	eng := NewEngine(DefaultEngineConfig())
	if err := eng.Execute(&d, &mem); err != nil {
		t.Fatal(err)
	}
	for j, v := range out {
		if v != 0 {
			t.Fatalf("out[%d]=%g, want 0 for N=0", j, v)
		}
	}
}

func TestEngineNegativeIndexFaults(t *testing.T) {
	var mem SliceMemory
	in := make([]float32, 8)
	out := make([]float32, 4)
	status := make([]uint8, 1)
	for _, err := range []error{
		mem.MapF32(0x1000, in), mem.MapF32(0x2000, out),
		mem.MapI32(0x3000, []int32{-5}), mem.MapU8(0x4000, status),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	d := Descriptor{Red: RedSum, E: 4, S: 16, N: 1, IDX: 0x3000, IN: 0x1000, OUT: 0x2000, STATUS: 0x4000}
	eng := NewEngine(DefaultEngineConfig())
	if err := eng.Execute(&d, &mem); err == nil {
		t.Fatal("negative index accepted")
	}
	if Status(status[0]) != StatusFault {
		t.Fatalf("status %d, want fault", status[0])
	}
}

func TestEngineBinAdd(t *testing.T) {
	var mem SliceMemory
	in := []float32{1, 2, 3, 4}
	out := make([]float32, 4)
	factors := []float32{10}
	status := make([]uint8, 1)
	for _, err := range []error{
		mem.MapF32(0x1000, in), mem.MapF32(0x2000, out),
		mem.MapI32(0x3000, []int32{0}), mem.MapF32(0x5000, factors), mem.MapU8(0x4000, status),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	d := Descriptor{Red: RedSum, Bin: BinAdd, E: 4, S: 16, N: 1,
		IDX: 0x3000, IN: 0x1000, OUT: 0x2000, FACTOR: 0x5000, STATUS: 0x4000}
	eng := NewEngine(DefaultEngineConfig())
	if err := eng.Execute(&d, &mem); err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 12, 13, 14}
	for j, w := range want {
		if out[j] != w {
			t.Fatalf("out[%d]=%g want %g", j, out[j], w)
		}
	}
}

func TestEngineIdx64(t *testing.T) {
	var mem SliceMemory
	in := []float32{0, 0, 0, 0, 5, 6, 7, 8} // block 1 at offset 16 bytes
	out := make([]float32, 4)
	status := make([]uint8, 1)
	for _, err := range []error{
		mem.MapF32(0x1000, in), mem.MapF32(0x2000, out),
		mem.MapI64(0x3000, []int64{1}), mem.MapU8(0x4000, status),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	d := Descriptor{Red: RedSum, IdxT: Idx64, E: 4, S: 16, N: 1,
		IDX: 0x3000, IN: 0x1000, OUT: 0x2000, STATUS: 0x4000}
	eng := NewEngine(DefaultEngineConfig())
	if err := eng.Execute(&d, &mem); err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 || out[3] != 8 {
		t.Fatalf("Idx64 gather wrong: %v", out)
	}
}

func TestTimedEngineJobWithNoInputs(t *testing.T) {
	m := memsim.NewMachine(memsim.DefaultConfig(1))
	e := NewTimedEngine(m, 0, DefaultEngineConfig())
	job := &Job{Output: Span{First: 10, Count: 1}, Elems: 16}
	done := e.Run(job)
	if done <= 0 {
		t.Fatal("no completion for inputless job")
	}
	if e.JobsDone != 1 {
		t.Fatal("job not counted")
	}
}

func TestTimedEngineCompletionMonotone(t *testing.T) {
	m := memsim.NewMachine(memsim.DefaultConfig(2))
	e := NewTimedEngine(m, 0, DefaultEngineConfig())
	prev := int64(-1)
	for v := 0; v < 50; v++ {
		job := &Job{
			Idx:       []Span{{First: int64(100 + v), Count: 1}},
			Inputs:    []Span{{First: int64(10_000 + v*13), Count: 2}},
			InputGate: []int{0},
			Output:    Span{First: int64(90_000 + v), Count: 1},
			Elems:     32,
		}
		done := e.Run(job)
		if done < prev {
			t.Fatalf("job %d completed at %d before previous %d", v, done, prev)
		}
		prev = done
	}
}
