// Package dma implements the paper's enhanced DMA engine (§5): the 64-byte
// aggregation descriptor (Fig. 8), the functional aggregation operation
// (Algorithm 4) executed against a virtual address space, and a
// cycle-approximate timing model of the engine's fetch pipeline (index
// buffer, memory-request tracking table, Fig. 10) that plugs into the
// memsim machine.
package dma

import (
	"encoding/binary"
	"fmt"
)

// RedOp is the reduction operator (red_op field).
type RedOp uint8

// Reduction operators.
const (
	RedSum RedOp = iota
	RedMax
	RedMin
	redOpEnd
)

// BinOp is the optional binary operator applied to each gathered element
// and the matching factor element (bin_op field) — the hardware form of the
// feature processing function ψ (§5.1). With RedSum and BinMul the
// operation is a dense-matrix sparse-vector product (§5.2).
type BinOp uint8

// Binary operators.
const (
	BinNone BinOp = iota
	BinMul
	BinAdd
	binOpEnd
)

// IdxType is the index element type (idx_t field).
type IdxType uint8

// Index types.
const (
	Idx32 IdxType = iota
	Idx64
	idxTypeEnd
)

// Size returns the index element size in bytes.
func (t IdxType) Size() int64 {
	if t == Idx64 {
		return 8
	}
	return 4
}

// ValType is the value element type (val_t field).
type ValType uint8

// Value types.
const (
	Val32 ValType = iota
	valTypeEnd
)

// Size returns the value element size in bytes.
func (t ValType) Size() int64 { return 4 }

// DescriptorBytes is the fixed descriptor size (Fig. 8).
const DescriptorBytes = 64

// Descriptor is the proposed aggregation descriptor (Fig. 8). One
// descriptor encodes an entire per-vertex aggregation: N fixed-size data
// blocks gathered through an index array, optionally combined with a
// factor array, and reduced into one output vector — replacing the chain
// of per-block descriptors traditional scatter-gather DMA needs (§2.3,
// §5.1).
type Descriptor struct {
	Red    RedOp
	Bin    BinOp
	IdxT   IdxType
	ValT   ValType
	E      uint32 // values per data block
	S      uint32 // padded size of each data block, bytes
	N      uint32 // number of input data blocks
	IDX    uint64 // index array start address
	IN     uint64 // input base address
	OUT    uint64 // output start address
	FACTOR uint64 // factor array start address (BinNone ignores it)
	STATUS uint64 // completion record start address
}

// Encode serialises the descriptor into its 64-byte wire format.
func (d *Descriptor) Encode() [DescriptorBytes]byte {
	var b [DescriptorBytes]byte
	b[0] = byte(d.Red)
	b[1] = byte(d.Bin)
	b[2] = byte(d.IdxT)
	b[3] = byte(d.ValT)
	binary.LittleEndian.PutUint32(b[4:], d.E)
	binary.LittleEndian.PutUint32(b[8:], d.S)
	binary.LittleEndian.PutUint32(b[12:], d.N)
	binary.LittleEndian.PutUint64(b[16:], d.IDX)
	binary.LittleEndian.PutUint64(b[24:], d.IN)
	binary.LittleEndian.PutUint64(b[32:], d.OUT)
	binary.LittleEndian.PutUint64(b[40:], d.FACTOR)
	binary.LittleEndian.PutUint64(b[48:], d.STATUS)
	return b
}

// Decode parses a 64-byte descriptor.
func Decode(b [DescriptorBytes]byte) Descriptor {
	return Descriptor{
		Red:    RedOp(b[0]),
		Bin:    BinOp(b[1]),
		IdxT:   IdxType(b[2]),
		ValT:   ValType(b[3]),
		E:      binary.LittleEndian.Uint32(b[4:]),
		S:      binary.LittleEndian.Uint32(b[8:]),
		N:      binary.LittleEndian.Uint32(b[12:]),
		IDX:    binary.LittleEndian.Uint64(b[16:]),
		IN:     binary.LittleEndian.Uint64(b[24:]),
		OUT:    binary.LittleEndian.Uint64(b[32:]),
		FACTOR: binary.LittleEndian.Uint64(b[40:]),
		STATUS: binary.LittleEndian.Uint64(b[48:]),
	}
}

// Validate checks the static well-formedness the engine requires before
// execution. outputBufferBytes is the engine's output buffer capacity: a
// descriptor whose output vector exceeds it must be split by software
// (§5.2).
func (d *Descriptor) Validate(outputBufferBytes int) error {
	if d.Red >= redOpEnd {
		return fmt.Errorf("dma: unknown red_op %d", d.Red)
	}
	if d.Bin >= binOpEnd {
		return fmt.Errorf("dma: unknown bin_op %d", d.Bin)
	}
	if d.IdxT >= idxTypeEnd {
		return fmt.Errorf("dma: unknown idx_t %d", d.IdxT)
	}
	if d.ValT >= valTypeEnd {
		return fmt.Errorf("dma: unknown val_t %d", d.ValT)
	}
	if d.E == 0 {
		return fmt.Errorf("dma: descriptor with E=0 values per block")
	}
	if int64(d.E)*d.ValT.Size() > int64(outputBufferBytes) {
		return fmt.Errorf("dma: output vector (%d bytes) exceeds the %dB output buffer; split the descriptor",
			int64(d.E)*d.ValT.Size(), outputBufferBytes)
	}
	if int64(d.E)*d.ValT.Size() > int64(d.S) {
		return fmt.Errorf("dma: E=%d values do not fit the padded block size S=%d", d.E, d.S)
	}
	return nil
}

// Split breaks a descriptor whose output exceeds maxE elements into a chain
// of descriptors each covering at most maxE contiguous elements of every
// block — the software-side splitting §5.2 describes (e.g. a 400-element
// vector on a 256-element buffer becomes 256 + 144).
func (d *Descriptor) Split(maxE uint32) []Descriptor {
	if maxE == 0 || d.E <= maxE {
		return []Descriptor{*d}
	}
	var out []Descriptor
	for off := uint32(0); off < d.E; off += maxE {
		part := *d
		part.E = min32(maxE, d.E-off)
		byteOff := uint64(off) * uint64(d.ValT.Size())
		part.IN = d.IN + byteOff
		part.OUT = d.OUT + byteOff
		out = append(out, part)
	}
	return out
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
