package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fault("any/site"); err != nil {
		t.Fatalf("nil injector faulted: %v", err)
	}
	if in.Calls("any/site") != 0 || in.Fired("any/site") != 0 {
		t.Fatal("nil injector reported activity")
	}
}

func TestFailAtFiresExactlyOnce(t *testing.T) {
	in := New(1)
	in.FailAt("dma/descriptor", 3)
	var firedAt []int
	for i := 1; i <= 6; i++ {
		if err := in.Fault("dma/descriptor"); err != nil {
			firedAt = append(firedAt, i)
			var fe *Error
			if !errors.As(err, &fe) {
				t.Fatalf("err = %T, want *Error", err)
			}
			if fe.Site != "dma/descriptor" || fe.Call != 3 {
				t.Fatalf("fault = %+v, want site dma/descriptor call 3", fe)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatal("injected fault does not match ErrInjected")
			}
		}
	}
	if len(firedAt) != 1 || firedAt[0] != 3 {
		t.Fatalf("fired at calls %v, want [3]", firedAt)
	}
	if in.Calls("dma/descriptor") != 6 || in.Fired("dma/descriptor") != 1 {
		t.Fatalf("calls=%d fired=%d, want 6/1", in.Calls("dma/descriptor"), in.Fired("dma/descriptor"))
	}
}

// TestProbabilisticDeterminism is the fixed-seed contract: two injectors
// with the same seed and call sequence fault on exactly the same calls.
func TestProbabilisticDeterminism(t *testing.T) {
	run := func() []int {
		in := New(42)
		in.SetProbability("graph/load", 0.3)
		var fired []int
		for i := 0; i < 200; i++ {
			if in.Fault("graph/load") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("p=0.3 over 200 calls never fired")
	}
	if len(a) != len(b) {
		t.Fatalf("runs fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire sequence diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSitesAreIndependent(t *testing.T) {
	in := New(7)
	in.FailAt("a", 1)
	if err := in.Fault("b"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if err := in.Fault("a"); err == nil {
		t.Fatal("armed site did not fire")
	}
}

// TestOrdinalModeUnderConcurrency proves ordinal (FailAt) injection stays
// deterministic with concurrent callers: call ordinals are assigned under
// the injector's mutex, so across any interleaving exactly one caller
// observes the fault, it reports the armed ordinal, and the per-site
// accounting is exact. Run under -race in CI.
func TestOrdinalModeUnderConcurrency(t *testing.T) {
	const (
		goroutines = 16
		perG       = 50
		armedAt    = 333 // somewhere in the middle of the 800 total calls
	)
	in := New(11)
	in.FailAt(SiteServeExecute, armedAt)
	// A second armed site proves site selection is independent under
	// concurrency: only the named site's ordinal counter can trip it.
	in.FailAt(SiteServeSeal, 1)

	var wg sync.WaitGroup
	fired := make([]*Error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := in.Fault(SiteServeExecute); err != nil {
					var fe *Error
					if !errors.As(err, &fe) {
						t.Errorf("err = %T, want *Error", err)
						return
					}
					if fired[g] != nil {
						t.Errorf("goroutine %d saw two faults", g)
						return
					}
					fired[g] = fe
				}
			}
		}(g)
	}
	wg.Wait()

	var hits []*Error
	for _, fe := range fired {
		if fe != nil {
			hits = append(hits, fe)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("%d goroutines observed the ordinal fault, want exactly 1", len(hits))
	}
	if hits[0].Site != SiteServeExecute || hits[0].Call != armedAt {
		t.Fatalf("fault = %+v, want site %s call %d", hits[0], SiteServeExecute, armedAt)
	}
	if got := in.Calls(SiteServeExecute); got != goroutines*perG {
		t.Fatalf("calls = %d, want %d", got, goroutines*perG)
	}
	if got := in.Fired(SiteServeExecute); got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
	if got := in.Fired(SiteServeSeal); got != 0 {
		t.Fatalf("unreached site fired %d times", got)
	}
}

// TestServeSitesCoverPipeline pins the chaos-harness site list: every
// serve-plane stage has exactly one site and the list is stable.
func TestServeSitesCoverPipeline(t *testing.T) {
	sites := ServeSites()
	want := []string{SiteServeAdmission, SiteServeSeal, SiteServeExecute, SiteServeSwap, SiteServeRespond}
	if len(sites) != len(want) {
		t.Fatalf("ServeSites() = %v", sites)
	}
	seen := map[string]bool{}
	for i, s := range sites {
		if s != want[i] {
			t.Fatalf("site %d = %q, want %q", i, s, want[i])
		}
		if seen[s] {
			t.Fatalf("duplicate site %q", s)
		}
		seen[s] = true
	}
}

func TestReaderInjectsReadFault(t *testing.T) {
	in := New(3)
	in.FailAt("loader/read", 2)
	r := Reader(bytes.NewReader(bytes.Repeat([]byte{0xAA}, 64)), in, "loader/read")
	buf := make([]byte, 16)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("first read failed: %v", err)
	}
	if _, err := r.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read err = %v, want injected fault", err)
	}
	// Disarmed reader passes through, including EOF.
	r = Reader(strings.NewReader("xy"), nil, "loader/read")
	if b, err := io.ReadAll(r); err != nil || string(b) != "xy" {
		t.Fatalf("nil-injector reader: %q, %v", b, err)
	}
}
