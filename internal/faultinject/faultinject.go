// Package faultinject is a seeded, deterministic fault-injection harness
// for robustness tests. Production code paths that can fail in deployment
// (DMA descriptor execution, graph loading, the training loop) expose a
// named injection site; tests arm an Injector against those sites either
// probabilistically (SetProbability, driven by a seeded RNG) or at an exact
// call ordinal (FailAt), and assert the layer degrades gracefully instead
// of corrupting state.
//
// A nil *Injector is inert: every Fault call on it returns nil, so
// production paths carry injection sites at the cost of one nil check.
// Determinism: with a fixed seed and an unchanged call sequence, the same
// calls fault on every run (the RNG is serialized under the Injector's
// mutex, and call ordinals are per-site).
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// ErrInjected is the sentinel every injected fault wraps; test code matches
// it with errors.Is to distinguish injected faults from organic failures.
var ErrInjected = errors.New("injected fault")

// Serve-plane injection sites. The inference server consults these on its
// hot path (one nil check each when no injector is armed); the chaos
// harness (graphite-bench -chaos) arms them all and asserts the serving
// invariants hold while they fire.
const (
	// SiteServeAdmission fires between request validation and enqueue.
	SiteServeAdmission = "serve/admission"
	// SiteServeSeal fires when the batcher seals a mini-batch; a fault
	// fails every member of the sealing batch.
	SiteServeSeal = "serve/seal"
	// SiteServeExecute fires before a sealed batch reaches the kernels,
	// modelling a failing/panicking model version (feeds the circuit
	// breaker and the retry budget).
	SiteServeExecute = "serve/batch-execute"
	// SiteServeSwap fires inside checkpoint hot swap after validation.
	SiteServeSwap = "serve/swap"
	// SiteServeRespond fires per member while a finished batch's results
	// are distributed; the member receives an error instead of logits
	// (but always receives exactly one response).
	SiteServeRespond = "serve/response-write"
)

// ServeSites lists every serve-plane site, in pipeline order — the chaos
// harness arms and audits all of them.
func ServeSites() []string {
	return []string{SiteServeAdmission, SiteServeSeal, SiteServeExecute, SiteServeSwap, SiteServeRespond}
}

// Error reports one injected fault: which site fired and at which call
// ordinal (1-based).
type Error struct {
	Site string
	Call int
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %s call %d: injected fault", e.Site, e.Call)
}

// Unwrap makes errors.Is(err, ErrInjected) hold.
func (e *Error) Unwrap() error { return ErrInjected }

// Injector arms named injection sites. The zero value and nil are inert.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	prob   map[string]float64
	failAt map[string]int
	calls  map[string]int
	fired  map[string]int
}

// New returns an injector whose probabilistic faults are driven by a
// deterministic RNG seeded with seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		prob:   make(map[string]float64),
		failAt: make(map[string]int),
		calls:  make(map[string]int),
		fired:  make(map[string]int),
	}
}

// SetProbability arms site to fault with probability p on every call.
func (in *Injector) SetProbability(site string, p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.prob[site] = p
}

// FailAt arms site to fault exactly on its n-th call (1-based). n <= 0
// disarms.
func (in *Injector) FailAt(site string, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n <= 0 {
		delete(in.failAt, site)
		return
	}
	in.failAt[site] = n
}

// Fault records one call at site and returns a non-nil *Error when the site
// is armed to fire on this call. Safe on a nil receiver (returns nil) and
// safe for concurrent use.
func (in *Injector) Fault(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls[site]++
	call := in.calls[site]
	fire := false
	if at, ok := in.failAt[site]; ok && call == at {
		fire = true
	}
	if p := in.prob[site]; p > 0 && in.rng.Float64() < p {
		fire = true
	}
	if !fire {
		return nil
	}
	in.fired[site]++
	return &Error{Site: site, Call: call}
}

// Calls returns how many times site has been reached.
func (in *Injector) Calls(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[site]
}

// Fired returns how many faults site has injected.
func (in *Injector) Fired(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// Reader wraps r so every Read first consults the injector at site; an
// injected fault surfaces as the read error. It models torn/corrupt I/O for
// loader robustness tests without touching the loader itself.
func Reader(r io.Reader, in *Injector, site string) io.Reader {
	return &faultReader{r: r, in: in, site: site}
}

type faultReader struct {
	r    io.Reader
	in   *Injector
	site string
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if err := fr.in.Fault(fr.site); err != nil {
		return 0, err
	}
	return fr.r.Read(p)
}
