// Package locality implements the paper's temporal-locality optimization
// (§4.4, Algorithm 3): a vertex processing order that shrinks the reuse
// distance of feature vectors during aggregation, plus the randomized
// orders used as the "average locality" control in Fig. 15, and an LRU
// reuse estimator used to validate that the reorder actually helps.
package locality

import (
	"container/list"
	"fmt"
	"math/rand"

	"graphite/internal/graph"
)

// Reorder computes the Algorithm 3 processing order M. Each vertex v is
// assigned to the group L[u'] of the highest-degree vertex u' among
// N(v) ∪ {v} (ties keep the first maximum encountered, matching the
// strict '>' comparison in the paper's pseudo-code); the order is then the
// concatenation of the groups in vertex-id order. Vertices placed in L[u]
// all read u's feature vector, so processing them back to back gives that
// hub's features a short reuse distance — high-degree vertices are
// prioritised because their features are read D_v+1 times.
//
// Runs in O(|E|+|V|) and allocates two int32 arrays, so the cost is
// amortised over the training iterations that reuse it (§4.4 applies it to
// training only).
func Reorder(g *graph.CSR) []int32 {
	n := g.NumVertices()
	// groupOf[v] = u' — the group vertex v lands in.
	groupOf := make([]int32, n)
	counts := make([]int32, n)
	for v := 0; v < n; v++ {
		best := int32(v)
		bestDeg := g.Degree(v)
		for _, u := range g.Neighbors(v) {
			if d := g.Degree(int(u)); d > bestDeg {
				bestDeg = d
				best = u
			}
		}
		groupOf[v] = best
		counts[best]++
	}
	// Bucket the vertices by group with a counting sort: offsets then fill.
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + counts[v]
	}
	order := make([]int32, n)
	fill := make([]int32, n)
	copy(fill, offsets[:n])
	for v := 0; v < n; v++ {
		u := groupOf[v]
		order[fill[u]] = int32(v)
		fill[u]++
	}
	return order
}

// Identity returns the natural order 0..n-1 (the graph's stored order,
// which for some corpora "already embed[s] locality optimization from their
// sources", §7.2.4).
func Identity(n int) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	return order
}

// Randomized returns a uniformly random processing order. Fig. 15 averages
// five of these to estimate the "average locality" performance of a graph.
func Randomized(n int, seed int64) []int32 {
	order := Identity(n)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// IsPermutation reports whether order is a permutation of [0, n).
func IsPermutation(order []int32, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// HitRate estimates the cache hit rate of feature-vector reads during an
// aggregation that processes vertices in the given order, using a fully
// associative LRU cache holding capacity feature vectors. One "access" is
// one whole neighbour feature-vector read (u ∈ N(v) ∪ {v}). It is the
// reuse-distance oracle the tests and the Fig. 15 harness use to connect
// an ordering to its expected memory behaviour.
func HitRate(g *graph.CSR, order []int32, capacity int) (float64, error) {
	n := g.NumVertices()
	if !IsPermutation(order, n) {
		return 0, fmt.Errorf("locality: order is not a permutation of [0,%d)", n)
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("locality: capacity must be positive, got %d", capacity)
	}
	lru := list.New()
	pos := make(map[int32]*list.Element, capacity+1)
	hits, total := 0, 0
	touch := func(u int32) {
		total++
		if el, ok := pos[u]; ok {
			hits++
			lru.MoveToFront(el)
			return
		}
		pos[u] = lru.PushFront(u)
		if lru.Len() > capacity {
			back := lru.Back()
			lru.Remove(back)
			delete(pos, back.Value.(int32))
		}
	}
	for _, v := range order {
		touch(v) // each vertex also reads its own features
		for _, u := range g.Neighbors(int(v)) {
			touch(u)
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(hits) / float64(total), nil
}
