package locality

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphite/internal/graph"
)

func TestReorderIsPermutation(t *testing.T) {
	for _, p := range graph.Profiles() {
		g, err := graph.GenerateProfile(p, 500)
		if err != nil {
			t.Fatal(err)
		}
		order := Reorder(g)
		if !IsPermutation(order, g.NumVertices()) {
			t.Fatalf("%s: Reorder output is not a permutation", p)
		}
	}
}

func TestReorderPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		e := rng.Intn(200)
		src := make([]int32, e)
		dst := make([]int32, e)
		for i := range src {
			src[i] = int32(rng.Intn(n))
			dst[i] = int32(rng.Intn(n))
		}
		g, err := graph.FromEdges(n, src, dst)
		if err != nil {
			return false
		}
		return IsPermutation(Reorder(g), n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReorderGroupsSpokesWithHub(t *testing.T) {
	// In a star, every spoke's highest-degree neighbour is the hub, and the
	// hub's own highest-degree neighbour is itself — so the order is the
	// hub's group containing all vertices, i.e. identity-like grouping.
	g, err := graph.Star(8)
	if err != nil {
		t.Fatal(err)
	}
	order := Reorder(g)
	if !IsPermutation(order, 8) {
		t.Fatal("not a permutation")
	}
	// All vertices map to group 0, so they appear in id order.
	for i, v := range order {
		if int(v) != i {
			t.Fatalf("star order[%d]=%d, want %d", i, v, i)
		}
	}
}

func TestReorderEmptyAndSingleton(t *testing.T) {
	g, err := graph.FromEdges(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(Reorder(g)) != 0 {
		t.Fatal("empty graph order not empty")
	}
	g1, err := graph.FromEdges(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := Reorder(g1)
	if len(o) != 1 || o[0] != 0 {
		t.Fatalf("singleton order %v", o)
	}
}

func TestRandomizedIsPermutationAndSeeded(t *testing.T) {
	a := Randomized(100, 1)
	b := Randomized(100, 1)
	c := Randomized(100, 2)
	if !IsPermutation(a, 100) {
		t.Fatal("not a permutation")
	}
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different orders")
	}
	if !diff {
		t.Fatal("different seeds produced identical orders")
	}
}

func TestIsPermutationRejects(t *testing.T) {
	if IsPermutation([]int32{0, 1}, 3) {
		t.Fatal("short slice accepted")
	}
	if IsPermutation([]int32{0, 0, 1}, 3) {
		t.Fatal("duplicate accepted")
	}
	if IsPermutation([]int32{0, 1, 3}, 3) {
		t.Fatal("out of range accepted")
	}
}

func TestHitRateImprovesWithReorderOnHubGraph(t *testing.T) {
	// A hub-heavy profile: many vertices share high-degree neighbours, so
	// grouping by hub should beat a random order under a small cache.
	g, err := graph.GenerateProfile(graph.Products, 2000)
	if err != nil {
		t.Fatal(err)
	}
	capacity := 64
	reordered, err := HitRate(g, Reorder(g), capacity)
	if err != nil {
		t.Fatal(err)
	}
	var randomSum float64
	for seed := int64(0); seed < 3; seed++ {
		r, err := HitRate(g, Randomized(g.NumVertices(), seed), capacity)
		if err != nil {
			t.Fatal(err)
		}
		randomSum += r
	}
	random := randomSum / 3
	t.Logf("hit rate: reordered %.3f vs randomized %.3f", reordered, random)
	if reordered <= random {
		t.Fatalf("reorder hit rate %.3f did not beat randomized %.3f", reordered, random)
	}
}

func TestHitRateBoundsAndErrors(t *testing.T) {
	g, err := graph.Grid2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := HitRate(g, Identity(16), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate %g out of (0,1) for an oversized cache", hr)
	}
	if _, err := HitRate(g, Identity(5), 10); err == nil {
		t.Fatal("bad order accepted")
	}
	if _, err := HitRate(g, Identity(16), 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestHitRateMonotoneInCapacity(t *testing.T) {
	g, err := graph.GenerateProfile(graph.Wikipedia, 800)
	if err != nil {
		t.Fatal(err)
	}
	order := Identity(g.NumVertices())
	prev := -1.0
	for _, c := range []int{8, 32, 128, 512} {
		hr, err := HitRate(g, order, c)
		if err != nil {
			t.Fatal(err)
		}
		if hr < prev {
			t.Fatalf("hit rate decreased from %.3f to %.3f as capacity grew to %d", prev, hr, c)
		}
		prev = hr
	}
}
