package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls the synthetic graph generator. The generator replaces the
// paper's dataset corpus (ogbn-products, wikipedia, ogbn-papers100M,
// GAP-twitter): we cannot ship those graphs, so we generate graphs with
// matching shape statistics — average gather degree, degree-distribution
// tail (max and variance), hub reuse, and embedded vertex-ordering locality
// — scaled down to laptop size. See DESIGN.md substitution 1.
type Config struct {
	// NumVertices is |V|.
	NumVertices int
	// AvgDegree is the target mean gather degree (Table 3's D̄_v).
	AvgDegree float64
	// Alpha is the power-law exponent of the per-vertex degree
	// distribution; larger alpha gives a lighter tail. Alpha <= 1 yields a
	// near-uniform degree around AvgDegree.
	Alpha float64
	// MaxDegree truncates the degree tail (0 means NumVertices-1).
	MaxDegree int
	// HubZipfS skews neighbour *selection* towards low-numbered "hub"
	// vertices with a Zipf(s) distribution when s > 1; 0 or <=1 selects
	// neighbours uniformly. Hubs are what make the temporal-locality
	// reordering pay off: many vertices share them.
	HubZipfS float64
	// LocalityProb is the probability that a neighbour is drawn from a
	// window of nearby vertex IDs instead of globally. Graphs "from their
	// sources may already embed locality optimization" (§7.2.4); this knob
	// reproduces that property for the wikipedia/twitter profiles.
	LocalityProb float64
	// LocalityWindow is the half-width of the nearby-ID window (0 picks
	// NumVertices/64).
	LocalityWindow int
	// CommunityProb is the probability that a neighbour is drawn from the
	// vertex's hidden community — a group of CommunitySize vertices that
	// share neighbours (and a few high-degree local hubs) the way
	// co-purchased products do. Communities are assigned through a random
	// permutation, so they are invisible to the natural vertex order:
	// only a locality-aware reordering (Algorithm 3 groups vertices under
	// their highest-degree neighbour) rediscovers them. This is the
	// structure behind the paper's §4.4/§7.2.4 results on products.
	CommunityProb float64
	// CommunitySize is the hidden community size (0 picks 64).
	CommunitySize int
	// Seed makes generation deterministic.
	Seed int64
}

// Generate builds a graph per the config. Every vertex receives at least one
// neighbour so no gather list is empty (zero-degree handling is still
// exercised in tests via hand-built graphs).
func Generate(cfg Config) (*CSR, error) {
	n := cfg.NumVertices
	if n <= 0 {
		return nil, fmt.Errorf("graph: config needs NumVertices > 0, got %d", n)
	}
	if cfg.AvgDegree <= 0 {
		return nil, fmt.Errorf("graph: config needs AvgDegree > 0, got %g", cfg.AvgDegree)
	}
	maxDeg := cfg.MaxDegree
	if maxDeg <= 0 || maxDeg > n-1 {
		maxDeg = n - 1
	}
	if maxDeg < 1 {
		maxDeg = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	degrees := sampleDegrees(rng, n, cfg.AvgDegree, cfg.Alpha, maxDeg)

	var hub *rand.Zipf
	if cfg.HubZipfS > 1 {
		hub = rand.NewZipf(rng, cfg.HubZipfS, 1, uint64(n-1))
	}
	window := cfg.LocalityWindow
	if window <= 0 {
		window = n / 64
	}
	if window < 1 {
		window = 1
	}
	var comm *communities
	if cfg.CommunityProb > 0 && n > 2 {
		size := cfg.CommunitySize
		if size <= 0 {
			size = 64
		}
		if size > n {
			size = n
		}
		comm = newCommunities(rng, n, size)
		// Correlate row degree with in-community popularity: each
		// community's most-linked member (its local hub) also gets the
		// community's largest gather list, the way popular products have
		// both many co-purchases and many recommendations. Algorithm 3
		// keys on the row degree of neighbours, so this correlation is
		// what lets the reordering rediscover the hidden communities.
		comm.sortDegreesByPopularity(degrees)
	}

	ptr := make([]int32, n+1)
	for v := 0; v < n; v++ {
		ptr[v+1] = ptr[v] + int32(degrees[v])
	}
	col := make([]int32, ptr[n])
	seen := make(map[int32]struct{}, maxDeg)
	for v := 0; v < n; v++ {
		row := col[ptr[v]:ptr[v+1]]
		clear(seen)
		for i := range row {
			row[i] = pickNeighbor(rng, hub, comm, n, v, window, cfg.LocalityProb, cfg.CommunityProb, seen)
			seen[row[i]] = struct{}{}
		}
	}
	g := &CSR{Ptr: ptr, Col: col}
	g.SortNeighbors()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: generator produced invalid CSR: %w", err)
	}
	return g, nil
}

// sampleDegrees draws a degree sequence with the requested mean and
// power-law tail, with every degree in [1, maxDeg].
func sampleDegrees(rng *rand.Rand, n int, avg, alpha float64, maxDeg int) []int {
	degrees := make([]int, n)
	if alpha <= 1 {
		// Near-uniform: integer jitter around the mean.
		for v := range degrees {
			d := int(avg + rng.NormFloat64()*math.Sqrt(avg))
			degrees[v] = clampDeg(d, maxDeg)
		}
		return degrees
	}
	// Pareto with exponent alpha, dmin chosen so the (untruncated) mean
	// matches: E[d] = dmin*(alpha-1)/(alpha-2) for alpha>2, else dominated
	// by the tail and corrected by rescaling below.
	dmin := 1.0
	if alpha > 2 {
		dmin = avg * (alpha - 2) / (alpha - 1)
		if dmin < 1 {
			dmin = 1
		}
	}
	raw := make([]float64, n)
	sum := 0.0
	for v := range raw {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		d := dmin * math.Pow(u, -1/(alpha-1))
		if d > float64(maxDeg) {
			d = float64(maxDeg)
		}
		raw[v] = d
		sum += d
	}
	// Rescale to hit the target mean after truncation.
	scale := avg * float64(n) / sum
	for v := range degrees {
		degrees[v] = clampDeg(int(raw[v]*scale+0.5), maxDeg)
	}
	return degrees
}

func clampDeg(d, maxDeg int) int {
	if d < 1 {
		return 1
	}
	if d > maxDeg {
		return maxDeg
	}
	return d
}

// communities hides a community structure behind a random vertex-id
// permutation: hidden slot s belongs to community s/size, and each
// community's low slots are its local hubs (in-community neighbour picks
// are Zipf-skewed toward them).
type communities struct {
	size   int
	perm   []int32 // vertex -> hidden slot
	inv    []int32 // hidden slot -> vertex
	member *rand.Zipf
}

func newCommunities(rng *rand.Rand, n, size int) *communities {
	c := &communities{size: size, perm: make([]int32, n), inv: make([]int32, n)}
	p := rng.Perm(n)
	for v, s := range p {
		c.perm[v] = int32(s)
		c.inv[s] = int32(v)
	}
	c.member = rand.NewZipf(rng, 1.4, 1, uint64(size-1))
	return c
}

// sortDegreesByPopularity permutes the degree sequence so that within each
// community, degrees are assigned in descending order of member popularity
// (low hidden slots are the Zipf-favoured local hubs).
func (c *communities) sortDegreesByPopularity(degrees []int) {
	n := len(degrees)
	buf := make([]int, 0, c.size)
	for base := 0; base < n; base += c.size {
		end := base + c.size
		if end > n {
			end = n
		}
		buf = buf[:0]
		for s := base; s < end; s++ {
			buf = append(buf, degrees[c.inv[s]])
		}
		sort.Sort(sort.Reverse(sort.IntSlice(buf)))
		for i, s := 0, base; s < end; i, s = i+1, s+1 {
			degrees[c.inv[s]] = buf[i]
		}
	}
}

// pick draws a vertex from v's community (possibly v itself; the caller
// retries).
func (c *communities) pick(v int) int {
	base := int(c.perm[v]) / c.size * c.size
	slot := base + int(c.member.Uint64())
	if slot >= len(c.inv) {
		slot = len(c.inv) - 1
	}
	return int(c.inv[slot])
}

// pickNeighbor draws one neighbour for v, avoiding duplicates and self
// edges (the self loop is added explicitly by AddSelfLoops where models
// need it).
func pickNeighbor(rng *rand.Rand, hub *rand.Zipf, comm *communities, n, v, window int, localP, commP float64, seen map[int32]struct{}) int32 {
	for {
		var u int
		r := rng.Float64()
		switch {
		case comm != nil && r < commP:
			u = comm.pick(v)
		case localP > 0 && r < commP+localP:
			u = v + rng.Intn(2*window+1) - window
			if u < 0 {
				u += n
			}
			if u >= n {
				u -= n
			}
		case hub != nil:
			u = int(hub.Uint64())
		default:
			u = rng.Intn(n)
		}
		if u == v {
			continue
		}
		if _, dup := seen[int32(u)]; dup {
			// Dense rows on small graphs can loop here; fall back to a
			// linear probe to guarantee termination.
			if len(seen) >= n-1 {
				return int32((v + 1) % n)
			}
			u = (u + 1) % n
			for {
				if u != v {
					if _, d2 := seen[int32(u)]; !d2 {
						return int32(u)
					}
				}
				u = (u + 1) % n
			}
		}
		return int32(u)
	}
}

// Profile identifies one of the paper's dataset shapes (Table 3).
type Profile string

// The four Table 3 dataset profiles.
const (
	Products  Profile = "products"  // avg deg 50.5, heavy reuse, average locality
	Wikipedia Profile = "wikipedia" // avg deg 12.6, embedded locality
	Papers    Profile = "papers"    // avg deg 14.5, average locality
	Twitter   Profile = "twitter"   // avg deg 23.8, extreme tail, embedded locality
)

// Profiles lists all Table 3 profiles in paper order.
func Profiles() []Profile { return []Profile{Products, Wikipedia, Papers, Twitter} }

// InputFeatureLen returns the paper's input feature length for the profile
// (Table 3; wikipedia and twitter have synthetic 256-long features there,
// and the hidden size is 256 everywhere).
func (p Profile) InputFeatureLen() int {
	switch p {
	case Products:
		return 100
	case Wikipedia:
		return 128
	default:
		return 256
	}
}

// PaperStats returns the Table 3 statistics for the full-size dataset, for
// side-by-side reporting against the scaled synthetic corpus.
func (p Profile) PaperStats() (numV, numE int64, stats DegreeStats) {
	switch p {
	case Products:
		return 2_450_000, 124_000_000, DegreeStats{Mean: 50.5, Max: 17_500, Variance: 9_200}
	case Wikipedia:
		return 3_570_000, 45_000_000, DegreeStats{Mean: 12.6, Max: 7_060, Variance: 1_090}
	case Papers:
		return 111_000_000, 1_620_000_000, DegreeStats{Mean: 14.5, Max: 26_700, Variance: 927}
	case Twitter:
		return 61_600_000, 1_470_000_000, DegreeStats{Mean: 23.8, Max: 3_000_000, Variance: 3_960_000}
	}
	return 0, 0, DegreeStats{}
}

// ProfileConfig returns a generator config reproducing the profile's shape
// at the given vertex count.
func ProfileConfig(p Profile, numVertices int) (Config, error) {
	base := Config{NumVertices: numVertices, Seed: 1}
	// MaxDegree follows the paper's max/|V| ratio at full scale but is
	// floored at a multiple of the mean so small instances keep a tail
	// instead of clipping the whole distribution at the cap.
	var ratio float64
	switch p {
	case Products:
		base.AvgDegree = 50.5
		base.Alpha = 2.4
		ratio = 17_500.0 / 2_450_000 // ≈ 1/140
		base.HubZipfS = 1.3
		// Co-purchase communities: strong shared-neighbour structure,
		// hidden from the natural order (§7.2.4 finds products has no
		// embedded locality but responds most to reordering).
		base.CommunityProb = 0.6
		base.CommunitySize = 64
	case Wikipedia:
		base.AvgDegree = 12.6
		base.Alpha = 2.6
		ratio = 7_060.0 / 3_570_000
		base.HubZipfS = 1.2
		base.LocalityProb = 0.55
	case Papers:
		base.AvgDegree = 14.5
		base.Alpha = 2.8
		ratio = 26_700.0 / 111_000_000
		base.HubZipfS = 1.15
		// Citation communities (research fields), hidden from the order.
		base.CommunityProb = 0.35
		base.CommunitySize = 48
	case Twitter:
		base.AvgDegree = 23.8
		base.Alpha = 1.9 // heaviest tail: variance >> mean
		ratio = 3_000_000.0 / 61_600_000
		base.HubZipfS = 1.4
		base.LocalityProb = 0.35
		base.CommunityProb = 0.2
		base.CommunitySize = 96
	default:
		return Config{}, fmt.Errorf("graph: unknown profile %q", p)
	}
	base.MaxDegree = int(float64(numVertices) * ratio)
	if floor := int(8 * base.AvgDegree); base.MaxDegree < floor {
		base.MaxDegree = floor
	}
	return base, nil
}

// GenerateProfile builds a scaled instance of one of the Table 3 profiles.
func GenerateProfile(p Profile, numVertices int) (*CSR, error) {
	cfg, err := ProfileConfig(p, numVertices)
	if err != nil {
		return nil, err
	}
	return Generate(cfg)
}

// ErdosRenyi generates a G(n, p)-style directed graph, used by tests and as
// a structureless control in ablations.
func ErdosRenyi(n int, avgDeg float64, seed int64) (*CSR, error) {
	return Generate(Config{NumVertices: n, AvgDegree: avgDeg, Seed: seed})
}

// Grid2D generates a 4-connected n×m grid (every interior vertex has 4
// neighbours). Grids have perfect locality and uniform degree — the
// opposite extreme from Twitter — so they anchor the locality ablation.
func Grid2D(rows, cols int) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("graph: grid needs positive dims, got %dx%d", rows, cols)
	}
	n := rows * cols
	var src, dst []int32
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r > 0 {
				src = append(src, id(r, c))
				dst = append(dst, id(r-1, c))
			}
			if r < rows-1 {
				src = append(src, id(r, c))
				dst = append(dst, id(r+1, c))
			}
			if c > 0 {
				src = append(src, id(r, c))
				dst = append(dst, id(r, c-1))
			}
			if c < cols-1 {
				src = append(src, id(r, c))
				dst = append(dst, id(r, c+1))
			}
		}
	}
	return FromEdges(n, src, dst)
}

// Star generates a hub-and-spokes graph: vertex 0 is every spoke's sole
// neighbour and aggregates from all spokes. It is the worst case for static
// scheduling and the best case for locality reordering.
func Star(n int) (*CSR, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: star needs at least 2 vertices, got %d", n)
	}
	var src, dst []int32
	for v := 1; v < n; v++ {
		src = append(src, 0, int32(v))
		dst = append(dst, int32(v), 0)
	}
	return FromEdges(n, src, dst)
}
