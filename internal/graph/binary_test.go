package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"graphite/internal/faultinject"
)

func TestBinaryRoundTrip(t *testing.T) {
	g, err := GenerateProfile(Twitter, 500)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatal("size changed")
	}
	for i := range g.Col {
		if g.Col[i] != back.Col[i] {
			t.Fatalf("column %d differs", i)
		}
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	g, err := FromEdges(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 0 {
		t.Fatal("empty graph changed")
	}
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	g, _ := FromEdges(3, []int32{0, 1}, []int32{1, 2})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	bad[0] = 0xFF // magic
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte(nil), good...)
	bad[4] = 99 // version
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}

	// Truncated payload.
	if _, err := ReadBinary(bytes.NewReader(good[:len(good)-2])); err == nil {
		t.Fatal("truncated file accepted")
	}

	// Corrupt a column index out of range.
	bad = append([]byte(nil), good...)
	bad[len(bad)-4] = 0x7F
	bad[len(bad)-3] = 0x7F
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}

// TestReadBinaryHeaderClaimsHugeSizes is the loader-hardening contract: a
// header claiming billions of vertices/edges over a tiny payload must fail
// with a read error after a bounded allocation, not attempt a multi-GB make.
func TestReadBinaryHeaderClaimsHugeSizes(t *testing.T) {
	for _, tc := range []struct{ n, e uint32 }{
		{1 << 30, 8},        // huge vertex count
		{8, 1 << 30},        // huge edge count
		{1 << 30, 1 << 30},  // both
		{1<<31 - 1, 1 << 8}, // at the sanity bound
	} {
		var buf bytes.Buffer
		for _, h := range []uint32{binaryMagic, 1, tc.n, tc.e} {
			binary.Write(&buf, binary.LittleEndian, h)
		}
		// A handful of payload bytes, nowhere near the claimed sizes.
		buf.Write(make([]byte, 64))
		g, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err == nil {
			t.Fatalf("|V|=%d |E|=%d over 64 payload bytes accepted: %d vertices", tc.n, tc.e, g.NumVertices())
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("|V|=%d |E|=%d: err = %v, want unexpected EOF", tc.n, tc.e, err)
		}
	}
}

// TestReadBinaryInjectedFault wires the loader through the fault-injection
// harness: an I/O fault mid-read must surface as an error wrapping the
// injected fault, never a partial or corrupt CSR.
func TestReadBinaryInjectedFault(t *testing.T) {
	g, err := GenerateProfile(Products, 300)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(11)
	in.FailAt("graph/read", 2)
	_, err = ReadBinary(faultinject.Reader(bytes.NewReader(buf.Bytes()), in, "graph/read"))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if in.Fired("graph/read") != 1 {
		t.Fatalf("fired %d times, want 1", in.Fired("graph/read"))
	}
	// Same seed, same call pattern: the fault is reproducible.
	in2 := faultinject.New(11)
	in2.FailAt("graph/read", 2)
	if _, err := ReadBinary(faultinject.Reader(bytes.NewReader(buf.Bytes()), in2, "graph/read")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("replay err = %v, want injected fault", err)
	}
}
