package graph

import (
	"bytes"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	g, err := GenerateProfile(Twitter, 500)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatal("size changed")
	}
	for i := range g.Col {
		if g.Col[i] != back.Col[i] {
			t.Fatalf("column %d differs", i)
		}
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	g, err := FromEdges(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 0 {
		t.Fatal("empty graph changed")
	}
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	g, _ := FromEdges(3, []int32{0, 1}, []int32{1, 2})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	bad[0] = 0xFF // magic
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte(nil), good...)
	bad[4] = 99 // version
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}

	// Truncated payload.
	if _, err := ReadBinary(bytes.NewReader(good[:len(good)-2])); err == nil {
		t.Fatal("truncated file accepted")
	}

	// Corrupt a column index out of range.
	bad = append([]byte(nil), good...)
	bad[len(bad)-4] = 0x7F
	bad[len(bad)-3] = 0x7F
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}
