// Package graph provides the graph substrate: compressed sparse row (CSR)
// adjacency storage, graph builders, synthetic generators mirroring the
// paper's dataset corpus (Table 3), degree statistics, and edge-list IO.
//
// The paper stores the adjacency matrix A in CSR because real graphs are
// >99% sparse (§2.2): the footprint is O(|E|+|V|) instead of O(|V|²), and
// the row pointers directly give the per-vertex gather lists used by the
// aggregation phase and by the DMA descriptors (Fig. 9b).
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CSR is a directed graph in compressed sparse row form. Row u's neighbours
// are Col[Ptr[u]:Ptr[u+1]]; these are the vertices u aggregates FROM (its
// in-neighbourhood N(v) in the paper's notation, since aggregation gathers
// neighbour features into v).
type CSR struct {
	// Ptr has length NumVertices+1; Ptr[0] == 0 and Ptr is non-decreasing.
	Ptr []int32
	// Col holds the neighbour indices of every vertex, row by row.
	Col []int32
}

// NumVertices returns |V|.
func (g *CSR) NumVertices() int {
	if len(g.Ptr) == 0 {
		return 0
	}
	return len(g.Ptr) - 1
}

// NumEdges returns |E| (directed edge count).
func (g *CSR) NumEdges() int { return len(g.Col) }

// Degree returns the number of neighbours of vertex v (the paper's D_v).
func (g *CSR) Degree(v int) int { return int(g.Ptr[v+1] - g.Ptr[v]) }

// Neighbors returns the neighbour slice of vertex v. The slice aliases the
// graph's storage and must be treated as read-only.
func (g *CSR) Neighbors(v int) []int32 { return g.Col[g.Ptr[v]:g.Ptr[v+1]] }

// Validate checks the CSR invariants: monotone row pointers covering Col,
// and neighbour indices within range. Kernels rely on these holding, so the
// loaders and generators all call Validate before returning a graph.
func (g *CSR) Validate() error {
	if len(g.Ptr) == 0 {
		if len(g.Col) != 0 {
			return errors.New("graph: empty Ptr with non-empty Col")
		}
		return nil
	}
	if g.Ptr[0] != 0 {
		return fmt.Errorf("graph: Ptr[0] = %d, want 0", g.Ptr[0])
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.Ptr[v+1] < g.Ptr[v] {
			return fmt.Errorf("graph: Ptr not monotone at vertex %d (%d > %d)", v, g.Ptr[v], g.Ptr[v+1])
		}
	}
	if int(g.Ptr[n]) != len(g.Col) {
		return fmt.Errorf("graph: Ptr[n] = %d, want len(Col) = %d", g.Ptr[n], len(g.Col))
	}
	for i, c := range g.Col {
		if c < 0 || int(c) >= n {
			return fmt.Errorf("graph: Col[%d] = %d out of range [0,%d)", i, c, n)
		}
	}
	return nil
}

// FromEdges builds a CSR graph with n vertices from (src, dst) pairs, where
// each edge means "src aggregates from dst" (dst ∈ N(src)). Duplicate edges
// are kept; neighbour lists are sorted for deterministic iteration.
func FromEdges(n int, src, dst []int32) (*CSR, error) {
	if len(src) != len(dst) {
		return nil, fmt.Errorf("graph: %d sources but %d destinations", len(src), len(dst))
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	ptr := make([]int32, n+1)
	for i, s := range src {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("graph: edge %d source %d out of range [0,%d)", i, s, n)
		}
		if dst[i] < 0 || int(dst[i]) >= n {
			return nil, fmt.Errorf("graph: edge %d destination %d out of range [0,%d)", i, dst[i], n)
		}
		ptr[s+1]++
	}
	for v := 0; v < n; v++ {
		ptr[v+1] += ptr[v]
	}
	col := make([]int32, len(src))
	fill := make([]int32, n)
	for i, s := range src {
		col[ptr[s]+fill[s]] = dst[i]
		fill[s]++
	}
	g := &CSR{Ptr: ptr, Col: col}
	g.SortNeighbors()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// SortNeighbors sorts each vertex's neighbour list ascending in place.
func (g *CSR) SortNeighbors() {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		row := g.Col[g.Ptr[v]:g.Ptr[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
}

// Transpose returns the reverse graph: edge (u,v) becomes (v,u). Training
// back-propagates gradients through the aggregation, which requires
// aggregating along reversed edges (the adjacency transpose).
func (g *CSR) Transpose() *CSR {
	n := g.NumVertices()
	ptr := make([]int32, n+1)
	for _, c := range g.Col {
		ptr[c+1]++
	}
	for v := 0; v < n; v++ {
		ptr[v+1] += ptr[v]
	}
	col := make([]int32, len(g.Col))
	fill := make([]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			col[ptr[v]+fill[v]] = int32(u)
			fill[v]++
		}
	}
	t := &CSR{Ptr: ptr, Col: col}
	t.SortNeighbors()
	return t
}

// AddSelfLoops returns a copy of g where every vertex has itself in its
// neighbour list exactly once. Both GCN and GraphSAGE aggregate over
// N(v) ∪ {v} (Table 2); materialising the self edge lets all kernels and
// the DMA descriptors treat the aggregation as a plain gather over the row.
func (g *CSR) AddSelfLoops() *CSR {
	n := g.NumVertices()
	ptr := make([]int32, n+1)
	for v := 0; v < n; v++ {
		row := g.Neighbors(v)
		extra := int32(1)
		for _, u := range row {
			if int(u) == v {
				extra = 0
				break
			}
		}
		ptr[v+1] = ptr[v] + int32(len(row)) + extra
	}
	col := make([]int32, ptr[n])
	for v := 0; v < n; v++ {
		out := col[ptr[v]:ptr[v+1]]
		row := g.Neighbors(v)
		if len(out) == len(row) {
			copy(out, row)
			continue
		}
		// Insert v keeping the row sorted.
		i := 0
		for i < len(row) && int(row[i]) < v {
			out[i] = row[i]
			i++
		}
		out[i] = int32(v)
		copy(out[i+1:], row[i:])
	}
	return &CSR{Ptr: ptr, Col: col}
}

// HasSelfLoops reports whether every vertex appears in its own row.
func (g *CSR) HasSelfLoops() bool {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		found := false
		for _, u := range g.Neighbors(v) {
			if int(u) == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return n > 0
}

// Permute relabels vertices so that new vertex i is old vertex order[i].
// order must be a permutation of [0, n). The locality optimization (§4.4)
// is applied by permuting the processing order; Permute materialises a
// relabelled graph for experiments that need the storage order changed too.
func (g *CSR) Permute(order []int32) (*CSR, error) {
	n := g.NumVertices()
	if len(order) != n {
		return nil, fmt.Errorf("graph: permutation length %d, want %d", len(order), n)
	}
	inv := make([]int32, n)
	seen := make([]bool, n)
	for newID, oldID := range order {
		if oldID < 0 || int(oldID) >= n {
			return nil, fmt.Errorf("graph: permutation entry %d out of range", oldID)
		}
		if seen[oldID] {
			return nil, fmt.Errorf("graph: vertex %d appears twice in permutation", oldID)
		}
		seen[oldID] = true
		inv[oldID] = int32(newID)
	}
	ptr := make([]int32, n+1)
	for newID := 0; newID < n; newID++ {
		ptr[newID+1] = ptr[newID] + int32(g.Degree(int(order[newID])))
	}
	col := make([]int32, len(g.Col))
	for newID := 0; newID < n; newID++ {
		out := col[ptr[newID]:ptr[newID+1]]
		for i, u := range g.Neighbors(int(order[newID])) {
			out[i] = inv[u]
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return &CSR{Ptr: ptr, Col: col}, nil
}

// DegreeStats summarises a degree distribution the way Table 3 reports it.
type DegreeStats struct {
	Mean     float64
	Max      int
	Variance float64
}

// Stats computes the Table 3 degree statistics of g.
func (g *CSR) Stats() DegreeStats {
	n := g.NumVertices()
	if n == 0 {
		return DegreeStats{}
	}
	var sum, sumSq float64
	maxDeg := 0
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		sum += float64(d)
		sumSq += float64(d) * float64(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := sum / float64(n)
	return DegreeStats{
		Mean:     mean,
		Max:      maxDeg,
		Variance: math.Max(0, sumSq/float64(n)-mean*mean),
	}
}
