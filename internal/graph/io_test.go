package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := GenerateProfile(Wikipedia, 300)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			back.NumVertices(), back.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), back.Neighbors(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d differs after round trip", v)
			}
		}
	}
}

func TestReadEdgeListInfersVertexCount(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 3\n3 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("inferred %d vertices, want 4", g.NumVertices())
	}
}

func TestReadEdgeListHeaderExtendsVertices(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# vertices 10\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("got %d vertices, want 10 (isolated tail vertices kept)", g.NumVertices())
	}
}

func TestReadEdgeListIgnoresCommentsAndBlanks(t *testing.T) {
	in := "# SNAP-style comment\n\n0 1\n# another\n1 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("got %d edges, want 2", g.NumEdges())
	}
}

func TestReadEdgeListRejectsMalformed(t *testing.T) {
	cases := []string{
		"0 1 2\n",             // three fields
		"a b\n",               // not numbers
		"0 -1\n",              // negative id
		"# vertices 1\n0 3\n", // header smaller than max id
		"0\n",                 // one field
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
