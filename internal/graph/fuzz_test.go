package graph

import (
	"encoding/binary"
	"testing"
)

// FuzzFromEdges throws arbitrary edge lists at the CSR builder. Malformed
// input (out-of-range endpoints, mismatched lengths come via the API
// contract) must surface as errors, never panics; accepted input must yield
// a CSR that survives Validate and the derived transforms every kernel
// assumes are safe (Transpose, AddSelfLoops, Stats).
func FuzzFromEdges(f *testing.F) {
	f.Add(4, []byte{0, 0, 0, 0, 1, 0, 0, 0, 3, 0, 0, 0, 2, 0, 0, 0})
	f.Add(1, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(0, []byte{})
	f.Add(3, []byte{0xff, 0xff, 0xff, 0xff, 5, 0, 0, 0}) // negative src, oversized dst
	f.Fuzz(func(t *testing.T, n int, raw []byte) {
		if n < -1 || n > 1<<12 {
			t.Skip()
		}
		edges := len(raw) / 8
		src := make([]int32, edges)
		dst := make([]int32, edges)
		for i := 0; i < edges; i++ {
			src[i] = int32(binary.LittleEndian.Uint32(raw[i*8:]))
			dst[i] = int32(binary.LittleEndian.Uint32(raw[i*8+4:]))
		}

		// Raw values: overwhelmingly invalid; must error, not panic.
		if g, err := FromEdges(n, src, dst); err == nil {
			checkCSRInvariants(t, g, edges)
		}

		// Clamped into range: must build and honour the CSR invariants.
		if n > 0 {
			for i := range src {
				src[i] = ((src[i] % int32(n)) + int32(n)) % int32(n)
				dst[i] = ((dst[i] % int32(n)) + int32(n)) % int32(n)
			}
			g, err := FromEdges(n, src, dst)
			if err != nil {
				t.Fatalf("in-range edges rejected: %v", err)
			}
			checkCSRInvariants(t, g, edges)
		}
	})
}

// checkCSRInvariants exercises the validation and transform surface that
// every kernel takes for granted.
func checkCSRInvariants(t *testing.T, g *CSR, edges int) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("built CSR fails Validate: %v", err)
	}
	if g.NumEdges() != edges {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), edges)
	}
	degSum := 0
	for v := 0; v < g.NumVertices(); v++ {
		degSum += g.Degree(v)
	}
	if degSum != edges {
		t.Fatalf("degree sum %d != edge count %d", degSum, edges)
	}
	gt := g.Transpose()
	if err := gt.Validate(); err != nil {
		t.Fatalf("transpose fails Validate: %v", err)
	}
	if gt.NumEdges() != edges {
		t.Fatalf("transpose has %d edges, want %d", gt.NumEdges(), edges)
	}
	gs := g.AddSelfLoops()
	if err := gs.Validate(); err != nil {
		t.Fatalf("AddSelfLoops fails Validate: %v", err)
	}
	if !gs.HasSelfLoops() && gs.NumVertices() > 0 {
		t.Fatal("AddSelfLoops left a vertex without a self edge")
	}
	_ = g.Stats()
}
