package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// binaryMagic identifies the binary CSR container format.
const binaryMagic = 0x47433152 // "GC1R"

// WriteBinary serialises g in a compact binary CSR container: magic,
// version, |V|, |E|, then the row-pointer and column arrays as
// little-endian int32. Loading a large corpus this way avoids re-parsing
// edge lists on every run (ogbn-papers100M-scale graphs take minutes to
// parse as text).
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, 1, uint32(g.NumVertices()), uint32(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("graph: writing header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Ptr); err != nil {
		return fmt.Errorf("graph: writing row pointers: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Col); err != nil {
		return fmt.Errorf("graph: writing columns: %w", err)
	}
	return bw.Flush()
}

// ReadBinary parses the WriteBinary format and validates the result.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x (not a binary CSR file)", hdr[0])
	}
	if hdr[1] != 1 {
		return nil, fmt.Errorf("graph: unsupported binary CSR version %d", hdr[1])
	}
	n, e := int(hdr[2]), int(hdr[3])
	const maxReasonable = 1 << 31
	if n < 0 || e < 0 || n > maxReasonable || e > maxReasonable {
		return nil, fmt.Errorf("graph: implausible header |V|=%d |E|=%d", n, e)
	}
	g := &CSR{Ptr: make([]int32, n+1), Col: make([]int32, e)}
	if err := binary.Read(br, binary.LittleEndian, g.Ptr); err != nil {
		return nil, fmt.Errorf("graph: reading row pointers: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Col); err != nil {
		return nil, fmt.Errorf("graph: reading columns: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary file contains invalid CSR: %w", err)
	}
	return g, nil
}
