package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// binaryMagic identifies the binary CSR container format.
const binaryMagic = 0x47433152 // "GC1R"

// WriteBinary serialises g in a compact binary CSR container: magic,
// version, |V|, |E|, then the row-pointer and column arrays as
// little-endian int32. Loading a large corpus this way avoids re-parsing
// edge lists on every run (ogbn-papers100M-scale graphs take minutes to
// parse as text).
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, 1, uint32(g.NumVertices()), uint32(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("graph: writing header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Ptr); err != nil {
		return fmt.Errorf("graph: writing row pointers: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Col); err != nil {
		return fmt.Errorf("graph: writing columns: %w", err)
	}
	return bw.Flush()
}

// ReadBinary parses the WriteBinary format and validates the result.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x (not a binary CSR file)", hdr[0])
	}
	if hdr[1] != 1 {
		return nil, fmt.Errorf("graph: unsupported binary CSR version %d", hdr[1])
	}
	n, e := int(hdr[2]), int(hdr[3])
	const maxReasonable = 1 << 31
	if n < 0 || e < 0 || n > maxReasonable || e > maxReasonable {
		return nil, fmt.Errorf("graph: implausible header |V|=%d |E|=%d", n, e)
	}
	ptr, err := readInt32s(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("graph: reading row pointers: %w", err)
	}
	col, err := readInt32s(br, e)
	if err != nil {
		return nil, fmt.Errorf("graph: reading columns: %w", err)
	}
	g := &CSR{Ptr: ptr, Col: col}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary file contains invalid CSR: %w", err)
	}
	return g, nil
}

// readInt32s reads count little-endian int32s in bounded chunks, growing
// the result as data actually arrives. The header's claimed sizes are never
// trusted with an upfront allocation: a corrupt or truncated file fails
// with io.ErrUnexpectedEOF after at most one chunk of over-allocation,
// instead of attempting a multi-GB make().
func readInt32s(r io.Reader, count int) ([]int32, error) {
	const chunkElems = 1 << 16 // 256KB reads
	capHint := count
	if capHint > chunkElems {
		capHint = chunkElems
	}
	out := make([]int32, 0, capHint)
	buf := make([]byte, 4*chunkElems)
	for len(out) < count {
		elems := count - len(out)
		if elems > chunkElems {
			elems = chunkElems
		}
		b := buf[:4*elems]
		if _, err := io.ReadFull(r, b); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		for i := 0; i < elems; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(b[4*i:])))
		}
	}
	return out, nil
}
