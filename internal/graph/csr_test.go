package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromEdges(t *testing.T, n int, src, dst []int32) *CSR {
	t.Helper()
	g, err := FromEdges(n, src, dst)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := mustFromEdges(t, 4,
		[]int32{1, 1, 1, 0, 0, 3},
		[]int32{0, 2, 3, 2, 0, 1})
	if g.NumVertices() != 4 || g.NumEdges() != 6 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(1) != 3 {
		t.Fatalf("degree(1)=%d, want 3", g.Degree(1))
	}
	nbr := g.Neighbors(1)
	want := []int32{0, 2, 3}
	for i := range want {
		if nbr[i] != want[i] {
			t.Fatalf("neighbors(1)=%v, want %v", nbr, want)
		}
	}
	if g.Degree(2) != 0 {
		t.Fatalf("degree(2)=%d, want 0", g.Degree(2))
	}
}

func TestFromEdgesErrors(t *testing.T) {
	if _, err := FromEdges(2, []int32{0}, []int32{}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := FromEdges(2, []int32{0}, []int32{5}); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	if _, err := FromEdges(2, []int32{-1}, []int32{0}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := FromEdges(-1, nil, nil); err == nil {
		t.Fatal("negative vertex count accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := mustFromEdges(t, 0, nil, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
	s := g.Stats()
	if s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty graph stats %+v", s)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := mustFromEdges(t, 3, []int32{0, 1}, []int32{1, 2})
	g.Col[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	g = mustFromEdges(t, 3, []int32{0, 1}, []int32{1, 2})
	g.Ptr[1] = 5
	if err := g.Validate(); err == nil {
		t.Fatal("broken row pointers accepted")
	}
	bad := &CSR{Ptr: nil, Col: []int32{0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty Ptr with Col accepted")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		e := rng.Intn(100)
		src := make([]int32, e)
		dst := make([]int32, e)
		for i := range src {
			src[i] = int32(rng.Intn(n))
			dst[i] = int32(rng.Intn(n))
		}
		g, err := FromEdges(n, src, dst)
		if err != nil {
			return false
		}
		tt := g.Transpose().Transpose()
		if tt.NumVertices() != g.NumVertices() || tt.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			a, b := g.Neighbors(v), tt.Neighbors(v)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeEdgeReversal(t *testing.T) {
	g := mustFromEdges(t, 3, []int32{0, 0, 2}, []int32{1, 2, 1})
	tr := g.Transpose()
	if tr.Degree(1) != 2 || tr.Degree(2) != 1 || tr.Degree(0) != 0 {
		t.Fatalf("transpose degrees wrong: %d %d %d", tr.Degree(0), tr.Degree(1), tr.Degree(2))
	}
}

func TestAddSelfLoops(t *testing.T) {
	g := mustFromEdges(t, 4, []int32{0, 1, 2}, []int32{1, 1, 3})
	if g.HasSelfLoops() {
		t.Fatal("graph without self loops reports having them")
	}
	sl := g.AddSelfLoops()
	if !sl.HasSelfLoops() {
		t.Fatal("AddSelfLoops missing a loop")
	}
	// Vertex 1 already had the self edge 1->1: no duplicate added.
	if sl.Degree(1) != 1 {
		t.Fatalf("degree(1)=%d after self loops, want 1 (1->1 already present)", sl.Degree(1))
	}
	// Vertex 0 had only 0->1: gains the self loop.
	if sl.Degree(0) != 2 {
		t.Fatalf("degree(0)=%d after self loops, want 2", sl.Degree(0))
	}
	// Idempotent.
	sl2 := sl.AddSelfLoops()
	if sl2.NumEdges() != sl.NumEdges() {
		t.Fatalf("AddSelfLoops not idempotent: %d vs %d edges", sl2.NumEdges(), sl.NumEdges())
	}
	// Rows remain sorted.
	if err := sl.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < sl.NumVertices(); v++ {
		row := sl.Neighbors(v)
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				t.Fatalf("row %d not strictly sorted: %v", v, row)
			}
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	g, err := GenerateProfile(Products, 200)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	order := rand.New(rand.NewSource(7)).Perm(n)
	o32 := make([]int32, n)
	for i, v := range order {
		o32[i] = int32(v)
	}
	p, err := g.Permute(o32)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Inverse permutation restores the original.
	inv := make([]int32, n)
	for newID, oldID := range o32 {
		inv[oldID] = int32(newID)
	}
	back, err := p.Permute(inv)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		a, b := g.Neighbors(v), back.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d row changed: %v vs %v", v, a, b)
			}
		}
	}
}

func TestPermuteRejectsBadInput(t *testing.T) {
	g := mustFromEdges(t, 3, []int32{0}, []int32{1})
	if _, err := g.Permute([]int32{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := g.Permute([]int32{0, 1, 1}); err == nil {
		t.Fatal("duplicate entry accepted")
	}
	if _, err := g.Permute([]int32{0, 1, 5}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}

func TestStats(t *testing.T) {
	g := mustFromEdges(t, 3, []int32{0, 0, 1}, []int32{1, 2, 2})
	s := g.Stats()
	if s.Mean != 1 || s.Max != 2 {
		t.Fatalf("stats %+v, want mean 1 max 2", s)
	}
	// degrees 2,1,0: variance = (4+1+0)/3 - 1 = 2/3
	if s.Variance < 0.66 || s.Variance > 0.67 {
		t.Fatalf("variance %g, want 2/3", s.Variance)
	}
}
