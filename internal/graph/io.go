package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g as a plain-text edge list: a header line
// "# vertices N" followed by one "src dst" pair per line. The format is the
// least-common-denominator interchange used by GAP-style benchmark suites.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumVertices()); err != nil {
		return err
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Lines starting with '#'
// other than the vertex header and blank lines are ignored, so files from
// SNAP-style sources load too (vertex count then inferred from the maximum
// ID). Malformed lines produce an error naming the line number.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var src, dst []int32
	declared := -1
	maxID := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var n int
			if _, err := fmt.Sscanf(line, "# vertices %d", &n); err == nil {
				declared = n
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst', got %q", lineNo, line)
		}
		s, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		d, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination %q: %w", lineNo, fields[1], err)
		}
		if s < 0 || d < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		src = append(src, int32(s))
		dst = append(dst, int32(d))
		if int32(s) > maxID {
			maxID = int32(s)
		}
		if int32(d) > maxID {
			maxID = int32(d)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	n := int(maxID) + 1
	if declared >= 0 {
		if declared < n {
			return nil, fmt.Errorf("graph: header declares %d vertices but edge references vertex %d", declared, maxID)
		}
		n = declared
	}
	return FromEdges(n, src, dst)
}
