package graph

import (
	"math"
	"testing"
)

func TestGenerateProfilesMatchShape(t *testing.T) {
	const n = 4000
	for _, p := range Profiles() {
		g, err := GenerateProfile(p, n)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		got := g.Stats()
		_, _, want := p.PaperStats()
		if math.Abs(got.Mean-want.Mean) > want.Mean*0.25 {
			t.Errorf("%s: mean degree %.1f, want within 25%% of %.1f", p, got.Mean, want.Mean)
		}
		// The tail ordering must match the paper: twitter has by far the
		// largest variance relative to its mean.
		t.Logf("%s: mean=%.1f max=%d var=%.0f", p, got.Mean, got.Max, got.Variance)
	}
}

func TestGenerateTwitterHasHeaviestTail(t *testing.T) {
	const n = 4000
	varOverMean := map[Profile]float64{}
	for _, p := range Profiles() {
		g, err := GenerateProfile(p, n)
		if err != nil {
			t.Fatal(err)
		}
		s := g.Stats()
		varOverMean[p] = s.Variance / s.Mean
	}
	for _, p := range []Profile{Wikipedia, Papers} {
		if varOverMean[Twitter] <= varOverMean[p] {
			t.Errorf("twitter tail (var/mean %.1f) not heavier than %s (%.1f)",
				varOverMean[Twitter], p, varOverMean[p])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{NumVertices: 500, AvgDegree: 8, Alpha: 2.2, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("nondeterministic edge count: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			t.Fatalf("nondeterministic at column %d", i)
		}
	}
}

func TestGenerateNoSelfOrDuplicateEdges(t *testing.T) {
	g, err := Generate(Config{NumVertices: 300, AvgDegree: 20, Alpha: 2.0, HubZipfS: 1.3, LocalityProb: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		row := g.Neighbors(v)
		for i, u := range row {
			if int(u) == v {
				t.Fatalf("vertex %d has a self edge", v)
			}
			if i > 0 && row[i-1] == u {
				t.Fatalf("vertex %d has duplicate neighbour %d", v, u)
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{NumVertices: 0, AvgDegree: 5}); err == nil {
		t.Fatal("zero vertices accepted")
	}
	if _, err := Generate(Config{NumVertices: 10, AvgDegree: 0}); err == nil {
		t.Fatal("zero degree accepted")
	}
}

func TestGenerateDenseSmallGraphTerminates(t *testing.T) {
	// Degree close to n-1 forces the duplicate-avoidance fallback path.
	g, err := Generate(Config{NumVertices: 8, AvgDegree: 7, Alpha: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2D(t *testing.T) {
	g, err := Grid2D(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 12 {
		t.Fatalf("vertices %d, want 12", g.NumVertices())
	}
	// Interior vertex (1,1) = id 5 has 4 neighbours.
	if g.Degree(5) != 4 {
		t.Fatalf("interior degree %d, want 4", g.Degree(5))
	}
	// Corner has 2.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree %d, want 2", g.Degree(0))
	}
	if _, err := Grid2D(0, 4); err == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestStar(t *testing.T) {
	g, err := Star(10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 9 {
		t.Fatalf("hub degree %d, want 9", g.Degree(0))
	}
	for v := 1; v < 10; v++ {
		if g.Degree(v) != 1 || g.Neighbors(v)[0] != 0 {
			t.Fatalf("spoke %d wrong: deg=%d", v, g.Degree(v))
		}
	}
	if _, err := Star(1); err == nil {
		t.Fatal("one-vertex star accepted")
	}
}

func TestProfileInputFeatureLens(t *testing.T) {
	want := map[Profile]int{Products: 100, Wikipedia: 128, Papers: 256, Twitter: 256}
	for p, f := range want {
		if got := p.InputFeatureLen(); got != f {
			t.Errorf("%s input feature len %d, want %d", p, got, f)
		}
	}
}
