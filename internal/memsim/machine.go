package memsim

import (
	"fmt"
	"sort"
)

// storeBufferEntries is the per-core store-buffer depth gating in-flight
// store misses.
const storeBufferEntries = 32

// Config describes the simulated machine. DefaultConfig mirrors the
// paper's evaluation platform (§6): a Cascade Lake server with 32KB 8-way
// L1D, 1MB 16-way L2, 1.375MB of shared L3 per core, and 140.8GB/s of DRAM
// bandwidth at a fixed 2.7GHz — which works out to ≈52 bytes/cycle across
// 28 cores, i.e. ≈1.86 bytes/cycle/core, the figure we scale by the
// simulated core count.
type Config struct {
	Cores             int
	L1Bytes, L1Ways   int
	L2Bytes, L2Ways   int
	L3Bytes, L3Ways   int
	L1Lat             int64 // load-to-use, hidden when pipelined
	L2Lat             int64
	L3Lat             int64
	DRAMLat           int64   // service latency once issued to DRAM
	MSHRs             int     // per-core L1 fill buffers (§3: 10-12 on Skylake-family cores)
	DRAMBytesPerCycle float64 // shared pin bandwidth

	// STLBEntries enables the second-level TLB model when > 0: each core
	// (and its DMA engine, which "accesses the STLB for address
	// translation", §5) translates through a per-core fully-associative
	// LRU TLB over 4KB pages, paying STLBMissLat cycles per walk. Off by
	// default; the experiment harness leaves translation out of the
	// calibration, but graphite-sim exposes it for what-if runs.
	STLBEntries int
	// STLBMissLat is the page-walk penalty in cycles (default 60 when the
	// TLB is enabled).
	STLBMissLat int64
}

// DefaultConfig returns the §6 machine scaled to the given core count.
func DefaultConfig(cores int) Config {
	if cores <= 0 {
		cores = 8
	}
	return Config{
		Cores:   cores,
		L1Bytes: 32 << 10, L1Ways: 8,
		L2Bytes: 1 << 20, L2Ways: 16,
		L3Bytes: cores * 1408 << 10, L3Ways: 11,
		L1Lat: 4, L2Lat: 14, L3Lat: 44,
		DRAMLat:           240,
		MSHRs:             10,
		DRAMBytesPerCycle: 1.86 * float64(cores),
	}
}

// core is one simulated core's execution state.
type core struct {
	cycle         int64
	outstanding   []int64 // completion times of in-flight demand misses, sorted
	outstandingPf []int64 // completion times of in-flight prefetches, sorted
	outstandingSt []int64 // completion times of in-flight store misses, sorted
	lastMissLine  int64   // previous missed line, for stream detection

	computeCycles  int64
	fillFullStall  int64 // cycles stalled because all fill buffers were busy
	drainStall     int64 // cycles stalled waiting for issued loads to land
	l1Hits, l1Miss int64
	l2Hits, l2Miss int64
	l3Hits, l3Miss int64
	dramQueue      int64 // cumulative DRAM queuing delay observed
	dramReads      int64
	tlbWalks       int64
}

// Machine is the simulated multi-core memory system. It is not safe for
// concurrent use: the workload drivers interleave agents explicitly (by
// advancing whichever agent has the smallest clock), which is what makes
// multi-core contention deterministic.
type Machine struct {
	cfg   Config
	cores []core
	l1    []*Cache
	l2    []*Cache
	l3    *Cache

	tlbs []*Cache // per-core STLB (nil when disabled)

	dramFree      int64 // cycle at which DRAM can accept the next line
	lineCycles    float64
	dramFracAccum float64
	dramWrites    int64
}

// NewMachine builds a machine.
func NewMachine(cfg Config) *Machine {
	if cfg.Cores <= 0 {
		panic("memsim: config needs at least one core")
	}
	if cfg.MSHRs <= 0 {
		panic("memsim: config needs at least one fill buffer")
	}
	if cfg.DRAMBytesPerCycle <= 0 {
		panic("memsim: config needs DRAM bandwidth")
	}
	if cfg.STLBEntries > 0 && cfg.STLBMissLat <= 0 {
		cfg.STLBMissLat = 60
	}
	m := &Machine{cfg: cfg, lineCycles: float64(LineBytes) / cfg.DRAMBytesPerCycle}
	m.cores = make([]core, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		m.l1 = append(m.l1, NewCache(cfg.L1Bytes, cfg.L1Ways))
		m.l2 = append(m.l2, NewCache(cfg.L2Bytes, cfg.L2Ways))
		if cfg.STLBEntries > 0 {
			m.tlbs = append(m.tlbs, NewCache(cfg.STLBEntries*LineBytes, cfg.STLBEntries))
		}
	}
	m.l3 = NewCache(cfg.L3Bytes, cfg.L3Ways)
	return m
}

// linesPerPage converts line numbers to 4KB page numbers.
const linesPerPage = 4096 / LineBytes

// translate charges core c for the address translation of `line` when the
// TLB model is enabled, returning the walk penalty (0 on a TLB hit). The
// TLB reuses the Cache structure keyed by page number.
func (m *Machine) translate(c int, line int64) int64 {
	if m.tlbs == nil {
		return 0
	}
	page := line / linesPerPage
	tlb := m.tlbs[c]
	if tlb.Access(page, false) {
		return 0
	}
	tlb.Install(page, false)
	m.cores[c].tlbWalks++
	return m.cfg.STLBMissLat
}

// Translate exposes the TLB charge for agents that share a core's STLB —
// the DMA engine "accesses the STLB for address translation" (§5). Returns
// the walk penalty in cycles without advancing the core clock.
func (m *Machine) Translate(c int, line int64) int64 { return m.translate(c, line) }

// TLBWalks returns the total page walks across cores (0 with the model
// disabled).
func (m *Machine) TLBWalks() int64 {
	var sum int64
	for i := range m.cores {
		sum += m.cores[i].tlbWalks
	}
	return sum
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Cycle returns core c's current clock.
func (m *Machine) Cycle(c int) int64 { return m.cores[c].cycle }

// AdvanceTo moves core c's clock forward to at least cycle (used by agents
// synchronising on each other, e.g. Algorithm 5's WAIT on the DMA engine).
// The skipped time is accounted as drain (memory) stall when stall is true.
func (m *Machine) AdvanceTo(c int, cycle int64, stall bool) {
	co := &m.cores[c]
	if cycle > co.cycle {
		if stall {
			co.drainStall += cycle - co.cycle
		}
		co.cycle = cycle
	}
}

// Compute consumes n execution cycles on core c.
func (m *Machine) Compute(c int, n int64) {
	if n <= 0 {
		return
	}
	co := &m.cores[c]
	co.cycle += n
	co.computeCycles += n
}

// dramService books one line transfer starting no earlier than at,
// returning (completionTime, queuingDelay).
func (m *Machine) dramService(at int64) (int64, int64) {
	start := at
	if m.dramFree > start {
		start = m.dramFree
	}
	m.dramFracAccum += m.lineCycles
	whole := int64(m.dramFracAccum)
	m.dramFracAccum -= float64(whole)
	m.dramFree = start + whole
	return start + m.cfg.DRAMLat, start - at
}

// missPath services an L1 miss of core c issued at time t, touching L2, L3
// and DRAM as needed and installing the line on the way back. Returns the
// completion time.
func (m *Machine) missPath(c int, line int64, t int64, write bool) int64 {
	co := &m.cores[c]
	var complete int64
	switch {
	case m.l2[c].Access(line, false):
		co.l2Hits++
		complete = t + m.cfg.L2Lat
	case m.l3.Access(line, false):
		co.l2Miss++
		co.l3Hits++
		complete = t + m.cfg.L3Lat
		m.installL2(c, line)
	default:
		co.l2Miss++
		co.l3Miss++
		// Stream detection: a read continuing the previous miss's line
		// run has already been requested by the L2 hardware prefetcher,
		// so it pays queueing and a short residual latency instead of the
		// full DRAM round trip. Feature rows span many consecutive lines,
		// and this is what lets one aggregating core pull more than its
		// fair bandwidth share (and lets fusion hide the update phase).
		lat := m.cfg.DRAMLat
		if line == co.lastMissLine+1 {
			lat = m.cfg.DRAMLat / 6
		}
		start := t + m.cfg.L3Lat
		if m.dramFree > start {
			start = m.dramFree
		}
		m.dramFracAccum += m.lineCycles
		whole := int64(m.dramFracAccum)
		m.dramFracAccum -= float64(whole)
		m.dramFree = start + whole
		co.dramQueue += start - (t + m.cfg.L3Lat)
		co.dramReads++
		complete = start + lat
		m.installL3(line)
		m.installL2(c, line)
	}
	co.lastMissLine = line
	if ev := m.l1[c].Install(line, write); ev.Valid && ev.Dirty {
		m.installL2Dirty(c, ev.Line)
	}
	return complete
}

func (m *Machine) installL2(c int, line int64) {
	if ev := m.l2[c].Install(line, false); ev.Valid && ev.Dirty {
		m.installL3Dirty(ev.Line)
	}
}

func (m *Machine) installL2Dirty(c int, line int64) {
	if ev := m.l2[c].Install(line, true); ev.Valid && ev.Dirty {
		m.installL3Dirty(ev.Line)
	}
}

func (m *Machine) installL3(line int64) {
	if ev := m.l3.Install(line, false); ev.Valid && ev.Dirty {
		m.dramWriteBack()
	}
}

func (m *Machine) installL3Dirty(line int64) {
	if ev := m.l3.Install(line, true); ev.Valid && ev.Dirty {
		m.dramWriteBack()
	}
}

func (m *Machine) dramWriteBack() {
	// Write-backs consume bandwidth in the background; no core waits.
	m.dramFracAccum += m.lineCycles
	whole := int64(m.dramFracAccum)
	m.dramFracAccum -= float64(whole)
	m.dramFree += whole
	m.dramWrites++
}

// retire frees fill-buffer entries whose loads completed by cycle `now`.
func (co *core) retire(now int64) {
	i := 0
	for i < len(co.outstanding) && co.outstanding[i] <= now {
		i++
	}
	if i > 0 {
		co.outstanding = co.outstanding[i:]
	}
	i = 0
	for i < len(co.outstandingPf) && co.outstandingPf[i] <= now {
		i++
	}
	if i > 0 {
		co.outstandingPf = co.outstandingPf[i:]
	}
	i = 0
	for i < len(co.outstandingSt) && co.outstandingSt[i] <= now {
		i++
	}
	if i > 0 {
		co.outstandingSt = co.outstandingSt[i:]
	}
}

func (co *core) occupancy() int { return len(co.outstanding) + len(co.outstandingPf) }

// earliestOutstanding returns the earliest completion among all in-flight
// fill-buffer entries; callers must ensure occupancy() > 0.
func (co *core) earliestOutstanding() int64 {
	switch {
	case len(co.outstanding) == 0:
		return co.outstandingPf[0]
	case len(co.outstandingPf) == 0:
		return co.outstanding[0]
	case co.outstanding[0] < co.outstandingPf[0]:
		return co.outstanding[0]
	default:
		return co.outstandingPf[0]
	}
}

// access is the common load/store/prefetch path.
func (m *Machine) access(c int, line int64, write, prefetch bool) {
	co := &m.cores[c]
	co.cycle++ // issue slot
	co.cycle += m.translate(c, line)
	if m.l1[c].Access(line, write) {
		co.l1Hits++
		// The stream detector follows accesses, not misses: a hit on
		// line N (e.g. a software-prefetched row head) still primes the
		// prefetcher for line N+1.
		co.lastMissLine = line
		return
	}
	co.l1Miss++
	co.retire(co.cycle)
	if write {
		// Store misses drain through a dedicated store buffer: they do
		// not compete with demand loads for the L1 fill buffers, and only
		// a full store buffer stalls the core.
		if len(co.outstandingSt) >= storeBufferEntries {
			earliest := co.outstandingSt[0]
			if wait := earliest - co.cycle; wait > 0 {
				co.fillFullStall += wait
				co.cycle = earliest
			}
			co.retire(co.cycle)
		}
	} else if co.occupancy() >= m.cfg.MSHRs {
		if prefetch {
			// Hardware drops software prefetches when no fill buffer is
			// free — the reason the paper limits prefetching to the first
			// two lines of each feature vector (§4.1).
			return
		}
		// All fill buffers busy: the symptom §3 flags ("the L1 data cache
		// line fill buffer is full almost 100% of the time").
		earliest := co.earliestOutstanding()
		if wait := earliest - co.cycle; wait > 0 {
			co.fillFullStall += wait
			co.cycle = earliest
		}
		co.retire(co.cycle)
	}
	complete := m.missPath(c, line, co.cycle, write)
	list := &co.outstanding
	switch {
	case write:
		list = &co.outstandingSt
	case prefetch:
		// Prefetches occupy fill buffers but are not waited on by a
		// Drain: they have no consumer.
		list = &co.outstandingPf
	}
	// Insert keeping completion times sorted (bounded by MSHR count).
	idx := sort.Search(len(*list), func(i int) bool { return (*list)[i] >= complete })
	*list = append(*list, 0)
	copy((*list)[idx+1:], (*list)[idx:])
	(*list)[idx] = complete
}

// Read issues a load of the line on core c.
func (m *Machine) Read(c int, line int64) { m.access(c, line, false, false) }

// Write issues a store to the line on core c (write-allocate, write-back).
func (m *Machine) Write(c int, line int64) { m.access(c, line, true, false) }

// Prefetch issues a software prefetch of the line on core c: it occupies a
// fill buffer like a demand miss (adding "excessive software prefetch can
// instead degrade the performance" when the buffers are full, §4.1) but a
// Drain does not wait for it.
func (m *Machine) Prefetch(c int, line int64) { m.access(c, line, false, true) }

// Drain stalls core c until every outstanding demand load has completed —
// the data dependency at the end of a reduction block. In-flight
// prefetches keep their fill buffers but are not waited on.
func (m *Machine) Drain(c int) {
	co := &m.cores[c]
	if n := len(co.outstanding); n > 0 {
		last := co.outstanding[n-1]
		if last > co.cycle {
			co.drainStall += last - co.cycle
			co.cycle = last
		}
		co.outstanding = co.outstanding[:0]
	}
	co.retire(co.cycle)
}

// L3Read issues a private-cache-bypassing load at time `at` (the DMA
// engine's input path, §5: gathered inputs never enter L1/L2). streamed
// marks a line continuing a sequential run (a DRAM row-buffer hit /
// prefetched stream), which pays a reduced residual latency like the core
// path's stream detection. Returns the completion time and the DRAM
// queuing delay (0 on an L3 hit).
func (m *Machine) L3Read(line int64, at int64, streamed bool) (complete, queued int64) {
	if m.l3.Access(line, false) {
		return at + m.cfg.L3Lat, 0
	}
	lat := m.cfg.DRAMLat
	if streamed {
		lat = m.cfg.DRAMLat / 6
	}
	start := at + m.cfg.L3Lat
	if m.dramFree > start {
		start = m.dramFree
	}
	m.dramFracAccum += m.lineCycles
	whole := int64(m.dramFracAccum)
	m.dramFracAccum -= float64(whole)
	m.dramFree = start + whole
	m.installL3(line)
	return start + lat, start - (at + m.cfg.L3Lat)
}

// L2WriteFromDMA installs a line dirty into core c's L2 at no core cost:
// the DMA engine flushing its output buffer to L2 so the subsequent update
// phase hits (§5.2). Counts as an L2 access.
func (m *Machine) L2WriteFromDMA(c int, line int64) {
	if !m.l2[c].Access(line, true) {
		m.installL2Dirty(c, line)
	}
}

// Stats aggregates the machine's counters.
type Stats struct {
	Cores          int
	MaxCycles      int64 // makespan across cores
	TotalCycles    int64 // sum over cores
	ComputeCycles  int64
	FillFullStall  int64
	DrainStall     int64
	DRAMQueueDelay int64
	L1Accesses     int64
	L1Misses       int64
	L2Accesses     int64
	L2Misses       int64
	L3Accesses     int64
	L3Misses       int64
	DRAMReadLines  int64
	DRAMWriteLines int64
}

// MemStall returns the cycles attributed to memory stalls.
func (s Stats) MemStall() int64 { return s.FillFullStall + s.DrainStall }

// DRAMReadBytes returns total bytes read from DRAM.
func (s Stats) DRAMReadBytes() int64 { return s.DRAMReadLines * LineBytes }

// DRAMWriteBytes returns total bytes written to DRAM.
func (s Stats) DRAMWriteBytes() int64 { return s.DRAMWriteLines * LineBytes }

// L1MissRate returns the aggregate L1 miss rate.
func (s Stats) L1MissRate() float64 {
	if s.L1Accesses == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.L1Accesses)
}

// L2MissRate returns the aggregate L2 miss rate.
func (s Stats) L2MissRate() float64 {
	if s.L2Accesses == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(s.L2Accesses)
}

// Stats snapshots the counters.
func (m *Machine) Stats() Stats {
	s := Stats{Cores: m.cfg.Cores, DRAMWriteLines: m.dramWrites}
	for i := range m.cores {
		co := &m.cores[i]
		if co.cycle > s.MaxCycles {
			s.MaxCycles = co.cycle
		}
		s.TotalCycles += co.cycle
		s.ComputeCycles += co.computeCycles
		s.FillFullStall += co.fillFullStall
		s.DrainStall += co.drainStall
		s.DRAMQueueDelay += co.dramQueue
		s.DRAMReadLines += co.dramReads
	}
	for i := range m.l1 {
		s.L1Accesses += m.l1[i].Accesses
		s.L1Misses += m.l1[i].Misses
		s.L2Accesses += m.l2[i].Accesses
		s.L2Misses += m.l2[i].Misses
	}
	s.L3Accesses = m.l3.Accesses
	s.L3Misses = m.l3.Misses
	return s
}

// AddressRegion hands out non-overlapping address ranges for the synthetic
// address map workload drivers use.
type AddressRegion struct {
	Base   int64
	Stride int64 // bytes per row
}

// RowLine returns the line number of byte `off` within row `row`.
func (r AddressRegion) RowLine(row int, off int64) int64 {
	return (r.Base + int64(row)*r.Stride + off) / LineBytes
}

// RowLines returns the [first, last] line span of a row prefix of the given
// byte length.
func (r AddressRegion) RowLines(row int, bytes int64) (first, count int64) {
	if bytes <= 0 {
		return 0, 0
	}
	start := r.Base + int64(row)*r.Stride
	first = start / LineBytes
	last := (start + bytes - 1) / LineBytes
	return first, last - first + 1
}

// AddressMap allocates regions sequentially with gap padding so regions
// never share a line.
type AddressMap struct {
	next int64
}

// NewAddressMap starts allocating at a non-zero base.
func NewAddressMap() *AddressMap { return &AddressMap{next: 1 << 20} }

// Alloc reserves rows×stride bytes and returns the region.
func (am *AddressMap) Alloc(rows int, strideBytes int64) AddressRegion {
	if strideBytes%LineBytes != 0 {
		strideBytes = (strideBytes/LineBytes + 1) * LineBytes
	}
	r := AddressRegion{Base: am.next, Stride: strideBytes}
	am.next += int64(rows)*strideBytes + LineBytes
	return r
}

// String implements fmt.Stringer for debugging.
func (r AddressRegion) String() string {
	return fmt.Sprintf("region@%#x stride %d", r.Base, r.Stride)
}
