package memsim

import (
	"testing"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(1024, 2) // 16 lines, 2-way, 8 sets
	if c.Access(1, false) {
		t.Fatal("cold access hit")
	}
	c.Install(1, false)
	if !c.Access(1, false) {
		t.Fatal("installed line missed")
	}
	if c.Accesses != 2 || c.Misses != 1 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses, c.Misses)
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate %g", c.MissRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2*LineBytes*4, 2) // 8 lines, 2-way, 4 sets
	// Lines 0, 4, 8 map to set 0 (4 sets).
	c.Install(0, false)
	c.Install(4, false)
	c.Access(0, false) // 0 is now MRU
	ev := c.Install(8, false)
	if !ev.Valid || ev.Line != 4 {
		t.Fatalf("evicted %+v, want line 4 (LRU)", ev)
	}
	if !c.Lookup(0) || !c.Lookup(8) || c.Lookup(4) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := NewCache(LineBytes*2, 2) // one set, 2 ways
	c.Install(1, true)
	c.Install(2, false)
	ev := c.Install(3, false)
	if !ev.Valid || !ev.Dirty || ev.Line != 1 {
		t.Fatalf("evicted %+v, want dirty line 1", ev)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(1024, 2)
	c.Install(5, true)
	d, p := c.Invalidate(5)
	if !p || !d {
		t.Fatal("invalidate missed dirty line")
	}
	if _, p := c.Invalidate(5); p {
		t.Fatal("double invalidate found line")
	}
}

func TestCacheInstallIdempotent(t *testing.T) {
	c := NewCache(1024, 2)
	c.Install(7, false)
	ev := c.Install(7, true)
	if ev.Valid {
		t.Fatal("re-install evicted something")
	}
	d, _ := c.Invalidate(7)
	if !d {
		t.Fatal("dirty upgrade lost")
	}
}

func TestMachineL1HitIsCheap(t *testing.T) {
	m := NewMachine(DefaultConfig(1))
	m.Read(0, 100)
	m.Drain(0)
	first := m.Cycle(0)
	m.Read(0, 100) // now an L1 hit
	if got := m.Cycle(0) - first; got != 1 {
		t.Fatalf("L1 hit cost %d cycles, want 1 (pipelined)", got)
	}
	s := m.Stats()
	if s.L1Misses != 1 || s.L1Accesses != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMachineMissHierarchy(t *testing.T) {
	m := NewMachine(DefaultConfig(1))
	m.Read(0, 500)
	m.Drain(0)
	s := m.Stats()
	if s.L3Misses != 1 || s.DRAMReadLines != 1 {
		t.Fatalf("cold miss did not reach DRAM: %+v", s)
	}
	// The drain should have cost at least the DRAM latency.
	if m.Cycle(0) < DefaultConfig(1).DRAMLat {
		t.Fatalf("cycle %d below DRAM latency", m.Cycle(0))
	}
}

func TestMachineFillBufferStall(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MSHRs = 2
	m := NewMachine(cfg)
	for i := int64(0); i < 8; i++ {
		m.Read(0, 1000+i)
	}
	s := m.Stats()
	if s.FillFullStall == 0 {
		t.Fatal("eight parallel misses with 2 MSHRs did not stall")
	}
}

func TestMachineMoreMSHRsRunFaster(t *testing.T) {
	run := func(mshrs int) int64 {
		cfg := DefaultConfig(1)
		cfg.MSHRs = mshrs
		m := NewMachine(cfg)
		for i := int64(0); i < 256; i++ {
			m.Read(0, 10_000+i*7)
		}
		m.Drain(0)
		return m.Cycle(0)
	}
	t8, t32 := run(8), run(32)
	if t32 >= t8 {
		t.Fatalf("32 MSHRs (%d cycles) not faster than 8 (%d)", t32, t8)
	}
}

func TestDRAMBandwidthContention(t *testing.T) {
	// Many cores streaming concurrently must observe queuing delay.
	cfg := DefaultConfig(8)
	m := NewMachine(cfg)
	for round := 0; round < 64; round++ {
		for c := 0; c < 8; c++ {
			m.Read(c, int64(1_000_000+c*100_000+round))
		}
	}
	for c := 0; c < 8; c++ {
		m.Drain(c)
	}
	s := m.Stats()
	if s.DRAMQueueDelay == 0 {
		t.Fatal("no DRAM queuing under 8-core streaming")
	}
}

func TestWriteAllocatesAndWritesBack(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.L1Bytes = 2 * LineBytes
	cfg.L1Ways = 1
	cfg.L2Bytes = 4 * LineBytes
	cfg.L2Ways = 1
	cfg.L3Bytes = 8 * LineBytes
	cfg.L3Ways = 1
	m := NewMachine(cfg)
	// Write lines that collide in every level so dirty lines cascade out.
	for i := int64(0); i < 64; i++ {
		m.Write(0, i*8)
	}
	m.Drain(0)
	s := m.Stats()
	if s.DRAMWriteLines == 0 {
		t.Fatal("no write-backs reached DRAM")
	}
}

func TestL3ReadBypassesPrivate(t *testing.T) {
	m := NewMachine(DefaultConfig(2))
	complete, queued := m.L3Read(4242, 100, false)
	if complete <= 100 {
		t.Fatalf("completion %d not after issue", complete)
	}
	if queued < 0 {
		t.Fatal("negative queuing")
	}
	s := m.Stats()
	if s.L1Accesses != 0 || s.L2Accesses != 0 {
		t.Fatal("L3Read touched private caches")
	}
	// Second read hits L3.
	c2, q2 := m.L3Read(4242, 200, false)
	if q2 != 0 || c2 != 200+m.Config().L3Lat {
		t.Fatalf("second read not an L3 hit: complete=%d queued=%d", c2, q2)
	}
}

func TestL2WriteFromDMAMakesCoreHit(t *testing.T) {
	m := NewMachine(DefaultConfig(1))
	m.L2WriteFromDMA(0, 9000)
	before := m.Stats().L2Misses // the DMA's own fill counts as one miss
	m.Read(0, 9000)
	m.Drain(0)
	s := m.Stats()
	if s.L2Misses != before {
		t.Fatalf("core read after DMA L2 fill missed L2: %+v", s)
	}
	if m.Cycle(0) >= DefaultConfig(1).L3Lat {
		t.Fatalf("core read took %d cycles; should be an L2 hit", m.Cycle(0))
	}
}

func TestComputeAndAdvance(t *testing.T) {
	m := NewMachine(DefaultConfig(2))
	m.Compute(0, 50)
	if m.Cycle(0) != 50 {
		t.Fatalf("cycle %d", m.Cycle(0))
	}
	m.AdvanceTo(0, 40, true) // backwards: no-op
	if m.Cycle(0) != 50 {
		t.Fatal("AdvanceTo moved backwards")
	}
	m.AdvanceTo(0, 80, true)
	s := m.Stats()
	if m.Cycle(0) != 80 || s.DrainStall != 30 {
		t.Fatalf("cycle %d stall %d", m.Cycle(0), s.DrainStall)
	}
	if s.ComputeCycles != 50 {
		t.Fatalf("compute cycles %d", s.ComputeCycles)
	}
}

func TestAddressMapRegionsDisjoint(t *testing.T) {
	am := NewAddressMap()
	a := am.Alloc(100, 256)
	b := am.Alloc(50, 128)
	aEnd := a.Base + 100*a.Stride
	if b.Base < aEnd {
		t.Fatalf("regions overlap: a ends %#x, b starts %#x", aEnd, b.Base)
	}
	first, count := a.RowLines(3, 256)
	if count != 4 {
		t.Fatalf("256B row spans %d lines, want 4", count)
	}
	if first != (a.Base+3*256)/LineBytes {
		t.Fatal("wrong first line")
	}
	if _, count := a.RowLines(0, 0); count != 0 {
		t.Fatal("zero-byte span not empty")
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{L1Accesses: 10, L1Misses: 2, L2Accesses: 4, L2Misses: 1, DRAMReadLines: 3, DRAMWriteLines: 2}
	if s.L1MissRate() != 0.2 || s.L2MissRate() != 0.25 {
		t.Fatal("miss rates wrong")
	}
	if s.DRAMReadBytes() != 192 || s.DRAMWriteBytes() != 128 {
		t.Fatal("byte accounting wrong")
	}
	var zero Stats
	if zero.L1MissRate() != 0 || zero.L2MissRate() != 0 {
		t.Fatal("zero-stats division")
	}
}
