package memsim

import "testing"

func tlbConfig(entries int) Config {
	cfg := DefaultConfig(1)
	cfg.STLBEntries = entries
	return cfg
}

func TestTLBDisabledByDefault(t *testing.T) {
	m := NewMachine(DefaultConfig(1))
	m.Read(0, 100)
	if m.TLBWalks() != 0 {
		t.Fatal("walks counted with TLB disabled")
	}
	if m.Translate(0, 100) != 0 {
		t.Fatal("translate charged with TLB disabled")
	}
}

func TestTLBMissThenHit(t *testing.T) {
	m := NewMachine(tlbConfig(16))
	m.Read(0, 100) // page 1: walk
	m.Drain(0)
	walks := m.TLBWalks()
	if walks != 1 {
		t.Fatalf("walks %d, want 1", walks)
	}
	m.Read(0, 101) // same page: no walk
	if m.TLBWalks() != 1 {
		t.Fatal("same-page access walked again")
	}
	m.Read(0, 100+linesPerPage) // next page: walk
	if m.TLBWalks() != 2 {
		t.Fatal("new page did not walk")
	}
}

func TestTLBWalkCostsCycles(t *testing.T) {
	withTLB := NewMachine(tlbConfig(16))
	without := NewMachine(DefaultConfig(1))
	for _, m := range []*Machine{withTLB, without} {
		for i := int64(0); i < 32; i++ {
			m.Read(0, i*linesPerPage) // one page per access
		}
		m.Drain(0)
	}
	if withTLB.Cycle(0) <= without.Cycle(0) {
		t.Fatalf("TLB walks free: %d vs %d cycles", withTLB.Cycle(0), without.Cycle(0))
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	m := NewMachine(tlbConfig(4))
	// Touch 8 distinct pages, then revisit the first: it must have been
	// evicted and walk again.
	for p := int64(0); p < 8; p++ {
		m.Read(0, p*linesPerPage)
	}
	w := m.TLBWalks()
	m.Read(0, 0)
	if m.TLBWalks() != w+1 {
		t.Fatal("evicted page did not re-walk")
	}
}

func TestTLBDefaultWalkLatency(t *testing.T) {
	cfg := tlbConfig(8)
	if cfg.STLBMissLat != 0 {
		t.Fatal("precondition: latency unset")
	}
	m := NewMachine(cfg)
	if m.Config().STLBMissLat != 60 {
		t.Fatalf("default walk latency %d, want 60", m.Config().STLBMissLat)
	}
}
