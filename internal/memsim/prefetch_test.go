package memsim

import "testing"

func TestPrefetchMakesLaterReadHit(t *testing.T) {
	m := NewMachine(DefaultConfig(1))
	m.Prefetch(0, 777)
	m.Drain(0) // drain ignores prefetches but time passes via later ops
	m.Compute(0, 10_000)
	m.Read(0, 777)
	s := m.Stats()
	// The demand read found the line in L1: one miss total (the prefetch).
	if s.L1Misses != 1 {
		t.Fatalf("L1 misses %d, want 1 (prefetch only)", s.L1Misses)
	}
}

func TestDrainIgnoresPrefetches(t *testing.T) {
	m := NewMachine(DefaultConfig(1))
	m.Prefetch(0, 1000)
	before := m.Cycle(0)
	m.Drain(0)
	if m.Cycle(0) != before {
		t.Fatalf("drain waited %d cycles for a prefetch", m.Cycle(0)-before)
	}
}

func TestPrefetchDroppedWhenFillBuffersFull(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MSHRs = 2
	m := NewMachine(cfg)
	m.Read(0, 1)
	m.Read(0, 100)
	// Buffers now full: the prefetch must be dropped, not stall the core.
	before := m.Cycle(0)
	m.Prefetch(0, 200)
	if got := m.Cycle(0) - before; got != 1 {
		t.Fatalf("dropped prefetch cost %d cycles, want 1 (issue slot only)", got)
	}
	// A later read of the dropped line must miss (it was never fetched).
	m.Drain(0)
	missesBefore := m.Stats().L1Misses
	m.Read(0, 200)
	if m.Stats().L1Misses != missesBefore+1 {
		t.Fatal("dropped prefetch still installed the line")
	}
}

func TestStoreMissesDoNotBlockLoads(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MSHRs = 2
	m := NewMachine(cfg)
	// Fill the store buffer path with write misses...
	for i := int64(0); i < 10; i++ {
		m.Write(0, 5000+i*100)
	}
	// ...then issue two loads: they must claim demand fill buffers without
	// waiting for the stores.
	c0 := m.Cycle(0)
	m.Read(0, 9000)
	m.Read(0, 9100)
	if got := m.Cycle(0) - c0; got != 2 {
		t.Fatalf("loads behind store misses cost %d issue cycles, want 2", got)
	}
}

func TestStoreBufferFullStalls(t *testing.T) {
	cfg := DefaultConfig(1)
	m := NewMachine(cfg)
	for i := int64(0); i < 3*storeBufferEntries; i++ {
		m.Write(0, 50_000+i*100)
	}
	if m.Stats().FillFullStall == 0 {
		t.Fatal("store flood never stalled")
	}
}

func TestStreamDetectionShortensLatency(t *testing.T) {
	run := func(stride int64) int64 {
		m := NewMachine(DefaultConfig(1))
		for i := int64(0); i < 64; i++ {
			m.Read(0, 10_000+i*stride)
			m.Drain(0) // expose each load's full latency
		}
		return m.Cycle(0)
	}
	sequential := run(1)
	scattered := run(97)
	if sequential >= scattered {
		t.Fatalf("sequential stream (%d cycles) not faster than scattered (%d)", sequential, scattered)
	}
}
