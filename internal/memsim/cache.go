// Package memsim is a trace-driven, cycle-approximate multi-core memory
// hierarchy simulator — the stand-in for the Sniper simulator and VTune
// counters the paper uses for its hardware evaluation (§6) and memory
// characterization (§3, §7.2.1, §7.3).
//
// The model: per-core in-order issue with a limited number of L1 fill
// buffers (MSHRs) gating outstanding misses, private set-associative
// write-back L1/L2, a shared L3, and a DRAM model with a fixed service
// latency plus a global bandwidth regulator that creates queuing delay when
// cores collectively exceed the pin bandwidth. Workload drivers replay the
// kernels' memory access patterns against a Machine and read the resulting
// counters; the perf package maps those counters onto the paper's top-down
// pipeline-slot metrics.
package memsim

import "fmt"

// LineBytes is the cache line size.
const LineBytes = 64

// Cache is a set-associative write-back cache with LRU replacement,
// addressed by line number.
type Cache struct {
	sets     int
	ways     int
	lines    []int64 // sets*ways entries; -1 = invalid
	dirty    []bool
	lruClock []uint64 // per-entry last-use stamp
	clock    uint64

	Accesses int64
	Misses   int64
}

// NewCache builds a cache of the given total size and associativity.
func NewCache(sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("memsim: bad cache geometry %dB/%d-way", sizeBytes, ways))
	}
	lines := sizeBytes / LineBytes
	if lines < ways {
		ways = lines
	}
	sets := lines / ways
	if sets == 0 {
		sets = 1
	}
	c := &Cache{sets: sets, ways: ways}
	c.lines = make([]int64, sets*ways)
	c.dirty = make([]bool, sets*ways)
	c.lruClock = make([]uint64, sets*ways)
	for i := range c.lines {
		c.lines[i] = -1
	}
	return c
}

func (c *Cache) setOf(line int64) int {
	s := int(line % int64(c.sets))
	if s < 0 {
		s += c.sets
	}
	return s
}

// Lookup probes for the line without counting an access (used by tests and
// by the DMA output-prefetch check).
func (c *Cache) Lookup(line int64) bool {
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w] == line {
			return true
		}
	}
	return false
}

// Access probes for the line, counting the access, updating LRU on a hit,
// and optionally marking it dirty.
func (c *Cache) Access(line int64, write bool) bool {
	c.Accesses++
	c.clock++
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w] == line {
			c.lruClock[base+w] = c.clock
			if write {
				c.dirty[base+w] = true
			}
			return true
		}
	}
	c.Misses++
	return false
}

// Evicted describes a line displaced by Install.
type Evicted struct {
	Line  int64
	Dirty bool
	Valid bool
}

// Install places the line (after a miss was serviced), returning any
// displaced victim so the caller can propagate the write-back.
func (c *Cache) Install(line int64, dirty bool) Evicted {
	c.clock++
	base := c.setOf(line) * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.lines[i] == line {
			// Already present (racing installs): just update state.
			c.lruClock[i] = c.clock
			if dirty {
				c.dirty[i] = true
			}
			return Evicted{}
		}
		if c.lines[i] == -1 {
			victim = i
			break
		}
		if c.lruClock[i] < c.lruClock[victim] {
			victim = i
		}
	}
	ev := Evicted{}
	if c.lines[victim] != -1 {
		ev = Evicted{Line: c.lines[victim], Dirty: c.dirty[victim], Valid: true}
	}
	c.lines[victim] = line
	c.dirty[victim] = dirty
	c.lruClock[victim] = c.clock
	return ev
}

// Invalidate drops the line if present, returning whether it was dirty.
func (c *Cache) Invalidate(line int64) (wasDirty, present bool) {
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.lines[i] == line {
			d := c.dirty[i]
			c.lines[i] = -1
			c.dirty[i] = false
			return d, true
		}
	}
	return false, false
}

// MissRate returns Misses/Accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
