package bench

import (
	"strings"
	"testing"
)

// quickConfig keeps harness tests fast.
func quickConfig() Config {
	return Config{Scale: 1500, SimScale: 800, Hidden: 32, Threads: 2, SimCores: 2}
}

func TestIDsAndTitles(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("got %d experiments: %v", len(ids), ids)
	}
	for _, id := range ids {
		if title, ok := Title(id); !ok || title == "" {
			t.Fatalf("missing title for %s", id)
		}
	}
	if _, ok := Title("nope"); ok {
		t.Fatal("unknown id has a title")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", Config{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAllExperimentsProduceReports(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	cfg := quickConfig()
	for _, id := range IDs() {
		rep, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Lines) == 0 {
			t.Fatalf("%s: empty report", id)
		}
		out := rep.String()
		if !strings.Contains(out, rep.ID) {
			t.Fatalf("%s: report does not name itself:\n%s", id, out)
		}
		t.Logf("\n%s", out)
	}
}
