package bench

import (
	"fmt"

	"graphite/internal/dma"
	"graphite/internal/graph"
	"graphite/internal/locality"
	"graphite/internal/memsim"
	"graphite/internal/perf"
	"graphite/internal/simgnn"
)

// simFeature is the feature width used in simulator experiments: half the
// paper's 256 so simulation stays tractable. 128 preserves the ratios that
// drive the phenomena: the compressed-row traffic saving at 50% sparsity
// (37.5% vs the paper's 47%) and the update-to-aggregation cost ratio
// (≈8% on products, ≈24% on wikipedia — the paper reports 7% and 31%).
const simFeature = 128

func simGraph(p graph.Profile, n int) (*graph.CSR, error) {
	g, err := graph.GenerateProfile(p, n)
	if err != nil {
		return nil, err
	}
	return g.AddSelfLoops(), nil
}

func simLayers() []simgnn.Layer {
	return []simgnn.Layer{{Fin: simFeature, Fout: simFeature}, {Fin: simFeature, Fout: simFeature}}
}

// simOptions scales the simulated machine's caches down by the same factor
// the graphs are scaled down, preserving the paper's footprint-to-cache
// ratio (their 2.4M-111M vertex graphs dwarf a 38.5MB L3; a scaled graph
// must dwarf the scaled caches the same way or every technique would be
// hidden by cache residency).
func simOptions(cfg Config) simgnn.Options {
	mc := memsim.DefaultConfig(cfg.SimCores)
	mc.L1Bytes = 8 << 10
	mc.L2Bytes = 128 << 10
	mc.L3Bytes = cfg.SimCores * 176 << 10
	return simgnn.Options{Cores: cfg.SimCores, Machine: mc}
}

// fig3 regenerates the motivation profile: the pipeline-slot breakdown of
// baseline full-batch training.
func fig3(cfg Config) (*Report, error) {
	r := &Report{ID: "fig3", Title: "pipeline slots of baseline full-batch GraphSAGE training (simulated)"}
	g, err := simGraph(graph.Products, cfg.SimScale)
	if err != nil {
		return nil, err
	}
	res, err := simgnn.SimulateTraining(g, simLayers(), simgnn.VarDistGNN, simOptions(cfg))
	if err != nil {
		return nil, err
	}
	td := perf.FromStats(res.Stats)
	r.AddCycles("products/DistGNN", res.Cycles)
	r.setTopDown(td)
	r.Addf("retiring %.1f%%  frontend %.1f%%  core %.1f%%  memory-bound %.1f%%",
		td.Retiring*100, td.FrontendBound*100, td.CoreBound*100, td.MemoryBound*100)
	r.Addf("paper: retiring 10.1%%, frontend 3.3%%, core 23.6%%, memory-bound 61.7%%")
	return r, nil
}

// fig12 regenerates the simulated speedups with the DMA engine.
func fig12(cfg Config, train bool) (*Report, error) {
	id, what := "fig12a", "inference"
	if train {
		id, what = "fig12b", "training"
	}
	r := &Report{ID: id, Title: fmt.Sprintf("simulated %s speedup over DistGNN (products & wikipedia)", what)}
	type variant struct {
		label    string
		v        simgnn.Variant
		locality bool
	}
	variants := []variant{
		{"DistGNN", simgnn.VarDistGNN, false},
		{"fusion", simgnn.VarFused, false},
		{"fusion+DMA", simgnn.VarFusedDMA, false},
	}
	if train {
		variants = append(variants,
			variant{"fusion+locality", simgnn.VarFused, true},
			variant{"fusion+DMA+locality", simgnn.VarFusedDMA, true})
	}
	header := fmt.Sprintf("%-11s", "graph")
	for _, v := range variants {
		header += fmt.Sprintf("%21s", v.label)
	}
	r.Addf("%s", header)
	for _, p := range []graph.Profile{graph.Products, graph.Wikipedia} {
		g, err := simGraph(p, cfg.SimScale)
		if err != nil {
			return nil, err
		}
		var base int64
		line := fmt.Sprintf("%-11s", p)
		for _, v := range variants {
			opt := simOptions(cfg)
			if v.locality {
				opt.Order = locality.Reorder(g)
			}
			var res simgnn.Result
			if train {
				res, err = simgnn.SimulateTraining(g, simLayers(), v.v, opt)
			} else {
				res, err = simgnn.SimulateInference(g, simLayers(), v.v, opt)
			}
			if err != nil {
				return nil, err
			}
			r.AddCycles(fmt.Sprintf("%s/%s", p, v.label), res.Cycles)
			r.setTopDown(perf.FromStats(res.Stats))
			if base == 0 {
				base = res.Cycles
			}
			line += fmt.Sprintf("%20.2fx", float64(base)/float64(res.Cycles))
		}
		r.Addf("%s", line)
	}
	if train {
		r.Addf("paper: fusion 1.22-1.25x, fusion+DMA 1.55-1.70x, f-locality 1.39-2.39x, DMA-locality 1.89-3.14x")
	} else {
		r.Addf("paper: fusion 1.25-1.36x, fusion+DMA 1.63-1.98x")
	}
	return r, nil
}

func fig12a(cfg Config) (*Report, error) { return fig12(cfg, false) }
func fig12b(cfg Config) (*Report, error) { return fig12(cfg, true) }

// fig11sim reproduces the Fig. 11 software-technique comparison on the
// simulated machine. The wall-clock fig11a/fig11b run the real kernels on
// the host, whose cache-to-footprint ratio differs wildly from the paper's
// 28-core server; this variant models the paper's bandwidth-starved
// platform, so the speedup *shape* is directly comparable.
func fig11sim(cfg Config, train bool) (*Report, error) {
	id, what := "fig11a-sim", "inference"
	if train {
		id, what = "fig11b-sim", "training"
	}
	r := &Report{ID: id, Title: fmt.Sprintf("simulated software %s speedup over DistGNN @50%% sparsity", what)}
	type variant struct {
		label    string
		v        simgnn.Variant
		locality bool
	}
	variants := []variant{
		{"DistGNN", simgnn.VarDistGNN, false},
		{"basic", simgnn.VarBasic, false},
		{"fusion", simgnn.VarFused, false},
		{"compression", simgnn.VarCompressed, false},
		{"combined", simgnn.VarCombined, false},
	}
	if train {
		variants = append(variants, variant{"c-locality", simgnn.VarCombined, true})
	}
	header := fmt.Sprintf("%-11s", "graph")
	for _, v := range variants {
		header += fmt.Sprintf("%13s", v.label)
	}
	r.Addf("%s", header)
	for _, p := range graph.Profiles() {
		g, err := simGraph(p, cfg.SimScale)
		if err != nil {
			return nil, err
		}
		var base int64
		line := fmt.Sprintf("%-11s", p)
		for _, v := range variants {
			opt := simOptions(cfg)
			if v.locality {
				opt.Order = locality.Reorder(g)
			}
			var res simgnn.Result
			if train {
				res, err = simgnn.SimulateTraining(g, simLayers(), v.v, opt)
			} else {
				res, err = simgnn.SimulateInference(g, simLayers(), v.v, opt)
			}
			if err != nil {
				return nil, err
			}
			r.AddCycles(fmt.Sprintf("%s/%s", p, v.label), res.Cycles)
			r.setTopDown(perf.FromStats(res.Stats))
			if base == 0 {
				base = res.Cycles
			}
			line += fmt.Sprintf("%12.2fx", float64(base)/float64(res.Cycles))
		}
		r.Addf("%s", line)
	}
	if train {
		r.Addf("paper: basic 1.02-1.11x, fusion 1.11-1.27x, compression 1.31-1.48x, combined 1.50-1.62x, c-locality 1.60-2.64x")
	} else {
		r.Addf("paper: basic 1.02-1.13x, fusion 1.18-1.61x, compression 1.37-1.52x, combined 1.72-1.94x")
	}
	return r, nil
}

func fig11aSim(cfg Config) (*Report, error) { return fig11sim(cfg, false) }
func fig11bSim(cfg Config) (*Report, error) { return fig11sim(cfg, true) }

// fig13sim reproduces the fusion breakdown on the simulated machine: the
// aggregation/update cycle split of the unfused layer, and the fused
// layer's time normalized to the unfused total.
func fig13sim(cfg Config) (*Report, error) {
	r := &Report{ID: "fig13-sim", Title: "simulated hidden-layer breakdown: basic agg/update split vs fused, normalized to basic"}
	r.Addf("%-11s %8s %8s %12s", "graph", "agg", "update", "fused-inf")
	oneLayer := simLayers()[:1]
	for _, p := range graph.Profiles() {
		g, err := simGraph(p, cfg.SimScale)
		if err != nil {
			return nil, err
		}
		opt := simOptions(cfg)
		agg, err := simgnn.SimulateAggregation(g, simFeature, simgnn.VarBasic, opt)
		if err != nil {
			return nil, err
		}
		layer, err := simgnn.SimulateInference(g, oneLayer, simgnn.VarBasic, opt)
		if err != nil {
			return nil, err
		}
		fused, err := simgnn.SimulateInference(g, oneLayer, simgnn.VarFused, opt)
		if err != nil {
			return nil, err
		}
		r.AddCycles(fmt.Sprintf("%s/agg", p), agg.Cycles)
		r.AddCycles(fmt.Sprintf("%s/basic-layer", p), layer.Cycles)
		r.AddCycles(fmt.Sprintf("%s/fused", p), fused.Cycles)
		r.setTopDown(perf.FromStats(layer.Stats))
		update := layer.Cycles - agg.Cycles
		if update < 0 {
			update = 0
		}
		total := float64(layer.Cycles)
		r.Addf("%-11s %7.2f%% %7.2f%% %11.2f", p,
			100*float64(agg.Cycles)/total, 100*float64(update)/total,
			float64(fused.Cycles)/total)
	}
	r.Addf("paper: update share 7-31%% (smallest on high-degree products); fused ≈ basic's aggregation time")
	return r, nil
}

// fig15sim reproduces the processing-order comparison on the simulated
// machine, at aggregation granularity where the §4.4 effect is direct.
func fig15sim(cfg Config) (*Report, error) {
	r := &Report{ID: "fig15-sim", Title: "simulated aggregation: speedup over randomized processing order"}
	r.Addf("%-11s %12s %12s %12s", "graph", "randomized", "natural", "locality")
	for _, p := range graph.Profiles() {
		g, err := simGraph(p, cfg.SimScale)
		if err != nil {
			return nil, err
		}
		run := func(name string, order []int32) (int64, error) {
			opt := simOptions(cfg)
			opt.Order = order
			res, err := simgnn.SimulateAggregation(g, simFeature, simgnn.VarBasic, opt)
			if err != nil {
				return 0, err
			}
			r.AddCycles(fmt.Sprintf("%s/%s", p, name), res.Cycles)
			r.setTopDown(perf.FromStats(res.Stats))
			return res.Cycles, nil
		}
		rnd, err := run("randomized", locality.Randomized(g.NumVertices(), 1))
		if err != nil {
			return nil, err
		}
		nat, err := run("natural", nil)
		if err != nil {
			return nil, err
		}
		loc, err := run("locality", locality.Reorder(g))
		if err != nil {
			return nil, err
		}
		r.Addf("%-11s %11.2fx %11.2fx %11.2fx", p, 1.0,
			float64(rnd)/float64(nat), float64(rnd)/float64(loc))
	}
	r.Addf("paper (full training): natural ≈1.0x on products/papers, locality 1.17-1.64x over randomized")
	return r, nil
}

// fig16 sweeps the memory-request tracking table size.
func fig16(cfg Config) (*Report, error) {
	r := &Report{ID: "fig16", Title: "DMA-aggregation time on wikipedia vs tracking-table entries, normalized to 8"}
	g, err := simGraph(graph.Wikipedia, cfg.SimScale)
	if err != nil {
		return nil, err
	}
	var base int64
	line := ""
	for _, entries := range []int{8, 16, 32, 64} {
		eng := dma.DefaultEngineConfig()
		eng.TrackingEntries = entries
		res, err := simgnn.SimulateAggregation(g, simFeature, simgnn.VarFusedDMA,
			func() simgnn.Options { o := simOptions(cfg); o.Engine = eng; return o }())
		if err != nil {
			return nil, err
		}
		r.AddCycles(fmt.Sprintf("wikipedia/entries-%d", entries), res.Cycles)
		r.setTopDown(perf.FromStats(res.Stats))
		if base == 0 {
			base = res.Cycles
		}
		line += fmt.Sprintf("  %d entries: %.2f", entries, float64(res.Cycles)/float64(base))
	}
	r.Addf("%s", line)
	r.Addf("paper: 1.00 / 0.72 / 0.49 / 0.46 at 8/16/32/64 entries")
	return r, nil
}

// table4 regenerates the memory characterization of GCN training.
func table4(cfg Config) (*Report, error) {
	r := &Report{ID: "table4", Title: "simulated GCN training characterization (paper Table 4)"}
	type row struct {
		label    string
		v        simgnn.Variant
		locality bool
	}
	rows := []row{
		{"DistGNN", simgnn.VarDistGNN, false},
		{"basic", simgnn.VarBasic, false},
		{"combined", simgnn.VarCombined, false},
		{"c-locality", simgnn.VarCombined, true},
	}
	for _, p := range graph.Profiles() {
		g, err := simGraph(p, cfg.SimScale)
		if err != nil {
			return nil, err
		}
		labels := make([]string, 0, len(rows))
		tds := make([]perf.TopDown, 0, len(rows))
		for _, rw := range rows {
			opt := simOptions(cfg)
			if rw.locality {
				opt.Order = locality.Reorder(g)
			}
			res, err := simgnn.SimulateTraining(g, simLayers(), rw.v, opt)
			if err != nil {
				return nil, err
			}
			labels = append(labels, rw.label)
			tds = append(tds, perf.FromStats(res.Stats))
			r.AddCycles(fmt.Sprintf("%s/%s", p, rw.label), res.Cycles)
			r.setTopDown(perf.FromStats(res.Stats))
		}
		r.Addf("--- %s ---", p)
		for _, l := range splitLines(perf.Table(labels, tds)) {
			r.Addf("%s", l)
		}
	}
	r.Addf("paper (products): DistGNN retiring 9.8%%/membound 75.2%%; combined 18.8%%/58.1%%; c-locality 28.7%%/39.3%%")
	return r, nil
}

// table5 regenerates the private-cache access reductions from DMA offload,
// plus the §7.3.2 L2 miss-rate improvement.
func table5(cfg Config) (*Report, error) {
	r := &Report{ID: "table5", Title: "reduction in private-cache accesses with the DMA engine (simulated)"}
	r.Addf("%-11s %-22s %10s %10s %14s %14s", "graph", "scenario", "L1-D red.", "L2 red.", "L2 miss sw", "L2 miss dma")
	for _, p := range []graph.Profile{graph.Products, graph.Wikipedia} {
		g, err := simGraph(p, cfg.SimScale)
		if err != nil {
			return nil, err
		}
		opt := simOptions(cfg)
		// Aggregation only.
		sw, err := simgnn.SimulateAggregation(g, simFeature, simgnn.VarBasic, opt)
		if err != nil {
			return nil, err
		}
		hw, err := simgnn.SimulateAggregation(g, simFeature, simgnn.VarFusedDMA, opt)
		if err != nil {
			return nil, err
		}
		r.AddCycles(fmt.Sprintf("%s/agg-sw", p), sw.Cycles)
		r.AddCycles(fmt.Sprintf("%s/agg-dma", p), hw.Cycles)
		r.setTopDown(perf.FromStats(sw.Stats))
		r.Addf("%-11s %-22s %9.0f%% %9.0f%% %13.1f%% %13.1f%%", p, "aggregation only",
			100*(1-ratio(hw.Stats.L1Accesses, sw.Stats.L1Accesses)),
			100*(1-ratio(hw.Stats.L2Accesses, sw.Stats.L2Accesses)),
			100*sw.Stats.L2MissRate(), 100*hw.Stats.L2MissRate())
		// Fused aggregation-update.
		swf, err := simgnn.SimulateInference(g, simLayers()[:1], simgnn.VarFused, opt)
		if err != nil {
			return nil, err
		}
		hwf, err := simgnn.SimulateInference(g, simLayers()[:1], simgnn.VarFusedDMA, opt)
		if err != nil {
			return nil, err
		}
		r.AddCycles(fmt.Sprintf("%s/fused-sw", p), swf.Cycles)
		r.AddCycles(fmt.Sprintf("%s/fused-dma", p), hwf.Cycles)
		r.Addf("%-11s %-22s %9.0f%% %9.0f%% %13.1f%% %13.1f%%", p, "fused agg-update",
			100*(1-ratio(hwf.Stats.L1Accesses, swf.Stats.L1Accesses)),
			100*(1-ratio(hwf.Stats.L2Accesses, swf.Stats.L2Accesses)),
			100*swf.Stats.L2MissRate(), 100*hwf.Stats.L2MissRate())
	}
	r.Addf("paper: agg-only 97-98%% L1 / 89-97%% L2; fused 19-43%% L1 / 12-36%% L2;")
	r.Addf("       L2 miss rate 20.5%%→2.8%% (products), 45.5%%→2.8%% (wikipedia)")
	return r, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
