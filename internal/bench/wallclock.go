package bench

import (
	"fmt"
	"math/rand"
	"time"

	"graphite/internal/gnn"
	"graphite/internal/graph"
	"graphite/internal/locality"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// buildWorkload prepares one profile's graph, features and labels.
func buildWorkload(p graph.Profile, kind gnn.Kind, n, fin int, sparsity float64, threads int) (*gnn.Workload, error) {
	g, err := graph.GenerateProfile(p, n)
	if err != nil {
		return nil, err
	}
	x := tensor.NewMatrix(g.NumVertices(), fin)
	x.FillSparse(rand.New(rand.NewSource(11)), 1, sparsity)
	labels := make([]int32, g.NumVertices())
	rng := rand.New(rand.NewSource(13))
	for i := range labels {
		labels[i] = int32(rng.Intn(16))
	}
	w, err := gnn.NewWorkload(g, kind, x, labels)
	if err != nil {
		return nil, err
	}
	w.CompressedInput(threads) // outside any timed region
	return w, nil
}

func dims2(fin, hidden int) []int { return []int{fin, hidden, 16} }

// table3 regenerates the dataset statistics table for the scaled corpus.
func table3(cfg Config) (*Report, error) {
	r := &Report{ID: "table3", Title: "dataset corpus statistics (scaled synthetic vs paper)"}
	r.Addf("%-10s %10s %12s %8s %10s %14s   %s", "graph", "|V|", "|E|", "avg", "max", "variance", "paper (full size)")
	for _, p := range graph.Profiles() {
		g, err := graph.GenerateProfile(p, cfg.Scale)
		if err != nil {
			return nil, err
		}
		s := g.Stats()
		pv, pe, ps := p.PaperStats()
		r.Addf("%-10s %10d %12d %8.1f %10d %14.0f   |V|=%.2gM |E|=%.3gM avg=%.1f max=%d var=%.3g",
			p, g.NumVertices(), g.NumEdges(), s.Mean, s.Max, s.Variance,
			float64(pv)/1e6, float64(pe)/1e6, ps.Mean, ps.Max, ps.Variance)
	}
	return r, nil
}

// fig2 regenerates the sampled-training motivation experiment: sampling +
// mini-batching dominates epoch time and shrinking batches makes it worse.
func fig2(cfg Config) (*Report, error) {
	r := &Report{ID: "fig2", Title: "sampled GraphSAGE epoch time breakdown (paper: sampling ≥80%, grows as batch shrinks)"}
	g, err := graph.GenerateProfile(graph.Products, cfg.Scale)
	if err != nil {
		return nil, err
	}
	fin := graph.Products.InputFeatureLen()
	x := tensor.NewMatrix(g.NumVertices(), fin)
	x.FillSparse(rand.New(rand.NewSource(21)), 1, 0.3)
	net, err := gnn.NewNetwork(gnn.Config{Kind: gnn.SAGE, Dims: []int{fin, cfg.Hidden, cfg.Hidden, 16}, Seed: 1})
	if err != nil {
		return nil, err
	}
	// The paper's fanouts for a 3-layer sampled SAGE; layer compute is
	// scaled by 10x to model the Titan V (DESIGN.md substitution 6).
	const layerSpeedup = 10.0
	fanouts := []int{15, 10, 5}
	r.Addf("%-12s %14s %14s %10s", "batch", "sampling+mb", "GNN layers", "sampling%")
	for _, batch := range []int{1024, 2048, 4096} {
		var bd gnn.SampledEpochBreakdown
		_, err := cfg.timeIt(r, fmt.Sprintf("epoch/batch-%d", batch), func() error {
			var err error
			bd, err = gnn.RunSampledEpoch(net, g, x, batch, fanouts, layerSpeedup, cfg.Threads, 7)
			return err
		})
		if err != nil {
			return nil, err
		}
		total := bd.Sampling + bd.GNNLayers
		r.Addf("batch-%-6d %14s %14s %9.1f%%", batch,
			bd.Sampling.Round(time.Millisecond), bd.GNNLayers.Round(time.Millisecond),
			100*float64(bd.Sampling)/float64(total))
	}
	r.Addf("paper: 88.5%% / 92.4%% / 94.2%% sampling share at batch 4096/2048/1024")
	return r, nil
}

// fig11 measures the software-technique speedups over the DistGNN baseline.
func fig11(cfg Config, train bool) (*Report, error) {
	id, what := "fig11a", "inference"
	if train {
		id, what = "fig11b", "training"
	}
	r := &Report{ID: id, Title: fmt.Sprintf("software %s speedup over DistGNN @50%% feature sparsity", what)}
	impls := []gnn.Impl{gnn.ImplDistGNN, gnn.ImplMKL, gnn.ImplBasic, gnn.ImplFused, gnn.ImplCompressed, gnn.ImplCombined}
	header := "model graph       "
	for _, im := range impls {
		header += fmt.Sprintf("%12s", im)
	}
	if train {
		header += fmt.Sprintf("%12s", "c-locality")
	}
	r.Addf("%s", header)
	for _, kind := range []gnn.Kind{gnn.GCN, gnn.SAGE} {
		for _, p := range graph.Profiles() {
			w, err := buildWorkload(p, kind, cfg.Scale, p.InputFeatureLen(), 0.5, cfg.Threads)
			if err != nil {
				return nil, err
			}
			dims := dims2(p.InputFeatureLen(), cfg.Hidden)
			times := make([]time.Duration, 0, len(impls)+1)
			for _, im := range impls {
				d, err := timeVariant(r, fmt.Sprintf("%s/%s/%s", kind, p, im), w, kind, dims, im, train, nil, cfg)
				if err != nil {
					return nil, err
				}
				times = append(times, d)
			}
			if train {
				order := locality.Reorder(w.G)
				d, err := timeVariant(r, fmt.Sprintf("%s/%s/c-locality", kind, p), w, kind, dims, gnn.ImplCombined, true, order, cfg)
				if err != nil {
					return nil, err
				}
				times = append(times, d)
			}
			line := fmt.Sprintf("%-5s %-11s", kind, p)
			for _, d := range times {
				line += fmt.Sprintf("%11.2fx", float64(times[0])/float64(d))
			}
			r.Addf("%s", line)
		}
	}
	if train {
		r.Addf("paper: combined 1.50-1.62x, c-locality 1.60-2.64x (GCN+SAGE across graphs)")
	} else {
		r.Addf("paper: combined 1.72-1.94x (GCN+SAGE across graphs)")
	}
	return r, nil
}

func fig11a(cfg Config) (*Report, error) { return fig11(cfg, false) }
func fig11b(cfg Config) (*Report, error) { return fig11(cfg, true) }

// timeVariant measures one forward (or forward+backward) pass, recording the
// reps as a sample named name on r (nil r skips recording).
func timeVariant(r *Report, name string, w *gnn.Workload, kind gnn.Kind, dims []int, im gnn.Impl, train bool, order []int32, cfg Config) (time.Duration, error) {
	net, err := gnn.NewNetwork(gnn.Config{Kind: kind, Dims: dims, Seed: 5})
	if err != nil {
		return 0, err
	}
	opts := gnn.RunOptions{Impl: im, Threads: cfg.Threads, Order: order, Train: train, Tel: cfg.Telemetry}
	grads := gnn.NewGradients(net)
	return cfg.timeIt(r, name, func() error {
		st, err := gnn.Forward(net, w, opts)
		if err != nil {
			return err
		}
		if !train {
			return nil
		}
		_, dLogits, err := gnn.SoftmaxCrossEntropy(st.Logits(), w.Labels)
		if err != nil {
			return err
		}
		return gnn.Backward(net, w, st, dLogits, grads, opts)
	})
}

// phasesBreakdown reports where wallclock time goes per implementation
// variant, sourced from the telemetry phase spans rather than ad-hoc
// timers: the runtime analogue of the paper's Table 4 phase decomposition.
// Training runs (forward + backward) on the products profile, one fresh
// sink per variant.
func phasesBreakdown(cfg Config) (*Report, error) {
	r := &Report{ID: "phases", Title: "per-phase training time breakdown from telemetry spans (GCN, products)"}
	cols := []string{
		telemetry.PhaseAggregate, telemetry.PhaseUpdate, telemetry.PhaseFused,
		telemetry.PhaseBackwardAgg, telemetry.PhaseBackwardGEMM,
	}
	header := fmt.Sprintf("%-12s", "impl")
	for _, c := range cols {
		header += fmt.Sprintf("%19s", c)
	}
	header += fmt.Sprintf("%16s%14s%14s", "forward-total", "edges(M)", "gflops")
	r.Addf("%s", header)
	p := graph.Products
	w, err := buildWorkload(p, gnn.GCN, cfg.Scale, p.InputFeatureLen(), 0.5, cfg.Threads)
	if err != nil {
		return nil, err
	}
	dims := dims2(p.InputFeatureLen(), cfg.Hidden)
	for _, im := range gnn.Impls() {
		tel := telemetry.New(0)
		run := cfg
		run.Telemetry = tel
		if _, err := timeVariant(r, fmt.Sprintf("train/%s", im), w, gnn.GCN, dims, im, true, nil, run); err != nil {
			return nil, err
		}
		totals := tel.PhaseTotals()
		line := fmt.Sprintf("%-12s", im)
		for _, c := range cols {
			line += fmt.Sprintf("%19s", totals[c].Round(time.Microsecond))
		}
		snap := tel.Snapshot()
		line += fmt.Sprintf("%16s%14.2f%14.2f",
			totals[telemetry.PhaseForward].Round(time.Microsecond),
			float64(snap.Counters[telemetry.CtrEdgesAggregated.Name()])/1e6,
			float64(snap.Counters[telemetry.CtrGEMMFLOPs.Name()])/1e9)
		r.Addf("%s", line)
	}
	r.Addf("paper: Table 4 shows aggregation dominating (DRAM-bound); fused variants fold update into aggregate")
	return r, nil
}

// fig13 regenerates the fusion breakdown: basic's aggregation/update split
// vs fused inference and fused forward-training time, on a hidden layer
// (same input and output width).
func fig13(cfg Config) (*Report, error) {
	r := &Report{ID: "fig13", Title: "execution time of hidden-layer basic (agg+update) vs fused, normalized to basic"}
	r.Addf("%-11s %8s %8s %12s %12s", "graph", "agg", "update", "fused-inf", "fused-train")
	for _, p := range graph.Profiles() {
		w, err := buildWorkload(p, gnn.GCN, cfg.Scale, cfg.Hidden, 0.5, cfg.Threads)
		if err != nil {
			return nil, err
		}
		dims := []int{cfg.Hidden, cfg.Hidden}
		net, err := gnn.NewNetwork(gnn.Config{Kind: gnn.GCN, Dims: dims, Seed: 5})
		if err != nil {
			return nil, err
		}
		var basicT gnn.Timings
		_, err = cfg.timeIt(r, fmt.Sprintf("%s/basic", p), func() error {
			st, err := gnn.Forward(net, w, gnn.RunOptions{Impl: gnn.ImplBasic, Threads: cfg.Threads})
			if err == nil {
				basicT = st.Timings
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		fusedInf, err := cfg.timeIt(r, fmt.Sprintf("%s/fused-inf", p), func() error {
			_, err := gnn.Forward(net, w, gnn.RunOptions{Impl: gnn.ImplFused, Threads: cfg.Threads})
			return err
		})
		if err != nil {
			return nil, err
		}
		fusedTrain, err := cfg.timeIt(r, fmt.Sprintf("%s/fused-train", p), func() error {
			_, err := gnn.Forward(net, w, gnn.RunOptions{Impl: gnn.ImplFused, Threads: cfg.Threads, Train: true})
			return err
		})
		if err != nil {
			return nil, err
		}
		total := float64(basicT.Aggregate + basicT.Update)
		r.Addf("%-11s %7.2f%% %7.2f%% %11.2f %11.2f", p,
			100*float64(basicT.Aggregate)/total, 100*float64(basicT.Update)/total,
			float64(fusedInf)/total, float64(fusedTrain)/total)
	}
	r.Addf("paper: update share 7-31%%; fused-inference ≈ basic's aggregation time (update fully hidden)")
	return r, nil
}

// fig14 sweeps feature sparsity for the compression technique.
func fig14(cfg Config) (*Report, error) {
	r := &Report{ID: "fig14", Title: "compression speedup over basic vs feature sparsity (GCN)"}
	sparsities := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	for _, train := range []bool{false, true} {
		what := "inference"
		if train {
			what = "training"
		}
		header := fmt.Sprintf("%-11s %-10s", "graph", what)
		for _, s := range sparsities {
			header += fmt.Sprintf("%9.0f%%", s*100)
		}
		r.Addf("%s", header)
		for _, p := range graph.Profiles() {
			line := fmt.Sprintf("%-11s %-10s", p, "")
			for _, s := range sparsities {
				w, err := buildWorkload(p, gnn.GCN, cfg.Scale, cfg.Hidden, s, cfg.Threads)
				if err != nil {
					return nil, err
				}
				dims := dims2(cfg.Hidden, cfg.Hidden)
				tb, err := timeVariant(r, fmt.Sprintf("%s/%s/s%.0f/basic", what, p, s*100), w, gnn.GCN, dims, gnn.ImplBasic, train, nil, cfg)
				if err != nil {
					return nil, err
				}
				tc, err := timeVariant(r, fmt.Sprintf("%s/%s/s%.0f/compressed", what, p, s*100), w, gnn.GCN, dims, gnn.ImplCompressed, train, nil, cfg)
				if err != nil {
					return nil, err
				}
				line += fmt.Sprintf("%8.2fx", float64(tb)/float64(tc))
			}
			r.Addf("%s", line)
		}
	}
	r.Addf("paper: <1x at 10%%, crossover ≈30%%, 1.58-2.95x at 90%%")
	return r, nil
}

// fig15 compares the natural order, randomized orders, and the locality
// reorder for combined training.
func fig15(cfg Config) (*Report, error) {
	r := &Report{ID: "fig15", Title: "combined GCN training: speedup over randomized processing order"}
	r.Addf("%-11s %12s %12s %12s", "graph", "randomized", "natural", "locality")
	for _, p := range graph.Profiles() {
		w, err := buildWorkload(p, gnn.GCN, cfg.Scale, cfg.Hidden, 0.5, cfg.Threads)
		if err != nil {
			return nil, err
		}
		dims := dims2(cfg.Hidden, cfg.Hidden)
		var randTotal time.Duration
		const randRuns = 3
		for seed := int64(0); seed < randRuns; seed++ {
			d, err := timeVariant(r, fmt.Sprintf("%s/randomized-%d", p, seed), w, gnn.GCN, dims, gnn.ImplCombined, true,
				locality.Randomized(w.G.NumVertices(), seed), cfg)
			if err != nil {
				return nil, err
			}
			randTotal += d
		}
		randAvg := randTotal / randRuns
		natural, err := timeVariant(r, fmt.Sprintf("%s/natural", p), w, gnn.GCN, dims, gnn.ImplCombined, true, nil, cfg)
		if err != nil {
			return nil, err
		}
		loc, err := timeVariant(r, fmt.Sprintf("%s/locality", p), w, gnn.GCN, dims, gnn.ImplCombined, true, locality.Reorder(w.G), cfg)
		if err != nil {
			return nil, err
		}
		r.Addf("%-11s %11.2fx %11.2fx %11.2fx", p, 1.0,
			float64(randAvg)/float64(natural), float64(randAvg)/float64(loc))
	}
	r.Addf("paper: natural ≈1.0x on products/papers (no embedded locality), up to 1.13x on twitter;")
	r.Addf("       locality reorder 1.17-1.64x over randomized")
	return r, nil
}
