// Package bench implements the experiment harness that regenerates every
// table and figure in the paper's evaluation (§7). Each experiment is
// addressable by id (run IDs() for the list) and produces a textual report
// with the measured series next to the paper's published numbers.
//
// Software-technique experiments (fig2, fig11a/b, fig13, fig14, fig15,
// table3) run the real kernels wall-clock; hardware and characterization
// experiments (fig3, fig12a/b, fig16, table4, table5) run on the memsim
// machine model, like the paper's own split between a 28-core server and
// the Sniper simulator (§6). The fig11a-sim, fig11b-sim, fig13-sim and
// fig15-sim variants additionally rerun the software-technique comparisons
// on the simulated machine, whose cache-to-footprint ratio matches the
// paper's platform — see EXPERIMENTS.md for why both planes are reported.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"graphite/internal/telemetry"
)

// Config scales the experiments.
type Config struct {
	// Scale is the vertex count for wall-clock experiments (default
	// 40000; the paper's graphs are 2.4M-111M, scaled per DESIGN.md).
	Scale int
	// SimScale is the vertex count for simulator experiments (default
	// 4000 — simulation is ~1000x slower than native).
	SimScale int
	// Threads bounds wall-clock parallelism (<=0 → GOMAXPROCS).
	Threads int
	// Hidden is the hidden feature length (default 256, as in §6; use a
	// smaller value for quick runs).
	Hidden int
	// SimCores is the simulated core count (default 8).
	SimCores int
	// Reps repeats each wall-clock measurement and keeps the minimum
	// (default 1).
	Reps int
	// Telemetry, when non-nil, receives phase spans and kernel counters
	// from every wall-clock experiment run (the "phases" experiment
	// manages its own per-variant sinks and ignores this).
	Telemetry *telemetry.Sink
}

func (c Config) fill() Config {
	if c.Scale <= 0 {
		c.Scale = 40_000
	}
	if c.SimScale <= 0 {
		c.SimScale = 4_000
	}
	if c.Hidden <= 0 {
		c.Hidden = 256
	}
	if c.SimCores <= 0 {
		c.SimCores = 8
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	return c
}

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	Lines []string
}

// Addf appends a formatted line.
func (r *Report) Addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

type experiment struct {
	title string
	run   func(Config) (*Report, error)
}

var experiments = map[string]experiment{
	"table3":     {"dataset corpus statistics", table3},
	"fig2":       {"sampled-training epoch breakdown vs mini-batch size", fig2},
	"fig3":       {"pipeline-slot breakdown of full-batch baseline training (simulated)", fig3},
	"fig11a":     {"software-technique inference speedups over DistGNN (wall clock)", fig11a},
	"fig11b":     {"software-technique training speedups over DistGNN (wall clock)", fig11b},
	"fig11a-sim": {"software-technique inference speedups over DistGNN (simulated machine)", fig11aSim},
	"fig11b-sim": {"software-technique training speedups over DistGNN (simulated machine)", fig11bSim},
	"fig12a":     {"simulated inference speedups with the DMA engine", fig12a},
	"fig12b":     {"simulated training speedups with the DMA engine", fig12b},
	"fig13":      {"layer-fusion execution-time breakdown (wall clock)", fig13},
	"fig13-sim":  {"layer-fusion execution-time breakdown (simulated machine)", fig13sim},
	"fig14":      {"feature-compression speedup vs sparsity", fig14},
	"fig15":      {"locality reordering vs randomized orders (wall clock)", fig15},
	"fig15-sim":  {"locality reordering vs randomized orders (simulated machine)", fig15sim},
	"fig16":      {"DMA time vs tracking-table entries (simulated)", fig16},
	"table4":     {"memory-performance characterization (simulated)", table4},
	"table5":     {"private-cache access reduction from the DMA engine (simulated)", table5},
	"phases":     {"per-phase time breakdown from telemetry spans (wall clock)", phasesBreakdown},
}

// IDs lists the experiment ids in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's description.
func Title(id string) (string, bool) {
	e, ok := experiments[id]
	return e.title, ok
}

// Run executes one experiment.
func Run(id string, cfg Config) (*Report, error) {
	e, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return e.run(cfg.fill())
}

// timeIt measures f, repeating per cfg.Reps and keeping the minimum.
func timeIt(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}
