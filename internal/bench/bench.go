// Package bench implements the experiment harness that regenerates every
// table and figure in the paper's evaluation (§7). Each experiment is
// addressable by id (run IDs() for the list) and produces a textual report
// with the measured series next to the paper's published numbers.
//
// Software-technique experiments (fig2, fig11a/b, fig13, fig14, fig15,
// table3) run the real kernels wall-clock; hardware and characterization
// experiments (fig3, fig12a/b, fig16, table4, table5) run on the memsim
// machine model, like the paper's own split between a 28-core server and
// the Sniper simulator (§6). The fig11a-sim, fig11b-sim, fig13-sim and
// fig15-sim variants additionally rerun the software-technique comparisons
// on the simulated machine, whose cache-to-footprint ratio matches the
// paper's platform — see EXPERIMENTS.md for why both planes are reported.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"graphite/internal/benchfmt"
	"graphite/internal/perf"
	"graphite/internal/telemetry"
)

// Config scales the experiments.
type Config struct {
	// Scale is the vertex count for wall-clock experiments (default
	// 40000; the paper's graphs are 2.4M-111M, scaled per DESIGN.md).
	Scale int
	// SimScale is the vertex count for simulator experiments (default
	// 4000 — simulation is ~1000x slower than native).
	SimScale int
	// Threads bounds wall-clock parallelism (<=0 → GOMAXPROCS).
	Threads int
	// Hidden is the hidden feature length (default 256, as in §6; use a
	// smaller value for quick runs).
	Hidden int
	// SimCores is the simulated core count (default 8).
	SimCores int
	// Reps repeats each wall-clock measurement and keeps the minimum
	// (default 1).
	Reps int
	// Telemetry, when non-nil, receives phase spans and kernel counters
	// from every wall-clock experiment run (the "phases" experiment
	// manages its own per-variant sinks and ignores this).
	Telemetry *telemetry.Sink
}

func (c Config) fill() Config {
	if c.Scale <= 0 {
		c.Scale = 40_000
	}
	if c.SimScale <= 0 {
		c.SimScale = 4_000
	}
	if c.Hidden <= 0 {
		c.Hidden = 256
	}
	if c.SimCores <= 0 {
		c.SimCores = 8
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	return c
}

// Report is one experiment's output: the prose lines printed to the
// terminal plus the structured measurements behind them, which
// cmd/graphite-bench -json serializes through internal/benchfmt.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Samples holds every named measurement's repeated observations
	// (wall-clock reps in ns, simulator runs in cycles).
	Samples []benchfmt.Sample
	// TopDown is the pipeline-slot breakdown of the experiment's baseline
	// configuration — set by simulator experiments only.
	TopDown *perf.TopDown
}

// Addf appends a formatted line.
func (r *Report) Addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// addSample records one named wall-clock measurement's rep durations.
func (r *Report) addSample(name string, repsNS []int64) {
	r.Samples = append(r.Samples, benchfmt.NewSample(name, benchfmt.UnitNS, repsNS))
}

// AddCycles records one simulator measurement (deterministic, one rep).
func (r *Report) AddCycles(name string, cycles int64) {
	r.Samples = append(r.Samples, benchfmt.NewSample(name, benchfmt.UnitCycles, []int64{cycles}))
}

// setTopDown keeps the first breakdown offered — by convention the
// experiment's baseline configuration.
func (r *Report) setTopDown(td perf.TopDown) {
	if r.TopDown == nil {
		r.TopDown = &td
	}
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

type experiment struct {
	title string
	run   func(Config) (*Report, error)
}

var experiments = map[string]experiment{
	"table3":     {"dataset corpus statistics", table3},
	"fig2":       {"sampled-training epoch breakdown vs mini-batch size", fig2},
	"fig3":       {"pipeline-slot breakdown of full-batch baseline training (simulated)", fig3},
	"fig11a":     {"software-technique inference speedups over DistGNN (wall clock)", fig11a},
	"fig11b":     {"software-technique training speedups over DistGNN (wall clock)", fig11b},
	"fig11a-sim": {"software-technique inference speedups over DistGNN (simulated machine)", fig11aSim},
	"fig11b-sim": {"software-technique training speedups over DistGNN (simulated machine)", fig11bSim},
	"fig12a":     {"simulated inference speedups with the DMA engine", fig12a},
	"fig12b":     {"simulated training speedups with the DMA engine", fig12b},
	"fig13":      {"layer-fusion execution-time breakdown (wall clock)", fig13},
	"fig13-sim":  {"layer-fusion execution-time breakdown (simulated machine)", fig13sim},
	"fig14":      {"feature-compression speedup vs sparsity", fig14},
	"fig15":      {"locality reordering vs randomized orders (wall clock)", fig15},
	"fig15-sim":  {"locality reordering vs randomized orders (simulated machine)", fig15sim},
	"fig16":      {"DMA time vs tracking-table entries (simulated)", fig16},
	"table4":     {"memory-performance characterization (simulated)", table4},
	"table5":     {"private-cache access reduction from the DMA engine (simulated)", table5},
	"phases":     {"per-phase time breakdown from telemetry spans (wall clock)", phasesBreakdown},
}

// IDs lists the experiment ids in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's description.
func Title(id string) (string, bool) {
	e, ok := experiments[id]
	return e.title, ok
}

// Run executes one experiment.
func Run(id string, cfg Config) (*Report, error) {
	e, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return e.run(cfg.fill())
}

// timeIt measures f cfg.Reps times and returns the minimum (the least-noise
// estimator the prose reports quote). Every rep is kept: recorded as a named
// sample on r (for the JSON report's mean/stddev/min) and observed in the
// telemetry latency histogram under the same name.
func (c Config) timeIt(r *Report, name string, f func() error) (time.Duration, error) {
	reps := c.Reps
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(0)
	samples := make([]int64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		samples = append(samples, int64(d))
		c.Telemetry.Observe(name, d)
		if best == 0 || d < best {
			best = d
		}
	}
	if r != nil && name != "" {
		r.addSample(name, samples)
	}
	return best, nil
}

// Experiment converts the report plus the run's telemetry sink into the
// benchfmt schema. sink may be nil (no telemetry collected).
func (r *Report) Experiment(sink *telemetry.Sink) benchfmt.Experiment {
	exp := benchfmt.Experiment{
		ID:      r.ID,
		Title:   r.Title,
		Samples: r.Samples,
		TopDown: r.TopDown,
	}
	if sink == nil {
		return exp
	}
	if pt := sink.PhaseTotals(); len(pt) > 0 {
		exp.PhaseTotalsNS = make(map[string]int64, len(pt))
		for phase, d := range pt {
			exp.PhaseTotalsNS[phase] = int64(d)
		}
	}
	snap := sink.Snapshot()
	exp.Counters = snap.Counters
	exp.SpansDropped = snap.SpansDropped
	for _, pl := range snap.Latencies {
		exp.Latencies = append(exp.Latencies, benchfmt.Latency{
			Phase: pl.Phase,
			Count: pl.Count,
			SumNS: int64(pl.Sum),
			P50NS: int64(pl.P50),
			P95NS: int64(pl.P95),
			P99NS: int64(pl.P99),
		})
	}
	return exp
}
