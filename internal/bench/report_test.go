package bench

import (
	"strings"
	"testing"
	"time"

	"graphite/internal/benchfmt"
	"graphite/internal/perf"
	"graphite/internal/telemetry"
)

func TestReportString(t *testing.T) {
	r := &Report{ID: "figX", Title: "demo"}
	r.Addf("value %.2f", 1.5)
	out := r.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "demo") || !strings.Contains(out, "1.50") {
		t.Fatalf("report rendering broken:\n%s", out)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	c := Config{}.fill()
	if c.Scale != 40_000 || c.SimScale != 4_000 || c.Hidden != 256 || c.SimCores != 8 || c.Reps != 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	c = Config{Scale: 10, SimScale: 20, Hidden: 30, SimCores: 2, Reps: 3}.fill()
	if c.Scale != 10 || c.Reps != 3 {
		t.Fatal("explicit values overwritten")
	}
}

func TestTimeItKeepsMinimumAndPropagatesErrors(t *testing.T) {
	cfg := Config{Reps: 3}
	r := &Report{ID: "figX"}
	calls := 0
	d, err := cfg.timeIt(r, "work", func() error {
		calls++
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil || calls != 3 || d <= 0 {
		t.Fatalf("timeIt: d=%v err=%v calls=%d", d, err, calls)
	}
	if len(r.Samples) != 1 || r.Samples[0].Name != "work" || len(r.Samples[0].Reps) != 3 {
		t.Fatalf("sample not recorded: %+v", r.Samples)
	}
	if min := r.Samples[0].Stats.Min; min != int64(d) {
		t.Fatalf("returned %v but recorded min %v", d, min)
	}
	if _, err := (Config{Reps: 2}).timeIt(nil, "", func() error { return errFake }); err == nil {
		t.Fatal("error swallowed")
	}
}

func TestTimeItFeedsTelemetryHistogram(t *testing.T) {
	sink := telemetry.New(0)
	cfg := Config{Reps: 2, Telemetry: sink}
	if _, err := cfg.timeIt(nil, "rep", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if h := sink.Histogram("rep"); h == nil || h.Count() != 2 {
		t.Fatalf("histogram not fed: %+v", h)
	}
}

func TestReportExperimentExport(t *testing.T) {
	sink := telemetry.New(0)
	sink.Add(telemetry.CtrEdgesAggregated, 7)
	sp := sink.Begin("forward")
	sp.End()
	r := &Report{ID: "figX", Title: "demo"}
	r.addSample("a", []int64{10, 20})
	r.AddCycles("b", 500)
	r.setTopDown(perf.TopDown{Retiring: 0.5})
	r.setTopDown(perf.TopDown{Retiring: 0.9}) // first wins
	exp := r.Experiment(sink)
	if exp.ID != "figX" || len(exp.Samples) != 2 || exp.TopDown.Retiring != 0.5 {
		t.Fatalf("export wrong: %+v", exp)
	}
	if exp.Samples[1].Unit != benchfmt.UnitCycles {
		t.Fatalf("cycle unit lost: %+v", exp.Samples[1])
	}
	if exp.PhaseTotalsNS["forward"] <= 0 || exp.Counters[telemetry.CtrEdgesAggregated.Name()] != 7 {
		t.Fatalf("telemetry not exported: %+v", exp)
	}
	if len(exp.Latencies) != 1 || exp.Latencies[0].Phase != "forward" || exp.Latencies[0].Count != 1 {
		t.Fatalf("latencies not exported: %+v", exp.Latencies)
	}
	if nilExp := r.Experiment(nil); len(nilExp.Samples) != 2 || nilExp.Counters != nil {
		t.Fatalf("nil-sink export wrong: %+v", nilExp)
	}
}

var errFake = &fakeError{}

type fakeError struct{}

func (*fakeError) Error() string { return "fake" }

func TestSplitLines(t *testing.T) {
	got := splitLines("a\nb\nc")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("splitLines: %v", got)
	}
	if len(splitLines("x\n")) != 1 {
		t.Fatal("trailing newline handling")
	}
}

func TestRatio(t *testing.T) {
	if ratio(1, 0) != 0 || ratio(2, 4) != 0.5 {
		t.Fatal("ratio wrong")
	}
}
