package bench

import (
	"strings"
	"testing"
	"time"
)

func TestReportString(t *testing.T) {
	r := &Report{ID: "figX", Title: "demo"}
	r.Addf("value %.2f", 1.5)
	out := r.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "demo") || !strings.Contains(out, "1.50") {
		t.Fatalf("report rendering broken:\n%s", out)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	c := Config{}.fill()
	if c.Scale != 40_000 || c.SimScale != 4_000 || c.Hidden != 256 || c.SimCores != 8 || c.Reps != 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	c = Config{Scale: 10, SimScale: 20, Hidden: 30, SimCores: 2, Reps: 3}.fill()
	if c.Scale != 10 || c.Reps != 3 {
		t.Fatal("explicit values overwritten")
	}
}

func TestTimeItKeepsMinimumAndPropagatesErrors(t *testing.T) {
	calls := 0
	d, err := timeIt(3, func() error {
		calls++
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil || calls != 3 || d <= 0 {
		t.Fatalf("timeIt: d=%v err=%v calls=%d", d, err, calls)
	}
	if _, err := timeIt(2, func() error { return errFake }); err == nil {
		t.Fatal("error swallowed")
	}
}

var errFake = &fakeError{}

type fakeError struct{}

func (*fakeError) Error() string { return "fake" }

func TestSplitLines(t *testing.T) {
	got := splitLines("a\nb\nc")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("splitLines: %v", got)
	}
	if len(splitLines("x\n")) != 1 {
		t.Fatal("trailing newline handling")
	}
}

func TestRatio(t *testing.T) {
	if ratio(1, 0) != 0 || ratio(2, 4) != 0.5 {
		t.Fatal("ratio wrong")
	}
}
