package gnn

import (
	"math"
	"math/rand"
	"testing"

	"graphite/internal/graph"
	"graphite/internal/tensor"
)

// TestTrainerRejectsDivergedLogits injects Inf features and checks the
// trainer surfaces the divergence instead of silently corrupting weights.
func TestTrainerRejectsDivergedLogits(t *testing.T) {
	g, err := graph.GenerateProfile(graph.Products, 80)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(80, 6)
	x.FillRandom(rand.New(rand.NewSource(1)), 1)
	x.Set(3, 2, float32(math.Inf(1)))
	labels := make([]int32, 80)
	w, err := NewWorkload(g, GCN, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	net := testNet(t, GCN, []int{6, 4, 2})
	tr, err := NewTrainer(net, w, RunOptions{Impl: ImplBasic}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Epoch(); err == nil {
		t.Fatal("Inf input did not surface as an error")
	}
}

func TestNewTrainerRequiresLabels(t *testing.T) {
	w := testWorkload(t, GCN, graph.Products, 50, 4, false)
	net := testNet(t, GCN, []int{4, 2})
	if _, err := NewTrainer(net, w, RunOptions{}, 0.1); err == nil {
		t.Fatal("unlabeled workload accepted for training")
	}
}

func TestForwardEmptyNetwork(t *testing.T) {
	w := testWorkload(t, GCN, graph.Products, 50, 4, false)
	if _, err := Forward(&Network{}, w, RunOptions{}); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestRunOptionsDefaults(t *testing.T) {
	o := RunOptions{}
	if o.blockSize() != 64 || o.blocksPerTask() != 4 || o.prefetch() != 4 {
		t.Fatalf("defaults wrong: B=%d T=%d D=%d", o.blockSize(), o.blocksPerTask(), o.prefetch())
	}
	o = RunOptions{BlockSize: 16, BlocksPerTask: 2, PrefetchDistance: -1}
	if o.blockSize() != 16 || o.blocksPerTask() != 2 || o.prefetch() != 0 {
		t.Fatal("explicit values not honoured")
	}
}

func TestTimingsAccumulate(t *testing.T) {
	a := Timings{Aggregate: 1, Update: 2, Fused: 3, Backward: 4}
	b := Timings{Aggregate: 10, Update: 20, Fused: 30, Backward: 40}
	a.Add(b)
	if a.Total() != 110 {
		t.Fatalf("total %d", a.Total())
	}
}

// TestFusedBlockBoundary exercises a block size that does not divide the
// vertex count and exceeds it entirely.
func TestFusedBlockBoundary(t *testing.T) {
	w := testWorkload(t, SAGE, graph.Wikipedia, 101, 8, false)
	net := testNet(t, SAGE, []int{8, 4})
	ref, err := Forward(net, w, RunOptions{Impl: ImplBasic})
	if err != nil {
		t.Fatal(err)
	}
	for _, blockSize := range []int{1, 7, 100, 101, 5000} {
		st, err := Forward(net, w, RunOptions{Impl: ImplFused, BlockSize: blockSize})
		if err != nil {
			t.Fatalf("B=%d: %v", blockSize, err)
		}
		if d := tensor.MaxAbsDiff(st.Logits(), ref.Logits()); d > 1e-3 {
			t.Fatalf("B=%d: logits differ by %g", blockSize, d)
		}
	}
}

// TestSingleLayerNetwork checks the no-hidden-layer edge case (no ReLU, no
// compression of outputs).
func TestSingleLayerNetwork(t *testing.T) {
	w := testWorkload(t, GCN, graph.Papers, 90, 8, true)
	net := testNet(t, GCN, []int{8, 4})
	for _, impl := range Impls() {
		st, err := Forward(net, w, RunOptions{Impl: impl, Train: true})
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		loss, dl, err := SoftmaxCrossEntropy(st.Logits(), w.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(loss) {
			t.Fatalf("%v: NaN loss", impl)
		}
		if err := Backward(net, w, st, dl, NewGradients(net), RunOptions{Impl: impl}); err != nil {
			t.Fatalf("%v: backward: %v", impl, err)
		}
	}
}
