package gnn

import (
	"math"
	"math/rand"
	"testing"

	"graphite/internal/graph"
	"graphite/internal/locality"
	"graphite/internal/tensor"
)

func testWorkload(t testing.TB, kind Kind, p graph.Profile, n, fin int, labeled bool) *Workload {
	t.Helper()
	g, err := graph.GenerateProfile(p, n)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(n, fin)
	x.FillSparse(rand.New(rand.NewSource(100)), 1, 0.5)
	var labels []int32
	if labeled {
		rng := rand.New(rand.NewSource(101))
		labels = make([]int32, n)
		for i := range labels {
			labels[i] = int32(rng.Intn(4))
		}
	}
	w, err := NewWorkload(g, kind, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testNet(t testing.TB, kind Kind, dims []int) *Network {
	t.Helper()
	net, err := NewNetwork(Config{Kind: kind, Dims: dims, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(Config{Dims: []int{5}}); err == nil {
		t.Fatal("single-dim network accepted")
	}
	if _, err := NewNetwork(Config{Dims: []int{5, 0}}); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := NewNetwork(Config{Dims: []int{5, 3}, Dropout: 1.0}); err == nil {
		t.Fatal("dropout=1 accepted")
	}
	net := testNet(t, GCN, []int{8, 16, 4})
	if net.NumLayers() != 2 {
		t.Fatalf("layers %d, want 2", net.NumLayers())
	}
	if net.NumParams() != 8*16+16+16*4+4 {
		t.Fatalf("params %d", net.NumParams())
	}
}

func TestAllImplsProduceSameLogits(t *testing.T) {
	for _, kind := range []Kind{GCN, SAGE} {
		w := testWorkload(t, kind, graph.Products, 250, 24, false)
		net := testNet(t, kind, []int{24, 32, 5})
		var ref *tensor.Matrix
		for _, impl := range Impls() {
			for _, train := range []bool{false, true} {
				st, err := Forward(net, w, RunOptions{Impl: impl, Threads: 2, Train: train, BlockSize: 16})
				if err != nil {
					t.Fatalf("%v %v train=%v: %v", kind, impl, train, err)
				}
				if ref == nil {
					ref = st.Logits()
					continue
				}
				if d := tensor.MaxAbsDiff(st.Logits(), ref); d > 2e-3 {
					t.Errorf("%v %v train=%v: logits differ from DistGNN by %g", kind, impl, train, d)
				}
			}
		}
	}
}

func TestForwardWithLocalityOrder(t *testing.T) {
	w := testWorkload(t, GCN, graph.Products, 200, 16, false)
	net := testNet(t, GCN, []int{16, 8, 3})
	base, err := Forward(net, w, RunOptions{Impl: ImplCombined, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	order := locality.Reorder(w.G)
	got, err := Forward(net, w, RunOptions{Impl: ImplCombined, Threads: 2, Order: order, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(got.Logits(), base.Logits()); d > 2e-3 {
		t.Fatalf("reordered logits differ by %g", d)
	}
}

func TestCompressedInferenceSkipsDenseHidden(t *testing.T) {
	w := testWorkload(t, SAGE, graph.Wikipedia, 150, 16, false)
	net := testNet(t, SAGE, []int{16, 8, 3})
	st, err := Forward(net, w, RunOptions{Impl: ImplCombined, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.H[0] != nil {
		t.Fatal("compressed inference kept a dense hidden matrix")
	}
	if st.HC[0] == nil {
		t.Fatal("compressed inference missing the compressed hidden matrix")
	}
	if st.Logits() == nil {
		t.Fatal("missing logits")
	}
}

func TestTrainModeKeepsAggregations(t *testing.T) {
	w := testWorkload(t, GCN, graph.Papers, 150, 16, false)
	net := testNet(t, GCN, []int{16, 8, 3})
	st, err := Forward(net, w, RunOptions{Impl: ImplFused, Threads: 2, Train: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := range net.Layers {
		if st.A[k] == nil {
			t.Fatalf("layer %d aggregation not kept in training", k)
		}
	}
	stInf, err := Forward(net, w, RunOptions{Impl: ImplFused, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stInf.A[0] != nil {
		t.Fatal("inference kept the aggregation matrix (should reuse the block buffer)")
	}
}

func TestForwardDimensionMismatch(t *testing.T) {
	w := testWorkload(t, GCN, graph.Products, 100, 16, false)
	net := testNet(t, GCN, []int{8, 4}) // expects 8 input features, workload has 16
	if _, err := Forward(net, w, RunOptions{}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestGradientCheck verifies Backward against numeric differentiation of
// the loss with respect to a sample of weights and biases.
func TestGradientCheck(t *testing.T) {
	for _, kind := range []Kind{GCN, SAGE} {
		w := testWorkload(t, kind, graph.Wikipedia, 60, 6, true)
		net := testNet(t, kind, []int{6, 5, 4})
		opts := RunOptions{Impl: ImplBasic, Threads: 1, Train: true}

		lossAt := func() float64 {
			st, err := Forward(net, w, opts)
			if err != nil {
				t.Fatal(err)
			}
			loss, _, err := SoftmaxCrossEntropy(st.Logits(), w.Labels)
			if err != nil {
				t.Fatal(err)
			}
			return loss
		}
		st, err := Forward(net, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		_, dLogits, err := SoftmaxCrossEntropy(st.Logits(), w.Labels)
		if err != nil {
			t.Fatal(err)
		}
		grads := NewGradients(net)
		if err := Backward(net, w, st, dLogits, grads, opts); err != nil {
			t.Fatal(err)
		}

		const eps = 1e-2
		check := func(name string, get func() float32, set func(float32), analytic float32) {
			orig := get()
			set(orig + eps)
			lp := lossAt()
			set(orig - eps)
			lm := lossAt()
			set(orig)
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-float64(analytic)) > 5e-3+0.15*math.Abs(numeric) {
				t.Errorf("%v %s: analytic %g vs numeric %g", kind, name, analytic, numeric)
			}
		}
		rng := rand.New(rand.NewSource(5))
		for k, layer := range net.Layers {
			for trial := 0; trial < 4; trial++ {
				i, j := rng.Intn(layer.W.Rows), rng.Intn(layer.W.Cols)
				check("W", func() float32 { return layer.W.At(i, j) },
					func(v float32) { layer.W.Set(i, j, v) }, grads.W[k].At(i, j))
			}
			j := rng.Intn(len(layer.B))
			check("B", func() float32 { return layer.B[j] },
				func(v float32) { layer.B[j] = v }, grads.B[k][j])
		}
	}
}

func TestBackwardRequiresTrainState(t *testing.T) {
	w := testWorkload(t, GCN, graph.Products, 60, 6, true)
	net := testNet(t, GCN, []int{6, 4})
	st, err := Forward(net, w, RunOptions{Impl: ImplBasic})
	if err != nil {
		t.Fatal(err)
	}
	dl := tensor.NewMatrix(60, 4)
	if err := Backward(net, w, st, dl, NewGradients(net), RunOptions{}); err == nil {
		t.Fatal("backward accepted inference-mode state")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	for _, impl := range []Impl{ImplDistGNN, ImplBasic, ImplCombined} {
		w := testWorkload(t, GCN, graph.Products, 200, 12, true)
		net := testNet(t, GCN, []int{12, 16, 4})
		tr, err := NewTrainer(net, w, RunOptions{Impl: impl, Threads: 2}, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		results, err := tr.Train(15)
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		first, last := results[0].Loss, results[len(results)-1].Loss
		if last >= first {
			t.Errorf("%v: loss did not decrease: %.4f -> %.4f", impl, first, last)
		}
	}
}

func TestTrainingWithDropoutAndLocalityRuns(t *testing.T) {
	g, err := graph.GenerateProfile(graph.Products, 150)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(150, 10)
	x.FillRandom(rand.New(rand.NewSource(1)), 1)
	labels := make([]int32, 150)
	for i := range labels {
		labels[i] = int32(i % 3)
	}
	w, err := NewWorkload(g, SAGE, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(Config{Kind: SAGE, Dims: []int{10, 8, 3}, Dropout: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, w, RunOptions{
		Impl: ImplCombined, Threads: 2, Order: locality.Reorder(w.G),
	}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Train(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d epochs", len(res))
	}
	for _, r := range res {
		if math.IsNaN(r.Loss) {
			t.Fatal("NaN loss")
		}
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.NewMatrix(2, 3)
	logits.Set(0, 0, 10) // confident, correct
	logits.Set(1, 2, 10) // confident, wrong (label 0)
	labels := []int32{0, 0}
	loss, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	if loss < 4 { // second row contributes ≈10
		t.Fatalf("loss %g too small", loss)
	}
	// Gradient row 0 ≈ 0 (already correct); row 1 has -0.5 at label, +0.5 at 2.
	if math.Abs(float64(grad.At(1, 0))+0.5) > 1e-3 || math.Abs(float64(grad.At(1, 2))-0.5) > 1e-3 {
		t.Fatalf("gradient wrong: %v", grad.Row(1))
	}
	if Accuracy(logits, labels) != 0.5 {
		t.Fatalf("accuracy %g, want 0.5", Accuracy(logits, labels))
	}
}

func TestSoftmaxCrossEntropyUnlabeled(t *testing.T) {
	logits := tensor.NewMatrix(3, 2)
	labels := []int32{-1, -1, -1}
	loss, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	if loss != 0 {
		t.Fatalf("loss %g for fully unlabeled", loss)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if grad.At(i, j) != 0 {
				t.Fatal("nonzero gradient for unlabeled vertex")
			}
		}
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int32{5, 0, 0}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int32{0}); err == nil {
		t.Fatal("short label slice accepted")
	}
}

func TestAdamConverges(t *testing.T) {
	w := testWorkload(t, GCN, graph.Products, 150, 8, true)
	net := testNet(t, GCN, []int{8, 12, 4})
	tr, err := NewTrainer(net, w, RunOptions{Impl: ImplBasic, Threads: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Adam = NewAdam(0.02)
	res, err := tr.Train(20)
	if err != nil {
		t.Fatal(err)
	}
	if res[19].Loss >= res[0].Loss {
		t.Fatalf("Adam loss did not decrease: %.4f -> %.4f", res[0].Loss, res[19].Loss)
	}
}

func TestWorkloadValidation(t *testing.T) {
	g, _ := graph.FromEdges(3, []int32{0}, []int32{1})
	x := tensor.NewMatrix(2, 4) // wrong row count
	if _, err := NewWorkload(g, GCN, x, nil); err == nil {
		t.Fatal("row mismatch accepted")
	}
	x3 := tensor.NewMatrix(3, 4)
	if _, err := NewWorkload(g, GCN, x3, []int32{0}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := NewWorkload(nil, GCN, x3, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if GCN.String() != "GCN" || SAGE.String() != "GraphSAGE" {
		t.Fatal("Kind.String wrong")
	}
	for _, im := range Impls() {
		if im.String() == "" {
			t.Fatal("empty Impl string")
		}
	}
	if !ImplCombined.UsesCompression() || !ImplCombined.UsesFusion() {
		t.Fatal("combined flags wrong")
	}
	if ImplBasic.UsesCompression() || ImplBasic.UsesFusion() {
		t.Fatal("basic flags wrong")
	}
}
