package gnn

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"graphite/internal/faultinject"
	"graphite/internal/graph"
)

// netsEqual compares two networks' parameters exactly. Training here is
// bitwise deterministic (seeded init, seeded per-epoch dropout,
// row-partitioned kernels), so "same number of completed epochs" must mean
// "identical weights".
func netsEqual(a, b *Network) bool {
	if a.NumLayers() != b.NumLayers() {
		return false
	}
	for k := range a.Layers {
		la, lb := a.Layers[k], b.Layers[k]
		if la.W.Rows != lb.W.Rows || la.W.Cols != lb.W.Cols {
			return false
		}
		for i := 0; i < la.W.Rows; i++ {
			ra, rb := la.W.Row(i), lb.W.Row(i)
			for j := range ra {
				if ra[j] != rb[j] {
					return false
				}
			}
		}
		for j := range la.B {
			if la.B[j] != lb.B[j] {
				return false
			}
		}
	}
	return true
}

func robustnessTrainer(t *testing.T, seed int64) *Trainer {
	t.Helper()
	w := testWorkload(t, GCN, graph.Products, 200, 8, true)
	net, err := NewNetwork(Config{Kind: GCN, Dims: []int{8, 16, 4}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, w, RunOptions{Impl: ImplBasic, Threads: 2}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTrainCancelCheckpointMatchesLastEpoch is the checkpoint-on-interrupt
// contract: cancelling a multi-epoch TrainContext mid-run leaves the
// network at the last COMPLETED epoch — provable by replaying a fresh,
// identically-seeded trainer for exactly that many epochs and requiring
// bitwise-identical weights — and the checkpoint saved afterwards loads
// back to those weights.
func TestTrainCancelCheckpointMatchesLastEpoch(t *testing.T) {
	tr := robustnessTrainer(t, 21)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	const epochs = 10_000 // far more than 30ms of work: the cancel lands mid-run
	results, err := tr.TrainContext(ctx, epochs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainContext err = %v, want context.Canceled (finished %d epochs — workload too small?)", err, len(results))
	}
	completed := tr.CompletedEpochs()
	if completed != len(results) {
		t.Fatalf("CompletedEpochs = %d but %d results returned", completed, len(results))
	}
	if completed == 0 {
		t.Skip("cancel landed before the first epoch completed; nothing to compare")
	}

	// Replay: a fresh identically-seeded trainer run for exactly the
	// completed epochs must land on the same weights.
	replay := robustnessTrainer(t, 21)
	if _, err := replay.Train(completed); err != nil {
		t.Fatal(err)
	}
	if !netsEqual(tr.Net, replay.Net) {
		t.Fatalf("weights after cancellation at %d epochs differ from a clean %d-epoch run: the aborted epoch leaked a partial update", completed, completed)
	}

	// The checkpoint taken after the interrupt round-trips to those weights.
	var buf bytes.Buffer
	if err := tr.Net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("checkpoint written after interrupt does not load: %v", err)
	}
	if !netsEqual(loaded, replay.Net) {
		t.Fatal("loaded checkpoint differs from the last completed epoch's weights")
	}
	t.Logf("cancelled after %d completed epochs; checkpoint matches replay", completed)
}

// TestEpochInjectedFaultPreservesWeights arms the trainer's "gnn/epoch"
// site — after backward, before the optimizer step, the worst place for a
// real fault — and proves the trainer errors without corrupting weights.
func TestEpochInjectedFaultPreservesWeights(t *testing.T) {
	tr := robustnessTrainer(t, 33)
	tr.Inject = faultinject.New(1)
	tr.Inject.FailAt("gnn/epoch", 3)

	results, err := tr.TrainContext(context.Background(), 5)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if len(results) != 2 || tr.CompletedEpochs() != 2 {
		t.Fatalf("completed %d epochs (results %d), want 2", tr.CompletedEpochs(), len(results))
	}
	replay := robustnessTrainer(t, 33)
	if _, err := replay.Train(2); err != nil {
		t.Fatal(err)
	}
	if !netsEqual(tr.Net, replay.Net) {
		t.Fatal("fault during epoch 3 corrupted the epoch-2 weights")
	}
	// The fault was one-shot: training resumes where it stopped and now
	// matches a clean 4-epoch run.
	if _, err := tr.TrainContext(context.Background(), 2); err != nil {
		t.Fatalf("resume after fault failed: %v", err)
	}
	if _, err := replay.Train(2); err != nil {
		t.Fatal(err)
	}
	if !netsEqual(tr.Net, replay.Net) {
		t.Fatal("resumed training diverged from the clean run")
	}
}

// TestInferContextPreCancelled: a cancelled context aborts the forward pass
// up front with ctx's error.
func TestInferContextPreCancelled(t *testing.T) {
	w := testWorkload(t, GCN, graph.Products, 100, 6, false)
	net := testNet(t, GCN, []int{6, 4, 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := InferContext(ctx, net, w, RunOptions{Impl: ImplBasic}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEpochContextCancelledDuringForwardImpls: cancellation propagates out
// of every implementation variant's kernels.
func TestEpochContextCancelledDuringForwardImpls(t *testing.T) {
	for _, impl := range Impls() {
		w := testWorkload(t, GCN, graph.Products, 120, 6, true)
		net := testNet(t, GCN, []int{6, 4, 4})
		tr, err := NewTrainer(net, w, RunOptions{Impl: impl, Threads: 2}, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		before := net.Clone()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := tr.EpochContext(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", impl, err)
		}
		if !netsEqual(net, before) {
			t.Fatalf("%v: cancelled epoch mutated weights", impl)
		}
	}
}
