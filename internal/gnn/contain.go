package gnn

import (
	"context"
	"fmt"
	"runtime/debug"

	"graphite/internal/sched"
	"graphite/internal/telemetry"
)

// contain is the package's panic→error boundary, deferred at the entry
// points that promise an error return (Forward, Backward, and through them
// Infer and the trainer). Two classes of panic reach it:
//
//   - *sched.WorkerError re-panicked by a legacy (non-ctx) scheduler entry
//     point: already recovered and counted inside the scheduler, so it is
//     wrapped as-is.
//   - caller-goroutine panics (kernel shape checks like checkAggArgs, or
//     library bugs): recovered here, counted on tel, and reported with the
//     stack at the point of the panic.
//
// It must be deferred directly ("defer contain(tel, &err)") so recover()
// sees the in-flight panic.
func contain(tel *telemetry.Sink, err *error) {
	r := recover()
	if r == nil {
		return
	}
	if we, ok := r.(*sched.WorkerError); ok {
		*err = fmt.Errorf("gnn: contained worker panic: %w", we)
		return
	}
	tel.Inc(telemetry.CtrPanicsRecovered)
	*err = fmt.Errorf("gnn: contained panic: %v\n%s", r, debug.Stack())
}

// ctxErr returns ctx.Err(), tolerating the nil context that RunOptions.Ctx
// defaults to.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
