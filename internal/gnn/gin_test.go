package gnn

import (
	"testing"

	"graphite/internal/graph"
	"graphite/internal/sparse"
	"graphite/internal/tensor"
)

func TestGINNormIsSum(t *testing.T) {
	if GIN.Norm() != sparse.NormSum {
		t.Fatalf("GIN norm %v, want sum", GIN.Norm())
	}
	if GIN.String() != "GIN" {
		t.Fatal("GIN label wrong")
	}
}

func TestGINAllImplsAgree(t *testing.T) {
	w := testWorkload(t, GIN, graph.Wikipedia, 200, 12, false)
	net := testNet(t, GIN, []int{12, 16, 4})
	var ref *tensor.Matrix
	for _, impl := range Impls() {
		st, err := Forward(net, w, RunOptions{Impl: impl, Threads: 2})
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		if ref == nil {
			ref = st.Logits()
			continue
		}
		// Sum aggregation amplifies values (no normalization), so the
		// tolerance scales with magnitude.
		if d := tensor.MaxAbsDiff(st.Logits(), ref); d > 0.05 {
			t.Errorf("%v: logits differ by %g", impl, d)
		}
	}
}

func TestGINTrainingReducesLoss(t *testing.T) {
	// GIN's unnormalized sums need a small learning rate on high-degree
	// graphs; use the low-degree wikipedia profile.
	w := testWorkload(t, GIN, graph.Wikipedia, 200, 10, true)
	net := testNet(t, GIN, []int{10, 12, 4})
	tr, err := NewTrainer(net, w, RunOptions{Impl: ImplCombined, Threads: 2}, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Train(10)
	if err != nil {
		t.Fatal(err)
	}
	if res[len(res)-1].Loss >= res[0].Loss {
		t.Fatalf("GIN loss did not decrease: %.4f -> %.4f", res[0].Loss, res[len(res)-1].Loss)
	}
}
