package gnn

import (
	"context"
	"fmt"
	"math/rand"

	"graphite/internal/graph"
	"graphite/internal/sched"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// InferVerticesContext runs batched per-vertex inference: the requested
// vertices' K-hop neighbourhoods are sampled backwards through the layers
// (SampleBlocks), their input features gathered, and the layers executed
// through the ctx-aware scheduling path. It returns one logits row per
// requested vertex, aligned with ids.
//
// This is the serving path: a request batcher coalesces per-vertex
// inference requests into one ids slice and dispatches it here with the
// batch's deadline as ctx. fanouts has one entry per layer (<= 0 means the
// full neighbourhood — with full fanouts the result matches the full-batch
// forward pass row-for-row); nil means full neighbourhoods at every layer.
// rng drives neighbour sampling and may be nil when every fanout is full.
//
// Cancellation is observed between layers and at scheduler chunk
// boundaries; kernel worker panics are contained into a returned error.
func InferVerticesContext(ctx context.Context, net *Network, g *graph.CSR, x *tensor.Matrix, ids []int32, fanouts []int, rng *rand.Rand, opts RunOptions) (_ *tensor.Matrix, err error) {
	defer contain(opts.Tel, &err)
	if net.NumLayers() == 0 {
		return nil, fmt.Errorf("gnn: empty network")
	}
	if g == nil || x == nil {
		return nil, fmt.Errorf("gnn: nil graph or features")
	}
	if x.Rows != g.NumVertices() {
		return nil, fmt.Errorf("gnn: %d feature rows for %d vertices", x.Rows, g.NumVertices())
	}
	if net.Layers[0].In() != x.Cols {
		return nil, fmt.Errorf("gnn: layer 0 expects %d input features, got %d", net.Layers[0].In(), x.Cols)
	}
	if len(fanouts) == 0 {
		fanouts = make([]int, net.NumLayers())
	}
	if len(fanouts) != net.NumLayers() {
		return nil, fmt.Errorf("gnn: %d fanouts for %d layers", len(fanouts), net.NumLayers())
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if cerr := ctxErr(ctx); cerr != nil {
		return nil, cerr
	}

	sp := opts.Tel.Begin(telemetry.PhaseInfer)
	defer sp.End()

	// Trace annotation mirrors the sink spans at the same phase names: on
	// an untraced context StartSpan is a no-op (zero handle, ctx unchanged).
	_, tsp := telemetry.StartSpan(ctx, telemetry.PhaseSample)
	ssp := opts.Tel.Begin(telemetry.PhaseSample)
	blocks, err := SampleBlocks(g, net.Kind, ids, fanouts, rng)
	if err != nil {
		ssp.End()
		tsp.End()
		return nil, err
	}
	feats, err := gatherRowsCtx(ctx, x, blocks[0].SrcIDs, opts.Threads)
	ssp.End()
	tsp.End()
	if err != nil {
		return nil, err
	}
	return SampledForwardContext(ctx, net, blocks, feats, opts)
}

// gatherRowsCtx is GatherRows under a context: the row copies drain at
// chunk granularity on cancellation.
func gatherRowsCtx(ctx context.Context, x *tensor.Matrix, ids []int32, threads int) (*tensor.Matrix, error) {
	out := tensor.NewMatrix(len(ids), x.Cols)
	if err := sched.DynamicCtx(ctx, len(ids), 256, threads, func(s, e int) {
		for i := s; i < e; i++ {
			copy(out.Row(i), x.Row(int(ids[i])))
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// SampledForwardContext is SampledForward under a context with telemetry:
// aggregation and the final bias add run through the ctx-aware scheduler
// (cancellation at chunk boundaries, worker panics contained), each layer
// records aggregate/update spans, and the kernel counters account the
// vertices, edges and FLOPs the mini-batch moved.
func SampledForwardContext(ctx context.Context, net *Network, blocks []*Block, h *tensor.Matrix, opts RunOptions) (_ *tensor.Matrix, err error) {
	defer contain(opts.Tel, &err)
	if len(blocks) != net.NumLayers() {
		return nil, fmt.Errorf("gnn: %d blocks for %d layers", len(blocks), net.NumLayers())
	}
	threads := opts.Threads
	for k, layer := range net.Layers {
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, cerr
		}
		blk := blocks[k]
		if h.Rows != len(blk.SrcIDs) {
			return nil, fmt.Errorf("gnn: layer %d input has %d rows, block expects %d", k, h.Rows, len(blk.SrcIDs))
		}
		if layer.In() != h.Cols {
			return nil, fmt.Errorf("gnn: layer %d expects %d inputs, got %d", k, layer.In(), h.Cols)
		}

		// Per-layer trace span, with aggregate/update children under it —
		// trace granularity stops here; kernels below never see traces
		// (the hotloop-telemetry lint enforces that).
		lctx, lsp := telemetry.StartSpan(ctx, telemetry.LayerName(k))

		_, atsp := telemetry.StartSpan(lctx, telemetry.PhaseAggregate)
		asp := opts.Tel.Begin(telemetry.PhaseAggregate)
		a := tensor.NewMatrix(blk.NumDst, layer.In())
		aggErr := sched.DynamicCtx(ctx, blk.NumDst, 64, threads, func(s, e int) {
			for i := s; i < e; i++ {
				dst := a.Row(i)
				clear(dst)
				for eIdx := blk.SubG.Ptr[i]; eIdx < blk.SubG.Ptr[i+1]; eIdx++ {
					tensor.AXPY(dst, h.Row(int(blk.SubG.Col[eIdx])), blk.Factors[eIdx])
				}
			}
		})
		asp.End()
		atsp.End()
		if aggErr != nil {
			lsp.End()
			return nil, aggErr
		}
		opts.Tel.Add(telemetry.CtrVerticesAggregated, int64(blk.NumDst))
		opts.Tel.Add(telemetry.CtrEdgesAggregated, int64(len(blk.SubG.Col)))

		_, utsp := telemetry.StartSpan(lctx, telemetry.PhaseUpdate)
		usp := opts.Tel.Begin(telemetry.PhaseUpdate)
		z := tensor.NewMatrix(blk.NumDst, layer.Out())
		tensor.MatMul(z, a, layer.W, threads)
		if k < net.NumLayers()-1 {
			tensor.AddBiasReLU(z, layer.B, threads)
		} else if uerr := sched.DynamicCtx(ctx, z.Rows, 256, threads, func(s, e int) {
			tensor.AddBiasRange(z, layer.B, s, e)
		}); uerr != nil {
			usp.End()
			utsp.End()
			lsp.End()
			return nil, uerr
		}
		usp.End()
		utsp.End()
		lsp.End()
		opts.Tel.Add(telemetry.CtrGEMMFLOPs, 2*int64(blk.NumDst)*int64(layer.In())*int64(layer.Out()))
		h = z
	}
	return h, nil
}
