package gnn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphite/internal/graph"
	"graphite/internal/tensor"
)

// TestSoftmaxGradientRowsSumToZero: for every labeled vertex, the
// cross-entropy gradient row sums to zero (softmax probabilities sum to 1,
// minus the one-hot).
func TestSoftmaxGradientRowsSumToZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(20) + 1
		cols := rng.Intn(6) + 2
		logits := tensor.NewMatrix(rows, cols)
		logits.FillRandom(rng, 3)
		labels := make([]int32, rows)
		for i := range labels {
			labels[i] = int32(rng.Intn(cols + 1)) // cols means unlabeled
			if int(labels[i]) == cols {
				labels[i] = -1
			}
		}
		_, grad, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			var sum float64
			for _, v := range grad.Row(i) {
				sum += float64(v)
			}
			if math.Abs(sum) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestForwardPermutationEquivariance: relabelling the graph's vertices and
// permuting the feature rows identically must permute the logits the same
// way (GNNs are permutation equivariant).
func TestForwardPermutationEquivariance(t *testing.T) {
	n := 60
	g, err := graph.GenerateProfile(graph.Wikipedia, n)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(n, 8)
	x.FillRandom(rand.New(rand.NewSource(3)), 1)
	net := testNet(t, GCN, []int{8, 6, 3})

	w, err := NewWorkload(g, GCN, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Forward(net, w, RunOptions{Impl: ImplBasic})
	if err != nil {
		t.Fatal(err)
	}

	perm := rand.New(rand.NewSource(4)).Perm(n)
	order := make([]int32, n)
	for newID, oldID := range perm {
		order[newID] = int32(oldID)
	}
	pg, err := g.Permute(order)
	if err != nil {
		t.Fatal(err)
	}
	px := tensor.NewMatrix(n, 8)
	for newID, oldID := range order {
		copy(px.Row(newID), x.Row(int(oldID)))
	}
	pw, err := NewWorkload(pg, GCN, px, nil)
	if err != nil {
		t.Fatal(err)
	}
	permuted, err := Forward(net, pw, RunOptions{Impl: ImplBasic})
	if err != nil {
		t.Fatal(err)
	}
	for newID, oldID := range order {
		a := permuted.Logits().Row(newID)
		b := base.Logits().Row(int(oldID))
		for j := range a {
			if math.Abs(float64(a[j]-b[j])) > 1e-3 {
				t.Fatalf("vertex %d (old %d) logit %d: %g vs %g", newID, oldID, j, a[j], b[j])
			}
		}
	}
}

// TestAccuracyBounds: accuracy is always in [0,1] and exactly 1 when the
// logits encode the labels.
func TestAccuracyBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(20) + 1
		cols := rng.Intn(5) + 2
		logits := tensor.NewMatrix(rows, cols)
		logits.FillRandom(rng, 1)
		labels := make([]int32, rows)
		for i := range labels {
			labels[i] = int32(rng.Intn(cols))
		}
		acc := Accuracy(logits, labels)
		if acc < 0 || acc > 1 {
			return false
		}
		for i := range labels {
			logits.Set(i, int(labels[i]), 100)
		}
		return Accuracy(logits, labels) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
