package gnn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"graphite/internal/graph"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// serveTestSetup builds a small deterministic graph, features, and network.
func serveTestSetup(t *testing.T, kind Kind) (*graph.CSR, *tensor.Matrix, *Network) {
	t.Helper()
	g, err := graph.GenerateProfile(graph.Products, 300)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(g.NumVertices(), 16)
	x.FillSparse(rand.New(rand.NewSource(7)), 1, 0.3)
	net, err := NewNetwork(Config{Kind: kind, Dims: []int{16, 24, 5}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return g, x, net
}

// TestInferVerticesMatchesFullBatch pins the serving path to the full-batch
// forward pass: with full fanouts (no sampling) the per-vertex logits must
// match the corresponding rows of the full-batch basic implementation, for
// both normalization families.
func TestInferVerticesMatchesFullBatch(t *testing.T) {
	for _, kind := range []Kind{GCN, SAGE} {
		t.Run(kind.String(), func(t *testing.T) {
			g, x, net := serveTestSetup(t, kind)
			w, err := NewWorkload(g, kind, x, nil)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Infer(net, w, RunOptions{Impl: ImplBasic, Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			ids := []int32{0, 7, 42, 199, 299, 7}
			got, err := InferVerticesContext(context.Background(), net, g, x, ids, nil, nil, RunOptions{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if got.Rows != len(ids) || got.Cols != 5 {
				t.Fatalf("logits shape %dx%d, want %dx5", got.Rows, got.Cols, len(ids))
			}
			logits := full.Logits()
			for i, v := range ids {
				want := logits.Row(int(v))
				for j, gv := range got.Row(i) {
					if d := math.Abs(float64(gv - want[j])); d > 1e-4 {
						t.Fatalf("vertex %d logit %d: sampled %g vs full-batch %g (|Δ|=%g)", v, j, gv, want[j], d)
					}
				}
			}
		})
	}
}

// TestInferVerticesSampledFanout checks the sampled path stays deterministic
// under a seeded rng and bounds the block sizes by the fanout.
func TestInferVerticesSampledFanout(t *testing.T) {
	g, x, net := serveTestSetup(t, GCN)
	ids := []int32{1, 2, 3, 250}
	run := func(seed int64) *tensor.Matrix {
		out, err := InferVerticesContext(context.Background(), net, g, x, ids, []int{3, 3},
			rand.New(rand.NewSource(seed)), RunOptions{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(5), run(5)
	for i := 0; i < a.Rows; i++ {
		for j, av := range a.Row(i) {
			if av != b.Row(i)[j] {
				t.Fatalf("same seed, different logits at (%d,%d)", i, j)
			}
		}
	}
}

// TestInferVerticesValidation covers the error paths: out-of-range ids,
// fanout/layer mismatch, feature-width mismatch.
func TestInferVerticesValidation(t *testing.T) {
	g, x, net := serveTestSetup(t, GCN)
	bg := context.Background()
	if _, err := InferVerticesContext(bg, net, g, x, []int32{-1}, nil, nil, RunOptions{}); err == nil {
		t.Fatal("negative vertex id accepted")
	}
	if _, err := InferVerticesContext(bg, net, g, x, []int32{int32(g.NumVertices())}, nil, nil, RunOptions{}); err == nil {
		t.Fatal("out-of-range vertex id accepted")
	}
	if _, err := InferVerticesContext(bg, net, g, x, []int32{0}, []int{5}, nil, RunOptions{}); err == nil {
		t.Fatal("fanout/layer mismatch accepted")
	}
	narrow := tensor.NewMatrix(g.NumVertices(), 3)
	if _, err := InferVerticesContext(bg, net, g, narrow, []int32{0}, nil, nil, RunOptions{}); err == nil {
		t.Fatal("feature-width mismatch accepted")
	}
	if _, err := InferVerticesContext(bg, net, g, x, nil, nil, nil, RunOptions{}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestInferVerticesCancelled proves a dead deadline is honoured before any
// layer work: a pre-cancelled context returns its error.
func TestInferVerticesCancelled(t *testing.T) {
	g, x, net := serveTestSetup(t, GCN)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := InferVerticesContext(ctx, net, g, x, []int32{0, 1}, nil, nil, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestInferVerticesTelemetry checks the serving path feeds the same phase
// vocabulary as the full-batch path: infer/sample/aggregate/update spans
// and the vertex/edge counters.
func TestInferVerticesTelemetry(t *testing.T) {
	g, x, net := serveTestSetup(t, GCN)
	tel := telemetry.New(0)
	ids := []int32{0, 1, 2}
	if _, err := InferVerticesContext(context.Background(), net, g, x, ids, nil, nil,
		RunOptions{Threads: 2, Tel: tel}); err != nil {
		t.Fatal(err)
	}
	totals := tel.PhaseTotals()
	for _, phase := range []string{telemetry.PhaseInfer, telemetry.PhaseSample, telemetry.PhaseAggregate, telemetry.PhaseUpdate} {
		if _, ok := totals[phase]; !ok {
			t.Errorf("no %q span recorded", phase)
		}
	}
	// Two layers: layer 0 aggregates the sampled sources, layer 1 the ids.
	if got := tel.Counter(telemetry.CtrVerticesAggregated); got < int64(2*len(ids)) {
		t.Errorf("vertices aggregated = %d, want >= %d", got, 2*len(ids))
	}
	if tel.Counter(telemetry.CtrEdgesAggregated) == 0 {
		t.Error("no edges accounted")
	}
}
