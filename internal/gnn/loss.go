package gnn

import (
	"fmt"
	"math"

	"graphite/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of the logits
// against integer labels and the gradient with respect to the logits
// (softmax(x) - onehot, scaled by 1/count). Vertices with label < 0 are
// unlabeled and contribute neither loss nor gradient, supporting the
// semi-supervised node-classification setting GCN was introduced for.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int32) (float64, *tensor.Matrix, error) {
	if len(labels) != logits.Rows {
		return 0, nil, fmt.Errorf("gnn: %d labels for %d logit rows", len(labels), logits.Rows)
	}
	grad := tensor.NewMatrix(logits.Rows, logits.Cols)
	count := 0
	for _, lb := range labels {
		if lb >= 0 {
			if int(lb) >= logits.Cols {
				return 0, nil, fmt.Errorf("gnn: label %d out of range [0,%d)", lb, logits.Cols)
			}
			count++
		}
	}
	if count == 0 {
		return 0, grad, nil
	}
	var loss float64
	inv := float32(1.0 / float64(count))
	for i := 0; i < logits.Rows; i++ {
		lb := labels[i]
		if lb < 0 {
			continue
		}
		row := logits.Row(i)
		g := grad.Row(i)
		// Numerically stable softmax.
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			g[j] = float32(e)
			sum += e
		}
		invSum := float32(1 / sum)
		for j := range g {
			g[j] *= invSum
		}
		loss -= math.Log(math.Max(float64(g[lb]), 1e-30))
		g[lb] -= 1
		for j := range g {
			g[j] *= inv
		}
	}
	return loss / float64(count), grad, nil
}

// Accuracy returns the fraction of labeled vertices whose argmax logit
// matches the label.
func Accuracy(logits *tensor.Matrix, labels []int32) float64 {
	correct, count := 0, 0
	for i := 0; i < logits.Rows; i++ {
		lb := labels[i]
		if lb < 0 {
			continue
		}
		count++
		row := logits.Row(i)
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		if int32(best) == lb {
			correct++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(correct) / float64(count)
}
