package gnn

import (
	"bytes"
	"testing"

	"graphite/internal/graph"
	"graphite/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	net, err := NewNetwork(Config{Kind: SAGE, Dims: []int{10, 16, 4}, Dropout: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != SAGE || back.Dropout != 0.5 || back.NumLayers() != 2 {
		t.Fatalf("metadata lost: %+v", back)
	}
	for k := range net.Layers {
		if d := tensor.MaxAbsDiff(net.Layers[k].W, back.Layers[k].W); d != 0 {
			t.Fatalf("layer %d weights differ by %g", k, d)
		}
		for j := range net.Layers[k].B {
			if net.Layers[k].B[j] != back.Layers[k].B[j] {
				t.Fatalf("layer %d bias differs", k)
			}
		}
	}
}

func TestCheckpointedNetworkSameLogits(t *testing.T) {
	w := testWorkload(t, GCN, graph.Products, 120, 8, false)
	net := testNet(t, GCN, []int{8, 6, 3})
	ref, err := Forward(net, w, RunOptions{Impl: ImplBasic})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Forward(back, w, RunOptions{Impl: ImplBasic})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(got.Logits(), ref.Logits()); d != 0 {
		t.Fatalf("restored network diverges by %g", d)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	net := testNet(t, GCN, []int{4, 2})
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	bad[0] = 0
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), good...)
	bad[4] = 9
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := Load(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}
