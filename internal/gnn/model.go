// Package gnn implements the GNN substrate: the GCN and GraphSAGE models
// (Table 2), full-batch forward and backward passes in every implementation
// variant the paper evaluates (DistGNN baseline, MKL SpMM, basic, fused,
// compressed, combined), the training loop, and the neighbourhood sampling
// + mini-batching pipeline used by the motivation experiment (Fig. 2).
package gnn

import (
	"fmt"
	"math"
	"math/rand"

	"graphite/internal/compress"
	"graphite/internal/graph"
	"graphite/internal/sparse"
	"graphite/internal/tensor"
)

// Kind selects the GNN model (Table 2). Both share the FC+ReLU update and
// differ only in the aggregation normalization ψ.
type Kind int

const (
	// GCN sums neighbour features scaled by 1/sqrt(D_v·D_u).
	GCN Kind = iota
	// SAGE (GraphSAGE, mean aggregator) averages neighbour features.
	SAGE
	// GIN sums neighbour features unscaled (the Graph Isomorphism
	// Network's injective aggregator). The paper's framework covers any
	// ψ expressible as a per-edge factor (§2.1); GIN is the ψ≡1 case and
	// exercises that generality.
	GIN
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case GCN:
		return "GCN"
	case SAGE:
		return "GraphSAGE"
	case GIN:
		return "GIN"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Norm returns the sparse normalization implementing the model's ψ.
func (k Kind) Norm() sparse.Norm {
	switch k {
	case GCN:
		return sparse.NormGCN
	case GIN:
		return sparse.NormSum
	default:
		return sparse.NormMean
	}
}

// Layer holds one GNN layer's trainable parameters: W (In×Out) and b (Out),
// the update phase's FC layer (Table 2).
type Layer struct {
	W *tensor.Matrix
	B []float32
}

// In returns the layer's input feature length.
func (l *Layer) In() int { return l.W.Rows }

// Out returns the layer's output feature length.
func (l *Layer) Out() int { return l.W.Cols }

// Config describes a network.
type Config struct {
	Kind Kind
	// Dims has length K+1: input feature length, K-1 hidden lengths, and
	// the output length (number of classes for node classification).
	Dims []int
	// Dropout is the hidden-feature dropout probability applied during
	// training (§2.2 profiles 50%); 0 disables it.
	Dropout float64
	// Seed makes weight initialization deterministic.
	Seed int64
}

// Network is a K-layer GNN.
type Network struct {
	Kind    Kind
	Layers  []*Layer
	Dropout float64
}

// NewNetwork builds a network with Glorot-uniform weight initialization.
func NewNetwork(cfg Config) (*Network, error) {
	if len(cfg.Dims) < 2 {
		return nil, fmt.Errorf("gnn: need at least 2 dims (input, output), got %d", len(cfg.Dims))
	}
	for i, d := range cfg.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("gnn: dim %d is %d, want > 0", i, d)
		}
	}
	if cfg.Dropout < 0 || cfg.Dropout >= 1 {
		return nil, fmt.Errorf("gnn: dropout %g out of [0,1)", cfg.Dropout)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := &Network{Kind: cfg.Kind, Dropout: cfg.Dropout}
	for k := 0; k+1 < len(cfg.Dims); k++ {
		in, out := cfg.Dims[k], cfg.Dims[k+1]
		w := tensor.NewMatrix(in, out)
		bound := float32(math.Sqrt(6.0 / float64(in+out)))
		w.FillRandom(rng, bound)
		net.Layers = append(net.Layers, &Layer{W: w, B: make([]float32, out)})
	}
	return net, nil
}

// NumLayers returns K.
func (n *Network) NumLayers() int { return len(n.Layers) }

// NumParams counts trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += l.W.Rows*l.W.Cols + len(l.B)
	}
	return total
}

// Clone deep-copies the network (for optimizer checkpoints and tests).
func (n *Network) Clone() *Network {
	c := &Network{Kind: n.Kind, Dropout: n.Dropout}
	for _, l := range n.Layers {
		b := make([]float32, len(l.B))
		copy(b, l.B)
		c.Layers = append(c.Layers, &Layer{W: l.W.Clone(), B: b})
	}
	return c
}

// Workload bundles a prepared graph with its features and labels: the graph
// gains self loops (N(v) ∪ {v} becomes a plain row gather), the per-edge ψ
// factor array is precomputed (shared by all kernels and by the DMA
// descriptors), and the transposed graph and factors for back-propagation
// are built lazily.
type Workload struct {
	G       *graph.CSR
	Factors []float32
	X       *tensor.Matrix
	// XC is the compressed form of X, built lazily by the compressed
	// implementations.
	XC     *compress.Matrix
	Labels []int32

	gT       *graph.CSR
	factorsT []float32
}

// NewWorkload prepares a workload. raw must not be nil; labels may be nil
// for inference-only workloads. x.Rows must equal the vertex count.
func NewWorkload(raw *graph.CSR, kind Kind, x *tensor.Matrix, labels []int32) (*Workload, error) {
	if raw == nil || x == nil {
		return nil, fmt.Errorf("gnn: nil graph or features")
	}
	if x.Rows != raw.NumVertices() {
		return nil, fmt.Errorf("gnn: %d feature rows for %d vertices", x.Rows, raw.NumVertices())
	}
	if labels != nil && len(labels) != raw.NumVertices() {
		return nil, fmt.Errorf("gnn: %d labels for %d vertices", len(labels), raw.NumVertices())
	}
	g := raw.AddSelfLoops()
	return &Workload{
		G:       g,
		Factors: sparse.Factors(g, kind.Norm()),
		X:       x,
		Labels:  labels,
	}, nil
}

// Transposed returns the reversed graph and matching factor array for
// back-propagating through the aggregation (dh = Âᵀ·da), building them on
// first use and caching.
func (w *Workload) Transposed() (*graph.CSR, []float32) {
	if w.gT == nil {
		w.gT = w.G.Transpose()
		w.factorsT = sparse.TransposeFactors(w.G, w.gT, w.Factors)
	}
	return w.gT, w.factorsT
}

// CompressedInput returns the compressed form of X, building it on first
// use. Input compression is a one-time data-preparation cost (the paper's
// timed region covers layer execution), so callers doing timing should
// force it before starting clocks.
func (w *Workload) CompressedInput(threads int) *compress.Matrix {
	if w.XC == nil {
		w.XC = compress.FromDense(w.X, threads)
	}
	return w.XC
}
