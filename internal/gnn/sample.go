package gnn

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"graphite/internal/graph"
	"graphite/internal/sched"
	"graphite/internal/tensor"
)

// Block is one layer's message-flow graph in a sampled mini-batch, in the
// DGL style the paper profiles (§3): a bipartite aggregation from SrcIDs
// (whose features are the layer input) to the first NumDst of them (whose
// features are the layer output). The destination vertices are always a
// prefix of the sources, so consecutive blocks chain: block k's sources
// are block k+1's destinations.
type Block struct {
	// SubG has NumDst rows; column indices are source-local.
	SubG *graph.CSR
	// Factors is the per-edge ψ array for the block.
	Factors []float32
	// SrcIDs maps source-local ids to global vertex ids.
	SrcIDs []int32
	// NumDst is the number of destination vertices.
	NumDst int
}

// SampleBlocks builds the K blocks for one mini-batch: starting from the
// batch vertices it walks the layers backwards, sampling up to fanouts[k]
// neighbours per vertex (plus the vertex itself) at layer k — Equation 3's
// SAMPLE. len(fanouts) must equal the number of layers; fanout <= 0 means
// "no sampling at that layer" (full neighbourhood, i.e. plain
// mini-batching).
//
// This is the pipeline whose cost Fig. 2 shows dominating sampled training
// epochs, and it runs on the CPU even in GPU setups (§2.1).
func SampleBlocks(g *graph.CSR, kind Kind, batch []int32, fanouts []int, rng *rand.Rand) ([]*Block, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("gnn: empty batch")
	}
	n := g.NumVertices()
	for _, v := range batch {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("gnn: batch vertex %d out of range [0,%d)", v, n)
		}
	}
	blocks := make([]*Block, len(fanouts))
	dst := append([]int32(nil), batch...)
	for k := len(fanouts) - 1; k >= 0; k-- {
		blk, err := sampleOneBlock(g, kind, dst, fanouts[k], rng)
		if err != nil {
			return nil, err
		}
		blocks[k] = blk
		dst = blk.SrcIDs
	}
	return blocks, nil
}

func sampleOneBlock(g *graph.CSR, kind Kind, dst []int32, fanout int, rng *rand.Rand) (*Block, error) {
	// Source-local id assignment: destinations first (prefix invariant).
	local := make(map[int32]int32, len(dst)*2)
	srcIDs := append([]int32(nil), dst...)
	for i, v := range dst {
		local[v] = int32(i)
	}
	intern := func(v int32) int32 {
		if id, ok := local[v]; ok {
			return id
		}
		id := int32(len(srcIDs))
		local[v] = id
		srcIDs = append(srcIDs, v)
		return id
	}
	ptr := make([]int32, len(dst)+1)
	var col []int32
	for i, v := range dst {
		nbr := g.Neighbors(int(v))
		// Self edge first (N(v) ∪ {v}).
		col = append(col, int32(i))
		switch {
		case fanout <= 0 || len(nbr) <= fanout:
			for _, u := range nbr {
				col = append(col, intern(u))
			}
		default:
			// Floyd-style sample of `fanout` distinct positions.
			chosen := make(map[int]struct{}, fanout)
			for j := len(nbr) - fanout; j < len(nbr); j++ {
				p := rng.Intn(j + 1)
				if _, dup := chosen[p]; dup {
					p = j
				}
				chosen[p] = struct{}{}
				col = append(col, intern(nbr[p]))
			}
		}
		ptr[i+1] = int32(len(col))
	}
	// Build the block CSR over the source-local universe. Validate against
	// the source count, not the dst count: columns index sources.
	sub := &graph.CSR{Ptr: ptr, Col: col}
	factors := make([]float32, len(col))
	switch kind.Norm().String() {
	case "mean":
		for i := range dst {
			d := float32(ptr[i+1] - ptr[i])
			for e := ptr[i]; e < ptr[i+1]; e++ {
				factors[e] = 1 / d
			}
		}
	default:
		// GCN-style symmetric norm approximated with in-block degrees on
		// the destination side and full-graph degrees on the source side.
		for i := range dst {
			dv := float64(ptr[i+1] - ptr[i])
			for e := ptr[i]; e < ptr[i+1]; e++ {
				du := float64(g.Degree(int(srcIDs[sub.Col[e]])) + 1)
				factors[e] = float32(1 / math.Sqrt(dv*du))
			}
		}
	}
	return &Block{SubG: sub, Factors: factors, SrcIDs: srcIDs, NumDst: len(dst)}, nil
}

// GatherRows copies X rows for the given global ids into a fresh matrix —
// the mini-batch feature extraction whose memory traffic is part of the
// sampling overhead (§3: sampling and mini-batching contribute over 80% of
// sampled-training time).
func GatherRows(x *tensor.Matrix, ids []int32, threads int) *tensor.Matrix {
	out := tensor.NewMatrix(len(ids), x.Cols)
	sched.Dynamic(len(ids), 256, threads, func(s, e int) {
		for i := s; i < e; i++ {
			copy(out.Row(i), x.Row(int(ids[i])))
		}
	})
	return out
}

// SampledForward runs the network over a mini-batch's blocks and returns
// the logits for the batch vertices. h starts as the gathered input
// features of blocks[0].SrcIDs.
func SampledForward(net *Network, blocks []*Block, h *tensor.Matrix, threads int) (*tensor.Matrix, error) {
	if len(blocks) != net.NumLayers() {
		return nil, fmt.Errorf("gnn: %d blocks for %d layers", len(blocks), net.NumLayers())
	}
	for k, layer := range net.Layers {
		blk := blocks[k]
		if h.Rows != len(blk.SrcIDs) {
			return nil, fmt.Errorf("gnn: layer %d input has %d rows, block expects %d", k, h.Rows, len(blk.SrcIDs))
		}
		a := tensor.NewMatrix(blk.NumDst, layer.In())
		sched.Dynamic(blk.NumDst, 64, threads, func(s, e int) {
			for i := s; i < e; i++ {
				dst := a.Row(i)
				clear(dst)
				for eIdx := blk.SubG.Ptr[i]; eIdx < blk.SubG.Ptr[i+1]; eIdx++ {
					tensor.AXPY(dst, h.Row(int(blk.SubG.Col[eIdx])), blk.Factors[eIdx])
				}
			}
		})
		z := tensor.NewMatrix(blk.NumDst, layer.Out())
		tensor.MatMul(z, a, layer.W, threads)
		if k < net.NumLayers()-1 {
			tensor.AddBiasReLU(z, layer.B, threads)
		} else {
			sched.Dynamic(z.Rows, 256, threads, func(s, e int) {
				tensor.AddBiasRange(z, layer.B, s, e)
			})
		}
		h = z
	}
	return h, nil
}

// SampledEpochBreakdown is one epoch of sampled mini-batch training cost,
// split the way Fig. 2 splits it.
type SampledEpochBreakdown struct {
	Sampling  time.Duration // neighbourhood sampling + block building + feature gathering
	GNNLayers time.Duration // layer computation
	Batches   int
}

// RunSampledEpoch executes one epoch of sampled forward passes over all
// vertices in mini-batches and reports the time split. layerSpeedup
// divides the measured layer-compute time to model a throughput-oriented
// accelerator computing the layers (DESIGN.md substitution 6 — the paper's
// Titan V); 1 means "layers on this CPU".
func RunSampledEpoch(net *Network, g *graph.CSR, x *tensor.Matrix, batchSize int, fanouts []int, layerSpeedup float64, threads int, seed int64) (SampledEpochBreakdown, error) {
	if batchSize <= 0 {
		return SampledEpochBreakdown{}, fmt.Errorf("gnn: batch size %d", batchSize)
	}
	if layerSpeedup <= 0 {
		layerSpeedup = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	perm := rng.Perm(n)
	var out SampledEpochBreakdown
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		batch := make([]int32, end-start)
		for i := range batch {
			batch[i] = int32(perm[start+i])
		}
		t0 := time.Now()
		blocks, err := SampleBlocks(g, net.Kind, batch, fanouts, rng)
		if err != nil {
			return out, err
		}
		feats := GatherRows(x, blocks[0].SrcIDs, threads)
		t1 := time.Now()
		if _, err := SampledForward(net, blocks, feats, threads); err != nil {
			return out, err
		}
		t2 := time.Now()
		out.Sampling += t1.Sub(t0)
		out.GNNLayers += time.Duration(float64(t2.Sub(t1)) / layerSpeedup)
		out.Batches++
	}
	return out, nil
}
