package gnn

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"graphite/internal/compress"
	"graphite/internal/kernels"
	"graphite/internal/sched"
	"graphite/internal/sparse"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// Impl selects the layer implementation variant, matching the names used in
// the evaluation (§7.1.1).
type Impl int

const (
	// ImplDistGNN is the baseline: statically scheduled aggregation plus
	// MKL-style GEMM update.
	ImplDistGNN Impl = iota
	// ImplMKL computes the aggregation with SpMM and the update with GEMM.
	ImplMKL
	// ImplBasic is the paper's Algorithm 1 aggregation plus GEMM update.
	ImplBasic
	// ImplFused is layer fusion (Algorithm 2) on top of basic.
	ImplFused
	// ImplCompressed is basic plus feature compression (§4.3).
	ImplCompressed
	// ImplCombined is fusion plus compression.
	ImplCombined
)

// Impls lists all variants in the paper's presentation order.
func Impls() []Impl {
	return []Impl{ImplDistGNN, ImplMKL, ImplBasic, ImplFused, ImplCompressed, ImplCombined}
}

// String implements fmt.Stringer with the paper's labels.
func (im Impl) String() string {
	switch im {
	case ImplDistGNN:
		return "DistGNN"
	case ImplMKL:
		return "MKL"
	case ImplBasic:
		return "basic"
	case ImplFused:
		return "fusion"
	case ImplCompressed:
		return "compression"
	case ImplCombined:
		return "combined"
	}
	return fmt.Sprintf("Impl(%d)", int(im))
}

// UsesCompression reports whether the variant stores hidden features
// compressed.
func (im Impl) UsesCompression() bool { return im == ImplCompressed || im == ImplCombined }

// UsesFusion reports whether the variant fuses aggregation and update.
func (im Impl) UsesFusion() bool { return im == ImplFused || im == ImplCombined }

// RunOptions tunes a forward/backward execution.
type RunOptions struct {
	Impl    Impl
	Threads int
	// Ctx, when non-nil, is observed between layers and at scheduler chunk
	// boundaries inside the kernels: cancellation aborts the run with
	// ctx.Err() at chunk granularity. nil behaves like
	// context.Background() and keeps the kernels on their uncancellable
	// fast path (no per-row branches).
	Ctx context.Context
	// BlockSize is B in Algorithm 2 (default 64): vertices aggregated and
	// then updated per fused block. Sized so the a-block stays in cache
	// between the two phases (Fig. 5b).
	BlockSize int
	// BlocksPerTask is T in Algorithm 2 (default 4).
	BlocksPerTask int
	// PrefetchDistance is D in Algorithm 1 (default 4).
	PrefetchDistance int
	// Order is the vertex processing order (§4.4); nil = natural order.
	Order []int32
	// Train keeps the aggregation matrices for back-propagation and
	// enables dropout (§4.2: the footprint reduction of Fig. 5c is
	// inference-only).
	Train bool
	// DropoutSeed seeds the dropout RNG streams.
	DropoutSeed int64
	// Tel receives phase spans and kernel counters; nil disables
	// instrumentation (the hot paths then pay one pointer test per
	// chunk, nothing per edge).
	Tel *telemetry.Sink
}

func (o RunOptions) blockSize() int {
	if o.BlockSize <= 0 {
		return 64
	}
	return o.BlockSize
}

func (o RunOptions) blocksPerTask() int {
	if o.BlocksPerTask <= 0 {
		return 4
	}
	return o.BlocksPerTask
}

func (o RunOptions) prefetch() int {
	if o.PrefetchDistance < 0 {
		return 0
	}
	if o.PrefetchDistance == 0 {
		return 4
	}
	return o.PrefetchDistance
}

func (o RunOptions) kernelOptions() kernels.Options {
	return kernels.Options{
		Threads:          o.Threads,
		PrefetchDistance: o.prefetch(),
		Order:            o.Order,
		Tel:              o.Tel,
	}
}

// Timings accumulates phase wall-clock time. Unfused variants split the
// layer into aggregation and update (the Fig. 13 breakdown); fused variants
// report a single fused time because the phases interleave per block.
type Timings struct {
	Aggregate time.Duration
	Update    time.Duration
	Fused     time.Duration
	Backward  time.Duration
}

// Total returns the sum of all phases.
func (t Timings) Total() time.Duration {
	return t.Aggregate + t.Update + t.Fused + t.Backward
}

// Add accumulates other into t.
func (t *Timings) Add(other Timings) {
	t.Aggregate += other.Aggregate
	t.Update += other.Update
	t.Fused += other.Fused
	t.Backward += other.Backward
}

// ForwardState holds everything the backward pass needs, plus the phase
// timings.
type ForwardState struct {
	// H[k] is layer k's post-activation output; H[K-1] holds the logits.
	// Hidden entries are nil for compressed inference (the compressed
	// form is the only stored copy, Fig. 5c's footprint saving analogue).
	H []*tensor.Matrix
	// HC[k] is the compressed form of H[k] for compressed variants.
	HC []*compress.Matrix
	// A[k] is layer k's aggregation output, kept only in training.
	A []*tensor.Matrix
	// DropMasks[k] records layer k's dropout mask (nil when unused).
	DropMasks [][]bool
	Timings   Timings
}

// Logits returns the final layer output.
func (s *ForwardState) Logits() *tensor.Matrix { return s.H[len(s.H)-1] }

// Forward runs the full K-layer forward pass with the selected
// implementation. Panics escaping the kernels — worker panics contained by
// the scheduler as *sched.WorkerError, and caller-goroutine shape panics —
// are converted to returned errors here, so a malformed workload cannot
// kill the process. When opts.Ctx is set, cancellation aborts between
// layers and at chunk boundaries inside each layer.
func Forward(net *Network, w *Workload, opts RunOptions) (st *ForwardState, err error) {
	defer contain(opts.Tel, &err)
	if net.NumLayers() == 0 {
		return nil, fmt.Errorf("gnn: empty network")
	}
	if net.Layers[0].In() != w.X.Cols {
		return nil, fmt.Errorf("gnn: layer 0 expects %d input features, workload has %d",
			net.Layers[0].In(), w.X.Cols)
	}
	k := net.NumLayers()
	st = &ForwardState{
		H:         make([]*tensor.Matrix, k),
		HC:        make([]*compress.Matrix, k),
		A:         make([]*tensor.Matrix, k),
		DropMasks: make([][]bool, k),
	}
	n := w.G.NumVertices()

	fsp := opts.Tel.Begin(telemetry.PhaseForward)
	defer fsp.End()

	// Current layer input: dense and/or compressed.
	x := w.X
	var xc *compress.Matrix
	if opts.Impl.UsesCompression() {
		if w.XC == nil {
			csp := opts.Tel.Begin(telemetry.PhaseCompressInput)
			w.CompressedInput(opts.Threads)
			csp.End()
			opts.Tel.Add(telemetry.CtrRowsCompressed, int64(n))
		}
		xc = w.XC
	}

	for layerIdx, layer := range net.Layers {
		if cerr := ctxErr(opts.Ctx); cerr != nil {
			return nil, cerr
		}
		if layer.In() != x.Cols {
			return nil, fmt.Errorf("gnn: layer %d expects %d inputs, got %d", layerIdx, layer.In(), x.Cols)
		}
		lsp := opts.Tel.Begin(telemetry.LayerName(layerIdx))
		relu := layerIdx < k-1
		wantCompressedOut := opts.Impl.UsesCompression() && relu
		keepDense := opts.Train || !wantCompressedOut

		var src kernels.Source
		if xc != nil {
			src = kernels.NewCompressedSource(xc)
		} else {
			src = kernels.NewDenseSource(x)
		}

		var hOut *tensor.Matrix
		if keepDense {
			hOut = tensor.NewMatrix(n, layer.Out())
		}
		var hcOut *compress.Matrix
		if wantCompressedOut {
			hcOut = compress.NewMatrix(n, layer.Out())
		}
		ep := epilogue{
			relu:     relu,
			dropout:  0,
			dense:    hOut,
			comp:     hcOut,
			dropSeed: opts.DropoutSeed + int64(layerIdx)*7919,
		}
		if opts.Train && relu && net.Dropout > 0 {
			ep.dropout = net.Dropout
			st.DropMasks[layerIdx] = make([]bool, n*layer.Out())
			ep.mask = st.DropMasks[layerIdx]
		}

		if opts.Impl.UsesFusion() {
			fusp := opts.Tel.Begin(telemetry.PhaseFused)
			a, fusedTime, ferr := fusedLayer(w, src, layer, ep, opts)
			fusp.End()
			if ferr != nil {
				return nil, ferr
			}
			st.Timings.Fused += fusedTime
			if opts.Train {
				st.A[layerIdx] = a
			}
		} else {
			a := tensor.NewMatrix(n, layer.In())
			asp := opts.Tel.Begin(telemetry.PhaseAggregate)
			t0 := time.Now()
			var aggErr error
			switch opts.Impl {
			case ImplDistGNN:
				aggErr = kernels.DistGNNCtx(opts.Ctx, a, w.G, w.Factors, x, opts.Threads, opts.Tel)
			case ImplMKL:
				aggErr = sparse.SpMMCtx(opts.Ctx, a, w.G, w.Factors, x, opts.Threads, opts.Tel)
			default:
				aggErr = kernels.BasicCtx(opts.Ctx, a, w.G, w.Factors, src, opts.kernelOptions())
			}
			t1 := time.Now()
			asp.End()
			if aggErr != nil {
				return nil, aggErr
			}
			usp := opts.Tel.Begin(telemetry.PhaseUpdate)
			uerr := unfusedUpdate(a, layer, ep, opts)
			t2 := time.Now()
			usp.End()
			if uerr != nil {
				return nil, uerr
			}
			st.Timings.Aggregate += t1.Sub(t0)
			st.Timings.Update += t2.Sub(t1)
			if opts.Train {
				st.A[layerIdx] = a
			}
		}
		lsp.End()

		st.H[layerIdx] = hOut
		st.HC[layerIdx] = hcOut
		x, xc = hOut, hcOut
		if hOut == nil && hcOut == nil {
			return nil, fmt.Errorf("gnn: layer %d produced no output", layerIdx)
		}
		if hOut == nil {
			// Compressed-only hidden output: the next layer reads the
			// compressed matrix; keep x's shape bookkeeping via a header
			// only (cols checked against xc below).
			x = &tensor.Matrix{Rows: n, Cols: layer.Out()}
		}
	}
	return st, nil
}

// epilogue is the per-row post-GEMM step: bias, activation, dropout, and
// output placement (dense and/or compressed).
type epilogue struct {
	relu     bool
	dropout  float64
	mask     []bool
	dense    *tensor.Matrix
	comp     *compress.Matrix
	dropSeed int64
}

// finishRow applies bias/activation/dropout to z (a freshly computed GEMM
// row for vertex v) and stores it.
func (ep *epilogue) finishRow(z []float32, bias []float32, v int, rng *rand.Rand) {
	for j := range z {
		val := z[j] + bias[j]
		if ep.relu && val < 0 {
			val = 0
		}
		z[j] = val
	}
	if ep.dropout > 0 {
		scale := float32(1 / (1 - ep.dropout))
		base := v * len(z)
		for j := range z {
			if rng.Float64() < ep.dropout {
				z[j] = 0
				ep.mask[base+j] = false
			} else {
				z[j] *= scale
				ep.mask[base+j] = true
			}
		}
	}
	if ep.dense != nil {
		copy(ep.dense.Row(v), z)
	}
	if ep.comp != nil {
		ep.comp.CompressRow(v, z)
	}
}

// unfusedUpdate runs the whole update phase after a full aggregation:
// z = a·W + b with activation/dropout/compression, parallel over rows. The
// cursor observes opts.Ctx, so cancellation drains the workers at chunk
// granularity; worker panics come back as *sched.WorkerError.
func unfusedUpdate(a *tensor.Matrix, layer *Layer, ep epilogue, opts RunOptions) error {
	axpyOut := kernels.MakeAXPY(layer.Out())
	cur := sched.NewCursorCtx(opts.Ctx, a.Rows, 64)
	return sched.ForEachThreadTelCtx(opts.Ctx, opts.Threads, opts.Tel, func(thread int) {
		rng := rand.New(rand.NewSource(ep.dropSeed + int64(thread)))
		z := make([]float32, layer.Out())
		var chunks, rows int64
		t0 := time.Now()
		for {
			s, e, ok := cur.Next()
			if !ok {
				break
			}
			chunks++
			rows += int64(e - s)
			for v := s; v < e; v++ {
				rowGEMM(z, a.Row(v), layer.W, axpyOut)
				ep.finishRow(z, layer.B, v, rng)
			}
		}
		flushUpdateCounters(opts.Tel, thread, chunks, rows, time.Since(t0), layer, ep.comp != nil)
	})
}

// flushUpdateCounters accounts one update-phase worker's totals: scheduler
// claims, dense-equivalent GEMM FLOPs for its rows, and (when the epilogue
// writes a compressed output) one compressed row per row produced. One call
// per worker keeps every atomic off the per-row path.
func flushUpdateCounters(tel *telemetry.Sink, worker int, chunks, rows int64, busy time.Duration, layer *Layer, compressedOut bool) {
	if !tel.Enabled() || chunks == 0 {
		return
	}
	tel.WorkerClaim(worker, chunks, rows, busy)
	tel.Add(telemetry.CtrSchedChunks, chunks)
	tel.Add(telemetry.CtrSchedRows, rows)
	tel.Add(telemetry.CtrGEMMFLOPs, rows*tensor.GEMMFLOPs(1, layer.In(), layer.Out()))
	if compressedOut {
		tel.Add(telemetry.CtrRowsCompressed, rows)
	}
}

// rowGEMM computes z = row·W using the width-specialised axpy.
func rowGEMM(z, row []float32, w *tensor.Matrix, axpy func(dst, src []float32, alpha float32)) {
	clear(z)
	for l, av := range row {
		if av == 0 {
			continue
		}
		axpy(z, w.Row(l), av)
	}
}

// fusedLayer is the Algorithm 2 / Algorithm 5-style fused driver: each
// thread claims tasks of T blocks of B vertices, aggregates a block, then
// immediately updates it while the block's a-rows are still cache resident
// (Fig. 5b). Inference reuses one per-thread a-buffer (Fig. 5c); training
// writes a to its global rows and returns the matrix for backward.
func fusedLayer(w *Workload, src kernels.Source, layer *Layer, ep epilogue, opts RunOptions) (*tensor.Matrix, time.Duration, error) {
	n := w.G.NumVertices()
	blockSz := opts.blockSize()
	taskSz := blockSz * opts.blocksPerTask()
	kopt := opts.kernelOptions()
	axpyOut := kernels.MakeAXPY(layer.Out())

	var aFull *tensor.Matrix
	if opts.Train {
		aFull = tensor.NewMatrix(n, layer.In())
	}
	_, srcCompressed := src.(*kernels.CompressedSource)
	start := time.Now()
	cur := sched.NewCursorCtx(opts.Ctx, n, taskSz)
	err := sched.ForEachThreadTelCtx(opts.Ctx, opts.Threads, opts.Tel, func(thread int) {
		rng := rand.New(rand.NewSource(ep.dropSeed + int64(thread)))
		var aBuf *tensor.Matrix
		if !opts.Train {
			aBuf = tensor.NewMatrix(blockSz, layer.In())
		}
		z := make([]float32, layer.Out())
		var chunks, rows, edges int64
		t0 := time.Now()
		for {
			ts, te, ok := cur.Next()
			if !ok {
				break
			}
			chunks++
			rows += int64(te - ts)
			for bs := ts; bs < te; bs += blockSz {
				be := bs + blockSz
				if be > te {
					be = te
				}
				// Aggregation half of the j-loop iteration.
				if opts.Train {
					kernels.AggregateBlockByVertex(aFull, w.G, w.Factors, src, kopt, bs, be)
				} else {
					kernels.AggregateBlock(aBuf, 0, w.G, w.Factors, src, kopt, bs, be)
				}
				// Update half, while the a-block is cache resident.
				for i := bs; i < be; i++ {
					v := i
					if opts.Order != nil {
						v = int(opts.Order[i])
					}
					edges += int64(w.G.Ptr[v+1] - w.G.Ptr[v])
					var aRow []float32
					if opts.Train {
						aRow = aFull.Row(v)
					} else {
						aRow = aBuf.Row(i - bs)
					}
					rowGEMM(z, aRow, layer.W, axpyOut)
					ep.finishRow(z, layer.B, v, rng)
				}
			}
		}
		if opts.Tel.Enabled() && chunks > 0 {
			flushUpdateCounters(opts.Tel, thread, chunks, rows, time.Since(t0), layer, ep.comp != nil)
			opts.Tel.Add(telemetry.CtrVerticesAggregated, rows)
			opts.Tel.Add(telemetry.CtrEdgesAggregated, edges)
			if srcCompressed {
				opts.Tel.Add(telemetry.CtrRowsDecompressed, edges)
			}
		}
	})
	return aFull, time.Since(start), err
}
