package gnn

import (
	"fmt"
	"math"
	"time"

	"graphite/internal/kernels"
	"graphite/internal/sparse"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// Gradients holds parameter gradients, parallel to Network.Layers.
type Gradients struct {
	W []*tensor.Matrix
	B [][]float32
}

// NewGradients allocates zeroed gradients matching net.
func NewGradients(net *Network) *Gradients {
	g := &Gradients{}
	for _, l := range net.Layers {
		g.W = append(g.W, tensor.NewMatrix(l.W.Rows, l.W.Cols))
		g.B = append(g.B, make([]float32, len(l.B)))
	}
	return g
}

// Backward back-propagates dLogits through the network, filling grads. The
// forward state must come from a Train-mode Forward (which keeps every
// layer's aggregation matrix — the reason layer fusion cannot shrink the a
// footprint in training, §4.2).
//
// Per layer k (following the chain rule through h = act(a·W + b) and
// a = Â·h_prev):
//
//	dz = dh ⊙ act'        dW = aᵀ·dz       db = Σ dz
//	da = dz·Wᵀ            dh_prev = Âᵀ·da
//
// The Âᵀ aggregation runs on the transposed graph with the transposed
// factor array and uses the implementation's aggregation kernel, so the
// backward pass benefits from the same techniques as the forward pass. The
// "one more GEMM than the forward propagation" the paper mentions (§7.1.1)
// is the dW product.
//
// Like Forward, escaped kernel panics convert to returned errors and
// opts.Ctx is observed between layers and inside the aggregation kernels.
func Backward(net *Network, w *Workload, st *ForwardState, dLogits *tensor.Matrix, grads *Gradients, opts RunOptions) (err error) {
	defer contain(opts.Tel, &err)
	k := net.NumLayers()
	if len(st.A) != k || st.A[k-1] == nil {
		return fmt.Errorf("gnn: forward state lacks aggregation matrices; run Forward with Train=true")
	}
	start := time.Now()
	bsp := opts.Tel.Begin(telemetry.PhaseBackward)
	defer bsp.End()
	gT, fT := w.Transposed()
	dh := dLogits
	for layerIdx := k - 1; layerIdx >= 0; layerIdx-- {
		if cerr := ctxErr(opts.Ctx); cerr != nil {
			return cerr
		}
		layer := net.Layers[layerIdx]
		a := st.A[layerIdx]
		relu := layerIdx < k-1

		// Dropout and activation backward.
		dz := dh
		if relu {
			if mask := st.DropMasks[layerIdx]; mask != nil {
				tensor.DropoutBackward(dh, mask, net.Dropout)
			}
			dz = tensor.NewMatrix(dh.Rows, dh.Cols)
			tensor.ReLUBackward(dz, dh, st.H[layerIdx], opts.Threads)
		}

		// Parameter gradients.
		gsp := opts.Tel.Begin(telemetry.PhaseBackwardGEMM)
		tensor.MatMulTransATel(grads.W[layerIdx], a, dz, opts.Threads, opts.Tel)
		tensor.SumRows(grads.B[layerIdx], dz)

		if layerIdx == 0 {
			gsp.End()
			break // no gradient needed for the input features
		}

		// da = dz·Wᵀ, then dh_prev = Âᵀ·da.
		da := tensor.NewMatrix(dz.Rows, layer.In())
		tensor.MatMulTransBTel(da, dz, layer.W, opts.Threads, opts.Tel)
		gsp.End()
		dhPrev := tensor.NewMatrix(dz.Rows, layer.In())
		asp := opts.Tel.Begin(telemetry.PhaseBackwardAgg)
		var aggErr error
		switch opts.Impl {
		case ImplDistGNN:
			aggErr = kernels.DistGNNCtx(opts.Ctx, dhPrev, gT, fT, da, opts.Threads, opts.Tel)
		case ImplMKL:
			aggErr = sparse.SpMMCtx(opts.Ctx, dhPrev, gT, fT, da, opts.Threads, opts.Tel)
		default:
			aggErr = kernels.BasicCtx(opts.Ctx, dhPrev, gT, fT, kernels.NewDenseSource(da), opts.kernelOptions())
		}
		asp.End()
		if aggErr != nil {
			return aggErr
		}
		dh = dhPrev
	}
	st.Timings.Backward += time.Since(start)
	return nil
}

// SGD applies grads to net with the given learning rate.
func SGD(net *Network, grads *Gradients, lr float32) {
	for k, l := range net.Layers {
		gw := grads.W[k]
		for i := 0; i < l.W.Rows; i++ {
			wr, gr := l.W.Row(i), gw.Row(i)
			for j := range wr {
				wr[j] -= lr * gr[j]
			}
		}
		for j := range l.B {
			l.B[j] -= lr * grads.B[k][j]
		}
	}
}

// Adam is a standard Adam optimizer over a network's parameters, provided
// for the example applications that train to convergence.
type Adam struct {
	LR      float32
	Beta1   float32
	Beta2   float32
	Eps     float32
	t       int
	mW, vW  []*tensor.Matrix
	mB, vB  [][]float32
	started bool
}

// NewAdam returns an Adam optimizer with the usual defaults.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update.
func (ad *Adam) Step(net *Network, grads *Gradients) {
	if !ad.started {
		for _, l := range net.Layers {
			ad.mW = append(ad.mW, tensor.NewMatrix(l.W.Rows, l.W.Cols))
			ad.vW = append(ad.vW, tensor.NewMatrix(l.W.Rows, l.W.Cols))
			ad.mB = append(ad.mB, make([]float32, len(l.B)))
			ad.vB = append(ad.vB, make([]float32, len(l.B)))
		}
		ad.started = true
	}
	ad.t++
	c1 := 1 - pow(ad.Beta1, ad.t)
	c2 := 1 - pow(ad.Beta2, ad.t)
	upd := func(p, g, m, v []float32) {
		for j := range p {
			m[j] = ad.Beta1*m[j] + (1-ad.Beta1)*g[j]
			v[j] = ad.Beta2*v[j] + (1-ad.Beta2)*g[j]*g[j]
			mh := m[j] / c1
			vh := v[j] / c2
			p[j] -= ad.LR * mh / (sqrt32(vh) + ad.Eps)
		}
	}
	for k, l := range net.Layers {
		for i := 0; i < l.W.Rows; i++ {
			upd(l.W.Row(i), grads.W[k].Row(i), ad.mW[k].Row(i), ad.vW[k].Row(i))
		}
		upd(l.B, grads.B[k], ad.mB[k], ad.vB[k])
	}
}

func pow(b float32, n int) float32 {
	return float32(math.Pow(float64(b), float64(n)))
}

func sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}
