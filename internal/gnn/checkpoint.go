package gnn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"graphite/internal/tensor"
)

// checkpointMagic identifies the binary checkpoint container.
const checkpointMagic = 0x474E4E31 // "GNN1"

// Save serialises the network's architecture and parameters in a compact
// binary container, so full-batch training runs (which the paper measures
// in minutes per epoch at 111M vertices) can resume.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	hdr := []uint32{checkpointMagic, 1, uint32(n.Kind), uint32(len(n.Layers))}
	for _, h := range hdr {
		if err := binary.Write(bw, le, h); err != nil {
			return fmt.Errorf("gnn: writing checkpoint header: %w", err)
		}
	}
	if err := binary.Write(bw, le, n.Dropout); err != nil {
		return fmt.Errorf("gnn: writing dropout: %w", err)
	}
	for k, l := range n.Layers {
		if err := binary.Write(bw, le, [2]uint32{uint32(l.W.Rows), uint32(l.W.Cols)}); err != nil {
			return fmt.Errorf("gnn: writing layer %d dims: %w", k, err)
		}
		for i := 0; i < l.W.Rows; i++ {
			if err := binary.Write(bw, le, l.W.Row(i)); err != nil {
				return fmt.Errorf("gnn: writing layer %d weights: %w", k, err)
			}
		}
		if err := binary.Write(bw, le, l.B); err != nil {
			return fmt.Errorf("gnn: writing layer %d bias: %w", k, err)
		}
	}
	return bw.Flush()
}

// Load parses a checkpoint written by Save.
func Load(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, le, &hdr[i]); err != nil {
			return nil, fmt.Errorf("gnn: reading checkpoint header: %w", err)
		}
	}
	if hdr[0] != checkpointMagic {
		return nil, fmt.Errorf("gnn: bad checkpoint magic %#x", hdr[0])
	}
	if hdr[1] != 1 {
		return nil, fmt.Errorf("gnn: unsupported checkpoint version %d", hdr[1])
	}
	layerCount := int(hdr[3])
	if layerCount <= 0 || layerCount > 1024 {
		return nil, fmt.Errorf("gnn: implausible layer count %d", layerCount)
	}
	net := &Network{Kind: Kind(hdr[2])}
	if err := binary.Read(br, le, &net.Dropout); err != nil {
		return nil, fmt.Errorf("gnn: reading dropout: %w", err)
	}
	if net.Dropout < 0 || net.Dropout >= 1 {
		return nil, fmt.Errorf("gnn: checkpoint dropout %g out of range", net.Dropout)
	}
	for k := 0; k < layerCount; k++ {
		var dims [2]uint32
		if err := binary.Read(br, le, &dims); err != nil {
			return nil, fmt.Errorf("gnn: reading layer %d dims: %w", k, err)
		}
		rows, cols := int(dims[0]), int(dims[1])
		if rows <= 0 || cols <= 0 || rows > 1<<20 || cols > 1<<20 {
			return nil, fmt.Errorf("gnn: implausible layer %d dims %dx%d", k, rows, cols)
		}
		// Cap the parameter count before allocating: header-claimed sizes
		// must not drive a multi-GB make on a corrupt file.
		if rows*cols > 1<<24 {
			return nil, fmt.Errorf("gnn: layer %d claims %d parameters, above the %d cap", k, rows*cols, 1<<24)
		}
		l := &Layer{W: tensor.NewMatrix(rows, cols), B: make([]float32, cols)}
		for i := 0; i < rows; i++ {
			if err := binary.Read(br, le, l.W.Row(i)); err != nil {
				return nil, fmt.Errorf("gnn: reading layer %d weights: %w", k, err)
			}
		}
		if err := binary.Read(br, le, l.B); err != nil {
			return nil, fmt.Errorf("gnn: reading layer %d bias: %w", k, err)
		}
		net.Layers = append(net.Layers, l)
	}
	return net, nil
}
