package gnn

import (
	"context"
	"fmt"

	"graphite/internal/faultinject"
	"graphite/internal/telemetry"
)

// EpochResult reports one training epoch.
type EpochResult struct {
	Loss     float64
	Accuracy float64
	Timings  Timings
}

// Trainer drives full-batch training: forward, loss, backward, parameter
// update, per epoch. The paper's headline result is that CPUs make this
// full-batch loop practical on large graphs (no sampling, no
// mini-batching) once the memory bottleneck is treated.
//
// Weight updates are atomic per epoch: any error or cancellation inside an
// epoch (kernel failure, ctx cancel, injected fault) returns before the
// optimizer step, so the network always holds the weights of the last
// completed epoch and a checkpoint taken after a failed Train is still
// consistent.
type Trainer struct {
	Net  *Network
	W    *Workload
	Opts RunOptions
	// LR is the SGD learning rate used when Adam is nil.
	LR float32
	// Adam, when set, replaces plain SGD.
	Adam *Adam
	// Inject, when set, arms the "gnn/epoch" fault-injection site, checked
	// after backward and before the optimizer step — the worst place for a
	// real fault, proving the atomic-update contract above.
	Inject *faultinject.Injector

	grads *Gradients
	epoch int
}

// NewTrainer wires a trainer; opts.Train is forced on.
func NewTrainer(net *Network, w *Workload, opts RunOptions, lr float32) (*Trainer, error) {
	if w.Labels == nil {
		return nil, fmt.Errorf("gnn: training workload needs labels")
	}
	opts.Train = true
	return &Trainer{Net: net, W: w, Opts: opts, LR: lr, grads: NewGradients(net)}, nil
}

// CompletedEpochs returns how many epochs have finished through their
// optimizer step, i.e. which epoch's weights the network currently holds.
func (t *Trainer) CompletedEpochs() int { return t.epoch }

// Epoch runs one full-batch training epoch and returns loss/accuracy
// (computed on the pre-update logits) plus the phase timings. With a
// telemetry sink attached the whole epoch runs under an "epoch" span and
// pprof label, with the forward/backward phase spans nested inside.
func (t *Trainer) Epoch() (EpochResult, error) {
	return t.EpochContext(context.Background())
}

// EpochContext is Epoch under a context: cancellation aborts the epoch at
// kernel chunk granularity, and — because the ctx is re-checked after
// backward, before the optimizer step — a cancelled epoch never mutates the
// weights.
func (t *Trainer) EpochContext(ctx context.Context) (res EpochResult, err error) {
	t.Opts.Tel.Do(telemetry.PhaseEpoch, func() { res, err = t.runEpoch(ctx) })
	return res, err
}

func (t *Trainer) runEpoch(ctx context.Context) (EpochResult, error) {
	opts := t.Opts
	opts.Ctx = ctx
	opts.DropoutSeed = int64(t.epoch) * 1_000_003
	st, err := Forward(t.Net, t.W, opts)
	if err != nil {
		return EpochResult{}, err
	}
	loss, dLogits, err := SoftmaxCrossEntropy(st.Logits(), t.W.Labels)
	if err != nil {
		return EpochResult{}, err
	}
	if st.Logits().HasNaN() {
		return EpochResult{}, fmt.Errorf("gnn: logits diverged to NaN/Inf at epoch %d", t.epoch+1)
	}
	acc := Accuracy(st.Logits(), t.W.Labels)
	if err := Backward(t.Net, t.W, st, dLogits, t.grads, opts); err != nil {
		return EpochResult{}, err
	}
	// Last exit before weights mutate: a cancellation or injected fault
	// landing here leaves the network exactly at the previous epoch.
	if cerr := ctxErr(ctx); cerr != nil {
		return EpochResult{}, cerr
	}
	if ferr := t.Inject.Fault("gnn/epoch"); ferr != nil {
		return EpochResult{}, fmt.Errorf("gnn: epoch %d aborted before weight update: %w", t.epoch+1, ferr)
	}
	if t.Adam != nil {
		t.Adam.Step(t.Net, t.grads)
	} else {
		SGD(t.Net, t.grads, t.LR)
	}
	t.epoch++
	return EpochResult{Loss: loss, Accuracy: acc, Timings: st.Timings}, nil
}

// Train runs epochs and returns the per-epoch results.
func (t *Trainer) Train(epochs int) ([]EpochResult, error) {
	return t.TrainContext(context.Background(), epochs)
}

// TrainContext runs up to the given number of epochs under ctx. On
// cancellation it returns the results of the epochs that completed plus
// ctx's error; the network holds the last completed epoch's weights, ready
// to checkpoint (Network.Save).
func (t *Trainer) TrainContext(ctx context.Context, epochs int) ([]EpochResult, error) {
	results := make([]EpochResult, 0, epochs)
	for i := 0; i < epochs; i++ {
		r, err := t.EpochContext(ctx)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// Infer runs an inference-only forward pass and returns the logits state,
// under an "infer" span and pprof label when a telemetry sink is attached.
func Infer(net *Network, w *Workload, opts RunOptions) (*ForwardState, error) {
	return InferContext(context.Background(), net, w, opts)
}

// InferContext is Infer under a context, cancellable at kernel chunk
// granularity.
func InferContext(ctx context.Context, net *Network, w *Workload, opts RunOptions) (st *ForwardState, err error) {
	opts.Train = false
	opts.Ctx = ctx
	opts.Tel.Do(telemetry.PhaseInfer, func() { st, err = Forward(net, w, opts) })
	return st, err
}
