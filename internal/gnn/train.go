package gnn

import (
	"fmt"

	"graphite/internal/telemetry"
)

// EpochResult reports one training epoch.
type EpochResult struct {
	Loss     float64
	Accuracy float64
	Timings  Timings
}

// Trainer drives full-batch training: forward, loss, backward, parameter
// update, per epoch. The paper's headline result is that CPUs make this
// full-batch loop practical on large graphs (no sampling, no
// mini-batching) once the memory bottleneck is treated.
type Trainer struct {
	Net  *Network
	W    *Workload
	Opts RunOptions
	// LR is the SGD learning rate used when Adam is nil.
	LR float32
	// Adam, when set, replaces plain SGD.
	Adam *Adam

	grads *Gradients
	epoch int
}

// NewTrainer wires a trainer; opts.Train is forced on.
func NewTrainer(net *Network, w *Workload, opts RunOptions, lr float32) (*Trainer, error) {
	if w.Labels == nil {
		return nil, fmt.Errorf("gnn: training workload needs labels")
	}
	opts.Train = true
	return &Trainer{Net: net, W: w, Opts: opts, LR: lr, grads: NewGradients(net)}, nil
}

// Epoch runs one full-batch training epoch and returns loss/accuracy
// (computed on the pre-update logits) plus the phase timings. With a
// telemetry sink attached the whole epoch runs under an "epoch" span and
// pprof label, with the forward/backward phase spans nested inside.
func (t *Trainer) Epoch() (res EpochResult, err error) {
	t.Opts.Tel.Do(telemetry.PhaseEpoch, func() { res, err = t.runEpoch() })
	return res, err
}

func (t *Trainer) runEpoch() (EpochResult, error) {
	opts := t.Opts
	opts.DropoutSeed = int64(t.epoch) * 1_000_003
	t.epoch++
	st, err := Forward(t.Net, t.W, opts)
	if err != nil {
		return EpochResult{}, err
	}
	loss, dLogits, err := SoftmaxCrossEntropy(st.Logits(), t.W.Labels)
	if err != nil {
		return EpochResult{}, err
	}
	if st.Logits().HasNaN() {
		return EpochResult{}, fmt.Errorf("gnn: logits diverged to NaN/Inf at epoch %d", t.epoch)
	}
	acc := Accuracy(st.Logits(), t.W.Labels)
	if err := Backward(t.Net, t.W, st, dLogits, t.grads, opts); err != nil {
		return EpochResult{}, err
	}
	if t.Adam != nil {
		t.Adam.Step(t.Net, t.grads)
	} else {
		SGD(t.Net, t.grads, t.LR)
	}
	return EpochResult{Loss: loss, Accuracy: acc, Timings: st.Timings}, nil
}

// Train runs epochs and returns the per-epoch results.
func (t *Trainer) Train(epochs int) ([]EpochResult, error) {
	results := make([]EpochResult, 0, epochs)
	for i := 0; i < epochs; i++ {
		r, err := t.Epoch()
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// Infer runs an inference-only forward pass and returns the logits state,
// under an "infer" span and pprof label when a telemetry sink is attached.
func Infer(net *Network, w *Workload, opts RunOptions) (st *ForwardState, err error) {
	opts.Train = false
	opts.Tel.Do(telemetry.PhaseInfer, func() { st, err = Forward(net, w, opts) })
	return st, err
}
