package gnn

import (
	"fmt"
	"math/rand"
	"time"

	"graphite/internal/graph"
	"graphite/internal/sched"
	"graphite/internal/tensor"
)

// SampledState keeps what the sampled backward pass needs: each layer's
// input (gathered features for blocks[k].SrcIDs), aggregation output, and
// post-activation output.
type SampledState struct {
	Inputs []*tensor.Matrix // layer k input, rows = blocks[k].SrcIDs
	A      []*tensor.Matrix // layer k aggregation, rows = blocks[k].NumDst
	H      []*tensor.Matrix // layer k output, rows = blocks[k].NumDst
}

// Logits returns the final layer's output.
func (s *SampledState) Logits() *tensor.Matrix { return s.H[len(s.H)-1] }

// SampledForwardTrain runs the network over a mini-batch's blocks keeping
// the intermediates for back-propagation. h0 holds the gathered input
// features of blocks[0].SrcIDs.
func SampledForwardTrain(net *Network, blocks []*Block, h0 *tensor.Matrix, threads int) (*SampledState, error) {
	if len(blocks) != net.NumLayers() {
		return nil, fmt.Errorf("gnn: %d blocks for %d layers", len(blocks), net.NumLayers())
	}
	st := &SampledState{}
	h := h0
	for k, layer := range net.Layers {
		blk := blocks[k]
		if h.Rows != len(blk.SrcIDs) {
			return nil, fmt.Errorf("gnn: layer %d input has %d rows, block expects %d", k, h.Rows, len(blk.SrcIDs))
		}
		if h.Cols != layer.In() {
			return nil, fmt.Errorf("gnn: layer %d input width %d, want %d", k, h.Cols, layer.In())
		}
		st.Inputs = append(st.Inputs, h)
		a := tensor.NewMatrix(blk.NumDst, layer.In())
		sched.Dynamic(blk.NumDst, 64, threads, func(s, e int) {
			for i := s; i < e; i++ {
				dst := a.Row(i)
				clear(dst)
				for eIdx := blk.SubG.Ptr[i]; eIdx < blk.SubG.Ptr[i+1]; eIdx++ {
					tensor.AXPY(dst, h.Row(int(blk.SubG.Col[eIdx])), blk.Factors[eIdx])
				}
			}
		})
		st.A = append(st.A, a)
		z := tensor.NewMatrix(blk.NumDst, layer.Out())
		tensor.MatMul(z, a, layer.W, threads)
		if k < net.NumLayers()-1 {
			tensor.AddBiasReLU(z, layer.B, threads)
		} else {
			sched.Dynamic(z.Rows, 256, threads, func(s, e int) {
				tensor.AddBiasRange(z, layer.B, s, e)
			})
		}
		st.H = append(st.H, z)
		h = z
	}
	return st, nil
}

// SampledBackward back-propagates dLogits through the blocks, accumulating
// into grads (so multiple mini-batches can share one gradient buffer when
// accumulation is wanted; call grads' zeroing yourself between steps).
func SampledBackward(net *Network, blocks []*Block, st *SampledState, dLogits *tensor.Matrix, grads *Gradients, threads int) error {
	k := net.NumLayers()
	if len(st.A) != k {
		return fmt.Errorf("gnn: state has %d layers, network %d", len(st.A), k)
	}
	dh := dLogits
	for layerIdx := k - 1; layerIdx >= 0; layerIdx-- {
		layer := net.Layers[layerIdx]
		blk := blocks[layerIdx]
		dz := dh
		if layerIdx < k-1 {
			dz = tensor.NewMatrix(dh.Rows, dh.Cols)
			tensor.ReLUBackward(dz, dh, st.H[layerIdx], threads)
		}
		dW := tensor.NewMatrix(layer.In(), layer.Out())
		tensor.MatMulTransA(dW, st.A[layerIdx], dz, threads)
		for i := 0; i < dW.Rows; i++ {
			tensor.AXPY(grads.W[layerIdx].Row(i), dW.Row(i), 1)
		}
		db := make([]float32, layer.Out())
		tensor.SumRows(db, dz)
		tensor.AXPY(grads.B[layerIdx], db, 1)
		if layerIdx == 0 {
			break
		}
		da := tensor.NewMatrix(dz.Rows, layer.In())
		tensor.MatMulTransB(da, dz, layer.W, threads)
		// Transposed block aggregation: scatter each destination's da into
		// its sources. Serial over destinations — sources overlap across
		// rows so the scatter would race if parallelised naively.
		dhPrev := tensor.NewMatrix(len(blk.SrcIDs), layer.In())
		for i := 0; i < blk.NumDst; i++ {
			src := da.Row(i)
			for eIdx := blk.SubG.Ptr[i]; eIdx < blk.SubG.Ptr[i+1]; eIdx++ {
				tensor.AXPY(dhPrev.Row(int(blk.SubG.Col[eIdx])), src, blk.Factors[eIdx])
			}
		}
		dh = dhPrev
	}
	return nil
}

// SampledTrainer drives mini-batch training with neighbourhood sampling —
// the workflow the paper profiles in §3 to motivate full-batch CPU
// training (Fig. 2 shows sampling dominating it).
type SampledTrainer struct {
	Net       *Network
	G         *graph.CSR
	X         *tensor.Matrix
	Labels    []int32
	BatchSize int
	Fanouts   []int
	LR        float32
	Threads   int

	rng   *rand.Rand
	grads *Gradients
}

// NewSampledTrainer validates and wires a sampled trainer.
func NewSampledTrainer(net *Network, g *graph.CSR, x *tensor.Matrix, labels []int32, batchSize int, fanouts []int, lr float32, threads int, seed int64) (*SampledTrainer, error) {
	if len(fanouts) != net.NumLayers() {
		return nil, fmt.Errorf("gnn: %d fanouts for %d layers", len(fanouts), net.NumLayers())
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("gnn: batch size %d", batchSize)
	}
	if len(labels) != g.NumVertices() || x.Rows != g.NumVertices() {
		return nil, fmt.Errorf("gnn: labels/features do not cover the graph")
	}
	return &SampledTrainer{
		Net: net, G: g, X: x, Labels: labels, BatchSize: batchSize,
		Fanouts: fanouts, LR: lr, Threads: threads,
		rng: rand.New(rand.NewSource(seed)), grads: NewGradients(net),
	}, nil
}

// SampledEpochResult reports one sampled epoch.
type SampledEpochResult struct {
	Loss      float64 // mean over batches
	Accuracy  float64 // over all batch vertices
	Sampling  time.Duration
	GNNLayers time.Duration
	Batches   int
}

// Epoch runs one epoch of sampled mini-batch SGD over all vertices.
func (t *SampledTrainer) Epoch() (SampledEpochResult, error) {
	n := t.G.NumVertices()
	perm := t.rng.Perm(n)
	var out SampledEpochResult
	var lossSum float64
	correct, scored := 0, 0
	for start := 0; start < n; start += t.BatchSize {
		end := start + t.BatchSize
		if end > n {
			end = n
		}
		batch := make([]int32, end-start)
		batchLabels := make([]int32, end-start)
		for i := range batch {
			batch[i] = int32(perm[start+i])
			batchLabels[i] = t.Labels[batch[i]]
		}
		t0 := time.Now()
		blocks, err := SampleBlocks(t.G, t.Net.Kind, batch, t.Fanouts, t.rng)
		if err != nil {
			return out, err
		}
		feats := GatherRows(t.X, blocks[0].SrcIDs, t.Threads)
		t1 := time.Now()
		st, err := SampledForwardTrain(t.Net, blocks, feats, t.Threads)
		if err != nil {
			return out, err
		}
		loss, dLogits, err := SoftmaxCrossEntropy(st.Logits(), batchLabels)
		if err != nil {
			return out, err
		}
		lossSum += loss
		for i, lb := range batchLabels {
			if lb < 0 {
				continue
			}
			scored++
			row := st.Logits().Row(i)
			best := 0
			for j := 1; j < len(row); j++ {
				if row[j] > row[best] {
					best = j
				}
			}
			if int32(best) == lb {
				correct++
			}
		}
		zeroGradients(t.grads)
		if err := SampledBackward(t.Net, blocks, st, dLogits, t.grads, t.Threads); err != nil {
			return out, err
		}
		SGD(t.Net, t.grads, t.LR)
		out.GNNLayers += time.Since(t1)
		out.Sampling += t1.Sub(t0)
		out.Batches++
	}
	if out.Batches > 0 {
		out.Loss = lossSum / float64(out.Batches)
	}
	if scored > 0 {
		out.Accuracy = float64(correct) / float64(scored)
	}
	return out, nil
}

func zeroGradients(g *Gradients) {
	for k := range g.W {
		g.W[k].Zero()
		clear(g.B[k])
	}
}
