package gnn

import (
	"math/rand"
	"testing"

	"graphite/internal/graph"
	"graphite/internal/tensor"
)

func TestSampleBlocksStructure(t *testing.T) {
	g, err := graph.GenerateProfile(graph.Products, 400)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	batch := []int32{3, 50, 99, 120}
	blocks, err := SampleBlocks(g, SAGE, batch, []int{5, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	// Last block's destinations are the batch.
	last := blocks[1]
	if last.NumDst != len(batch) {
		t.Fatalf("last block has %d dsts, want %d", last.NumDst, len(batch))
	}
	for i, v := range batch {
		if last.SrcIDs[i] != v {
			t.Fatalf("dst prefix violated at %d", i)
		}
	}
	// Chain invariant: block k's sources are block k+1's... destinations
	// of block 0 equal sources of block... blocks[0].NumDst == len(blocks[1].SrcIDs).
	if blocks[0].NumDst != len(blocks[1].SrcIDs) {
		t.Fatalf("chain broken: block0 dst %d vs block1 src %d", blocks[0].NumDst, len(blocks[1].SrcIDs))
	}
	// Fanout respected: each dst row has at most fanout+1 edges (self).
	for i := 0; i < last.NumDst; i++ {
		deg := int(last.SubG.Ptr[i+1] - last.SubG.Ptr[i])
		if deg > 3+1 {
			t.Fatalf("dst %d has %d sampled edges, fanout 3", i, deg)
		}
		if deg < 1 {
			t.Fatalf("dst %d lost its self edge", i)
		}
	}
	// Column indices are source-local and in range.
	for _, c := range last.SubG.Col {
		if c < 0 || int(c) >= len(last.SrcIDs) {
			t.Fatalf("column %d out of source range %d", c, len(last.SrcIDs))
		}
	}
}

func TestSampleBlocksNoSamplingTakesFullNeighborhood(t *testing.T) {
	g, err := graph.Star(10)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := SampleBlocks(g, SAGE, []int32{0}, []int{0}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	blk := blocks[0]
	// Hub gathers from itself + all 9 spokes.
	if got := int(blk.SubG.Ptr[1] - blk.SubG.Ptr[0]); got != 10 {
		t.Fatalf("hub row has %d edges, want 10", got)
	}
}

func TestSampleBlocksErrors(t *testing.T) {
	g, _ := graph.Star(5)
	rng := rand.New(rand.NewSource(3))
	if _, err := SampleBlocks(g, SAGE, nil, []int{3}, rng); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := SampleBlocks(g, SAGE, []int32{99}, []int{3}, rng); err == nil {
		t.Fatal("out-of-range batch vertex accepted")
	}
}

func TestSampledForwardMatchesFullBatchWithoutSampling(t *testing.T) {
	// With fanout=0 (full neighbourhoods) and a batch of all vertices, the
	// sampled path must reproduce the full-batch forward (mean aggregator:
	// block factors are exact for SAGE).
	n := 80
	g, err := graph.GenerateProfile(graph.Wikipedia, n)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(n, 12)
	x.FillRandom(rand.New(rand.NewSource(4)), 1)
	net := testNet(t, SAGE, []int{12, 8, 4})
	w, err := NewWorkload(g, SAGE, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Forward(net, w, RunOptions{Impl: ImplBasic, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]int32, n)
	for i := range batch {
		batch[i] = int32(i)
	}
	blocks, err := SampleBlocks(g, SAGE, batch, []int{0, 0}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	feats := GatherRows(x, blocks[0].SrcIDs, 2)
	logits, err := SampledForward(net, blocks, feats, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Row i of logits corresponds to batch[i] == vertex i.
	if d := tensor.MaxAbsDiff(logits, full.Logits()); d > 2e-3 {
		t.Fatalf("sampled(full-neighbourhood) differs from full batch by %g", d)
	}
}

func TestGatherRows(t *testing.T) {
	x := tensor.NewMatrix(5, 3)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, float32(10*i+j))
		}
	}
	out := GatherRows(x, []int32{4, 0, 2}, 2)
	if out.At(0, 1) != 41 || out.At(1, 0) != 0 || out.At(2, 2) != 22 {
		t.Fatalf("gather wrong: %v %v %v", out.Row(0), out.Row(1), out.Row(2))
	}
}

func TestRunSampledEpochBreakdown(t *testing.T) {
	n := 300
	g, err := graph.GenerateProfile(graph.Products, n)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(n, 16)
	x.FillRandom(rand.New(rand.NewSource(6)), 1)
	net := testNet(t, SAGE, []int{16, 8, 4})
	bd, err := RunSampledEpoch(net, g, x, 64, []int{10, 5}, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantBatches := (n + 63) / 64
	if bd.Batches != wantBatches {
		t.Fatalf("batches %d, want %d", bd.Batches, wantBatches)
	}
	if bd.Sampling <= 0 || bd.GNNLayers <= 0 {
		t.Fatalf("timings not recorded: %+v", bd)
	}
	if _, err := RunSampledEpoch(net, g, x, 0, []int{3, 3}, 1, 1, 1); err == nil {
		t.Fatal("zero batch size accepted")
	}
}
