package gnn

import (
	"math/rand"
	"testing"

	"graphite/internal/graph"
	"graphite/internal/tensor"
)

// TestSampledGradientsMatchFullBatch: with fanout=0 (full neighbourhoods)
// and a batch of every vertex, the sampled backward pass must produce the
// same parameter gradients as the full-batch path (SAGE's mean block
// factors are exact).
func TestSampledGradientsMatchFullBatch(t *testing.T) {
	n := 70
	g, err := graph.GenerateProfile(graph.Wikipedia, n)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(n, 10)
	x.FillRandom(rand.New(rand.NewSource(1)), 1)
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i % 3)
	}
	net := testNet(t, SAGE, []int{10, 8, 3})

	// Full-batch gradients.
	w, err := NewWorkload(g, SAGE, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{Impl: ImplBasic, Threads: 1, Train: true}
	stFull, err := Forward(net, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, dFull, err := SoftmaxCrossEntropy(stFull.Logits(), labels)
	if err != nil {
		t.Fatal(err)
	}
	gFull := NewGradients(net)
	if err := Backward(net, w, stFull, dFull, gFull, opts); err != nil {
		t.Fatal(err)
	}

	// Sampled path with full neighbourhoods over one all-vertex batch.
	batch := make([]int32, n)
	for i := range batch {
		batch[i] = int32(i)
	}
	blocks, err := SampleBlocks(g, SAGE, batch, []int{0, 0}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	feats := GatherRows(x, blocks[0].SrcIDs, 1)
	stS, err := SampledForwardTrain(net, blocks, feats, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, dS, err := SoftmaxCrossEntropy(stS.Logits(), labels) // batch order == vertex order
	if err != nil {
		t.Fatal(err)
	}
	gS := NewGradients(net)
	if err := SampledBackward(net, blocks, stS, dS, gS, 1); err != nil {
		t.Fatal(err)
	}

	for k := range net.Layers {
		if d := tensor.MaxAbsDiff(gFull.W[k], gS.W[k]); d > 2e-3 {
			t.Errorf("layer %d dW differs by %g", k, d)
		}
		for j := range gFull.B[k] {
			diff := float64(gFull.B[k][j] - gS.B[k][j])
			if diff < 0 {
				diff = -diff
			}
			if diff > 2e-3 {
				t.Errorf("layer %d dB[%d] differs by %g", k, j, diff)
			}
		}
	}
}

func TestSampledTrainerReducesLoss(t *testing.T) {
	n := 400
	g, err := graph.GenerateProfile(graph.Products, n)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(n, 12)
	x.FillRandom(rand.New(rand.NewSource(3)), 1)
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i % 4)
		x.Row(i)[labels[i]] += 2 // learnable signal
	}
	net := testNet(t, SAGE, []int{12, 16, 4})
	tr, err := NewSampledTrainer(net, g, x, labels, 64, []int{10, 5}, 0.4, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	first, err := tr.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	var last SampledEpochResult
	for e := 0; e < 5; e++ {
		last, err = tr.Epoch()
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Loss >= first.Loss {
		t.Fatalf("sampled training loss did not decrease: %.4f -> %.4f", first.Loss, last.Loss)
	}
	if last.Accuracy <= first.Accuracy {
		t.Fatalf("sampled training accuracy did not improve: %.3f -> %.3f", first.Accuracy, last.Accuracy)
	}
	if first.Sampling <= 0 || first.GNNLayers <= 0 || first.Batches != (n+63)/64 {
		t.Fatalf("epoch bookkeeping wrong: %+v", first)
	}
}

func TestNewSampledTrainerValidation(t *testing.T) {
	g, _ := graph.Star(10)
	x := tensor.NewMatrix(10, 4)
	labels := make([]int32, 10)
	net := testNet(t, SAGE, []int{4, 3, 2})
	if _, err := NewSampledTrainer(net, g, x, labels, 4, []int{3}, 0.1, 1, 1); err == nil {
		t.Fatal("fanout/layer mismatch accepted")
	}
	if _, err := NewSampledTrainer(net, g, x, labels, 0, []int{3, 3}, 0.1, 1, 1); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := NewSampledTrainer(net, g, x, labels[:5], 4, []int{3, 3}, 0.1, 1, 1); err == nil {
		t.Fatal("short labels accepted")
	}
}
