package gnn

import (
	"bytes"
	"testing"
)

// FuzzCheckpointLoad throws arbitrary bytes at the checkpoint parser.
// Malformed input — bad magic, truncated headers, header-claimed sizes
// exceeding the actual payload — must surface as errors, never panics or
// unbounded allocations; a valid checkpoint must round-trip to an
// equivalent network.
func FuzzCheckpointLoad(f *testing.F) {
	// Seed with a real checkpoint so the fuzzer starts past the magic.
	net, err := NewNetwork(Config{Kind: GCN, Dims: []int{5, 4, 3}, Dropout: 0.2, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x4E, 0x4E, 0x47}) // magic alone, little-endian
	// Magic + version but a layer count and dims the payload cannot back.
	f.Add([]byte{
		0x31, 0x4E, 0x4E, 0x47, 1, 0, 0, 0, 0, 0, 0, 0, 0xff, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f, 0xff, 0xff, 0xff, 0x7f,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be a usable network: save it back and reload.
		var out bytes.Buffer
		if err := loaded.Save(&out); err != nil {
			t.Fatalf("accepted checkpoint fails to re-save: %v", err)
		}
		again, err := Load(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-saved checkpoint fails to load: %v", err)
		}
		if again.NumLayers() != loaded.NumLayers() || again.NumParams() != loaded.NumParams() {
			t.Fatalf("round trip changed shape: %d/%d layers, %d/%d params",
				loaded.NumLayers(), again.NumLayers(), loaded.NumParams(), again.NumParams())
		}
	})
}
