// Request-scoped tracing: a lightweight trace context (TraceID/SpanID,
// parent links) carried through context.Context, recording per-request
// span trees on top of the same phase vocabulary as the Sink.
//
// The design splits identity from aggregation: the Sink keeps aggregate
// histograms and the global span ring; a *Trace keeps one request's tree.
// A context either carries trace refs (the request is sampled) or it does
// not, and the unsampled path is a single ctx.Value lookup that fails the
// type assertion — no allocation, no atomic, nothing to disable. Kernel
// packages never see traces at all: annotation stops at phase granularity
// (per layer), which the hotloop-telemetry lint rule enforces.
//
// One batch executes N requests, so batch-level spans must land in every
// member's tree. JoinTraces attaches all member traces to the batch
// context; StartSpan then fans a single timed section into one span per
// trace, each with that trace's own parent link.
package telemetry

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a W3C trace-context trace id: 16 bytes, rendered as 32 lowercase
// hex digits. The all-zero id is invalid and doubles as "no trace".
type TraceID [16]byte

// SpanID is a W3C trace-context span id: 8 bytes, 16 hex digits. The all-zero
// id is invalid as a span identity and doubles as "no parent".
type SpanID [8]byte

// NewTraceID returns a cryptographically random, non-zero trace id.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		if _, err := cryptorand.Read(id[:]); err != nil {
			// crypto/rand never fails on supported platforms; if it somehow
			// does, fall back to a fixed marker rather than panicking in the
			// serving path.
			id = TraceID{0xde, 0xad, 1}
		}
	}
	return id
}

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// MarshalText implements encoding.TextMarshaler (hex form in JSON).
func (id TraceID) MarshalText() ([]byte, error) {
	out := make([]byte, 32)
	hex.Encode(out, id[:])
	return out, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *TraceID) UnmarshalText(b []byte) error {
	parsed, err := ParseTraceID(string(b))
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// ParseTraceID parses a 32-hex-digit trace id. The all-zero id is rejected.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, errors.New("telemetry: trace id must be 32 hex digits")
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, errors.New("telemetry: trace id is not hex")
	}
	if id.IsZero() {
		return TraceID{}, errors.New("telemetry: all-zero trace id is invalid")
	}
	return id, nil
}

// IsZero reports whether the span id is the all-zero "no parent" id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the span id as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// MarshalText implements encoding.TextMarshaler (hex form in JSON).
func (id SpanID) MarshalText() ([]byte, error) {
	out := make([]byte, 16)
	hex.Encode(out, id[:])
	return out, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *SpanID) UnmarshalText(b []byte) error {
	if len(b) != 16 {
		return errors.New("telemetry: span id must be 16 hex digits")
	}
	var parsed SpanID
	if _, err := hex.Decode(parsed[:], b); err != nil {
		return errors.New("telemetry: span id is not hex")
	}
	*id = parsed
	return nil
}

// TraceParent is a parsed W3C traceparent header (version 00):
//
//	00-<32 hex trace id>-<16 hex parent span id>-<2 hex flags>
//
// Sampled mirrors the low flag bit. An upstream caller that sets it is
// asking for the request to be recorded regardless of local sampling.
type TraceParent struct {
	TraceID TraceID
	Parent  SpanID
	Sampled bool
}

// ParseTraceParent parses a traceparent header value. Unknown versions and
// malformed values error; per the W3C spec callers should then start a fresh
// trace rather than fail the request.
func ParseTraceParent(s string) (TraceParent, error) {
	var tp TraceParent
	// version "00" layout: 2+1+32+1+16+1+2 = 55 bytes exactly.
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tp, errors.New("telemetry: malformed traceparent")
	}
	if s[0] != '0' || s[1] != '0' {
		return tp, errors.New("telemetry: unsupported traceparent version")
	}
	tid, err := ParseTraceID(s[3:35])
	if err != nil {
		return tp, err
	}
	if _, err := hex.Decode(tp.Parent[:], []byte(s[36:52])); err != nil {
		return tp, errors.New("telemetry: traceparent span id is not hex")
	}
	if tp.Parent.IsZero() {
		return tp, errors.New("telemetry: all-zero traceparent span id is invalid")
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return tp, errors.New("telemetry: traceparent flags are not hex")
	}
	tp.TraceID = tid
	tp.Sampled = flags[0]&0x01 != 0
	return tp, nil
}

// String renders the header form. A zero Parent renders as all zeros, which
// is invalid to send upstream — callers should only format trace parents
// whose span id is a real span.
func (tp TraceParent) String() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, tp.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, tp.Parent[:])
	if tp.Sampled {
		b = append(b, "-01"...)
	} else {
		b = append(b, "-00"...)
	}
	return string(b)
}

// SpanRecord is one completed span in a trace's tree. Parent is the zero
// SpanID only for the root (or when the root's parent came from a remote
// traceparent, recorded separately in TraceData.RemoteParent).
type SpanRecord struct {
	Name   string        `json:"name"`
	ID     SpanID        `json:"span_id"`
	Parent SpanID        `json:"parent_id"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"duration_ns"`
}

// DefaultTraceSpanCap bounds spans retained per trace. A serve request
// records ~6 pipeline spans plus 3 per layer, so 512 covers models far
// deeper than anything this system runs; beyond it spans are counted as
// dropped rather than growing without bound.
const DefaultTraceSpanCap = 512

// Trace accumulates one request's span tree. All methods are safe for
// concurrent use (the batcher annotates queue spans while the request
// goroutine may be timing out) and nil-receiver safe, so serve code can
// thread an optional *Trace without branching.
type Trace struct {
	id     TraceID
	remote SpanID // parent span from the incoming traceparent, if any
	root   SpanID
	name   string // root span name
	start  time.Time
	nextSp atomic.Uint64

	mu      sync.Mutex
	spans   []SpanRecord
	attrs   map[string]string
	dropped int
	done    bool
	dur     time.Duration
	status  string
	detail  string
}

// NewTrace starts a trace whose root span is named rootName and opens now.
// remote is the parent span id from an incoming traceparent (zero when this
// process originates the trace).
func NewTrace(id TraceID, remote SpanID, rootName string) *Trace {
	t := &Trace{id: id, remote: remote, name: rootName, start: time.Now()}
	t.root = t.newSpanID()
	return t
}

// ID returns the trace id (zero for a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// RootSpan returns the root span's id (zero for a nil trace). It is the
// span id to echo in an outgoing traceparent header.
func (t *Trace) RootSpan() SpanID {
	if t == nil {
		return SpanID{}
	}
	return t.root
}

// Start returns when the root span opened.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// newSpanID mints the next span id in this trace: a counter mixed with the
// trace id so ids differ across traces, never all-zero.
func (t *Trace) newSpanID() SpanID {
	n := t.nextSp.Add(1)
	var id SpanID
	binary.BigEndian.PutUint64(id[:], n^binary.BigEndian.Uint64(t.id[:8]))
	if id.IsZero() {
		id[7] = 0xff
	}
	return id
}

// add appends a completed span, dropping past the cap.
func (t *Trace) add(rec SpanRecord) {
	t.mu.Lock()
	if len(t.spans) < DefaultTraceSpanCap {
		t.spans = append(t.spans, rec)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// AddSpan records a retroactively-timed span as a direct child of the root:
// the batcher uses it for queue-wait and seal intervals, which are only
// known after the fact. Nil-safe.
func (t *Trace) AddSpan(name string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.add(SpanRecord{Name: name, ID: t.newSpanID(), Parent: t.root, Start: start, Dur: dur})
}

// SetAttr stamps a key/value attribute on the trace (e.g. the degradation
// level a batch executed at). Attributes set after Finish are retained on
// the Trace but not visible in already-returned snapshots. Nil-safe; the
// attribute map stays nil until the first SetAttr, so untraced and
// unannotated requests pay nothing.
func (t *Trace) SetAttr(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// Finish closes the root span, marks the trace's outcome (status "" means
// success; anything else is an error class like "queue_full" or
// "deadline_exceeded"), and returns an immutable snapshot. Only the first
// Finish takes effect; later calls return the same data. Spans added after
// Finish are retained on the Trace but not visible in the returned snapshot.
func (t *Trace) Finish(status, detail string) TraceData {
	if t == nil {
		return TraceData{}
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.dur = time.Since(t.start)
		t.status = status
		t.detail = detail
		t.spans = append(t.spans, SpanRecord{
			Name: t.name, ID: t.root, Parent: t.remote, Start: t.start, Dur: t.dur,
		})
	}
	data := TraceData{
		TraceID:      t.id,
		RemoteParent: t.remote,
		Root:         t.root,
		Start:        t.start,
		Duration:     t.dur,
		Status:       t.status,
		Detail:       t.detail,
		Spans:        append([]SpanRecord(nil), t.spans...),
		Dropped:      t.dropped,
	}
	if len(t.attrs) > 0 {
		data.Attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			data.Attrs[k] = v
		}
	}
	t.mu.Unlock()
	return data
}

// TraceData is one finished trace: the immutable export form consumed by the
// flight recorder and the /v1/traces endpoint.
type TraceData struct {
	TraceID      TraceID       `json:"trace_id"`
	RemoteParent SpanID        `json:"remote_parent,omitempty"`
	Root         SpanID        `json:"root_span"`
	Start        time.Time     `json:"start"`
	Duration     time.Duration `json:"duration_ns"`
	Status       string        `json:"status,omitempty"`
	Detail       string        `json:"detail,omitempty"`
	Spans        []SpanRecord  `json:"spans"`
	Dropped      int           `json:"spans_dropped,omitempty"`
	// Attrs are request-level key/value annotations (e.g. degrade_level)
	// stamped with SetAttr; nil when none were set.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Err reports whether the trace finished in an error class.
func (d TraceData) Err() bool { return d.Status != "" }

// MaxSpanDur returns the longest span duration recorded under name (0 when
// the phase never ran). Phases can repeat (one span per layer, or fan-in
// from retries), so the maximum is the per-request answer to "how slow did
// this phase get".
func (d TraceData) MaxSpanDur(name string) time.Duration {
	var max time.Duration
	for _, sp := range d.Spans {
		if sp.Name == name && sp.Dur > max {
			max = sp.Dur
		}
	}
	return max
}

// HasSpan reports whether any span with the given name was recorded.
func (d TraceData) HasSpan(name string) bool {
	for _, sp := range d.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// traceRef is one trace a context is annotating, plus the parent span id
// new spans under that context should link to.
type traceRef struct {
	tr     *Trace
	parent SpanID
}

// traceCtxKey is the context key under which trace refs travel.
type traceCtxKey struct{}

// Attach returns a context whose spans (via StartSpan) record into t,
// parented to t's root. Nil-safe: a nil trace returns ctx unchanged.
func (t *Trace) Attach(ctx context.Context) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, []traceRef{{tr: t, parent: t.root}})
}

// JoinTraces returns a context whose spans fan out into every trace in
// traces (nils skipped), each parented to that trace's root. The batcher
// uses it so one batch-execute section lands in all member requests' trees.
// It replaces any refs already on ctx. With no non-nil traces, ctx is
// returned unchanged (and stays zero-overhead for StartSpan).
func JoinTraces(ctx context.Context, traces []*Trace) context.Context {
	refs := make([]traceRef, 0, len(traces))
	for _, t := range traces {
		if t != nil {
			refs = append(refs, traceRef{tr: t, parent: t.root})
		}
	}
	if len(refs) == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, refs)
}

// Traced reports whether ctx carries at least one trace — the guard for
// call sites that want to skip building annotation data entirely.
func Traced(ctx context.Context) bool {
	refs, _ := ctx.Value(traceCtxKey{}).([]traceRef)
	return len(refs) > 0
}

// ContextTraceID returns the first trace id on ctx (zero when untraced).
func ContextTraceID(ctx context.Context) TraceID {
	refs, _ := ctx.Value(traceCtxKey{}).([]traceRef)
	if len(refs) == 0 {
		return TraceID{}
	}
	return refs[0].tr.ID()
}

// spanEntry is one trace's view of an in-flight TraceSpan.
type spanEntry struct {
	tr     *Trace
	id     SpanID
	parent SpanID
}

// TraceSpan is an in-flight trace annotation returned by StartSpan. The
// zero value is a no-op handle: End on it does nothing, so callers never
// branch on whether the request is sampled.
type TraceSpan struct {
	name    string
	start   time.Time
	entries []spanEntry
}

// StartSpan opens a span named name in every trace ctx carries and returns
// a derived context under which child spans parent to it. On an untraced
// context this is the zero-overhead path: one Value lookup, no allocation,
// ctx returned unchanged, and the returned handle's End is a no-op —
// asserted by an AllocsPerRun test.
func StartSpan(ctx context.Context, name string) (context.Context, TraceSpan) {
	refs, _ := ctx.Value(traceCtxKey{}).([]traceRef)
	if len(refs) == 0 {
		return ctx, TraceSpan{}
	}
	ts := TraceSpan{name: name, start: time.Now(), entries: make([]spanEntry, len(refs))}
	next := make([]traceRef, len(refs))
	for i, r := range refs {
		id := r.tr.newSpanID()
		ts.entries[i] = spanEntry{tr: r.tr, id: id, parent: r.parent}
		next[i] = traceRef{tr: r.tr, parent: id}
	}
	return context.WithValue(ctx, traceCtxKey{}, next), ts
}

// End closes the span, recording it (with one duration measurement shared
// across all fanned-out traces). Safe on the zero handle.
func (ts TraceSpan) End() {
	if len(ts.entries) == 0 {
		return
	}
	dur := time.Since(ts.start)
	for _, e := range ts.entries {
		e.tr.add(SpanRecord{Name: ts.name, ID: e.id, Parent: e.parent, Start: ts.start, Dur: dur})
	}
}
