package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is a point-in-time copy of the sink's counters and per-worker
// scheduler accounting, suitable for programmatic inspection (the metrics
// text form is WriteMetrics).
type Snapshot struct {
	// Counters maps metrics keys (Counter.Name) to values. Every key is
	// present, including zeros, so consumers see a stable key set.
	Counters map[string]int64
	// Workers holds accounting for workers that claimed at least one
	// chunk, ordered by worker id.
	Workers []WorkerStats
	// Latencies summarizes the per-phase latency histograms, ordered by
	// phase name. Unlike the span ring these never drop samples.
	Latencies []PhaseLatency
	// Inflight reports spans open at snapshot time (count and elapsed time
	// per phase, ordered by phase name), so a live scrape in the middle of
	// a long phase does not read as idle.
	Inflight []PhaseInflight
	// Spans is the total number of spans recorded.
	Spans int64
	// SpansDropped counts spans evicted from the ring buffer: non-zero
	// means PhaseTotals/WriteTrace cover a truncated window.
	SpansDropped int64
}

// PhaseLatency is one phase's latency-histogram summary.
type PhaseLatency struct {
	Phase string
	Count int64
	Sum   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// WorkerStats is one scheduler worker's accounting.
type WorkerStats struct {
	Worker int
	Chunks int64
	Rows   int64
	// BusySeconds is wall time spent inside claimed chunks.
	BusySeconds float64
}

// RowImbalance returns max/mean of per-worker row counts (1 = perfectly
// balanced; 0 if fewer than two workers reported).
func (s Snapshot) RowImbalance() float64 {
	return imbalance(s.Workers, func(w WorkerStats) float64 { return float64(w.Rows) })
}

// BusyImbalance returns max/mean of per-worker busy time. Under power-law
// degree skew this is the number the paper's dynamic scheduler improves:
// static partitioning leaves some workers busy far longer than the mean.
func (s Snapshot) BusyImbalance() float64 {
	return imbalance(s.Workers, func(w WorkerStats) float64 { return w.BusySeconds })
}

func imbalance(ws []WorkerStats, f func(WorkerStats) float64) float64 {
	if len(ws) < 2 {
		return 0
	}
	var sum, max float64
	for _, w := range ws {
		v := f(w)
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(ws)))
}

// Snapshot captures the current counters and worker stats. Safe on a nil
// sink: the result then has the full key set with all-zero values.
func (s *Sink) Snapshot() Snapshot {
	snap := Snapshot{Counters: make(map[string]int64, numCounters)}
	for c := Counter(0); c < numCounters; c++ {
		snap.Counters[c.Name()] = s.Counter(c)
	}
	if s == nil {
		return snap
	}
	for i := range s.workers {
		w := &s.workers[i]
		chunks := w.chunks.Load()
		if chunks == 0 && w.rows.Load() == 0 {
			continue
		}
		snap.Workers = append(snap.Workers, WorkerStats{
			Worker:      i,
			Chunks:      chunks,
			Rows:        w.rows.Load(),
			BusySeconds: float64(w.busyNS.Load()) / 1e9,
		})
	}
	for name, h := range s.hists.snapshot() {
		if h.Count() == 0 {
			continue
		}
		snap.Latencies = append(snap.Latencies, PhaseLatency{
			Phase: name,
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		})
	}
	sort.Slice(snap.Latencies, func(i, j int) bool {
		return snap.Latencies[i].Phase < snap.Latencies[j].Phase
	})
	snap.Inflight = s.Inflight()
	s.mu.Lock()
	snap.Spans = s.written
	snap.SpansDropped = s.dropped
	s.mu.Unlock()
	return snap
}

// WriteMetrics writes the expvar/Prometheus-style plain-text snapshot:
// one "name value" line per counter (stable, sorted key set), the
// spans-dropped gauge, per-phase latency quantiles from the histograms,
// and per-worker scheduler series with a {worker="N"} label.
func (s *Sink) WriteMetrics(w io.Writer) error {
	snap := s.Snapshot()
	keys := make([]string, 0, len(snap.Counters))
	for k := range snap.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, snap.Counters[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "graphite_spans_dropped_total %d\n", snap.SpansDropped); err != nil {
		return err
	}
	for _, pl := range snap.Latencies {
		if _, err := fmt.Fprintf(w,
			"graphite_span_latency_ns{phase=%q,quantile=\"0.5\"} %d\ngraphite_span_latency_ns{phase=%q,quantile=\"0.95\"} %d\ngraphite_span_latency_ns{phase=%q,quantile=\"0.99\"} %d\ngraphite_span_latency_count{phase=%q} %d\n",
			pl.Phase, int64(pl.P50), pl.Phase, int64(pl.P95), pl.Phase, int64(pl.P99), pl.Phase, pl.Count); err != nil {
			return err
		}
	}
	for _, ws := range snap.Workers {
		if _, err := fmt.Fprintf(w,
			"graphite_sched_worker_chunks_total{worker=\"%d\"} %d\ngraphite_sched_worker_rows_total{worker=\"%d\"} %d\ngraphite_sched_worker_busy_seconds{worker=\"%d\"} %g\n",
			ws.Worker, ws.Chunks, ws.Worker, ws.Rows, ws.Worker, ws.BusySeconds); err != nil {
			return err
		}
	}
	return nil
}

// traceEvent is one Chrome trace_event entry. Complete events ("ph":"X")
// carry their own duration, so nesting is inferred from containment —
// exactly what chrome://tracing and Perfetto render as stacked slices.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int32             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the JSON object form of the trace_event format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports the recorded spans as Chrome trace_event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev. Counter totals ride along
// as args on a process metadata event.
func (s *Sink) WriteTrace(w io.Writer) error {
	events := []spanEvent{}
	if s != nil {
		events = s.snapshotEvents()
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].startNS < events[j].startNS })
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: make([]traceEvent, 0, len(events)+1)}
	meta := traceEvent{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]string{"name": "graphite"}}
	if s != nil {
		snap := s.Snapshot()
		for k, v := range snap.Counters {
			meta.Args[k] = fmt.Sprint(v)
		}
	}
	tf.TraceEvents = append(tf.TraceEvents, meta)
	for _, ev := range events {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: ev.name,
			Cat:  "phase",
			Ph:   "X",
			Ts:   float64(ev.startNS) / 1e3,
			Dur:  float64(ev.durNS) / 1e3,
			Pid:  1,
			Tid:  ev.tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
