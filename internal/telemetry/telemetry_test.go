package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSinkIsSafe exercises every method on a nil *Sink: the disable
// contract kernels rely on.
func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	s.SetEnabled(true)
	s.Reset()
	s.Add(CtrEdgesAggregated, 5)
	s.Inc(CtrSchedChunks)
	s.WorkerClaim(0, 1, 10, time.Millisecond)
	sp := s.Begin(PhaseAggregate)
	sp.End()
	ran := false
	s.Do(PhaseUpdate, func() { ran = true })
	if !ran {
		t.Fatal("Do did not run f on nil sink")
	}
	if got := s.Counter(CtrEdgesAggregated); got != 0 {
		t.Fatalf("nil sink counter = %d, want 0", got)
	}
	if got := s.SpanCount(); got != 0 {
		t.Fatalf("nil sink span count = %d, want 0", got)
	}
	snap := s.Snapshot()
	if len(snap.Counters) != int(numCounters) {
		t.Fatalf("nil snapshot has %d counter keys, want %d", len(snap.Counters), numCounters)
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatalf("nil WriteMetrics: %v", err)
	}
	buf.Reset()
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatalf("nil WriteTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil WriteTrace produced invalid JSON")
	}
}

// TestSnapshotStableKeySet verifies the metrics key set is complete and
// identical whether counters fired or not — consumers can rely on a stable
// schema.
func TestSnapshotStableKeySet(t *testing.T) {
	empty := New(0).Snapshot()
	busy := New(0)
	for c := Counter(0); c < numCounters; c++ {
		busy.Add(c, int64(c)+1)
	}
	full := busy.Snapshot()

	keysOf := func(s Snapshot) []string {
		ks := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	ek, fk := keysOf(empty), keysOf(full)
	if len(ek) != int(numCounters) {
		t.Fatalf("empty snapshot has %d keys, want %d", len(ek), numCounters)
	}
	for i := range ek {
		if ek[i] != fk[i] {
			t.Fatalf("key set differs: %q vs %q", ek[i], fk[i])
		}
		if !strings.HasPrefix(ek[i], "graphite_") {
			t.Fatalf("key %q missing graphite_ prefix", ek[i])
		}
	}
	for _, k := range ek {
		if empty.Counters[k] != 0 {
			t.Fatalf("empty snapshot %s = %d, want 0", k, empty.Counters[k])
		}
	}
}

// TestCountersMonotonic verifies concurrent adds accumulate without loss and
// never decrease across snapshots.
func TestCountersMonotonic(t *testing.T) {
	s := New(0)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	prev := int64(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			v := s.Counter(CtrEdgesAggregated)
			if v < prev {
				t.Errorf("counter went backwards: %d -> %d", prev, v)
				return
			}
			prev = v
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Add(CtrEdgesAggregated, 3)
			}
		}()
	}
	wg.Wait()
	<-done
	if got, want := s.Counter(CtrEdgesAggregated), int64(workers*perWorker*3); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

// TestWriteMetricsGolden locks the text format: sorted counter lines first,
// then per-worker series with {worker="N"} labels.
func TestWriteMetricsGolden(t *testing.T) {
	s := New(0)
	s.Add(CtrVerticesAggregated, 10)
	s.Add(CtrEdgesAggregated, 55)
	s.Add(CtrGEMMFLOPs, 1<<20)
	s.WorkerClaim(0, 2, 8, 2*time.Second)
	s.WorkerClaim(3, 1, 2, 500*time.Millisecond)

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	want := `graphite_dma_bytes_moved_total 0
graphite_dma_descriptors_total 0
graphite_edges_aggregated_total 55
graphite_gemm_flops_total 1048576
graphite_panics_recovered_total 0
graphite_rows_compressed_total 0
graphite_rows_decompressed_total 0
graphite_sched_chunks_total 0
graphite_sched_rows_total 0
graphite_serve_batch_retries_total 0
graphite_serve_batches_total 0
graphite_serve_breaker_trips_total 0
graphite_serve_degraded_total 0
graphite_serve_expired_total 0
graphite_serve_failed_total 0
graphite_serve_rejected_total 0
graphite_serve_requests_total 0
graphite_serve_shed_total 0
graphite_serve_snapshot_swaps_total 0
graphite_serve_vertices_total 0
graphite_vertices_aggregated_total 10
graphite_spans_dropped_total 0
graphite_sched_worker_chunks_total{worker="0"} 2
graphite_sched_worker_rows_total{worker="0"} 8
graphite_sched_worker_busy_seconds{worker="0"} 2
graphite_sched_worker_chunks_total{worker="3"} 1
graphite_sched_worker_rows_total{worker="3"} 2
graphite_sched_worker_busy_seconds{worker="3"} 0.5
`
	if got := buf.String(); got != want {
		t.Fatalf("metrics snapshot mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// chromeEvent mirrors the exported trace_event fields for round-tripping.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int32             `json:"tid"`
	Args map[string]string `json:"args"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// TestWriteTraceRoundTrip records a nested span structure, exports it, parses
// the JSON back, and checks the Chrome trace_event invariants: valid JSON,
// "X" phase events with microsecond timestamps, and every child span nested
// inside its parent's [ts, ts+dur] window.
func TestWriteTraceRoundTrip(t *testing.T) {
	s := New(0)
	outer := s.Begin(PhaseForward)
	for i := 0; i < 2; i++ {
		layer := s.Begin(LayerName(i))
		agg := s.Begin(PhaseAggregate)
		time.Sleep(time.Millisecond)
		agg.End()
		upd := s.Begin(PhaseUpdate)
		time.Sleep(time.Millisecond)
		upd.End()
		layer.End()
	}
	outer.End()

	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace is not valid JSON")
	}
	var tf chromeFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", tf.DisplayTimeUnit)
	}

	var meta *chromeEvent
	spans := map[string]chromeEvent{}
	for i := range tf.TraceEvents {
		ev := tf.TraceEvents[i]
		switch ev.Ph {
		case "M":
			meta = &tf.TraceEvents[i]
		case "X":
			if ev.Cat != "phase" {
				t.Fatalf("span %q cat = %q, want phase", ev.Name, ev.Cat)
			}
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("span %q has negative ts/dur: %v/%v", ev.Name, ev.Ts, ev.Dur)
			}
			spans[ev.Name] = ev
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta == nil {
		t.Fatal("missing process metadata event")
	}
	if meta.Args["name"] != "graphite" {
		t.Fatalf("process name = %q, want graphite", meta.Args["name"])
	}
	wantSpans := []string{PhaseForward, "layer0", "layer1", PhaseAggregate, PhaseUpdate}
	for _, name := range wantSpans {
		if _, ok := spans[name]; !ok {
			t.Fatalf("missing span %q (have %v)", name, spans)
		}
	}

	within := func(child, parent chromeEvent) {
		t.Helper()
		// Allow a microsecond of float slack at the edges.
		const eps = 1.0
		if child.Ts+eps < parent.Ts || child.Ts+child.Dur > parent.Ts+parent.Dur+eps {
			t.Fatalf("span %q [%v, %v] not within parent %q [%v, %v]",
				child.Name, child.Ts, child.Ts+child.Dur,
				parent.Name, parent.Ts, parent.Ts+parent.Dur)
		}
	}
	within(spans["layer0"], spans[PhaseForward])
	within(spans["layer1"], spans[PhaseForward])
	// The map keeps the later (layer1) aggregate/update spans; both nest
	// inside layer1.
	within(spans[PhaseAggregate], spans["layer1"])
	within(spans[PhaseUpdate], spans["layer1"])

	// Events must be sorted by start time for the viewers' benefit.
	var last float64 = -1
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Ts < last {
			t.Fatalf("events not sorted by ts: %v after %v", ev.Ts, last)
		}
		last = ev.Ts
	}
}

// TestRingOverwritesOldest fills the span ring past capacity and checks that
// the oldest events are evicted while the total written count keeps growing.
func TestRingOverwritesOldest(t *testing.T) {
	const capacity = 8
	s := New(capacity)
	for i := 0; i < capacity+3; i++ {
		sp := s.Begin(fmt.Sprintf("span%d", i))
		sp.End()
	}
	if got := s.SpanCount(); got != capacity+3 {
		t.Fatalf("span count = %d, want %d", got, capacity+3)
	}
	events := s.snapshotEvents()
	if len(events) != capacity {
		t.Fatalf("ring holds %d events, want %d", len(events), capacity)
	}
	if events[0].name != "span3" {
		t.Fatalf("oldest surviving span = %q, want span3", events[0].name)
	}
	if events[len(events)-1].name != fmt.Sprintf("span%d", capacity+2) {
		t.Fatalf("newest span = %q", events[len(events)-1].name)
	}
}

// TestSetEnabledPausesRecording checks SetEnabled(false) stops both counters
// and spans without losing prior state.
func TestSetEnabledPausesRecording(t *testing.T) {
	s := New(0)
	s.Add(CtrSchedRows, 7)
	s.SetEnabled(false)
	s.Add(CtrSchedRows, 100)
	sp := s.Begin(PhaseAggregate)
	sp.End()
	if got := s.Counter(CtrSchedRows); got != 7 {
		t.Fatalf("counter = %d after disable, want 7", got)
	}
	if got := s.SpanCount(); got != 0 {
		t.Fatalf("span recorded while disabled: %d", got)
	}
	s.SetEnabled(true)
	s.Add(CtrSchedRows, 1)
	if got := s.Counter(CtrSchedRows); got != 8 {
		t.Fatalf("counter = %d after re-enable, want 8", got)
	}
}

// TestPhaseTotals checks span durations accumulate per phase name.
func TestPhaseTotals(t *testing.T) {
	s := New(0)
	for i := 0; i < 3; i++ {
		sp := s.Begin(PhaseAggregate)
		time.Sleep(time.Millisecond)
		sp.End()
	}
	totals := s.PhaseTotals()
	if d := totals[PhaseAggregate]; d < 3*time.Millisecond {
		t.Fatalf("aggregate total %v, want >= 3ms", d)
	}
	if _, ok := totals[PhaseUpdate]; ok {
		t.Fatal("unexpected update phase in totals")
	}
}

// TestResetClearsEverything verifies Reset returns the sink to a blank,
// still-enabled state.
func TestResetClearsEverything(t *testing.T) {
	s := New(0)
	s.Add(CtrGEMMFLOPs, 42)
	s.WorkerClaim(1, 1, 5, time.Second)
	sp := s.Begin(PhaseUpdate)
	sp.End()
	s.Reset()
	snap := s.Snapshot()
	for k, v := range snap.Counters {
		if v != 0 {
			t.Fatalf("counter %s = %d after reset", k, v)
		}
	}
	if len(snap.Workers) != 0 {
		t.Fatalf("workers = %v after reset", snap.Workers)
	}
	if snap.Spans != 0 {
		t.Fatalf("spans = %d after reset", snap.Spans)
	}
	if !s.Enabled() {
		t.Fatal("sink disabled after reset")
	}
}

// TestResetClearsHistogramsAndDropped is the regression test for the live
// observability plane: a scrape taken after Reset must never report stale
// latency quantiles or a stale spans-dropped count from before the reset.
func TestResetClearsHistogramsAndDropped(t *testing.T) {
	const capacity = 4
	s := New(capacity)
	for i := 0; i < capacity+5; i++ {
		sp := s.Begin(PhaseAggregate)
		sp.End()
	}
	s.Observe(PhaseUpdate, 3*time.Millisecond)
	if s.SpansDropped() == 0 {
		t.Fatal("setup: expected dropped spans before reset")
	}
	if s.Histogram(PhaseAggregate).Count() == 0 || s.Histogram(PhaseUpdate).Count() == 0 {
		t.Fatal("setup: expected histogram observations before reset")
	}

	s.Reset()

	if got := s.SpansDropped(); got != 0 {
		t.Fatalf("spans dropped = %d after reset, want 0", got)
	}
	for name, h := range s.Histograms() {
		if h.Count() != 0 || h.Sum() != 0 {
			t.Fatalf("histogram %q count=%d sum=%v after reset, want zeros", name, h.Count(), h.Sum())
		}
		if q := h.Quantile(0.99); q != 0 {
			t.Fatalf("histogram %q p99 = %v after reset, want 0", name, q)
		}
	}
	snap := s.Snapshot()
	if len(snap.Latencies) != 0 {
		t.Fatalf("snapshot latencies = %+v after reset, want none", snap.Latencies)
	}
	if snap.SpansDropped != 0 {
		t.Fatalf("snapshot spans dropped = %d after reset, want 0", snap.SpansDropped)
	}
	// The sink must still record after Reset, including re-registered phases.
	sp := s.Begin(PhaseAggregate)
	sp.End()
	if got := s.Histogram(PhaseAggregate).Count(); got != 1 {
		t.Fatalf("histogram count = %d after post-reset span, want 1", got)
	}
}

// TestInflightSpansVisible checks open spans surface in PhaseTotals,
// Inflight, and Snapshot while they run, and retire once ended.
func TestInflightSpansVisible(t *testing.T) {
	s := New(0)
	sp := s.Begin(PhaseEpoch)
	time.Sleep(2 * time.Millisecond)

	totals := s.PhaseTotals()
	if totals[PhaseEpoch] < time.Millisecond {
		t.Fatalf("open span invisible in PhaseTotals: %v", totals[PhaseEpoch])
	}
	inflight := s.Inflight()
	if len(inflight) != 1 || inflight[0].Phase != PhaseEpoch || inflight[0].Count != 1 {
		t.Fatalf("inflight = %+v, want one open %s span", inflight, PhaseEpoch)
	}
	if inflight[0].Elapsed < time.Millisecond {
		t.Fatalf("inflight elapsed = %v, want >= 1ms", inflight[0].Elapsed)
	}
	snap := s.Snapshot()
	if len(snap.Inflight) != 1 || snap.Inflight[0].Phase != PhaseEpoch {
		t.Fatalf("snapshot inflight = %+v", snap.Inflight)
	}

	sp.End()
	if got := s.Inflight(); len(got) != 0 {
		t.Fatalf("inflight after End = %+v, want empty", got)
	}
	// The completed span now counts once (not double) in PhaseTotals.
	done := s.PhaseTotals()[PhaseEpoch]
	if done < 2*time.Millisecond || done > time.Second {
		t.Fatalf("completed span total = %v", done)
	}
	if got := s.SpanCount(); got != 1 {
		t.Fatalf("span count = %d, want 1", got)
	}
}

// TestInflightSurvivesReset pins the Reset contract for open spans: they
// stay visible as in-flight (live state), and their End still records into
// the post-reset histograms.
func TestInflightSurvivesReset(t *testing.T) {
	s := New(0)
	sp := s.Begin(PhaseForward)
	s.Reset()
	if got := s.Inflight(); len(got) != 1 || got[0].Phase != PhaseForward {
		t.Fatalf("inflight after reset = %+v, want the open span", got)
	}
	sp.End()
	if got := s.Histogram(PhaseForward).Count(); got != 1 {
		t.Fatalf("post-reset End recorded %d observations, want 1", got)
	}
	if got := s.Inflight(); len(got) != 0 {
		t.Fatalf("inflight after End = %+v, want empty", got)
	}
}

// TestHistogramBuckets checks the exported bucket view: complete coverage,
// cumulative count equals Count, and CountAbove's lower-bound semantics.
func TestHistogramBucketExport(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(100 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)

	bs := h.Buckets()
	if len(bs) != histBuckets {
		t.Fatalf("bucket count = %d, want %d", len(bs), histBuckets)
	}
	var total int64
	lastUpper := time.Duration(-1)
	for _, b := range bs {
		if b.Upper <= lastUpper {
			t.Fatalf("bucket bounds not ascending: %v after %v", b.Upper, lastUpper)
		}
		lastUpper = b.Upper
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket sum = %d, Count = %d", total, h.Count())
	}
	if got := h.CountAbove(time.Millisecond); got != 2 {
		t.Fatalf("CountAbove(1ms) = %d, want 2", got)
	}
	if got := h.CountAbove(0); got != 4 {
		t.Fatalf("CountAbove(0) = %d, want 4 (zero-duration bucket excluded)", got)
	}
	if got := h.CountAbove(time.Hour * 10); got != 0 {
		t.Fatalf("CountAbove(10h) = %d, want 0", got)
	}
	var nilH *Histogram
	if nilH.Buckets() != nil || nilH.CountAbove(0) != 0 {
		t.Fatal("nil histogram bucket accessors not nil-safe")
	}
}

// TestWorkerClaimClamping checks out-of-range worker ids fold into the valid
// slot range instead of panicking.
func TestWorkerClaimClamping(t *testing.T) {
	s := New(0)
	s.WorkerClaim(-5, 1, 1, 0)
	s.WorkerClaim(MaxWorkers+10, 1, 1, 0)
	snap := s.Snapshot()
	if len(snap.Workers) != 2 {
		t.Fatalf("got %d worker slots, want 2 (clamped to 0 and MaxWorkers-1)", len(snap.Workers))
	}
	if snap.Workers[0].Worker != 0 || snap.Workers[1].Worker != MaxWorkers-1 {
		t.Fatalf("clamped workers = %d, %d", snap.Workers[0].Worker, snap.Workers[1].Worker)
	}
}
