package telemetry

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func requireNoRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race (CI has a dedicated step)")
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	const hdr = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tp, err := ParseTraceParent(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if got := tp.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s", got)
	}
	if got := tp.Parent.String(); got != "00f067aa0ba902b7" {
		t.Fatalf("parent span id = %s", got)
	}
	if !tp.Sampled {
		t.Fatal("sampled flag not parsed")
	}
	if got := tp.String(); got != hdr {
		t.Fatalf("round trip: %s != %s", got, hdr)
	}
	unsampled := tp
	unsampled.Sampled = false
	if got := unsampled.String(); got[len(got)-2:] != "00" {
		t.Fatalf("unsampled flags = %s", got)
	}
}

func TestTraceParentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e473X-00f067aa0ba902b7-01", // non-hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad separator
	}
	for _, s := range bad {
		if _, err := ParseTraceParent(s); err == nil {
			t.Errorf("ParseTraceParent(%q) accepted malformed input", s)
		}
	}
}

func TestNewTraceIDUniqueNonZero(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatal("duplicate trace id")
		}
		seen[id] = true
	}
}

func TestTraceSpanTree(t *testing.T) {
	tid := NewTraceID()
	tr := NewTrace(tid, SpanID{}, PhaseServeE2E)
	ctx := tr.Attach(context.Background())

	ctx2, outer := StartSpan(ctx, "serve-batch")
	_, inner := StartSpan(ctx2, "layer0")
	inner.End()
	outer.End()
	tr.AddSpan("serve-queue", tr.Start(), 5*time.Millisecond)

	d := tr.Finish("", "")
	if d.TraceID != tid {
		t.Fatalf("trace id mismatch")
	}
	if len(d.Spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(d.Spans), d.Spans)
	}
	byName := map[string]SpanRecord{}
	for _, sp := range d.Spans {
		byName[sp.Name] = sp
	}
	root := byName[PhaseServeE2E]
	if root.ID != d.Root || !root.Parent.IsZero() {
		t.Fatalf("bad root span %+v", root)
	}
	if byName["serve-batch"].Parent != root.ID {
		t.Fatalf("serve-batch not parented to root")
	}
	if byName["layer0"].Parent != byName["serve-batch"].ID {
		t.Fatalf("layer0 not parented to serve-batch")
	}
	if byName["serve-queue"].Parent != root.ID {
		t.Fatalf("retro span not parented to root")
	}
	if got := d.MaxSpanDur("serve-queue"); got != 5*time.Millisecond {
		t.Fatalf("MaxSpanDur = %v", got)
	}
	if !d.HasSpan("layer0") || d.HasSpan("layer9") {
		t.Fatal("HasSpan wrong")
	}

	// JSON export renders ids as hex strings.
	js, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(js, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.TraceID != tid.String() {
		t.Fatalf("JSON trace_id = %q", decoded.TraceID)
	}
}

func TestTraceFanOutAcrossBatchMembers(t *testing.T) {
	a := NewTrace(NewTraceID(), SpanID{}, PhaseServeE2E)
	b := NewTrace(NewTraceID(), SpanID{}, PhaseServeE2E)
	ctx := JoinTraces(context.Background(), []*Trace{a, nil, b})
	ctx, batch := StartSpan(ctx, "serve-batch")
	_, layer := StartSpan(ctx, "layer0")
	layer.End()
	batch.End()

	for _, tr := range []*Trace{a, b} {
		d := tr.Finish("", "")
		if !d.HasSpan("serve-batch") || !d.HasSpan("layer0") {
			t.Fatalf("trace %s missing fanned-out spans: %+v", d.TraceID, d.Spans)
		}
		byName := map[string]SpanRecord{}
		for _, sp := range d.Spans {
			byName[sp.Name] = sp
		}
		if byName["serve-batch"].Parent != tr.RootSpan() {
			t.Fatalf("batch span parent not this trace's root")
		}
		if byName["layer0"].Parent != byName["serve-batch"].ID {
			t.Fatalf("layer span not parented to this trace's batch span")
		}
	}
	// Span ids must not collide across the two traces' trees.
	da, db := a.Finish("", ""), b.Finish("", "")
	ids := map[SpanID]bool{}
	for _, sp := range da.Spans {
		ids[sp.ID] = true
	}
	for _, sp := range db.Spans {
		if ids[sp.ID] {
			t.Fatalf("span id %s reused across traces", sp.ID)
		}
	}
}

func TestTraceFinishIdempotentAndErrorStatus(t *testing.T) {
	tr := NewTrace(NewTraceID(), SpanID{}, PhaseServeE2E)
	d1 := tr.Finish("queue_full", "admission queue at capacity")
	d2 := tr.Finish("", "")
	if !d1.Err() || d1.Status != "queue_full" {
		t.Fatalf("status not recorded: %+v", d1)
	}
	if d2.Status != "queue_full" || d2.Duration != d1.Duration {
		t.Fatalf("second Finish overwrote the first: %+v", d2)
	}
	// Spans added after Finish must not mutate the returned snapshot.
	n := len(d1.Spans)
	tr.AddSpan("late", time.Now(), time.Millisecond)
	if len(d1.Spans) != n {
		t.Fatal("snapshot aliased live span slice")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace(NewTraceID(), SpanID{}, "root")
	for i := 0; i < DefaultTraceSpanCap+10; i++ {
		tr.AddSpan("s", time.Now(), time.Microsecond)
	}
	d := tr.Finish("", "")
	if d.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", d.Dropped)
	}
	if len(d.Spans) != DefaultTraceSpanCap+1 {
		// The cap bounds child spans; the root span is always retained so a
		// flooded trace still reports its end-to-end duration.
		t.Fatalf("retained %d spans", len(d.Spans))
	}
}

// TestUnsampledStartSpanZeroAlloc pins the zero-overhead guarantee: on a
// context with no trace attached, StartSpan and End must not allocate.
func TestUnsampledStartSpanZeroAlloc(t *testing.T) {
	requireNoRace(t)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := StartSpan(ctx, PhaseServeBatch)
		if c2 != ctx {
			t.Fatal("untraced ctx must be returned unchanged")
		}
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("unsampled StartSpan allocates %.1f per run, want 0", allocs)
	}
}

func TestExemplarStorage(t *testing.T) {
	s := New(0)
	tid := NewTraceID()
	s.ObserveTraced(PhaseServeE2E, 3*time.Millisecond, tid)
	s.Observe(PhaseServeE2E, 3*time.Millisecond) // untraced: must not clobber
	h := s.Histogram(PhaseServeE2E)
	if h == nil {
		t.Fatal("no histogram")
	}
	exs := h.BucketExemplars()
	var found *Exemplar
	for _, e := range exs {
		if e != nil {
			if found != nil {
				t.Fatal("exemplar in more than one bucket")
			}
			found = e
		}
	}
	if found == nil || found.TraceID != tid || found.Value != 3*time.Millisecond {
		t.Fatalf("exemplar = %+v", found)
	}
	// EndTraced tags the span-fed histogram too.
	sp := s.Begin(PhaseServeBatch)
	tid2 := NewTraceID()
	sp.EndTraced(tid2)
	var got *Exemplar
	for _, e := range s.Histogram(PhaseServeBatch).BucketExemplars() {
		if e != nil {
			got = e
		}
	}
	if got == nil || got.TraceID != tid2 {
		t.Fatalf("EndTraced exemplar = %+v", got)
	}
	// Reset clears exemplars alongside buckets.
	s.Reset()
	for _, e := range s.Histogram(PhaseServeE2E).BucketExemplars() {
		if e != nil {
			t.Fatal("Reset left a stale exemplar")
		}
	}
}
