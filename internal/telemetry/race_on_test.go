//go:build race

package telemetry

// raceEnabled gates the AllocsPerRun assertions: race instrumentation
// allocates shadow state, so the zero-alloc tests only run without -race.
const raceEnabled = true
