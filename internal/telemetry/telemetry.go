// Package telemetry is the runtime observability substrate: phase-scoped
// spans, atomic kernel counters, and per-worker scheduler accounting,
// recorded with low enough overhead to stay on during production runs.
//
// The paper's methodology is measurement-first — the VTune top-down profiles
// of §3 (Table 4) motivate every optimization — and this package gives the
// reproduction the same visibility at runtime instead of only in the offline
// perf model: every forward/backward pass is decomposed into the paper's
// phases (aggregate, update, fused, compress, reorder, DMA) and every kernel
// reports what it moved (vertices, edges, rows, bytes, FLOPs).
//
// A nil *Sink disables everything: all methods are nil-receiver safe and the
// hot-path guard is a single pointer test plus one atomic load, with no
// per-edge work and no allocations. Kernels therefore thread an optional
// *Sink through their options and call it unconditionally.
//
// Spans additionally emit runtime/trace regions (visible in `go tool trace`)
// and Do attaches pprof labels, so CPU profiles of an instrumented run can
// be sliced by the same phase names as the exported Chrome trace.
package telemetry

import (
	"context"
	"fmt"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one of the fixed kernel counters. The set is a fixed
// enum so increments are plain atomic adds into an array — no map lookups on
// hot paths.
type Counter int

// Kernel counters. Each maps to one line of the metrics snapshot.
const (
	// CtrVerticesAggregated counts vertex rows produced by aggregation.
	CtrVerticesAggregated Counter = iota
	// CtrEdgesAggregated counts edges traversed by aggregation (gather +
	// ψ + reduce per edge, Algorithm 1).
	CtrEdgesAggregated
	// CtrRowsCompressed counts feature rows compressed (§4.3).
	CtrRowsCompressed
	// CtrRowsDecompressed counts compressed-row expansions consumed by
	// kernels (one per edge gather against a compressed source).
	CtrRowsDecompressed
	// CtrGEMMFLOPs counts dense-equivalent floating-point operations
	// (2·m·k·n per GEMM) of the update phase and backward products.
	CtrGEMMFLOPs
	// CtrDMABytesMoved counts bytes moved by the DMA engine model (§5).
	CtrDMABytesMoved
	// CtrDMADescriptors counts DMA aggregation descriptors executed.
	CtrDMADescriptors
	// CtrSchedChunks counts dynamically claimed scheduler chunks (§4.1).
	CtrSchedChunks
	// CtrSchedRows counts rows handed out by the scheduler.
	CtrSchedRows
	// CtrPanicsRecovered counts worker panics contained by the scheduler
	// or the gnn API boundary instead of crashing the process. Non-zero
	// means a workload hit a kernel invariant violation and was rejected
	// with a *sched.WorkerError; alert on it, don't ignore it.
	CtrPanicsRecovered
	// CtrServeRequests counts inference requests admitted to the serving
	// queue (the denominator of the serving error-rate series).
	CtrServeRequests
	// CtrServeRejected counts requests turned away with 429 because the
	// admission queue was full.
	CtrServeRejected
	// CtrServeExpired counts requests whose deadline passed before their
	// batch dispatched (rejected with 504, never computed).
	CtrServeExpired
	// CtrServeFailed counts requests failed by an inference error after
	// dispatch (contained kernel panics, cancelled batches).
	CtrServeFailed
	// CtrServeBatches counts mini-batches dispatched by the dynamic
	// batcher; together with CtrServeVertices it yields the mean batch
	// size.
	CtrServeBatches
	// CtrServeVertices counts vertices inferred through dispatched
	// mini-batches.
	CtrServeVertices
	// CtrServeSwaps counts checkpoint hot swaps applied to the serving
	// snapshot.
	CtrServeSwaps
	// CtrServeShed counts requests rejected by the adaptive load-shedding
	// controller (sustained queue sojourn above target), as opposed to the
	// hard queue-full backstop counted by CtrServeRejected.
	CtrServeShed
	// CtrServeDegraded counts requests served at a reduced sampling
	// fanout because the overload controller was above degradation level 0
	// when their batch sealed.
	CtrServeDegraded
	// CtrServeBreakerTrips counts circuit-breaker transitions into the
	// open state (a failing snapshot execution path tripped protection).
	CtrServeBreakerTrips
	// CtrServeRetries counts batch executions retried after a transient
	// failure under the retry budget.
	CtrServeRetries

	numCounters
)

// counterNames are the metrics-snapshot keys, indexed by Counter. The
// "graphite_" prefix and "_total" suffix follow Prometheus conventions.
var counterNames = [numCounters]string{
	CtrVerticesAggregated: "graphite_vertices_aggregated_total",
	CtrEdgesAggregated:    "graphite_edges_aggregated_total",
	CtrRowsCompressed:     "graphite_rows_compressed_total",
	CtrRowsDecompressed:   "graphite_rows_decompressed_total",
	CtrGEMMFLOPs:          "graphite_gemm_flops_total",
	CtrDMABytesMoved:      "graphite_dma_bytes_moved_total",
	CtrDMADescriptors:     "graphite_dma_descriptors_total",
	CtrSchedChunks:        "graphite_sched_chunks_total",
	CtrSchedRows:          "graphite_sched_rows_total",
	CtrPanicsRecovered:    "graphite_panics_recovered_total",
	CtrServeRequests:      "graphite_serve_requests_total",
	CtrServeRejected:      "graphite_serve_rejected_total",
	CtrServeExpired:       "graphite_serve_expired_total",
	CtrServeFailed:        "graphite_serve_failed_total",
	CtrServeBatches:       "graphite_serve_batches_total",
	CtrServeVertices:      "graphite_serve_vertices_total",
	CtrServeSwaps:         "graphite_serve_snapshot_swaps_total",
	CtrServeShed:          "graphite_serve_shed_total",
	CtrServeDegraded:      "graphite_serve_degraded_total",
	CtrServeBreakerTrips:  "graphite_serve_breaker_trips_total",
	CtrServeRetries:       "graphite_serve_batch_retries_total",
}

// Name returns the counter's metrics key.
func (c Counter) Name() string { return counterNames[c] }

// Counters lists all counters in snapshot order.
func Counters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// MaxWorkers bounds the per-worker accounting slots. Workers beyond the
// bound fold into the last slot rather than indexing out of range.
const MaxWorkers = 256

// workerSlot holds one worker's scheduler accounting, padded to a cache
// line so concurrent workers never false-share.
type workerSlot struct {
	chunks atomic.Int64
	rows   atomic.Int64
	busyNS atomic.Int64
	_      [40]byte
}

// spanEvent is one completed span in the ring buffer.
type spanEvent struct {
	name    string
	tid     int32
	startNS int64
	durNS   int64
}

// openSpan is one in-flight span tracked between Begin and End, so live
// metric scrapes can report elapsed time of phases that have not finished
// yet (a long epoch must not read as idle).
type openSpan struct {
	name    string
	startNS int64
}

// DefaultSpanCapacity is the ring-buffer size used when New is given a
// non-positive capacity. Spans are phase-granular (per layer, per epoch),
// so 32Ki events covers thousands of epochs before wrapping.
const DefaultSpanCapacity = 1 << 15

// Sink collects spans and counters for one run. All methods are safe for
// concurrent use and safe on a nil receiver (a nil sink records nothing).
type Sink struct {
	enabled  atomic.Bool
	epoch    time.Time
	counters [numCounters]atomic.Int64
	workers  [MaxWorkers]workerSlot
	hists    histSet

	mu      sync.Mutex
	events  []spanEvent
	head    int   // next write position in the ring
	written int64 // total spans ever recorded (>= len(events) once wrapped)
	dropped int64 // spans evicted from the ring (written - retained)
	open    map[uint64]openSpan
	nextID  uint64 // last open-span id handed out (under mu)
}

// New returns an enabled sink whose span ring holds capacity events
// (DefaultSpanCapacity if capacity <= 0).
func New(capacity int) *Sink {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	s := &Sink{epoch: time.Now(), events: make([]spanEvent, 0, capacity)}
	s.enabled.Store(true)
	return s
}

// Enabled reports whether the sink records anything. It is the single
// hot-path guard: nil test plus one atomic load.
func (s *Sink) Enabled() bool { return s != nil && s.enabled.Load() }

// SetEnabled pauses or resumes recording without discarding state.
func (s *Sink) SetEnabled(on bool) {
	if s != nil {
		s.enabled.Store(on)
	}
}

// Reset clears counters, worker accounting, recorded spans, the per-phase
// latency histograms, and the spans-dropped counter, so a metrics scrape
// after Reset never reports stale totals or quantiles. Spans currently in
// flight survive (they are live state, not history): their eventual End
// still records, and Inflight keeps reporting them.
func (s *Sink) Reset() {
	if s == nil {
		return
	}
	for i := range s.counters {
		s.counters[i].Store(0)
	}
	for i := range s.workers {
		s.workers[i].chunks.Store(0)
		s.workers[i].rows.Store(0)
		s.workers[i].busyNS.Store(0)
	}
	s.hists.reset()
	s.mu.Lock()
	s.events = s.events[:0]
	s.head = 0
	s.written = 0
	s.dropped = 0
	s.mu.Unlock()
}

// Add accumulates delta into a counter. Call at task/chunk granularity, not
// per edge: the kernels sum locally and flush once per claimed chunk.
func (s *Sink) Add(c Counter, delta int64) {
	if !s.Enabled() || delta == 0 {
		return
	}
	s.counters[c].Add(delta)
}

// Inc adds one to a counter.
func (s *Sink) Inc(c Counter) { s.Add(c, 1) }

// Counter returns a counter's current value.
func (s *Sink) Counter(c Counter) int64 {
	if s == nil {
		return 0
	}
	return s.counters[c].Load()
}

// WorkerClaim records that a scheduler worker claimed chunks covering rows
// iterations and spent busy wall time executing them. It feeds the
// load-imbalance statistics (the paper's motivation for dynamic scheduling
// over power-law degree skew, §4.1).
func (s *Sink) WorkerClaim(worker int, chunks, rows int64, busy time.Duration) {
	if !s.Enabled() {
		return
	}
	if worker < 0 {
		worker = 0
	}
	if worker >= MaxWorkers {
		worker = MaxWorkers - 1
	}
	w := &s.workers[worker]
	w.chunks.Add(chunks)
	w.rows.Add(rows)
	if busy > 0 {
		w.busyNS.Add(int64(busy))
	}
}

// Span is an in-flight phase measurement returned by Begin.
type Span struct {
	s      *Sink
	region *trace.Region
	name   string
	tid    int32
	start  int64
	id     uint64
}

// Begin opens a phase span. It also opens a runtime/trace region of the
// same name when `go tool trace` collection is active, so both timelines
// stay phase-aligned. End the returned span exactly once. Until End, the
// span is visible as in-flight elapsed time in PhaseTotals and
// Snapshot.Inflight, so live scrapes see long-running phases.
func (s *Sink) Begin(name string) Span {
	if !s.Enabled() {
		return Span{}
	}
	sp := Span{s: s, name: name, start: int64(time.Since(s.epoch))}
	if trace.IsEnabled() {
		sp.region = trace.StartRegion(context.Background(), name)
	}
	s.mu.Lock()
	s.nextID++
	sp.id = s.nextID
	if s.open == nil {
		s.open = make(map[uint64]openSpan, 16)
	}
	s.open[sp.id] = openSpan{name: name, startNS: sp.start}
	s.mu.Unlock()
	return sp
}

// End closes the span and records it: one ring event plus one observation
// in the phase's latency histogram (the source of the p50/p95/p99 series in
// WriteMetrics and the JSON benchmark reports).
func (sp Span) End() { sp.end(TraceID{}) }

// EndTraced is End plus an exemplar: the phase histogram's landing bucket
// is tagged with tid, linking the aggregate series to one concrete request
// trace. A zero tid behaves exactly like End.
func (sp Span) EndTraced(tid TraceID) { sp.end(tid) }

func (sp Span) end(tid TraceID) {
	if sp.region != nil {
		sp.region.End()
	}
	if sp.s == nil {
		return
	}
	dur := int64(time.Since(sp.s.epoch)) - sp.start
	h := sp.s.hists.get(sp.name)
	if tid.IsZero() {
		h.Observe(time.Duration(dur))
	} else {
		h.ObserveExemplar(time.Duration(dur), tid)
	}
	sp.s.record(spanEvent{name: sp.name, tid: sp.tid, startNS: sp.start, durNS: dur}, sp.id)
}

// Observe records one duration in the named phase's latency histogram
// without opening a span — for measurements taken outside the sink (e.g.
// the bench harness's per-rep wall clocks). Unlike spans, observations
// never age out of a ring; the histogram keeps every sample's bucket.
func (s *Sink) Observe(name string, d time.Duration) {
	if !s.Enabled() {
		return
	}
	s.hists.get(name).Observe(d)
}

// ObserveTraced is Observe plus an exemplar: the landing bucket of the
// named phase's histogram is tagged with tid (no-op tagging when tid is
// zero). The serving path uses it for end-to-end latencies measured outside
// any span.
func (s *Sink) ObserveTraced(name string, d time.Duration, tid TraceID) {
	if !s.Enabled() {
		return
	}
	s.hists.get(name).ObserveExemplar(d, tid)
}

// Histogram returns the named phase's latency histogram, or nil if nothing
// was recorded under that name yet.
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.hists.snapshot()[name]
}

// record appends to the ring, overwriting the oldest event when full, and
// retires the span's open-table entry. Span frequency is phase-granular, so
// a mutex (not a lock-free ring) keeps the export logic simple without
// measurable contention.
func (s *Sink) record(ev spanEvent, id uint64) {
	s.mu.Lock()
	delete(s.open, id)
	if len(s.events) < cap(s.events) {
		s.events = append(s.events, ev)
	} else {
		s.events[s.head] = ev
		s.head = (s.head + 1) % len(s.events)
		s.dropped++
	}
	s.written++
	s.mu.Unlock()
}

// Do runs f inside a span and with a pprof label graphite_phase=name, so
// CPU profiles taken during the run can be filtered to the phase. Labels
// propagate to goroutines f spawns, which covers the scheduler's workers.
func (s *Sink) Do(name string, f func()) {
	if !s.Enabled() {
		f()
		return
	}
	sp := s.Begin(name)
	defer sp.End()
	pprof.Do(context.Background(), pprof.Labels("graphite_phase", name), func(context.Context) {
		f()
	})
}

// snapshotEvents returns the recorded spans oldest-first.
func (s *Sink) snapshotEvents() []spanEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]spanEvent, 0, len(s.events))
	out = append(out, s.events[s.head:]...)
	out = append(out, s.events[:s.head]...)
	return out
}

// SpanCount returns the total number of spans recorded (including any that
// have been evicted from the ring).
func (s *Sink) SpanCount() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// SpansDropped returns how many recorded spans have been evicted from the
// ring buffer to make room for newer ones. A non-zero value means
// PhaseTotals and WriteTrace describe a truncated window; size the ring up
// with New(capacity) if the full timeline matters.
func (s *Sink) SpansDropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// PhaseTotals sums recorded span durations by phase name, including the
// elapsed-so-far time of spans still in flight — a live scrape in the middle
// of a long epoch sees the running phase's time, not an idle system. Nested
// spans each contribute their own duration, so sum leaf phases (aggregate,
// update, fused, ...) rather than mixing them with their enclosing
// layer/epoch spans.
func (s *Sink) PhaseTotals() map[string]time.Duration {
	if s == nil {
		return nil
	}
	now := int64(time.Since(s.epoch))
	totals := make(map[string]time.Duration)
	for _, ev := range s.snapshotEvents() {
		totals[ev.name] += time.Duration(ev.durNS)
	}
	s.mu.Lock()
	for _, op := range s.open {
		if el := now - op.startNS; el > 0 {
			totals[op.name] += time.Duration(el)
		}
	}
	s.mu.Unlock()
	return totals
}

// PhaseInflight is one phase's currently-open spans: how many are running
// and their summed elapsed time at the moment of the call.
type PhaseInflight struct {
	Phase   string
	Count   int64
	Elapsed time.Duration
}

// Inflight reports currently-open spans grouped by phase, sorted by phase
// name. Open spans survive Reset (they are live state, not history); their
// elapsed time still counts from their original Begin.
func (s *Sink) Inflight() []PhaseInflight {
	if s == nil {
		return nil
	}
	now := int64(time.Since(s.epoch))
	agg := make(map[string]*PhaseInflight)
	s.mu.Lock()
	for _, op := range s.open {
		pi := agg[op.name]
		if pi == nil {
			pi = &PhaseInflight{Phase: op.name}
			agg[op.name] = pi
		}
		pi.Count++
		if el := now - op.startNS; el > 0 {
			pi.Elapsed += time.Duration(el)
		}
	}
	s.mu.Unlock()
	out := make([]PhaseInflight, 0, len(agg))
	for _, pi := range agg {
		out = append(out, *pi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}

// Histograms returns the current phase-name → latency-histogram map. The
// histograms are the live ones (they keep accumulating); the map itself is
// an immutable snapshot. Nil-safe: a nil sink returns nil.
func (s *Sink) Histograms() map[string]*Histogram {
	if s == nil {
		return nil
	}
	return s.hists.snapshot()
}

// layerNameCache pre-renders the common layer span names so per-layer spans
// never format on the hot path.
var layerNameCache = func() [32]string {
	var a [32]string
	for i := range a {
		a[i] = fmt.Sprintf("layer%d", i)
	}
	return a
}()

// LayerName returns the span name for layer i ("layer0", "layer1", ...).
func LayerName(i int) string {
	if i >= 0 && i < len(layerNameCache) {
		return layerNameCache[i]
	}
	return fmt.Sprintf("layer%d", i)
}

// Canonical phase span names. Kernels and drivers share these constants so
// traces, pprof labels, and the bench breakdown agree on vocabulary.
const (
	PhaseForward       = "forward"
	PhaseBackward      = "backward"
	PhaseAggregate     = "aggregate"
	PhaseUpdate        = "update"
	PhaseFused         = "fused"
	PhaseCompressInput = "compress-input"
	PhaseReorder       = "reorder"
	PhaseDMAFlow       = "dma-flow"
	PhaseEpoch         = "epoch"
	PhaseInfer         = "infer"
	PhaseBackwardAgg   = "backward-aggregate"
	PhaseBackwardGEMM  = "backward-gemm"
	PhaseSample        = "sample"
	PhaseServeQueue    = "serve-queue"
	PhaseServeBatch    = "serve-batch"
	PhaseServeE2E      = "serve-e2e"
	// PhaseAdmission and PhaseSeal exist only as trace-span names (they are
	// microsecond-scale and would pollute the histogram families): the time
	// from request arrival to enqueue, and from batch seal to dispatch.
	PhaseAdmission = "admission"
	PhaseSeal      = "seal"
)
