package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of the latency histograms. Bucket i
// holds durations whose nanosecond count has bit length i (i.e. roughly
// [2^(i-1), 2^i)), so 44 buckets span sub-nanosecond to ~2.4 hours — far
// beyond any phase span this system records. Durations past the last bucket
// clamp into it.
const histBuckets = 44

// Histogram is a log2-bucketed latency histogram. Recording is one bucket
// index computation plus three atomic adds — no locks, no allocation — so it
// is safe to feed from concurrent workers while a reader summarizes it.
// All methods are nil-receiver safe (a nil histogram records nothing and
// reports zeros), matching the Sink discipline.
//
// Like Sink counters, Observe must not be called inside kernel hot loops
// (per vertex or per edge); record at span/chunk granularity. The
// hotloop-telemetry lint checker enforces this for the kernel packages.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
	// exemplars holds, per bucket, the most recent traced observation that
	// landed there (nil when the bucket has only untraced observations).
	// Plain Observe never touches this array, so the untraced path pays
	// nothing for exemplar support.
	exemplars [histBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links one histogram observation to the trace that produced it —
// the OpenMetrics exemplar model, restricted to the one label this system
// needs (trace_id). A bucket keeps only its latest exemplar: the point is a
// live "which request is in this bucket right now" pointer, not a sample
// archive (the flight recorder keeps the traces themselves).
type Exemplar struct {
	TraceID TraceID
	Value   time.Duration // the observed duration
	Time    time.Time     // when it was observed
}

// bucketIndex maps a nanosecond duration to its bucket.
func bucketIndex(ns int64) int {
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketMin is the smallest nanosecond value bucket i holds.
func bucketMin(i int) int64 {
	if i == 0 {
		return 0
	}
	return 1 << (i - 1)
}

// bucketMax is the largest nanosecond value bucket i holds.
func bucketMax(i int) int64 {
	if i == 0 {
		return 0
	}
	return 1<<i - 1
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// ObserveExemplar records one duration like Observe and, when tid is a real
// trace id, replaces the landing bucket's exemplar so the exposition can
// link this bucket to a concrete trace.
func (h *Histogram) ObserveExemplar(d time.Duration, tid TraceID) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bucketIndex(ns)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	if !tid.IsZero() {
		h.exemplars[i].Store(&Exemplar{TraceID: tid, Value: d, Time: time.Now()})
	}
}

// BucketExemplars returns the latest exemplar per bucket, index-aligned with
// Buckets (nil entries where no traced observation landed). Nil-safe.
func (h *Histogram) BucketExemplars() []*Exemplar {
	if h == nil {
		return nil
	}
	out := make([]*Exemplar, histBuckets)
	for i := range out {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// HistBucket is one log2 latency bucket as seen by exporters: Count
// observations whose duration is <= Upper and greater than the previous
// bucket's Upper (bucket 0 holds exactly-zero durations).
type HistBucket struct {
	Upper time.Duration
	Count int64
}

// Buckets returns all bucket counts in ascending bound order, including
// empty ones, so exporters can render a complete cumulative distribution
// (Prometheus _bucket series). The last bucket is open-ended in practice:
// durations past its bound clamp into it.
func (h *Histogram) Buckets() []HistBucket {
	if h == nil {
		return nil
	}
	out := make([]HistBucket, histBuckets)
	for i := range out {
		out[i] = HistBucket{Upper: time.Duration(bucketMax(i)), Count: h.buckets[i].Load()}
	}
	return out
}

// CountAbove returns the number of observations recorded in buckets that lie
// entirely above d — a lower bound on the true count of observations slower
// than d, off by at most the contents of d's own bucket (log2 resolution).
// The SLO tracker uses it to count threshold breaches from bucket counts
// alone, without retaining raw samples.
func (h *Histogram) CountAbove(d time.Duration) int64 {
	if h == nil {
		return 0
	}
	ns := int64(d)
	var n int64
	for i := 0; i < histBuckets; i++ {
		if bucketMin(i) > ns {
			n += h.buckets[i].Load()
		}
	}
	return n
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the covering bucket. With no observations it returns 0. The
// estimate's relative error is bounded by the bucket width (at most 2x),
// which is enough to separate microseconds from milliseconds from seconds —
// the resolution serving-latency percentiles need.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketMin(i), bucketMax(i)
			frac := float64(rank-cum) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	return time.Duration(bucketMax(histBuckets - 1))
}

// reset zeroes the histogram in place. Not atomic with respect to concurrent
// Observe calls; the Sink only calls it under its registration lock from
// Reset, which callers already treat as a quiescent-point operation.
func (h *Histogram) reset() {
	h.count.Store(0)
	h.sumNS.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
		h.exemplars[i].Store(nil)
	}
}

// histSet is the sink's copy-on-write phase-name → histogram index. Readers
// load the map pointer and index it lock-free; registration of a new phase
// name copies the map under hmu and swaps the pointer.
type histSet struct {
	mu sync.Mutex
	m  atomic.Pointer[map[string]*Histogram]
}

// get returns the histogram for name, registering it on first use.
func (hs *histSet) get(name string) *Histogram {
	if m := hs.m.Load(); m != nil {
		if h := (*m)[name]; h != nil {
			return h
		}
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	old := hs.m.Load()
	if old != nil {
		if h := (*old)[name]; h != nil {
			return h
		}
	}
	next := make(map[string]*Histogram, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	h := &Histogram{}
	next[name] = h
	hs.m.Store(&next)
	return h
}

// snapshot returns the current name → histogram map. The histograms are the
// live ones (they keep accumulating); the map itself is immutable.
func (hs *histSet) snapshot() map[string]*Histogram {
	if m := hs.m.Load(); m != nil {
		return *m
	}
	return nil
}

// reset zeroes every registered histogram, keeping registrations so steady
// phase names do not re-pay the copy-on-write insert after each Reset.
func (hs *histSet) reset() {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if m := hs.m.Load(); m != nil {
		for _, h := range *m {
			h.reset()
		}
	}
}
