package telemetry

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramNilSafe exercises every Histogram method on a nil receiver.
func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram reported data")
	}
}

// TestHistogramBuckets pins the log2 bucket mapping at its edges.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 50, histBuckets - 1}, // clamps into the last bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	for i := 1; i < histBuckets; i++ {
		if bucketMin(i) != bucketMax(i-1)+1 {
			t.Fatalf("bucket %d: gap between max(%d)=%d and min=%d",
				i, i-1, bucketMax(i-1), bucketMin(i))
		}
	}
}

// TestHistogramQuantiles checks the summary statistics against a known
// distribution: quantile estimates must land within the observed value's
// bucket (the documented 2x bound), and negative observations clamp to 0.
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations at ~1us, 9 at ~1ms, 1 at ~1s.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	wantSum := 90*time.Microsecond + 9*time.Millisecond + time.Second
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	within := func(q float64, target time.Duration) {
		t.Helper()
		got := h.Quantile(q)
		if got < target/2 || got > target*2 {
			t.Fatalf("quantile(%g) = %v, want within 2x of %v", q, got, target)
		}
	}
	within(0.50, time.Microsecond)
	within(0.95, time.Millisecond)
	within(0.999, time.Second)
	if h.Quantile(1) < time.Second/2 {
		t.Fatalf("quantile(1) = %v, want ~1s", h.Quantile(1))
	}

	h.Observe(-time.Second) // clamps to bucket 0
	if h.Quantile(0) != 0 {
		t.Fatalf("quantile(0) after negative observation = %v, want 0", h.Quantile(0))
	}
}

// TestSinkObserveAndSpanFeedHistograms verifies both record paths — explicit
// Observe and Span.End — land in the per-phase histograms, that the metrics
// text carries p50/p95/p99 lines, and that disabled/nil sinks record nothing.
func TestSinkObserveAndSpanFeedHistograms(t *testing.T) {
	s := New(0)
	for i := 0; i < 4; i++ {
		s.Observe("rep", 10*time.Millisecond)
	}
	sp := s.Begin(PhaseAggregate)
	time.Sleep(time.Millisecond)
	sp.End()

	if got := s.Histogram("rep").Count(); got != 4 {
		t.Fatalf("rep count = %d, want 4", got)
	}
	if got := s.Histogram(PhaseAggregate).Count(); got != 1 {
		t.Fatalf("aggregate count = %d, want 1", got)
	}
	if s.Histogram("nope") != nil {
		t.Fatal("unknown phase returned a histogram")
	}

	snap := s.Snapshot()
	if len(snap.Latencies) != 2 {
		t.Fatalf("latencies = %+v, want 2 phases", snap.Latencies)
	}
	if snap.Latencies[0].Phase != PhaseAggregate || snap.Latencies[1].Phase != "rep" {
		t.Fatalf("latencies not sorted by phase: %+v", snap.Latencies)
	}
	if p50 := snap.Latencies[1].P50; p50 < 5*time.Millisecond || p50 > 20*time.Millisecond {
		t.Fatalf("rep p50 = %v, want ~10ms", p50)
	}

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graphite_span_latency_ns{phase="rep",quantile="0.5"} `,
		`graphite_span_latency_ns{phase="rep",quantile="0.95"} `,
		`graphite_span_latency_ns{phase="rep",quantile="0.99"} `,
		`graphite_span_latency_count{phase="rep"} 4`,
		`graphite_span_latency_count{phase="aggregate"} 1`,
		"graphite_spans_dropped_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}

	s.SetEnabled(false)
	s.Observe("rep", time.Second)
	if got := s.Histogram("rep").Count(); got != 4 {
		t.Fatalf("disabled sink recorded an observation (count=%d)", got)
	}
	var nilSink *Sink
	nilSink.Observe("rep", time.Second)
	if nilSink.Histogram("rep") != nil {
		t.Fatal("nil sink returned a histogram")
	}

	s.SetEnabled(true)
	s.Reset()
	if got := s.Histogram("rep").Count(); got != 0 {
		t.Fatalf("reset did not clear histogram (count=%d)", got)
	}
}

// TestSpansDroppedCounter fills a tiny ring past capacity and checks the
// silent-loss satellite: the drop count must surface in SpansDropped, the
// snapshot, and the metrics text.
func TestSpansDroppedCounter(t *testing.T) {
	const capacity, total = 4, 11
	s := New(capacity)
	for i := 0; i < total; i++ {
		sp := s.Begin(PhaseUpdate)
		sp.End()
	}
	if got := s.SpansDropped(); got != total-capacity {
		t.Fatalf("SpansDropped = %d, want %d", got, total-capacity)
	}
	snap := s.Snapshot()
	if snap.Spans != total || snap.SpansDropped != total-capacity {
		t.Fatalf("snapshot spans=%d dropped=%d, want %d/%d",
			snap.Spans, snap.SpansDropped, total, total-capacity)
	}
	// The histograms see every span even though the ring dropped some.
	if got := s.Histogram(PhaseUpdate).Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graphite_spans_dropped_total 7") {
		t.Fatalf("metrics missing dropped count:\n%s", buf.String())
	}
	s.Reset()
	if s.SpansDropped() != 0 {
		t.Fatal("Reset did not clear the dropped count")
	}
}

// TestConcurrentHistogramRecordingUnderRace is the -race stress test for the
// histogram path: N goroutines record spans and direct observations while a
// reader continuously calls WriteMetrics and PhaseTotals. Afterwards every
// total must add up exactly — atomics may not lose updates.
func TestConcurrentHistogramRecordingUnderRace(t *testing.T) {
	const (
		ringCap    = 64
		writers    = 8
		perWriter  = 400
		totalSpans = writers * perWriter
	)
	s := New(ringCap)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.WriteMetrics(io.Discard); err != nil {
				t.Errorf("WriteMetrics: %v", err)
				return
			}
			_ = s.PhaseTotals()
			_ = s.Snapshot()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sp := s.Begin(PhaseAggregate)
				sp.End()
				s.Observe("rep", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone

	if got := s.SpanCount(); got != totalSpans {
		t.Fatalf("span count = %d, want %d", got, totalSpans)
	}
	if got := s.SpansDropped(); got != totalSpans-ringCap {
		t.Fatalf("dropped = %d, want %d", got, totalSpans-ringCap)
	}
	if got := s.Histogram(PhaseAggregate).Count(); got != totalSpans {
		t.Fatalf("aggregate histogram count = %d, want %d", got, totalSpans)
	}
	if got := s.Histogram("rep").Count(); got != totalSpans {
		t.Fatalf("rep histogram count = %d, want %d", got, totalSpans)
	}
	// The ring retains exactly its capacity, all of phase "aggregate".
	if got := s.PhaseTotals()[PhaseAggregate]; got <= 0 {
		t.Fatalf("phase total = %v, want > 0", got)
	}
	snap := s.Snapshot()
	for _, pl := range snap.Latencies {
		if pl.Count != totalSpans {
			t.Fatalf("latency %q count = %d, want %d", pl.Phase, pl.Count, totalSpans)
		}
		if pl.P50 < 0 || pl.P95 < pl.P50 || pl.P99 < pl.P95 {
			t.Fatalf("quantiles not monotone for %q: %+v", pl.Phase, pl)
		}
	}
}
