package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphite/internal/telemetry"
)

func TestDynamicCtxCoversAllWithoutCancel(t *testing.T) {
	for _, tc := range []struct{ n, chunk, threads int }{
		{1, 1, 1}, {7, 3, 2}, {100, 7, 4}, {100, 1000, 4}, {64, 8, 8},
	} {
		counts := make([]int32, tc.n)
		err := DynamicCtx(context.Background(), tc.n, tc.chunk, tc.threads, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		if err != nil {
			t.Fatalf("n=%d: unexpected error: %v", tc.n, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d chunk=%d threads=%d: index %d visited %d times", tc.n, tc.chunk, tc.threads, i, c)
			}
		}
	}
}

// TestDynamicCtxCancellationLatency is the cancellation-latency contract:
// after cancel, a DynamicCtx run over a large iteration space must stop at
// chunk granularity — every worker may at most finish its in-flight chunk
// plus claim one more that slipped past the pre-claim check — rather than
// draining the whole space.
func TestDynamicCtxCancellationLatency(t *testing.T) {
	const (
		n       = 1 << 20
		chunk   = 64
		threads = 4
	)
	ctx, cancel := context.WithCancel(context.Background())
	var started, afterCancel atomic.Int64
	var cancelled atomic.Bool
	var once sync.Once
	err := DynamicCtx(ctx, n, chunk, threads, func(start, end int) {
		if cancelled.Load() {
			afterCancel.Add(1)
		}
		if started.Add(1) == 8 {
			once.Do(func() {
				cancelled.Store(true)
				cancel()
			})
		}
		time.Sleep(100 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	total := started.Load()
	if total >= n/chunk {
		t.Fatalf("ran all %d chunks despite cancellation", total)
	}
	// Each worker can be mid-chunk when cancel lands and may claim at most
	// one more chunk between its done-check and the claim.
	if got := afterCancel.Load(); got > 2*threads {
		t.Fatalf("%d chunks started after cancel, want <= %d", got, 2*threads)
	}
	t.Logf("chunks started: %d total, %d after cancel", total, afterCancel.Load())
}

func TestDynamicCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int64{}
	err := DynamicCtx(ctx, 1000, 8, 4, func(start, end int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers check ctx before claiming, so nothing (or at most one chunk
	// per worker racing the check) runs.
	if got := ran.Load(); got > 4 {
		t.Fatalf("%d chunks ran under a pre-cancelled context", got)
	}
}

func TestDynamicCtxContainsPanic(t *testing.T) {
	tel := telemetry.New(0)
	err := DynamicTelCtx(context.Background(), 1000, 10, 4, tel, func(worker, start, end int) {
		if start == 500 {
			panic("boom at 500")
		}
	})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v (%T), want *WorkerError", err, err)
	}
	if we.Start != 500 || we.End != 510 {
		t.Errorf("chunk bounds [%d,%d), want [500,510)", we.Start, we.End)
	}
	if we.Worker < 0 || we.Worker >= 4 {
		t.Errorf("worker id %d out of range", we.Worker)
	}
	if len(we.Stack) == 0 || !strings.Contains(string(we.Stack), "sched") {
		t.Errorf("stack missing or implausible: %q", we.Stack)
	}
	if !strings.Contains(we.Error(), "boom at 500") {
		t.Errorf("Error() = %q, want the recovered value in it", we.Error())
	}
	if got := tel.Counter(telemetry.CtrPanicsRecovered); got != 1 {
		t.Errorf("panics-recovered counter = %d, want 1", got)
	}
}

func TestDynamicCtxPanicStopsOtherWorkers(t *testing.T) {
	var ran atomic.Int64
	err := DynamicCtx(context.Background(), 1<<20, 16, 4, func(start, end int) {
		if start == 0 {
			panic("first chunk dies")
		}
		ran.Add(1)
		time.Sleep(50 * time.Microsecond)
	})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WorkerError", err)
	}
	if total := ran.Load(); total >= (1<<20)/16/2 {
		t.Fatalf("other workers drained %d chunks after the panic; stop flag not observed", total)
	}
}

func TestDynamicWrapperRepanicsWorkerError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
		we, ok := r.(error)
		if !ok {
			t.Fatalf("recovered %T, want error", r)
		}
		var werr *WorkerError
		if !errors.As(we, &werr) {
			t.Fatalf("recovered %v, want *WorkerError", we)
		}
	}()
	Dynamic(100, 10, 2, func(start, end int) { panic("kernel invariant") })
}

// TestDynamicClampsThreadsToChunks is the goroutine-count satellite: with
// fewer chunks than threads, only ceil(n/chunk) workers may claim work.
func TestDynamicClampsThreadsToChunks(t *testing.T) {
	var maxWorker atomic.Int64
	maxWorker.Store(-1)
	err := DynamicTelCtx(context.Background(), 10, 64, 8, nil, func(worker, start, end int) {
		for {
			cur := maxWorker.Load()
			if int64(worker) <= cur || maxWorker.CompareAndSwap(cur, int64(worker)) {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := maxWorker.Load(); got != 0 {
		t.Fatalf("worker id %d claimed work; want a single worker for a single chunk", got)
	}
	// Telemetry accounting must agree: exactly one worker slot reported.
	tel := telemetry.New(0)
	if err := DynamicTelCtx(context.Background(), 10, 4, 16, tel, func(worker, start, end int) {}); err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	if len(snap.Workers) > 3 {
		t.Fatalf("%d workers reported for 3 chunks", len(snap.Workers))
	}
}

func TestStaticCtxContainsPanicAndCancels(t *testing.T) {
	err := StaticCtx(context.Background(), 100, 4, func(start, end int) {
		if start == 0 {
			panic("static worker dies")
		}
	})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WorkerError", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int64{}
	if err := StaticCtx(ctx, 100, 4, func(start, end int) { ran.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("static ranges ran under a pre-cancelled context")
	}
}

func TestForEachThreadCtxContainsPanic(t *testing.T) {
	err := ForEachThreadCtx(context.Background(), 4, func(thread int) {
		if thread == 2 {
			panic("thread 2 dies")
		}
	})
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WorkerError", err)
	}
	if we.Worker != 2 {
		t.Errorf("worker = %d, want 2", we.Worker)
	}
}

func TestCursorCtxStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cur := NewCursorCtx(ctx, 1000, 10)
	if _, _, ok := cur.Next(); !ok {
		t.Fatal("cursor empty before cancellation")
	}
	cancel()
	if s, e, ok := cur.Next(); ok {
		t.Fatalf("cursor handed out [%d,%d) after cancel", s, e)
	}
	// A background-context cursor behaves exactly like a plain one.
	cur = NewCursorCtx(context.Background(), 5, 2)
	total := 0
	for {
		s, e, ok := cur.Next()
		if !ok {
			break
		}
		total += e - s
	}
	if total != 5 {
		t.Fatalf("background cursor covered %d of 5", total)
	}
}

func TestCtxVariantsEmptySpace(t *testing.T) {
	if err := DynamicCtx(context.Background(), 0, 4, 2, func(int, int) { t.Fatal("ran") }); err != nil {
		t.Fatal(err)
	}
	if err := StaticCtx(context.Background(), -3, 2, func(int, int) { t.Fatal("ran") }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := DynamicCtx(ctx, 0, 4, 2, func(int, int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("empty cancelled run returned %v, want context.Canceled", err)
	}
}
