// Package sched provides the parallel work scheduling substrate used by the
// aggregation and update kernels.
//
// The paper schedules aggregation tasks with OpenMP's dynamic scheduler
// because vertex degrees can follow a power-law distribution and static
// partitioning leaves threads idle (§4.1). This package reproduces that
// behaviour: Dynamic hands out fixed-size chunks from an atomic cursor so
// that fast threads keep pulling work, while Static pre-partitions the
// iteration space (used as an ablation baseline).
//
// All worker goroutines in the module are spawned here (enforced by the
// goroutine-recover lint rule), because this is where panics are contained:
// a panic inside a worker is captured into a *WorkerError instead of
// killing the process. The context-aware variants (DynamicCtx, StaticCtx,
// ForEachThreadCtx and the Tel forms) return it as an error alongside
// cooperative cancellation; the plain variants re-panic it on the calling
// goroutine, where the gnn layer's API boundary converts it to an error.
package sched

import (
	"context"
	"runtime"
	"sync/atomic"

	"graphite/internal/telemetry"
)

// DefaultThreads returns the degree of parallelism used when a caller passes
// threads <= 0. It honours GOMAXPROCS so tests can pin parallelism.
func DefaultThreads() int {
	return runtime.GOMAXPROCS(0)
}

// Dynamic runs body(start, end) over [0, n) in chunks of the given size,
// distributing chunks dynamically over the worker threads. It mirrors
// OpenMP's schedule(dynamic, chunk): each worker atomically claims the next
// chunk when it finishes its current one, which balances power-law degree
// skew across threads. body must be safe to call concurrently on disjoint
// ranges. A panic in body re-panics on the calling goroutine as a
// *WorkerError.
func Dynamic(n, chunk, threads int, body func(start, end int)) {
	DynamicTel(n, chunk, threads, nil, func(_, start, end int) { body(start, end) })
}

// DynamicTel is Dynamic with per-worker telemetry: body additionally
// receives the claiming worker's id, and when tel is a live sink every
// claimed chunk is accounted (chunk count, rows, busy wall time) so runs
// can quantify load imbalance across workers. A nil/disabled sink adds a
// single branch per chunk and nothing per row.
func DynamicTel(n, chunk, threads int, tel *telemetry.Sink, body func(worker, start, end int)) {
	mustRun(DynamicTelCtx(context.Background(), n, chunk, threads, tel, body))
}

// Static runs body(start, end) over [0, n) with a contiguous block per
// thread, mirroring OpenMP's schedule(static). The DistGNN-style baseline
// kernel uses this; the paper's optimized kernels use Dynamic.
func Static(n, threads int, body func(start, end int)) {
	StaticTel(n, threads, nil, func(_, start, end int) { body(start, end) })
}

// StaticTel is Static with per-worker telemetry, mirroring DynamicTel: each
// worker's single contiguous range is accounted as one claim. Comparing the
// resulting busy-time imbalance against DynamicTel's is the §4.1 argument
// for dynamic scheduling in numbers.
func StaticTel(n, threads int, tel *telemetry.Sink, body func(worker, start, end int)) {
	mustRun(StaticTelCtx(context.Background(), n, threads, tel, body))
}

// ForEachThread runs body(threadID) once on each of the given number of
// worker threads and waits for all of them. Kernels that keep per-thread
// state (e.g. the ping-pong descriptor batches in the DMA driver, Alg. 5)
// use this to own their thread loop while still claiming tasks dynamically
// through a Cursor.
func ForEachThread(threads int, body func(thread int)) {
	mustRun(ForEachThreadTelCtx(context.Background(), threads, nil, body))
}

// mustRun re-raises a contained worker panic for the entry points without
// an error return. With a background context the core can only fail by
// worker panic, so callers keep the historical panic semantics — now with
// worker id, chunk bounds, and the worker's stack attached.
func mustRun(err error) {
	if err != nil {
		panic(err)
	}
}

// Cursor is a dynamic task cursor shared by worker threads. Next returns
// half-open chunk bounds until the iteration space is exhausted — or, for
// cursors built with NewCursorCtx, until the context is cancelled.
type Cursor struct {
	n     int
	chunk int
	done  <-chan struct{}
	pos   atomic.Int64
}

// NewCursor returns a cursor over [0, n) handing out chunks of the given
// size (minimum 1).
func NewCursor(n, chunk int) *Cursor {
	if chunk <= 0 {
		chunk = 1
	}
	return &Cursor{n: n, chunk: chunk}
}

// Next claims the next chunk. It returns ok=false when the space is
// exhausted or the cursor's context (NewCursorCtx) is cancelled.
func (c *Cursor) Next() (start, end int, ok bool) {
	if c.done != nil {
		select {
		case <-c.done:
			return 0, 0, false
		default:
		}
	}
	s := int(c.pos.Add(int64(c.chunk))) - c.chunk
	if s >= c.n {
		return 0, 0, false
	}
	e := s + c.chunk
	if e > c.n {
		e = c.n
	}
	return s, e, true
}
