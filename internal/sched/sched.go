// Package sched provides the parallel work scheduling substrate used by the
// aggregation and update kernels.
//
// The paper schedules aggregation tasks with OpenMP's dynamic scheduler
// because vertex degrees can follow a power-law distribution and static
// partitioning leaves threads idle (§4.1). This package reproduces that
// behaviour: Dynamic hands out fixed-size chunks from an atomic cursor so
// that fast threads keep pulling work, while Static pre-partitions the
// iteration space (used as an ablation baseline).
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"graphite/internal/telemetry"
)

// DefaultThreads returns the degree of parallelism used when a caller passes
// threads <= 0. It honours GOMAXPROCS so tests can pin parallelism.
func DefaultThreads() int {
	return runtime.GOMAXPROCS(0)
}

// Dynamic runs body(start, end) over [0, n) in chunks of the given size,
// distributing chunks dynamically over the worker threads. It mirrors
// OpenMP's schedule(dynamic, chunk): each worker atomically claims the next
// chunk when it finishes its current one, which balances power-law degree
// skew across threads. body must be safe to call concurrently on disjoint
// ranges.
func Dynamic(n, chunk, threads int, body func(start, end int)) {
	DynamicTel(n, chunk, threads, nil, func(_, start, end int) { body(start, end) })
}

// DynamicTel is Dynamic with per-worker telemetry: body additionally
// receives the claiming worker's id, and when tel is a live sink every
// claimed chunk is accounted (chunk count, rows, busy wall time) so runs
// can quantify load imbalance across workers. A nil/disabled sink adds a
// single branch per chunk and nothing per row.
func DynamicTel(n, chunk, threads int, tel *telemetry.Sink, body func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	if threads <= 0 {
		threads = DefaultThreads()
	}
	run := func(worker, start, end int) {
		if tel.Enabled() {
			t0 := time.Now()
			body(worker, start, end)
			tel.WorkerClaim(worker, 1, int64(end-start), time.Since(t0))
			tel.Add(telemetry.CtrSchedChunks, 1)
			tel.Add(telemetry.CtrSchedRows, int64(end-start))
			return
		}
		body(worker, start, end)
	}
	if threads == 1 {
		for start := 0; start < n; start += chunk {
			end := start + chunk
			if end > n {
				end = n
			}
			run(0, start, end)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				run(worker, start, end)
			}
		}(t)
	}
	wg.Wait()
}

// Static runs body(start, end) over [0, n) with a contiguous block per
// thread, mirroring OpenMP's schedule(static). The DistGNN-style baseline
// kernel uses this; the paper's optimized kernels use Dynamic.
func Static(n, threads int, body func(start, end int)) {
	StaticTel(n, threads, nil, func(_, start, end int) { body(start, end) })
}

// StaticTel is Static with per-worker telemetry, mirroring DynamicTel: each
// worker's single contiguous range is accounted as one claim. Comparing the
// resulting busy-time imbalance against DynamicTel's is the §4.1 argument
// for dynamic scheduling in numbers.
func StaticTel(n, threads int, tel *telemetry.Sink, body func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if threads > n {
		threads = n
	}
	run := func(worker, start, end int) {
		if tel.Enabled() {
			t0 := time.Now()
			body(worker, start, end)
			tel.WorkerClaim(worker, 1, int64(end-start), time.Since(t0))
			tel.Add(telemetry.CtrSchedChunks, 1)
			tel.Add(telemetry.CtrSchedRows, int64(end-start))
			return
		}
		body(worker, start, end)
	}
	if threads == 1 {
		run(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	per := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		start := t * per
		end := start + per
		if end > n {
			end = n
		}
		go func(worker, s, e int) {
			defer wg.Done()
			if s < e {
				run(worker, s, e)
			}
		}(t, start, end)
	}
	wg.Wait()
}

// ForEachThread runs body(threadID) once on each of the given number of
// worker threads and waits for all of them. Kernels that keep per-thread
// state (e.g. the ping-pong descriptor batches in the DMA driver, Alg. 5)
// use this to own their thread loop while still claiming tasks dynamically
// through a Cursor.
func ForEachThread(threads int, body func(thread int)) {
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if threads == 1 {
		body(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(id int) {
			defer wg.Done()
			body(id)
		}(t)
	}
	wg.Wait()
}

// Cursor is a dynamic task cursor shared by worker threads. Next returns
// half-open chunk bounds until the iteration space is exhausted.
type Cursor struct {
	n     int
	chunk int
	pos   atomic.Int64
}

// NewCursor returns a cursor over [0, n) handing out chunks of the given
// size (minimum 1).
func NewCursor(n, chunk int) *Cursor {
	if chunk <= 0 {
		chunk = 1
	}
	return &Cursor{n: n, chunk: chunk}
}

// Next claims the next chunk. It returns ok=false when the space is
// exhausted.
func (c *Cursor) Next() (start, end int, ok bool) {
	s := int(c.pos.Add(int64(c.chunk))) - c.chunk
	if s >= c.n {
		return 0, 0, false
	}
	e := s + c.chunk
	if e > c.n {
		e = c.n
	}
	return s, e, true
}
