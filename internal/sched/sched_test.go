package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func covered(n, chunk, threads int, run func(n, chunk, threads int, body func(int, int))) ([]int32, bool) {
	counts := make([]int32, n)
	ordered := true
	var mu sync.Mutex
	run(n, chunk, threads, func(start, end int) {
		if start >= end {
			mu.Lock()
			ordered = false
			mu.Unlock()
		}
		for i := start; i < end; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	return counts, ordered
}

func TestDynamicCoversAllExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, chunk, threads int }{
		{0, 4, 2}, {1, 1, 1}, {7, 3, 2}, {100, 7, 4}, {100, 1000, 4}, {64, 8, 8}, {5, 0, 0},
	} {
		counts, ordered := covered(tc.n, tc.chunk, tc.threads, Dynamic)
		if !ordered {
			t.Fatalf("n=%d chunk=%d threads=%d: empty range delivered", tc.n, tc.chunk, tc.threads)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d chunk=%d threads=%d: index %d visited %d times", tc.n, tc.chunk, tc.threads, i, c)
			}
		}
	}
}

func TestStaticCoversAllExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, threads int }{
		{0, 2}, {1, 1}, {7, 2}, {100, 4}, {3, 8}, {64, 8}, {5, 0},
	} {
		counts, _ := covered(tc.n, 0, tc.threads, func(n, _, threads int, body func(int, int)) {
			Static(n, threads, body)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d threads=%d: index %d visited %d times", tc.n, tc.threads, i, c)
			}
		}
	}
}

func TestDynamicPropertyCoverage(t *testing.T) {
	f := func(n8, chunk8, threads8 uint8) bool {
		n := int(n8)
		chunk := int(chunk8)%16 + 1
		threads := int(threads8)%8 + 1
		counts, _ := covered(n, chunk, threads, Dynamic)
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachThreadRunsEachIDOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 7} {
		seen := make([]int32, threads)
		ForEachThread(threads, func(id int) {
			atomic.AddInt32(&seen[id], 1)
		})
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("threads=%d: id %d ran %d times", threads, id, c)
			}
		}
	}
}

func TestCursorExhaustsSpace(t *testing.T) {
	cur := NewCursor(10, 3)
	var got []int
	for {
		s, e, ok := cur.Next()
		if !ok {
			break
		}
		for i := s; i < e; i++ {
			got = append(got, i)
		}
	}
	if len(got) != 10 {
		t.Fatalf("covered %d of 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("index %d got %d", i, v)
		}
	}
	if _, _, ok := cur.Next(); ok {
		t.Fatal("cursor returned work after exhaustion")
	}
}

func TestCursorConcurrentDisjoint(t *testing.T) {
	const n = 1000
	cur := NewCursor(n, 7)
	counts := make([]int32, n)
	ForEachThread(8, func(int) {
		for {
			s, e, ok := cur.Next()
			if !ok {
				return
			}
			for i := s; i < e; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestDynamicZeroAndNegativeN(t *testing.T) {
	ran := false
	Dynamic(-5, 4, 2, func(int, int) { ran = true })
	Dynamic(0, 4, 2, func(int, int) { ran = true })
	Static(0, 2, func(int, int) { ran = true })
	if ran {
		t.Fatal("body ran for empty iteration space")
	}
}

func BenchmarkDynamicOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Dynamic(1024, 16, 4, func(start, end int) {})
	}
}
