package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"graphite/internal/telemetry"
)

func covered(n, chunk, threads int, run func(n, chunk, threads int, body func(int, int))) ([]int32, bool) {
	counts := make([]int32, n)
	ordered := true
	var mu sync.Mutex
	run(n, chunk, threads, func(start, end int) {
		if start >= end {
			mu.Lock()
			ordered = false
			mu.Unlock()
		}
		for i := start; i < end; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	return counts, ordered
}

func TestDynamicCoversAllExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, chunk, threads int }{
		{0, 4, 2}, {1, 1, 1}, {7, 3, 2}, {100, 7, 4}, {100, 1000, 4}, {64, 8, 8}, {5, 0, 0},
	} {
		counts, ordered := covered(tc.n, tc.chunk, tc.threads, Dynamic)
		if !ordered {
			t.Fatalf("n=%d chunk=%d threads=%d: empty range delivered", tc.n, tc.chunk, tc.threads)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d chunk=%d threads=%d: index %d visited %d times", tc.n, tc.chunk, tc.threads, i, c)
			}
		}
	}
}

func TestStaticCoversAllExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, threads int }{
		{0, 2}, {1, 1}, {7, 2}, {100, 4}, {3, 8}, {64, 8}, {5, 0},
	} {
		counts, _ := covered(tc.n, 0, tc.threads, func(n, _, threads int, body func(int, int)) {
			Static(n, threads, body)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d threads=%d: index %d visited %d times", tc.n, tc.threads, i, c)
			}
		}
	}
}

func TestDynamicPropertyCoverage(t *testing.T) {
	f := func(n8, chunk8, threads8 uint8) bool {
		n := int(n8)
		chunk := int(chunk8)%16 + 1
		threads := int(threads8)%8 + 1
		counts, _ := covered(n, chunk, threads, Dynamic)
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachThreadRunsEachIDOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 7} {
		seen := make([]int32, threads)
		ForEachThread(threads, func(id int) {
			atomic.AddInt32(&seen[id], 1)
		})
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("threads=%d: id %d ran %d times", threads, id, c)
			}
		}
	}
}

func TestCursorExhaustsSpace(t *testing.T) {
	cur := NewCursor(10, 3)
	var got []int
	for {
		s, e, ok := cur.Next()
		if !ok {
			break
		}
		for i := s; i < e; i++ {
			got = append(got, i)
		}
	}
	if len(got) != 10 {
		t.Fatalf("covered %d of 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("index %d got %d", i, v)
		}
	}
	if _, _, ok := cur.Next(); ok {
		t.Fatal("cursor returned work after exhaustion")
	}
}

func TestCursorConcurrentDisjoint(t *testing.T) {
	const n = 1000
	cur := NewCursor(n, 7)
	counts := make([]int32, n)
	ForEachThread(8, func(int) {
		for {
			s, e, ok := cur.Next()
			if !ok {
				return
			}
			for i := s; i < e; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestDynamicZeroAndNegativeN(t *testing.T) {
	ran := false
	Dynamic(-5, 4, 2, func(int, int) { ran = true })
	Dynamic(0, 4, 2, func(int, int) { ran = true })
	Static(0, 2, func(int, int) { ran = true })
	if ran {
		t.Fatal("body ran for empty iteration space")
	}
}

func BenchmarkDynamicOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Dynamic(1024, 16, 4, func(start, end int) {})
	}
}

// powerLawCosts builds a per-item work distribution with heavy head skew:
// the first 2% of items carry ~90% of the total work, like the hub vertices
// of a power-law degree graph (§4.1's motivation for dynamic scheduling).
func powerLawCosts(n int) []int {
	costs := make([]int, n)
	for i := range costs {
		if i < n/50 {
			costs[i] = 2000
		} else {
			costs[i] = 5
		}
	}
	return costs
}

// spin burns deterministic CPU proportional to cost.
func spin(cost int) float64 {
	x := 1.0
	for i := 0; i < cost*20; i++ {
		x += 1.0 / x
	}
	return x
}

var spinSink atomic.Int64

// TestDynamicBalancesPowerLawSkew shows, through the telemetry per-worker
// accounting, that Dynamic spreads a power-law-skewed workload far more
// evenly across workers than Static's contiguous partitioning: the paper's
// argument for OpenMP dynamic scheduling (§4.1), in numbers.
func TestDynamicBalancesPowerLawSkew(t *testing.T) {
	const n, chunk, threads = 2000, 16, 4
	costs := powerLawCosts(n)
	body := func(_, start, end int) {
		var acc float64
		for i := start; i < end; i++ {
			acc += spin(costs[i])
		}
		spinSink.Add(int64(acc))
	}

	dynTel := telemetry.New(0)
	DynamicTel(n, chunk, threads, dynTel, body)
	statTel := telemetry.New(0)
	StaticTel(n, threads, statTel, body)

	dyn := dynTel.Snapshot()
	stat := statTel.Snapshot()
	if got := dyn.Counters[telemetry.CtrSchedRows.Name()]; got != n {
		t.Fatalf("dynamic scheduled %d rows, want %d", got, n)
	}
	if got := stat.Counters[telemetry.CtrSchedRows.Name()]; got != n {
		t.Fatalf("static scheduled %d rows, want %d", got, n)
	}
	if len(stat.Workers) != threads {
		t.Fatalf("static reported %d workers, want %d", len(stat.Workers), threads)
	}
	dynImb, statImb := dyn.BusyImbalance(), stat.BusyImbalance()
	t.Logf("busy imbalance (max/mean): dynamic=%.2f static=%.2f", dynImb, statImb)
	// All heavy items sit in worker 0's static range, so its busy time is
	// ~4x the mean; dynamic workers keep claiming chunks until the work
	// runs out and should land well under that.
	if statImb < 1.5 {
		t.Fatalf("static imbalance %.2f unexpectedly low; skew not exercised", statImb)
	}
	if dynImb >= statImb {
		t.Fatalf("dynamic busy imbalance %.2f not better than static %.2f", dynImb, statImb)
	}
}

// TestDynamicTelAccountsChunksAndRows checks the per-worker accounting sums
// match the iteration space exactly.
func TestDynamicTelAccountsChunksAndRows(t *testing.T) {
	tel := telemetry.New(0)
	const n, chunk = 103, 10
	DynamicTel(n, chunk, 3, tel, func(worker, start, end int) {})
	snap := tel.Snapshot()
	var rows, chunks int64
	for _, w := range snap.Workers {
		rows += w.Rows
		chunks += w.Chunks
	}
	if rows != n {
		t.Fatalf("worker rows sum %d, want %d", rows, n)
	}
	wantChunks := int64((n + chunk - 1) / chunk)
	if chunks != wantChunks {
		t.Fatalf("worker chunks sum %d, want %d", chunks, wantChunks)
	}
	if snap.Counters[telemetry.CtrSchedChunks.Name()] != wantChunks {
		t.Fatalf("chunk counter %d, want %d", snap.Counters[telemetry.CtrSchedChunks.Name()], wantChunks)
	}
}

// TestTelVariantsMatchPlain verifies the telemetry wrappers don't change
// scheduling semantics: every index still visited exactly once.
func TestTelVariantsMatchPlain(t *testing.T) {
	for _, tc := range []struct{ n, chunk, threads int }{
		{7, 3, 2}, {100, 7, 4}, {64, 8, 8},
	} {
		counts := make([]int32, tc.n)
		DynamicTel(tc.n, tc.chunk, tc.threads, telemetry.New(0), func(_, start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("DynamicTel n=%d: index %d visited %d times", tc.n, i, c)
			}
		}
		counts = make([]int32, tc.n)
		StaticTel(tc.n, tc.threads, telemetry.New(0), func(_, start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("StaticTel n=%d: index %d visited %d times", tc.n, i, c)
			}
		}
	}
}
