package sched

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"graphite/internal/telemetry"
)

// WorkerError is a panic recovered inside a scheduler worker, carrying
// enough context to diagnose the failing workload without crashing the
// process: which worker died, which chunk of the iteration space it was
// executing, the recovered value, and the worker's stack at the point of
// the panic. The first panicking worker wins; the others drain at the next
// chunk boundary.
type WorkerError struct {
	// Worker is the panicking worker's id.
	Worker int
	// Start, End bound the chunk the worker was executing (half-open).
	Start, End int
	// Recovered is the value recover() returned.
	Recovered any
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

// Error implements error.
func (e *WorkerError) Error() string {
	return fmt.Sprintf("sched: worker %d panicked on chunk [%d,%d): %v", e.Worker, e.Start, e.End, e.Recovered)
}

// ctxDone returns ctx's done channel, or nil when ctx is nil or can never
// be cancelled (context.Background / context.TODO). A nil channel removes
// every cancellation branch from the workers, so the uncancellable fast
// path pays nothing per chunk beyond the panic-stop flag.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// DynamicCtx is Dynamic with cooperative cancellation and panic
// containment: workers observe ctx at chunk boundaries (chunk granularity
// bounds cancellation latency) and a panic in any worker is captured into a
// *WorkerError instead of killing the process. It returns the first
// worker's *WorkerError, ctx.Err() when cancelled, or nil.
func DynamicCtx(ctx context.Context, n, chunk, threads int, body func(start, end int)) error {
	return DynamicTelCtx(ctx, n, chunk, threads, nil, func(_, start, end int) { body(start, end) })
}

// DynamicTelCtx is the scheduler's dynamic core: DynamicTel plus
// cancellation and panic containment. Every other Dynamic entry point is a
// thin wrapper around it. Recovered panics are counted on tel's
// panics-recovered counter.
func DynamicTelCtx(ctx context.Context, n, chunk, threads int, tel *telemetry.Sink, body func(worker, start, end int)) error {
	if n <= 0 {
		return ctxErr(ctx)
	}
	if chunk <= 0 {
		chunk = 1
	}
	if threads <= 0 {
		threads = DefaultThreads()
	}
	// Never spawn more workers than there are chunks to claim: a worker
	// beyond ceil(n/chunk) would only bump the cursor and exit.
	if maxWorkers := (n + chunk - 1) / chunk; threads > maxWorkers {
		threads = maxWorkers
	}
	run := func(worker, start, end int) {
		if tel.Enabled() {
			t0 := time.Now()
			body(worker, start, end)
			tel.WorkerClaim(worker, 1, int64(end-start), time.Since(t0))
			tel.Add(telemetry.CtrSchedChunks, 1)
			tel.Add(telemetry.CtrSchedRows, int64(end-start))
			return
		}
		body(worker, start, end)
	}

	done := ctxDone(ctx)
	var cursor atomic.Int64
	g := newContainGroup(tel)
	worker := func(id int) {
		cs, ce := -1, -1
		defer g.capture(id, &cs, &ce)
		for !g.stopped() {
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			start := int(cursor.Add(int64(chunk))) - chunk
			if start >= n {
				return
			}
			end := start + chunk
			if end > n {
				end = n
			}
			cs, ce = start, end
			run(id, start, end)
		}
	}
	if threads == 1 {
		g.wg.Add(1)
		worker(0)
	} else {
		g.wg.Add(threads)
		for t := 0; t < threads; t++ {
			go worker(t)
		}
	}
	return g.wait(ctx)
}

// StaticCtx is Static with panic containment and a cancellation check
// before each worker starts its range. Static hands each worker one
// contiguous block, so a cancellation arriving mid-block is only observed
// once the block completes — use DynamicCtx when cancellation latency
// matters.
func StaticCtx(ctx context.Context, n, threads int, body func(start, end int)) error {
	return StaticTelCtx(ctx, n, threads, nil, func(_, start, end int) { body(start, end) })
}

// StaticTelCtx is the static-partitioning core: StaticTel plus cancellation
// and panic containment.
func StaticTelCtx(ctx context.Context, n, threads int, tel *telemetry.Sink, body func(worker, start, end int)) error {
	if n <= 0 {
		return ctxErr(ctx)
	}
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if threads > n {
		threads = n
	}
	run := func(worker, start, end int) {
		if tel.Enabled() {
			t0 := time.Now()
			body(worker, start, end)
			tel.WorkerClaim(worker, 1, int64(end-start), time.Since(t0))
			tel.Add(telemetry.CtrSchedChunks, 1)
			tel.Add(telemetry.CtrSchedRows, int64(end-start))
			return
		}
		body(worker, start, end)
	}

	done := ctxDone(ctx)
	per := (n + threads - 1) / threads
	g := newContainGroup(tel)
	worker := func(id, s, e int) {
		cs, ce := s, e
		defer g.capture(id, &cs, &ce)
		if g.stopped() || s >= e {
			return
		}
		if done != nil {
			select {
			case <-done:
				return
			default:
			}
		}
		run(id, s, e)
	}
	if threads == 1 {
		g.wg.Add(1)
		worker(0, 0, n)
	} else {
		g.wg.Add(threads)
		for t := 0; t < threads; t++ {
			start := t * per
			end := start + per
			if end > n {
				end = n
			}
			go worker(t, start, end)
		}
	}
	return g.wait(ctx)
}

// ForEachThreadCtx is ForEachThread with panic containment: body(thread)
// runs once per worker thread, a panic in any body is captured into a
// *WorkerError, and ctx is checked before each body starts. Bodies that
// loop over a Cursor should build it with NewCursorCtx so cancellation is
// also observed at chunk boundaries inside the loop.
func ForEachThreadCtx(ctx context.Context, threads int, body func(thread int)) error {
	return ForEachThreadTelCtx(ctx, threads, nil, body)
}

// ForEachThreadTelCtx is ForEachThreadCtx counting recovered panics on tel.
func ForEachThreadTelCtx(ctx context.Context, threads int, tel *telemetry.Sink, body func(thread int)) error {
	if threads <= 0 {
		threads = DefaultThreads()
	}
	done := ctxDone(ctx)
	g := newContainGroup(tel)
	worker := func(id int) {
		cs, ce := -1, -1
		defer g.capture(id, &cs, &ce)
		if g.stopped() {
			return
		}
		if done != nil {
			select {
			case <-done:
				return
			default:
			}
		}
		body(id)
	}
	if threads == 1 {
		g.wg.Add(1)
		worker(0)
	} else {
		g.wg.Add(threads)
		for t := 0; t < threads; t++ {
			go worker(t)
		}
	}
	return g.wait(ctx)
}

// containGroup coordinates a set of workers that contain panics: the first
// recovered panic is kept as a *WorkerError, and a stop flag drains the
// remaining workers at their next chunk boundary.
type containGroup struct {
	wg   sync.WaitGroup
	tel  *telemetry.Sink
	stop atomic.Bool
	once sync.Once
	werr *WorkerError
}

func newContainGroup(tel *telemetry.Sink) *containGroup {
	return &containGroup{tel: tel}
}

// stopped reports whether a worker has panicked; the others bail out at the
// next chunk boundary. One atomic load per chunk — nothing per row.
func (g *containGroup) stopped() bool { return g.stop.Load() }

// capture is each worker's deferred recover handler. cs/ce point at the
// worker's current chunk bounds so the error reports where it died.
func (g *containGroup) capture(worker int, cs, ce *int) {
	if r := recover(); r != nil {
		g.once.Do(func() {
			g.werr = &WorkerError{Worker: worker, Start: *cs, End: *ce, Recovered: r, Stack: debug.Stack()}
		})
		g.stop.Store(true)
		g.tel.Inc(telemetry.CtrPanicsRecovered)
	}
	g.wg.Done()
}

// wait blocks until all workers finish and returns the first worker panic,
// else the context error, else nil. The WaitGroup orders the werr write
// before the read.
func (g *containGroup) wait(ctx context.Context) error {
	g.wg.Wait()
	if g.werr != nil {
		return g.werr
	}
	return ctxErr(ctx)
}

// ctxErr is ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// NewCursorCtx returns a cursor over [0, n) whose Next additionally
// observes ctx: once ctx is cancelled, Next reports exhaustion, so worker
// loops drain at chunk granularity. A background context adds a single nil
// check per claim.
func NewCursorCtx(ctx context.Context, n, chunk int) *Cursor {
	c := NewCursor(n, chunk)
	c.done = ctxDone(ctx)
	return c
}
