package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"graphite/internal/faultinject"
	"graphite/internal/telemetry"
)

// fake clock base for shedder unit tests: one hour in the future so the
// controller's internal timestamps can never collide with the real clock
// used by the pipeline.
func futureBase() time.Time { return time.Now().Add(time.Hour) }

// TestShedderControlLaw drives the CoDel adaptation with an injected
// clock: sojourn must stay above target for a full interval before the
// first shed, rejections are spaced on the interval/sqrt(count) schedule,
// and one observation under target exits the shedding state.
func TestShedderControlLaw(t *testing.T) {
	const (
		target   = 50 * time.Millisecond
		interval = 100 * time.Millisecond
	)
	sh := newShedder(target, interval, 2)
	base := futureBase()

	// Below target: never sheds.
	sh.observe(target/4, base)
	if sh.shouldShed(base) {
		t.Fatal("shed below target")
	}
	// Above target, but not yet for a full interval: still admitting.
	sh.observe(2*target, base)
	if sh.shouldShed(base.Add(interval / 2)) {
		t.Fatal("shed before a full interval above target")
	}
	sh.observe(2*target, base.Add(interval/2))
	if sh.isShedding() {
		t.Fatal("entered shedding state early")
	}
	// A full interval above target: shedding starts, first admission drops.
	sh.observe(2*target, base.Add(interval))
	if !sh.isShedding() {
		t.Fatal("not shedding after a full interval above target")
	}
	now := base.Add(interval)
	if !sh.shouldShed(now) {
		t.Fatal("first admission after entering shedding was not dropped")
	}
	// Drops are spaced: an admission right behind the first is let through,
	// one after the CoDel gap is dropped.
	if sh.shouldShed(now.Add(time.Millisecond)) {
		t.Fatal("back-to-back admissions both dropped; drop spacing broken")
	}
	if !sh.shouldShed(now.Add(interval)) {
		t.Fatal("admission after a full drop gap was not dropped")
	}
	// One observation under target exits shedding immediately.
	sh.observe(target/4, now.Add(2*interval))
	if sh.isShedding() {
		t.Fatal("still shedding after sojourn dropped below target")
	}
	if sh.shouldShed(now.Add(3 * interval)) {
		t.Fatal("shed after exiting the shedding state")
	}
}

// TestShedderLadderHysteresis pins the degradation ladder's movement: one
// level per interval up while above target, and recovery only after a full
// interval below target/2 — sojourn hovering between target/2 and target
// holds the level (no flapping on the boundary).
func TestShedderLadderHysteresis(t *testing.T) {
	const (
		target   = 50 * time.Millisecond
		interval = 100 * time.Millisecond
	)
	sh := newShedder(target, interval, 2)
	base := futureBase()

	sh.observe(2*target, base)
	sh.observe(2*target, base.Add(interval)) // level 1
	if lvl := sh.degradeLevel(); lvl != 1 {
		t.Fatalf("level after one interval above target = %d, want 1", lvl)
	}
	// A burst of observations inside the same interval must not jump levels.
	for i := 0; i < 10; i++ {
		sh.observe(2*target, base.Add(interval+time.Duration(i)*time.Millisecond))
	}
	if lvl := sh.degradeLevel(); lvl != 1 {
		t.Fatalf("level after burst within one interval = %d, want 1", lvl)
	}
	sh.observe(2*target, base.Add(2*interval+time.Millisecond)) // level 2
	if lvl := sh.degradeLevel(); lvl != 2 {
		t.Fatalf("level after second interval = %d, want 2", lvl)
	}
	// Ladder is capped at its highest level.
	sh.observe(2*target, base.Add(4*interval))
	if lvl := sh.degradeLevel(); lvl != 2 {
		t.Fatalf("level exceeded ladder: %d", lvl)
	}

	// Sojourn in (target/2, target): out of the shedding state but NOT
	// recovering — this is the hysteresis band.
	rec := base.Add(5 * interval)
	for i := 0; i < 5; i++ {
		sh.observe(3*target/4, rec.Add(time.Duration(i)*interval))
	}
	if lvl := sh.degradeLevel(); lvl != 2 {
		t.Fatalf("level recovered inside the hysteresis band: %d", lvl)
	}
	// Below target/2 for a full interval: one step down per interval.
	deep := rec.Add(6 * interval)
	sh.observe(target/4, deep)
	if lvl := sh.degradeLevel(); lvl != 2 {
		t.Fatalf("level stepped down without a full interval below target/2: %d", lvl)
	}
	sh.observe(target/4, deep.Add(interval))
	if lvl := sh.degradeLevel(); lvl != 1 {
		t.Fatalf("level after one recovery interval = %d, want 1", lvl)
	}
	sh.observe(target/4, deep.Add(2*interval))
	if lvl := sh.degradeLevel(); lvl != 0 {
		t.Fatalf("level after two recovery intervals = %d, want 0", lvl)
	}
}

func TestScaleFanouts(t *testing.T) {
	got := scaleFanouts([]int{8, 4, 1}, 0.25)
	for i, want := range []int{2, 1, 1} {
		if got[i] != want {
			t.Fatalf("scaleFanouts[%d] = %d, want %d", i, got[i], want)
		}
	}
	// Full neighbourhoods (<= 0) stay exact: degraded mode must not invent
	// sampling where the operator asked for exact inference.
	got = scaleFanouts([]int{-1, 0, 10}, 0.5)
	for i, want := range []int{-1, 0, 5} {
		if got[i] != want {
			t.Fatalf("scaleFanouts[%d] = %d, want %d", i, got[i], want)
		}
	}
	// Fraction 1 is the identity (and must not copy).
	in := []int{3, 3}
	if out := scaleFanouts(in, 1.0); &out[0] != &in[0] {
		t.Fatal("frac=1 copied the fanout slice")
	}
}

// TestBreakerStateMachine covers every legal edge with an injected clock:
// trip on consecutive failures, fail fast while open, half-open probe on
// cadence, close on probe success, re-open on probe failure.
func TestBreakerStateMachine(t *testing.T) {
	const probe = 100 * time.Millisecond
	trips := 0
	b := newBreaker(3, probe, func() { trips++ })
	base := futureBase()

	// Two failures then a success: the consecutive count resets.
	b.onFailure(base)
	b.onFailure(base)
	b.onSuccess(base)
	b.onFailure(base)
	b.onFailure(base)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after interrupted failure run = %v, want closed", st)
	}
	// Third consecutive failure trips.
	if !b.onFailure(base) {
		t.Fatal("threshold-th consecutive failure did not trip")
	}
	if st := b.State(); st != BreakerOpen || trips != 1 {
		t.Fatalf("state = %v trips = %d, want open/1", st, trips)
	}
	// Open: fail fast until the probe cadence elapses.
	if b.allow(base.Add(probe / 2)) {
		t.Fatal("open breaker admitted before the probe cadence")
	}
	if ra := b.retryIn(base.Add(probe / 2)); ra <= 0 || ra > probe {
		t.Fatalf("retryIn while open = %v, want (0, %v]", ra, probe)
	}
	// Cadence elapsed: the next admission is the half-open probe.
	if !b.allow(base.Add(probe)) {
		t.Fatal("probe admission refused after the cadence")
	}
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", st)
	}
	// Probe failure: straight back to open, and that counts as a trip.
	if !b.onFailure(base.Add(probe)) {
		t.Fatal("failed probe did not re-trip")
	}
	if st := b.State(); st != BreakerOpen || trips != 2 {
		t.Fatalf("state = %v trips = %d, want open/2", st, trips)
	}
	// Second probe succeeds: closed.
	if !b.allow(base.Add(2 * probe)) {
		t.Fatal("second probe refused")
	}
	b.onSuccess(base.Add(2 * probe))
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", st)
	}

	// The recorded history must be chain-consistent and every edge legal.
	trs := b.Transitions()
	want := []BreakerTransition{
		{From: BreakerClosed, To: BreakerOpen},
		{From: BreakerOpen, To: BreakerHalfOpen},
		{From: BreakerHalfOpen, To: BreakerOpen},
		{From: BreakerOpen, To: BreakerHalfOpen},
		{From: BreakerHalfOpen, To: BreakerClosed},
	}
	if len(trs) != len(want) {
		t.Fatalf("history has %d transitions, want %d: %+v", len(trs), len(want), trs)
	}
	for i, tr := range trs {
		if tr.From != want[i].From || tr.To != want[i].To {
			t.Fatalf("transition %d = %v→%v, want %v→%v", i, tr.From, tr.To, want[i].From, want[i].To)
		}
		if !LegalBreakerTransition(tr) {
			t.Fatalf("transition %d (%v→%v) reported illegal", i, tr.From, tr.To)
		}
		if i > 0 && trs[i-1].To != tr.From {
			t.Fatalf("history not chain-consistent at %d", i)
		}
	}
	if LegalBreakerTransition(BreakerTransition{From: BreakerClosed, To: BreakerHalfOpen}) {
		t.Fatal("closed→half-open accepted as legal")
	}
	if LegalBreakerTransition(BreakerTransition{From: BreakerOpen, To: BreakerClosed}) {
		t.Fatal("open→closed accepted as legal")
	}

	// Nil breaker (disabled) is fully inert.
	var nb *breaker
	if !nb.allow(base) || nb.onFailure(base) || nb.State() != BreakerClosed || nb.Transitions() != nil {
		t.Fatal("nil breaker is not inert")
	}
}

func TestRetryBudgetTokenBucket(t *testing.T) {
	rb := newRetryBudget(0.1)
	// Starts with exactly one token.
	if !rb.spend() {
		t.Fatal("initial token missing")
	}
	if rb.spend() {
		t.Fatal("second spend granted with an empty bucket")
	}
	// About ten successes earn one retry at a 10% ratio (eleven here:
	// binary floating point leaves 10×0.1 a hair under 1.0, and the budget
	// is a rate limiter, not an accountant).
	for i := 0; i < 11; i++ {
		rb.earn()
	}
	if !rb.spend() {
		t.Fatal("earned token not spendable")
	}
	if rb.spend() {
		t.Fatal("over-spend granted")
	}
	// The bucket is capped.
	for i := 0; i < 1000; i++ {
		rb.earn()
	}
	spent := 0
	for rb.spend() {
		spent++
	}
	if spent != 10 {
		t.Fatalf("bucket held %d tokens after saturation, want cap 10", spent)
	}
	var nilRB *retryBudget
	nilRB.earn()
	if nilRB.spend() {
		t.Fatal("nil retry budget granted a retry")
	}
}

// forceShedding puts a live server's controller into the shedding state
// with timestamps in the past, so the very next real admission is dropped.
func forceShedding(s *Server) {
	past := time.Now().Add(-time.Hour)
	s.shed.observe(2*s.cfg.ShedTarget, past)
	s.shed.observe(2*s.cfg.ShedTarget, past.Add(s.cfg.ShedInterval))
}

// forceDegraded escalates a live server's ladder to its top level using
// future timestamps: the drop schedule lands in the future (so admissions
// still pass) while the level sticks.
func forceDegraded(s *Server) {
	future := time.Now().Add(time.Hour)
	s.shed.observe(2*s.cfg.ShedTarget, future)
	for lvl := 1; lvl < len(s.ladder); lvl++ {
		s.shed.observe(2*s.cfg.ShedTarget, future.Add(time.Duration(lvl)*s.cfg.ShedInterval+time.Millisecond))
	}
}

// TestShedReturnsErrShed proves a shedding controller turns admissions
// away with ErrShed and the shed counter moves — while the queue is
// completely empty (latency-based, not occupancy-based, rejection).
func TestShedReturnsErrShed(t *testing.T) {
	cfg := testConfig(t)
	s := newTestServer(t, cfg)
	forceShedding(s)
	if !s.Shedding() {
		t.Fatal("controller not in shedding state")
	}
	_, err := s.Infer(context.Background(), []int32{1})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if n := s.Tel().Counter(telemetry.CtrServeShed); n != 1 {
		t.Fatalf("shed counter = %d, want 1", n)
	}
	if ra := s.RetryAfter(err); ra <= 0 || ra > 10*time.Second {
		t.Fatalf("RetryAfter(ErrShed) = %v, want (0, 10s]", ra)
	}
}

// TestSheddingDisabledIsSeedFIFO proves ShedTarget < 0 restores the
// pre-controller behaviour: no shedder is constructed, requests are never
// shed, responses always report full fidelity, and the accessors stay
// nil-safe.
func TestSheddingDisabledIsSeedFIFO(t *testing.T) {
	cfg := testConfig(t)
	cfg.ShedTarget = -1
	s := newTestServer(t, cfg)
	if s.shed != nil {
		t.Fatal("shedder constructed despite ShedTarget < 0")
	}
	if s.Shedding() || s.DegradeLevel() != 0 {
		t.Fatal("disabled controller reports activity")
	}
	res, err := s.Infer(context.Background(), []int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradeLevel != 0 || res.FanoutFrac != 1.0 {
		t.Fatalf("disabled controller degraded: level %d frac %g", res.DegradeLevel, res.FanoutFrac)
	}
}

// TestDegradedModeServing forces the ladder to its top level and proves a
// batch sealed in that state executes at the reduced fanout fraction,
// stamps the level into the Result, and bumps the degraded counter.
func TestDegradedModeServing(t *testing.T) {
	cfg := testConfig(t)
	cfg.Fanouts = []int{8, 8}
	cfg.Deadline = 10 * time.Second
	s := newTestServer(t, cfg)
	forceDegraded(s)
	if lvl := s.DegradeLevel(); lvl != 2 {
		t.Fatalf("forced level = %d, want 2", lvl)
	}
	res, err := s.Infer(context.Background(), []int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradeLevel != 2 {
		t.Fatalf("Result.DegradeLevel = %d, want 2", res.DegradeLevel)
	}
	if res.FanoutFrac != 0.25 {
		t.Fatalf("Result.FanoutFrac = %g, want 0.25", res.FanoutFrac)
	}
	if res.Logits == nil || res.Logits.Rows != 3 {
		t.Fatal("degraded batch did not produce logits")
	}
	if n := s.Tel().Counter(telemetry.CtrServeDegraded); n == 0 {
		t.Fatal("degraded counter not incremented")
	}
}

// TestBreakerTripProbeRecovery drives the breaker through a full outage
// via injected execution faults: organic failures trip it, admissions then
// fail fast with ErrBreakerOpen, and after the probe cadence a clean
// execution closes it. The transition history must be exactly the legal
// closed→open→half-open→closed walk.
func TestBreakerTripProbeRecovery(t *testing.T) {
	inj := faultinject.New(1)
	inj.SetProbability(faultinject.SiteServeExecute, 1.0)
	cfg := testConfig(t)
	cfg.Inject = inj
	cfg.BreakerThreshold = 2
	cfg.BreakerProbe = 50 * time.Millisecond
	cfg.RetryBudget = -1 // isolate the breaker from retry smoothing
	cfg.Deadline = 10 * time.Second
	s := newTestServer(t, cfg)

	// Two organic failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := s.Infer(context.Background(), []int32{1}); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("request %d: err = %v, want injected fault", i, err)
		}
	}
	if st := s.BreakerState(); st != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 2, st)
	}
	if n := s.Tel().Counter(telemetry.CtrServeBreakerTrips); n != 1 {
		t.Fatalf("trip counter = %d, want 1", n)
	}
	// Open: admissions fail fast with the sentinel and a retry hint.
	_, err := s.Infer(context.Background(), []int32{1})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err while open = %v, want ErrBreakerOpen", err)
	}
	if ra := s.RetryAfter(err); ra <= 0 || ra > cfg.BreakerProbe {
		t.Fatalf("RetryAfter while open = %v, want (0, %v]", ra, cfg.BreakerProbe)
	}

	// Heal the snapshot, wait out the probe cadence, and recover.
	inj.SetProbability(faultinject.SiteServeExecute, 0)
	time.Sleep(cfg.BreakerProbe + 20*time.Millisecond)
	if _, err := s.Infer(context.Background(), []int32{1}); err != nil {
		t.Fatalf("probe request failed: %v", err)
	}
	if st := s.BreakerState(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}

	trs := s.BreakerTransitions()
	want := []BreakerTransition{
		{From: BreakerClosed, To: BreakerOpen},
		{From: BreakerOpen, To: BreakerHalfOpen},
		{From: BreakerHalfOpen, To: BreakerClosed},
	}
	if len(trs) != len(want) {
		t.Fatalf("history = %+v, want 3 transitions", trs)
	}
	for i, tr := range trs {
		if tr.From != want[i].From || tr.To != want[i].To || !LegalBreakerTransition(tr) {
			t.Fatalf("transition %d = %v→%v, want %v→%v", i, tr.From, tr.To, want[i].From, want[i].To)
		}
	}
}

// TestRetryBudgetSmoothsTransient proves a single injected execution fault
// is absorbed by the budgeted retry: the caller sees success, one retry is
// counted, and the breaker never moves.
func TestRetryBudgetSmoothsTransient(t *testing.T) {
	inj := faultinject.New(1)
	inj.FailAt(faultinject.SiteServeExecute, 1)
	cfg := testConfig(t)
	cfg.Inject = inj
	cfg.Deadline = 10 * time.Second
	s := newTestServer(t, cfg)

	res, err := s.Infer(context.Background(), []int32{1, 2})
	if err != nil {
		t.Fatalf("transient fault leaked to the caller: %v", err)
	}
	if res.Logits.Rows != 2 {
		t.Fatal("retried batch produced no logits")
	}
	if n := s.Tel().Counter(telemetry.CtrServeRetries); n != 1 {
		t.Fatalf("retry counter = %d, want 1", n)
	}
	if st := s.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker moved on a retried transient: %v", st)
	}
	if got := inj.Calls(faultinject.SiteServeExecute); got != 2 {
		t.Fatalf("execute site reached %d times, want 2 (attempt + retry)", got)
	}
}

// TestRetryAfterOnRejections is the satellite contract: every 429/503
// carries both a Retry-After header (whole seconds, >= 1) and a
// retry_after_ms envelope field within sane bounds.
func TestRetryAfterOnRejections(t *testing.T) {
	inj := faultinject.New(1)
	cfg := testConfig(t)
	cfg.Inject = inj
	cfg.BreakerThreshold = 1
	cfg.RetryBudget = -1
	cfg.Deadline = 10 * time.Second
	s := newTestServer(t, cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	post := func() (*http.Response, apiError) {
		t.Helper()
		resp, err := http.Post(base+"/v1/infer", "application/json",
			strings.NewReader(`{"vertices":[1]}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var ae apiError
		if resp.StatusCode != http.StatusOK {
			if err := json.Unmarshal(body, &ae); err != nil {
				t.Fatalf("malformed error envelope %s: %v", body, err)
			}
		}
		return resp, ae
	}
	checkRetryHints := func(resp *http.Response, ae apiError) {
		t.Helper()
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Fatalf("%d response missing Retry-After header", resp.StatusCode)
		}
		secs, err := strconv.Atoi(ra)
		if err != nil || secs < 1 || secs > 10 {
			t.Fatalf("Retry-After = %q, want integer seconds in [1, 10]", ra)
		}
		if ae.Error.RetryAfterMS <= 0 || ae.Error.RetryAfterMS > 10_000 {
			t.Fatalf("retry_after_ms = %g, want (0, 10000]", ae.Error.RetryAfterMS)
		}
	}

	// 429 via the shedding controller.
	forceShedding(s)
	resp, ae := post()
	if resp.StatusCode != http.StatusTooManyRequests || ae.Error.Code != "overloaded" {
		t.Fatalf("shed response = %d %q, want 429 overloaded", resp.StatusCode, ae.Error.Code)
	}
	checkRetryHints(resp, ae)
	// Clear the shedding state so the breaker path below is reachable.
	s.shed.observe(0, time.Now())

	// 503 via the breaker: one injected failure trips it (threshold 1).
	inj.FailAt(faultinject.SiteServeExecute, inj.Calls(faultinject.SiteServeExecute)+1)
	if resp, _ := post(); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("tripping request = %d, want 500", resp.StatusCode)
	}
	resp, ae = post()
	if resp.StatusCode != http.StatusServiceUnavailable || ae.Error.Code != "breaker_open" {
		t.Fatalf("breaker response = %d %q, want 503 breaker_open", resp.StatusCode, ae.Error.Code)
	}
	checkRetryHints(resp, ae)
}

// TestLingerCreditsQueueWait is the regression test for the linger-timer
// bug: a request that waited in the admission queue behind a wedged
// batcher used to restart a full MaxLinger window on admission, making its
// time-to-seal up to 2×MaxLinger. With the credit, a request already older
// than MaxLinger seals immediately.
func TestLingerCreditsQueueWait(t *testing.T) {
	const linger = 600 * time.Millisecond
	gate := make(chan struct{})
	cfg := testConfig(t)
	cfg.MaxBatch = 2
	cfg.MaxLinger = linger
	cfg.Workers = 1 // batches channel capacity 1
	cfg.QueueCap = 8
	cfg.Deadline = 30 * time.Second
	cfg.testGate = gate
	s := newTestServer(t, cfg)

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(time.Millisecond)
		}
	}
	results := make(chan error, 4)
	send := func(ids []int32) {
		go func() {
			_, err := s.Infer(context.Background(), ids)
			results <- err
		}()
	}

	// Wedge the pipeline: A executes (blocked on the gate), B fills the
	// batches channel, C leaves the batcher blocked on its send. All three
	// seal by size (MaxBatch=2).
	send([]int32{0, 1})
	waitFor("batch A executing", func() bool { return s.inflightBatches.Load() == 1 })
	send([]int32{2, 3})
	waitFor("batch B parked in the batches channel", func() bool { return len(s.batches) == 1 })
	send([]int32{4, 5})
	waitFor("batch C consumed from the queue", func() bool { return len(s.queue) == 0 })
	time.Sleep(20 * time.Millisecond) // let the batcher reach the blocked send

	// D is a partial batch (1 vertex < MaxBatch): it can only seal via the
	// linger timer. It sits in the queue while the batcher is wedged.
	send([]int32{6})
	waitFor("request D parked in the queue", func() bool { return len(s.queue) == 1 })

	// Age D past the full linger window, then release the pipeline.
	time.Sleep(linger + linger/2)
	released := time.Now()
	close(gate)
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
	}
	// With the credit, D's window is already spent at admission: it seals
	// immediately. Without it, D restarts a full window and the drain takes
	// over MaxLinger.
	if elapsed := time.Since(released); elapsed > linger/2 {
		t.Fatalf("drain after release took %v; request D restarted a full %v linger window", elapsed, linger)
	}
}

// TestLingerExpiryNotLost paces lone partial-batch requests so each one
// arrives right as the previous linger window expires — the seal/re-arm
// race window. Every request must complete in bounded time; a lost timer
// would strand one until its deadline.
func TestLingerExpiryNotLost(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBatch = 1000 // only the linger timer can seal
	cfg.MaxLinger = 10 * time.Millisecond
	cfg.Deadline = 30 * time.Second
	s := newTestServer(t, cfg)

	for i := 0; i < 20; i++ {
		start := time.Now()
		if _, err := s.Infer(context.Background(), []int32{int32(i)}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if took := time.Since(start); took > 20*cfg.MaxLinger {
			t.Fatalf("request %d took %v, want bounded by the linger window", i, took)
		}
		// Land the next arrival on the expiry boundary.
		time.Sleep(cfg.MaxLinger)
	}
}

// TestSealAndRespondFaultsNeverDropWaiters arms the seal and response-
// write sites and proves every member still receives exactly one response
// (an error envelope, not silence).
func TestSealAndRespondFaultsNeverDropWaiters(t *testing.T) {
	inj := faultinject.New(1)
	inj.FailAt(faultinject.SiteServeSeal, 1)
	inj.FailAt(faultinject.SiteServeRespond, 1)
	cfg := testConfig(t)
	cfg.Inject = inj
	cfg.Deadline = 5 * time.Second
	s := newTestServer(t, cfg)

	// First request's batch dies at seal: the error must come back well
	// before the deadline (nothing waits on a dead batch).
	start := time.Now()
	_, err := s.Infer(context.Background(), []int32{1})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("seal fault: err = %v, want injected", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("seal fault response was not prompt; waiter likely timed out instead")
	}
	// Second request's batch executes but its response write faults: still
	// exactly one (error) response.
	if _, err := s.Infer(context.Background(), []int32{2}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("respond fault: err = %v, want injected", err)
	}
	// Third request is past both armed ordinals and must succeed.
	if _, err := s.Infer(context.Background(), []int32{3}); err != nil {
		t.Fatalf("request after faults: %v", err)
	}
}

// TestSwapFaultLeavesSnapshotServing arms the swap site and proves an
// injected swap failure leaves the old version serving.
func TestSwapFaultLeavesSnapshotServing(t *testing.T) {
	inj := faultinject.New(1)
	inj.FailAt(faultinject.SiteServeSwap, 1)
	cfg := testConfig(t)
	cfg.Inject = inj
	s := newTestServer(t, cfg)

	ckpt := checkpointBytes(t, cfg.Net)
	if _, err := s.Swap(readerOf(ckpt)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("swap fault: err = %v, want injected", err)
	}
	if v := s.Snapshot().Version; v != 1 {
		t.Fatalf("failed swap moved the snapshot to v%d", v)
	}
	// The site is one-shot: the next swap lands.
	if v, err := s.Swap(readerOf(ckpt)); err != nil || v != 2 {
		t.Fatalf("post-fault swap = v%d, %v", v, err)
	}
}

func readerOf(b []byte) io.Reader { return strings.NewReader(string(b)) }

// TestWedgedQueueStillSheds proves the controller and the queue-full path
// compose: with the pipeline wedged AND the controller shedding, requests
// bounce with one of the two 429-class sentinels and nothing is lost.
func TestWedgedQueueStillSheds(t *testing.T) {
	gate := make(chan struct{})
	cfg := testConfig(t)
	cfg.MaxBatch = 1
	cfg.QueueCap = 1
	cfg.Workers = 1
	cfg.Deadline = 30 * time.Second
	cfg.testGate = gate
	s := newTestServer(t, cfg)
	forceShedding(s)

	var wg sync.WaitGroup
	sheds, fulls := 0, 0
	var mu sync.Mutex
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := s.Infer(ctx, []int32{int32(i)})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case errors.Is(err, ErrShed):
				sheds++
			case errors.Is(err, ErrQueueFull):
				fulls++
			case err != nil:
				t.Errorf("request %d: unexpected error %v", i, err)
			}
		}(i)
	}
	// Unwedge promptly so admitted requests complete.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if sheds == 0 {
		t.Fatal("shedding controller never fired under a wedged queue")
	}
}
