// Package serve is the multi-tenant inference server: an HTTP front end
// over one shared engine that coalesces concurrent per-vertex requests
// into mini-batches, applies admission control with bounded queueing and
// per-request deadlines, and hot-swaps model snapshots with zero downtime.
//
// The dataflow is a three-stage pipeline:
//
//	Infer callers -> bounded queue -> batcher -> workers
//
// Admission is non-blocking: a full queue rejects immediately (the HTTP
// layer maps that to 429) instead of building an invisible backlog. The
// batcher seals a mini-batch when it reaches Config.MaxBatch vertices or
// when the oldest member has lingered Config.MaxLinger, whichever comes
// first; requests whose deadline expired while queued are rejected before
// dispatch so dead work never reaches the kernels. Workers execute sealed
// batches through gnn.InferVerticesContext under a context carrying the
// batch's latest member deadline.
//
// Model versions are snapshot-isolated: each batch pins the snapshot
// pointer exactly once, so a concurrent Swap never mixes weights within a
// batch — in-flight batches finish on the old version while new batches
// pick up the new one.
//
// This package and internal/obsrv are the only packages allowed to open
// network listeners (enforced by the http-listener lint).
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"graphite/internal/gnn"
	"graphite/internal/graph"
	"graphite/internal/obsrv"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// Sentinel errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull is returned when the admission queue is at capacity
	// (HTTP 429): the caller should back off and retry.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining is returned once shutdown has begun (HTTP 503).
	ErrDraining = errors.New("serve: draining")
	// ErrInvalid wraps request-validation failures (HTTP 400).
	ErrInvalid = errors.New("serve: invalid request")
)

// Defaults applied by NewServer when the corresponding Config field is zero.
const (
	DefaultMaxBatch  = 64
	DefaultMaxLinger = 2 * time.Millisecond
	DefaultQueueCap  = 256
	DefaultWorkers   = 1
	DefaultDeadline  = time.Second
)

// Config describes a serving instance.
type Config struct {
	// Net is the initial model snapshot (version 1). Required.
	Net *gnn.Network
	// Graph is the raw (no self-loop) adjacency served against. Required.
	Graph *graph.CSR
	// X holds one input-feature row per vertex. Required.
	X *tensor.Matrix
	// MaxBatch is the mini-batch size cap in vertices; reaching it seals
	// the pending batch immediately. It also bounds a single request.
	MaxBatch int
	// MaxLinger bounds how long the oldest queued request waits for the
	// batch to fill before a partial batch is dispatched anyway.
	MaxLinger time.Duration
	// QueueCap bounds the admission queue; a full queue rejects with
	// ErrQueueFull rather than queueing unbounded latency.
	QueueCap int
	// Workers is the number of goroutines executing sealed batches.
	Workers int
	// Threads is the kernel thread count per batch (0 = GOMAXPROCS).
	Threads int
	// Fanouts is the per-layer neighbour sampling budget (nil or <= 0
	// entries mean full neighbourhoods, i.e. exact inference).
	Fanouts []int
	// Deadline is applied to requests that carry no deadline of their own.
	Deadline time.Duration
	// Seed drives per-batch sampling rngs (batch id is mixed in).
	Seed int64
	// SLOs are latency objectives exported through the metrics plane.
	SLOs []obsrv.SLO
	// BuildLabels extends graphite_build_info (tests pin it).
	BuildLabels map[string]string
	// testGate, when non-nil, is received from before each batch
	// executes: a test seam for deterministic overload and drain
	// scenarios (close it to release all batches).
	testGate chan struct{}
}

// Result is one answered inference request.
type Result struct {
	// Logits has one row per requested vertex, in request order.
	Logits *tensor.Matrix
	// Version is the model snapshot version the batch executed on.
	Version uint64
	// BatchID identifies the mini-batch this request rode in; requests
	// sharing a BatchID are guaranteed to share a Version.
	BatchID uint64
}

// request is one admitted inference request moving through the pipeline.
type request struct {
	ctx  context.Context
	ids  []int32
	resp chan response
	enq  time.Time
}

type response struct {
	res Result
	err error
}

// Server is the inference server. Create with NewServer, optionally expose
// over HTTP with Start, stop with Shutdown.
type Server struct {
	cfg Config
	tel *telemetry.Sink
	obs *obsrv.Server

	snap   atomic.Pointer[Snapshot]
	swapMu sync.Mutex // serialises Swap version assignment

	queue    chan *request
	batches  chan *batch
	stopc    chan struct{}
	pipeWG   sync.WaitGroup // batcher + workers
	admitMu  sync.Mutex     // guards draining flip vs. reqWG.Add
	reqWG    sync.WaitGroup // in-flight Infer calls
	draining atomic.Bool

	inflightBatches atomic.Int64
	nextBatch       atomic.Uint64

	hs *http.Server
	ln net.Listener
}

// NewServer validates cfg, applies defaults, and starts the batching
// pipeline (but no listener): Infer works immediately, which is how the
// tests drive the pipeline without sockets.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Net == nil || cfg.Graph == nil || cfg.X == nil {
		return nil, fmt.Errorf("serve: Net, Graph and X are required")
	}
	if cfg.X.Rows != cfg.Graph.NumVertices() {
		return nil, fmt.Errorf("serve: %d feature rows for %d vertices", cfg.X.Rows, cfg.Graph.NumVertices())
	}
	if cfg.Net.NumLayers() == 0 {
		return nil, fmt.Errorf("serve: empty network")
	}
	if cfg.Net.Layers[0].In() != cfg.X.Cols {
		return nil, fmt.Errorf("serve: model expects %d input features, graph has %d", cfg.Net.Layers[0].In(), cfg.X.Cols)
	}
	if len(cfg.Fanouts) != 0 && len(cfg.Fanouts) != cfg.Net.NumLayers() {
		return nil, fmt.Errorf("serve: %d fanouts for %d layers", len(cfg.Fanouts), cfg.Net.NumLayers())
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxLinger <= 0 {
		cfg.MaxLinger = DefaultMaxLinger
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = DefaultDeadline
	}

	s := &Server{
		cfg:     cfg,
		tel:     telemetry.New(0),
		queue:   make(chan *request, cfg.QueueCap),
		batches: make(chan *batch, cfg.Workers),
		stopc:   make(chan struct{}),
	}
	s.snap.Store(&Snapshot{Net: cfg.Net, Version: 1})
	s.obs = obsrv.NewServer(obsrv.Options{
		Sink:        s.tel,
		SLOs:        cfg.SLOs,
		BuildLabels: cfg.BuildLabels,
		Gauges:      s.gauges,
		Healthy: func() (bool, string) {
			return true, "serving"
		},
		Ready: func() (bool, string) {
			if s.draining.Load() {
				return false, "draining"
			}
			return true, fmt.Sprintf("snapshot v%d", s.snap.Load().Version)
		},
	})

	s.pipeWG.Add(1)
	//lint:ignore goroutine-recover the batcher is process-lifetime pipeline infrastructure moving requests between channels; batch execution panics are contained in runBatch, and a panic in the coalescing logic itself must surface rather than leave callers waiting forever
	go s.batcher()
	for i := 0; i < cfg.Workers; i++ {
		s.pipeWG.Add(1)
		//lint:ignore goroutine-recover workers delegate to runBatch, which converts panics into per-request errors (and kernel panics are already contained by gnn); the loop shell has nothing left to recover
		go s.worker()
	}
	return s, nil
}

// Tel exposes the server's telemetry sink (the load generator and tests
// read phase histograms and counters from it).
func (s *Server) Tel() *telemetry.Sink { return s.tel }

// Obs exposes the embedded observability plane (events, metrics).
func (s *Server) Obs() *obsrv.Server { return s.obs }

// gauges is the obsrv scrape hook: instantaneous pipeline state.
func (s *Server) gauges() []obsrv.Gauge {
	var draining float64
	if s.draining.Load() {
		draining = 1
	}
	return []obsrv.Gauge{
		{Name: "graphite_serve_queue_depth", Help: "Inference requests waiting in the admission queue.", Value: float64(len(s.queue))},
		{Name: "graphite_serve_queue_capacity", Help: "Admission queue capacity; at depth==capacity new requests are rejected.", Value: float64(cap(s.queue))},
		{Name: "graphite_serve_max_batch_size", Help: "Mini-batch size cap in vertices.", Value: float64(s.cfg.MaxBatch)},
		{Name: "graphite_serve_snapshot_version", Help: "Version of the model snapshot new batches execute on.", Value: float64(s.snap.Load().Version)},
		{Name: "graphite_serve_inflight_batches", Help: "Sealed batches currently executing.", Value: float64(s.inflightBatches.Load())},
		{Name: "graphite_serve_draining", Help: "1 once shutdown has begun and new requests are rejected.", Value: draining},
	}
}

// Infer answers a batch of per-vertex inference requests. It blocks until
// the request's mini-batch completes or ctx expires. A request with no
// deadline gets Config.Deadline. The returned Result carries the snapshot
// version and batch id the request executed under.
func (s *Server) Infer(ctx context.Context, ids []int32) (Result, error) {
	start := time.Now()
	res, err := s.infer(ctx, ids, start)
	s.tel.Observe(telemetry.PhaseServeE2E, time.Since(start))
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		s.tel.Inc(telemetry.CtrServeRejected)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.tel.Inc(telemetry.CtrServeExpired)
	case errors.Is(err, ErrInvalid), errors.Is(err, ErrDraining):
		// Not counted as failures: the server did nothing wrong.
	default:
		s.tel.Inc(telemetry.CtrServeFailed)
	}
	return res, err
}

func (s *Server) infer(ctx context.Context, ids []int32, start time.Time) (Result, error) {
	if len(ids) == 0 {
		return Result{}, fmt.Errorf("%w: empty vertex list", ErrInvalid)
	}
	if len(ids) > s.cfg.MaxBatch {
		return Result{}, fmt.Errorf("%w: %d vertices exceeds max batch %d", ErrInvalid, len(ids), s.cfg.MaxBatch)
	}
	n := int32(s.cfg.Graph.NumVertices())
	for _, v := range ids {
		if v < 0 || v >= n {
			return Result{}, fmt.Errorf("%w: vertex %d out of range [0,%d)", ErrInvalid, v, n)
		}
	}
	if !s.admit() {
		return Result{}, ErrDraining
	}
	defer s.reqWG.Done()
	s.tel.Inc(telemetry.CtrServeRequests)

	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	r := &request{ctx: ctx, ids: ids, resp: make(chan response, 1), enq: start}
	select {
	case s.queue <- r:
	default:
		return Result{}, ErrQueueFull
	}
	select {
	case rp := <-r.resp:
		return rp.res, rp.err
	case <-ctx.Done():
		// The request may still be queued or in flight; the batcher and
		// workers drop expired members and send on the buffered resp
		// channel, so nothing leaks.
		return Result{}, ctx.Err()
	}
}

// admit registers an in-flight request unless shutdown has begun. The
// mutex closes the race between the draining flip and reqWG.Add.
func (s *Server) admit() bool {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.reqWG.Add(1)
	return true
}

// Start binds addr and serves HTTP. The pipeline is already running; this
// only adds the network front end.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.handler()}
	//lint:ignore goroutine-recover the HTTP accept loop is process-lifetime infrastructure; net/http already recovers handler panics, and an accept-loop panic must surface rather than be converted to a WorkerError
	go func() {
		if err := s.hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.obs.Publish(obsrv.Event{Kind: "serve", Status: "error", Detail: err.Error()})
		}
	}()
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains gracefully: new requests are rejected immediately
// (readyz flips first so load balancers stop routing), event streams end,
// in-flight HTTP requests and direct Infer calls complete on their
// original snapshot, then the pipeline stops. Bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.draining.Swap(true)
	s.admitMu.Unlock()
	if already {
		return nil
	}
	// Close /events streams first: they never go idle, so a live stream
	// would otherwise hold http.Server.Shutdown until the ctx deadline.
	obsErr := s.obs.Shutdown(ctx)
	var httpErr error
	if s.hs != nil {
		httpErr = s.hs.Shutdown(ctx)
	}
	s.reqWG.Wait() // direct Infer callers (tests, embedded use)
	close(s.stopc)
	s.pipeWG.Wait()
	if httpErr != nil {
		return httpErr
	}
	return obsErr
}
