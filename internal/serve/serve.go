// Package serve is the multi-tenant inference server: an HTTP front end
// over one shared engine that coalesces concurrent per-vertex requests
// into mini-batches, applies admission control with bounded queueing and
// per-request deadlines, and hot-swaps model snapshots with zero downtime.
//
// The dataflow is a three-stage pipeline:
//
//	Infer callers -> bounded queue -> batcher -> workers
//
// Admission is non-blocking: a full queue rejects immediately (the HTTP
// layer maps that to 429) instead of building an invisible backlog. The
// batcher seals a mini-batch when it reaches Config.MaxBatch vertices or
// when the oldest member has lingered Config.MaxLinger, whichever comes
// first; requests whose deadline expired while queued are rejected before
// dispatch so dead work never reaches the kernels. Workers execute sealed
// batches through gnn.InferVerticesContext under a context carrying the
// batch's latest member deadline.
//
// Model versions are snapshot-isolated: each batch pins the snapshot
// pointer exactly once, so a concurrent Swap never mixes weights within a
// batch — in-flight batches finish on the old version while new batches
// pick up the new one.
//
// This package and internal/obsrv are the only packages allowed to open
// network listeners (enforced by the http-listener lint).
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"graphite/internal/faultinject"
	"graphite/internal/gnn"
	"graphite/internal/graph"
	"graphite/internal/obsrv"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// Sentinel errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull is returned when the admission queue is at capacity
	// (HTTP 429): the caller should back off and retry.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrShed is returned when the adaptive load-shedding controller
	// turns a request away because queue sojourn has been above target
	// for a sustained interval (HTTP 429 + Retry-After). Unlike
	// ErrQueueFull it fires before the queue is physically full — it
	// bounds queueing *latency*, not just queue length.
	ErrShed = errors.New("serve: shedding load")
	// ErrBreakerOpen is returned while the snapshot circuit breaker is
	// open (HTTP 503 + Retry-After): the serving model version is
	// failing and requests fail fast until a probe succeeds.
	ErrBreakerOpen = errors.New("serve: snapshot circuit breaker open")
	// ErrDraining is returned once shutdown has begun (HTTP 503).
	ErrDraining = errors.New("serve: draining")
	// ErrInvalid wraps request-validation failures (HTTP 400).
	ErrInvalid = errors.New("serve: invalid request")
)

// Defaults applied by NewServer when the corresponding Config field is zero.
const (
	DefaultMaxBatch  = 64
	DefaultMaxLinger = 2 * time.Millisecond
	DefaultQueueCap  = 256
	DefaultWorkers   = 1
	DefaultDeadline  = time.Second
	// DefaultTraceSample is the head-sampling probability for request
	// traces. Tracing is cheap (the flight recorder tail-samples what it
	// keeps), so everything is trace-annotated by default; production
	// deployments under extreme load can dial it down.
	DefaultTraceSample = 1.0
)

// Config describes a serving instance.
type Config struct {
	// Net is the initial model snapshot (version 1). Required.
	Net *gnn.Network
	// Graph is the raw (no self-loop) adjacency served against. Required.
	Graph *graph.CSR
	// X holds one input-feature row per vertex. Required.
	X *tensor.Matrix
	// MaxBatch is the mini-batch size cap in vertices; reaching it seals
	// the pending batch immediately. It also bounds a single request.
	MaxBatch int
	// MaxLinger bounds how long the oldest queued request waits for the
	// batch to fill before a partial batch is dispatched anyway.
	MaxLinger time.Duration
	// QueueCap bounds the admission queue; a full queue rejects with
	// ErrQueueFull rather than queueing unbounded latency.
	QueueCap int
	// Workers is the number of goroutines executing sealed batches.
	Workers int
	// Threads is the kernel thread count per batch (0 = GOMAXPROCS).
	Threads int
	// Fanouts is the per-layer neighbour sampling budget (nil or <= 0
	// entries mean full neighbourhoods, i.e. exact inference).
	Fanouts []int
	// Deadline is applied to requests that carry no deadline of their own.
	Deadline time.Duration
	// Seed drives per-batch sampling rngs (batch id is mixed in).
	Seed int64
	// TraceSample is the head-sampling probability for request tracing:
	// 0 means DefaultTraceSample (trace everything), negative disables
	// local sampling entirely. A request arriving with a sampled W3C
	// traceparent is always traced regardless of this rate — the upstream
	// already decided.
	TraceSample float64
	// TraceRecorder tunes the tail-sampling flight recorder backing
	// /v1/traces. Zero-value fields take the obsrv defaults; its SLOs
	// default to Config.SLOs and its Seed to Config.Seed.
	TraceRecorder obsrv.FlightRecorderConfig
	// ShedTarget is the queue-sojourn target of the adaptive
	// load-shedding controller: sustained sojourn above it sheds new
	// admissions with 429 + Retry-After. 0 means DefaultShedTarget;
	// negative disables shedding AND degraded-mode serving entirely (the
	// pre-overload-controller FIFO behaviour, kept for comparison runs).
	ShedTarget time.Duration
	// ShedInterval is the CoDel control interval (0 = DefaultShedInterval).
	ShedInterval time.Duration
	// DegradeLadder is the degraded-mode fanout ladder: entry k is the
	// fraction of the configured sampling fanouts served at degradation
	// level k. Entry 0 must be 1.0 and entries must be non-increasing in
	// (0, 1]. Nil means DefaultDegradeLadder; a one-entry ladder {1.0}
	// disables degradation while keeping shedding.
	DegradeLadder []float64
	// BreakerThreshold is the consecutive batch-execution failures that
	// trip the snapshot circuit breaker open (0 = DefaultBreakerThreshold;
	// negative disables the breaker).
	BreakerThreshold int
	// BreakerProbe is the open-state dwell before a half-open probe is
	// admitted (0 = DefaultBreakerProbe).
	BreakerProbe time.Duration
	// RetryBudget is the retry-token earn rate per successful batch
	// (0 = DefaultRetryBudget; negative disables execution retries).
	RetryBudget float64
	// Inject arms the serve-path fault-injection sites (see
	// faultinject.ServeSites). Nil is inert: one nil check per site.
	Inject *faultinject.Injector
	// SLOs are latency objectives exported through the metrics plane.
	SLOs []obsrv.SLO
	// BuildLabels extends graphite_build_info (tests pin it).
	BuildLabels map[string]string
	// testGate, when non-nil, is received from before each batch
	// executes: a test seam for deterministic overload and drain
	// scenarios (close it to release all batches).
	testGate chan struct{}
}

// Result is one answered inference request.
type Result struct {
	// Logits has one row per requested vertex, in request order.
	Logits *tensor.Matrix
	// Version is the model snapshot version the batch executed on.
	Version uint64
	// BatchID identifies the mini-batch this request rode in; requests
	// sharing a BatchID are guaranteed to share a Version.
	BatchID uint64
	// DegradeLevel is the overload-degradation ladder level the batch
	// executed at (0 = full configured fanouts).
	DegradeLevel int
	// FanoutFrac is the fraction of the configured sampling fanouts
	// served (1.0 when not degraded).
	FanoutFrac float64
	// TraceID identifies the request's trace when it was sampled for
	// tracing (zero otherwise); the trace is retrievable from /v1/traces
	// while the flight recorder retains it.
	TraceID telemetry.TraceID
	// RootSpan is the trace's root span id — the span id to echo in an
	// outgoing traceparent header.
	RootSpan telemetry.SpanID
}

// request is one admitted inference request moving through the pipeline.
type request struct {
	ctx  context.Context
	ids  []int32
	resp chan response
	enq  time.Time
	tr   *telemetry.Trace // nil when the request is not traced
}

type response struct {
	res Result
	err error
}

// Server is the inference server. Create with NewServer, optionally expose
// over HTTP with Start, stop with Shutdown.
type Server struct {
	cfg       Config
	tel       *telemetry.Sink
	obs       *obsrv.Server
	rec       *obsrv.FlightRecorder
	traceRate float64

	snap   atomic.Pointer[Snapshot]
	swapMu sync.Mutex // serialises Swap version assignment

	shed   *shedder     // nil when shedding is disabled
	ladder []float64    // degradation fanout ladder (always non-empty)
	brk    *breaker     // nil when the breaker is disabled
	retry  *retryBudget // nil when execution retries are disabled

	queue    chan *request
	batches  chan *batch
	stopc    chan struct{}
	pipeWG   sync.WaitGroup // batcher + workers
	admitMu  sync.Mutex     // guards draining flip vs. reqWG.Add
	reqWG    sync.WaitGroup // in-flight Infer calls
	draining atomic.Bool

	inflightBatches atomic.Int64
	nextBatch       atomic.Uint64

	hs *http.Server
	ln net.Listener
}

// NewServer validates cfg, applies defaults, and starts the batching
// pipeline (but no listener): Infer works immediately, which is how the
// tests drive the pipeline without sockets.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Net == nil || cfg.Graph == nil || cfg.X == nil {
		return nil, fmt.Errorf("serve: Net, Graph and X are required")
	}
	if cfg.X.Rows != cfg.Graph.NumVertices() {
		return nil, fmt.Errorf("serve: %d feature rows for %d vertices", cfg.X.Rows, cfg.Graph.NumVertices())
	}
	if cfg.Net.NumLayers() == 0 {
		return nil, fmt.Errorf("serve: empty network")
	}
	if cfg.Net.Layers[0].In() != cfg.X.Cols {
		return nil, fmt.Errorf("serve: model expects %d input features, graph has %d", cfg.Net.Layers[0].In(), cfg.X.Cols)
	}
	if len(cfg.Fanouts) != 0 && len(cfg.Fanouts) != cfg.Net.NumLayers() {
		return nil, fmt.Errorf("serve: %d fanouts for %d layers", len(cfg.Fanouts), cfg.Net.NumLayers())
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxLinger <= 0 {
		cfg.MaxLinger = DefaultMaxLinger
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = DefaultDeadline
	}
	if cfg.ShedTarget == 0 {
		cfg.ShedTarget = DefaultShedTarget
	}
	if cfg.ShedInterval <= 0 {
		cfg.ShedInterval = DefaultShedInterval
	}
	if cfg.DegradeLadder == nil {
		cfg.DegradeLadder = DefaultDegradeLadder
	}
	if len(cfg.DegradeLadder) == 0 || cfg.DegradeLadder[0] != 1.0 {
		return nil, fmt.Errorf("serve: degrade ladder must start at 1.0, got %v", cfg.DegradeLadder)
	}
	for i := 1; i < len(cfg.DegradeLadder); i++ {
		f := cfg.DegradeLadder[i]
		if f <= 0 || f > cfg.DegradeLadder[i-1] {
			return nil, fmt.Errorf("serve: degrade ladder must be non-increasing in (0,1], got %v", cfg.DegradeLadder)
		}
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerProbe <= 0 {
		cfg.BreakerProbe = DefaultBreakerProbe
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}

	traceRate := cfg.TraceSample
	if traceRate == 0 {
		traceRate = DefaultTraceSample
	}

	s := &Server{
		cfg:       cfg,
		tel:       telemetry.New(0),
		traceRate: traceRate,
		queue:     make(chan *request, cfg.QueueCap),
		batches:   make(chan *batch, cfg.Workers),
		stopc:     make(chan struct{}),
	}
	s.snap.Store(&Snapshot{Net: cfg.Net, Version: 1})
	s.ladder = cfg.DegradeLadder
	if cfg.ShedTarget > 0 {
		s.shed = newShedder(cfg.ShedTarget, cfg.ShedInterval, len(cfg.DegradeLadder)-1)
	}
	if cfg.BreakerThreshold > 0 {
		s.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerProbe, func() {
			s.tel.Inc(telemetry.CtrServeBreakerTrips)
			s.obs.Publish(obsrv.Event{Kind: "breaker", Status: "open", Detail: "snapshot execution failures tripped the circuit breaker"})
		})
	}
	if cfg.RetryBudget > 0 {
		s.retry = newRetryBudget(cfg.RetryBudget)
	}
	recCfg := cfg.TraceRecorder
	if recCfg.SLOs == nil {
		recCfg.SLOs = cfg.SLOs
	}
	if recCfg.Seed == 0 {
		recCfg.Seed = cfg.Seed
	}
	s.rec = obsrv.NewFlightRecorder(recCfg)
	s.obs = obsrv.NewServer(obsrv.Options{
		Sink:        s.tel,
		SLOs:        cfg.SLOs,
		BuildLabels: cfg.BuildLabels,
		Gauges:      s.gauges,
		Traces:      s.rec,
		Healthy: func() (bool, string) {
			return true, "serving"
		},
		Ready: func() (bool, string) {
			if s.draining.Load() {
				return false, "draining"
			}
			return true, fmt.Sprintf("snapshot v%d", s.snap.Load().Version)
		},
	})

	s.pipeWG.Add(1)
	//lint:ignore goroutine-recover the batcher is process-lifetime pipeline infrastructure moving requests between channels; batch execution panics are contained in runBatch, and a panic in the coalescing logic itself must surface rather than leave callers waiting forever
	go s.batcher()
	for i := 0; i < cfg.Workers; i++ {
		s.pipeWG.Add(1)
		//lint:ignore goroutine-recover workers delegate to runBatch, which converts panics into per-request errors (and kernel panics are already contained by gnn); the loop shell has nothing left to recover
		go s.worker()
	}
	return s, nil
}

// Tel exposes the server's telemetry sink (the load generator and tests
// read phase histograms and counters from it).
func (s *Server) Tel() *telemetry.Sink { return s.tel }

// Obs exposes the embedded observability plane (events, metrics).
func (s *Server) Obs() *obsrv.Server { return s.obs }

// Traces exposes the tail-sampling flight recorder behind /v1/traces.
func (s *Server) Traces() *obsrv.FlightRecorder { return s.rec }

// gauges is the obsrv scrape hook: instantaneous pipeline state.
func (s *Server) gauges() []obsrv.Gauge {
	var draining float64
	if s.draining.Load() {
		draining = 1
	}
	var shedding float64
	if s.shed.isShedding() {
		shedding = 1
	}
	rec := s.rec.Stats()
	return []obsrv.Gauge{
		{Name: "graphite_serve_degrade_level", Help: "Current overload-degradation ladder level (0 = full configured fanouts).", Value: float64(s.shed.degradeLevel())},
		{Name: "graphite_serve_shedding", Help: "1 while the CoDel-style admission controller is actively shedding.", Value: shedding},
		{Name: "graphite_serve_queue_sojourn_seconds", Help: "Most recent queue sojourn observed at batch seal.", Value: s.shed.sojourn().Seconds()},
		{Name: "graphite_serve_breaker_state", Help: "Snapshot circuit breaker state: 0 closed, 1 open, 2 half-open.", Value: float64(s.brk.State())},
		{Name: "graphite_serve_queue_depth", Help: "Inference requests waiting in the admission queue.", Value: float64(len(s.queue))},
		{Name: "graphite_serve_queue_capacity", Help: "Admission queue capacity; at depth==capacity new requests are rejected.", Value: float64(cap(s.queue))},
		{Name: "graphite_serve_max_batch_size", Help: "Mini-batch size cap in vertices.", Value: float64(s.cfg.MaxBatch)},
		{Name: "graphite_serve_snapshot_version", Help: "Version of the model snapshot new batches execute on.", Value: float64(s.snap.Load().Version)},
		{Name: "graphite_serve_inflight_batches", Help: "Sealed batches currently executing.", Value: float64(s.inflightBatches.Load())},
		{Name: "graphite_serve_draining", Help: "1 once shutdown has begun and new requests are rejected.", Value: draining},
		{Name: "graphite_serve_traces_recorded", Help: "Finished request traces offered to the flight recorder.", Value: float64(rec.Recorded)},
		{Name: "graphite_serve_traces_kept", Help: "Request traces the flight recorder chose to retain.", Value: float64(rec.Kept)},
	}
}

// traceParentKey carries an upstream W3C traceparent to Infer.
type traceParentKey struct{}

// WithTraceParent returns a context announcing the upstream trace context
// to Infer: the request joins the upstream trace instead of minting its
// own id, and a sampled flag forces tracing regardless of the server's
// sampling rate. The HTTP layer populates this from the traceparent
// header; embedded callers can use it directly.
func WithTraceParent(ctx context.Context, tp telemetry.TraceParent) context.Context {
	return context.WithValue(ctx, traceParentKey{}, tp)
}

func traceParentFrom(ctx context.Context) (telemetry.TraceParent, bool) {
	tp, ok := ctx.Value(traceParentKey{}).(telemetry.TraceParent)
	return tp, ok
}

// startTrace decides whether this request is traced (head sampling; tail
// retention is the flight recorder's call) and mints its trace. An
// upstream sampled=1 traceparent always wins; otherwise the local rate
// applies, joining the upstream trace id when one was offered.
func (s *Server) startTrace(ctx context.Context) *telemetry.Trace {
	tp, ok := traceParentFrom(ctx)
	if !ok || !tp.Sampled {
		if s.traceRate <= 0 {
			return nil
		}
		if s.traceRate < 1 && rand.Float64() >= s.traceRate {
			return nil
		}
	}
	if ok {
		return telemetry.NewTrace(tp.TraceID, tp.Parent, telemetry.PhaseServeE2E)
	}
	return telemetry.NewTrace(telemetry.NewTraceID(), telemetry.SpanID{}, telemetry.PhaseServeE2E)
}

// statusOf maps a pipeline error to the trace/envelope status class; ""
// means success. The handler layer reuses these strings as JSON error
// codes so /v1/traces and the error envelope agree on vocabulary.
func statusOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrShed):
		return "overloaded"
	case errors.Is(err, ErrBreakerOpen):
		return "breaker_open"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return "client_cancelled"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrInvalid):
		return "invalid_request"
	default:
		return "internal"
	}
}

// Infer answers a batch of per-vertex inference requests. It blocks until
// the request's mini-batch completes or ctx expires. A request with no
// deadline gets Config.Deadline. The returned Result carries the snapshot
// version and batch id the request executed under.
func (s *Server) Infer(ctx context.Context, ids []int32) (Result, error) {
	start := time.Now()
	tr := s.startTrace(ctx)
	res, err := s.infer(ctx, tr, ids, start)
	if tr != nil {
		// The exemplar makes the aggregate latency series point at this
		// concrete request: the serve-e2e bucket this observation lands in
		// carries the trace id, retrievable from /v1/traces.
		s.tel.ObserveTraced(telemetry.PhaseServeE2E, time.Since(start), tr.ID())
	} else {
		s.tel.Observe(telemetry.PhaseServeE2E, time.Since(start))
	}
	switch {
	case err == nil:
	case errors.Is(err, ErrShed):
		s.tel.Inc(telemetry.CtrServeShed)
	case errors.Is(err, ErrQueueFull):
		s.tel.Inc(telemetry.CtrServeRejected)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.tel.Inc(telemetry.CtrServeExpired)
	case errors.Is(err, ErrInvalid), errors.Is(err, ErrDraining), errors.Is(err, ErrBreakerOpen):
		// Not counted as failures: shedding, draining and an open breaker
		// are the server protecting itself, and CtrServeBreakerTrips
		// already counts the underlying execution failures.
	default:
		s.tel.Inc(telemetry.CtrServeFailed)
	}
	if tr != nil {
		res.TraceID = tr.ID()
		res.RootSpan = tr.RootSpan()
		detail := ""
		if err != nil {
			detail = err.Error()
		}
		status := statusOf(err)
		td := tr.Finish(status, detail)
		s.rec.Record(td)
		// Rejections and expiries ride the event stream with their trace
		// id, so a 429/504 spike on the dashboard correlates to concrete
		// traces without scraping exemplars.
		if status == "queue_full" || status == "deadline_exceeded" || status == "overloaded" || status == "breaker_open" {
			s.obs.Publish(obsrv.Event{
				Kind: "serve", Status: status, Detail: detail,
				TraceID: td.TraceID.String(),
			})
		}
	}
	return res, err
}

func (s *Server) infer(ctx context.Context, tr *telemetry.Trace, ids []int32, start time.Time) (Result, error) {
	if len(ids) == 0 {
		return Result{}, fmt.Errorf("%w: empty vertex list", ErrInvalid)
	}
	if len(ids) > s.cfg.MaxBatch {
		return Result{}, fmt.Errorf("%w: %d vertices exceeds max batch %d", ErrInvalid, len(ids), s.cfg.MaxBatch)
	}
	n := int32(s.cfg.Graph.NumVertices())
	for _, v := range ids {
		if v < 0 || v >= n {
			return Result{}, fmt.Errorf("%w: vertex %d out of range [0,%d)", ErrInvalid, v, n)
		}
	}
	if !s.admit() {
		return Result{}, ErrDraining
	}
	defer s.reqWG.Done()
	s.tel.Inc(telemetry.CtrServeRequests)

	now := time.Now()
	if s.brk != nil && !s.brk.allow(now) {
		// Fail fast while the serving snapshot is tripping the breaker:
		// queueing behind a poisoned model version only burns deadline.
		return Result{}, ErrBreakerOpen
	}
	if s.shed.shouldShed(now) {
		// The controller bounds queueing latency, not just queue length:
		// the queue may have free slots and still be over the sojourn
		// target.
		return Result{}, ErrShed
	}
	if err := s.cfg.Inject.Fault(faultinject.SiteServeAdmission); err != nil {
		return Result{}, fmt.Errorf("serve: admission: %w", err)
	}

	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	r := &request{ctx: ctx, ids: ids, resp: make(chan response, 1), enq: start, tr: tr}
	select {
	case s.queue <- r:
		// Admission covers arrival → enqueue: validation, the draining
		// check, and default-deadline setup.
		tr.AddSpan(telemetry.PhaseAdmission, start, time.Since(start))
	default:
		return Result{}, ErrQueueFull
	}
	select {
	case rp := <-r.resp:
		return rp.res, rp.err
	case <-ctx.Done():
		// The request may still be queued or in flight; the batcher and
		// workers drop expired members and send on the buffered resp
		// channel, so nothing leaks.
		return Result{}, ctx.Err()
	}
}

// admit registers an in-flight request unless shutdown has begun. The
// mutex closes the race between the draining flip and reqWG.Add.
func (s *Server) admit() bool {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.reqWG.Add(1)
	return true
}

// BreakerState returns the snapshot circuit breaker's current state
// (BreakerClosed when the breaker is disabled).
func (s *Server) BreakerState() BreakerState { return s.brk.State() }

// BreakerTransitions returns the breaker's recorded state-change history,
// oldest first. The chaos harness asserts every entry is a legal edge and
// the chain is consistent.
func (s *Server) BreakerTransitions() []BreakerTransition { return s.brk.Transitions() }

// Shedding reports whether the admission controller is actively shedding.
func (s *Server) Shedding() bool { return s.shed.isShedding() }

// DegradeLevel returns the degradation ladder level new batches execute at.
func (s *Server) DegradeLevel() int { return s.shed.degradeLevel() }

// RetryAfter returns the client backoff hint for a rejection error: how
// long an obedient client should wait before retrying. Zero means the
// error carries no hint.
func (s *Server) RetryAfter(err error) time.Duration {
	switch {
	case errors.Is(err, ErrShed), errors.Is(err, ErrQueueFull):
		return s.shed.retryAfter()
	case errors.Is(err, ErrBreakerOpen):
		return s.brk.retryIn(time.Now())
	case errors.Is(err, ErrDraining):
		// This instance is going away; the hint is for the load balancer's
		// sake, long enough to finish routing traffic elsewhere.
		return time.Second
	}
	return 0
}

// Start binds addr and serves HTTP. The pipeline is already running; this
// only adds the network front end.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.handler()}
	//lint:ignore goroutine-recover the HTTP accept loop is process-lifetime infrastructure; net/http already recovers handler panics, and an accept-loop panic must surface rather than be converted to a WorkerError
	go func() {
		if err := s.hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.obs.Publish(obsrv.Event{Kind: "serve", Status: "error", Detail: err.Error()})
		}
	}()
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains gracefully: new requests are rejected immediately
// (readyz flips first so load balancers stop routing), event streams end,
// in-flight HTTP requests and direct Infer calls complete on their
// original snapshot, then the pipeline stops. Bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.draining.Swap(true)
	s.admitMu.Unlock()
	if already {
		return nil
	}
	// Close /events streams first: they never go idle, so a live stream
	// would otherwise hold http.Server.Shutdown until the ctx deadline.
	obsErr := s.obs.Shutdown(ctx)
	var httpErr error
	if s.hs != nil {
		httpErr = s.hs.Shutdown(ctx)
	}
	s.reqWG.Wait() // direct Infer callers (tests, embedded use)
	close(s.stopc)
	s.pipeWG.Wait()
	if httpErr != nil {
		return httpErr
	}
	return obsErr
}
