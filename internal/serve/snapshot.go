package serve

import (
	"fmt"
	"io"

	"graphite/internal/faultinject"
	"graphite/internal/gnn"
	"graphite/internal/obsrv"
	"graphite/internal/telemetry"
)

// Snapshot is one immutable model version. The graph and features are
// shared across snapshots (they are read-only); only the weights swap.
type Snapshot struct {
	Net     *gnn.Network
	Version uint64
}

// Snapshot returns the version new batches currently execute on.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Swap loads a checkpoint, validates it against the serving architecture,
// and atomically makes it the snapshot for all future batches. In-flight
// batches finish on the snapshot they pinned at dispatch — zero downtime,
// no mixed versions. Returns the new version.
func (s *Server) Swap(r io.Reader) (uint64, error) {
	net, err := gnn.Load(r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	cur := s.snap.Load().Net
	if net.Kind != cur.Kind {
		return 0, fmt.Errorf("%w: checkpoint is %s, serving %s", ErrInvalid, net.Kind, cur.Kind)
	}
	if net.NumLayers() != cur.NumLayers() {
		return 0, fmt.Errorf("%w: checkpoint has %d layers, serving %d", ErrInvalid, net.NumLayers(), cur.NumLayers())
	}
	for k, l := range net.Layers {
		if l.In() != cur.Layers[k].In() || l.Out() != cur.Layers[k].Out() {
			return 0, fmt.Errorf("%w: layer %d is %dx%d, serving %dx%d",
				ErrInvalid, k, l.In(), l.Out(), cur.Layers[k].In(), cur.Layers[k].Out())
		}
	}

	// The fault site sits after validation and before the store: an
	// injected swap failure must leave the old snapshot serving, untouched.
	if err := s.cfg.Inject.Fault(faultinject.SiteServeSwap); err != nil {
		return 0, fmt.Errorf("serve: swap: %w", err)
	}

	s.swapMu.Lock()
	v := s.snap.Load().Version + 1
	s.snap.Store(&Snapshot{Net: net, Version: v})
	s.swapMu.Unlock()

	s.tel.Inc(telemetry.CtrServeSwaps)
	s.obs.Publish(obsrv.Event{Kind: "swap", Status: "done", Detail: fmt.Sprintf("snapshot v%d", v)})
	return v, nil
}

// WriteCheckpoint serialises the current snapshot's weights (the inverse
// of Swap; the smoke test round-trips a checkpoint through both).
func (s *Server) WriteCheckpoint(w io.Writer) (uint64, error) {
	snap := s.snap.Load()
	if err := snap.Net.Save(w); err != nil {
		return 0, err
	}
	return snap.Version, nil
}
