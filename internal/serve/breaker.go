package serve

import (
	"sync"
	"time"
)

// Breaker defaults applied by NewServer when the corresponding Config
// field is zero.
const (
	// DefaultBreakerThreshold is the consecutive-failure count that trips
	// the breaker open.
	DefaultBreakerThreshold = 5
	// DefaultBreakerProbe is the open-state dwell before a half-open
	// probe batch is admitted.
	DefaultBreakerProbe = 500 * time.Millisecond
	// DefaultRetryBudget is the retry-token earn rate: each successful
	// batch earns this fraction of a retry token (capped at 10 tokens),
	// so at a 10% budget a sustained failure storm can retry at most one
	// batch per ten successes — retries can smooth transient faults but
	// never amplify an outage.
	DefaultRetryBudget = 0.1
)

// BreakerState is the circuit breaker's state machine position.
type BreakerState int32

const (
	// BreakerClosed: executions flow normally; consecutive failures are
	// counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: executions fail fast with ErrBreakerOpen; after the
	// probe cadence the next admission transitions to half-open.
	BreakerOpen
	// BreakerHalfOpen: a probe execution is in flight; its outcome decides
	// closed (success) or open again (failure).
	BreakerHalfOpen
)

// String renders the state for envelopes, events and the chaos report.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// BreakerTransition is one recorded state change, kept in a bounded
// history so the chaos harness can assert every transition is legal:
// closed→open, open→half-open, half-open→closed, half-open→open.
type BreakerTransition struct {
	From BreakerState `json:"from"`
	To   BreakerState `json:"to"`
	At   time.Time    `json:"at"`
}

// breakerHistoryCap bounds the retained transition history; older entries
// are dropped from the front (the chaos soak checks legality pairwise, so
// a bounded window loses nothing as long as it is contiguous).
const breakerHistoryCap = 1024

// breaker is a circuit breaker around snapshot batch execution. A failing
// or panicking model version produces consecutive execution failures;
// after threshold of them the breaker trips open and batches fail fast
// with ErrBreakerOpen (503 + Retry-After) instead of burning kernel time
// on a poisoned snapshot. After probeAfter in the open state the next
// execution is admitted as a half-open probe; success closes the breaker,
// failure re-opens it and the probe clock restarts.
type breaker struct {
	threshold  int
	probeAfter time.Duration
	onTrip     func() // telemetry hook, called outside the lock

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive failures while closed
	openedAt time.Time
	history  []BreakerTransition
}

func newBreaker(threshold int, probeAfter time.Duration, onTrip func()) *breaker {
	return &breaker{threshold: threshold, probeAfter: probeAfter, onTrip: onTrip}
}

// transition must be called with mu held.
func (b *breaker) transition(to BreakerState, now time.Time) {
	if len(b.history) >= breakerHistoryCap {
		b.history = b.history[1:]
	}
	b.history = append(b.history, BreakerTransition{From: b.state, To: to, At: now})
	b.state = to
}

// allow reports whether an execution arriving at now may proceed. In the
// open state it returns false until the probe cadence elapses, at which
// point it transitions to half-open and admits the probe.
func (b *breaker) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.probeAfter {
			b.transition(BreakerHalfOpen, now)
			return true
		}
		return false
	}
	return true
}

// onSuccess records a successful execution: closes a half-open breaker,
// clears the consecutive-failure count.
func (b *breaker) onSuccess(now time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.transition(BreakerClosed, now)
	}
	b.failures = 0
	b.mu.Unlock()
}

// onFailure records a failed execution; returns true when this failure
// tripped (or re-tripped) the breaker open.
func (b *breaker) onFailure(now time.Time) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	tripped := false
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: straight back to open, probe clock restarts.
		b.transition(BreakerOpen, now)
		b.openedAt = now
		b.failures = 0
		tripped = true
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.transition(BreakerOpen, now)
			b.openedAt = now
			b.failures = 0
			tripped = true
		}
	}
	b.mu.Unlock()
	if tripped && b.onTrip != nil {
		b.onTrip()
	}
	return tripped
}

// State returns the current state.
func (b *breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// retryIn is the Retry-After hint while open: time until the next probe
// is due (minimum 1ms so the hint is never zero or negative).
func (b *breaker) retryIn(now time.Time) time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.probeAfter - now.Sub(b.openedAt)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Transitions returns a copy of the recorded state-change history.
func (b *breaker) Transitions() []BreakerTransition {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]BreakerTransition(nil), b.history...)
}

// LegalBreakerTransition reports whether a single recorded transition is
// one of the four legal edges of the state machine. The chaos harness
// additionally checks the history is chain-consistent (each From equals
// the previous To).
func LegalBreakerTransition(tr BreakerTransition) bool {
	switch {
	case tr.From == BreakerClosed && tr.To == BreakerOpen:
		return true
	case tr.From == BreakerOpen && tr.To == BreakerHalfOpen:
		return true
	case tr.From == BreakerHalfOpen && tr.To == BreakerClosed:
		return true
	case tr.From == BreakerHalfOpen && tr.To == BreakerOpen:
		return true
	}
	return false
}

// retryBudget is a token bucket bounding batch-execution retries: each
// successful batch earns `ratio` tokens (capped), each retry spends one.
// Under a sustained failure storm the bucket drains and retries stop —
// the budget converts retries from an amplifier into a smoother.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

func newRetryBudget(ratio float64) *retryBudget {
	// Start with one token so an early transient fault (before any
	// successes have earned budget) can still be smoothed.
	return &retryBudget{tokens: 1, max: 10, ratio: ratio}
}

// earn credits the budget for one successful batch.
func (rb *retryBudget) earn() {
	if rb == nil {
		return
	}
	rb.mu.Lock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.max {
		rb.tokens = rb.max
	}
	rb.mu.Unlock()
}

// spend takes one token if available; false means the retry is denied.
func (rb *retryBudget) spend() bool {
	if rb == nil {
		return false
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}
