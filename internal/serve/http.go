package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"graphite/internal/obsrv"
	"graphite/internal/telemetry"
)

// maxSwapBody bounds /v1/swap checkpoint uploads (weights for the models
// in this repo are well under this).
const maxSwapBody = 1 << 30

// apiError is the structured JSON error body: {"error":{"code":...}}.
// TraceID is present when the failed request was traced, so a 429/504 can
// be looked up on /v1/traces (and correlated with the rejection events).
// RetryAfterMS accompanies every 429/503 rejection (mirrored by the
// Retry-After header): how long an obedient client should back off.
type apiError struct {
	Error struct {
		Code         string  `json:"code"`
		Message      string  `json:"message"`
		TraceID      string  `json:"trace_id,omitempty"`
		RetryAfterMS float64 `json:"retry_after_ms,omitempty"`
	} `json:"error"`
}

// inferRequest is the /v1/infer body.
type inferRequest struct {
	// Vertices are the vertex ids to classify.
	Vertices []int32 `json:"vertices"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// inferResponse is the /v1/infer reply. DegradeLevel and FanoutFrac report
// whether the answer was computed in degraded mode (reduced sampling
// fanouts under overload): level 0 / fraction 1 is full fidelity.
type inferResponse struct {
	Vertices        []int32     `json:"vertices"`
	Logits          [][]float32 `json:"logits"`
	SnapshotVersion uint64      `json:"snapshot_version"`
	BatchID         uint64      `json:"batch_id"`
	DegradeLevel    int         `json:"degrade_level"`
	FanoutFrac      float64     `json:"fanout_frac"`
	LatencyMS       float64     `json:"latency_ms"`
	TraceID         string      `json:"trace_id,omitempty"`
}

// handler builds the full mux: the serve API plus the embedded obsrv
// plane (/metrics, /healthz, /readyz, /events, /trace, /v1/traces,
// /debug/pprof/).
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.obs.Handler())
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/swap", s.handleSwap)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// writeError maps a pipeline error to (status, code) and emits the
// structured JSON body. 429 = back off (queue full or shedding); 504 =
// deadline spent; 503 = draining or breaker open; 400 = caller bug. Every
// 429/503 carries a Retry-After header and a retry_after_ms envelope field
// so obedient clients back off for as long as the controller expects the
// condition to last. tid, when non-zero, is the failed request's trace id,
// stamped into the envelope.
func (s *Server) writeError(w http.ResponseWriter, err error, tid telemetry.TraceID) {
	code := statusOf(err)
	status := http.StatusInternalServerError
	switch code {
	case "queue_full", "overloaded":
		status = http.StatusTooManyRequests
	case "deadline_exceeded":
		status = http.StatusGatewayTimeout
	case "client_cancelled":
		status = 499 // nginx convention
	case "draining", "breaker_open":
		status = http.StatusServiceUnavailable
	case "invalid_request":
		status = http.StatusBadRequest
	}
	var body apiError
	body.Error.Code = code
	body.Error.Message = err.Error()
	if !tid.IsZero() {
		body.Error.TraceID = tid.String()
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		ra := s.RetryAfter(err)
		if ra <= 0 {
			ra = DefaultShedInterval
		}
		body.Error.RetryAfterMS = float64(ra) / float64(time.Millisecond)
		// The header is whole seconds (RFC 9110), rounded up so it is never
		// "0": clients honouring only the header still back off.
		w.Header().Set("Retry-After", fmt.Sprint(int64((ra+time.Second-1)/time.Second)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) writeMethodError(w http.ResponseWriter, want string) {
	w.Header().Set("Allow", want)
	s.writeError(w, fmt.Errorf("%w: method not allowed, use %s", ErrInvalid, want), telemetry.TraceID{})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeMethodError(w, http.MethodPost)
		return
	}
	var req inferRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeError(w, fmt.Errorf("%w: bad JSON: %v", ErrInvalid, err), telemetry.TraceID{})
		return
	}
	ctx := r.Context()
	if h := r.Header.Get("traceparent"); h != "" {
		// Malformed or unsupported-version headers start a fresh trace
		// (the W3C-recommended recovery), so they are simply not forwarded.
		if tp, err := telemetry.ParseTraceParent(h); err == nil {
			ctx = WithTraceParent(ctx, tp)
		}
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	res, err := s.Infer(ctx, req.Vertices)
	if !res.TraceID.IsZero() {
		// Echo the trace context (our root span as parent) so the caller
		// can log the id or continue the trace downstream.
		w.Header().Set("traceparent",
			telemetry.TraceParent{TraceID: res.TraceID, Parent: res.RootSpan, Sampled: true}.String())
	}
	if err != nil {
		s.writeError(w, err, res.TraceID)
		return
	}
	out := inferResponse{
		Vertices:        req.Vertices,
		Logits:          make([][]float32, res.Logits.Rows),
		SnapshotVersion: res.Version,
		BatchID:         res.BatchID,
		DegradeLevel:    res.DegradeLevel,
		FanoutFrac:      res.FanoutFrac,
		LatencyMS:       float64(time.Since(start)) / float64(time.Millisecond),
	}
	if !res.TraceID.IsZero() {
		out.TraceID = res.TraceID.String()
	}
	for i := range out.Logits {
		row := make([]float32, res.Logits.Cols)
		copy(row, res.Logits.Row(i))
		out.Logits[i] = row
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeMethodError(w, http.MethodPost)
		return
	}
	v, err := s.Swap(http.MaxBytesReader(w, r.Body, maxSwapBody))
	if err != nil {
		s.writeError(w, err, telemetry.TraceID{})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]uint64{"snapshot_version": v})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeMethodError(w, http.MethodGet)
		return
	}
	// Version header first: Save streams the body.
	snap := s.snap.Load()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Graphite-Snapshot-Version", fmt.Sprint(snap.Version))
	if err := snap.Net.Save(w); err != nil {
		// Headers are already out; the truncated body will fail the
		// loader's validation on the other side.
		s.obs.Publish(obsrv.Event{Kind: "checkpoint", Status: "error", Detail: err.Error()})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeMethodError(w, http.MethodGet)
		return
	}
	stats := map[string]any{
		"graph_vertices":   s.cfg.Graph.NumVertices(),
		"queue_depth":      len(s.queue),
		"queue_capacity":   cap(s.queue),
		"max_batch_size":   s.cfg.MaxBatch,
		"max_linger_ms":    float64(s.cfg.MaxLinger) / float64(time.Millisecond),
		"snapshot_version": s.snap.Load().Version,
		"inflight_batches": s.inflightBatches.Load(),
		"draining":         s.draining.Load(),
		"shedding":         s.shed.isShedding(),
		"degrade_level":    s.shed.degradeLevel(),
		"sojourn_ms":       float64(s.shed.sojourn()) / float64(time.Millisecond),
		"breaker_state":    s.brk.State().String(),
		"shed":             s.tel.Counter(telemetry.CtrServeShed),
		"degraded_batches": s.tel.Counter(telemetry.CtrServeDegraded),
		"breaker_trips":    s.tel.Counter(telemetry.CtrServeBreakerTrips),
		"batch_retries":    s.tel.Counter(telemetry.CtrServeRetries),
		"requests":         s.tel.Counter(telemetry.CtrServeRequests),
		"rejected":         s.tel.Counter(telemetry.CtrServeRejected),
		"expired":          s.tel.Counter(telemetry.CtrServeExpired),
		"failed":           s.tel.Counter(telemetry.CtrServeFailed),
		"batches":          s.tel.Counter(telemetry.CtrServeBatches),
		"vertices":         s.tel.Counter(telemetry.CtrServeVertices),
		"swaps":            s.tel.Counter(telemetry.CtrServeSwaps),
		"traces":           s.rec.Stats(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}
