package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"graphite/internal/obsrv"
	"graphite/internal/telemetry"
)

// maxSwapBody bounds /v1/swap checkpoint uploads (weights for the models
// in this repo are well under this).
const maxSwapBody = 1 << 30

// apiError is the structured JSON error body: {"error":{"code":...}}.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// inferRequest is the /v1/infer body.
type inferRequest struct {
	// Vertices are the vertex ids to classify.
	Vertices []int32 `json:"vertices"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// inferResponse is the /v1/infer reply.
type inferResponse struct {
	Vertices        []int32     `json:"vertices"`
	Logits          [][]float32 `json:"logits"`
	SnapshotVersion uint64      `json:"snapshot_version"`
	BatchID         uint64      `json:"batch_id"`
	LatencyMS       float64     `json:"latency_ms"`
}

// handler builds the full mux: the serve API plus the embedded obsrv
// plane (/metrics, /healthz, /readyz, /events, /trace, /debug/pprof/).
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.obs.Handler())
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/swap", s.handleSwap)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// writeError maps a pipeline error to (status, code) and emits the
// structured JSON body. 429 = back off; 504 = deadline spent; 503 =
// draining; 400 = caller bug.
func writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.Is(err, ErrQueueFull):
		status, code = http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		status, code = 499, "client_cancelled" // nginx convention
	case errors.Is(err, ErrDraining):
		status, code = http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrInvalid):
		status, code = http.StatusBadRequest, "invalid_request"
	}
	var body apiError
	body.Error.Code = code
	body.Error.Message = err.Error()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeMethodError(w http.ResponseWriter, want string) {
	w.Header().Set("Allow", want)
	writeError(w, fmt.Errorf("%w: method not allowed, use %s", ErrInvalid, want))
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeMethodError(w, http.MethodPost)
		return
	}
	var req inferRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: bad JSON: %v", ErrInvalid, err))
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	res, err := s.Infer(ctx, req.Vertices)
	if err != nil {
		writeError(w, err)
		return
	}
	out := inferResponse{
		Vertices:        req.Vertices,
		Logits:          make([][]float32, res.Logits.Rows),
		SnapshotVersion: res.Version,
		BatchID:         res.BatchID,
		LatencyMS:       float64(time.Since(start)) / float64(time.Millisecond),
	}
	for i := range out.Logits {
		row := make([]float32, res.Logits.Cols)
		copy(row, res.Logits.Row(i))
		out.Logits[i] = row
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeMethodError(w, http.MethodPost)
		return
	}
	v, err := s.Swap(http.MaxBytesReader(w, r.Body, maxSwapBody))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]uint64{"snapshot_version": v})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodError(w, http.MethodGet)
		return
	}
	// Version header first: Save streams the body.
	snap := s.snap.Load()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Graphite-Snapshot-Version", fmt.Sprint(snap.Version))
	if err := snap.Net.Save(w); err != nil {
		// Headers are already out; the truncated body will fail the
		// loader's validation on the other side.
		s.obs.Publish(obsrv.Event{Kind: "checkpoint", Status: "error", Detail: err.Error()})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodError(w, http.MethodGet)
		return
	}
	stats := map[string]any{
		"graph_vertices":   s.cfg.Graph.NumVertices(),
		"queue_depth":      len(s.queue),
		"queue_capacity":   cap(s.queue),
		"max_batch_size":   s.cfg.MaxBatch,
		"max_linger_ms":    float64(s.cfg.MaxLinger) / float64(time.Millisecond),
		"snapshot_version": s.snap.Load().Version,
		"inflight_batches": s.inflightBatches.Load(),
		"draining":         s.draining.Load(),
		"requests":         s.tel.Counter(telemetry.CtrServeRequests),
		"rejected":         s.tel.Counter(telemetry.CtrServeRejected),
		"expired":          s.tel.Counter(telemetry.CtrServeExpired),
		"failed":           s.tel.Counter(telemetry.CtrServeFailed),
		"batches":          s.tel.Counter(telemetry.CtrServeBatches),
		"vertices":         s.tel.Counter(telemetry.CtrServeVertices),
		"swaps":            s.tel.Counter(telemetry.CtrServeSwaps),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}
