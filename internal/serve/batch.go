package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"graphite/internal/faultinject"
	"graphite/internal/gnn"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// batch is a sealed mini-batch: the concatenation of its members' vertex
// lists, executed in one forward pass.
type batch struct {
	id     uint64
	reqs   []*request
	ids    []int32
	sealed time.Time // when the batcher closed this batch
	// Degradation is decided at seal time, so every member of the batch
	// executes at the same level and reports it consistently.
	level   int     // degradation ladder level
	frac    float64 // fanout fraction at that level
	fanouts []int   // cfg.Fanouts scaled by frac
}

// batcher coalesces queued requests into mini-batches. A batch seals when
// it holds MaxBatch vertices or when the first member has lingered
// MaxLinger. Requests whose context expired while queued are rejected
// here, before any kernel work is spent on them.
func (s *Server) batcher() {
	defer s.pipeWG.Done()
	defer close(s.batches)

	var pending []*request
	var pendingVerts int
	linger := time.NewTimer(time.Hour)
	linger.Stop()
	defer linger.Stop()

	flush := func() {
		if len(pending) == 0 {
			return
		}
		linger.Stop()
		b := &batch{id: s.nextBatch.Add(1)}
		now := time.Now()
		b.sealed = now
		for _, r := range pending {
			if r.ctx.Err() != nil {
				// Expired while queued: reject before dispatch.
				r.resp <- response{err: r.ctx.Err()}
				continue
			}
			// Seal is the controller's dequeue point: every sealed member's
			// queue sojourn feeds the CoDel law.
			s.shed.observe(now.Sub(r.enq), now)
			s.tel.ObserveTraced(telemetry.PhaseServeQueue, now.Sub(r.enq), r.tr.ID())
			r.tr.AddSpan(telemetry.PhaseServeQueue, r.enq, now.Sub(r.enq))
			b.reqs = append(b.reqs, r)
			b.ids = append(b.ids, r.ids...)
		}
		pending, pendingVerts = nil, 0
		if len(b.reqs) == 0 {
			return
		}
		// The degradation level is stamped at seal so the whole batch
		// executes at one fanout fraction.
		b.level = s.shed.degradeLevel()
		b.frac = s.ladder[b.level]
		b.fanouts = scaleFanouts(s.cfg.Fanouts, b.frac)
		if err := s.cfg.Inject.Fault(faultinject.SiteServeSeal); err != nil {
			serr := fmt.Errorf("serve: batch %d seal: %w", b.id, err)
			for _, r := range b.reqs {
				r.resp <- response{err: serr}
			}
			return
		}
		s.batches <- b
	}

	admitOne := func(r *request) {
		if r.ctx.Err() != nil {
			r.resp <- response{err: r.ctx.Err()}
			return
		}
		// Never split one request across batches: seal first if it would
		// overflow the cap.
		if pendingVerts > 0 && pendingVerts+len(r.ids) > s.cfg.MaxBatch {
			flush()
		}
		if pendingVerts == 0 {
			// Credit the time the request already spent in the channel: the
			// linger contract bounds time-to-seal from *arrival*, and a
			// request that waited behind a blocked batcher (e.g. a full
			// batches channel) must not restart a full window — without the
			// credit such a request can wait just under 2×MaxLinger.
			d := s.cfg.MaxLinger - time.Since(r.enq)
			if d < 0 {
				d = 0
			}
			linger.Reset(d)
		}
		pending = append(pending, r)
		pendingVerts += len(r.ids)
		if pendingVerts >= s.cfg.MaxBatch {
			flush()
		}
	}

	for {
		select {
		case r := <-s.queue:
			admitOne(r)
		case <-linger.C:
			flush()
		case <-s.stopc:
			// Shutdown waits for all Infer calls before closing stopc, so
			// the queue is quiescent; drain any stragglers and finish.
			for {
				select {
				case r := <-s.queue:
					admitOne(r)
				default:
					flush()
					return
				}
			}
		}
	}
}

// worker executes sealed batches. The snapshot pointer is loaded exactly
// once per batch: a concurrent Swap can never mix model versions inside
// one batch, and every member's Result reports the same version.
func (s *Server) worker() {
	defer s.pipeWG.Done()
	for b := range s.batches {
		s.runBatch(b)
	}
}

func (s *Server) runBatch(b *batch) {
	s.inflightBatches.Add(1)
	defer s.inflightBatches.Add(-1)
	// A panicking batch must error its members, not kill the server: the
	// kernels contain their own worker panics (gnn's contain boundary),
	// and this backstop covers the response-distribution code around them.
	responded := 0
	defer func() {
		if r := recover(); r != nil {
			s.tel.Inc(telemetry.CtrPanicsRecovered)
			err := fmt.Errorf("serve: batch %d panicked: %v", b.id, r)
			for _, req := range b.reqs[responded:] {
				req.resp <- response{err: err}
			}
		}
	}()
	if s.cfg.testGate != nil {
		<-s.cfg.testGate
	}

	// Seal→dispatch wait: time the sealed batch spent behind other batches
	// (worker contention), annotated into every member's trace.
	if !b.sealed.IsZero() {
		wait := time.Since(b.sealed)
		for _, r := range b.reqs {
			r.tr.AddSpan(telemetry.PhaseSeal, b.sealed, wait)
		}
	}

	snap := s.snap.Load() // the batch's one and only snapshot read

	// The batch runs until its most patient member's deadline.
	ctx := context.Background()
	var latest time.Time
	traced := false
	for _, r := range b.reqs {
		if d, ok := r.ctx.Deadline(); ok && d.After(latest) {
			latest = d
		}
		traced = traced || r.tr != nil
	}
	if !latest.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, latest)
		defer cancel()
	}
	if traced {
		// One batch serves N requests: fan the batch-execute section (and
		// the per-layer spans gnn opens under it) into every member's tree.
		trs := make([]*telemetry.Trace, len(b.reqs))
		for i, r := range b.reqs {
			trs[i] = r.tr
		}
		ctx = telemetry.JoinTraces(ctx, trs)
	}

	// Batches sealed before a breaker trip still reach here; re-check at
	// execution time so a freshly opened breaker fails them fast instead of
	// running them against the failing snapshot.
	if s.brk != nil && !s.brk.allow(time.Now()) {
		for _, r := range b.reqs {
			r.resp <- response{err: ErrBreakerOpen}
			responded++
		}
		return
	}

	if b.level > 0 {
		s.tel.Inc(telemetry.CtrServeDegraded)
		for _, r := range b.reqs {
			r.tr.SetAttr("degrade_level", strconv.Itoa(b.level))
		}
	}

	bctx, tsp := telemetry.StartSpan(ctx, telemetry.PhaseServeBatch)
	sp := s.tel.Begin(telemetry.PhaseServeBatch)
	// execute is one attempt against the pinned snapshot; the rng is rebuilt
	// per attempt so a budgeted retry samples the exact same neighbourhoods.
	execute := func() (*tensor.Matrix, error) {
		if ferr := s.cfg.Inject.Fault(faultinject.SiteServeExecute); ferr != nil {
			return nil, fmt.Errorf("serve: batch %d execute: %w", b.id, ferr)
		}
		rng := rand.New(rand.NewSource(s.cfg.Seed + int64(b.id)))
		return gnn.InferVerticesContext(bctx, snap.Net, s.cfg.Graph, s.cfg.X, b.ids, b.fanouts, rng,
			gnn.RunOptions{Threads: s.cfg.Threads, Tel: s.tel})
	}
	out, err := execute()
	if err != nil && !isCtxErr(err) && s.retry.spend() {
		// One budgeted retry against the same snapshot (never a newer one:
		// the retry must not break the no-mixed-versions invariant).
		s.tel.Inc(telemetry.CtrServeRetries)
		out, err = execute()
	}
	tsp.End()
	sp.EndTraced(telemetry.ContextTraceID(ctx))

	if err != nil {
		// Deadline/cancellation failures are load problems, not snapshot
		// problems — only organic execution failures feed the breaker.
		if !isCtxErr(err) {
			s.brk.onFailure(time.Now())
		}
		for _, r := range b.reqs {
			r.resp <- response{err: err}
			responded++
		}
		return
	}
	s.brk.onSuccess(time.Now())
	s.retry.earn()
	s.tel.Inc(telemetry.CtrServeBatches)
	s.tel.Add(telemetry.CtrServeVertices, int64(len(b.ids)))

	off := 0
	for _, r := range b.reqs {
		start := off
		off += len(r.ids)
		if ferr := s.cfg.Inject.Fault(faultinject.SiteServeRespond); ferr != nil {
			// The member still gets exactly one response — an error envelope
			// instead of logits; distribution faults never drop a waiter.
			r.resp <- response{err: fmt.Errorf("serve: batch %d respond: %w", b.id, ferr)}
			responded++
			continue
		}
		rows := tensor.NewMatrix(len(r.ids), out.Cols)
		for i := range r.ids {
			copy(rows.Row(i), out.Row(start+i))
		}
		r.resp <- response{res: Result{
			Logits: rows, Version: snap.Version, BatchID: b.id,
			DegradeLevel: b.level, FanoutFrac: b.frac,
		}}
		responded++
	}
}

// isCtxErr reports whether an execution error is a context expiry rather
// than an organic failure of the snapshot.
func isCtxErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
