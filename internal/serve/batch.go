package serve

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"graphite/internal/gnn"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// batch is a sealed mini-batch: the concatenation of its members' vertex
// lists, executed in one forward pass.
type batch struct {
	id     uint64
	reqs   []*request
	ids    []int32
	sealed time.Time // when the batcher closed this batch
}

// batcher coalesces queued requests into mini-batches. A batch seals when
// it holds MaxBatch vertices or when the first member has lingered
// MaxLinger. Requests whose context expired while queued are rejected
// here, before any kernel work is spent on them.
func (s *Server) batcher() {
	defer s.pipeWG.Done()
	defer close(s.batches)

	var pending []*request
	var pendingVerts int
	linger := time.NewTimer(time.Hour)
	linger.Stop()
	defer linger.Stop()

	flush := func() {
		if len(pending) == 0 {
			return
		}
		linger.Stop()
		b := &batch{id: s.nextBatch.Add(1)}
		now := time.Now()
		b.sealed = now
		for _, r := range pending {
			if r.ctx.Err() != nil {
				// Expired while queued: reject before dispatch.
				r.resp <- response{err: r.ctx.Err()}
				continue
			}
			s.tel.ObserveTraced(telemetry.PhaseServeQueue, now.Sub(r.enq), r.tr.ID())
			r.tr.AddSpan(telemetry.PhaseServeQueue, r.enq, now.Sub(r.enq))
			b.reqs = append(b.reqs, r)
			b.ids = append(b.ids, r.ids...)
		}
		pending, pendingVerts = nil, 0
		if len(b.reqs) == 0 {
			return
		}
		s.batches <- b
	}

	admitOne := func(r *request) {
		if r.ctx.Err() != nil {
			r.resp <- response{err: r.ctx.Err()}
			return
		}
		// Never split one request across batches: seal first if it would
		// overflow the cap.
		if pendingVerts > 0 && pendingVerts+len(r.ids) > s.cfg.MaxBatch {
			flush()
		}
		if pendingVerts == 0 {
			linger.Reset(s.cfg.MaxLinger)
		}
		pending = append(pending, r)
		pendingVerts += len(r.ids)
		if pendingVerts >= s.cfg.MaxBatch {
			flush()
		}
	}

	for {
		select {
		case r := <-s.queue:
			admitOne(r)
		case <-linger.C:
			flush()
		case <-s.stopc:
			// Shutdown waits for all Infer calls before closing stopc, so
			// the queue is quiescent; drain any stragglers and finish.
			for {
				select {
				case r := <-s.queue:
					admitOne(r)
				default:
					flush()
					return
				}
			}
		}
	}
}

// worker executes sealed batches. The snapshot pointer is loaded exactly
// once per batch: a concurrent Swap can never mix model versions inside
// one batch, and every member's Result reports the same version.
func (s *Server) worker() {
	defer s.pipeWG.Done()
	for b := range s.batches {
		s.runBatch(b)
	}
}

func (s *Server) runBatch(b *batch) {
	s.inflightBatches.Add(1)
	defer s.inflightBatches.Add(-1)
	// A panicking batch must error its members, not kill the server: the
	// kernels contain their own worker panics (gnn's contain boundary),
	// and this backstop covers the response-distribution code around them.
	responded := 0
	defer func() {
		if r := recover(); r != nil {
			s.tel.Inc(telemetry.CtrPanicsRecovered)
			err := fmt.Errorf("serve: batch %d panicked: %v", b.id, r)
			for _, req := range b.reqs[responded:] {
				req.resp <- response{err: err}
			}
		}
	}()
	if s.cfg.testGate != nil {
		<-s.cfg.testGate
	}

	// Seal→dispatch wait: time the sealed batch spent behind other batches
	// (worker contention), annotated into every member's trace.
	if !b.sealed.IsZero() {
		wait := time.Since(b.sealed)
		for _, r := range b.reqs {
			r.tr.AddSpan(telemetry.PhaseSeal, b.sealed, wait)
		}
	}

	snap := s.snap.Load() // the batch's one and only snapshot read

	// The batch runs until its most patient member's deadline.
	ctx := context.Background()
	var latest time.Time
	traced := false
	for _, r := range b.reqs {
		if d, ok := r.ctx.Deadline(); ok && d.After(latest) {
			latest = d
		}
		traced = traced || r.tr != nil
	}
	if !latest.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, latest)
		defer cancel()
	}
	if traced {
		// One batch serves N requests: fan the batch-execute section (and
		// the per-layer spans gnn opens under it) into every member's tree.
		trs := make([]*telemetry.Trace, len(b.reqs))
		for i, r := range b.reqs {
			trs[i] = r.tr
		}
		ctx = telemetry.JoinTraces(ctx, trs)
	}

	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(b.id)))
	bctx, tsp := telemetry.StartSpan(ctx, telemetry.PhaseServeBatch)
	sp := s.tel.Begin(telemetry.PhaseServeBatch)
	out, err := gnn.InferVerticesContext(bctx, snap.Net, s.cfg.Graph, s.cfg.X, b.ids, s.cfg.Fanouts, rng,
		gnn.RunOptions{Threads: s.cfg.Threads, Tel: s.tel})
	tsp.End()
	sp.EndTraced(telemetry.ContextTraceID(ctx))

	if err != nil {
		for _, r := range b.reqs {
			r.resp <- response{err: err}
			responded++
		}
		return
	}
	s.tel.Inc(telemetry.CtrServeBatches)
	s.tel.Add(telemetry.CtrServeVertices, int64(len(b.ids)))

	off := 0
	for _, r := range b.reqs {
		rows := tensor.NewMatrix(len(r.ids), out.Cols)
		for i := range r.ids {
			copy(rows.Row(i), out.Row(off+i))
		}
		off += len(r.ids)
		r.resp <- response{res: Result{Logits: rows, Version: snap.Version, BatchID: b.id}}
		responded++
	}
}
