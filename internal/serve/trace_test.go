package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"graphite/internal/obsrv"
	"graphite/internal/telemetry"
)

// TestTraceSpanTreeEndToEnd drives one traced request through the direct
// Infer path and checks the recorded span tree: every pipeline stage is
// attributed, and the parent links reconstruct admission → queue → seal →
// batch → per-layer execution.
func TestTraceSpanTreeEndToEnd(t *testing.T) {
	cfg := testConfig(t)
	s := newTestServer(t, cfg)

	up := telemetry.TraceParent{TraceID: telemetry.NewTraceID(), Sampled: true}
	up.Parent[0] = 0x42
	ctx := WithTraceParent(context.Background(), up)
	res, err := s.Infer(ctx, []int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != up.TraceID {
		t.Fatalf("Result.TraceID = %s, want upstream %s", res.TraceID, up.TraceID)
	}
	if res.RootSpan.IsZero() {
		t.Fatal("Result.RootSpan is zero")
	}

	td, ok := s.Traces().Get(up.TraceID)
	if !ok {
		t.Fatal("traced request not in flight recorder")
	}
	if td.RemoteParent != up.Parent {
		t.Fatalf("remote parent = %s, want %s", td.RemoteParent, up.Parent)
	}
	if td.Status != "" {
		t.Fatalf("status = %q, want success", td.Status)
	}
	// The 2-layer test model must produce the full pipeline vocabulary.
	for _, name := range []string{
		telemetry.PhaseServeE2E, telemetry.PhaseAdmission,
		telemetry.PhaseServeQueue, telemetry.PhaseSeal,
		telemetry.PhaseServeBatch, telemetry.PhaseSample,
		telemetry.LayerName(0), telemetry.LayerName(1),
		telemetry.PhaseAggregate, telemetry.PhaseUpdate,
	} {
		if !td.HasSpan(name) {
			t.Errorf("trace missing span %q; have %v", name, spanNames(td.TraceData))
		}
	}

	find := func(name string) telemetry.SpanRecord {
		t.Helper()
		for _, sp := range td.Spans {
			if sp.Name == name {
				return sp
			}
		}
		t.Fatalf("no span %q", name)
		return telemetry.SpanRecord{}
	}
	root := find(telemetry.PhaseServeE2E)
	if root.ID != td.Root {
		t.Fatalf("root span id %s != td.Root %s", root.ID, td.Root)
	}
	batch := find(telemetry.PhaseServeBatch)
	if batch.Parent != root.ID {
		t.Errorf("serve-batch parent = %s, want root %s", batch.Parent, root.ID)
	}
	layer0 := find(telemetry.LayerName(0))
	if layer0.Parent != batch.ID {
		t.Errorf("layer0 parent = %s, want serve-batch %s", layer0.Parent, batch.ID)
	}
	agg := find(telemetry.PhaseAggregate)
	if agg.Parent != layer0.ID {
		t.Errorf("aggregate parent = %s, want layer0 %s", agg.Parent, layer0.ID)
	}
	queue := find(telemetry.PhaseServeQueue)
	if queue.Parent != root.ID {
		t.Errorf("serve-queue parent = %s, want root %s", queue.Parent, root.ID)
	}
}

func spanNames(td telemetry.TraceData) []string {
	out := make([]string, len(td.Spans))
	for i, sp := range td.Spans {
		out[i] = sp.Name
	}
	return out
}

// TestTraceFanOutSharesBatchSpans proves batch fan-out: two requests
// coalesced into one mini-batch each get their own trace, and both trees
// carry the shared batch-execute span (with per-trace span identities).
func TestTraceFanOutSharesBatchSpans(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxLinger = 50 * time.Millisecond
	cfg.MaxBatch = 8
	s := newTestServer(t, cfg)

	var wg sync.WaitGroup
	results := make([]Result, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Infer(context.Background(), []int32{int32(10 + i)})
			if err != nil {
				t.Errorf("Infer %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if results[0].BatchID != results[1].BatchID {
		t.Skipf("requests landed in different batches (%d vs %d); coalescing is timing-dependent",
			results[0].BatchID, results[1].BatchID)
	}
	if results[0].TraceID == results[1].TraceID {
		t.Fatal("coalesced requests must keep distinct trace ids")
	}
	for i, res := range results {
		td, ok := s.Traces().Get(res.TraceID)
		if !ok {
			t.Fatalf("trace %d not recorded", i)
		}
		if !td.HasSpan(telemetry.PhaseServeBatch) || !td.HasSpan(telemetry.LayerName(0)) {
			t.Errorf("trace %d missing shared batch spans: %v", i, spanNames(td.TraceData))
		}
	}
}

// TestTraceSamplingDisabled pins the opt-out: with a negative sample rate
// nothing is traced — unless the caller sends an explicitly sampled
// traceparent, which always wins.
func TestTraceSamplingDisabled(t *testing.T) {
	cfg := testConfig(t)
	cfg.TraceSample = -1
	s := newTestServer(t, cfg)

	res, err := s.Infer(context.Background(), []int32{5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TraceID.IsZero() {
		t.Fatalf("untraced request got trace id %s", res.TraceID)
	}
	if stats := s.Traces().Stats(); stats.Recorded != 0 {
		t.Fatalf("recorder saw %d traces with sampling off", stats.Recorded)
	}

	up := telemetry.TraceParent{TraceID: telemetry.NewTraceID(), Sampled: true}
	up.Parent[7] = 1
	res, err = s.Infer(WithTraceParent(context.Background(), up), []int32{5})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != up.TraceID {
		t.Fatal("explicitly sampled traceparent must force tracing")
	}
}

// TestHTTPTraceRoundTrip is the full wire-level walk: a request with a
// known traceparent comes back with the id echoed (header + body), the
// trace is fetchable from /v1/traces, and the serve-e2e histogram's
// exemplar on /metrics references a recorded trace.
func TestHTTPTraceRoundTrip(t *testing.T) {
	cfg := testConfig(t)
	s := newTestServer(t, cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodPost, base+"/v1/infer",
		strings.NewReader(`{"vertices":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer = %d: %s", resp.StatusCode, body)
	}
	const wantID = "4bf92f3577b34da6a3ce929d0e0e4736"
	echo := resp.Header.Get("traceparent")
	if !strings.HasPrefix(echo, "00-"+wantID+"-") || !strings.HasSuffix(echo, "-01") {
		t.Fatalf("traceparent echo = %q, want trace id %s sampled", echo, wantID)
	}
	var out inferResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != wantID {
		t.Fatalf("body trace_id = %q, want %s", out.TraceID, wantID)
	}

	// The trace is retrievable by id with the span tree attached.
	resp, err = http.Get(base + "/v1/traces?id=" + wantID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/traces?id= status %d: %s", resp.StatusCode, body)
	}
	for _, name := range []string{
		telemetry.PhaseAdmission, telemetry.PhaseServeQueue,
		telemetry.PhaseServeBatch, telemetry.LayerName(0),
	} {
		if !bytes.Contains(body, []byte(`"name": "`+name+`"`)) {
			t.Errorf("/v1/traces body missing span %q", name)
		}
	}

	// The serve-e2e exemplar on /metrics points at a recorded trace.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples, err := obsrv.ParseExposition(bytes.NewReader(metrics))
	if err != nil {
		t.Fatal(err)
	}
	exemplarID := ""
	for _, sm := range samples.Samples {
		if sm.Name == "graphite_phase_latency_seconds_bucket" &&
			sm.Labels["phase"] == telemetry.PhaseServeE2E && sm.Exemplar != nil {
			exemplarID = sm.Exemplar.Labels["trace_id"]
			break
		}
	}
	if exemplarID == "" {
		t.Fatal("no exemplar on serve-e2e latency buckets")
	}
	if exemplarID != wantID {
		t.Fatalf("serve-e2e exemplar trace_id = %s, want %s", exemplarID, wantID)
	}
}

// TestRejectionCarriesTraceID pins 429 correlation end to end: the JSON
// error envelope names the trace id, the trace lands in the flight
// recorder with status queue_full, and the /events stream carries a
// serve/queue_full event stamped with the same id.
func TestRejectionCarriesTraceID(t *testing.T) {
	gate := make(chan struct{})
	cfg := testConfig(t)
	cfg.MaxBatch = 1
	cfg.QueueCap = 2
	cfg.Workers = 1
	cfg.MaxLinger = time.Millisecond
	cfg.Deadline = 30 * time.Second
	cfg.testGate = gate
	s := newTestServer(t, cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	// Wedge the pipeline (worker blocked on the gate), as in
	// TestOverloadRejects, so a fresh HTTP request must bounce with 429.
	const stuck = 5
	var wg sync.WaitGroup
	for i := 0; i < stuck; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				_, err := s.Infer(context.Background(), []int32{int32(i)})
				if !errors.Is(err, ErrQueueFull) {
					if err != nil {
						t.Errorf("stuck request %d: %v", i, err)
					}
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	defer func() { close(gate); wg.Wait() }()

	var envelope apiError
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(base+"/v1/infer", "application/json",
			strings.NewReader(`{"vertices":[99],"timeout_ms":5}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if err := json.Unmarshal(body, &envelope); err != nil {
				t.Fatalf("bad 429 envelope %s: %v", body, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw 429; last status %d", resp.StatusCode)
		}
	}
	if envelope.Error.Code != "queue_full" {
		t.Fatalf("code = %q, want queue_full", envelope.Error.Code)
	}
	if envelope.Error.TraceID == "" {
		t.Fatal("429 envelope has no trace_id")
	}
	tid, err := telemetry.ParseTraceID(envelope.Error.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	td, ok := s.Traces().Get(tid)
	if !ok {
		t.Fatal("rejected trace not in flight recorder")
	}
	if td.Status != "queue_full" {
		t.Fatalf("trace status = %q, want queue_full", td.Status)
	}

	// The rejection event carries the same trace id; it was published
	// before this GET, so it arrives in the replay history immediately.
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	timer := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	defer timer.Stop()
	sc := bufio.NewScanner(resp.Body)
	found := false
	for sc.Scan() {
		var ev obsrv.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == "serve" && ev.Status == "queue_full" && ev.TraceID == envelope.Error.TraceID {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no serve/queue_full event with the envelope's trace id")
	}
}

// TestStatsReportsRecorder pins the /v1/stats traces block.
func TestStatsReportsRecorder(t *testing.T) {
	cfg := testConfig(t)
	s := newTestServer(t, cfg)
	if _, err := s.Infer(context.Background(), []int32{0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/stats", s.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Traces obsrv.FlightRecorderStats `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Traces.Recorded < 1 || stats.Traces.Kept < 1 {
		t.Fatalf("stats.traces = %+v, want at least one recorded+kept", stats.Traces)
	}
}
