package serve

import (
	"math"
	"sync"
	"time"
)

// Overload-controller defaults applied by NewServer when the corresponding
// Config field is zero.
const (
	// DefaultShedTarget is the queue-sojourn target: sustained sojourn
	// above it means the server is queueing more latency than it can
	// drain, and admission starts shedding.
	DefaultShedTarget = 50 * time.Millisecond
	// DefaultShedInterval is the CoDel control interval: sojourn must stay
	// above target for a full interval before the first shed, and the
	// degradation ladder moves at most one step per interval.
	DefaultShedInterval = 100 * time.Millisecond
)

// DefaultDegradeLadder is the fanout ladder applied under measured
// overload: level 0 serves the configured fanouts, level 1 serves half,
// level 2 a quarter. Each entry is the fraction of the configured
// per-layer sampling fanout served at that level.
var DefaultDegradeLadder = []float64{1.0, 0.5, 0.25}

// shedder is a CoDel-style overload controller for the admission queue.
//
// Classic CoDel watches packet sojourn time at dequeue and starts dropping
// when the minimum sojourn over a control interval exceeds a target,
// spacing drops at interval/sqrt(count) so drop pressure grows until the
// queue drains. This adaptation observes request sojourn at batch-seal
// time (the serving analogue of dequeue) and sheds at admission — new
// requests bounce with 429 + Retry-After while already-queued requests
// keep their order — which is the right edge for an HTTP server: the
// client that has not invested wait time yet is the cheap one to turn
// away.
//
// On top of the binary shed decision it runs the degradation ladder:
// each full control interval spent above target escalates one level
// (serving progressively smaller sampling fanouts), and recovery requires
// sojourn below target/2 (hysteresis) for a full interval per step down,
// so the level cannot flap on a noisy boundary.
//
// All methods are safe for concurrent use. now is injected for tests.
type shedder struct {
	target   time.Duration
	interval time.Duration
	levels   int // highest ladder level (len(ladder)-1)

	mu sync.Mutex
	// firstAbove is the earliest time shedding may begin: set to
	// now+interval when sojourn first exceeds target, zeroed when sojourn
	// drops below target.
	firstAbove time.Time
	shedding   bool
	dropNext   time.Time
	dropCount  int
	// level is the current degradation ladder level; levelSince is when
	// it last changed (rate-limits escalation and recovery).
	level      int
	levelSince time.Time
	// belowSince is when sojourn last crossed under target/2; recovery
	// steps require a full interval below that line.
	belowSince time.Time
	// lastSojourn is the most recent observation, exported for the
	// Retry-After hint and /v1/stats.
	lastSojourn time.Duration
}

func newShedder(target, interval time.Duration, levels int) *shedder {
	return &shedder{target: target, interval: interval, levels: levels}
}

// observe feeds one sealed request's queue sojourn into the control law.
// The batcher calls it for every member it seals, so under load the
// controller sees a dense sample of what the queue is actually doing.
func (sh *shedder) observe(sojourn time.Duration, now time.Time) {
	if sh == nil {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.lastSojourn = sojourn

	if sojourn < sh.target {
		// Below target: disarm shedding immediately (CoDel's exit: any
		// observation under target proves the queue can drain).
		sh.firstAbove = time.Time{}
		if sh.shedding {
			sh.shedding = false
			// Next episode restarts gently but remembers recent history:
			// halving instead of resetting is CoDel's standard refinement.
			sh.dropCount /= 2
		}
		// Ladder recovery: a full interval below target/2 steps down one
		// level; the tighter line plus the dwell time is the hysteresis
		// that keeps recovery stable.
		if sojourn < sh.target/2 {
			if sh.belowSince.IsZero() {
				sh.belowSince = now
			}
			if sh.level > 0 && now.Sub(sh.levelSince) >= sh.interval && now.Sub(sh.belowSince) >= sh.interval {
				sh.level--
				sh.levelSince = now
			}
		} else {
			sh.belowSince = time.Time{}
		}
		return
	}

	// Above target.
	sh.belowSince = time.Time{}
	if sh.firstAbove.IsZero() {
		sh.firstAbove = now.Add(sh.interval)
		return
	}
	if now.Before(sh.firstAbove) {
		return
	}
	// Sojourn has been above target for a full interval.
	if !sh.shedding {
		sh.shedding = true
		if sh.dropCount < 1 {
			sh.dropCount = 1
		}
		sh.dropNext = now // shed the next admission immediately
	}
	if sh.level < sh.levels && now.Sub(sh.levelSince) >= sh.interval {
		sh.level++
		sh.levelSince = now
	}
}

// shouldShed reports whether the admission arriving at now should be
// turned away. While in the shedding state, rejections are spaced on the
// CoDel schedule: the gap shrinks as interval/sqrt(count) until observe
// sees sojourn back under target.
func (sh *shedder) shouldShed(now time.Time) bool {
	if sh == nil {
		return false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.shedding || now.Before(sh.dropNext) {
		return false
	}
	sh.dropCount++
	sh.dropNext = now.Add(time.Duration(float64(sh.interval) / math.Sqrt(float64(sh.dropCount))))
	return true
}

// degradeLevel returns the ladder level batches sealing now execute at.
func (sh *shedder) degradeLevel() int {
	if sh == nil {
		return 0
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.level
}

// isShedding reports the binary shedding state (exported as a gauge).
func (sh *shedder) isShedding() bool {
	if sh == nil {
		return false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.shedding
}

// retryAfter is the backoff hint stamped on shed responses: long enough
// that an obedient client retries after the controller has had a full
// interval to drain, scaled up when observed sojourn is worse than that.
func (sh *shedder) retryAfter() time.Duration {
	if sh == nil {
		return DefaultShedInterval
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d := sh.interval
	if sh.lastSojourn > d {
		d = sh.lastSojourn
	}
	if max := 10 * time.Second; d > max {
		d = max
	}
	return d
}

// sojourn returns the most recent observed queue sojourn (for /v1/stats).
func (sh *shedder) sojourn() time.Duration {
	if sh == nil {
		return 0
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.lastSojourn
}

// scaleFanouts applies one ladder fraction to the configured per-layer
// fanouts. Full neighbourhoods (entries <= 0) are left exact — degraded
// mode trades sampled accuracy for latency, it does not invent sampling
// where the operator asked for exact inference — and scaled fanouts never
// drop below 1 neighbour.
func scaleFanouts(fanouts []int, frac float64) []int {
	if frac >= 1 || len(fanouts) == 0 {
		return fanouts
	}
	out := make([]int, len(fanouts))
	for i, f := range fanouts {
		if f <= 0 {
			out[i] = f
			continue
		}
		s := int(math.Ceil(float64(f) * frac))
		if s < 1 {
			s = 1
		}
		out[i] = s
	}
	return out
}
