package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"graphite/internal/gnn"
	"graphite/internal/graph"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// testConfig builds a small deterministic serving config. Overrides are
// applied by the caller on the returned value before NewServer.
func testConfig(t *testing.T) Config {
	t.Helper()
	g, err := graph.GenerateProfile(graph.Products, 200)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(g.NumVertices(), 12)
	x.FillSparse(rand.New(rand.NewSource(3)), 1, 0.3)
	net, err := gnn.NewNetwork(gnn.Config{Kind: gnn.GCN, Dims: []int{12, 16, 4}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return Config{Net: net, Graph: g, X: x, Threads: 2, Seed: 1}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s
}

// checkpointBytes serialises a network for Swap tests.
func checkpointBytes(t *testing.T, net *gnn.Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestInferMatchesDirectPath pins the pipeline end to end: a served
// request returns the same logits as calling the inference kernel
// directly with full fanouts.
func TestInferMatchesDirectPath(t *testing.T) {
	cfg := testConfig(t)
	s := newTestServer(t, cfg)

	ids := []int32{0, 5, 17, 199}
	res, err := s.Infer(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 {
		t.Fatalf("version = %d, want 1", res.Version)
	}
	want, err := gnn.InferVerticesContext(context.Background(), cfg.Net, cfg.Graph, cfg.X, ids, nil, nil,
		gnn.RunOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		for j, got := range res.Logits.Row(i) {
			if d := math.Abs(float64(got - want.Row(i)[j])); d > 1e-5 {
				t.Fatalf("logit (%d,%d): served %g vs direct %g", i, j, got, want.Row(i)[j])
			}
		}
	}
}

// TestExpiredRejectedBeforeDispatch proves a request whose deadline died
// in the queue never reaches the kernels: it fails with
// context.DeadlineExceeded and no batch is ever executed.
func TestExpiredRejectedBeforeDispatch(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBatch = 1000
	cfg.MaxLinger = 30 * time.Millisecond
	s := newTestServer(t, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass before enqueue
	_, err := s.Infer(ctx, []int32{1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Wait out the linger window: the batcher must have seen and dropped
	// the request without sealing a batch.
	time.Sleep(3 * cfg.MaxLinger)
	if n := s.Tel().Counter(telemetry.CtrServeBatches); n != 0 {
		t.Fatalf("%d batches dispatched for an expired request, want 0", n)
	}
	if n := s.Tel().Counter(telemetry.CtrServeExpired); n != 1 {
		t.Fatalf("expired counter = %d, want 1", n)
	}
}

// TestLingerFlushesPartialBatch proves max-linger dispatches a partial
// batch: one lonely request far below MaxBatch still completes promptly.
func TestLingerFlushesPartialBatch(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBatch = 1000 // never filled by this test
	cfg.MaxLinger = 10 * time.Millisecond
	cfg.Deadline = 10 * time.Second
	s := newTestServer(t, cfg)

	start := time.Now()
	res, err := s.Infer(context.Background(), []int32{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if wait := time.Since(start); wait > 5*time.Second {
		t.Fatalf("partial batch took %v; linger flush did not fire", wait)
	}
	if res.Logits.Rows != 2 {
		t.Fatalf("rows = %d, want 2", res.Logits.Rows)
	}
	if n := s.Tel().Counter(telemetry.CtrServeBatches); n != 1 {
		t.Fatalf("batches = %d, want 1", n)
	}
}

// TestCoalescing proves concurrent small requests share one mini-batch:
// with MaxBatch=8 and a long linger, four 2-vertex requests must ride the
// same BatchID (the batch only seals once all four arrive).
func TestCoalescing(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBatch = 8
	cfg.MaxLinger = time.Minute // sealing must come from the size cap
	cfg.Deadline = 10 * time.Second
	s := newTestServer(t, cfg)

	var wg sync.WaitGroup
	results := make([]Result, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := int32(2 * i)
			res, err := s.Infer(context.Background(), []int32{base, base + 1})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < 4; i++ {
		if results[i].BatchID != results[0].BatchID {
			t.Fatalf("request %d rode batch %d, request 0 rode %d — not coalesced",
				i, results[i].BatchID, results[0].BatchID)
		}
	}
	if n := s.Tel().Counter(telemetry.CtrServeVertices); n != 8 {
		t.Fatalf("vertices served = %d, want 8", n)
	}
}

// TestSwapNeverMixesVersions hammers the server with concurrent inference
// and hot swaps (run under -race): every response in one batch must carry
// the same snapshot version, i.e. a swap never lands mid-batch.
func TestSwapNeverMixesVersions(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBatch = 4
	cfg.MaxLinger = 500 * time.Microsecond
	cfg.Workers = 2
	cfg.QueueCap = 1024
	cfg.Deadline = 30 * time.Second
	s := newTestServer(t, cfg)

	// A distinguishable replacement model with identical architecture.
	alt, err := gnn.NewNetwork(gnn.Config{Kind: gnn.GCN, Dims: []int{12, 16, 4}, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := checkpointBytes(t, alt)

	var mu sync.Mutex
	batchVersion := map[uint64]uint64{}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, err := s.Infer(context.Background(), []int32{int32((g*25 + i) % 200)})
				if err != nil {
					t.Errorf("infer: %v", err)
					return
				}
				mu.Lock()
				if v, ok := batchVersion[res.BatchID]; ok && v != res.Version {
					t.Errorf("batch %d saw versions %d and %d", res.BatchID, v, res.Version)
				}
				batchVersion[res.BatchID] = res.Version
				mu.Unlock()
			}
		}(g)
	}
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; i < 40; i++ {
			if _, err := s.Swap(bytes.NewReader(ckpt)); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-swapDone

	if v := s.Snapshot().Version; v != 41 {
		t.Fatalf("final version = %d, want 41", v)
	}
	if n := s.Tel().Counter(telemetry.CtrServeSwaps); n != 40 {
		t.Fatalf("swap counter = %d, want 40", n)
	}
}

// TestSwapValidation proves an architecture-mismatched checkpoint is
// refused and the serving snapshot is untouched.
func TestSwapValidation(t *testing.T) {
	cfg := testConfig(t)
	s := newTestServer(t, cfg)

	wrong, err := gnn.NewNetwork(gnn.Config{Kind: gnn.GCN, Dims: []int{12, 8, 4}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap(bytes.NewReader(checkpointBytes(t, wrong))); !errors.Is(err, ErrInvalid) {
		t.Fatalf("hidden-dim mismatch: err = %v, want ErrInvalid", err)
	}
	wrongKind, err := gnn.NewNetwork(gnn.Config{Kind: gnn.SAGE, Dims: []int{12, 16, 4}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap(bytes.NewReader(checkpointBytes(t, wrongKind))); !errors.Is(err, ErrInvalid) {
		t.Fatalf("kind mismatch: err = %v, want ErrInvalid", err)
	}
	if _, err := s.Swap(bytes.NewReader([]byte("junk"))); !errors.Is(err, ErrInvalid) {
		t.Fatalf("garbage checkpoint: err = %v, want ErrInvalid", err)
	}
	if v := s.Snapshot().Version; v != 1 {
		t.Fatalf("version moved to %d on rejected swaps", v)
	}
}

// TestOverloadRejects blocks the pipeline behind the test gate, fills the
// batch channel and the admission queue, and proves further requests get
// ErrQueueFull immediately — then releases the gate and checks the stuck
// requests all complete (no request lost to overload handling).
func TestOverloadRejects(t *testing.T) {
	gate := make(chan struct{})
	cfg := testConfig(t)
	cfg.MaxBatch = 1
	cfg.QueueCap = 2
	cfg.Workers = 1
	cfg.MaxLinger = time.Millisecond
	cfg.Deadline = 30 * time.Second
	cfg.testGate = gate
	s := newTestServer(t, cfg)

	// Capacity with the worker wedged: 1 executing + 1 in the batch
	// channel + 1 sealed-but-blocked in the batcher + QueueCap queued.
	// The stuck requests retry on rejection (clients racing each other
	// for the last slots), so all of them are eventually admitted and
	// wedge the pipeline completely.
	const stuck = 5
	var wg sync.WaitGroup
	errs := make([]error, stuck)
	for i := 0; i < stuck; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				_, err := s.Infer(context.Background(), []int32{int32(i)})
				if !errors.Is(err, ErrQueueFull) {
					errs[i] = err
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}

	// With the pipeline wedged the queue can only fill; eventually every
	// slot is taken and an extra request must bounce with ErrQueueFull.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		_, err := s.Infer(ctx, []int32{99})
		cancel()
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw ErrQueueFull; last err = %v", err)
		}
	}
	if s.Tel().Counter(telemetry.CtrServeRejected) == 0 {
		t.Fatal("rejected counter not incremented")
	}

	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("stuck request %d failed after release: %v", i, err)
		}
	}
}

// TestShutdownDrains proves the lifecycle contract: Shutdown rejects new
// work, completes in-flight work, and is idempotent.
func TestShutdownDrains(t *testing.T) {
	cfg := testConfig(t)
	cfg.Deadline = 10 * time.Second
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Infer(context.Background(), []int32{0}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := s.Infer(context.Background(), []int32{0}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-shutdown err = %v, want ErrDraining", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestInferValidation covers admission-time rejections.
func TestInferValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBatch = 4
	s := newTestServer(t, cfg)
	bg := context.Background()
	if _, err := s.Infer(bg, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := s.Infer(bg, []int32{0, 1, 2, 3, 4}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("over max batch: %v", err)
	}
	if _, err := s.Infer(bg, []int32{-1}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative id: %v", err)
	}
	if _, err := s.Infer(bg, []int32{1 << 20}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("out of range: %v", err)
	}
}

// TestHTTPEndToEnd drives the real listener: infer, stats, checkpoint
// round-trip through swap, probes, metrics, and structured errors.
func TestHTTPEndToEnd(t *testing.T) {
	cfg := testConfig(t)
	cfg.Deadline = 10 * time.Second
	s := newTestServer(t, cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	// Probes and metrics come from the embedded obsrv plane.
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/v1/stats"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
	}

	// Inference round trip.
	post := func(path string, body []byte, contentType string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}
	resp, body := post("/v1/infer", []byte(`{"vertices":[1,2,3]}`), "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer = %d: %s", resp.StatusCode, body)
	}
	var ir inferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("bad infer response %s: %v", body, err)
	}
	if len(ir.Logits) != 3 || len(ir.Logits[0]) != 4 || ir.SnapshotVersion != 1 {
		t.Fatalf("infer response = %+v", ir)
	}

	// Checkpoint download, then hot swap it straight back in.
	ckResp, err := http.Get(base + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	ckpt, _ := io.ReadAll(ckResp.Body)
	ckResp.Body.Close()
	if ckResp.StatusCode != http.StatusOK || ckResp.Header.Get("X-Graphite-Snapshot-Version") != "1" {
		t.Fatalf("checkpoint = %d, version header %q", ckResp.StatusCode, ckResp.Header.Get("X-Graphite-Snapshot-Version"))
	}
	resp, body = post("/v1/swap", ckpt, "application/octet-stream")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap = %d: %s", resp.StatusCode, body)
	}
	var sw map[string]uint64
	if err := json.Unmarshal(body, &sw); err != nil || sw["snapshot_version"] != 2 {
		t.Fatalf("swap response %s (err %v)", body, err)
	}

	// Same weights, new version: inference must agree with the pre-swap
	// answer (the checkpoint was this server's own snapshot).
	resp, body2 := post("/v1/infer", []byte(`{"vertices":[1,2,3]}`), "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap infer = %d: %s", resp.StatusCode, body2)
	}
	var ir2 inferResponse
	if err := json.Unmarshal(body2, &ir2); err != nil {
		t.Fatal(err)
	}
	if ir2.SnapshotVersion != 2 {
		t.Fatalf("post-swap version = %d, want 2", ir2.SnapshotVersion)
	}
	for i := range ir.Logits {
		for j := range ir.Logits[i] {
			if ir.Logits[i][j] != ir2.Logits[i][j] {
				t.Fatalf("identical weights, different logits at (%d,%d)", i, j)
			}
		}
	}

	// Structured errors: bad JSON is a 400 with a machine-readable code.
	resp, body = post("/v1/infer", []byte(`{"vertices":`), "application/json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", resp.StatusCode)
	}
	var ae apiError
	if err := json.Unmarshal(body, &ae); err != nil || ae.Error.Code != "invalid_request" {
		t.Fatalf("error body %s (err %v)", body, err)
	}
	// Wrong method on swap.
	getResp, err := http.Get(base + "/v1/swap")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/swap = %d", getResp.StatusCode)
	}
}

// TestReadyzFlipsOnShutdown proves the drain sequencing a load balancer
// depends on: /readyz reports ready while serving and not-ready once
// Shutdown begins.
func TestReadyzFlipsOnShutdown(t *testing.T) {
	cfg := testConfig(t)
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while serving = %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(base + "/readyz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestGaugesExported proves the serve gauges ride the /metrics
// exposition.
func TestGaugesExported(t *testing.T) {
	cfg := testConfig(t)
	s := newTestServer(t, cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", s.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{
		"graphite_serve_queue_depth", "graphite_serve_queue_capacity",
		"graphite_serve_snapshot_version 1", "graphite_serve_draining 0",
	} {
		if !bytes.Contains(body, []byte(name)) {
			t.Errorf("exposition missing %q", name)
		}
	}
}
