package compress

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzCompressRoundTrip feeds arbitrary bit patterns (including NaNs,
// negative zeros, infinities, and denormals) through CompressRow /
// DecompressRow / AXPYRow and requires a value-exact round trip: the
// compressed form is the only stored copy of hidden features for the
// compressed variants (§4.3), so any lossy corner silently corrupts
// inference.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add(8, []byte{0, 0, 0, 0, 1, 2, 3, 4})
	f.Add(64, []byte{0x7f, 0xc0, 0, 0, 0x80, 0, 0, 0})          // NaN, -0
	f.Add(65, []byte{0x7f, 0x80, 0, 0, 0xff, 0x80, 0, 0, 1, 0}) // ±Inf across a mask-word boundary
	f.Add(1, []byte{})
	f.Fuzz(func(t *testing.T, cols int, data []byte) {
		if cols <= 0 || cols > 300 {
			t.Skip()
		}
		src := make([]float32, cols)
		for j := range src {
			if off := j * 4; off+4 <= len(data) {
				src[j] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			}
		}
		m := NewMatrix(1, cols)
		m.CompressRow(0, src)

		// NNZ must agree with the direct count (negative zero compares
		// equal to zero and is dropped; NaN is nonzero and kept).
		nnz := 0
		for _, v := range src {
			if v != 0 {
				nnz++
			}
		}
		if got := m.NNZ(0); got != nnz {
			t.Fatalf("NNZ = %d, want %d", got, nnz)
		}

		dst := make([]float32, cols)
		m.DecompressRow(dst, 0)
		for j := range src {
			if !sameValue(src[j], dst[j]) {
				t.Fatalf("col %d: decompressed %v, want %v", j, dst[j], src[j])
			}
		}

		// AXPYRow with alpha=1 into zeros must match the decompressed row.
		acc := make([]float32, cols)
		m.AXPYRow(acc, 0, 1)
		for j := range acc {
			if !sameValue(acc[j], dst[j]) {
				t.Fatalf("col %d: AXPYRow %v, want %v", j, acc[j], dst[j])
			}
		}
	})
}

// sameValue is float equality treating every NaN as equal to every NaN, and
// -0 as equal to +0 (compression canonicalises dropped zeros to +0).
func sameValue(a, b float32) bool {
	if a != a && b != b {
		return true
	}
	return a == b
}
