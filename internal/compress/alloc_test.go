package compress

import (
	"math/rand"
	"testing"

	"graphite/internal/tensor"
)

// TestZeroAllocRoundTrip asserts the per-row codecs — compress, expand, and
// the fused expand-accumulate the aggregation kernels call per edge gather —
// allocate zero bytes in steady state. Storage is constant-sized per row
// (§4.3), so once the compressed matrix exists the codecs only move values;
// any allocation here would put GC traffic on the per-edge path. The static
// counterpart is the internal/compress escape baseline in internal/lint,
// which contains no "moved to heap" entries (cross-checked by
// TestCommittedBaselinesImplyZeroAllocRows).
func TestZeroAllocRoundTrip(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race (CI has a dedicated step)")
	}
	rng := rand.New(rand.NewSource(5))
	for _, cols := range []int{16, 64, 65, 256} {
		const rows = 64
		src := tensor.NewMatrix(rows, cols)
		src.FillSparse(rng, 1, 0.5)
		cm := NewMatrix(rows, cols)
		dst := make([]float32, cols)
		acc := make([]float32, cols)

		if avg := testing.AllocsPerRun(10, func() {
			for i := 0; i < rows; i++ {
				cm.CompressRow(i, src.Row(i))
			}
		}); avg != 0 {
			t.Errorf("cols=%d: CompressRow allocates %.1f/run, want 0", cols, avg)
		}
		if avg := testing.AllocsPerRun(10, func() {
			for i := 0; i < rows; i++ {
				cm.DecompressRow(dst, i)
			}
		}); avg != 0 {
			t.Errorf("cols=%d: DecompressRow allocates %.1f/run, want 0", cols, avg)
		}
		if avg := testing.AllocsPerRun(10, func() {
			for i := 0; i < rows; i++ {
				cm.AXPYRow(acc, i, 0.5)
			}
		}); avg != 0 {
			t.Errorf("cols=%d: AXPYRow allocates %.1f/run, want 0", cols, avg)
		}
		// The round trip must also be lossless, so the zero-alloc numbers
		// above describe the real codec, not a short-circuited one.
		cm.DecompressRow(dst, 0)
		for j := 0; j < cols; j++ {
			if dst[j] != src.Row(0)[j] {
				t.Fatalf("cols=%d: round trip corrupted col %d", cols, j)
			}
		}
	}
}
