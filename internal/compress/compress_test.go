package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphite/internal/tensor"
)

func TestCompressDecompressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cols := range []int{1, 7, 63, 64, 65, 100, 128, 256} {
		src := tensor.NewMatrix(20, cols)
		src.FillSparse(rng, 1, 0.5)
		cm := FromDense(src, 2)
		back := cm.ToDense(2)
		if d := tensor.MaxAbsDiff(src, back); d != 0 {
			t.Fatalf("cols=%d: round trip diff %g", cols, d)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, cols8 uint8, sparsity8 uint8) bool {
		cols := int(cols8)%200 + 1
		sparsity := float64(sparsity8) / 255
		rng := rand.New(rand.NewSource(seed))
		src := tensor.NewMatrix(5, cols)
		src.FillSparse(rng, 2, sparsity)
		cm := FromDense(src, 1)
		return tensor.MaxAbsDiff(src, cm.ToDense(1)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllZeroAndAllDenseRows(t *testing.T) {
	src := tensor.NewMatrix(2, 70)
	row1 := src.Row(1)
	for j := range row1 {
		row1[j] = float32(j + 1)
	}
	cm := FromDense(src, 1)
	if cm.NNZ(0) != 0 {
		t.Fatalf("zero row NNZ %d", cm.NNZ(0))
	}
	if cm.NNZ(1) != 70 {
		t.Fatalf("dense row NNZ %d, want 70", cm.NNZ(1))
	}
	back := cm.ToDense(1)
	if d := tensor.MaxAbsDiff(src, back); d != 0 {
		t.Fatalf("round trip diff %g", d)
	}
}

func TestAXPYRowMatchesDecompressThenAXPY(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := tensor.NewMatrix(10, 90)
	src.FillSparse(rng, 1, 0.6)
	cm := FromDense(src, 1)
	for i := 0; i < src.Rows; i++ {
		a := make([]float32, 90)
		b := make([]float32, 90)
		for j := range a {
			a[j] = float32(j)
			b[j] = float32(j)
		}
		cm.AXPYRow(a, i, 0.5)
		tensor.AXPY(b, src.Row(i), 0.5)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d col %d: %g vs %g", i, j, a[j], b[j])
			}
		}
	}
}

func TestMaskMetadataOverhead(t *testing.T) {
	// 1 bit per 32-bit element = 3.125% (§4.3).
	cm := NewMatrix(1, 256)
	maskBytes := len(cm.Mask(0)) * 8
	valueBytes := 256 * 4
	overhead := float64(maskBytes) / float64(valueBytes)
	if overhead != 0.03125 {
		t.Fatalf("mask overhead %.5f, want 0.03125", overhead)
	}
}

func TestRowTrafficBytesShrinksWithSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	denseSrc := tensor.NewMatrix(1, 256)
	denseSrc.FillSparse(rng, 1, 0)
	sparseSrc := tensor.NewMatrix(1, 256)
	sparseSrc.FillSparse(rng, 1, 0.9)
	d := FromDense(denseSrc, 1)
	s := FromDense(sparseSrc, 1)
	if s.RowTrafficBytes(0) >= d.RowTrafficBytes(0) {
		t.Fatalf("sparse traffic %d not below dense traffic %d",
			s.RowTrafficBytes(0), d.RowTrafficBytes(0))
	}
	// Dense rows cost slightly MORE than uncompressed (mask overhead).
	if d.RowTrafficBytes(0) <= d.UncompressedRowBytes() {
		t.Fatalf("fully dense compressed traffic %d should exceed raw %d",
			d.RowTrafficBytes(0), d.UncompressedRowBytes())
	}
}

func TestTotalTrafficAt50PercentSparsity(t *testing.T) {
	// §4.3: at 50% sparsity the saving is 50% - 3.125% ≈ 46.9%; with
	// cache-line rounding we accept 40-50%.
	rng := rand.New(rand.NewSource(4))
	src := tensor.NewMatrix(200, 256)
	src.FillSparse(rng, 1, 0.5)
	cm := FromDense(src, 1)
	raw := cm.UncompressedRowBytes() * int64(src.Rows)
	got := cm.TotalTrafficBytes()
	saving := 1 - float64(got)/float64(raw)
	if saving < 0.40 || saving > 0.50 {
		t.Fatalf("traffic saving %.3f at 50%% sparsity, want ≈0.47", saving)
	}
}

func TestCompressRowLengthPanics(t *testing.T) {
	cm := NewMatrix(1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("short row accepted")
		}
	}()
	cm.CompressRow(0, make([]float32, 4))
}

func TestDecompressShortDstPanics(t *testing.T) {
	cm := NewMatrix(1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("short destination accepted")
		}
	}()
	cm.DecompressRow(make([]float32, 4), 0)
}

func TestReCompressRowReusesStorage(t *testing.T) {
	// Rows are rewritten every layer/iteration; stale values must not leak.
	cm := NewMatrix(1, 64)
	dense := make([]float32, 64)
	for j := range dense {
		dense[j] = 1
	}
	cm.CompressRow(0, dense)
	sparse := make([]float32, 64)
	sparse[3] = 7
	cm.CompressRow(0, sparse)
	out := make([]float32, 64)
	cm.DecompressRow(out, 0)
	for j, v := range out {
		want := float32(0)
		if j == 3 {
			want = 7
		}
		if v != want {
			t.Fatalf("col %d = %g, want %g", j, v, want)
		}
	}
	if cm.NNZ(0) != 1 {
		t.Fatalf("NNZ %d, want 1", cm.NNZ(0))
	}
}
