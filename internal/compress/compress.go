// Package compress implements the paper's mask-based feature compression
// (§4.3, Fig. 6). Hidden-layer features are moderately sparse because of
// ReLU and dropout (§2.2); compressing them cuts the DRAM traffic of the
// bandwidth-bound aggregation phase.
//
// The scheme mirrors AVX-512's vcompressps/vexpandps pair at 64-element
// granularity: a bit mask marks the non-zero positions (1 bit per element,
// 3.125% overhead for 32-bit features regardless of sparsity) and the
// non-zero values are packed densely. Storage stays constant-sized per row
// — compression is used "purely to save DRAM bandwidth", never to shrink
// the footprint, because variable-sized rows would need an indirection that
// harms the random row accesses aggregation depends on (§4.3).
package compress

import (
	"fmt"
	"math/bits"

	"graphite/internal/sched"
	"graphite/internal/tensor"
)

// wordBits is the compression granule: one uint64 mask word covers 64
// feature elements (a substitute for four 16-lane AVX-512 mask registers).
const wordBits = 64

// MaskWords returns the number of uint64 mask words covering cols elements.
func MaskWords(cols int) int { return (cols + wordBits - 1) / wordBits }

// Matrix stores a feature matrix in compressed form with constant-size row
// storage: every row owns maskWords mask words and a full stride of value
// slots, of which only the first popcount(mask) are live.
type Matrix struct {
	Rows      int
	Cols      int
	stride    int // value slots per row (padded like tensor.Matrix)
	maskWords int
	masks     []uint64
	values    []float32
}

// NewMatrix allocates a compressed matrix for rows×cols features.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("compress: negative dimensions %dx%d", rows, cols))
	}
	mw := MaskWords(cols)
	stride := tensor.PadStride(cols)
	return &Matrix{
		Rows:      rows,
		Cols:      cols,
		stride:    stride,
		maskWords: mw,
		masks:     make([]uint64, rows*mw),
		values:    make([]float32, rows*stride),
	}
}

// Mask returns row i's mask words (read-only alias).
func (m *Matrix) Mask(i int) []uint64 {
	off := i * m.maskWords
	return m.masks[off : off+m.maskWords]
}

// packed returns row i's full value storage.
func (m *Matrix) packed(i int) []float32 {
	off := i * m.stride
	return m.values[off : off+m.stride]
}

// NNZ returns the number of live values in row i.
func (m *Matrix) NNZ(i int) int {
	n := 0
	for _, w := range m.Mask(i) {
		n += bits.OnesCount64(w)
	}
	return n
}

// CompressRow stores src (length Cols) into row i: comparison against zero
// produces the mask (Fig. 6a), then the non-zeros are bubble-collapsed into
// the packed slots (Fig. 6b).
func (m *Matrix) CompressRow(i int, src []float32) {
	if len(src) != m.Cols {
		panic(fmt.Sprintf("compress: row length %d, want %d", len(src), m.Cols))
	}
	mask := m.masks[i*m.maskWords : (i+1)*m.maskWords]
	dst := m.packed(i)
	p := 0
	for w := 0; w < m.maskWords; w++ {
		var bitsW uint64
		base := w * wordBits
		end := base + wordBits
		if end > m.Cols {
			end = m.Cols
		}
		for j := base; j < end; j++ {
			if v := src[j]; v != 0 {
				bitsW |= 1 << uint(j-base)
				dst[p] = v
				p++
			}
		}
		mask[w] = bitsW
	}
}

// DecompressRow expands row i into dst (length ≥ Cols), zero-filling the
// masked-out positions (Fig. 6c).
func (m *Matrix) DecompressRow(dst []float32, i int) {
	if len(dst) < m.Cols {
		panic(fmt.Sprintf("compress: destination length %d, want ≥ %d", len(dst), m.Cols))
	}
	dst = dst[:m.Cols]
	clear(dst)
	mask := m.Mask(i)
	src := m.packed(i)
	p := 0
	for w, bitsW := range mask {
		base := w * wordBits
		for bitsW != 0 {
			j := bits.TrailingZeros64(bitsW)
			dst[base+j] = src[p]
			p++
			bitsW &= bitsW - 1
		}
	}
}

// AXPYRow accumulates dst += alpha · row(i) without materialising the dense
// row: the aggregation kernels' inner loop. Skipping the zeros is where the
// compute saving (on top of the bandwidth saving) comes from.
func (m *Matrix) AXPYRow(dst []float32, i int, alpha float32) {
	mask := m.Mask(i)
	src := m.packed(i)
	p := 0
	for w, bitsW := range mask {
		base := w * wordBits
		for bitsW != 0 {
			j := bits.TrailingZeros64(bitsW)
			dst[base+j] += alpha * src[p]
			p++
			bitsW &= bitsW - 1
		}
	}
}

// RowTrafficBytes returns the DRAM bytes a read of row i costs under the
// compressed layout, rounded up to whole 64-byte cache lines: the mask
// lines plus the packed-value lines actually occupied. The uncompressed
// cost for comparison is stride×4 bytes.
func (m *Matrix) RowTrafficBytes(i int) int64 {
	const line = 64
	maskBytes := int64(m.maskWords) * 8
	valBytes := int64(m.NNZ(i)) * 4
	roundUp := func(b int64) int64 { return (b + line - 1) / line * line }
	return roundUp(maskBytes) + roundUp(valBytes)
}

// UncompressedRowBytes is the per-row traffic of the dense layout.
func (m *Matrix) UncompressedRowBytes() int64 { return int64(m.stride) * 4 }

// FromDense compresses every row of src in parallel.
func FromDense(src *tensor.Matrix, threads int) *Matrix {
	m := NewMatrix(src.Rows, src.Cols)
	sched.Dynamic(src.Rows, 64, threads, func(s, e int) {
		for i := s; i < e; i++ {
			m.CompressRow(i, src.Row(i))
		}
	})
	return m
}

// ToDense expands the whole matrix.
func (m *Matrix) ToDense(threads int) *tensor.Matrix {
	out := tensor.NewMatrix(m.Rows, m.Cols)
	sched.Dynamic(m.Rows, 64, threads, func(s, e int) {
		for i := s; i < e; i++ {
			m.DecompressRow(out.Row(i), i)
		}
	})
	return out
}

// TotalTrafficBytes sums RowTrafficBytes over all rows, for the traffic
// reports in the experiment harness.
func (m *Matrix) TotalTrafficBytes() int64 {
	var sum int64
	for i := 0; i < m.Rows; i++ {
		sum += m.RowTrafficBytes(i)
	}
	return sum
}
