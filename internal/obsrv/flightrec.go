package obsrv

import (
	"math/rand"
	"sort"
	"sync"

	"graphite/internal/telemetry"
)

// FlightRecorder retains a bounded, tail-sampled set of finished request
// traces. Tail sampling decides at request completion, when the outcome is
// known, which is what makes the retained set useful: every error and
// SLO-breaching trace is kept (up to a bound), the slowest K traces are
// kept regardless of why they were slow, and a probabilistic sample of
// ordinary traffic provides the baseline to compare them against.
//
// All pools are hard-bounded, so the recorder's memory is O(capacity ×
// spans-per-trace) no matter how long the server runs. Record is one mutex
// acquisition per finished request — far off the per-vertex hot path — and
// reads snapshot under the same mutex.
type FlightRecorderConfig struct {
	// ErrorCap bounds the always-keep pool (errors, deadline-exceeded,
	// SLO-breaching traces). Oldest entries are evicted first. Default 128.
	ErrorCap int
	// TopK bounds the slowest-traces pool, kept by end-to-end duration.
	// Default 32.
	TopK int
	// SampleCap bounds the probabilistic pool (a ring; newest win).
	// Default 256.
	SampleCap int
	// SampleRate is the probability an unremarkable trace enters the
	// probabilistic pool. 0 means DefaultSampleRate; negative disables the
	// pool.
	SampleRate float64
	// SLOs mark traces for the always-keep pool: a trace whose span under
	// SLO.Phase exceeds SLO.Threshold breached its per-request budget (the
	// quantile part of the SLO does not apply to a single request).
	SLOs []SLO
	// Seed seeds the sampling RNG; 0 means 1. A fixed seed makes retention
	// deterministic for tests.
	Seed int64
}

// Default flight-recorder bounds.
const (
	DefaultErrorCap   = 128
	DefaultTopK       = 32
	DefaultSampleCap  = 256
	DefaultSampleRate = 0.05
)

// Retention reasons stamped on recorded traces.
const (
	ReasonError   = "error"   // finished in an error class
	ReasonSLO     = "slo"     // a span exceeded its SLO threshold
	ReasonSlow    = "slow"    // among the top-K slowest end-to-end
	ReasonSampled = "sampled" // probabilistic baseline sample
)

// RecordedTrace is one retained trace plus why it was retained.
type RecordedTrace struct {
	telemetry.TraceData
	Reason string `json:"reason"`
}

// FlightRecorderStats summarizes recorder occupancy and traffic.
type FlightRecorderStats struct {
	Recorded int64 `json:"recorded"` // traces offered to Record
	Kept     int64 `json:"kept"`     // traces retained at the time they were offered
	Errors   int   `json:"errors"`   // current error/SLO pool size
	Slow     int   `json:"slow"`     // current top-K pool size
	Sampled  int   `json:"sampled"`  // current probabilistic pool size
}

// FlightRecorder implements the tail-sampling retention described on
// FlightRecorderConfig. Safe for concurrent use.
type FlightRecorder struct {
	cfg FlightRecorderConfig

	mu       sync.Mutex
	rng      *rand.Rand
	errors   []RecordedTrace // oldest first
	slow     []RecordedTrace // ascending by Duration (slow[0] is evicted first)
	sampled  []RecordedTrace // oldest first
	recorded int64
	kept     int64
}

// NewFlightRecorder builds a recorder, applying defaults for zero fields.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	if cfg.ErrorCap <= 0 {
		cfg.ErrorCap = DefaultErrorCap
	}
	if cfg.TopK <= 0 {
		cfg.TopK = DefaultTopK
	}
	if cfg.SampleCap <= 0 {
		cfg.SampleCap = DefaultSampleCap
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = DefaultSampleRate
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &FlightRecorder{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Record offers one finished trace for retention and reports whether (and
// why) it was kept. Nil-safe: a nil recorder drops everything.
func (fr *FlightRecorder) Record(td telemetry.TraceData) (reason string, kept bool) {
	if fr == nil {
		return "", false
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.recorded++
	switch {
	case td.Err():
		reason = ReasonError
	case fr.breachesSLO(td):
		reason = ReasonSLO
	case fr.qualifiesSlow(td):
		reason = ReasonSlow
	case fr.cfg.SampleRate > 0 && fr.rng.Float64() < fr.cfg.SampleRate:
		reason = ReasonSampled
	default:
		return "", false
	}
	rt := RecordedTrace{TraceData: td, Reason: reason}
	switch reason {
	case ReasonError, ReasonSLO:
		if len(fr.errors) == fr.cfg.ErrorCap {
			copy(fr.errors, fr.errors[1:])
			fr.errors = fr.errors[:fr.cfg.ErrorCap-1]
		}
		fr.errors = append(fr.errors, rt)
	case ReasonSlow:
		i := sort.Search(len(fr.slow), func(i int) bool { return fr.slow[i].Duration >= td.Duration })
		fr.slow = append(fr.slow, RecordedTrace{})
		copy(fr.slow[i+1:], fr.slow[i:])
		fr.slow[i] = rt
		if len(fr.slow) > fr.cfg.TopK {
			copy(fr.slow, fr.slow[1:]) // evict the fastest
			fr.slow = fr.slow[:fr.cfg.TopK]
		}
	case ReasonSampled:
		if len(fr.sampled) == fr.cfg.SampleCap {
			copy(fr.sampled, fr.sampled[1:])
			fr.sampled = fr.sampled[:fr.cfg.SampleCap-1]
		}
		fr.sampled = append(fr.sampled, rt)
	}
	fr.kept++
	return reason, true
}

// breachesSLO reports whether any configured SLO's phase span exceeded its
// threshold in this trace.
func (fr *FlightRecorder) breachesSLO(td telemetry.TraceData) bool {
	for _, o := range fr.cfg.SLOs {
		if td.MaxSpanDur(o.Phase) > o.Threshold {
			return true
		}
	}
	return false
}

// qualifiesSlow reports whether td belongs in the top-K pool (called under
// fr.mu).
func (fr *FlightRecorder) qualifiesSlow(td telemetry.TraceData) bool {
	if len(fr.slow) < fr.cfg.TopK {
		return true
	}
	return td.Duration > fr.slow[0].Duration
}

// Get returns the retained trace with the given id.
func (fr *FlightRecorder) Get(id telemetry.TraceID) (RecordedTrace, bool) {
	if fr == nil {
		return RecordedTrace{}, false
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	for _, pool := range [][]RecordedTrace{fr.errors, fr.slow, fr.sampled} {
		for i := len(pool) - 1; i >= 0; i-- {
			if pool[i].TraceID == id {
				return pool[i], true
			}
		}
	}
	return RecordedTrace{}, false
}

// all returns every retained trace, deduplicated by id (called under fr.mu).
func (fr *FlightRecorder) all() []RecordedTrace {
	out := make([]RecordedTrace, 0, len(fr.errors)+len(fr.slow)+len(fr.sampled))
	seen := make(map[telemetry.TraceID]bool, cap(out))
	for _, pool := range [][]RecordedTrace{fr.errors, fr.slow, fr.sampled} {
		for _, rt := range pool {
			if !seen[rt.TraceID] {
				seen[rt.TraceID] = true
				out = append(out, rt)
			}
		}
	}
	return out
}

// Slowest returns up to n retained traces (across all pools) ordered by
// descending end-to-end duration.
func (fr *FlightRecorder) Slowest(n int) []RecordedTrace {
	if fr == nil || n <= 0 {
		return nil
	}
	fr.mu.Lock()
	out := fr.all()
	fr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// ByPhase returns up to n retained traces containing a span named phase,
// newest start first.
func (fr *FlightRecorder) ByPhase(phase string, n int) []RecordedTrace {
	if fr == nil || n <= 0 {
		return nil
	}
	fr.mu.Lock()
	all := fr.all()
	fr.mu.Unlock()
	out := all[:0]
	for _, rt := range all {
		if rt.HasSpan(phase) {
			out = append(out, rt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Recent returns up to n retained traces, newest start first.
func (fr *FlightRecorder) Recent(n int) []RecordedTrace {
	if fr == nil || n <= 0 {
		return nil
	}
	fr.mu.Lock()
	out := fr.all()
	fr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Stats returns recorder occupancy and traffic counts.
func (fr *FlightRecorder) Stats() FlightRecorderStats {
	if fr == nil {
		return FlightRecorderStats{}
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return FlightRecorderStats{
		Recorded: fr.recorded,
		Kept:     fr.kept,
		Errors:   len(fr.errors),
		Slow:     len(fr.slow),
		Sampled:  len(fr.sampled),
	}
}
