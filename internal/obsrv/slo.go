package obsrv

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"graphite/internal/telemetry"
)

// SLO is one latency service-level objective: "the Quantile-th percentile
// of the named telemetry phase stays under Threshold". The tracker derives
// compliance from the phase's log2 latency histogram, so "bad" observation
// counts are the bucket-resolution lower bound of true threshold breaches.
type SLO struct {
	// Phase is the telemetry span/histogram name the objective covers
	// (telemetry.PhaseEpoch, "experiment/fig2", ...).
	Phase string
	// Quantile is the target quantile in (0, 1), e.g. 0.99.
	Quantile float64
	// Threshold is the latency the target quantile must stay under.
	Threshold time.Duration
}

// Validate reports whether the objective is well-formed.
func (o SLO) Validate() error {
	if o.Phase == "" {
		return fmt.Errorf("obsrv: SLO has empty phase")
	}
	if o.Quantile <= 0 || o.Quantile >= 1 {
		return fmt.Errorf("obsrv: SLO %s quantile %v outside (0, 1)", o.Phase, o.Quantile)
	}
	if o.Threshold <= 0 {
		return fmt.Errorf("obsrv: SLO %s threshold %v must be positive", o.Phase, o.Threshold)
	}
	return nil
}

// String renders the flag form understood by ParseSLO.
func (o SLO) String() string {
	return fmt.Sprintf("%s:%g:%s", o.Phase, o.Quantile, o.Threshold)
}

// ParseSLO parses the "phase:quantile:threshold" flag form, e.g.
// "epoch:0.99:250ms".
func ParseSLO(s string) (SLO, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return SLO{}, fmt.Errorf("obsrv: SLO %q: want phase:quantile:threshold (e.g. epoch:0.99:250ms)", s)
	}
	q, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return SLO{}, fmt.Errorf("obsrv: SLO %q: bad quantile: %v", s, err)
	}
	d, err := time.ParseDuration(parts[2])
	if err != nil {
		return SLO{}, fmt.Errorf("obsrv: SLO %q: bad threshold: %v", s, err)
	}
	o := SLO{Phase: parts[0], Quantile: q, Threshold: d}
	if err := o.Validate(); err != nil {
		return SLO{}, err
	}
	return o, nil
}

// ParseSLOs parses a comma-separated list of ParseSLO forms. Empty input
// yields no objectives.
func ParseSLOs(s string) ([]SLO, error) {
	var out []SLO
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		o, err := ParseSLO(part)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// sloSample is one scrape-time observation of the cumulative totals.
type sloSample struct {
	t     time.Time
	total int64
	bad   int64
}

// sloState is one objective's rendered scrape state.
type sloState struct {
	SLO SLO
	// Quantile is the current latency estimate at the target quantile.
	Quantile time.Duration
	// Total and Bad are cumulative observation counts (Bad = above
	// threshold, bucket-resolution lower bound).
	Total, Bad int64
	// BurnRate is the windowed error-budget burn: the fraction of window
	// observations above threshold, divided by the error budget
	// (1 - Quantile). 1.0 means the budget is being consumed exactly as
	// fast as the objective allows; above 1 the objective is failing.
	BurnRate float64
	// Breach is true when the current quantile estimate exceeds the
	// threshold (and at least one observation exists).
	Breach bool
}

// sloTracker accumulates one objective's sliding window across scrapes.
// Scrape cadence defines the sample resolution: the burn rate compares the
// newest sample against the oldest sample still inside the window.
type sloTracker struct {
	slo     SLO
	samples []sloSample
}

// rebaseline discards the window (sink swap or reset).
func (tr *sloTracker) rebaseline() { tr.samples = nil }

// observe folds the phase histogram's current totals into the window and
// returns the objective's rendered state. h may be nil (phase not recorded
// yet); telemetry histogram methods are nil-safe and report zeros.
func (tr *sloTracker) observe(now time.Time, window time.Duration, h *telemetry.Histogram) sloState {
	total := h.Count()
	bad := h.CountAbove(tr.slo.Threshold)
	if n := len(tr.samples); n > 0 && total < tr.samples[n-1].total {
		// The histogram went backwards (Sink.Reset between scrapes): the
		// old window is from a different life, drop it.
		tr.samples = nil
	}
	tr.samples = append(tr.samples, sloSample{t: now, total: total, bad: bad})

	// Evict samples older than the window, but keep the newest such sample
	// as the delta baseline so the window always spans close to `window`.
	cut := now.Add(-window)
	lo := 0
	for lo+1 < len(tr.samples) && !tr.samples[lo+1].t.After(cut) {
		lo++
	}
	tr.samples = tr.samples[lo:]

	base := tr.samples[0]
	dTotal, dBad := total-base.total, bad-base.bad
	st := sloState{
		SLO:      tr.slo,
		Quantile: h.Quantile(tr.slo.Quantile),
		Total:    total,
		Bad:      bad,
	}
	if budget := 1 - tr.slo.Quantile; dTotal > 0 && budget > 0 {
		st.BurnRate = (float64(dBad) / float64(dTotal)) / budget
	}
	st.Breach = total > 0 && st.Quantile > tr.slo.Threshold
	return st
}
