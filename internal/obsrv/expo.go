package obsrv

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"graphite/internal/telemetry"
)

// expoState is one coherent scrape: everything /metrics renders, captured
// under the server lock so the exposition is internally consistent.
type expoState struct {
	build       map[string]string
	gomaxprocs  int
	uptime      time.Duration
	hasUptime   bool
	scrapes     int64
	ready       bool
	snap        telemetry.Snapshot
	hists       []histExpo
	throughputs []rateSample
	gauges      []Gauge
	sloStates   []sloState
	windowSecs  float64
}

// histExpo is one phase histogram prepared for exposition.
type histExpo struct {
	Phase   string
	Buckets []telemetry.HistBucket
	// Exemplars is index-aligned with Buckets (nil entries where no traced
	// observation landed); nil entirely when the phase has no exemplars.
	Exemplars []*telemetry.Exemplar
	Count     int64
	Sum       time.Duration
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
}

// rateSample is one EWMA throughput gauge.
type rateSample struct {
	Metric string
	Rate   float64
}

// expoWriter accumulates exposition lines, remembering the first write
// error so call sites stay linear.
type expoWriter struct {
	w   *bufio.Writer
	err error
}

func (ew *expoWriter) line(parts ...string) {
	if ew.err != nil {
		return
	}
	for _, p := range parts {
		if _, ew.err = ew.w.WriteString(p); ew.err != nil {
			return
		}
	}
	ew.err = ew.w.WriteByte('\n')
}

// header emits the # HELP and # TYPE preamble of one metric family.
func (ew *expoWriter) header(name, help, typ string) {
	ew.line("# HELP ", name, " ", help)
	ew.line("# TYPE ", name, " ", typ)
}

// labelEscaper escapes Prometheus label values.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labels renders a {k="v",...} block from pre-ordered key/value pairs.
func labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// fnum renders a float the way Prometheus clients expect (shortest exact
// form; +Inf for infinities).
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func inum(v int64) string { return strconv.FormatInt(v, 10) }

// seconds converts a duration to a float second string.
func seconds(d time.Duration) string { return fnum(d.Seconds()) }

// counterHelp documents the kernel counters for scrape UIs; unknown names
// fall back to a generic line.
var counterHelp = map[string]string{
	"graphite_vertices_aggregated_total":  "vertex rows produced by aggregation",
	"graphite_edges_aggregated_total":     "edges traversed by aggregation",
	"graphite_rows_compressed_total":      "feature rows compressed",
	"graphite_rows_decompressed_total":    "compressed-row expansions consumed by kernels",
	"graphite_gemm_flops_total":           "dense-equivalent FLOPs of update and backward GEMMs",
	"graphite_dma_bytes_moved_total":      "bytes moved by the DMA engine model",
	"graphite_dma_descriptors_total":      "DMA aggregation descriptors executed",
	"graphite_sched_chunks_total":         "dynamically claimed scheduler chunks",
	"graphite_sched_rows_total":           "rows handed out by the scheduler",
	"graphite_panics_recovered_total":     "worker panics contained into structured errors",
	"graphite_serve_requests_total":       "inference requests admitted to the serving queue",
	"graphite_serve_rejected_total":       "requests rejected on a full admission queue",
	"graphite_serve_expired_total":        "requests whose deadline passed before dispatch",
	"graphite_serve_failed_total":         "requests failed by inference errors after dispatch",
	"graphite_serve_batches_total":        "mini-batches dispatched by the dynamic batcher",
	"graphite_serve_vertices_total":       "vertices inferred through dispatched mini-batches",
	"graphite_serve_snapshot_swaps_total": "checkpoint hot swaps applied to the serving snapshot",
	"graphite_serve_shed_total":           "requests shed by the adaptive overload controller",
	"graphite_serve_degraded_total":       "mini-batches executed at a reduced fanout ladder level",
	"graphite_serve_breaker_trips_total":  "snapshot circuit breaker trips (closed/half-open to open)",
	"graphite_serve_batch_retries_total":  "batch executions retried under the retry budget",
}

// quantileGauges are the fixed percentile gauges derived from each phase
// histogram.
var quantileGauges = []struct {
	Label string
	Pick  func(histExpo) time.Duration
}{
	{"0.5", func(h histExpo) time.Duration { return h.P50 }},
	{"0.95", func(h histExpo) time.Duration { return h.P95 }},
	{"0.99", func(h histExpo) time.Duration { return h.P99 }},
}

// writeExposition renders the scrape in Prometheus text format (version
// 0.0.4). The order is deterministic: build/process gauges, kernel
// counters, span accounting, per-worker series, in-flight gauges, phase
// histograms with quantile gauges, EWMA throughput, then SLO series.
func writeExposition(w io.Writer, st expoState) error {
	ew := &expoWriter{w: bufio.NewWriter(w)}

	ew.header("graphite_build_info", "build metadata; value is always 1", "gauge")
	keys := make([]string, 0, len(st.build))
	for k := range st.build {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kv := make([]string, 0, 2*len(keys))
	for _, k := range keys {
		kv = append(kv, k, st.build[k])
	}
	ew.line("graphite_build_info", labels(kv...), " 1")

	ew.header("graphite_gomaxprocs", "worker parallelism bound of the process", "gauge")
	ew.line("graphite_gomaxprocs ", inum(int64(st.gomaxprocs)))
	if st.hasUptime {
		ew.header("graphite_uptime_seconds", "seconds since the observability server started", "gauge")
		ew.line("graphite_uptime_seconds ", fnum(st.uptime.Seconds()))
	}
	ew.header("graphite_scrapes_total", "metrics scrapes served", "counter")
	ew.line("graphite_scrapes_total ", inum(st.scrapes))
	ew.header("graphite_ready", "readiness probe state (1 ready, 0 draining)", "gauge")
	ready := "0"
	if st.ready {
		ready = "1"
	}
	ew.line("graphite_ready ", ready)

	names := make([]string, 0, len(st.snap.Counters))
	for name := range st.snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		help := counterHelp[name]
		if help == "" {
			help = "graphite kernel counter"
		}
		ew.header(name, help, "counter")
		ew.line(name, " ", inum(st.snap.Counters[name]))
	}

	ew.header("graphite_spans_recorded_total", "telemetry spans recorded (including ring-evicted)", "counter")
	ew.line("graphite_spans_recorded_total ", inum(st.snap.Spans))
	ew.header("graphite_spans_dropped_total", "spans evicted from the trace ring buffer", "counter")
	ew.line("graphite_spans_dropped_total ", inum(st.snap.SpansDropped))

	if len(st.snap.Workers) > 0 {
		ew.header("graphite_sched_worker_chunks_total", "scheduler chunks claimed per worker", "counter")
		for _, ws := range st.snap.Workers {
			ew.line("graphite_sched_worker_chunks_total", labels("worker", inum(int64(ws.Worker))), " ", inum(ws.Chunks))
		}
		ew.header("graphite_sched_worker_rows_total", "rows executed per worker", "counter")
		for _, ws := range st.snap.Workers {
			ew.line("graphite_sched_worker_rows_total", labels("worker", inum(int64(ws.Worker))), " ", inum(ws.Rows))
		}
		ew.header("graphite_sched_worker_busy_seconds_total", "wall time spent inside claimed chunks per worker", "counter")
		for _, ws := range st.snap.Workers {
			ew.line("graphite_sched_worker_busy_seconds_total", labels("worker", inum(int64(ws.Worker))), " ", fnum(ws.BusySeconds))
		}
	}

	if len(st.snap.Inflight) > 0 {
		ew.header("graphite_phase_inflight_spans", "currently open telemetry spans per phase", "gauge")
		for _, pi := range st.snap.Inflight {
			ew.line("graphite_phase_inflight_spans", labels("phase", pi.Phase), " ", inum(pi.Count))
		}
		ew.header("graphite_phase_inflight_seconds", "elapsed time of currently open spans per phase", "gauge")
		for _, pi := range st.snap.Inflight {
			ew.line("graphite_phase_inflight_seconds", labels("phase", pi.Phase), " ", seconds(pi.Elapsed))
		}
	}

	if len(st.hists) > 0 {
		ew.header("graphite_phase_latency_seconds", "phase span latency distribution (log2 buckets)", "histogram")
		for _, h := range st.hists {
			writeHistogram(ew, h)
		}
		ew.header("graphite_phase_latency_quantile_seconds", "estimated phase latency percentiles from the log2 histogram", "gauge")
		for _, h := range st.hists {
			for _, q := range quantileGauges {
				ew.line("graphite_phase_latency_quantile_seconds",
					labels("phase", h.Phase, "quantile", q.Label), " ", seconds(q.Pick(h)))
			}
		}
	}

	for _, ts := range st.throughputs {
		ew.header(ts.Metric, "EWMA throughput derived from counter deltas between scrapes", "gauge")
		ew.line(ts.Metric, " ", fnum(ts.Rate))
	}

	for _, g := range st.gauges {
		ew.header(g.Name, g.Help, "gauge")
		ew.line(g.Name, " ", fnum(g.Value))
	}

	writeSLOs(ew, st)
	if ew.err != nil {
		return ew.err
	}
	return ew.w.Flush()
}

// writeHistogram renders one phase's cumulative _bucket/_sum/_count series.
// Empty buckets outside the occupied range are trimmed (cumulative bucket
// semantics stay exact; the +Inf bucket always closes the series and equals
// _count).
func writeHistogram(ew *expoWriter, h histExpo) {
	first, last := len(h.Buckets), -1
	for i, b := range h.Buckets {
		if b.Count > 0 {
			if i < first {
				first = i
			}
			last = i
		}
	}
	var cum int64
	for i := first; i >= 0 && i <= last; i++ {
		b := h.Buckets[i]
		cum += b.Count
		// OpenMetrics-style exemplar: the latest traced observation that
		// landed in this bucket, so a spike links to a concrete trace id
		// fetchable from /v1/traces. Buckets without one render classically.
		if i < len(h.Exemplars) && h.Exemplars[i] != nil {
			ex := h.Exemplars[i]
			ew.line("graphite_phase_latency_seconds_bucket",
				labels("phase", h.Phase, "le", seconds(b.Upper)), " ", inum(cum),
				" # ", labels("trace_id", ex.TraceID.String()), " ", seconds(ex.Value),
				" ", strconv.FormatFloat(float64(ex.Time.UnixNano())/1e9, 'f', 3, 64))
			continue
		}
		ew.line("graphite_phase_latency_seconds_bucket",
			labels("phase", h.Phase, "le", seconds(b.Upper)), " ", inum(cum))
	}
	ew.line("graphite_phase_latency_seconds_bucket",
		labels("phase", h.Phase, "le", "+Inf"), " ", inum(h.Count))
	ew.line("graphite_phase_latency_seconds_sum", labels("phase", h.Phase), " ", seconds(h.Sum))
	ew.line("graphite_phase_latency_seconds_count", labels("phase", h.Phase), " ", inum(h.Count))
}

// writeSLOs renders the SLO series: configuration, current quantile
// estimate, cumulative good/bad accounting, and the sliding-window burn
// rate (1.0 = consuming error budget exactly as fast as allowed).
func writeSLOs(ew *expoWriter, st expoState) {
	if len(st.sloStates) == 0 {
		return
	}
	ew.header("graphite_slo_window_seconds", "sliding window of the SLO burn-rate accounting", "gauge")
	ew.line("graphite_slo_window_seconds ", fnum(st.windowSecs))

	type series struct {
		name, help, typ string
		value           func(sloState) string
	}
	for _, sr := range []series{
		{"graphite_slo_threshold_seconds", "configured latency threshold of the objective", "gauge",
			func(s sloState) string { return seconds(s.SLO.Threshold) }},
		{"graphite_slo_quantile_seconds", "current estimated latency at the objective's target quantile", "gauge",
			func(s sloState) string { return seconds(s.Quantile) }},
		{"graphite_slo_observations_total", "observations counted toward the objective", "counter",
			func(s sloState) string { return inum(s.Total) }},
		{"graphite_slo_bad_total", "observations above the objective threshold (log2-bucket lower bound)", "counter",
			func(s sloState) string { return inum(s.Bad) }},
		{"graphite_slo_burn_rate", "windowed error-budget burn rate (1 = at budget)", "gauge",
			func(s sloState) string { return fnum(s.BurnRate) }},
		{"graphite_slo_breach", "1 when the current quantile estimate exceeds the threshold", "gauge",
			func(s sloState) string {
				if s.Breach {
					return "1"
				}
				return "0"
			}},
	} {
		ew.header(sr.name, sr.help, sr.typ)
		for _, s := range st.sloStates {
			ew.line(sr.name, labels("phase", s.SLO.Phase, "quantile", fnum(s.SLO.Quantile)), " ", sr.value(s))
		}
	}
}
