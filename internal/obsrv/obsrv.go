// Package obsrv is the live observability plane: an embeddable HTTP server
// that exposes the telemetry.Sink's counters, per-worker scheduler
// accounting, and log2 latency histograms as Prometheus text-format
// /metrics, tracks latency SLOs with sliding-window burn rates, streams
// structured progress events, and serves the standard operational probes
// (/healthz, /readyz, /debug/pprof, an on-demand Chrome-trace snapshot).
//
// The paper's methodology is measurement-first; PR 1 and PR 3 made this
// reproduction observable post-mortem (trace files, JSON reports). This
// package makes the same signals scrapeable while a run executes, which is
// what the production serving layer (ROADMAP item 1) mounts request SLOs
// on, and what lets phase-shifting bottlenecks (Wu et al.) be seen live.
//
// The plane is strictly read-side: scraping reads the same atomics the
// kernels write, so a run with no listener configured pays nothing — no new
// allocations and no new branches on the kernel hot path (the sink's
// nil/disabled guard is unchanged). Scrape-derived state (EWMA throughput,
// SLO windows) lives in the server, never in the sink.
//
// Endpoints:
//
//	/metrics       Prometheus text format (counters, histograms with
//	               _bucket/_sum/_count, p50/p95/p99 gauges, SLO series,
//	               EWMA throughput, build info)
//	/healthz       liveness probe (200 while the server runs)
//	/readyz        readiness probe (wired to engine state; 503 on drain)
//	/events        structured progress events as streaming JSON lines
//	/trace         Chrome trace_event JSON snapshot of recorded spans
//	/v1/traces     tail-sampled request traces from the flight recorder
//	/debug/pprof/  the standard runtime profiles
package obsrv

import (
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphite/internal/telemetry"
)

// Options configures a Server. The zero value of every field is usable: a
// nil Sink serves zero-valued metrics, probes default to the server's own
// lifecycle, and window/decay constants take the defaults below.
type Options struct {
	// Sink is the telemetry source scraped by /metrics. It may be swapped
	// at runtime with SetSink (the bench harness does, per experiment).
	Sink *telemetry.Sink
	// SLOs are the latency objectives tracked per scrape.
	SLOs []SLO
	// Window is the SLO burn-rate sliding window (default 5m).
	Window time.Duration
	// EWMATau is the throughput EWMA time constant (default 30s): the
	// weight of a scrape delta decays as exp(-age/tau).
	EWMATau time.Duration
	// Ready, when non-nil, backs /readyz. The default reports ready while
	// the server is serving and not ready once shutdown begins.
	Ready func() (ok bool, detail string)
	// Healthy, when non-nil, backs /healthz. The default reports healthy
	// while the process serves.
	Healthy func() (ok bool, detail string)
	// BuildLabels overrides or extends the graphite_build_info labels.
	// Tests pin them; production code leaves this nil.
	BuildLabels map[string]string
	// Gauges, when non-nil, is called once per scrape and its results are
	// exported as additional gauge families (sorted by name). The serving
	// layer feeds its queue-depth and snapshot-version series through
	// this hook so the exposition stays a single coherent document.
	Gauges func() []Gauge
	// Traces, when non-nil, backs the /v1/traces endpoint with retained
	// request traces. The serving layer owns the recorder (it feeds finished
	// traces in); this server only reads it.
	Traces *FlightRecorder
}

// Gauge is one scrape-time gauge exported by an Options.Gauges hook.
type Gauge struct {
	// Name is the full metric name ("graphite_serve_queue_depth").
	Name string
	// Help is the # HELP line.
	Help string
	// Value is the gauge's current value.
	Value float64
}

// Default tuning constants.
const (
	DefaultWindow  = 5 * time.Minute
	DefaultEWMATau = 30 * time.Second
)

// Server is the observability HTTP server. Create with NewServer, bind with
// Start (or mount Handler under a test server), stop with Shutdown.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	hs      *http.Server
	ln      net.Listener
	now     func() time.Time // injected by tests for golden scrapes
	build   map[string]string
	events  broadcaster
	serving atomic.Bool
	started time.Time

	mu       sync.Mutex
	sink     *telemetry.Sink
	scrapes  int64
	lastTime time.Time
	lastCtr  map[string]int64
	rates    map[string]*ewma
	slos     []*sloTracker
}

// NewServer builds a server over the given options. It does not listen yet.
func NewServer(opts Options) *Server {
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.EWMATau <= 0 {
		opts.EWMATau = DefaultEWMATau
	}
	s := &Server{
		opts:  opts,
		now:   time.Now,
		build: buildLabels(opts.BuildLabels),
		sink:  opts.Sink,
		rates: make(map[string]*ewma),
	}
	// Stamp construction time so uptime reads sensibly when the handler is
	// mounted under a host server without Start; Start re-stamps to the
	// moment the listener binds.
	s.started = s.now()
	for _, o := range opts.SLOs {
		s.slos = append(s.slos, &sloTracker{slo: o})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/v1/traces", s.handleTraces)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Start binds addr (host:port; port 0 picks a free one — read it back with
// Addr) and serves in the background until Shutdown. It returns once the
// listener is bound, so Addr is valid immediately after.
func (s *Server) Start(addr string) error {
	if s.ln != nil {
		return fmt.Errorf("obsrv: server already started on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obsrv: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.started = s.now()
	// The handler chain must never write to the process's stderr; real
	// serve errors surface through Shutdown instead.
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          log.New(io.Discard, "", 0),
	}
	s.serving.Store(true)
	//lint:ignore goroutine-recover the HTTP accept loop is process-lifetime infrastructure; net/http already recovers handler panics, and an accept-loop panic must surface rather than be converted to a WorkerError
	go func() {
		_ = s.hs.Serve(ln) // http.ErrServerClosed on Shutdown
	}()
	return nil
}

// Addr returns the bound listen address ("127.0.0.1:43117"), or "" before
// Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Handler returns the server's route table, for mounting under a test
// server without binding a port.
func (s *Server) Handler() http.Handler { return s.mux }

// Serving reports whether the server is accepting requests (true between
// Start and Shutdown).
func (s *Server) Serving() bool { return s.serving.Load() }

// Shutdown drains in-flight requests and stops the listener. The readiness
// probe flips to 503 immediately, so load balancers stop routing while the
// drain completes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.serving.Store(false)
	// Close the event streams even when the server never bound its own
	// listener (the serving layer mounts Handler under its listener): open
	// /events requests must return so the owning server can drain.
	s.events.close()
	if s.hs == nil {
		return nil
	}
	return s.hs.Shutdown(ctx)
}

// SetSink atomically swaps the scraped telemetry sink and re-baselines all
// scrape-derived state (EWMA rates, SLO windows): counter deltas across a
// swap are meaningless and must not spike the gauges.
func (s *Server) SetSink(sink *telemetry.Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = sink
	s.lastCtr = nil
	s.lastTime = time.Time{}
	s.rates = make(map[string]*ewma)
	for _, tr := range s.slos {
		tr.rebaseline()
	}
}

// Publish emits a structured progress event to all /events subscribers.
// Safe before Start and after Shutdown (events are then dropped or only
// buffered).
func (s *Server) Publish(ev Event) { s.events.publish(s.now(), ev) }

// throughputSeries maps EWMA gauge names to the counters whose scrape
// deltas feed them.
var throughputSeries = []struct {
	Metric  string
	Counter telemetry.Counter
}{
	{"graphite_throughput_vertices_per_second", telemetry.CtrVerticesAggregated},
	{"graphite_throughput_edges_per_second", telemetry.CtrEdgesAggregated},
	{"graphite_throughput_bytes_per_second", telemetry.CtrDMABytesMoved},
}

// scrape captures one coherent exposition state: the sink snapshot plus the
// scrape-derived EWMA and SLO series, updated under the server lock.
func (s *Server) scrape() expoState {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.scrapes++
	sink := s.sink
	snap := sink.Snapshot()
	hists := sink.Histograms()

	st := expoState{
		build:       s.build,
		gomaxprocs:  runtime.GOMAXPROCS(0),
		uptime:      now.Sub(s.started),
		scrapes:     s.scrapes,
		ready:       s.readyNow(),
		snap:        snap,
		windowSecs:  s.opts.Window.Seconds(),
		throughputs: make([]rateSample, 0, len(throughputSeries)),
		sloStates:   make([]sloState, 0, len(s.slos)),
	}
	if !s.started.IsZero() {
		st.hasUptime = true
	}

	// EWMA throughput from counter deltas between scrapes.
	dt := time.Duration(0)
	if !s.lastTime.IsZero() {
		dt = now.Sub(s.lastTime)
	}
	if s.lastCtr == nil {
		s.lastCtr = make(map[string]int64, len(throughputSeries))
	}
	for _, ts := range throughputSeries {
		cur := snap.Counters[ts.Counter.Name()]
		r := s.rates[ts.Metric]
		if r == nil {
			r = &ewma{}
			s.rates[ts.Metric] = r
		}
		if prev, ok := s.lastCtr[ts.Counter.Name()]; ok && dt > 0 {
			r.update(cur-prev, dt, s.opts.EWMATau)
		}
		s.lastCtr[ts.Counter.Name()] = cur
		st.throughputs = append(st.throughputs, rateSample{Metric: ts.Metric, Rate: r.rate})
	}
	s.lastTime = now

	// Caller-supplied gauges (queue depths, snapshot versions, ...).
	if s.opts.Gauges != nil {
		st.gauges = s.opts.Gauges()
		sort.Slice(st.gauges, func(i, j int) bool { return st.gauges[i].Name < st.gauges[j].Name })
	}

	// SLO accounting against the live histograms.
	for _, tr := range s.slos {
		st.sloStates = append(st.sloStates, tr.observe(now, s.opts.Window, hists[tr.slo.Phase]))
	}
	sort.Slice(st.sloStates, func(i, j int) bool {
		a, b := st.sloStates[i].SLO, st.sloStates[j].SLO
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		return a.Quantile < b.Quantile
	})

	// Histogram expositions, sorted by phase.
	for name, h := range hists {
		if h.Count() == 0 {
			continue
		}
		st.hists = append(st.hists, histExpo{
			Phase:     name,
			Buckets:   h.Buckets(),
			Exemplars: h.BucketExemplars(),
			Count:     h.Count(),
			Sum:     h.Sum(),
			P50:     h.Quantile(0.50),
			P95:     h.Quantile(0.95),
			P99:     h.Quantile(0.99),
		})
	}
	sort.Slice(st.hists, func(i, j int) bool { return st.hists[i].Phase < st.hists[j].Phase })
	return st
}

// readyNow evaluates the readiness probe under the server lock.
func (s *Server) readyNow() bool {
	if s.opts.Ready != nil {
		ok, _ := s.opts.Ready()
		return ok
	}
	return s.serving.Load()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	st := s.scrape()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = writeExposition(w, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ok, detail := true, "serving"
	if s.opts.Healthy != nil {
		ok, detail = s.opts.Healthy()
	} else if !s.serving.Load() {
		ok, detail = false, "shutting down"
	}
	writeProbe(w, ok, detail, s.now().Sub(s.started))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ok, detail := s.serving.Load(), "serving"
	if !ok {
		detail = "draining"
	}
	if s.opts.Ready != nil {
		ok, detail = s.opts.Ready()
	}
	writeProbe(w, ok, detail, s.now().Sub(s.started))
}

// writeProbe renders a probe result as a small stable text body.
func writeProbe(w http.ResponseWriter, ok bool, detail string, uptime time.Duration) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	status, verdict := http.StatusOK, "ok"
	if !ok {
		status, verdict = http.StatusServiceUnavailable, "unavailable"
	}
	w.WriteHeader(status)
	fmt.Fprintf(w, "%s %s uptime=%s\n", verdict, detail, uptime.Round(time.Millisecond))
}

// handleTrace serves an on-demand Chrome trace_event snapshot of the spans
// recorded so far — the same payload Config.Trace writes post-mortem, but
// available mid-run.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sink := s.sink
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="graphite-trace.json"`)
	if err := sink.WriteTrace(w); err != nil {
		// Headers are out; nothing recoverable to do beyond dropping the
		// connection, which the client sees as a truncated body.
		return
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `graphite observability plane
/metrics       Prometheus text exposition
/healthz       liveness probe
/readyz        readiness probe
/events        progress events (JSON lines, streaming)
/trace         Chrome trace_event snapshot of recorded spans
/v1/traces     retained request traces (?id= ?slowest=N ?phase= &format=chrome)
/debug/pprof/  runtime profiles
`)
}

// buildLabels assembles the graphite_build_info label set: go version,
// platform, and the VCS revision when the binary carries one.
func buildLabels(extra map[string]string) map[string]string {
	labels := map[string]string{
		"goversion": runtime.Version(),
		"goos":      runtime.GOOS,
		"goarch":    runtime.GOARCH,
		"revision":  "unknown",
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				labels["revision"] = kv.Value
			}
		}
	}
	for k, v := range extra {
		labels[k] = v
	}
	return labels
}

// ewma is an exponentially weighted moving average over irregular scrape
// intervals: the smoothing factor adapts to the gap so slow and fast
// scrapers converge to the same rate.
type ewma struct {
	rate float64
	init bool
}

// update folds one counter delta observed over dt into the rate.
func (e *ewma) update(delta int64, dt, tau time.Duration) {
	if dt <= 0 {
		return
	}
	if delta < 0 {
		delta = 0 // counter reset between scrapes
	}
	inst := float64(delta) / dt.Seconds()
	if !e.init {
		e.rate, e.init = inst, true
		return
	}
	alpha := 1 - math.Exp(-dt.Seconds()/tau.Seconds())
	e.rate += alpha * (inst - e.rate)
}
