package obsrv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"graphite/internal/telemetry"
)

// defaultTraceListLimit bounds /v1/traces responses when no n= is given.
const defaultTraceListLimit = 20

// handleTraces serves the flight recorder:
//
//	/v1/traces                     newest retained traces (summary list)
//	/v1/traces?id=<32 hex>         one trace, full span tree
//	/v1/traces?slowest=N           N slowest retained traces, full trees
//	/v1/traces?phase=<name>&n=N    N newest traces containing the phase
//	...&format=chrome              chrome://tracing / Perfetto trace_event
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	fr := s.opts.Traces
	if fr == nil {
		http.Error(w, "tracing not enabled", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	chrome := q.Get("format") == "chrome"
	n := defaultTraceListLimit
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = parsed
	}

	switch {
	case q.Get("id") != "":
		id, err := telemetry.ParseTraceID(q.Get("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rt, ok := fr.Get(id)
		if !ok {
			http.Error(w, "trace not retained", http.StatusNotFound)
			return
		}
		writeTraces(w, []RecordedTrace{rt}, chrome, false)
	case q.Get("slowest") != "":
		k, err := strconv.Atoi(q.Get("slowest"))
		if err != nil || k < 1 {
			http.Error(w, "bad slowest", http.StatusBadRequest)
			return
		}
		writeTraces(w, fr.Slowest(k), chrome, false)
	case q.Get("phase") != "":
		writeTraces(w, fr.ByPhase(q.Get("phase"), n), chrome, false)
	default:
		writeTraces(w, fr.Recent(n), chrome, true)
	}
}

// traceSummary is the list form: enough to pick a trace without shipping
// every span tree.
type traceSummary struct {
	TraceID    string  `json:"trace_id"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Status     string  `json:"status,omitempty"`
	Reason     string  `json:"reason"`
	Spans      int     `json:"spans"`
}

// writeTraces renders traces as JSON (full trees, or summaries when
// summarize is set) or as a Chrome trace_event document.
func writeTraces(w http.ResponseWriter, traces []RecordedTrace, chrome, summarize bool) {
	w.Header().Set("Content-Type", "application/json")
	if chrome {
		writeChromeTraces(w, traces)
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if summarize {
		out := make([]traceSummary, 0, len(traces))
		for _, rt := range traces {
			out = append(out, traceSummary{
				TraceID:    rt.TraceID.String(),
				Start:      rt.Start.Format("2006-01-02T15:04:05.000Z07:00"),
				DurationMS: float64(rt.Duration) / 1e6,
				Status:     rt.Status,
				Reason:     rt.Reason,
				Spans:      len(rt.Spans),
			})
		}
		_ = enc.Encode(out)
		return
	}
	_ = enc.Encode(traces)
}

// chromeEvent mirrors the trace_event JSON shape telemetry.WriteTrace uses,
// plus span-identity args so parent links survive the export.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // µs
	Dur  float64           `json:"dur"` // µs
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// writeChromeTraces exports retained traces as one chrome://tracing
// document: each trace is a thread (tid), spans are complete ("X") events
// positioned relative to the earliest trace start so concurrent requests
// line up on a shared timeline.
func writeChromeTraces(w http.ResponseWriter, traces []RecordedTrace) {
	var events []chromeEvent
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "graphite-traces"},
	})
	var epoch int64 // ns; earliest span start across all traces
	for _, rt := range traces {
		for _, sp := range rt.Spans {
			if t := sp.Start.UnixNano(); epoch == 0 || t < epoch {
				epoch = t
			}
		}
	}
	for i, rt := range traces {
		tid := i + 1
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]string{"name": fmt.Sprintf("trace %s (%s)", rt.TraceID, rt.Reason)},
		})
		for _, sp := range rt.Spans {
			events = append(events, chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   float64(sp.Start.UnixNano()-epoch) / 1e3,
				Dur:  float64(sp.Dur) / 1e3,
				Pid:  1,
				Tid:  tid,
				Args: map[string]string{
					"trace_id":  rt.TraceID.String(),
					"span_id":   sp.ID.String(),
					"parent_id": sp.Parent.String(),
				},
			})
		}
	}
	_ = json.NewEncoder(w).Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
