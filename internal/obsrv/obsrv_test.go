package obsrv

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"graphite/internal/telemetry"
)

// fixedBuild pins the build_info labels so golden output is host-independent.
var fixedBuild = map[string]string{
	"goversion": "go1.22.0",
	"goos":      "linux",
	"goarch":    "amd64",
	"revision":  "deadbeef",
}

// newGoldenServer builds a server over a scripted clock starting at t0 and
// stepping by dt per now() call (one call per scrape/publish).
func newGoldenServer(sink *telemetry.Sink, slos []SLO, t0 time.Time, dt time.Duration) *Server {
	s := NewServer(Options{
		Sink:        sink,
		SLOs:        slos,
		Window:      time.Minute,
		EWMATau:     30 * time.Second,
		BuildLabels: fixedBuild,
	})
	next := t0
	s.now = func() time.Time {
		t := next
		next = next.Add(dt)
		return t
	}
	// NewServer stamps construction time with the real clock; zero it so
	// the golden stays byte-deterministic (no uptime family).
	s.started = time.Time{}
	return s
}

// scrapeText renders one /metrics scrape through the real handler.
func scrapeText(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	return rec.Body.String()
}

// TestExpositionGolden pins the full Prometheus exposition byte-for-byte:
// deterministic sink contents, fixed build labels, scripted clock. Any
// format change must update this golden deliberately.
func TestExpositionGolden(t *testing.T) {
	sink := telemetry.New(0)
	sink.Add(telemetry.CtrVerticesAggregated, 1000)
	sink.Add(telemetry.CtrEdgesAggregated, 5000)
	sink.Add(telemetry.CtrDMABytesMoved, 4096)
	sink.WorkerClaim(0, 2, 8, 2*time.Second)
	sink.WorkerClaim(1, 1, 2, 500*time.Millisecond)
	sink.Observe(telemetry.PhaseAggregate, 100*time.Microsecond)
	sink.Observe(telemetry.PhaseAggregate, 200*time.Microsecond)
	sink.Observe(telemetry.PhaseAggregate, 400*time.Microsecond)

	// Pin the process-level gauge the golden would otherwise vary on.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	t0 := time.Unix(1700000000, 0)
	s := newGoldenServer(sink, []SLO{{Phase: telemetry.PhaseAggregate, Quantile: 0.95, Threshold: time.Millisecond}}, t0, 10*time.Second)

	// First scrape establishes EWMA and SLO baselines.
	if _, err := ParseExposition(strings.NewReader(scrapeText(t, s))); err != nil {
		t.Fatalf("first scrape invalid: %v", err)
	}

	// Between scrapes: throughput deltas and one SLO-violating observation.
	sink.Add(telemetry.CtrVerticesAggregated, 500)
	sink.Add(telemetry.CtrDMABytesMoved, 1024)
	sink.Observe(telemetry.PhaseAggregate, 2*time.Millisecond)

	got := scrapeText(t, s)
	if _, err := ParseExposition(strings.NewReader(got)); err != nil {
		t.Fatalf("scrape fails strict parse: %v\n%s", err, got)
	}
	if got != goldenExposition {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenExposition)
	}
}

// TestGaugesExposition covers the Options.Gauges hook: caller-supplied
// gauges appear as their own families, sorted by name regardless of the
// hook's return order, and the exposition still passes the strict parser.
func TestGaugesExposition(t *testing.T) {
	s := NewServer(Options{
		Sink: telemetry.New(0),
		Gauges: func() []Gauge {
			return []Gauge{
				{Name: "graphite_serve_queue_depth", Help: "Queued inference requests.", Value: 3},
				{Name: "graphite_serve_draining", Help: "1 while the server drains.", Value: 0},
			}
		},
	})
	got := scrapeText(t, s)
	if _, err := ParseExposition(strings.NewReader(got)); err != nil {
		t.Fatalf("scrape fails strict parse: %v\n%s", err, got)
	}
	want := "# HELP graphite_serve_draining 1 while the server drains.\n" +
		"# TYPE graphite_serve_draining gauge\n" +
		"graphite_serve_draining 0\n" +
		"# HELP graphite_serve_queue_depth Queued inference requests.\n" +
		"# TYPE graphite_serve_queue_depth gauge\n" +
		"graphite_serve_queue_depth 3\n"
	if !strings.Contains(got, want) {
		t.Fatalf("gauge families missing or unsorted in exposition:\n%s", got)
	}
}

// TestShutdownWithoutListenerClosesEvents pins the embedded-handler
// lifecycle: when the obsrv plane is mounted under a host server (never
// Start()ed itself), Shutdown must still terminate /events streams so the
// host's own drain can complete.
func TestShutdownWithoutListenerClosesEvents(t *testing.T) {
	s := NewServer(Options{Sink: telemetry.New(0)})
	s.Publish(Event{Kind: "experiment", Status: "start"})

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
		done <- sc.Err()
	}()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("events stream still open after Shutdown")
	}
}

// TestScrapeStress races 8 writer goroutines (counters, Observe,
// WorkerClaim, spans) against continuous /metrics scrapes and asserts the
// final scrape carries the exact totals. Run under -race this doubles as
// the concurrency audit of the scrape path.
func TestScrapeStress(t *testing.T) {
	sink := telemetry.New(0)
	s := NewServer(Options{Sink: sink})
	const writers = 8
	const perWriter = 500

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body := scrapeText(t, s)
				if _, err := ParseExposition(strings.NewReader(body)); err != nil {
					t.Errorf("concurrent scrape invalid: %v", err)
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sink.Add(telemetry.CtrEdgesAggregated, 3)
				sink.Observe(telemetry.PhaseAggregate, time.Duration(i%7+1)*time.Microsecond)
				sink.WorkerClaim(w, 1, 4, time.Microsecond)
				sp := sink.Begin(telemetry.PhaseUpdate)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	expo, err := ParseExposition(strings.NewReader(scrapeText(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, labels map[string]string, want float64) {
		t.Helper()
		got, ok := expo.Value(name, labels)
		if !ok {
			t.Fatalf("missing %s%v", name, labels)
		}
		if got != want {
			t.Fatalf("%s%v = %v, want %v", name, labels, got, want)
		}
	}
	check("graphite_edges_aggregated_total", nil, float64(writers*perWriter*3))
	check("graphite_phase_latency_seconds_count", map[string]string{"phase": telemetry.PhaseAggregate}, float64(writers*perWriter))
	check("graphite_phase_latency_seconds_count", map[string]string{"phase": telemetry.PhaseUpdate}, float64(writers*perWriter))
	check("graphite_spans_recorded_total", nil, float64(writers*perWriter))
	for w := 0; w < writers; w++ {
		check("graphite_sched_worker_rows_total", map[string]string{"worker": fmt.Sprint(w)}, float64(perWriter*4))
	}
	// Every scrape in flight parsed; the +Inf bucket must equal the count.
	inf, ok := expo.Value("graphite_phase_latency_seconds_bucket",
		map[string]string{"phase": telemetry.PhaseAggregate, "le": "+Inf"})
	if !ok || inf != float64(writers*perWriter) {
		t.Fatalf("+Inf bucket = %v ok=%v", inf, ok)
	}
}

// TestProbesAndLifecycle runs a real listener end to end: probes answer,
// readiness drains on shutdown, and Addr reports the bound port.
func TestProbesAndLifecycle(t *testing.T) {
	sink := telemetry.New(0)
	s := NewServer(Options{Sink: sink})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatal("no bound address after Start")
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		return resp.StatusCode, b.String()
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d", code)
	}
	if code, _ := get("/metrics"); code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	if code, body := get("/trace"); code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Fatalf("trace = %d, valid JSON = %v", code, json.Valid([]byte(body)))
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if s.Serving() {
		t.Fatal("still serving after shutdown")
	}
	// Double Start is rejected.
	if err := s.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start succeeded")
	}
}

// TestReadyProbeWiring checks a custom Ready hook drives /readyz and the
// graphite_ready gauge.
func TestReadyProbeWiring(t *testing.T) {
	ready := true
	s := NewServer(Options{
		Sink:  telemetry.New(0),
		Ready: func() (bool, string) { return ready, "custom" },
	})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("ready readyz = %d", rec.Code)
	}
	ready = false
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unready readyz = %d", rec.Code)
	}
	expo, err := ParseExposition(strings.NewReader(scrapeText(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := expo.Value("graphite_ready", nil); !ok || v != 0 {
		t.Fatalf("graphite_ready = %v ok=%v, want 0", v, ok)
	}
}

// TestEventsStream covers the /events contract: replay of buffered events,
// live delivery, and JSON-lines framing.
func TestEventsStream(t *testing.T) {
	s := NewServer(Options{Sink: telemetry.New(0)})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	s.Publish(Event{Kind: "experiment", Experiment: "fig2", Status: "start"})
	s.Publish(Event{Kind: "experiment", Experiment: "fig2", Status: "done", WallMS: 12.5})

	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	read := func() Event {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("events stream ended early: %v", sc.Err())
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		return ev
	}
	ev1, ev2 := read(), read()
	if ev1.Status != "start" || ev2.Status != "done" || ev2.WallMS != 12.5 {
		t.Fatalf("replayed events = %+v %+v", ev1, ev2)
	}
	if ev2.Seq <= ev1.Seq {
		t.Fatalf("sequence not monotonic: %d then %d", ev1.Seq, ev2.Seq)
	}
	// A live event published after connect arrives on the same stream.
	s.Publish(Event{Kind: "sweep", Status: "done"})
	if ev := read(); ev.Kind != "sweep" {
		t.Fatalf("live event = %+v", ev)
	}
}

// TestSLOTrackerWindow drives the tracker with a scripted clock: breaches
// accumulate, the burn rate reflects only the window, and a sink reset
// rebaselines instead of going negative.
func TestSLOTrackerWindow(t *testing.T) {
	h := &telemetry.Histogram{}
	tr := &sloTracker{slo: SLO{Phase: "epoch", Quantile: 0.9, Threshold: time.Millisecond}}
	t0 := time.Unix(1700000000, 0)
	window := time.Minute

	// 10 good observations, first scrape.
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Microsecond)
	}
	st := tr.observe(t0, window, h)
	if st.BurnRate != 0 || st.Breach {
		t.Fatalf("baseline state = %+v", st)
	}

	// One bad observation inside the window: 1 bad / 1 new obs over a 0.1
	// budget → burn 10.
	h.Observe(10 * time.Millisecond)
	st = tr.observe(t0.Add(10*time.Second), window, h)
	if st.Bad != 1 || math.Abs(st.BurnRate-10) > 1e-9 {
		t.Fatalf("burn state = %+v, want bad=1 burn=10", st)
	}

	// Far in the future the window no longer covers the breach: plenty of
	// new good observations, burn decays.
	for i := 0; i < 89; i++ {
		h.Observe(100 * time.Microsecond)
	}
	st = tr.observe(t0.Add(10*time.Minute), window, h)
	if st.BurnRate != 0 {
		t.Fatalf("stale breach still burning: %+v", st)
	}

	// Histogram reset: totals go backwards, tracker must rebaseline.
	h2 := &telemetry.Histogram{}
	h2.Observe(100 * time.Microsecond)
	st = tr.observe(t0.Add(11*time.Minute), window, h2)
	if st.BurnRate != 0 || st.Total != 1 {
		t.Fatalf("post-reset state = %+v", st)
	}
}

// TestParseSLO pins the flag syntax.
func TestParseSLO(t *testing.T) {
	o, err := ParseSLO("epoch:0.99:250ms")
	if err != nil {
		t.Fatal(err)
	}
	if o.Phase != "epoch" || o.Quantile != 0.99 || o.Threshold != 250*time.Millisecond {
		t.Fatalf("parsed = %+v", o)
	}
	if _, err := ParseSLOs("epoch:0.99:250ms, aggregate:0.5:1ms"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "epoch", "epoch:2:1ms", "epoch:0.5:-1ms", "epoch:0.5:xyz", ":0.5:1ms"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

// TestParserRejectsMalformed feeds the strict parser known-bad payloads:
// the CI smoke job depends on these being caught.
func TestParserRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":           "9metric 1\n",
		"bad value":          "metric one\n",
		"bad label name":     `metric{9l="x"} 1` + "\n",
		"unquoted label":     `metric{l=x} 1` + "\n",
		"unterminated label": `metric{l="x} 1` + "\n",
		"duplicate label":    `metric{l="x",l="y"} 1` + "\n",
		"dup TYPE":           "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"TYPE after samples": "m 1\n# TYPE m counter\n",
		"unknown type":       "# TYPE m sideways\n",
		"hist no +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"hist not cumulative": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"hist count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n",
		"hist missing sum": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_count 1\n",
	}
	for name, payload := range cases {
		if _, err := ParseExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: parser accepted %q", name, payload)
		}
	}
	// And a healthy payload with label escapes and timestamps passes.
	good := "# HELP m a metric\n# TYPE m gauge\n" +
		`m{l="a\"b\\c\nd"} 1.5 1700000000000` + "\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="0.1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\n" +
		"h_sum 0.3\nh_count 2\n"
	expo, err := ParseExposition(strings.NewReader(good))
	if err != nil {
		t.Fatalf("good payload rejected: %v", err)
	}
	if v, ok := expo.Value("m", map[string]string{"l": "a\"b\\c\nd"}); !ok || v != 1.5 {
		t.Fatalf("escaped label sample = %v ok=%v", v, ok)
	}
}

// TestSetSinkRebaselines swaps sinks mid-flight and checks rates and SLO
// windows restart instead of spiking on the counter discontinuity.
func TestSetSinkRebaselines(t *testing.T) {
	a := telemetry.New(0)
	a.Add(telemetry.CtrVerticesAggregated, 1_000_000)
	t0 := time.Unix(1700000000, 0)
	s := newGoldenServer(a, nil, t0, 10*time.Second)
	scrapeText(t, s) // baseline on sink a

	b := telemetry.New(0) // fresh sink: counters restart from zero
	s.SetSink(b)
	b.Add(telemetry.CtrVerticesAggregated, 50)
	expo, err := ParseExposition(strings.NewReader(scrapeText(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	// First scrape after the swap re-baselines: the 1M→50 discontinuity
	// must not appear as a rate.
	if v, ok := expo.Value("graphite_throughput_vertices_per_second", nil); !ok || v != 0 {
		t.Fatalf("post-swap rate = %v ok=%v, want 0", v, ok)
	}
	if v, ok := expo.Value("graphite_vertices_aggregated_total", nil); !ok || v != 50 {
		t.Fatalf("post-swap counter = %v ok=%v, want 50", v, ok)
	}
}

// goldenExposition is the byte-exact expected /metrics payload of
// TestExpositionGolden's second scrape. Regenerate deliberately when the
// exposition contract changes (the test prints got on mismatch).
const goldenExposition = `# HELP graphite_build_info build metadata; value is always 1
# TYPE graphite_build_info gauge
graphite_build_info{goarch="amd64",goos="linux",goversion="go1.22.0",revision="deadbeef"} 1
# HELP graphite_gomaxprocs worker parallelism bound of the process
# TYPE graphite_gomaxprocs gauge
graphite_gomaxprocs 4
# HELP graphite_scrapes_total metrics scrapes served
# TYPE graphite_scrapes_total counter
graphite_scrapes_total 2
# HELP graphite_ready readiness probe state (1 ready, 0 draining)
# TYPE graphite_ready gauge
graphite_ready 0
# HELP graphite_dma_bytes_moved_total bytes moved by the DMA engine model
# TYPE graphite_dma_bytes_moved_total counter
graphite_dma_bytes_moved_total 5120
# HELP graphite_dma_descriptors_total DMA aggregation descriptors executed
# TYPE graphite_dma_descriptors_total counter
graphite_dma_descriptors_total 0
# HELP graphite_edges_aggregated_total edges traversed by aggregation
# TYPE graphite_edges_aggregated_total counter
graphite_edges_aggregated_total 5000
# HELP graphite_gemm_flops_total dense-equivalent FLOPs of update and backward GEMMs
# TYPE graphite_gemm_flops_total counter
graphite_gemm_flops_total 0
# HELP graphite_panics_recovered_total worker panics contained into structured errors
# TYPE graphite_panics_recovered_total counter
graphite_panics_recovered_total 0
# HELP graphite_rows_compressed_total feature rows compressed
# TYPE graphite_rows_compressed_total counter
graphite_rows_compressed_total 0
# HELP graphite_rows_decompressed_total compressed-row expansions consumed by kernels
# TYPE graphite_rows_decompressed_total counter
graphite_rows_decompressed_total 0
# HELP graphite_sched_chunks_total dynamically claimed scheduler chunks
# TYPE graphite_sched_chunks_total counter
graphite_sched_chunks_total 0
# HELP graphite_sched_rows_total rows handed out by the scheduler
# TYPE graphite_sched_rows_total counter
graphite_sched_rows_total 0
# HELP graphite_serve_batch_retries_total batch executions retried under the retry budget
# TYPE graphite_serve_batch_retries_total counter
graphite_serve_batch_retries_total 0
# HELP graphite_serve_batches_total mini-batches dispatched by the dynamic batcher
# TYPE graphite_serve_batches_total counter
graphite_serve_batches_total 0
# HELP graphite_serve_breaker_trips_total snapshot circuit breaker trips (closed/half-open to open)
# TYPE graphite_serve_breaker_trips_total counter
graphite_serve_breaker_trips_total 0
# HELP graphite_serve_degraded_total mini-batches executed at a reduced fanout ladder level
# TYPE graphite_serve_degraded_total counter
graphite_serve_degraded_total 0
# HELP graphite_serve_expired_total requests whose deadline passed before dispatch
# TYPE graphite_serve_expired_total counter
graphite_serve_expired_total 0
# HELP graphite_serve_failed_total requests failed by inference errors after dispatch
# TYPE graphite_serve_failed_total counter
graphite_serve_failed_total 0
# HELP graphite_serve_rejected_total requests rejected on a full admission queue
# TYPE graphite_serve_rejected_total counter
graphite_serve_rejected_total 0
# HELP graphite_serve_requests_total inference requests admitted to the serving queue
# TYPE graphite_serve_requests_total counter
graphite_serve_requests_total 0
# HELP graphite_serve_shed_total requests shed by the adaptive overload controller
# TYPE graphite_serve_shed_total counter
graphite_serve_shed_total 0
# HELP graphite_serve_snapshot_swaps_total checkpoint hot swaps applied to the serving snapshot
# TYPE graphite_serve_snapshot_swaps_total counter
graphite_serve_snapshot_swaps_total 0
# HELP graphite_serve_vertices_total vertices inferred through dispatched mini-batches
# TYPE graphite_serve_vertices_total counter
graphite_serve_vertices_total 0
# HELP graphite_vertices_aggregated_total vertex rows produced by aggregation
# TYPE graphite_vertices_aggregated_total counter
graphite_vertices_aggregated_total 1500
# HELP graphite_spans_recorded_total telemetry spans recorded (including ring-evicted)
# TYPE graphite_spans_recorded_total counter
graphite_spans_recorded_total 0
# HELP graphite_spans_dropped_total spans evicted from the trace ring buffer
# TYPE graphite_spans_dropped_total counter
graphite_spans_dropped_total 0
# HELP graphite_sched_worker_chunks_total scheduler chunks claimed per worker
# TYPE graphite_sched_worker_chunks_total counter
graphite_sched_worker_chunks_total{worker="0"} 2
graphite_sched_worker_chunks_total{worker="1"} 1
# HELP graphite_sched_worker_rows_total rows executed per worker
# TYPE graphite_sched_worker_rows_total counter
graphite_sched_worker_rows_total{worker="0"} 8
graphite_sched_worker_rows_total{worker="1"} 2
# HELP graphite_sched_worker_busy_seconds_total wall time spent inside claimed chunks per worker
# TYPE graphite_sched_worker_busy_seconds_total counter
graphite_sched_worker_busy_seconds_total{worker="0"} 2
graphite_sched_worker_busy_seconds_total{worker="1"} 0.5
# HELP graphite_phase_latency_seconds phase span latency distribution (log2 buckets)
# TYPE graphite_phase_latency_seconds histogram
graphite_phase_latency_seconds_bucket{phase="aggregate",le="0.000131071"} 1
graphite_phase_latency_seconds_bucket{phase="aggregate",le="0.000262143"} 2
graphite_phase_latency_seconds_bucket{phase="aggregate",le="0.000524287"} 3
graphite_phase_latency_seconds_bucket{phase="aggregate",le="0.001048575"} 3
graphite_phase_latency_seconds_bucket{phase="aggregate",le="0.002097151"} 4
graphite_phase_latency_seconds_bucket{phase="aggregate",le="+Inf"} 4
graphite_phase_latency_seconds_sum{phase="aggregate"} 0.0027
graphite_phase_latency_seconds_count{phase="aggregate"} 4
# HELP graphite_phase_latency_quantile_seconds estimated phase latency percentiles from the log2 histogram
# TYPE graphite_phase_latency_quantile_seconds gauge
graphite_phase_latency_quantile_seconds{phase="aggregate",quantile="0.5"} 0.000262143
graphite_phase_latency_quantile_seconds{phase="aggregate",quantile="0.95"} 0.002097151
graphite_phase_latency_quantile_seconds{phase="aggregate",quantile="0.99"} 0.002097151
# HELP graphite_throughput_vertices_per_second EWMA throughput derived from counter deltas between scrapes
# TYPE graphite_throughput_vertices_per_second gauge
graphite_throughput_vertices_per_second 50
# HELP graphite_throughput_edges_per_second EWMA throughput derived from counter deltas between scrapes
# TYPE graphite_throughput_edges_per_second gauge
graphite_throughput_edges_per_second 0
# HELP graphite_throughput_bytes_per_second EWMA throughput derived from counter deltas between scrapes
# TYPE graphite_throughput_bytes_per_second gauge
graphite_throughput_bytes_per_second 102.4
# HELP graphite_slo_window_seconds sliding window of the SLO burn-rate accounting
# TYPE graphite_slo_window_seconds gauge
graphite_slo_window_seconds 60
# HELP graphite_slo_threshold_seconds configured latency threshold of the objective
# TYPE graphite_slo_threshold_seconds gauge
graphite_slo_threshold_seconds{phase="aggregate",quantile="0.95"} 0.001
# HELP graphite_slo_quantile_seconds current estimated latency at the objective's target quantile
# TYPE graphite_slo_quantile_seconds gauge
graphite_slo_quantile_seconds{phase="aggregate",quantile="0.95"} 0.002097151
# HELP graphite_slo_observations_total observations counted toward the objective
# TYPE graphite_slo_observations_total counter
graphite_slo_observations_total{phase="aggregate",quantile="0.95"} 4
# HELP graphite_slo_bad_total observations above the objective threshold (log2-bucket lower bound)
# TYPE graphite_slo_bad_total counter
graphite_slo_bad_total{phase="aggregate",quantile="0.95"} 1
# HELP graphite_slo_burn_rate windowed error-budget burn rate (1 = at budget)
# TYPE graphite_slo_burn_rate gauge
graphite_slo_burn_rate{phase="aggregate",quantile="0.95"} 19.999999999999982
# HELP graphite_slo_breach 1 when the current quantile estimate exceeds the threshold
# TYPE graphite_slo_breach gauge
graphite_slo_breach{phase="aggregate",quantile="0.95"} 1
`
