package obsrv

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Event is one structured progress record on the /events stream. The bench
// harness publishes experiment lifecycle events; other producers may reuse
// the shape with their own Kind.
type Event struct {
	// Seq is the server-assigned monotonic sequence number.
	Seq int64 `json:"seq"`
	// Time is the server-assigned publish time.
	Time time.Time `json:"time"`
	// Kind classifies the event ("experiment", "sweep", ...).
	Kind string `json:"kind"`
	// Experiment is the bench experiment id, when applicable.
	Experiment string `json:"experiment,omitempty"`
	// Status is the lifecycle state ("start", "done", "error", ...).
	Status string `json:"status,omitempty"`
	// WallMS is the measured wall time in milliseconds, when applicable.
	WallMS float64 `json:"wall_ms,omitempty"`
	// Detail carries free-form context (error text, progress notes).
	Detail string `json:"detail,omitempty"`
	// TraceID is the request trace id (32 hex digits), when the event
	// describes one request — the serving layer stamps it on rejection and
	// expiry events so a 429/504 can be correlated with /v1/traces.
	TraceID string `json:"trace_id,omitempty"`
}

// eventBufCap bounds the replay buffer a new /events subscriber receives.
const eventBufCap = 256

// subBufCap bounds each subscriber's in-flight queue; a stalled consumer
// drops events rather than blocking publishers.
const subBufCap = 64

// broadcaster fans published events out to /events subscribers and keeps a
// bounded replay buffer so late subscribers see recent history.
type broadcaster struct {
	mu     sync.Mutex
	seq    int64
	buf    []Event
	subs   map[chan Event]struct{}
	closed bool
}

// publish stamps and fans out one event. Publishing never blocks: slow
// subscribers lose events (their stream stays ordered, with seq gaps).
func (b *broadcaster) publish(now time.Time, ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.seq++
	ev.Seq = b.seq
	ev.Time = now
	if len(b.buf) == eventBufCap {
		copy(b.buf, b.buf[1:])
		b.buf = b.buf[:eventBufCap-1]
	}
	b.buf = append(b.buf, ev)
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers a consumer and returns the replay history, the live
// channel, and a cancel function. After close(), the returned channel is
// already closed.
func (b *broadcaster) subscribe() (history []Event, ch chan Event, cancel func()) {
	ch = make(chan Event, subBufCap)
	b.mu.Lock()
	history = append([]Event(nil), b.buf...)
	if b.closed {
		close(ch)
	} else {
		if b.subs == nil {
			b.subs = make(map[chan Event]struct{})
		}
		b.subs[ch] = struct{}{}
	}
	b.mu.Unlock()
	return history, ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
}

// close ends all live streams; subsequent publishes are dropped.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
	}
	b.subs = nil
}

// handleEvents streams events as JSON lines (application/x-ndjson): the
// replay buffer first, then live events until the client disconnects or the
// server shuts down.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	history, ch, cancel := s.events.subscribe()
	defer cancel()
	for _, ev := range history {
		if enc.Encode(ev) != nil {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // server shutting down
			}
			if enc.Encode(ev) != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
