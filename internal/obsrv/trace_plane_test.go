package obsrv

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphite/internal/telemetry"
)

// mkTrace fabricates a finished TraceData with controlled duration, status,
// and span names.
func mkTrace(dur time.Duration, status string, spanNames ...string) telemetry.TraceData {
	td := telemetry.TraceData{
		TraceID:  telemetry.NewTraceID(),
		Start:    time.Unix(1700000000, 0),
		Duration: dur,
		Status:   status,
	}
	for _, name := range spanNames {
		td.Spans = append(td.Spans, telemetry.SpanRecord{Name: name, Start: td.Start, Dur: dur / 2})
	}
	td.Spans = append(td.Spans, telemetry.SpanRecord{Name: telemetry.PhaseServeE2E, Start: td.Start, Dur: dur})
	return td
}

func TestFlightRecorderPolicy(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{
		ErrorCap:   2,
		TopK:       3,
		SampleCap:  4,
		SampleRate: -1, // probabilistic pool off: policy classes stay deterministic
		SLOs:       []SLO{{Phase: "serve-batch", Quantile: 0.99, Threshold: 10 * time.Millisecond}},
	})

	// Errors are always kept, oldest evicted at the cap.
	e1, e2, e3 := mkTrace(time.Millisecond, "queue_full"), mkTrace(time.Millisecond, "deadline_exceeded"), mkTrace(time.Millisecond, "error")
	for _, td := range []telemetry.TraceData{e1, e2, e3} {
		if reason, kept := fr.Record(td); !kept || reason != ReasonError {
			t.Fatalf("error trace not kept: %s %v", reason, kept)
		}
	}
	if _, ok := fr.Get(e1.TraceID); ok {
		t.Fatal("oldest error should have been evicted at cap 2")
	}
	if _, ok := fr.Get(e2.TraceID); !ok {
		t.Fatal("second error should be retained")
	}

	// SLO breach: serve-batch span over 10ms. mkTrace puts spans at dur/2,
	// so a 30ms trace has a 15ms serve-batch span.
	breach := mkTrace(30*time.Millisecond, "", "serve-batch")
	if reason, kept := fr.Record(breach); !kept || reason != ReasonSLO {
		t.Fatalf("SLO-breaching trace: reason=%s kept=%v", reason, kept)
	}

	// Top-K slowest: fill with 3, then a faster one is dropped, a slower
	// one evicts the current fastest. Durations stay under the 20ms breach
	// point (dur/2 vs 10ms threshold) so the slow pool is the only match.
	s5, s7, s9 := mkTrace(5*time.Millisecond, ""), mkTrace(7*time.Millisecond, ""), mkTrace(9*time.Millisecond, "")
	for _, td := range []telemetry.TraceData{s5, s7, s9} {
		if reason, _ := fr.Record(td); reason != ReasonSlow {
			t.Fatalf("top-K fill: reason=%s", reason)
		}
	}
	if _, kept := fr.Record(mkTrace(time.Millisecond, "")); kept {
		t.Fatal("fast trace kept with a full, slower top-K pool")
	}
	s12 := mkTrace(12*time.Millisecond, "")
	if reason, _ := fr.Record(s12); reason != ReasonSlow {
		t.Fatal("slower trace should enter top-K")
	}
	if _, ok := fr.Get(s5.TraceID); ok {
		t.Fatal("fastest top-K member should have been evicted")
	}

	slowest := fr.Slowest(2)
	if len(slowest) != 2 || slowest[0].TraceID != breach.TraceID || slowest[1].TraceID != s12.TraceID {
		t.Fatalf("Slowest(2) wrong order: %+v", slowest)
	}
	byPhase := fr.ByPhase("serve-batch", 10)
	if len(byPhase) != 1 || byPhase[0].TraceID != breach.TraceID {
		t.Fatalf("ByPhase = %+v", byPhase)
	}
	st := fr.Stats()
	if st.Errors != 2 || st.Slow != 3 || st.Sampled != 0 || st.Recorded != 9 || st.Kept != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlightRecorderProbabilisticDeterminism(t *testing.T) {
	run := func() []telemetry.TraceID {
		fr := NewFlightRecorder(FlightRecorderConfig{TopK: 1, SampleRate: 0.5, Seed: 42})
		fr.Record(mkTrace(time.Hour, "")) // occupy top-K so the rest is probabilistic
		var kept []telemetry.TraceID
		for i := 0; i < 100; i++ {
			td := mkTrace(time.Millisecond, "")
			// Pin the trace id so both runs offer identical inputs.
			td.TraceID = telemetry.TraceID{byte(i + 1), 1}
			if reason, ok := fr.Record(td); ok {
				if reason != ReasonSampled {
					t.Fatalf("reason = %s", reason)
				}
				kept = append(kept, td.TraceID)
			}
		}
		return kept
	}
	a, b := run(), b2(run)
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("sampling kept %d/100, want a strict subset", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different retention")
	}
}

// b2 exists to make the double-run explicit at the call site.
func b2(f func() []telemetry.TraceID) []telemetry.TraceID { return f() }

func TestTracesEndpoint(t *testing.T) {
	fr := NewFlightRecorder(FlightRecorderConfig{SampleRate: -1})
	slow := mkTrace(50*time.Millisecond, "", "serve-queue", "serve-batch", "layer0")
	fast := mkTrace(time.Millisecond, "", "serve-queue")
	fr.Record(slow)
	fr.Record(fast)
	s := NewServer(Options{Sink: telemetry.New(0), Traces: fr})

	get := func(path string) (*httptest.ResponseRecorder, string) {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec, rec.Body.String()
	}

	// By id: full span tree.
	rec, body := get("/v1/traces?id=" + slow.TraceID.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("by id: %d %s", rec.Code, body)
	}
	var full []RecordedTrace
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatal(err)
	}
	if len(full) != 1 || full[0].TraceID != slow.TraceID || !full[0].HasSpan("layer0") {
		t.Fatalf("by id payload: %+v", full)
	}

	// Slowest: ordered, bounded.
	_, body = get("/v1/traces?slowest=1")
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatal(err)
	}
	if len(full) != 1 || full[0].TraceID != slow.TraceID {
		t.Fatalf("slowest payload: %+v", full)
	}

	// By phase.
	_, body = get("/v1/traces?phase=serve-batch&n=5")
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatal(err)
	}
	if len(full) != 1 || full[0].TraceID != slow.TraceID {
		t.Fatalf("phase payload: %+v", full)
	}

	// Default list: summaries.
	_, body = get("/v1/traces")
	var sums []traceSummary
	if err := json.Unmarshal([]byte(body), &sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("summary count = %d", len(sums))
	}

	// Chrome export parses and carries span identity args.
	_, body = get("/v1/traces?id=" + slow.TraceID.String() + "&format=chrome")
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	var sawSpan bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "layer0" {
			sawSpan = true
			if ev.Args["trace_id"] != slow.TraceID.String() {
				t.Fatalf("chrome args = %+v", ev.Args)
			}
		}
	}
	if !sawSpan {
		t.Fatal("chrome export missing layer0 span")
	}

	// Errors: unknown id 404, malformed id 400, no recorder 404.
	if rec, _ := get("/v1/traces?id=" + telemetry.NewTraceID().String()); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", rec.Code)
	}
	if rec, _ := get("/v1/traces?id=zz"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id: %d", rec.Code)
	}
	if rec, _ := get("/v1/traces?slowest=0"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad slowest: %d", rec.Code)
	}
	bare := NewServer(Options{Sink: telemetry.New(0)})
	rec = httptest.NewRecorder()
	bare.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traces", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("no recorder: %d", rec.Code)
	}
}

// TestExemplarExposition checks the full loop: a traced observation renders
// an OpenMetrics-style exemplar on its bucket line, the strict parser
// accepts it, recovers the trace id, and histogram validation still holds.
func TestExemplarExposition(t *testing.T) {
	sink := telemetry.New(0)
	tid := telemetry.NewTraceID()
	sink.ObserveTraced(telemetry.PhaseServeE2E, 3*time.Millisecond, tid)
	sink.Observe(telemetry.PhaseServeE2E, 40*time.Millisecond) // untraced bucket

	s := newGoldenServer(sink, nil, time.Unix(1700000000, 0), 10*time.Second)
	text := scrapeText(t, s)
	if !strings.Contains(text, `# {trace_id="`+tid.String()+`"}`) {
		t.Fatalf("exposition missing exemplar:\n%s", text)
	}

	expo, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("strict parser rejected exemplar exposition: %v", err)
	}
	var found *ExemplarData
	for _, smp := range expo.Family("graphite_phase_latency_seconds_bucket") {
		if smp.Exemplar != nil {
			if found != nil {
				t.Fatal("more than one exemplar rendered")
			}
			found = smp.Exemplar
		}
	}
	if found == nil {
		t.Fatal("parser dropped the exemplar")
	}
	if found.Labels["trace_id"] != tid.String() {
		t.Fatalf("exemplar labels = %+v", found.Labels)
	}
	if math.Abs(found.Value-0.003) > 1e-9 || !found.HasTs {
		t.Fatalf("exemplar value/ts = %+v", found)
	}
}

func TestParserRejectsMalformedExemplars(t *testing.T) {
	cases := map[string]string{
		"exemplar without labels": "m 1 # 0.5\n",
		"exemplar bad value":      `m 1 # {trace_id="ab"} x` + "\n",
		"exemplar bad ts":         `m 1 # {trace_id="ab"} 0.5 x` + "\n",
		"exemplar unterminated":   `m 1 # {trace_id="ab` + "\n",
		"exemplar extra fields":   `m 1 # {trace_id="ab"} 0.5 1.0 2.0` + "\n",
	}
	for name, payload := range cases {
		if _, err := ParseExposition(strings.NewReader("# TYPE m gauge\n" + payload)); err == nil {
			t.Errorf("%s: parser accepted %q", name, payload)
		}
	}
	// A label value containing " # " or "}" must not be mistaken for an
	// exemplar boundary.
	tricky := "# TYPE m gauge\n" + `m{l="a # b}"} 2` + "\n"
	expo, err := ParseExposition(strings.NewReader(tricky))
	if err != nil {
		t.Fatalf("tricky label value rejected: %v", err)
	}
	if v, ok := expo.Value("m", map[string]string{"l": "a # b}"}); !ok || v != 2 {
		t.Fatalf("tricky label sample = %v ok=%v", v, ok)
	}
}

// TestEWMAIrregularIntervals pins the irregular-interval smoothing: the
// per-update weight must be 1-exp(-dt/tau) so slow and fast scrapers
// converge to the same rate.
func TestEWMAIrregularIntervals(t *testing.T) {
	tau := 30 * time.Second

	// Exact single-step semantics for assorted gaps.
	for _, dt := range []time.Duration{time.Second, 5 * time.Second, time.Minute} {
		e := &ewma{rate: 50, init: true}
		e.update(int64(200*dt.Seconds()), dt, tau) // inst = 200/s
		alpha := 1 - math.Exp(-dt.Seconds()/tau.Seconds())
		want := 50 + alpha*(200-50)
		if math.Abs(e.rate-want) > 1e-9 {
			t.Fatalf("dt=%v: rate = %v, want %v", dt, e.rate, want)
		}
	}

	// Convergence: starting far from the truth, irregular gaps totalling
	// many tau converge to the true rate.
	e := &ewma{}
	e.update(0, time.Second, tau) // init at 0/s
	var total time.Duration
	for i, dt := range []time.Duration{
		time.Second, 9 * time.Second, 500 * time.Millisecond, 30 * time.Second,
		2 * time.Second, 45 * time.Second, time.Second, 90 * time.Second,
	} {
		_ = i
		e.update(int64(100*dt.Seconds()), dt, tau)
		total += dt
	}
	if total < 5*tau {
		t.Fatalf("test bug: only %v of smoothing time", total)
	}
	if math.Abs(e.rate-100) > 1.0 {
		t.Fatalf("irregular-interval EWMA converged to %v, want ~100", e.rate)
	}

	// A gap far beyond tau effectively resets to the instantaneous rate.
	e2 := &ewma{rate: 1e6, init: true}
	e2.update(int64(100*600), 10*time.Minute, tau)
	if math.Abs(e2.rate-100) > 1e-2 {
		t.Fatalf("long-gap EWMA = %v, want ~100", e2.rate)
	}

	// Server-level: irregular scrape gaps with a counter advancing at a
	// constant 100 edges/s must report ~100, not a gap-dependent artifact.
	sink := telemetry.New(0)
	s := NewServer(Options{Sink: sink, BuildLabels: fixedBuild, EWMATau: tau})
	gaps := []time.Duration{0, time.Second, 20 * time.Second, 500 * time.Millisecond, 3 * time.Minute}
	times := make([]time.Time, 0, len(gaps))
	now := time.Unix(1700000000, 0)
	for _, g := range gaps {
		now = now.Add(g)
		times = append(times, now)
	}
	i := 0
	s.now = func() time.Time { t := times[i]; i++; return t }
	for j, g := range gaps {
		sink.Add(telemetry.CtrEdgesAggregated, int64(100*g.Seconds()))
		text := scrapeText(t, s)
		if j == len(gaps)-1 {
			expo, err := ParseExposition(strings.NewReader(text))
			if err != nil {
				t.Fatal(err)
			}
			rate, ok := expo.Value("graphite_throughput_edges_per_second", nil)
			if !ok || math.Abs(rate-100) > 1.0 {
				t.Fatalf("edges/s gauge = %v ok=%v, want ~100", rate, ok)
			}
		}
	}
}

// TestEventsReplayRingOverflow publishes more events than the replay ring
// holds: a late subscriber must see exactly the last eventBufCap events, in
// order, with contiguous sequence numbers.
func TestEventsReplayRingOverflow(t *testing.T) {
	const published = eventBufCap + 44
	s := NewServer(Options{Sink: telemetry.New(0)})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	for i := 1; i <= published; i++ {
		s.Publish(Event{Kind: "serve", Detail: fmt.Sprintf("ev%d", i)})
	}

	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	want := int64(published - eventBufCap + 1) // first replayed seq
	for k := 0; k < eventBufCap; k++ {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d replayed events: %v", k, sc.Err())
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != want {
			t.Fatalf("replay event %d: seq %d, want %d", k, ev.Seq, want)
		}
		if ev.Detail != fmt.Sprintf("ev%d", want) {
			t.Fatalf("replay event %d: detail %q", k, ev.Detail)
		}
		want++
	}
	// The replay is exactly the ring: the next line is live, not history.
	s.Publish(Event{Kind: "serve", Detail: "live", TraceID: "4bf92f3577b34da6a3ce929d0e0e4736"})
	if !sc.Scan() {
		t.Fatalf("no live event after replay: %v", sc.Err())
	}
	var live Event
	if err := json.Unmarshal(sc.Bytes(), &live); err != nil {
		t.Fatal(err)
	}
	if live.Seq != int64(published+1) || live.Detail != "live" {
		t.Fatalf("first post-replay event = %+v, want seq %d", live, published+1)
	}
	if live.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("event trace id lost: %+v", live)
	}
}
