package obsrv

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample.
type Sample struct {
	// Name is the full sample name, including _bucket/_sum/_count suffixes.
	Name string
	// Labels holds the sample's label pairs.
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
	// Exemplar is the OpenMetrics-style exemplar attached after the value
	// (`# {trace_id="..."} value [ts]`), or nil. The classic 0.0.4 format
	// has no exemplars; the parser accepts them as a validated extension
	// because this repo's own exposition emits them on bucket lines.
	Exemplar *ExemplarData
}

// ExemplarData is one parsed exemplar.
type ExemplarData struct {
	Labels map[string]string
	Value  float64
	Ts     float64
	HasTs  bool
}

// Exposition is a parsed Prometheus text-format payload.
type Exposition struct {
	// Samples holds every sample line in input order.
	Samples []Sample
	// Types maps family names to their declared # TYPE.
	Types map[string]string
	// Help maps family names to their # HELP text.
	Help map[string]string
}

// Value returns the value of the sample with the given name whose labels
// exactly match want (nil matches only a label-free sample).
func (e *Exposition) Value(name string, want map[string]string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name || len(s.Labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Family returns all samples with the given exact name, in input order.
func (e *Exposition) Family(name string) []Sample {
	var out []Sample
	for _, s := range e.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// validTypes are the metric types the text format allows.
var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// ParseExposition parses and validates Prometheus text format (version
// 0.0.4). It is strict: malformed names, labels, values, duplicate or
// late # TYPE lines, and inconsistent histogram series (missing +Inf
// bucket, non-cumulative buckets, +Inf disagreeing with _count) are all
// errors. The CI smoke job and graphite-top use it as the exposition
// gate, so anything /metrics emits that a real Prometheus server would
// reject fails loudly here.
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{Types: make(map[string]string), Help: make(map[string]string)}
	sampledFamilies := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := e.parseComment(line, sampledFamilies); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		e.Samples = append(e.Samples, s)
		sampledFamilies[familyOf(s.Name)] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := e.validateHistograms(); err != nil {
		return nil, err
	}
	return e, nil
}

// parseComment handles # HELP and # TYPE lines; other comments pass.
func (e *Exposition) parseComment(line string, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		if !validTypes[typ] {
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := e.Types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		e.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		if len(fields) == 4 {
			e.Help[name] = fields[3]
		}
	}
	return nil
}

// parseSample parses one `name{labels} value [timestamp] [# exemplar]` line.
func parseSample(line string) (Sample, error) {
	s := Sample{}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		var err error
		if s.Labels, rest, err = scanLabelBlock(rest); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
	}
	// Split off an exemplar. The label block is already consumed by the
	// quote-aware scanner above, so a bare " # " here is unambiguous.
	exPart := ""
	if j := strings.Index(rest, " # "); j >= 0 {
		exPart = strings.TrimSpace(rest[j+3:])
		rest = rest[:j]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		// One value plus an optional timestamp.
		return s, fmt.Errorf("want `value [timestamp]` after name in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	if exPart != "" {
		ex, err := parseExemplar(exPart)
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Exemplar = &ex
	}
	return s, nil
}

// parseExemplar parses `{labels} value [timestamp]` after a "# " marker.
// Exemplar timestamps are float seconds (OpenMetrics), unlike the integer
// millisecond timestamps of classic sample lines.
func parseExemplar(s string) (ExemplarData, error) {
	ex := ExemplarData{}
	if len(s) == 0 || s[0] != '{' {
		return ex, fmt.Errorf("exemplar must start with a label block")
	}
	labels, rest, err := scanLabelBlock(s)
	if err != nil {
		return ex, fmt.Errorf("exemplar: %w", err)
	}
	ex.Labels = labels
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return ex, fmt.Errorf("want `value [timestamp]` in exemplar")
	}
	if ex.Value, err = strconv.ParseFloat(fields[0], 64); err != nil {
		return ex, fmt.Errorf("bad exemplar value %q", fields[0])
	}
	if len(fields) == 2 {
		if ex.Ts, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return ex, fmt.Errorf("bad exemplar timestamp %q", fields[1])
		}
		ex.HasTs = true
	}
	return ex, nil
}

// scanLabelBlock parses a `{k="v",...}` block at the start of s, returning
// the labels and the remainder after the closing brace. It scans
// quote-aware instead of seeking the last '}', so label values containing
// braces and exemplar blocks later on the line cannot confuse it.
func scanLabelBlock(s string) (map[string]string, string, error) {
	out := make(map[string]string)
	rest := s[1:] // consume '{'
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return out, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("label without value")
		}
		name := strings.TrimSpace(rest[:eq])
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, "", fmt.Errorf("unquoted label value for %q", name)
		}
		val, rem, err := scanQuoted(rest)
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", name, err)
		}
		if _, dup := out[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val
		rem = strings.TrimLeft(rem, " \t")
		if rem == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		switch rem[0] {
		case ',':
			rest = rem[1:]
		case '}':
			return out, rem[1:], nil
		default:
			return nil, "", fmt.Errorf("unexpected %q after label %q", rem[0], name)
		}
	}
}

// scanQuoted consumes a double-quoted, backslash-escaped string at the
// start of s and returns its unescaped value and the remainder.
func scanQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// familyOf strips histogram/summary sample suffixes to the family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// validateHistograms checks every family declared `histogram`: each label
// group needs cumulative, non-decreasing buckets ending in a +Inf bucket
// that equals its _count sample.
func (e *Exposition) validateHistograms() error {
	for fam, typ := range e.Types {
		if typ != "histogram" {
			continue
		}
		type group struct {
			buckets []Sample
			count   *Sample
			hasSum  bool
		}
		groups := make(map[string]*group)
		key := func(labels map[string]string) string {
			kv := make([]string, 0, len(labels))
			for k, v := range labels {
				if k == "le" {
					continue
				}
				kv = append(kv, k+"="+v)
			}
			sort.Strings(kv)
			return strings.Join(kv, ",")
		}
		for i := range e.Samples {
			s := &e.Samples[i]
			base := key(s.Labels)
			g := groups[base]
			if g == nil {
				g = &group{}
				groups[base] = g
			}
			switch s.Name {
			case fam + "_bucket":
				if _, ok := s.Labels["le"]; !ok {
					return fmt.Errorf("histogram %s bucket without le label", fam)
				}
				g.buckets = append(g.buckets, *s)
			case fam + "_count":
				g.count = s
			case fam + "_sum":
				g.hasSum = true
			}
		}
		for base, g := range groups {
			if len(g.buckets) == 0 && g.count == nil && !g.hasSum {
				continue // samples of other families sharing no series here
			}
			if len(g.buckets) == 0 {
				return fmt.Errorf("histogram %s{%s} has no buckets", fam, base)
			}
			var prev float64 = -1
			var inf *Sample
			for i := range g.buckets {
				b := g.buckets[i]
				if b.Labels["le"] == "+Inf" {
					inf = &g.buckets[i]
					continue
				}
				le, err := strconv.ParseFloat(b.Labels["le"], 64)
				if err != nil {
					return fmt.Errorf("histogram %s{%s} bad le %q", fam, base, b.Labels["le"])
				}
				_ = le
				if b.Value < prev {
					return fmt.Errorf("histogram %s{%s} buckets not cumulative", fam, base)
				}
				prev = b.Value
			}
			if inf == nil {
				return fmt.Errorf("histogram %s{%s} missing +Inf bucket", fam, base)
			}
			if inf.Value < prev {
				return fmt.Errorf("histogram %s{%s} +Inf bucket below finite buckets", fam, base)
			}
			if g.count == nil {
				return fmt.Errorf("histogram %s{%s} missing _count", fam, base)
			}
			if g.count.Value != inf.Value {
				return fmt.Errorf("histogram %s{%s} +Inf bucket %v != count %v", fam, base, inf.Value, g.count.Value)
			}
			if !g.hasSum {
				return fmt.Errorf("histogram %s{%s} missing _sum", fam, base)
			}
		}
	}
	return nil
}
