package simgnn

import (
	"testing"

	"graphite/internal/graph"
	"graphite/internal/locality"
	"graphite/internal/sched"
)

func TestChunkIterCoversSpace(t *testing.T) {
	cur := sched.NewCursor(25, 4)
	a := chunkIter{cur: cur}
	b := chunkIter{cur: cur}
	seen := make([]int, 25)
	turn := 0
	for {
		it := &a
		if turn%2 == 1 {
			it = &b
		}
		turn++
		pos, ok := it.next()
		if !ok {
			if _, ok2 := a.next(); ok2 {
				continue
			}
			if _, ok2 := b.next(); ok2 {
				continue
			}
			break
		}
		seen[pos]++
	}
	for pos, c := range seen {
		if c != 1 {
			t.Fatalf("position %d visited %d times", pos, c)
		}
	}
}

func TestRowReadLinesCompressionBounds(t *testing.T) {
	s := newSim(mustGraph(t), []Layer{{Fin: 128, Fout: 128}}, Options{Sparsity: 0.5})
	dense := s.rowReadLines(128, false)
	comp := s.rowReadLines(128, true)
	if dense != 8 {
		t.Fatalf("dense 128-float row spans %d lines, want 8", dense)
	}
	if comp >= dense {
		t.Fatalf("compressed row (%d lines) not below dense (%d)", comp, dense)
	}
	// Near-zero sparsity: compression may cost up to one extra mask line
	// but never more.
	s.opt.Sparsity = 0.01
	if got := s.rowReadLines(128, true); got > dense+1 {
		t.Fatalf("compressed row at 1%% sparsity spans %d lines, cap is dense+1 = %d", got, dense+1)
	}
}

func TestAggComputeCyclesOrdering(t *testing.T) {
	s := newSim(mustGraph(t), []Layer{{Fin: 128, Fout: 128}}, Options{Sparsity: 0.5})
	fast := s.aggComputeCycles(128, false, false)
	slow := s.aggComputeCycles(128, false, true)
	if slow <= fast {
		t.Fatalf("baseline kernel (%d cycles) not slower than specialised (%d)", slow, fast)
	}
}

func mustGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateProfile(graph.Wikipedia, 200)
	if err != nil {
		t.Fatal(err)
	}
	return g.AddSelfLoops()
}

func TestSimulateAggregationDeterministic(t *testing.T) {
	g := mustGraph(t)
	opt := Options{Cores: 2}
	a, err := SimulateAggregation(g, 32, VarBasic, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateAggregation(g, 32, VarBasic, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Stats.L1Accesses != b.Stats.L1Accesses {
		t.Fatalf("nondeterministic simulation: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestSimulateWithOrderSameWorkDifferentTiming(t *testing.T) {
	// Disable prefetch: dropped prefetches vary with the order, but the
	// demand work must be identical.
	g := mustGraph(t)
	base, err := SimulateAggregation(g, 32, VarBasic, Options{Cores: 2, PrefetchDistance: -1})
	if err != nil {
		t.Fatal(err)
	}
	ord, err := SimulateAggregation(g, 32, VarBasic,
		Options{Cores: 2, PrefetchDistance: -1, Order: locality.Reorder(g)})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.L1Accesses != ord.Stats.L1Accesses {
		t.Fatalf("order changed demand access count: %d vs %d", base.Stats.L1Accesses, ord.Stats.L1Accesses)
	}
}

func TestDMAFusedCoversAllVertices(t *testing.T) {
	g := mustGraph(t)
	r, err := SimulateInference(g, []Layer{{Fin: 32, Fout: 32}}, VarFusedDMA, Options{Cores: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.EngineJobs != int64(g.NumVertices()) {
		t.Fatalf("engines ran %d jobs for %d vertices", r.EngineJobs, g.NumVertices())
	}
}
