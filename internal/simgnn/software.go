package simgnn

import (
	"graphite/internal/graph"
	"graphite/internal/memsim"
	"graphite/internal/sched"
)

// spanLines returns the cache-line span of [byteOff, byteOff+bytes) within
// a region.
func spanLines(reg memsim.AddressRegion, byteOff, bytes int64) (first, count int64) {
	if bytes <= 0 {
		return 0, 0
	}
	start := reg.Base + byteOff
	first = start / memsim.LineBytes
	last := (start + bytes - 1) / memsim.LineBytes
	return first, last - first + 1
}

func (s *sim) readSpan(core int, reg memsim.AddressRegion, byteOff, bytes int64) {
	first, count := spanLines(reg, byteOff, bytes)
	for l := int64(0); l < count; l++ {
		s.m.Read(core, first+l)
	}
}

func (s *sim) writeSpan(core int, reg memsim.AddressRegion, byteOff, bytes int64) {
	first, count := spanLines(reg, byteOff, bytes)
	for l := int64(0); l < count; l++ {
		s.m.Write(core, first+l)
	}
}

// readRow reads one feature row of the given width, dense or compressed.
func (s *sim) readRow(core int, reg memsim.AddressRegion, row, cols int, compressed bool) {
	lines := s.rowReadLines(cols, compressed)
	first := (reg.Base + int64(row)*reg.Stride) / memsim.LineBytes
	for l := int64(0); l < lines; l++ {
		s.m.Read(core, first+l)
	}
}

// writeRow writes one feature row.
func (s *sim) writeRow(core int, reg memsim.AddressRegion, row, cols int, compressed bool) {
	lines := s.rowReadLines(cols, compressed)
	first := (reg.Base + int64(row)*reg.Stride) / memsim.LineBytes
	for l := int64(0); l < lines; l++ {
		s.m.Write(core, first+l)
	}
}

// aggDest says where a vertex's aggregation result lands.
type aggDest struct {
	reg    memsim.AddressRegion
	rowFor func(pos, v int) int
}

// aggGeom bundles the graph side of an aggregation pass (forward or
// transposed).
type aggGeom struct {
	g        *graph.CSR
	col      memsim.AddressRegion
	factor   memsim.AddressRegion
	inputReg memsim.AddressRegion
	cols     int  // Fin
	comp     bool // compressed input rows
	slow     bool // baseline (non-specialised) kernel
}

// aggregateVertex replays Algorithm 1's per-vertex work: index and factor
// reads, gather+reduce of each neighbour row, result write, and the
// end-of-reduction drain.
func (s *sim) aggregateVertex(core int, ge aggGeom, pos int, dst aggDest, prefetch bool) {
	v := s.vertexAt(pos)
	deg := int64(ge.g.Degree(v))
	off := int64(ge.g.Ptr[v]) * 4
	s.readSpan(core, ge.col, off, deg*4)
	s.readSpan(core, ge.factor, off, deg*4)
	for _, u := range ge.g.Neighbors(v) {
		s.readRow(core, ge.inputReg, int(u), ge.cols, ge.comp)
		s.m.Compute(core, s.aggComputeCycles(ge.cols, ge.comp, ge.slow))
	}
	s.writeRow(core, dst.reg, dst.rowFor(pos, v), ge.cols, false)
	// Software prefetch for the vertex D positions ahead: the first two
	// cache lines of each of its input rows (§4.1), issued before the
	// drain so they overlap the dependency stall.
	if prefetch && s.opt.PrefetchDistance > 0 {
		fpos := pos + s.opt.PrefetchDistance
		if fpos < ge.g.NumVertices() {
			fv := s.vertexAt(fpos)
			foff := int64(ge.g.Ptr[fv]) * 4
			fdeg := int64(ge.g.Degree(fv))
			// Prefetch the index line(s) too.
			first, count := spanLines(ge.col, foff, fdeg*4)
			for l := int64(0); l < count; l++ {
				s.m.Prefetch(core, first)
				_ = l
				break // only the first index line; the rest follow on demand
			}
			for _, u := range ge.g.Neighbors(fv) {
				base := (ge.inputReg.Base + int64(u)*ge.inputReg.Stride) / memsim.LineBytes
				s.m.Prefetch(core, base)
				if s.rowReadLines(ge.cols, ge.comp) > 1 {
					s.m.Prefetch(core, base+1)
				}
			}
		}
	}
	s.m.Drain(core)
}

// runInterleaved advances per-core unit streams in global cycle order so
// shared-resource contention (L3, DRAM bandwidth) is modelled fairly.
// next(core) executes one unit and reports whether the core has more work.
func (s *sim) runInterleaved(next func(core int) bool) {
	active := make([]bool, s.opt.Cores)
	remaining := s.opt.Cores
	for c := range active {
		active[c] = true
	}
	for remaining > 0 {
		best := -1
		for c := 0; c < s.opt.Cores; c++ {
			if active[c] && (best < 0 || s.m.Cycle(c) < s.m.Cycle(best)) {
				best = c
			}
		}
		if !next(best) {
			active[best] = false
			remaining--
		}
	}
}

// chunkIter walks one core's share of a dynamically-scheduled iteration
// space one position at a time, claiming a fresh chunk from the shared
// cursor whenever its current chunk runs out. The one-position granularity
// keeps the global interleave fine enough for fair DRAM contention.
type chunkIter struct {
	pos, end int
	cur      *sched.Cursor
}

func (ci *chunkIter) next() (int, bool) {
	if ci.pos >= ci.end {
		st, e, ok := ci.cur.Next()
		if !ok {
			return 0, false
		}
		ci.pos, ci.end = st, e
	}
	p := ci.pos
	ci.pos++
	return p, true
}

// aggregationPass replays one full (unfused) aggregation phase.
// variant selects static vs dynamic scheduling and prefetching.
func (s *sim) aggregationPass(variant Variant, ge aggGeom, dst aggDest) {
	n := ge.g.NumVertices()
	if variant == VarDistGNN {
		// Static contiguous partitions, one vertex interleaved at a time.
		per := (n + s.opt.Cores - 1) / s.opt.Cores
		cursors := make([]int, s.opt.Cores)
		ends := make([]int, s.opt.Cores)
		for c := range cursors {
			cursors[c] = c * per
			ends[c] = min(n, (c+1)*per)
		}
		s.runInterleaved(func(core int) bool {
			if cursors[core] >= ends[core] {
				return false
			}
			s.aggregateVertex(core, ge, cursors[core], dst, false)
			cursors[core]++
			return true
		})
		return
	}
	// Dynamic scheduling with prefetch (Algorithm 1).
	cur := sched.NewCursor(n, s.opt.TaskSize)
	iters := make([]chunkIter, s.opt.Cores)
	for c := range iters {
		iters[c].cur = cur
	}
	s.runInterleaved(func(core int) bool {
		pos, ok := iters[core].next()
		if !ok {
			return false
		}
		s.aggregateVertex(core, ge, pos, dst, true)
		return true
	})
}

// updateVertex replays the update phase for one vertex: read its a row,
// stream the weight matrix row by row (W is L1/L2 resident after warm-up,
// so these are the hits that make the update phase retire-heavy), and
// write the output row. The GEMM's execution time is carried by the weight
// loads themselves — an FMA-based row GEMM issues roughly one cache access
// per vector of multiplies, so no separate compute term is added beyond
// the epilogue (bias + activation).
func (s *sim) updateVertex(core, layerIdx int, v int, aReg memsim.AddressRegion, aRow int, outComp bool, backward bool) {
	l := s.layers[layerIdx]
	s.readRow(core, aReg, aRow, l.Fin, false)
	passes := 1
	if backward {
		// dW = aᵀ·dz and da = dz·Wᵀ: twice the forward GEMM work, with
		// the dz row read happening in place of the a row read above.
		passes = 2
	}
	for p := 0; p < passes; p++ {
		for wRow := 0; wRow < l.Fin; wRow++ {
			s.readRow(core, s.weights[layerIdx], wRow, l.Fout, false)
		}
	}
	s.m.Compute(core, int64(l.Fout)/s.opt.VecElems+1) // bias + activation epilogue
	if backward {
		s.writeRow(core, s.a[layerIdx], v, l.Fin, false)
	} else {
		s.writeRow(core, s.h[layerIdx+1], v, l.Fout, outComp)
	}
}

// updatePass replays a full (unfused) update phase over all vertices.
func (s *sim) updatePass(layerIdx int, train bool, variant Variant, backward bool) {
	n := s.g.NumVertices()
	cur := sched.NewCursor(n, s.opt.TaskSize)
	iters := make([]chunkIter, s.opt.Cores)
	for c := range iters {
		iters[c].cur = cur
	}
	outComp := variant.compressed() && layerIdx < len(s.layers)-1 && !backward
	src := s.a[layerIdx]
	if backward {
		src = s.grad[layerIdx+1]
	}
	s.runInterleaved(func(core int) bool {
		pos, ok := iters[core].next()
		if !ok {
			s.m.Drain(core)
			return false
		}
		// The unfused update streams rows in storage order regardless of
		// the aggregation's processing order (the GEMM does not care).
		s.updateVertex(core, layerIdx, pos, src, pos, outComp, backward)
		return true
	})
}

// fusedLayerPass replays Algorithm 2: per block of B vertices, aggregate
// then immediately update while the a block is cache resident. Training
// writes a to its global rows; inference reuses a per-core buffer
// (Fig. 5b/5c).
func (s *sim) fusedLayerPass(layerIdx int, train bool, variant Variant) {
	n := s.g.NumVertices()
	l := s.layers[layerIdx]
	ge := aggGeom{g: s.g, col: s.col, factor: s.factor, inputReg: s.h[layerIdx], cols: l.Fin,
		comp: variant.compressed()}
	outComp := variant.compressed() && layerIdx < len(s.layers)-1
	blockSz := s.opt.BlockSize
	cur := sched.NewCursor(n, blockSz)
	type blockState struct {
		start, end int
		i          int
		updating   bool
		active     bool
	}
	states := make([]blockState, s.opt.Cores)
	s.runInterleaved(func(core int) bool {
		st := &states[core]
		if !st.active {
			start, end, ok := cur.Next()
			if !ok {
				return false
			}
			*st = blockState{start: start, end: end, i: start, active: true}
		}
		if !st.updating {
			// Aggregation half of the j-loop iteration (one vertex).
			dst := aggDest{reg: s.bufs[core], rowFor: func(pos, v int) int { return pos - st.start }}
			if train {
				dst = aggDest{reg: s.a[layerIdx], rowFor: func(pos, v int) int { return v }}
			}
			s.aggregateVertex(core, ge, st.i, dst, true)
			st.i++
			if st.i == st.end {
				st.updating = true
				st.i = st.start
			}
			return true
		}
		// Update half, while the a-block is cache resident (one vertex).
		v := s.vertexAt(st.i)
		aReg, aRow := s.bufs[core], st.i-st.start
		if train {
			aReg, aRow = s.a[layerIdx], v
		}
		s.updateVertex(core, layerIdx, v, aReg, aRow, outComp, false)
		st.i++
		if st.i == st.end {
			s.m.Drain(core)
			st.active = false
		}
		return true
	})
}

// forwardLayer replays one layer with the chosen variant.
func (s *sim) forwardLayer(layerIdx int, train bool, variant Variant) {
	if variant.dma() {
		s.dmaFusedLayer(layerIdx, train)
		return
	}
	if variant.fused() {
		s.fusedLayerPass(layerIdx, train, variant)
		return
	}
	l := s.layers[layerIdx]
	ge := aggGeom{g: s.g, col: s.col, factor: s.factor, inputReg: s.h[layerIdx], cols: l.Fin,
		comp: variant.compressed(), slow: variant == VarDistGNN}
	dst := aggDest{reg: s.a[layerIdx], rowFor: func(pos, v int) int { return v }}
	s.aggregationPass(variant, ge, dst)
	s.barrier()
	s.updatePass(layerIdx, train, variant, false)
	s.barrier()
}

// backwardLayer replays one layer of back-propagation: the dz→da GEMMs and
// then the transposed aggregation dh = Âᵀ·da (skipped for layer 0).
func (s *sim) backwardLayer(layerIdx int, variant Variant) {
	s.updatePass(layerIdx, true, variant, true)
	s.barrier()
	if layerIdx == 0 {
		return
	}
	s.needTranspose()
	l := s.layers[layerIdx]
	ge := aggGeom{g: s.gT, col: s.colT, factor: s.factorT, inputReg: s.a[layerIdx], cols: l.Fin, comp: false}
	dst := aggDest{reg: s.grad[layerIdx], rowFor: func(pos, v int) int { return v }}
	if variant.dma() {
		s.dmaAggregationOnly(ge, dst)
	} else {
		av := variant
		if av == VarCompressed || av == VarCombined {
			av = VarBasic // gradients are dense
		}
		s.aggregationPass(av, ge, dst)
	}
	s.barrier()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
