package simgnn

import (
	"fmt"

	"graphite/internal/graph"
)

func validate(g *graph.CSR, layers []Layer) error {
	if g == nil || g.NumVertices() == 0 {
		return fmt.Errorf("simgnn: empty graph")
	}
	if len(layers) == 0 {
		return fmt.Errorf("simgnn: no layers")
	}
	for i, l := range layers {
		if l.Fin <= 0 || l.Fout <= 0 {
			return fmt.Errorf("simgnn: layer %d has non-positive dims %dx%d", i, l.Fin, l.Fout)
		}
	}
	return nil
}

// SimulateAggregation replays a single aggregation phase (no update) with
// the given variant. The graph must already include self loops.
func SimulateAggregation(g *graph.CSR, fin int, variant Variant, opt Options) (Result, error) {
	if err := validate(g, []Layer{{Fin: fin, Fout: fin}}); err != nil {
		return Result{}, err
	}
	s := newSim(g, []Layer{{Fin: fin, Fout: fin}}, opt)
	ge := aggGeom{g: s.g, col: s.col, factor: s.factor, inputReg: s.h[0], cols: fin,
		comp: variant.compressed(), slow: variant == VarDistGNN}
	dst := aggDest{reg: s.a[0], rowFor: func(pos, v int) int { return v }}
	if variant.dma() {
		s.dmaAggregationOnly(ge, dst)
	} else {
		s.aggregationPass(variant, ge, dst)
	}
	s.barrier()
	return s.result(), nil
}

// SimulateInference replays a full forward pass (inference mode: fused
// variants reuse the per-core a buffer).
func SimulateInference(g *graph.CSR, layers []Layer, variant Variant, opt Options) (Result, error) {
	if err := validate(g, layers); err != nil {
		return Result{}, err
	}
	s := newSim(g, layers, opt)
	for k := range layers {
		s.forwardLayer(k, false, variant)
	}
	return s.result(), nil
}

// SimulateTraining replays one training iteration: forward in train mode
// (aggregation matrices written globally) followed by the backward pass.
func SimulateTraining(g *graph.CSR, layers []Layer, variant Variant, opt Options) (Result, error) {
	if err := validate(g, layers); err != nil {
		return Result{}, err
	}
	s := newSim(g, layers, opt)
	for k := range layers {
		s.forwardLayer(k, true, variant)
	}
	for k := len(layers) - 1; k >= 0; k-- {
		s.backwardLayer(k, variant)
	}
	return s.result(), nil
}
