package simgnn

import (
	"graphite/internal/dma"
	"graphite/internal/memsim"
	"graphite/internal/sched"
	"graphite/internal/telemetry"
)

// descBuildCycles is the core-side cost of building and enqueuing one
// aggregation descriptor (fill 64 bytes, one enqueue instruction).
const descBuildCycles = 12

// buildJob translates one vertex's aggregation into a timing job for the
// engine: index/factor line spans from the CSR arrays, one input span per
// neighbour row, gated by the index line that names it (Fig. 10), and the
// output row span.
func (s *sim) buildJob(ge aggGeom, dst aggDest, pos int, ready int64) *dma.Job {
	v := s.vertexAt(pos)
	deg := int64(ge.g.Degree(v))
	off := int64(ge.g.Ptr[v]) * 4
	idxFirst, idxCount := spanLines(ge.col, off, deg*4)
	facFirst, facCount := spanLines(ge.factor, off, deg*4)
	job := &dma.Job{
		Ready: ready,
		Idx:   []dma.Span{{First: idxFirst, Count: idxCount}},
		Elems: ge.cols,
	}
	if facCount > 0 {
		job.Factor = []dma.Span{{First: facFirst, Count: facCount}}
	}
	nbr := ge.g.Neighbors(v)
	job.Inputs = make([]dma.Span, len(nbr))
	job.InputGate = make([]int, len(nbr))
	rowLines := rowStrideBytes(ge.cols) / memsim.LineBytes
	idxLine0 := off / memsim.LineBytes
	for i, u := range nbr {
		first := (ge.inputReg.Base + int64(u)*ge.inputReg.Stride) / memsim.LineBytes
		job.Inputs[i] = dma.Span{First: first, Count: rowLines}
		job.InputGate[i] = int((off+int64(i)*4)/memsim.LineBytes - idxLine0)
	}
	outRow := dst.rowFor(pos, v)
	outFirst, outCount := spanLines(dst.reg, int64(outRow)*dst.reg.Stride, int64(ge.cols)*4)
	job.Output = dma.Span{First: outFirst, Count: outCount}
	return job
}

// batch is one block of vertices whose aggregation was offloaded.
type batch struct {
	start, end int // vertex positions
	lastJob    int // index of the batch's final job in the core's queue
}

// dmaCoreState tracks one core's Algorithm 5 pipeline.
type dmaCoreState struct {
	jobs        []*dma.Job
	nextRun     int
	completions []int64

	prev      *batch // issued, not yet updated (the "other" ping-pong batch)
	built     *batch // freshly issued this iteration
	exhausted bool

	updating bool // mid-way through updating prev, one vertex per step
	updPos   int
}

// batchComplete reports whether (and when) the batch's jobs all finished.
func (st *dmaCoreState) batchComplete(b *batch) (int64, bool) {
	if b.lastJob < len(st.completions) {
		return st.completions[b.lastJob], true
	}
	return 0, false
}

// dmaRun interleaves cores and their engines in global cycle order until
// coreStep reports every core finished. coreStep returns (progress,
// finished): progress=false means the core is blocked waiting for its
// engine.
func (s *sim) dmaRun(states []*dmaCoreState, coreStep func(c int) (bool, bool)) {
	finished := make([]bool, s.opt.Cores)
	remaining := s.opt.Cores
	for remaining > 0 {
		bestCore, bestEng := -1, -1
		for c := 0; c < s.opt.Cores; c++ {
			if !finished[c] {
				if bestCore < 0 || s.m.Cycle(c) < s.m.Cycle(bestCore) {
					bestCore = c
				}
			}
			if states[c].nextRun < len(states[c].jobs) {
				if bestEng < 0 || s.engs[c].Cycle() < s.engs[bestEng].Cycle() {
					bestEng = c
				}
			}
		}
		if bestCore < 0 && bestEng < 0 {
			return
		}
		runEngine := bestEng >= 0 && (bestCore < 0 || s.engs[bestEng].Cycle() < s.m.Cycle(bestCore))
		// A blocked core forces its engine to run regardless of clocks.
		if bestCore >= 0 && !runEngine {
			progress, done := coreStep(bestCore)
			if done {
				finished[bestCore] = true
				remaining--
				continue
			}
			if progress {
				continue
			}
			// Core is blocked on its engine; run that engine if it has
			// work, otherwise any engine.
			if states[bestCore].nextRun < len(states[bestCore].jobs) {
				bestEng = bestCore
			}
			if bestEng < 0 {
				return // defensive: nothing can make progress
			}
		}
		st := states[bestEng]
		done := s.engs[bestEng].Run(st.jobs[st.nextRun])
		st.completions = append(st.completions, done)
		st.nextRun++
	}
}

// dmaFusedLayer replays Algorithm 5: per j-iteration a core builds and
// issues the descriptors for one block (Lines 5-7), waits for the previous
// block's aggregations (Lines 9-10), and updates that block while its
// results sit in L2 (Lines 11-13); trailing updates drain the pipeline
// (Lines 15-20).
func (s *sim) dmaFusedLayer(layerIdx int, train bool) {
	sp := s.opt.Tel.Begin(telemetry.PhaseDMAFlow)
	defer sp.End()
	s.needEngines()
	l := s.layers[layerIdx]
	ge := aggGeom{g: s.g, col: s.col, factor: s.factor, inputReg: s.h[layerIdx], cols: l.Fin}
	n := s.g.NumVertices()
	blockSz := s.opt.BlockSize
	cur := sched.NewCursor(n, blockSz)
	states := make([]*dmaCoreState, s.opt.Cores)
	for c := range states {
		states[c] = &dmaCoreState{}
	}
	dst := func(core int) aggDest {
		if train {
			return aggDest{reg: s.a[layerIdx], rowFor: func(pos, v int) int { return v }}
		}
		return aggDest{reg: s.bufs[core], rowFor: func(pos, v int) int { return pos % blockSz }}
	}
	s.dmaRun(states, func(c int) (bool, bool) {
		st := states[c]
		// Phase 1 of the j-iteration: build and issue the next block.
		if st.built == nil && !st.exhausted && !st.updating {
			if start, end, ok := cur.Next(); ok {
				d := dst(c)
				for pos := start; pos < end; pos++ {
					s.m.Compute(c, descBuildCycles)
					s.m.Write(c, s.descs[c].RowLine(len(st.jobs)%64, 0))
					st.jobs = append(st.jobs, s.buildJob(ge, d, pos, s.m.Cycle(c)))
				}
				st.built = &batch{start: start, end: end, lastJob: len(st.jobs) - 1}
				if st.prev == nil {
					// First iteration on this thread: nothing to update
					// yet (Q'_t == -1 in Algorithm 5).
					st.prev, st.built = st.built, nil
				}
				return true, false
			}
			st.exhausted = true
		}
		// Phase 2: wait for the previous block and update it, one vertex
		// per step so cross-core contention interleaves finely.
		if st.prev != nil {
			if !st.updating {
				completion, ok := st.batchComplete(st.prev)
				if !ok {
					return false, false // blocked on the engine
				}
				// Check the completion records (an L1 access, Alg. 5 WAIT).
				s.m.Read(c, s.descs[c].RowLine(st.prev.lastJob%64, 0))
				s.m.AdvanceTo(c, completion, true)
				st.updating = true
				st.updPos = st.prev.start
				return true, false
			}
			d := dst(c)
			v := s.vertexAt(st.updPos)
			s.updateVertex(c, layerIdx, v, d.reg, d.rowFor(st.updPos, v), false, false)
			st.updPos++
			if st.updPos == st.prev.end {
				s.m.Drain(c)
				st.updating = false
				st.prev, st.built = st.built, nil
				return true, st.prev == nil && st.exhausted
			}
			return true, false
		}
		return true, st.exhausted
	})
	s.barrier()
}

// dmaAggregationOnly offloads a whole aggregation phase to the engines:
// cores only build descriptors and wait for the final completion. Used for
// the aggregation-only rows of Table 5, the Fig. 16 sweep, and the DMA
// variant's backward aggregation.
func (s *sim) dmaAggregationOnly(ge aggGeom, dst aggDest) {
	sp := s.opt.Tel.Begin(telemetry.PhaseDMAFlow)
	defer sp.End()
	s.needEngines()
	n := ge.g.NumVertices()
	cur := sched.NewCursor(n, s.opt.BlockSize)
	states := make([]*dmaCoreState, s.opt.Cores)
	for c := range states {
		states[c] = &dmaCoreState{}
	}
	s.dmaRun(states, func(c int) (bool, bool) {
		st := states[c]
		if !st.exhausted {
			if start, end, ok := cur.Next(); ok {
				for pos := start; pos < end; pos++ {
					s.m.Compute(c, descBuildCycles)
					s.m.Write(c, s.descs[c].RowLine(len(st.jobs)%64, 0))
					st.jobs = append(st.jobs, s.buildJob(ge, dst, pos, s.m.Cycle(c)))
				}
				return true, false
			}
			st.exhausted = true
		}
		// Wait for the engine to drain this core's queue.
		if st.nextRun < len(st.jobs) {
			return false, false
		}
		if nc := len(st.completions); nc > 0 {
			s.m.AdvanceTo(c, st.completions[nc-1], true)
		}
		return true, true
	})
	s.barrier()
}
