package simgnn

import (
	"testing"

	"graphite/internal/graph"
	"graphite/internal/memsim"
)

func simGraph(t testing.TB, p graph.Profile, n int) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateProfile(p, n)
	if err != nil {
		t.Fatal(err)
	}
	return g.AddSelfLoops()
}

func layers2(f int) []Layer { return []Layer{{Fin: f, Fout: f}, {Fin: f, Fout: f}} }

func TestVariantStrings(t *testing.T) {
	for _, v := range []Variant{VarDistGNN, VarBasic, VarCompressed, VarFused, VarCombined, VarFusedDMA} {
		if v.String() == "" {
			t.Fatal("empty variant name")
		}
	}
	if !VarFusedDMA.dma() || !VarFusedDMA.fused() || VarFusedDMA.compressed() {
		t.Fatal("VarFusedDMA flags wrong")
	}
	if !VarCombined.compressed() || !VarCombined.fused() {
		t.Fatal("VarCombined flags wrong")
	}
}

func TestSimulateValidation(t *testing.T) {
	g := simGraph(t, graph.Wikipedia, 100)
	if _, err := SimulateAggregation(nil, 32, VarBasic, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := SimulateInference(g, nil, VarBasic, Options{}); err == nil {
		t.Fatal("no layers accepted")
	}
	if _, err := SimulateInference(g, []Layer{{Fin: 0, Fout: 4}}, VarBasic, Options{}); err == nil {
		t.Fatal("zero dims accepted")
	}
}

func TestAggregationVariantOrdering(t *testing.T) {
	// The paper's core result at aggregation level: basic beats DistGNN
	// (dynamic scheduling + specialised kernels, most visible on the
	// heavy-tailed twitter profile), compression beats basic at 50%
	// sparsity, DMA beats everything (lower cycles are better).
	g := simGraph(t, graph.Twitter, 3000)
	opt := Options{Cores: 4, Machine: scaledMachine(4)}
	cycles := map[Variant]int64{}
	for _, v := range []Variant{VarDistGNN, VarBasic, VarCompressed, VarFusedDMA} {
		r, err := SimulateAggregation(g, 64, v, opt)
		if err != nil {
			t.Fatal(err)
		}
		cycles[v] = r.Cycles
		t.Logf("%v: %d cycles (%.2fx over DistGNN)", v, r.Cycles,
			float64(cycles[VarDistGNN])/float64(r.Cycles))
	}
	// basic-vs-DistGNN is a second-order effect (the paper measures
	// 1.02-1.13x, from JIT kernel quality and OpenMP scheduling detail);
	// our model resolves it only to parity, so assert basic is not
	// materially worse.
	if float64(cycles[VarBasic]) > 1.03*float64(cycles[VarDistGNN]) {
		t.Errorf("basic (%d) materially slower than DistGNN (%d)", cycles[VarBasic], cycles[VarDistGNN])
	}
	if cycles[VarCompressed] >= cycles[VarBasic] {
		t.Errorf("compression@50%% (%d) not faster than basic (%d)", cycles[VarCompressed], cycles[VarBasic])
	}
	// Standalone DMA aggregation trades the cores' private-cache reuse
	// for bypass + higher MLP; the paper's DMA speedups come from the
	// fused offload overlap (§5.3, asserted in
	// TestDMAFusionBeatsSoftwareFusion), so here we only require the
	// engine path to stay in the same ballpark as the software kernel.
	gw := simGraph(t, graph.Wikipedia, 3000)
	sw, err := SimulateAggregation(gw, 64, VarBasic, opt)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := SimulateAggregation(gw, 64, VarFusedDMA, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wikipedia agg-only: basic %d, DMA %d (%.2fx)", sw.Cycles, hw.Cycles, float64(sw.Cycles)/float64(hw.Cycles))
	if float64(hw.Cycles) > 1.4*float64(sw.Cycles) {
		t.Errorf("DMA aggregation (%d) far slower than basic (%d) on wikipedia", hw.Cycles, sw.Cycles)
	}
}

func TestDMAReducesPrivateCacheAccesses(t *testing.T) {
	// Table 5: aggregation-only, the DMA cuts L1-D accesses by >90%.
	g := simGraph(t, graph.Products, 2000)
	opt := Options{Cores: 4}
	sw, err := SimulateAggregation(g, 64, VarBasic, opt)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := SimulateAggregation(g, 64, VarFusedDMA, opt)
	if err != nil {
		t.Fatal(err)
	}
	redL1 := 1 - float64(hw.Stats.L1Accesses)/float64(sw.Stats.L1Accesses)
	t.Logf("L1 access reduction: %.1f%% (sw %d, dma %d)", redL1*100, sw.Stats.L1Accesses, hw.Stats.L1Accesses)
	if redL1 < 0.80 {
		t.Errorf("DMA only cut L1 accesses by %.1f%%, paper reports ≈97-98%%", redL1*100)
	}
	if hw.EngineJobs != int64(g.NumVertices()) {
		t.Errorf("engine ran %d jobs for %d vertices", hw.EngineJobs, g.NumVertices())
	}
}

func TestInferenceVariantsComplete(t *testing.T) {
	g := simGraph(t, graph.Wikipedia, 1000)
	opt := Options{Cores: 2}
	var base int64
	for _, v := range []Variant{VarDistGNN, VarBasic, VarFused, VarCombined, VarFusedDMA} {
		r, err := SimulateInference(g, layers2(32), v, opt)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if r.Cycles <= 0 {
			t.Fatalf("%v: no cycles", v)
		}
		if v == VarDistGNN {
			base = r.Cycles
		}
		t.Logf("%v: %d cycles (%.2fx)", v, r.Cycles, float64(base)/float64(r.Cycles))
	}
}

func TestFusionBeatsUnfusedInference(t *testing.T) {
	g := simGraph(t, graph.Wikipedia, 2000)
	opt := Options{Cores: 4}
	basic, err := SimulateInference(g, layers2(64), VarBasic, opt)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := SimulateInference(g, layers2(64), VarFused, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Cycles >= basic.Cycles {
		t.Errorf("fusion (%d cycles) not faster than basic (%d)", fused.Cycles, basic.Cycles)
	}
	// Fusion also cuts DRAM traffic: the a matrix never round-trips
	// (Fig. 5).
	if fused.Stats.DRAMReadLines >= basic.Stats.DRAMReadLines {
		t.Errorf("fusion DRAM reads %d not below basic %d",
			fused.Stats.DRAMReadLines, basic.Stats.DRAMReadLines)
	}
}

func TestDMAFusionBeatsSoftwareFusion(t *testing.T) {
	g := simGraph(t, graph.Wikipedia, 2000)
	opt := Options{Cores: 4}
	sw, err := SimulateInference(g, layers2(64), VarFused, opt)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := SimulateInference(g, layers2(64), VarFusedDMA, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fusion %d cycles, fusion+DMA %d cycles (%.2fx)", sw.Cycles, hw.Cycles, float64(sw.Cycles)/float64(hw.Cycles))
	if hw.Cycles >= sw.Cycles {
		t.Errorf("fusion+DMA (%d) not faster than fusion (%d)", hw.Cycles, sw.Cycles)
	}
}

func TestTrainingCompletesAndCostsMoreThanInference(t *testing.T) {
	g := simGraph(t, graph.Products, 800)
	opt := Options{Cores: 2}
	inf, err := SimulateInference(g, layers2(32), VarBasic, opt)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SimulateTraining(g, layers2(32), VarBasic, opt)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cycles <= inf.Cycles {
		t.Errorf("training (%d) not more expensive than inference (%d)", tr.Cycles, inf.Cycles)
	}
}

func TestLocalityOrderImprovesSimulatedAggregation(t *testing.T) {
	g := simGraph(t, graph.Products, 3000)
	// Shrink the caches so the feature matrix does not fit: reordering
	// only matters when reuse distances exceed cache reach.
	mc := memsim.DefaultConfig(2)
	mc.L1Bytes = 8 << 10
	mc.L2Bytes = 64 << 10
	mc.L3Bytes = 256 << 10
	opt := Options{Cores: 2, Machine: mc}
	base, err := SimulateAggregation(g, 64, VarBasic, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Use the locality package's order.
	order := localityOrder(g)
	opt.Order = order
	reordered, err := SimulateAggregation(g, 64, VarBasic, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("natural %d cycles, reordered %d cycles", base.Cycles, reordered.Cycles)
	if reordered.Stats.L1Misses+reordered.Stats.L2Misses >= base.Stats.L1Misses+base.Stats.L2Misses {
		t.Errorf("reordering did not reduce private-cache misses (%d vs %d)",
			reordered.Stats.L1Misses+reordered.Stats.L2Misses, base.Stats.L1Misses+base.Stats.L2Misses)
	}
}

func TestDMATrainingRuns(t *testing.T) {
	g := simGraph(t, graph.Wikipedia, 600)
	r, err := SimulateTraining(g, layers2(32), VarFusedDMA, Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.EngineJobs == 0 {
		t.Fatal("DMA training used no engine jobs")
	}
}
