// Package simgnn replays the memory-access patterns of the GNN layer
// implementations on the memsim machine — the hardware-evaluation harness
// standing in for the paper's Sniper runs (§6). It drives the software
// variants (DistGNN baseline, basic, fused, compressed, combined) and the
// DMA-assisted variant (§5.3, Algorithm 5) over synthetic address maps
// derived from real graphs, producing the counters behind Fig. 3, Fig. 12,
// Fig. 16, Table 4 and Table 5.
//
// The replay is timing-only: numerical results are validated against the
// real kernels elsewhere (internal/kernels, internal/dma); here only the
// addresses, dependency structure, and compute densities matter. Two
// deliberate approximations, documented in DESIGN.md: weight-matrix reads
// in the update phase are sampled (one representative panel per vertex)
// because they are cache-resident after warm-up, and compressed-row sizes
// use the expected non-zero count at the configured sparsity instead of
// per-row actuals.
package simgnn

import (
	"fmt"

	"graphite/internal/dma"
	"graphite/internal/graph"
	"graphite/internal/memsim"
	"graphite/internal/telemetry"
)

// Variant selects the simulated implementation.
type Variant int

// Simulated variants (paper labels in §7.1).
const (
	VarDistGNN Variant = iota
	VarBasic
	VarCompressed
	VarFused
	VarCombined
	VarFusedDMA
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VarDistGNN:
		return "DistGNN"
	case VarBasic:
		return "basic"
	case VarCompressed:
		return "compression"
	case VarFused:
		return "fusion"
	case VarCombined:
		return "combined"
	case VarFusedDMA:
		return "fusion+DMA"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

func (v Variant) compressed() bool { return v == VarCompressed || v == VarCombined }
func (v Variant) fused() bool      { return v == VarFused || v == VarCombined || v == VarFusedDMA }
func (v Variant) dma() bool        { return v == VarFusedDMA }

// Layer is one GNN layer's shape.
type Layer struct {
	Fin, Fout int
}

// Options configures a simulation run.
type Options struct {
	// Cores is the simulated core count (default 8).
	Cores int
	// Machine overrides the memsim config (zero value → DefaultConfig).
	Machine memsim.Config
	// Engine overrides the DMA engine config (zero value → default).
	Engine dma.EngineConfig
	// TaskSize is the dynamic-scheduling chunk (default 16 vertices).
	TaskSize int
	// BlockSize is the fused block B (default 32).
	BlockSize int
	// VecElems is the core SIMD throughput in elements/cycle (default 16,
	// one AVX-512 FMA per cycle).
	VecElems int64
	// PrefetchDistance is Algorithm 1's D (default 4; negative disables).
	PrefetchDistance int
	// Order is the vertex processing order (§4.4).
	Order []int32
	// Sparsity is the hidden-feature sparsity assumed by the compressed
	// variants (default 0.5, the paper's conservative setting).
	Sparsity float64
	// Tel receives wall-clock spans for the simulated DMA flow phases
	// (the simulator itself is the slow part worth profiling); nil
	// disables them.
	Tel *telemetry.Sink
}

func (o *Options) fill() {
	if o.Cores <= 0 {
		o.Cores = 8
	}
	if o.Machine.Cores == 0 {
		o.Machine = memsim.DefaultConfig(o.Cores)
	}
	if o.Engine.TrackingEntries == 0 {
		o.Engine = dma.DefaultEngineConfig()
	}
	if o.TaskSize <= 0 {
		o.TaskSize = 16
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 32
	}
	if o.VecElems <= 0 {
		o.VecElems = 16
	}
	switch {
	case o.PrefetchDistance < 0:
		o.PrefetchDistance = 0
	case o.PrefetchDistance == 0:
		o.PrefetchDistance = 4
	}
	if o.Sparsity <= 0 {
		o.Sparsity = 0.5
	}
}

// Result carries the machine counters of one simulated execution.
type Result struct {
	Stats  memsim.Stats
	Cycles int64 // makespan
	// Engine aggregates (DMA variant only).
	EngineLines int64
	EngineJobs  int64
}

// sim is one run's context.
type sim struct {
	opt  Options
	m    *memsim.Machine
	g    *graph.CSR
	gT   *graph.CSR
	engs []*dma.TimedEngine

	col, colT       memsim.AddressRegion // CSR column arrays (byte-addressed)
	factor, factorT memsim.AddressRegion
	h               []memsim.AddressRegion // h^0 .. h^K feature matrices
	a               []memsim.AddressRegion // per layer aggregation matrices
	grad            []memsim.AddressRegion // per boundary gradient matrices
	weights         []memsim.AddressRegion
	bufs            []memsim.AddressRegion // per-core fused inference a-buffers
	descs           []memsim.AddressRegion // per-core descriptor queues (ring)

	layers []Layer
}

func newSim(g *graph.CSR, layers []Layer, opt Options) *sim {
	opt.fill()
	s := &sim{opt: opt, g: g, layers: layers}
	s.m = memsim.NewMachine(opt.Machine)
	am := memsim.NewAddressMap()
	n := g.NumVertices()
	e := g.NumEdges()
	s.col = am.Alloc(1, int64(e)*4)
	s.factor = am.Alloc(1, int64(e)*4)
	dims := make([]int, 0, len(layers)+1)
	dims = append(dims, layers[0].Fin)
	for _, l := range layers {
		dims = append(dims, l.Fout)
	}
	for _, d := range dims {
		s.h = append(s.h, am.Alloc(n, rowStrideBytes(d)))
		s.grad = append(s.grad, am.Alloc(n, rowStrideBytes(d)))
	}
	for _, l := range layers {
		s.a = append(s.a, am.Alloc(n, rowStrideBytes(l.Fin)))
		s.weights = append(s.weights, am.Alloc(l.Fin, rowStrideBytes(l.Fout)))
	}
	for c := 0; c < opt.Cores; c++ {
		s.bufs = append(s.bufs, am.Alloc(opt.BlockSize, rowStrideBytes(maxFin(layers))))
		s.descs = append(s.descs, am.Alloc(64, memsim.LineBytes))
	}
	return s
}

func (s *sim) needTranspose() {
	if s.gT != nil {
		return
	}
	s.gT = s.g.Transpose()
	am := memsim.NewAddressMap()
	am.Alloc(1, 1<<30) // keep transpose regions clear of the forward map
	s.colT = am.Alloc(1, int64(s.gT.NumEdges())*4)
	s.factorT = am.Alloc(1, int64(s.gT.NumEdges())*4)
}

func (s *sim) needEngines() {
	if s.engs != nil {
		return
	}
	for c := 0; c < s.opt.Cores; c++ {
		s.engs = append(s.engs, dma.NewTimedEngine(s.m, c, s.opt.Engine))
	}
}

func rowStrideBytes(cols int) int64 {
	const line = memsim.LineBytes
	b := int64(cols) * 4
	return (b + line - 1) / line * line
}

func maxFin(layers []Layer) int {
	m := 0
	for _, l := range layers {
		if l.Fin > m {
			m = l.Fin
		}
	}
	return m
}

// vertexAt maps a processing position to a vertex id.
func (s *sim) vertexAt(pos int) int {
	if s.opt.Order == nil {
		return pos
	}
	return int(s.opt.Order[pos])
}

// rowReadLines returns how many lines a read of one input-feature row
// costs: the full padded row when dense, or mask+packed lines when the
// variant reads compressed features (§4.3 traffic model).
func (s *sim) rowReadLines(cols int, compressed bool) int64 {
	if !compressed {
		return rowStrideBytes(cols) / memsim.LineBytes
	}
	maskBytes := int64((cols+63)/64) * 8
	nnz := int64(float64(cols) * (1 - s.opt.Sparsity))
	valBytes := nnz * 4
	lines := (maskBytes + memsim.LineBytes - 1) / memsim.LineBytes
	lines += (valBytes + memsim.LineBytes - 1) / memsim.LineBytes
	full := rowStrideBytes(cols) / memsim.LineBytes
	if lines > full+1 {
		lines = full + 1
	}
	return lines
}

// aggComputeCycles is the reduction cost of one gathered row. The slow
// (baseline) kernel pays 25% extra: it is not width-specialised — the
// paper's JIT kernels "use registers more efficiently" and "avoid overhead
// such as unnecessary boundary checking" (§4.1).
func (s *sim) aggComputeCycles(cols int, compressed, slowKernel bool) int64 {
	if !compressed {
		c := int64(cols)/s.opt.VecElems + 1
		if slowKernel {
			c += c / 4
		}
		return c
	}
	nnz := int64(float64(cols) * (1 - s.opt.Sparsity))
	// Expand-and-accumulate runs at roughly half the dense rate but only
	// touches the non-zeros.
	return nnz/(s.opt.VecElems/2) + 2
}

// barrier advances every core to the slowest core's cycle (phase sync).
func (s *sim) barrier() {
	var maxC int64
	for c := 0; c < s.opt.Cores; c++ {
		if cy := s.m.Cycle(c); cy > maxC {
			maxC = cy
		}
	}
	for c := 0; c < s.opt.Cores; c++ {
		s.m.AdvanceTo(c, maxC, false)
	}
}

func (s *sim) result() Result {
	st := s.m.Stats()
	r := Result{Stats: st, Cycles: st.MaxCycles}
	for _, e := range s.engs {
		r.EngineLines += e.LinesFetched
		r.EngineJobs += e.JobsDone
	}
	return r
}
