package simgnn

import (
	"graphite/internal/graph"
	"graphite/internal/locality"
	"graphite/internal/memsim"
)

// localityOrder is a test helper bridging to the locality package.
func localityOrder(g *graph.CSR) []int32 {
	return locality.Reorder(g)
}

// scaledMachine shrinks the caches so test-sized graphs dwarf them the way
// the paper's graphs dwarf a real 38.5MB L3.
func scaledMachine(cores int) memsim.Config {
	mc := memsim.DefaultConfig(cores)
	mc.L1Bytes = 8 << 10
	mc.L2Bytes = 128 << 10
	mc.L3Bytes = cores * 176 << 10
	return mc
}
