package tensor

import (
	"fmt"
	"math/rand"

	"graphite/internal/sched"
)

// AddBiasReLURange applies y[i,:] = ReLU(y[i,:] + bias) to rows
// [start, end). This is the paper's update activation (Table 2:
// ReLU(W·a + b)) and, per §2.2, the source of 40-90% feature sparsity in
// hidden layers.
func AddBiasReLURange(y *Matrix, bias []float32, start, end int) {
	if len(bias) != y.Cols {
		panic(fmt.Sprintf("tensor: bias length %d, want %d", len(bias), y.Cols))
	}
	for i := start; i < end; i++ {
		row := y.Row(i)
		for j := range row {
			v := row[j] + bias[j]
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
	}
}

// AddBiasReLU applies AddBiasReLURange over the whole matrix in parallel.
func AddBiasReLU(y *Matrix, bias []float32, threads int) {
	sched.Dynamic(y.Rows, 64, threads, func(s, e int) { AddBiasReLURange(y, bias, s, e) })
}

// AddBiasRange applies y[i,:] += bias without an activation (output layer).
func AddBiasRange(y *Matrix, bias []float32, start, end int) {
	if len(bias) != y.Cols {
		panic(fmt.Sprintf("tensor: bias length %d, want %d", len(bias), y.Cols))
	}
	for i := start; i < end; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// ReLUBackward computes dx = dy ⊙ (out > 0), where out is the ReLU output
// saved in the forward pass.
func ReLUBackward(dx, dy, out *Matrix, threads int) {
	if dx.Rows != dy.Rows || dx.Cols != dy.Cols || out.Rows != dy.Rows || out.Cols != dy.Cols {
		panic("tensor: ReLUBackward shape mismatch")
	}
	sched.Dynamic(dy.Rows, 64, threads, func(s, e int) {
		for i := s; i < e; i++ {
			rdx, rdy, ro := dx.Row(i), dy.Row(i), out.Row(i)
			for j := range rdx {
				if ro[j] > 0 {
					rdx[j] = rdy[j]
				} else {
					rdx[j] = 0
				}
			}
		}
	})
}

// Dropout zeroes each element with probability p and scales survivors by
// 1/(1-p) (inverted dropout), recording the kept positions in mask so the
// backward pass can replay it. The paper notes dropout (often 50%) pushes
// hidden-feature sparsity above 80% (§2.2).
func Dropout(y *Matrix, mask []bool, p float64, rng *rand.Rand) {
	if p <= 0 {
		for i := range mask {
			mask[i] = true
		}
		return
	}
	if len(mask) != y.Rows*y.Cols {
		panic(fmt.Sprintf("tensor: dropout mask length %d, want %d", len(mask), y.Rows*y.Cols))
	}
	scale := float32(1 / (1 - p))
	idx := 0
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			if rng.Float64() < p {
				row[j] = 0
				mask[idx] = false
			} else {
				row[j] *= scale
				mask[idx] = true
			}
			idx++
		}
	}
}

// DropoutBackward applies the saved mask and scale to the gradient.
func DropoutBackward(dy *Matrix, mask []bool, p float64) {
	if p <= 0 {
		return
	}
	scale := float32(1 / (1 - p))
	idx := 0
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j := range row {
			if mask[idx] {
				row[j] *= scale
			} else {
				row[j] = 0
			}
			idx++
		}
	}
}

// SumRows accumulates the column sums of m into out (length m.Cols); used
// for the bias gradient db = Σ_i dY[i,:].
func SumRows(out []float32, m *Matrix) {
	if len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: SumRows output length %d, want %d", len(out), m.Cols))
	}
	clear(out)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
}

// Scale multiplies every element of m by f.
func Scale(m *Matrix, f float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= f
		}
	}
}

// AXPY computes y += alpha*x over vectors.
func AXPY(y, x []float32, alpha float32) {
	if len(y) != len(x) {
		panic(fmt.Sprintf("tensor: AXPY length mismatch %d vs %d", len(y), len(x)))
	}
	for i := range y {
		y[i] += alpha * x[i]
	}
}
