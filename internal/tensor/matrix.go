// Package tensor provides the dense-linear-algebra substrate: float32
// matrices with cache-line-padded rows, a blocked parallel GEMM standing in
// for MKL (and a small-block path standing in for libxsmm, used by the fused
// kernels), and the elementwise operators GNN layers need (ReLU, dropout,
// bias).
//
// Feature matrices keep a constant row stride padded to a 64-byte cache
// line, exactly like the paper's layout (Fig. 9a: each feature vector is
// padded so data blocks align to cache-line boundaries, and the compressed
// representation reuses the same fixed-size storage, §4.3).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// LineFloats is the number of float32 elements per 64-byte cache line. Row
// strides are rounded up to a multiple of this.
const LineFloats = 16

// Matrix is a row-major float32 matrix with padded rows. Rows*Stride
// elements are allocated; elements beyond Cols in each row are padding and
// always zero.
type Matrix struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float32
}

// PadStride rounds cols up to a whole number of cache lines.
func PadStride(cols int) int {
	return (cols + LineFloats - 1) / LineFloats * LineFloats
}

// NewMatrix allocates a zeroed rows×cols matrix with padded stride.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	stride := PadStride(cols)
	return &Matrix{Rows: rows, Cols: cols, Stride: stride, Data: make([]float32, rows*stride)}
}

// Row returns row i truncated to Cols. The slice aliases the matrix.
func (m *Matrix) Row(i int) []float32 {
	off := i * m.Stride
	return m.Data[off : off+m.Cols : off+m.Stride]
}

// RowPadded returns row i including its padding, e.g. for whole-line
// traffic accounting.
func (m *Matrix) RowPadded(i int) []float32 {
	off := i * m.Stride
	return m.Data[off : off+m.Stride]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Stride+j] = v }

// Zero clears all elements (including padding).
func (m *Matrix) Zero() {
	clear(m.Data)
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{Rows: m.Rows, Cols: m.Cols, Stride: m.Stride, Data: make([]float32, len(m.Data))}
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: copy shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	if m.Stride == src.Stride {
		copy(m.Data, src.Data)
		return
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// FillRandom fills the matrix with uniform values in [-scale, scale).
func (m *Matrix) FillRandom(rng *rand.Rand, scale float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = (rng.Float32()*2 - 1) * scale
		}
	}
}

// FillSparse fills the matrix with uniform values in (0, scale] and then
// zeroes each element independently with the given probability. The feature
// compression evaluation (Fig. 14) "randomly set[s] the features to zeros
// with predefined rates" (§6); this is that workload generator.
func (m *Matrix) FillSparse(rng *rand.Rand, scale float32, sparsity float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			if rng.Float64() < sparsity {
				row[j] = 0
			} else {
				row[j] = rng.Float32()*scale + 1e-6
			}
		}
	}
}

// Sparsity returns the fraction of zero elements (ignoring padding).
func (m *Matrix) Sparsity() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	zeros := 0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if v == 0 {
				zeros++
			}
		}
	}
	return float64(zeros) / float64(m.Rows*m.Cols)
}

// MaxAbsDiff returns the max |a-b| over all elements; shapes must match.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: diff shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var maxd float64
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			d := math.Abs(float64(ra[j]) - float64(rb[j]))
			if d > maxd {
				maxd = d
			}
		}
	}
	return maxd
}

// HasNaN reports whether any element is NaN or Inf, for failure-injection
// checks in training.
func (m *Matrix) HasNaN() bool {
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return true
			}
		}
	}
	return false
}

// Bytes returns the allocation footprint of the matrix payload in bytes,
// including row padding (what the memory-traffic model charges per full-row
// read/write).
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 4 }
