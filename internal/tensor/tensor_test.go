package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveMatMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for l := 0; l < a.Cols; l++ {
				sum += float64(a.At(i, l)) * float64(b.At(l, j))
			}
			c.Set(i, j, float32(sum))
		}
	}
	return c
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	m.FillRandom(rng, 1)
	return m
}

func TestMatrixLayout(t *testing.T) {
	m := NewMatrix(3, 10)
	if m.Stride != 16 {
		t.Fatalf("stride %d, want 16 (one cache line)", m.Stride)
	}
	if len(m.Row(1)) != 10 || len(m.RowPadded(1)) != 16 {
		t.Fatal("row slicing wrong")
	}
	m.Set(2, 9, 5)
	if m.At(2, 9) != 5 {
		t.Fatal("At/Set broken")
	}
	if m.Bytes() != 3*16*4 {
		t.Fatalf("Bytes %d, want %d", m.Bytes(), 3*16*4)
	}
	m33 := NewMatrix(2, 33)
	if m33.Stride != 48 {
		t.Fatalf("stride for 33 cols is %d, want 48", m33.Stride)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ m, k, n, threads int }{
		{1, 1, 1, 1}, {3, 5, 7, 1}, {17, 33, 9, 2}, {64, 100, 32, 4}, {2, 256, 2, 3},
	} {
		a := randomMatrix(rng, tc.m, tc.k)
		b := randomMatrix(rng, tc.k, tc.n)
		c := NewMatrix(tc.m, tc.n)
		MatMul(c, a, b, tc.threads)
		want := naiveMatMul(a, b)
		if d := MaxAbsDiff(c, want); d > 1e-4 {
			t.Fatalf("%dx%dx%d threads=%d: max diff %g", tc.m, tc.k, tc.n, tc.threads, d)
		}
	}
}

func TestMatMulSkipsZeroRowsCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(8, 16)
	a.FillSparse(rng, 1, 0.7) // exercise the av==0 skip path
	b := randomMatrix(rng, 16, 12)
	c := NewMatrix(8, 12)
	MatMul(c, a, b, 2)
	if d := MaxAbsDiff(c, naiveMatMul(a, b)); d > 1e-4 {
		t.Fatalf("sparse A: max diff %g", d)
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 9, 13)
	b := randomMatrix(rng, 7, 13) // Bᵀ is 13x7
	c := NewMatrix(9, 7)
	MatMulTransB(c, a, b, 2)
	bt := NewMatrix(13, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 13; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	if d := MaxAbsDiff(c, naiveMatMul(a, bt)); d > 1e-4 {
		t.Fatalf("max diff %g", d)
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 13, 9) // Aᵀ is 9x13
	b := randomMatrix(rng, 13, 5)
	c := NewMatrix(9, 5)
	MatMulTransA(c, a, b, 2)
	at := NewMatrix(9, 13)
	for i := 0; i < 13; i++ {
		for j := 0; j < 9; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	if d := MaxAbsDiff(c, naiveMatMul(at, b)); d > 1e-4 {
		t.Fatalf("max diff %g", d)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(4, 2), 1)
}

func TestAddBiasReLU(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, -2)
	m.Set(0, 1, 0.5)
	m.Set(1, 2, -0.1)
	bias := []float32{1, -1, 0}
	AddBiasReLU(m, bias, 2)
	want := [][]float32{{0, 0, 0}, {1, 0, 0}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("(%d,%d)=%g want %g", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestReLUBackward(t *testing.T) {
	out := NewMatrix(1, 4)
	out.Set(0, 0, 1)
	out.Set(0, 2, 3)
	dy := NewMatrix(1, 4)
	for j := 0; j < 4; j++ {
		dy.Set(0, j, float32(j+1))
	}
	dx := NewMatrix(1, 4)
	ReLUBackward(dx, dy, out, 1)
	want := []float32{1, 0, 3, 0}
	for j, w := range want {
		if dx.At(0, j) != w {
			t.Fatalf("dx[%d]=%g want %g", j, dx.At(0, j), w)
		}
	}
}

func TestDropoutMaskAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMatrix(20, 50)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 1
		}
	}
	mask := make([]bool, m.Rows*m.Cols)
	Dropout(m, mask, 0.5, rng)
	zeros, kept := 0, 0
	idx := 0
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			switch {
			case row[j] == 0:
				zeros++
				if mask[idx] {
					t.Fatal("mask says kept but value is zero")
				}
			case row[j] == 2: // 1/(1-0.5)
				kept++
				if !mask[idx] {
					t.Fatal("mask says dropped but value survived")
				}
			default:
				t.Fatalf("unexpected value %g", row[j])
			}
			idx++
		}
	}
	frac := float64(zeros) / float64(zeros+kept)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("dropout rate %.2f, want ≈0.5", frac)
	}
	// Backward replays the mask.
	dy := NewMatrix(20, 50)
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j := range row {
			row[j] = 1
		}
	}
	DropoutBackward(dy, mask, 0.5)
	idx = 0
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j := range row {
			want := float32(0)
			if mask[idx] {
				want = 2
			}
			if row[j] != want {
				t.Fatalf("backward (%d,%d)=%g want %g", i, j, row[j], want)
			}
			idx++
		}
	}
}

func TestDropoutZeroPIsIdentity(t *testing.T) {
	m := NewMatrix(2, 3)
	m.FillRandom(rand.New(rand.NewSource(6)), 1)
	orig := m.Clone()
	mask := make([]bool, 6)
	Dropout(m, mask, 0, nil)
	if MaxAbsDiff(m, orig) != 0 {
		t.Fatal("p=0 dropout changed values")
	}
	for _, k := range mask {
		if !k {
			t.Fatal("p=0 dropout dropped an element")
		}
	}
}

func TestFillSparseHitsTargetSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(100, 64)
	for _, s := range []float64{0.1, 0.5, 0.9} {
		m.FillSparse(rng, 1, s)
		got := m.Sparsity()
		if math.Abs(got-s) > 0.05 {
			t.Fatalf("sparsity %.3f, want ≈%.1f", got, s)
		}
	}
}

func TestSumRows(t *testing.T) {
	m := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		m.Set(i, 0, float32(i))
		m.Set(i, 1, 1)
	}
	out := make([]float32, 2)
	SumRows(out, m)
	if out[0] != 3 || out[1] != 3 {
		t.Fatalf("SumRows %v, want [3 3]", out)
	}
}

func TestHasNaN(t *testing.T) {
	m := NewMatrix(2, 2)
	if m.HasNaN() {
		t.Fatal("zero matrix reports NaN")
	}
	m.Set(1, 1, float32(math.Inf(1)))
	if !m.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestMatMulPropertyLinearity(t *testing.T) {
	// (A1+A2)·B == A1·B + A2·B
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := r.Intn(10)+1, r.Intn(10)+1, r.Intn(10)+1
		a1 := randomMatrix(rng, m, k)
		a2 := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		sum := NewMatrix(m, k)
		for i := 0; i < m; i++ {
			r1, r2, rs := a1.Row(i), a2.Row(i), sum.Row(i)
			for j := range rs {
				rs[j] = r1[j] + r2[j]
			}
		}
		c1 := NewMatrix(m, n)
		c2 := NewMatrix(m, n)
		cs := NewMatrix(m, n)
		MatMul(c1, a1, b, 1)
		MatMul(c2, a2, b, 1)
		MatMul(cs, sum, b, 2)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(float64(cs.At(i, j)-(c1.At(i, j)+c2.At(i, j)))) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
