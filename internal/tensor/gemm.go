package tensor

import (
	"fmt"

	"graphite/internal/sched"
	"graphite/internal/telemetry"
)

// gemmRowChunk is the number of output rows a parallel GEMM task claims at
// a time. Chosen so a task's A-panel and C-panel stay cache resident.
const gemmRowChunk = 32

// MatMul computes C = A·B for A (m×k) and B (k×n), parallelised over row
// chunks with dynamic scheduling. It stands in for MKL's SGEMM, which the
// baseline and basic implementations use for the update phase (§6).
func MatMul(c, a, b *Matrix, threads int) { MatMulTel(c, a, b, threads, nil) }

// MatMulTel is MatMul with telemetry: the product's dense-equivalent FLOPs
// (2·m·k·n) are credited to the GEMM counter and the row chunks feed the
// scheduler's per-worker accounting.
func MatMulTel(c, a, b *Matrix, threads int, tel *telemetry.Sink) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch: C %dx%d = A %dx%d · B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	tel.Add(telemetry.CtrGEMMFLOPs, GEMMFLOPs(a.Rows, a.Cols, b.Cols))
	sched.DynamicTel(a.Rows, gemmRowChunk, threads, tel, func(_, start, end int) {
		MatMulRange(c, a, b, start, end)
	})
}

// GEMMFLOPs returns the dense-equivalent operation count of an m×k · k×n
// product (one multiply plus one add per inner-loop step).
func GEMMFLOPs(m, k, n int) int64 { return 2 * int64(m) * int64(k) * int64(n) }

// MatMulRange computes rows [rowStart, rowEnd) of C = A·B serially. The
// fused kernels call this per vertex block — it is the libxsmm-style
// small-matrix path (§6: "With layer fusion, we use libxsmm, which is
// optimized for small matrix multiplications").
func MatMulRange(c, a, b *Matrix, rowStart, rowEnd int) {
	n := b.Cols
	k := a.Cols
	for i := rowStart; i < rowEnd; i++ {
		ci := c.Data[i*c.Stride : i*c.Stride+n]
		clear(ci)
		ai := a.Data[i*a.Stride : i*a.Stride+k]
		// ikj order: stream through B rows, accumulate into the C row.
		// The inner loop is a saxpy the compiler can keep in registers.
		for l := 0; l < k; l++ {
			av := ai[l]
			if av == 0 {
				continue
			}
			bl := b.Data[l*b.Stride : l*b.Stride+n]
			j := 0
			for ; j+4 <= n; j += 4 {
				ci[j] += av * bl[j]
				ci[j+1] += av * bl[j+1]
				ci[j+2] += av * bl[j+2]
				ci[j+3] += av * bl[j+3]
			}
			for ; j < n; j++ {
				ci[j] += av * bl[j]
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ for A (m×k) and B (n×k). The backward pass
// uses this for dX = dY·Wᵀ.
func MatMulTransB(c, a, b *Matrix, threads int) { MatMulTransBTel(c, a, b, threads, nil) }

// MatMulTransBTel is MatMulTransB with telemetry (see MatMulTel).
func MatMulTransBTel(c, a, b *Matrix, threads int, tel *telemetry.Sink) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch: C %dx%d = A %dx%d · Bᵀ (%dx%d)ᵀ",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	tel.Add(telemetry.CtrGEMMFLOPs, GEMMFLOPs(a.Rows, a.Cols, b.Rows))
	k := a.Cols
	sched.DynamicTel(a.Rows, gemmRowChunk, threads, tel, func(_, start, end int) {
		for i := start; i < end; i++ {
			ai := a.Data[i*a.Stride : i*a.Stride+k]
			ci := c.Row(i)
			for j := range ci {
				bj := b.Data[j*b.Stride : j*b.Stride+k]
				var sum float32
				l := 0
				for ; l+4 <= k; l += 4 {
					sum += ai[l]*bj[l] + ai[l+1]*bj[l+1] + ai[l+2]*bj[l+2] + ai[l+3]*bj[l+3]
				}
				for ; l < k; l++ {
					sum += ai[l] * bj[l]
				}
				ci[j] = sum
			}
		}
	})
}

// MatMulTransA computes C = Aᵀ·B for A (k×m) and B (k×n). The backward pass
// uses this for dW = Xᵀ·dY. Parallelised over columns of Aᵀ (rows of C) so
// no two tasks write the same C row.
func MatMulTransA(c, a, b *Matrix, threads int) { MatMulTransATel(c, a, b, threads, nil) }

// MatMulTransATel is MatMulTransA with telemetry (see MatMulTel).
func MatMulTransATel(c, a, b *Matrix, threads int, tel *telemetry.Sink) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch: C %dx%d = Aᵀ (%dx%d)ᵀ · B %dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	tel.Add(telemetry.CtrGEMMFLOPs, GEMMFLOPs(a.Cols, a.Rows, b.Cols))
	n := b.Cols
	sched.DynamicTel(c.Rows, 8, threads, tel, func(_, start, end int) {
		for i := start; i < end; i++ {
			ci := c.Data[i*c.Stride : i*c.Stride+n]
			clear(ci)
			for l := 0; l < a.Rows; l++ {
				av := a.At(l, i)
				if av == 0 {
					continue
				}
				bl := b.Data[l*b.Stride : l*b.Stride+n]
				for j := 0; j < n; j++ {
					ci[j] += av * bl[j]
				}
			}
		}
	})
}
