package perf

import (
	"strings"
	"testing"

	"graphite/internal/graph"
	"graphite/internal/memsim"
	"graphite/internal/simgnn"
)

func TestFromStatsZero(t *testing.T) {
	td := FromStats(memsim.Stats{})
	if td.Retiring != 0 || td.MemoryBound != 0 {
		t.Fatalf("zero stats gave %+v", td)
	}
}

func TestFromStatsFractionsSumToOne(t *testing.T) {
	s := memsim.Stats{
		Cores: 4, TotalCycles: 1000, ComputeCycles: 200, L1Accesses: 100,
		FillFullStall: 400, DrainStall: 100,
		L1Misses: 50, L2Misses: 40, L3Misses: 30,
		DRAMQueueDelay: 5000, DRAMReadLines: 30,
	}
	td := FromStats(s)
	sum := td.Retiring + td.FrontendBound + td.CoreBound + td.MemoryBound
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %g: %+v", sum, td)
	}
	memSum := td.L2Bound + td.L3Bound + td.DRAMBandwidth + td.DRAMLatency
	if memSum < td.MemoryBound-1e-9 || memSum > td.MemoryBound+1e-9 {
		t.Fatalf("memory attribution %g != memory bound %g", memSum, td.MemoryBound)
	}
	if td.FillBufferFull <= 0 || td.FillBufferFull > 1 {
		t.Fatalf("fill buffer full %g", td.FillBufferFull)
	}
}

func TestClampWhenOverCounted(t *testing.T) {
	s := memsim.Stats{Cores: 1, TotalCycles: 100, ComputeCycles: 90, L1Accesses: 50, FillFullStall: 40}
	td := FromStats(s)
	if td.Retiring+td.MemoryBound > 1.001 {
		t.Fatalf("not clamped: %+v", td)
	}
	if td.Retiring < 0 {
		t.Fatal("negative retiring")
	}
}

// TestBaselineIsMemoryBound reproduces the Fig. 3 qualitative claim on the
// simulated baseline: a small retiring share and a dominant memory-bound
// share during full-batch training.
func TestBaselineIsMemoryBound(t *testing.T) {
	g, err := graph.GenerateProfile(graph.Products, 2500)
	if err != nil {
		t.Fatal(err)
	}
	g = g.AddSelfLoops()
	// Scale the caches down with the graph so the footprint dwarfs them,
	// as on the paper's machine (see bench.simOptions).
	mc := memsim.DefaultConfig(4)
	mc.L1Bytes = 8 << 10
	mc.L2Bytes = 128 << 10
	mc.L3Bytes = 4 * 176 << 10
	r, err := simgnn.SimulateTraining(g, []simgnn.Layer{{Fin: 64, Fout: 64}, {Fin: 64, Fout: 64}},
		simgnn.VarDistGNN, simgnn.Options{Cores: 4, Machine: mc})
	if err != nil {
		t.Fatal(err)
	}
	td := FromStats(r.Stats)
	t.Logf("baseline training: %s", td)
	if td.MemoryBound < 0.3 {
		t.Errorf("baseline memory-bound %.2f, expected the dominant share (paper: 0.62)", td.MemoryBound)
	}
	if td.Retiring > 0.5 {
		t.Errorf("baseline retiring %.2f, expected small (paper: 0.10)", td.Retiring)
	}
}

func TestTableFormatting(t *testing.T) {
	out := Table([]string{"DistGNN", "combined"}, []TopDown{{Retiring: 0.1, MemoryBound: 0.6}, {Retiring: 0.3}})
	if !strings.Contains(out, "DistGNN") || !strings.Contains(out, "combined") {
		t.Fatal("labels missing")
	}
	if !strings.Contains(out, "60.0%") {
		t.Fatalf("values missing:\n%s", out)
	}
	if TopDown.String(TopDown{Retiring: 0.5}) == "" {
		t.Fatal("String empty")
	}
}
