// Package perf maps memsim machine counters onto the paper's top-down
// pipeline-slot metrics — the stand-in for the Intel VTune profiles behind
// Fig. 3 and Table 4.
//
// The model: a core's cycles divide into useful issue (compute cycles plus
// one slot per cache access), memory stalls (fill-buffer-full waits plus
// dependency drains), and a small front-end/core-bound remainder. The
// memory-bound share is further attributed to the levels that serviced the
// misses, weighted by their latencies, with the DRAM share split into a
// bandwidth part (observed queuing delay) and a latency part (the fixed
// service latency).
package perf

import (
	"fmt"
	"strings"

	"graphite/internal/memsim"
)

// TopDown is the Table 4 row for one execution. The JSON tags are part of
// the benchfmt report schema (internal/benchfmt); renaming them is a schema
// change and breaks that package's pinned fixture.
type TopDown struct {
	Retiring      float64 `json:"retiring"` // fraction of pipeline slots doing useful work
	FrontendBound float64 `json:"frontend_bound"`
	CoreBound     float64 `json:"core_bound"`
	MemoryBound   float64 `json:"memory_bound"`

	// Attribution of the memory-bound share (fractions of all cycles).
	L2Bound       float64 `json:"l2_bound"`
	L3Bound       float64 `json:"l3_bound"`
	DRAMBandwidth float64 `json:"dram_bandwidth"`
	DRAMLatency   float64 `json:"dram_latency"`

	// FillBufferFull estimates how often the L1D fill buffers were fully
	// occupied (§3, Table 4's last column).
	FillBufferFull float64 `json:"fill_buffer_full"`
}

// frontendShare is the fixed small front-end-bound fraction observed on
// these workloads (§3 measures 3.3%).
const frontendShare = 0.033

// FromStats derives the top-down breakdown from machine counters.
func FromStats(s memsim.Stats) TopDown {
	total := float64(s.TotalCycles)
	if total == 0 {
		return TopDown{}
	}
	useful := float64(s.ComputeCycles + s.L1Accesses) // 1 issue slot per access
	memStall := float64(s.MemStall())
	if useful+memStall > total {
		// Clamp: overlap accounting can slightly overcount useful slots.
		useful = total - memStall
		if useful < 0 {
			useful = 0
		}
	}
	td := TopDown{
		Retiring:    useful / total,
		MemoryBound: memStall / total,
	}
	rest := 1 - td.Retiring - td.MemoryBound
	if rest < 0 {
		rest = 0
	}
	td.FrontendBound = frontendShare
	if td.FrontendBound > rest {
		td.FrontendBound = rest
	}
	td.CoreBound = rest - td.FrontendBound

	// Attribute the memory-bound share across levels by latency-weighted
	// service counts.
	cfg := memsim.DefaultConfig(s.Cores)
	l2 := float64(s.L1Misses-s.L2Misses) * float64(cfg.L2Lat)
	if l2 < 0 {
		l2 = 0
	}
	// DMA-engine fetches reach L3 without an L2 miss, so this difference
	// can go negative; clamp.
	l3 := float64(s.L2Misses-s.L3Misses) * float64(cfg.L3Lat)
	if l3 < 0 {
		l3 = 0
	}
	bw := float64(s.DRAMQueueDelay)
	lat := float64(s.DRAMReadLines) * float64(cfg.DRAMLat)
	sum := l2 + l3 + bw + lat
	if sum > 0 {
		td.L2Bound = td.MemoryBound * l2 / sum
		td.L3Bound = td.MemoryBound * l3 / sum
		td.DRAMBandwidth = td.MemoryBound * bw / sum
		td.DRAMLatency = td.MemoryBound * lat / sum
	}
	// The fill buffers are full whenever a miss had to wait for an entry;
	// weight by the stall share of non-idle time.
	td.FillBufferFull = float64(s.FillFullStall) / total * 2.5
	if td.FillBufferFull > 1 {
		td.FillBufferFull = 1
	}
	return td
}

// String renders the row the way Table 4 prints it.
func (t TopDown) String() string {
	return fmt.Sprintf("retiring %.1f%%  mem-bound %.1f%% (L2 %.1f%%, L3 %.1f%%, BW %.1f%%, lat %.1f%%)  fill-buf-full %.0f%%",
		t.Retiring*100, t.MemoryBound*100, t.L2Bound*100, t.L3Bound*100,
		t.DRAMBandwidth*100, t.DRAMLatency*100, t.FillBufferFull*100)
}

// Table formats rows with labels as an aligned text table.
func Table(labels []string, rows []TopDown) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %9s %9s %6s %6s %8s %8s %9s\n",
		"implementation", "retiring", "membound", "L2", "L3", "DRAM-bw", "DRAM-lat", "fill-full")
	for i, r := range rows {
		fmt.Fprintf(&b, "%-24s %8.1f%% %8.1f%% %5.1f%% %5.1f%% %7.1f%% %7.1f%% %8.0f%%\n",
			labels[i], r.Retiring*100, r.MemoryBound*100, r.L2Bound*100, r.L3Bound*100,
			r.DRAMBandwidth*100, r.DRAMLatency*100, r.FillBufferFull*100)
	}
	return b.String()
}
