// Package benchfmt defines the versioned, machine-readable benchmark report
// format written by cmd/graphite-bench (-json) and consumed by its -baseline
// regression gate.
//
// The paper's argument is quantitative — Table 4 top-down slots, the
// Fig. 11/12 speedup bars — and this package makes the reproduction's own
// measurements first-class artifacts of the same kind: every report carries
// an environment fingerprint (so numbers are never compared across
// incomparable machines silently), per-experiment repeated samples with
// summary statistics, per-phase span totals and latency quantiles from the
// telemetry layer, kernel counter snapshots, and — for simulator
// experiments — the perf.TopDown pipeline-slot breakdown.
//
// The schema is versioned: Version bumps whenever a field changes meaning
// or shape, and Decode rejects files from other versions rather than
// misreading them. A pinned fixture under testdata/ turns accidental schema
// drift into a build break.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"

	"graphite/internal/perf"
)

// Version is the current schema version, stored in File.Version.
const Version = 1

// File is one benchmark report: the top-level JSON document.
type File struct {
	// Version is the schema version (always Version for files this
	// package writes).
	Version int `json:"version"`
	// Env fingerprints the machine and toolchain that produced the run.
	Env Env `json:"env"`
	// Experiments holds one entry per experiment id run.
	Experiments []Experiment `json:"experiments"`
}

// Env is the environment fingerprint. Two files with materially different
// fingerprints (different GOARCH, CPU count, ...) measure different things;
// Compare surfaces the mismatch in its table header rather than refusing,
// since cross-machine comparisons are sometimes exactly the point.
type Env struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	GitRevision string `json:"git_revision,omitempty"`
}

// CaptureEnv fingerprints the current process. The git revision is passed
// in by the caller (the binary cannot know it): cmd/graphite-bench takes it
// from -rev, CI from its commit variable. Empty is allowed and omitted.
func CaptureEnv(gitRevision string) Env {
	return Env{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GitRevision: gitRevision,
	}
}

// Summary renders the fingerprint as one line for table headers.
func (e Env) Summary() string {
	rev := e.GitRevision
	if rev == "" {
		rev = "unknown-rev"
	}
	return fmt.Sprintf("%s %s/%s cpus=%d gomaxprocs=%d %s",
		e.GoVersion, e.GOOS, e.GOARCH, e.NumCPU, e.GOMAXPROCS, rev)
}

// Experiment is one experiment's structured result.
type Experiment struct {
	// ID is the bench experiment id ("fig2", "table4", ...).
	ID string `json:"id"`
	// Title is the experiment's human description.
	Title string `json:"title,omitempty"`
	// Samples holds the experiment's named repeated measurements.
	Samples []Sample `json:"samples,omitempty"`
	// PhaseTotalsNS sums telemetry span durations by phase name
	// (telemetry.Sink.PhaseTotals), in nanoseconds.
	PhaseTotalsNS map[string]int64 `json:"phase_totals_ns,omitempty"`
	// Counters is the kernel counter snapshot (telemetry metrics keys).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Latencies summarizes the per-phase latency histograms.
	Latencies []Latency `json:"latencies,omitempty"`
	// SpansDropped counts spans the telemetry ring evicted during the
	// experiment; non-zero means PhaseTotalsNS covers a truncated window.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
	// TopDown is the pipeline-slot breakdown for simulator experiments
	// (the baseline/first-simulated configuration), absent for wall-clock
	// experiments.
	TopDown *perf.TopDown `json:"top_down,omitempty"`
}

// UnitNS and UnitCycles are the sample units this repository emits:
// wall-clock reps in nanoseconds, simulator reps in model cycles.
const (
	UnitNS     = "ns"
	UnitCycles = "cycles"
)

// Sample is one named measurement's repeated observations.
type Sample struct {
	// Name identifies the measurement within the experiment, e.g.
	// "GCN/products/combined".
	Name string `json:"name"`
	// Unit is the measurement unit of Reps (UnitNS or UnitCycles).
	Unit string `json:"unit"`
	// Reps holds every repetition's value, in recording order.
	Reps []int64 `json:"reps"`
	// Stats caches ComputeStats(Reps) so consumers need no math.
	Stats Stats `json:"stats"`
}

// NewSample builds a sample with its statistics precomputed.
func NewSample(name, unit string, reps []int64) Sample {
	return Sample{Name: name, Unit: unit, Reps: reps, Stats: ComputeStats(reps)}
}

// Stats summarizes one sample's repetitions.
type Stats struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
}

// ComputeStats derives mean, sample standard deviation (zero for fewer than
// two reps), min and max.
func ComputeStats(reps []int64) Stats {
	if len(reps) == 0 {
		return Stats{}
	}
	s := Stats{Min: reps[0], Max: reps[0]}
	var sum float64
	for _, r := range reps {
		sum += float64(r)
		if r < s.Min {
			s.Min = r
		}
		if r > s.Max {
			s.Max = r
		}
	}
	s.Mean = sum / float64(len(reps))
	if len(reps) > 1 {
		var ss float64
		for _, r := range reps {
			d := float64(r) - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(reps)-1))
	}
	return s
}

// Latency is one phase's latency-histogram summary, mirroring
// telemetry.PhaseLatency with explicit nanosecond fields.
type Latency struct {
	Phase string `json:"phase"`
	Count int64  `json:"count"`
	SumNS int64  `json:"sum_ns"`
	P50NS int64  `json:"p50_ns"`
	P95NS int64  `json:"p95_ns"`
	P99NS int64  `json:"p99_ns"`
}

// Encode writes f as indented JSON. The encoding is deterministic (sorted
// map keys, two-space indent, trailing newline) so reports diff cleanly and
// the testdata fixture can pin exact bytes.
func Encode(w io.Writer, f *File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: encode: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Decode parses a report and rejects unsupported schema versions.
func Decode(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchfmt: decode: %w", err)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("benchfmt: schema version %d, this build reads version %d", f.Version, Version)
	}
	return &f, nil
}

// WriteFile encodes f to path.
func WriteFile(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(out, f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ReadFile decodes the report at path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	f, err := Decode(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Experiment returns the experiment with the given id, or nil.
func (f *File) Experiment(id string) *Experiment {
	for i := range f.Experiments {
		if f.Experiments[i].ID == id {
			return &f.Experiments[i]
		}
	}
	return nil
}

// Sample returns the named sample, or nil.
func (e *Experiment) Sample(name string) *Sample {
	for i := range e.Samples {
		if e.Samples[i].Name == name {
			return &e.Samples[i]
		}
	}
	return nil
}
