package benchfmt

import (
	"fmt"
	"strings"
)

// DefaultThreshold is the relative mean slowdown Compare flags when the
// caller does not pick one: 10%, above typical wall-clock noise at -reps 3
// on a quiet machine while still catching real hot-path regressions.
const DefaultThreshold = 0.10

// CompareOptions tunes the regression rule.
type CompareOptions struct {
	// Threshold is the relative mean change required before a delta can
	// be a regression or an improvement (<= 0 means DefaultThreshold).
	Threshold float64
}

func (o CompareOptions) threshold() float64 {
	if o.Threshold <= 0 {
		return DefaultThreshold
	}
	return o.Threshold
}

// Delta is one (experiment, sample) pair present in both files.
type Delta struct {
	Experiment string
	Sample     string
	Unit       string
	OldStats   Stats
	NewStats   Stats
	// Ratio is new mean / old mean (>1 = slower).
	Ratio float64
	// Regression: the new mean exceeds the old by more than the threshold
	// AND the sample ranges do not overlap (new min > old max) — both
	// conditions, so a single noisy rep cannot fail a build on its own.
	Regression bool
	// Improvement is the symmetric speedup condition.
	Improvement bool
}

// Verdict renders the delta's classification.
func (d Delta) Verdict() string {
	switch {
	case d.Regression:
		return "REGRESSION"
	case d.Improvement:
		return "improved"
	default:
		return "ok"
	}
}

// Comparison is the result of comparing two report files.
type Comparison struct {
	OldEnv, NewEnv Env
	Threshold      float64
	Deltas         []Delta
	// OnlyOld / OnlyNew name "experiment/sample" pairs present in just
	// one file — surfaced so a regression cannot hide by deleting its
	// benchmark.
	OnlyOld []string
	OnlyNew []string
}

// Compare matches experiments and samples by name and classifies each pair.
// Sample order follows the new file (the run under test).
func Compare(old, cur *File, opt CompareOptions) Comparison {
	th := opt.threshold()
	c := Comparison{OldEnv: old.Env, NewEnv: cur.Env, Threshold: th}
	seen := make(map[string]bool)
	for _, ne := range cur.Experiments {
		oe := old.Experiment(ne.ID)
		for _, ns := range ne.Samples {
			key := ne.ID + "/" + ns.Name
			seen[key] = true
			var os *Sample
			if oe != nil {
				os = oe.Sample(ns.Name)
			}
			if os == nil {
				c.OnlyNew = append(c.OnlyNew, key)
				continue
			}
			d := Delta{
				Experiment: ne.ID,
				Sample:     ns.Name,
				Unit:       ns.Unit,
				OldStats:   ComputeStats(os.Reps),
				NewStats:   ComputeStats(ns.Reps),
			}
			if d.OldStats.Mean > 0 {
				d.Ratio = d.NewStats.Mean / d.OldStats.Mean
			}
			d.Regression = d.Ratio > 1+th && d.NewStats.Min > d.OldStats.Max
			d.Improvement = d.Ratio > 0 && d.Ratio < 1-th && d.NewStats.Max < d.OldStats.Min
			c.Deltas = append(c.Deltas, d)
		}
	}
	for _, oe := range old.Experiments {
		for _, os := range oe.Samples {
			if key := oe.ID + "/" + os.Name; !seen[key] {
				c.OnlyOld = append(c.OnlyOld, key)
			}
		}
	}
	return c
}

// Regressions returns the deltas classified as regressions.
func (c Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Table renders the aligned delta table the -baseline mode prints: one row
// per compared sample, with the old/new means, the ratio, and the verdict.
func (c Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline: %s\ncurrent:  %s\nthreshold: %.0f%% mean slowdown with non-overlapping ranges\n",
		c.OldEnv.Summary(), c.NewEnv.Summary(), c.Threshold*100)
	fmt.Fprintf(&b, "%-12s %-36s %14s %14s %8s  %s\n",
		"experiment", "sample", "old mean", "new mean", "ratio", "verdict")
	for _, d := range c.Deltas {
		fmt.Fprintf(&b, "%-12s %-36s %14s %14s %7.3fx  %s\n",
			d.Experiment, d.Sample,
			formatValue(d.OldStats.Mean, d.Unit), formatValue(d.NewStats.Mean, d.Unit),
			d.Ratio, d.Verdict())
	}
	for _, k := range c.OnlyOld {
		fmt.Fprintf(&b, "%-12s %s\n", "missing", k+" (in baseline only)")
	}
	for _, k := range c.OnlyNew {
		fmt.Fprintf(&b, "%-12s %s\n", "new", k+" (no baseline)")
	}
	if n := len(c.Regressions()); n > 0 {
		fmt.Fprintf(&b, "%d regression(s)\n", n)
	} else {
		b.WriteString("no regressions\n")
	}
	return b.String()
}

// formatValue renders a mean in its unit: durations scale to a readable
// suffix, cycles print raw.
func formatValue(v float64, unit string) string {
	if unit != UnitNS {
		return fmt.Sprintf("%.0f %s", v, unit)
	}
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}
