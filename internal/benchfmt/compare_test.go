package benchfmt

import (
	"strings"
	"testing"
)

func twoSampleFile(repA, repB []int64) *File {
	return &File{
		Version: 1,
		Env:     CaptureEnv("test"),
		Experiments: []Experiment{
			{ID: "fig2", Samples: []Sample{
				NewSample("epoch/batch-1024", UnitNS, repA),
				NewSample("epoch/batch-4096", UnitNS, repB),
			}},
		},
	}
}

// TestSelfCompareIsClean is the CI bench-smoke invariant: a file compared
// against itself must produce only "ok" verdicts at ratio 1.
func TestSelfCompareIsClean(t *testing.T) {
	f := twoSampleFile([]int64{1000, 1100, 1050}, []int64{500, 500, 500})
	c := Compare(f, f, CompareOptions{})
	if len(c.Deltas) != 2 {
		t.Fatalf("deltas = %+v, want 2", c.Deltas)
	}
	for _, d := range c.Deltas {
		if d.Regression || d.Improvement || d.Ratio != 1 {
			t.Fatalf("self-compare not clean: %+v", d)
		}
	}
	if len(c.Regressions()) != 0 || len(c.OnlyOld) != 0 || len(c.OnlyNew) != 0 {
		t.Fatalf("self-compare flagged something: %+v", c)
	}
	if !strings.Contains(c.Table(), "no regressions") {
		t.Fatalf("table:\n%s", c.Table())
	}
}

// TestDoctoredSlowerCopyRegresses doubles every rep — the acceptance
// criterion's doctored copy — and requires a regression verdict.
func TestDoctoredSlowerCopyRegresses(t *testing.T) {
	old := twoSampleFile([]int64{1000, 1100, 1050}, []int64{500, 500, 500})
	slow := twoSampleFile([]int64{2000, 2200, 2100}, []int64{1000, 1000, 1000})
	c := Compare(old, slow, CompareOptions{})
	regs := c.Regressions()
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want 2", regs)
	}
	if regs[0].Ratio < 1.9 || regs[0].Ratio > 2.1 {
		t.Fatalf("ratio = %v, want ~2", regs[0].Ratio)
	}
	if !strings.Contains(c.Table(), "REGRESSION") || !strings.Contains(c.Table(), "2 regression(s)") {
		t.Fatalf("table:\n%s", c.Table())
	}
	// The mirror comparison is an improvement, not a regression.
	back := Compare(slow, old, CompareOptions{})
	if len(back.Regressions()) != 0 {
		t.Fatalf("speedup misread as regression: %+v", back.Regressions())
	}
	for _, d := range back.Deltas {
		if !d.Improvement {
			t.Fatalf("2x speedup not marked improved: %+v", d)
		}
	}
}

// TestOverlappingRangesDoNotRegress: a mean shift past the threshold is not
// enough on its own — if the sample ranges overlap, one noisy rep could be
// the whole story, so the verdict stays "ok".
func TestOverlappingRangesDoNotRegress(t *testing.T) {
	old := twoSampleFile([]int64{1000, 2000, 1000}, []int64{500, 500, 500})
	cur := twoSampleFile([]int64{1800, 1900, 1800}, []int64{500, 500, 500}) // mean +37%, but new min 1800 < old max 2000
	c := Compare(old, cur, CompareOptions{})
	if len(c.Regressions()) != 0 {
		t.Fatalf("overlapping ranges flagged: %+v", c.Regressions())
	}
}

// TestThresholdOption verifies a small slowdown passes at the default
// threshold and fails at a tighter one.
func TestThresholdOption(t *testing.T) {
	old := twoSampleFile([]int64{1000, 1000, 1000}, []int64{500, 500, 500})
	cur := twoSampleFile([]int64{1050, 1050, 1050}, []int64{500, 500, 500}) // +5%, disjoint ranges
	if n := len(Compare(old, cur, CompareOptions{}).Regressions()); n != 0 {
		t.Fatalf("5%% slowdown flagged at default threshold (%d regressions)", n)
	}
	if n := len(Compare(old, cur, CompareOptions{Threshold: 0.02}).Regressions()); n != 1 {
		t.Fatalf("5%% slowdown not flagged at 2%% threshold (%d regressions)", n)
	}
}

// TestMissingSamplesSurfaced: renamed or deleted benchmarks must show up in
// the comparison instead of silently shrinking coverage.
func TestMissingSamplesSurfaced(t *testing.T) {
	old := twoSampleFile([]int64{1000}, []int64{500})
	cur := &File{
		Version: 1,
		Env:     CaptureEnv(""),
		Experiments: []Experiment{
			{ID: "fig2", Samples: []Sample{
				NewSample("epoch/batch-1024", UnitNS, []int64{1000}),
				NewSample("epoch/batch-8192", UnitNS, []int64{900}),
			}},
		},
	}
	c := Compare(old, cur, CompareOptions{})
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "fig2/epoch/batch-4096" {
		t.Fatalf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "fig2/epoch/batch-8192" {
		t.Fatalf("OnlyNew = %v", c.OnlyNew)
	}
	table := c.Table()
	if !strings.Contains(table, "in baseline only") || !strings.Contains(table, "no baseline") {
		t.Fatalf("table hides missing samples:\n%s", table)
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{1.5e9, UnitNS, "1.500s"},
		{2.5e6, UnitNS, "2.500ms"},
		{3.5e3, UnitNS, "3.500µs"},
		{42, UnitNS, "42ns"},
		{123456, UnitCycles, "123456 cycles"},
	}
	for _, c := range cases {
		if got := formatValue(c.v, c.unit); got != c.want {
			t.Errorf("formatValue(%v, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}
