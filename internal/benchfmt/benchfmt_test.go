package benchfmt

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"graphite/internal/perf"
)

// fixtureFile is the in-memory value pinned byte-for-byte by
// testdata/bench_v1.json. Changing the schema (field names, tags, types)
// breaks TestGoldenFixture — that is the point: schema drift must be a
// deliberate, versioned act, not a side effect.
func fixtureFile() *File {
	return &File{
		Version: 1,
		Env: Env{
			GoVersion:   "go1.22.0",
			GOOS:        "linux",
			GOARCH:      "amd64",
			NumCPU:      8,
			GOMAXPROCS:  8,
			GitRevision: "deadbeef",
		},
		Experiments: []Experiment{
			{
				ID:    "fig2",
				Title: "sampled-training epoch breakdown vs mini-batch size",
				Samples: []Sample{
					NewSample("epoch/batch-1024", UnitNS, []int64{1200, 1000, 1100}),
					NewSample("epoch/batch-4096", UnitNS, []int64{500, 500, 500}),
				},
				PhaseTotalsNS: map[string]int64{
					"experiment/fig2": 3300,
					"forward":         2100,
				},
				Counters: map[string]int64{
					"graphite_edges_aggregated_total":    99,
					"graphite_vertices_aggregated_total": 10,
				},
				Latencies: []Latency{
					{Phase: "forward", Count: 3, SumNS: 2100, P50NS: 700, P95NS: 900, P99NS: 900},
				},
				SpansDropped: 2,
			},
			{
				ID:    "fig3",
				Title: "pipeline-slot breakdown of full-batch baseline training (simulated)",
				Samples: []Sample{
					NewSample("products/DistGNN", UnitCycles, []int64{123456}),
				},
				TopDown: &perf.TopDown{
					Retiring:       0.125,
					FrontendBound:  0.033,
					CoreBound:      0,
					MemoryBound:    0.842,
					L2Bound:        0.05,
					L3Bound:        0.1,
					DRAMBandwidth:  0.5,
					DRAMLatency:    0.192,
					FillBufferFull: 1,
				},
			},
		},
	}
}

// TestRoundTrip encodes the fixture value, decodes it back, and requires a
// deep-equal result — the schema must survive its own serialization.
func TestRoundTrip(t *testing.T) {
	want := fixtureFile()
	var buf bytes.Buffer
	if err := Encode(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mutated the value:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestGoldenFixture pins the exact bytes of the schema: the checked-in
// fixture must decode to the fixture value, and encoding the value must
// reproduce the fixture byte-for-byte.
func TestGoldenFixture(t *testing.T) {
	path := filepath.Join("testdata", "bench_v1.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("pinned fixture no longer decodes: %v", err)
	}
	want := fixtureFile()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fixture decodes to a different value:\ngot:  %+v\nwant: %+v", got, want)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatalf("schema drift: encoding the fixture value no longer matches %s.\n"+
			"If the change is deliberate, bump Version and regenerate the fixture.\ngot:\n%s\nwant:\n%s",
			path, buf.String(), raw)
	}
}

// TestDecodeRejectsWrongVersion ensures future-version files fail loudly
// instead of being half-read.
func TestDecodeRejectsWrongVersion(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"version": 2, "env": {}, "experiments": []}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version 2 accepted (err=%v)", err)
	}
	if _, err := Decode(strings.NewReader(`{not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestWriteReadFile round-trips through the filesystem helpers.
func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	want := fixtureFile()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file round trip mutated the value")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats([]int64{10, 20, 30})
	if s.Mean != 20 || s.Min != 10 || s.Max != 30 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Stddev < 9.9 || s.Stddev > 10.1 { // sample stddev of {10,20,30} = 10
		t.Fatalf("stddev = %v, want 10", s.Stddev)
	}
	if one := ComputeStats([]int64{7}); one.Mean != 7 || one.Stddev != 0 || one.Min != 7 || one.Max != 7 {
		t.Fatalf("single-rep stats = %+v", one)
	}
	if zero := ComputeStats(nil); zero != (Stats{}) {
		t.Fatalf("empty stats = %+v", zero)
	}
}

func TestLookupHelpers(t *testing.T) {
	f := fixtureFile()
	if f.Experiment("fig2") == nil || f.Experiment("nope") != nil {
		t.Fatal("File.Experiment lookup broken")
	}
	e := f.Experiment("fig2")
	if e.Sample("epoch/batch-1024") == nil || e.Sample("nope") != nil {
		t.Fatal("Experiment.Sample lookup broken")
	}
}

func TestCaptureEnv(t *testing.T) {
	e := CaptureEnv("abc123")
	if e.GoVersion == "" || e.GOOS == "" || e.GOARCH == "" || e.NumCPU < 1 || e.GOMAXPROCS < 1 {
		t.Fatalf("fingerprint incomplete: %+v", e)
	}
	if e.GitRevision != "abc123" {
		t.Fatalf("revision = %q", e.GitRevision)
	}
	if !strings.Contains(e.Summary(), "abc123") {
		t.Fatalf("summary missing revision: %s", e.Summary())
	}
	if !strings.Contains(CaptureEnv("").Summary(), "unknown-rev") {
		t.Fatal("empty revision not labelled")
	}
}
