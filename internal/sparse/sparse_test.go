package sparse

import (
	"math"
	"math/rand"
	"testing"

	"graphite/internal/graph"
	"graphite/internal/tensor"
)

func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateProfile(graph.Wikipedia, 200)
	if err != nil {
		t.Fatal(err)
	}
	return g.AddSelfLoops()
}

func TestFactorsSum(t *testing.T) {
	g := testGraph(t)
	f := Factors(g, NormSum)
	for i, v := range f {
		if v != 1 {
			t.Fatalf("factor %d = %g, want 1", i, v)
		}
	}
}

func TestFactorsMeanRowsSumToOne(t *testing.T) {
	g := testGraph(t)
	f := Factors(g, NormMean)
	for v := 0; v < g.NumVertices(); v++ {
		var sum float64
		for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
			sum += float64(f[e])
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("vertex %d mean factors sum to %g, want 1", v, sum)
		}
	}
}

func TestFactorsGCNSymmetric(t *testing.T) {
	g := testGraph(t)
	f := Factors(g, NormGCN)
	// Weight of edge (v,u) must be 1/sqrt(D_v·D_u).
	for v := 0; v < g.NumVertices(); v++ {
		for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
			u := int(g.Col[e])
			want := 1 / math.Sqrt(float64(g.Degree(v))*float64(g.Degree(u)))
			if math.Abs(float64(f[e])-want) > 1e-5 {
				t.Fatalf("edge (%d,%d) factor %g, want %g", v, u, f[e], want)
			}
		}
	}
}

func TestFactorsZeroDegreeVertex(t *testing.T) {
	// Vertex 2 has no neighbours and no self loop: its factors slice is
	// empty and nothing panics.
	g, err := graph.FromEdges(3, []int32{0, 1}, []int32{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []Norm{NormSum, NormGCN, NormMean} {
		f := Factors(g, n)
		if len(f) != g.NumEdges() {
			t.Fatalf("%v: factor length %d", n, len(f))
		}
	}
}

func TestSpMMIdentityGraph(t *testing.T) {
	// A graph with only self loops aggregates to a scaled copy of h.
	n := 10
	src := make([]int32, n)
	dst := make([]int32, n)
	for i := range src {
		src[i], dst[i] = int32(i), int32(i)
	}
	g, err := graph.FromEdges(n, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	h := tensor.NewMatrix(n, 8)
	h.FillRandom(rand.New(rand.NewSource(1)), 1)
	out := tensor.NewMatrix(n, 8)
	SpMM(out, g, Factors(g, NormMean), h, 2)
	if d := tensor.MaxAbsDiff(out, h); d > 1e-6 {
		t.Fatalf("self-loop mean aggregation differs from input by %g", d)
	}
}

func TestSpMMMatchesDenseReference(t *testing.T) {
	g := testGraph(t)
	n := g.NumVertices()
	h := tensor.NewMatrix(n, 12)
	h.FillRandom(rand.New(rand.NewSource(2)), 1)
	f := Factors(g, NormGCN)
	got := tensor.NewMatrix(n, 12)
	SpMM(got, g, f, h, 3)
	// Dense reference: Â as a dense matrix times h, in float64.
	for v := 0; v < n; v++ {
		want := make([]float64, 12)
		for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
			for j := 0; j < 12; j++ {
				want[j] += float64(f[e]) * float64(h.At(int(g.Col[e]), j))
			}
		}
		for j := 0; j < 12; j++ {
			if math.Abs(float64(got.At(v, j))-want[j]) > 1e-3 {
				t.Fatalf("vertex %d col %d: %g vs %g", v, j, got.At(v, j), want[j])
			}
		}
	}
}

func TestSpMMShapePanics(t *testing.T) {
	g := testGraph(t)
	defer func() {
		if recover() == nil {
			t.Fatal("bad factor length accepted")
		}
	}()
	h := tensor.NewMatrix(g.NumVertices(), 4)
	out := tensor.NewMatrix(g.NumVertices(), 4)
	SpMM(out, g, make([]float32, 3), h, 1)
}

func TestTransposeFactorsPreserveEdgeWeights(t *testing.T) {
	g := testGraph(t)
	gT := g.Transpose()
	f := Factors(g, NormGCN)
	fT := TransposeFactors(g, gT, f)
	// Aggregating with (gT, fT) must equal multiplying by Âᵀ: check via
	// the identity xᵀ(Ây) == (Âᵀx)ᵀy for random vectors.
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(3))
	x := tensor.NewMatrix(n, 1)
	y := tensor.NewMatrix(n, 1)
	x.FillRandom(rng, 1)
	y.FillRandom(rng, 1)
	ay := tensor.NewMatrix(n, 1)
	SpMM(ay, g, f, y, 1)
	atx := tensor.NewMatrix(n, 1)
	SpMM(atx, gT, fT, x, 1)
	var lhs, rhs float64
	for v := 0; v < n; v++ {
		lhs += float64(x.At(v, 0)) * float64(ay.At(v, 0))
		rhs += float64(atx.At(v, 0)) * float64(y.At(v, 0))
	}
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

func TestNormString(t *testing.T) {
	if NormGCN.String() != "gcn" || NormMean.String() != "mean" || NormSum.String() != "sum" {
		t.Fatal("Norm.String wrong")
	}
}
