// Package sparse provides sparse-matrix algebra over CSR graphs: the
// per-edge normalization factors that implement the paper's feature
// processing function ψ (Table 2), and an SpMM aggregation that serves both
// as the "MKL" comparison point (§6) and as the reference implementation the
// optimized kernels are verified against.
//
// When the reduction is "sum" and the binary operator is "multiply", the
// aggregation is exactly a sparse-matrix dense-matrix multiplication
// a = Â·h, where Â holds the normalization factors as CSR values (§5.2 notes
// the DMA engine computes the same thing). The factor arrays built here are
// therefore shared by every implementation, including the DMA descriptors
// (Fig. 9b: FACTOR points into the CSR value array).
package sparse

import (
	"context"
	"fmt"
	"math"

	"graphite/internal/graph"
	"graphite/internal/sched"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// Norm selects the aggregation normalization, i.e. which GNN model's ψ the
// factor array encodes (Table 2).
type Norm int

const (
	// NormSum applies no scaling (plain neighbourhood sum).
	NormSum Norm = iota
	// NormGCN scales edge (v,u) by 1/sqrt(D_v·D_u), the GCN symmetric
	// normalization. Degrees are row lengths of the self-looped graph.
	NormGCN
	// NormMean scales edge (v,u) by 1/D_v, GraphSAGE's mean aggregator
	// (D_v counts the self edge, matching the paper's 1/(D_v+1)).
	NormMean
)

// String implements fmt.Stringer.
func (n Norm) String() string {
	switch n {
	case NormSum:
		return "sum"
	case NormGCN:
		return "gcn"
	case NormMean:
		return "mean"
	}
	return fmt.Sprintf("Norm(%d)", int(n))
}

// Factors returns the per-edge factor array aligned with g.Col. g must
// already contain self loops for NormGCN/NormMean to match the paper's
// N(v) ∪ {v} semantics.
func Factors(g *graph.CSR, norm Norm) []float32 {
	f := make([]float32, g.NumEdges())
	n := g.NumVertices()
	switch norm {
	case NormSum:
		for i := range f {
			f[i] = 1
		}
	case NormMean:
		for v := 0; v < n; v++ {
			d := g.Degree(v)
			if d == 0 {
				continue
			}
			inv := float32(1) / float32(d)
			for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
				f[e] = inv
			}
		}
	case NormGCN:
		invSqrt := make([]float32, n)
		for v := 0; v < n; v++ {
			if d := g.Degree(v); d > 0 {
				invSqrt[v] = float32(1 / math.Sqrt(float64(d)))
			}
		}
		for v := 0; v < n; v++ {
			sv := invSqrt[v]
			for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
				f[e] = sv * invSqrt[g.Col[e]]
			}
		}
	default:
		panic(fmt.Sprintf("sparse: unknown norm %d", int(norm)))
	}
	return f
}

// TransposeFactors returns the factor array for the transposed graph gT such
// that the transposed aggregation applies the SAME per-edge weights as the
// forward aggregation did. The backward pass needs aᵀ gradients propagated
// with Âᵀ, whose CSR values are the forward factors rearranged to the
// transposed edge order.
//
// g and gT must be transposes of each other and factors must align with
// g.Col.
func TransposeFactors(g, gT *graph.CSR, factors []float32) []float32 {
	n := g.NumVertices()
	out := make([]float32, len(factors))
	// Walk forward edges (v -> u, weight w); locate the transposed edge
	// (u -> v) by scanning u's row cursor. Rows in gT are sorted, and we
	// visit each u's in-edges in increasing v, so a per-row fill cursor
	// walks monotonically — but duplicates of (u,v) must map one-to-one,
	// which the cursor also handles.
	cursor := make([]int32, n)
	copy(cursor, gT.Ptr[:n])
	for v := 0; v < n; v++ {
		for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
			u := g.Col[e]
			c := cursor[u]
			for gT.Col[c] != int32(v) {
				c++
			}
			out[c] = factors[e]
			cursor[u] = c + 1
		}
	}
	return out
}

// SpMM computes out[v,:] = Σ_{e∈row v} factors[e] · h[Col[e],:]. It is the
// paper's "MKL" aggregation baseline and the correctness oracle for the
// optimized kernels. Parallelised over output rows (no races: each task
// owns disjoint rows of out, all other operands are read-only — §4.1).
func SpMM(out *tensor.Matrix, g *graph.CSR, factors []float32, h *tensor.Matrix, threads int) {
	SpMMTel(out, g, factors, h, threads, nil)
}

// SpMMTel is SpMM with kernel counters and per-worker scheduler accounting.
func SpMMTel(out *tensor.Matrix, g *graph.CSR, factors []float32, h *tensor.Matrix, threads int, tel *telemetry.Sink) {
	if err := SpMMCtx(context.Background(), out, g, factors, h, threads, tel); err != nil {
		panic(err)
	}
}

// SpMMCtx is SpMMTel observing ctx at chunk boundaries and returning worker
// panics as *sched.WorkerError instead of crashing.
func SpMMCtx(ctx context.Context, out *tensor.Matrix, g *graph.CSR, factors []float32, h *tensor.Matrix, threads int, tel *telemetry.Sink) error {
	if out.Rows != g.NumVertices() || h.Rows != g.NumVertices() {
		panic(fmt.Sprintf("sparse: SpMM rows out=%d h=%d graph=%d", out.Rows, h.Rows, g.NumVertices()))
	}
	if out.Cols != h.Cols {
		panic(fmt.Sprintf("sparse: SpMM cols out=%d h=%d", out.Cols, h.Cols))
	}
	if len(factors) != g.NumEdges() {
		panic(fmt.Sprintf("sparse: factor array length %d, want %d", len(factors), g.NumEdges()))
	}
	return sched.DynamicTelCtx(ctx, g.NumVertices(), 64, threads, tel, func(_, start, end int) {
		var edges int64
		for v := start; v < end; v++ {
			dst := out.Row(v)
			clear(dst)
			edges += int64(g.Ptr[v+1] - g.Ptr[v])
			for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
				tensor.AXPY(dst, h.Row(int(g.Col[e])), factors[e])
			}
		}
		if tel.Enabled() {
			tel.Add(telemetry.CtrVerticesAggregated, int64(end-start))
			tel.Add(telemetry.CtrEdgesAggregated, edges)
		}
	})
}
