package lint_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"graphite/internal/lint"
)

// TestRepoClean is the tier-1 gate: every checker over every package of the
// module must report nothing. This subsumes the telemetry PR's string-grep
// stdout test (the no-stdout checker) and adds the determinism, hot-path,
// alignment, and race-pattern invariants.
func TestRepoClean(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walk is broken", len(pkgs))
	}
	for _, f := range lint.Run(pkgs, lint.Checkers(loader.Module)) {
		t.Errorf("%s", f)
	}
}

// goldenCases pairs each checker with a testdata package of known-bad code,
// loaded under an import path that puts it in the checker's coverage.
var goldenCases = []struct {
	dir        string
	importPath string
	checker    string
}{
	{"nostdout", "graphite/internal/goldenbadprint", "no-stdout"},
	{"simdeterminism", "graphite/internal/memsim/goldenbad", "sim-determinism"},
	{"simdeterminism_seeded", "graphite/internal/tensor/goldenbad", "sim-determinism"},
	{"hotloop", "graphite/internal/kernels/goldenbad", "hotloop-telemetry"},
	{"hotloopalloc", "graphite/internal/kernels/goldenbadalloc", "hotloop-alloc"},
	{"hotloopiface", "graphite/internal/tensor/goldenbadiface", "hotloop-iface"},
	{"ctxprop", "graphite/internal/gnn/goldenbadctx", "ctx-propagation"},
	{"atomicalign", "graphite/internal/goldenbadalign", "atomic-alignment"},
	{"capture", "graphite/internal/goldenbadcapture", "goroutine-capture"},
	{"gorecover", "graphite/internal/goldenbadgorecover", "goroutine-recover"},
	{"httplistener", "graphite/internal/goldenbadhttp", "http-listener"},
	{"httplistener_cmd", "graphite/cmd/graphite-serve/goldenbad", "http-listener"},
	{"nakedsleep", "graphite/internal/serve/goldenbad", "naked-sleep"},
}

// TestGolden runs each checker over its known-bad package and requires the
// findings to match the // want markers exactly — every marked line flagged,
// no unmarked line flagged, suppressed lines silent.
func TestGolden(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	all := lint.Checkers(loader.Module)
	for _, tc := range goldenCases {
		t.Run(tc.dir, func(t *testing.T) {
			var checker lint.Checker
			for _, c := range all {
				if c.Name() == tc.checker {
					checker = c
				}
			}
			if checker == nil {
				t.Fatalf("no checker named %q", tc.checker)
			}
			if !checker.Applies(tc.importPath) {
				t.Fatalf("%s does not cover synthetic import path %s", tc.checker, tc.importPath)
			}
			dir := filepath.Join("testdata", tc.dir)
			pkg, err := loader.LoadDir(dir, tc.importPath)
			if err != nil {
				t.Fatal(err)
			}
			want, err := wantMarkers(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatalf("no // want markers under %s", dir)
			}
			got := make(map[string]int)
			for _, f := range lint.Run([]*lint.Package{pkg}, []lint.Checker{checker}) {
				got[fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check)]++
			}
			for key := range want {
				if got[key] == 0 {
					t.Errorf("missing finding: %s", key)
				}
				delete(got, key)
			}
			for key := range got {
				t.Errorf("unexpected finding: %s", key)
			}
		})
	}
}

var wantRE = regexp.MustCompile(`//\s*want(-next)?\s+([a-z][a-z0-9-]*)\s*$`)

// wantMarkers scans a testdata package for expectation comments:
// `// want check-name` marks its own line, `// want-next check-name` the
// line below (for findings on comment lines, e.g. malformed directives).
func wantMarkers(dir string) (map[string]int, error) {
	out := make(map[string]int)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			at := line
			if m[1] == "-next" {
				at++
			}
			out[fmt.Sprintf("%s:%d %s", e.Name(), at, m[2])]++
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TestCheckerMetadata pins the suite's shape: unique kebab-case names,
// docs, and — because Checkers() order is what -list prints and what the
// report groups by — the names must come out sorted, independent of
// registration order.
func TestCheckerMetadata(t *testing.T) {
	cs := lint.Checkers("graphite")
	if len(cs) < 10 {
		t.Fatalf("suite has %d checkers, want >= 10", len(cs))
	}
	seen := make(map[string]bool)
	var names []string
	for _, c := range cs {
		name := c.Name()
		if name == "" || strings.ToLower(name) != name || strings.Contains(name, " ") {
			t.Errorf("checker name %q is not kebab-case", name)
		}
		if seen[name] {
			t.Errorf("duplicate checker name %q in -list output", name)
		}
		seen[name] = true
		names = append(names, name)
		if c.Doc() == "" {
			t.Errorf("checker %s has no doc", name)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list output order is not sorted: %v", names)
	}
	for _, want := range []string{"hotloop-alloc", "hotloop-iface", "ctx-propagation"} {
		if !seen[want] {
			t.Errorf("suite is missing checker %q", want)
		}
	}
}

// TestRepoIgnoreAudit is the tier-1 gate on suppression debt: every
// //lint:ignore in the module must name a real checker, carry a reason, and
// still suppress a live finding. Stale ignores are deleted, not kept.
func TestRepoIgnoreAudit(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range lint.AuditIgnores(pkgs, lint.Checkers(loader.Module)) {
		t.Errorf("%s", f)
	}
}

// TestIgnoreAuditGolden pins the audit on known-bad directives: stale,
// unknown-checker, and reasonless ignores are flagged; a used ignore stays
// silent. Markers follow the TestGolden convention.
func TestIgnoreAuditGolden(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "ignoreaudit")
	pkg, err := loader.LoadDir(dir, "graphite/internal/goldenbadaudit")
	if err != nil {
		t.Fatal(err)
	}
	want, err := wantMarkers(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatalf("no // want markers under %s", dir)
	}
	got := make(map[string]int)
	for _, f := range lint.AuditIgnores([]*lint.Package{pkg}, lint.Checkers(loader.Module)) {
		got[fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check)]++
	}
	for key := range want {
		if got[key] == 0 {
			t.Errorf("missing audit finding: %s", key)
		}
		delete(got, key)
	}
	for key := range got {
		t.Errorf("unexpected audit finding: %s", key)
	}
}

// TestNDJSONFormat pins the -json wire format: one object per line with
// fixed keys, empty output for a clean run, and a lossless round trip.
func TestNDJSONFormat(t *testing.T) {
	findings := []lint.Finding{
		{Check: "hotloop-alloc", Message: "make inside a kernel loop"},
		{Check: "bounds-check", Message: `new bounds-check with "quotes" and	tabs`},
	}
	findings[0].Pos.Filename = "internal/kernels/aggregate.go"
	findings[0].Pos.Line = 42
	findings[0].Pos.Column = 7
	findings[1].Pos.Filename = "internal/tensor/gemm.go"
	findings[1].Pos.Line = 9

	var buf strings.Builder
	if err := lint.WriteNDJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d ndjson lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not a JSON object: %v", i+1, err)
		}
		for _, key := range []string{"file", "line", "col", "check", "message"} {
			if _, ok := obj[key]; !ok {
				t.Errorf("line %d missing key %q", i+1, key)
			}
		}
	}
	back, err := lint.ParseNDJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(findings) {
		t.Fatalf("round trip lost findings: %d != %d", len(back), len(findings))
	}
	for i := range back {
		if back[i] != findings[i] {
			t.Errorf("finding %d round trip mismatch:\n got %+v\nwant %+v", i, back[i], findings[i])
		}
	}

	var empty strings.Builder
	if err := lint.WriteNDJSON(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("clean run must emit zero bytes, got %q", empty.String())
	}
}
