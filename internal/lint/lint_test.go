package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"graphite/internal/lint"
)

// TestRepoClean is the tier-1 gate: every checker over every package of the
// module must report nothing. This subsumes the telemetry PR's string-grep
// stdout test (the no-stdout checker) and adds the determinism, hot-path,
// alignment, and race-pattern invariants.
func TestRepoClean(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walk is broken", len(pkgs))
	}
	for _, f := range lint.Run(pkgs, lint.Checkers(loader.Module)) {
		t.Errorf("%s", f)
	}
}

// goldenCases pairs each checker with a testdata package of known-bad code,
// loaded under an import path that puts it in the checker's coverage.
var goldenCases = []struct {
	dir        string
	importPath string
	checker    string
}{
	{"nostdout", "graphite/internal/goldenbadprint", "no-stdout"},
	{"simdeterminism", "graphite/internal/memsim/goldenbad", "sim-determinism"},
	{"simdeterminism_seeded", "graphite/internal/tensor/goldenbad", "sim-determinism"},
	{"hotloop", "graphite/internal/kernels/goldenbad", "hotloop-telemetry"},
	{"atomicalign", "graphite/internal/goldenbadalign", "atomic-alignment"},
	{"capture", "graphite/internal/goldenbadcapture", "goroutine-capture"},
	{"gorecover", "graphite/internal/goldenbadgorecover", "goroutine-recover"},
	{"httplistener", "graphite/internal/goldenbadhttp", "http-listener"},
}

// TestGolden runs each checker over its known-bad package and requires the
// findings to match the // want markers exactly — every marked line flagged,
// no unmarked line flagged, suppressed lines silent.
func TestGolden(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	all := lint.Checkers(loader.Module)
	for _, tc := range goldenCases {
		t.Run(tc.dir, func(t *testing.T) {
			var checker lint.Checker
			for _, c := range all {
				if c.Name() == tc.checker {
					checker = c
				}
			}
			if checker == nil {
				t.Fatalf("no checker named %q", tc.checker)
			}
			if !checker.Applies(tc.importPath) {
				t.Fatalf("%s does not cover synthetic import path %s", tc.checker, tc.importPath)
			}
			dir := filepath.Join("testdata", tc.dir)
			pkg, err := loader.LoadDir(dir, tc.importPath)
			if err != nil {
				t.Fatal(err)
			}
			want, err := wantMarkers(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatalf("no // want markers under %s", dir)
			}
			got := make(map[string]int)
			for _, f := range lint.Run([]*lint.Package{pkg}, []lint.Checker{checker}) {
				got[fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check)]++
			}
			for key := range want {
				if got[key] == 0 {
					t.Errorf("missing finding: %s", key)
				}
				delete(got, key)
			}
			for key := range got {
				t.Errorf("unexpected finding: %s", key)
			}
		})
	}
}

var wantRE = regexp.MustCompile(`//\s*want(-next)?\s+([a-z][a-z0-9-]*)\s*$`)

// wantMarkers scans a testdata package for expectation comments:
// `// want check-name` marks its own line, `// want-next check-name` the
// line below (for findings on comment lines, e.g. malformed directives).
func wantMarkers(dir string) (map[string]int, error) {
	out := make(map[string]int)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			at := line
			if m[1] == "-next" {
				at++
			}
			out[fmt.Sprintf("%s:%d %s", e.Name(), at, m[2])]++
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TestCheckerMetadata pins the suite's shape: five named checkers with
// unique kebab-case names and docs.
func TestCheckerMetadata(t *testing.T) {
	cs := lint.Checkers("graphite")
	if len(cs) < 5 {
		t.Fatalf("suite has %d checkers, want >= 5", len(cs))
	}
	seen := make(map[string]bool)
	for _, c := range cs {
		name := c.Name()
		if name == "" || strings.ToLower(name) != name || strings.Contains(name, " ") {
			t.Errorf("checker name %q is not kebab-case", name)
		}
		if seen[name] {
			t.Errorf("duplicate checker name %q", name)
		}
		seen[name] = true
		if c.Doc() == "" {
			t.Errorf("checker %s has no doc", name)
		}
	}
}
