package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HTTPListener confines network listener creation to the serving planes:
// internal/obsrv (the observability plane) and internal/serve (the
// inference server) are the only packages that may bind sockets or start
// HTTP servers. Everywhere else — library packages and commands alike —
// those planes are reached through obsrv.Server, serve.Server, or
// graphite.Engine.Serve, so there are exactly two places where ports are
// opened, probes are registered, and shutdown is wired to context
// cancellation. Scattered ListenAndServe calls are how a codebase grows
// unmonitored, undrainable listeners.
type HTTPListener struct {
	// Module is the module path; every package of the module except
	// internal/obsrv and internal/serve is covered.
	Module string
}

// bannedHTTPFuncs are the net/http package-level functions that bind a
// socket or serve on one.
var bannedHTTPFuncs = map[string]bool{
	"ListenAndServe":    true,
	"ListenAndServeTLS": true,
	"Serve":             true,
	"ServeTLS":          true,
}

// bannedNetFuncs are the net package-level functions that create listeners.
var bannedNetFuncs = map[string]bool{
	"Listen":       true,
	"ListenTCP":    true,
	"ListenUnix":   true,
	"ListenPacket": true,
	"ListenUDP":    true,
	"ListenIP":     true,
	"ListenConfig": true,
}

// bannedServerMethods are the http.Server methods that bind or serve.
var bannedServerMethods = map[string]bool{
	"ListenAndServe":    true,
	"ListenAndServeTLS": true,
	"Serve":             true,
	"ServeTLS":          true,
}

// Name implements Checker.
func (*HTTPListener) Name() string { return "http-listener" }

// Doc implements Checker.
func (*HTTPListener) Doc() string {
	return "listener creation (net.Listen*, http.ListenAndServe, http.Server serving) is confined to internal/obsrv and internal/serve"
}

// Applies implements Checker.
func (c *HTTPListener) Applies(importPath string) bool {
	if importPath == c.Module+"/internal/obsrv" || importPath == c.Module+"/internal/serve" {
		return false
	}
	return importPath == c.Module || strings.HasPrefix(importPath, c.Module+"/")
}

// Check implements Checker.
func (c *HTTPListener) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgSelector(pkg.Info, sel); ok {
				switch {
				case path == "net/http" && bannedHTTPFuncs[name]:
					out = append(out, pkg.finding(c.Name(), sel,
						"http.%s binds a listener outside internal/obsrv and internal/serve; serve through obsrv.Server or serve.Server", name))
				case path == "net" && bannedNetFuncs[name]:
					out = append(out, pkg.finding(c.Name(), sel,
						"net.%s creates a listener outside internal/obsrv and internal/serve; route sockets through a serving plane", name))
				}
				return true
			}
			// Method calls and method values on net/http.Server.
			if s, ok := pkg.Info.Selections[sel]; ok && bannedServerMethods[sel.Sel.Name] {
				if named, ok := derefNamed(s.Recv()); ok &&
					named.Obj().Pkg() != nil &&
					named.Obj().Pkg().Path() == "net/http" &&
					named.Obj().Name() == "Server" {
					out = append(out, pkg.finding(c.Name(), sel,
						"(*http.Server).%s outside internal/obsrv and internal/serve; serve through obsrv.Server or serve.Server", sel.Sel.Name))
				}
			}
			return true
		})
	}
	return out
}

// derefNamed unwraps pointers to the receiver's named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}
