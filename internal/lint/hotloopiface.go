package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotLoopIface keeps interface boxing and defer out of the kernel loops.
// Converting a concrete value to an interface inside a per-vertex or
// per-edge loop allocates (gc boxes non-pointer values) and adds dynamic
// dispatch the width-specialised kernels exist to avoid; defer in a loop
// body pushes a frame per iteration and runs nothing until function exit.
// The one sanctioned interface on the hot path is kernels.Source, whose
// per-row methods amortise a single dynamic call over a full feature-vector
// AXPY — calling methods *on* an interface is fine, creating interface
// values per iteration is not.
type HotLoopIface struct {
	// Module is the module path used to resolve covered packages.
	Module string
}

// Name implements Checker.
func (*HotLoopIface) Name() string { return "hotloop-iface" }

// Doc implements Checker.
func (*HotLoopIface) Doc() string {
	return "kernel packages must not box values into interfaces or defer inside for loops (per-iteration allocation and dispatch)"
}

// Applies implements Checker.
func (c *HotLoopIface) Applies(importPath string) bool {
	return matchesAny(importPath, c.Module, allocPkgs)
}

// Check implements Checker.
func (c *HotLoopIface) Check(pkg *Package) []Finding {
	var out []Finding
	inLoop := func(n ast.Node) {
		switch n := n.(type) {
		case *ast.DeferStmt:
			out = append(out, pkg.finding(c.Name(), n,
				"defer inside a kernel loop pushes a frame per iteration and delays the call to function exit; restructure"))
		case *ast.CallExpr:
			out = append(out, c.checkCall(pkg, n)...)
		case *ast.AssignStmt:
			out = append(out, c.checkAssign(pkg, n)...)
		}
	}
	for _, file := range pkg.Files {
		walkLoops(file, inLoop)
	}
	return dedupeFindings(out)
}

// checkCall flags concrete→interface conversions at call boundaries: an
// argument passed to an interface-typed parameter (including variadic
// ...interface{} — the fmt functions' signature), and explicit conversions
// T(x) where T is an interface type.
func (c *HotLoopIface) checkCall(pkg *Package, call *ast.CallExpr) []Finding {
	var out []Finding
	// Explicit conversion to an interface type.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(pkg.Info, call.Args[0]) {
			out = append(out, pkg.finding(c.Name(), call,
				"conversion to interface type %s inside a kernel loop boxes per iteration; hoist it", types.TypeString(tv.Type, types.RelativeTo(pkg.Pkg))))
		}
		return out
	}
	sig := callSignature(pkg.Info, call)
	if sig == nil {
		return out
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			// A t... spread passes the slice through without boxing.
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(pkg.Info, arg) {
			out = append(out, pkg.finding(c.Name(), arg,
				"argument boxes a concrete value into %s inside a kernel loop; move the call out of the loop", types.TypeString(pt, types.RelativeTo(pkg.Pkg))))
		}
	}
	return out
}

// checkAssign flags assignments that store a concrete value into an
// already-declared interface variable (x = v where x is interface-typed).
// Short declarations (:=) infer the concrete type and do not box.
func (c *HotLoopIface) checkAssign(pkg *Package, as *ast.AssignStmt) []Finding {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	var out []Finding
	for i, lhs := range as.Lhs {
		ltv, ok := pkg.Info.Types[lhs]
		if !ok || ltv.Type == nil || !types.IsInterface(ltv.Type) {
			continue
		}
		if boxes(pkg.Info, as.Rhs[i]) {
			out = append(out, pkg.finding(c.Name(), as.Rhs[i],
				"assignment boxes a concrete value into an interface inside a kernel loop; hoist the conversion"))
		}
	}
	return out
}

// boxes reports whether passing e where an interface is expected performs a
// concrete→interface conversion: e is typed, non-interface, and not the
// untyped nil.
func boxes(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// callSignature resolves the signature of call's callee, or nil for builtins
// and type conversions.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
