// Package lint is graphite's in-tree static-analysis suite. It enforces the
// invariants the paper's performance claims rest on but the compiler never
// checks: race-free output-parallel aggregation (§4.1, Algorithm 1),
// deterministic simulation (Table 4 comparisons are meaningless if two runs
// of the same configuration diverge), and telemetry kept off the per-edge
// hot path (counters flush per chunk, DESIGN.md).
//
// The framework is built on the standard library only — go/parser, go/ast,
// and go/types with a module-aware importer — because the module carries no
// dependencies and the lint suite must not be the thing that changes that.
// Checkers implement the Checker interface; the cmd/graphite-lint driver and
// the tier-1 lint test both run them over every package in the module.
//
// Findings can be suppressed with an explanatory directive on the flagged
// line or the line above it:
//
//	//lint:ignore check-name reason the code is actually correct
//
// A directive without a reason is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the module.
type Package struct {
	// ImportPath is the package's import path ("graphite/internal/sched").
	ImportPath string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info
}

// Loader parses and type-checks module packages. Stdlib imports are resolved
// by type-checking GOROOT sources (the "source" compiler importer), so the
// loader works without compiled export data and without x/tools.
type Loader struct {
	// Root is the module root directory (the one holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the directory containing go.mod,
// searching upward from dir.
func NewLoader(dir string) (*Loader, error) {
	root, mod, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  mod,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks upward from dir until it finds go.mod and returns the
// module root and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadAll loads every package of the module (skipping testdata and hidden
// directories) and returns them sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(l.Root, path)
				if err != nil {
					return err
				}
				paths = append(paths, l.importPathFor(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// importPathFor maps a root-relative directory to its import path.
func (l *Loader) importPathFor(rel string) string {
	if rel == "." || rel == "" {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// Load type-checks the module package with the given import path.
func (l *Loader) Load(importPath string) (*Package, error) {
	rel := "."
	if importPath != l.Module {
		rest, ok := strings.CutPrefix(importPath, l.Module+"/")
		if !ok {
			return nil, fmt.Errorf("lint: %s is not a module package", importPath)
		}
		rel = filepath.FromSlash(rest)
	}
	return l.LoadDir(filepath.Join(l.Root, rel), importPath)
}

// LoadDir type-checks the sources in dir under the given import path. The
// golden tests use it to analyze testdata packages as if they lived at a
// checker-relevant path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: moduleImporter{l},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, typeErrs[0])
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// moduleImporter resolves module-local imports through the loader and
// everything else (the standard library) through the source importer.
type moduleImporter struct{ l *Loader }

func (im moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == im.l.Module || strings.HasPrefix(path, im.l.Module+"/") {
		pkg, err := im.l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return im.l.std.Import(path)
}
