// Package badalign is golden-test input for the atomic-alignment checker:
// 64-bit sync/atomic operations on struct fields that 32-bit targets place
// off the required 8-byte boundary.
package badalign

import "sync/atomic"

// counters packs a bool ahead of the hot counter: on gc/386 the int64 lands
// at offset 4 and atomic ops on it trap.
type counters struct {
	closed bool
	n      int64
}

// aligned puts the 64-bit fields first (offset 0 and 8 on every target).
type aligned struct {
	n      int64
	m      uint64
	closed bool
}

// padded shows the explicit-padding idiom.
type padded struct {
	closed bool
	_      [7]byte
	n      int64
}

// nested embeds a misaligned struct one level down: inner starts 8-aligned
// but inner.n sits at +4 inside it (12 from the struct base on gc/386).
type nested struct {
	pad   int64
	inner counters
}

// typed relies on atomic.Int64, which the runtime aligns by construction.
type typed struct {
	closed bool
	n      atomic.Int64
}

// Bump exercises good and bad layouts.
func Bump(c *counters, a *aligned, p *padded, nn *nested, t *typed) int64 {
	atomic.AddInt64(&c.n, 1) // want atomic-alignment
	atomic.AddInt64(&a.n, 1)
	atomic.AddUint64(&a.m, 1)
	atomic.AddInt64(&p.n, 1)
	atomic.StoreInt64(&nn.inner.n, 0) // want atomic-alignment
	t.n.Add(1)
	return atomic.LoadInt64(&c.n) // want atomic-alignment
}

// Waived documents a field only ever touched on 64-bit builds.
func Waived(c *counters) {
	//lint:ignore atomic-alignment this code path is amd64-only (build-tagged caller)
	atomic.AddInt64(&c.n, 1)
}
