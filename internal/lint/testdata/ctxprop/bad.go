// Package goldenbadctx is known-bad input for the ctx-propagation checker:
// functions with a context.Context in scope calling the uncancellable sched
// entry points, next to functions that legitimately use them because no
// context has reached them.
package goldenbadctx

import (
	"context"

	"graphite/internal/sched"
)

func fanOut(ctx context.Context, n, threads int, rows []float32) error {
	sched.Dynamic(n, 64, threads, func(s, e int) { // want ctx-propagation
		for i := s; i < e; i++ {
			rows[i] = 0
		}
	})
	cur := sched.NewCursor(n, 64) // want ctx-propagation
	_, _, _ = cur.Next()
	return sched.DynamicCtx(ctx, n, 64, threads, func(s, e int) {}) // clean: ctx variant
}

type opts struct {
	Ctx context.Context
}

func fieldScoped(o opts, n, threads int) {
	_ = o.Ctx
	sched.Static(n, threads, func(s, e int) {}) // want ctx-propagation
}

func telForms(ctx context.Context, n, threads int) {
	_ = ctx
	sched.DynamicTel(n, 64, threads, nil, func(w, s, e int) {}) // want ctx-propagation
	sched.StaticTel(n, threads, nil, func(w, s, e int) {})      // want ctx-propagation
	sched.ForEachThread(threads, func(t int) {})                // want ctx-propagation
}

func pure(n, threads int, rows []float32) {
	sched.Dynamic(n, 64, threads, func(s, e int) { // clean: no ctx in scope
		for i := s; i < e; i++ {
			rows[i] = 0
		}
	})
	cur := sched.NewCursor(n, 64) // clean: no ctx in scope
	_, _, _ = cur.Next()
}

func waived(ctx context.Context, threads int) {
	_ = ctx
	//lint:ignore ctx-propagation best-effort cache warm-up must complete even when the request is cancelled
	sched.ForEachThread(threads, func(t int) {})
}
