// Package badloop is golden-test input for the hotloop-telemetry checker
// (loaded as if it lived in internal/kernels): Sink methods called per
// iteration instead of flushed per chunk.
package badloop

import (
	"context"
	"time"

	"graphite/internal/telemetry"
)

// Aggregate increments counters on the per-vertex and per-edge paths — the
// exact overhead the telemetry layer's contract forbids.
func Aggregate(ptr []int32, tel *telemetry.Sink) {
	for v := 0; v+1 < len(ptr); v++ {
		tel.Inc(telemetry.CtrVerticesAggregated) // want hotloop-telemetry
		for e := ptr[v]; e < ptr[v+1]; e++ {
			tel.Add(telemetry.CtrEdgesAggregated, 1) // want hotloop-telemetry
		}
		if tel.Enabled() { // want hotloop-telemetry
			continue
		}
	}
	for range ptr {
		sp := tel.Begin("vertex") // want hotloop-telemetry
		sp.End()
	}
}

// AggregateChunked is the blessed shape: local sums, one flush per chunk.
func AggregateChunked(ptr []int32, tel *telemetry.Sink) {
	var vertices, edges int64
	for v := 0; v+1 < len(ptr); v++ {
		vertices++
		edges += int64(ptr[v+1] - ptr[v])
	}
	tel.Add(telemetry.CtrVerticesAggregated, vertices)
	tel.Add(telemetry.CtrEdgesAggregated, edges)
}

// ObservePerEdge records a latency sample per iteration — three atomic adds
// on shared bucket cache lines per edge, which serializes the cores.
func ObservePerEdge(ptr []int32, tel *telemetry.Sink) {
	h := tel.Histogram("edge")
	for v := 0; v+1 < len(ptr); v++ {
		start := time.Now()
		tel.Observe("vertex", time.Since(start)) // want hotloop-telemetry
		for e := ptr[v]; e < ptr[v+1]; e++ {
			h.Observe(time.Since(start)) // want hotloop-telemetry
		}
	}
	for range ptr {
		_ = h.Quantile(0.5) // want hotloop-telemetry
	}
}

// ObserveChunked is the blessed shape: time the whole chunk, observe once.
func ObserveChunked(ptr []int32, tel *telemetry.Sink) {
	start := time.Now()
	for v := 0; v+1 < len(ptr); v++ {
		_ = v
	}
	tel.Observe("chunk", time.Since(start))
}

// TracePerVertex opens trace spans per iteration. Trace annotation stops
// at phase granularity (per layer, in gnn); kernels never see traces —
// even the unsampled StartSpan path is a context lookup per call.
func TracePerVertex(ctx context.Context, ptr []int32, tr *telemetry.Trace) {
	tctx, sp := telemetry.StartSpan(ctx, "chunk")
	for v := 0; v+1 < len(ptr); v++ {
		vctx, vsp := telemetry.StartSpan(tctx, "vertex") // want hotloop-telemetry
		_ = vctx
		vsp.End() // want hotloop-telemetry
		for e := ptr[v]; e < ptr[v+1]; e++ {
			tr.AddSpan("edge", time.Now(), 0) // want hotloop-telemetry
		}
	}
	for range ptr {
		tctx = telemetry.JoinTraces(tctx, nil) // want hotloop-telemetry
		if telemetry.Traced(tctx) {            // want hotloop-telemetry
			_ = telemetry.NewTraceID() // want hotloop-telemetry
		}
	}
	sp.End()
}

// TraceChunked is the blessed shape: one span around the whole chunk, no
// per-iteration trace API traffic.
func TraceChunked(ctx context.Context, ptr []int32) {
	_, sp := telemetry.StartSpan(ctx, "chunk")
	for v := 0; v+1 < len(ptr); v++ {
		_ = v
	}
	sp.End()
}

// Waived shows a reasoned waiver for a coarse outer loop where per-iteration
// accounting is the point (e.g. one flush per epoch).
func Waived(epochs int, tel *telemetry.Sink) {
	for i := 0; i < epochs; i++ {
		//lint:ignore hotloop-telemetry epoch granularity, not a hot path
		tel.Inc(telemetry.CtrSchedChunks)
	}
}
