// Package badloop is golden-test input for the hotloop-telemetry checker
// (loaded as if it lived in internal/kernels): Sink methods called per
// iteration instead of flushed per chunk.
package badloop

import "graphite/internal/telemetry"

// Aggregate increments counters on the per-vertex and per-edge paths — the
// exact overhead the telemetry layer's contract forbids.
func Aggregate(ptr []int32, tel *telemetry.Sink) {
	for v := 0; v+1 < len(ptr); v++ {
		tel.Inc(telemetry.CtrVerticesAggregated) // want hotloop-telemetry
		for e := ptr[v]; e < ptr[v+1]; e++ {
			tel.Add(telemetry.CtrEdgesAggregated, 1) // want hotloop-telemetry
		}
		if tel.Enabled() { // want hotloop-telemetry
			continue
		}
	}
	for range ptr {
		sp := tel.Begin("vertex") // want hotloop-telemetry
		sp.End()
	}
}

// AggregateChunked is the blessed shape: local sums, one flush per chunk.
func AggregateChunked(ptr []int32, tel *telemetry.Sink) {
	var vertices, edges int64
	for v := 0; v+1 < len(ptr); v++ {
		vertices++
		edges += int64(ptr[v+1] - ptr[v])
	}
	tel.Add(telemetry.CtrVerticesAggregated, vertices)
	tel.Add(telemetry.CtrEdgesAggregated, edges)
}

// Waived shows a reasoned waiver for a coarse outer loop where per-iteration
// accounting is the point (e.g. one flush per epoch).
func Waived(epochs int, tel *telemetry.Sink) {
	for i := 0; i < epochs; i++ {
		//lint:ignore hotloop-telemetry epoch granularity, not a hot path
		tel.Inc(telemetry.CtrSchedChunks)
	}
}
