// Package goldenbadalloc is known-bad input for the hotloop-alloc checker:
// every allocation class the checker bans, inside for loops, next to clean
// hoisted equivalents that must stay silent.
package goldenbadalloc

func perRow(n int) []float32 {
	var acc []float32
	for i := 0; i < n; i++ {
		buf := make([]float32, 16) // want hotloop-alloc
		_ = buf
		p := new(int) // want hotloop-alloc
		_ = p
		acc = append(acc, float32(i)) // want hotloop-alloc
		s := []int{1, 2, 3}           // want hotloop-alloc
		_ = s
		m := map[int]int{i: i} // want hotloop-alloc
		_ = m
	}
	return acc
}

type vec struct{ x, y float32 }

func labels(names []string) string {
	out := ""
	for _, n := range names {
		out += n        // want hotloop-alloc
		v := &vec{1, 2} // want hotloop-alloc
		_ = v
	}
	var b byte
	for i := range names {
		b = names[i][0] // clean: indexing allocates nothing
	}
	_ = b
	total := ""
	for _, n := range names {
		total = total + n // want hotloop-alloc
	}
	return total + out // clean: concatenation outside any loop
}

func inClosure(n int) {
	for i := 0; i < n; i++ {
		f := func() []int {
			return make([]int, 4) // want hotloop-alloc
		}
		_ = f()
	}
}

func hoisted(n int) []float32 {
	buf := make([]float32, n) // clean: allocation before the loop
	for i := range buf {
		buf[i] = float32(i)
		w := vec{x: 1} // clean: value struct literal stays off the heap
		buf[i] += w.x
	}
	for i := 0; i < 2; i++ {
		//lint:ignore hotloop-alloc setup-only scratch table, fixed two-trip loop outside the per-row path
		_ = make([]int, 1)
	}
	return buf
}
