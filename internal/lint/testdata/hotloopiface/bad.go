// Package goldenbadiface is known-bad input for the hotloop-iface checker:
// interface boxing at call boundaries, explicit conversions, interface
// assignments, and defer — all inside for loops — next to the sanctioned
// patterns (method calls on interfaces, variadic spreads) that must stay
// silent.
package goldenbadiface

type stringer interface{ String() string }

type vec struct{ x float32 }

func (vec) String() string { return "vec" }

func box(v any) any { return v }

func boxAll(vs ...any) int { return len(vs) }

func bad(n int, release func()) {
	var s stringer
	v := vec{x: 1}
	for i := 0; i < n; i++ {
		defer release() // want hotloop-iface
		_ = box(i)      // want hotloop-iface
		_ = boxAll(i)   // want hotloop-iface
		s = v           // want hotloop-iface
		_ = any(i)      // want hotloop-iface
	}
	_ = s
}

func clean(n int, s stringer) string {
	_ = box(n) // clean: boxing outside any loop
	all := []any{n}
	out := 0
	name := ""
	for i := 0; i < n; i++ {
		out += boxAll(all...) // clean: spread passes the existing slice
		name = s.String()     // clean: method call on an interface value
	}
	for i := 0; i < n; i++ {
		//lint:ignore hotloop-iface cold error path, boxes once immediately before returning
		_ = box(i)
	}
	_ = out
	return name
}
