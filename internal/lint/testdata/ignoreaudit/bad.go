// Package goldenbadaudit is known-bad input for the lint-ignore-audit: a
// used directive (silent), a stale directive whose finding is gone, a
// directive naming a checker that does not exist, and a directive with no
// reason.
package goldenbadaudit

import "os"

func emit() {
	//lint:ignore no-stdout the directive below this one is the audited specimen; this one is genuinely used
	os.Stdout.WriteString("x")

	//lint:ignore no-stdout stale, the print it suppressed was deleted // want lint-ignore-audit
	x := 1

	//lint:ignore not-a-real-checker typo that silently suppresses nothing // want lint-ignore-audit
	x += 2

	// want-next lint-ignore-audit
	//lint:ignore no-stdout
	_ = x
}
