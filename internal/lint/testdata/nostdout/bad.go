// Package badprint is golden-test input for the no-stdout checker: library
// code that prints instead of reporting through telemetry or errors.
package badprint

import (
	"fmt"
	"io"
	"log"
	"os"
)

// Noisy exercises every banned output path.
func Noisy(n int) string {
	fmt.Println("progress:", n) // want no-stdout
	fmt.Printf("%d\n", n)       // want no-stdout
	fmt.Print(n)                // want no-stdout
	log.Printf("n=%d", n)       // want no-stdout
	if n < 0 {
		log.Fatal("negative") // want no-stdout
	}
	println("debug", n) // want no-stdout
	var w io.Writer = os.Stdout // want no-stdout
	fmt.Fprintln(w, n)
	// Formatting without writing is fine.
	return fmt.Sprintf("n=%d", n)
}

// Waived shows the suppression syntax: the write is deliberate and carries
// a reasoned directive, so the checker stays quiet.
func Waived() {
	//lint:ignore no-stdout golden-test demonstration of a reasoned waiver
	fmt.Println("allowed")
}

// Malformed directives are themselves findings.
func BadDirective() {
	// want-next lint-directive
	//lint:ignore no-stdout
	_ = 0 // the directive above has no reason
}
