// Package badcapture is golden-test input for the goroutine-capture
// checker: spawned closures writing captured shared state without a
// worker-local partition index — the races that silently corrupt
// output-parallel aggregation (§4.1).
package badcapture

import (
	"sync"

	"graphite/internal/sched"
)

// SumRace accumulates into a captured scalar from every worker.
func SumRace(vals []float64, threads int) float64 {
	var sum float64
	sched.Dynamic(len(vals), 64, threads, func(s, e int) {
		for i := s; i < e; i++ {
			sum += vals[i] // want goroutine-capture
		}
	})
	return sum
}

// IndexRace writes through a captured index: every worker hits the same
// slot decided by the enclosing loop, not by the worker.
func IndexRace(out []int, threads int) {
	for k := range out {
		sched.ForEachThread(threads, func(thread int) {
			out[k] = thread // want goroutine-capture
		})
	}
}

// GoRace spawns a goroutine that flips a captured flag.
func GoRace() {
	done := false
	go func() {
		done = true // want goroutine-capture
	}()
	_ = done
}

// StoredRace binds the closure first and spawns it later.
func StoredRace() {
	count := 0
	bump := func() {
		count++ // want goroutine-capture
	}
	go bump()
}

// Partitioned is the blessed shape: each worker writes rows selected by an
// index it computed from its own chunk bounds.
func Partitioned(out []float64, threads int) {
	sched.Dynamic(len(out), 64, threads, func(s, e int) {
		for i := s; i < e; i++ {
			out[i] = float64(i)
		}
	})
}

// PerWorkerSlots partitions by the worker id itself.
func PerWorkerSlots(threads int) []int64 {
	slots := make([]int64, threads)
	sched.ForEachThread(threads, func(thread int) {
		slots[thread]++
	})
	return slots
}

// Locked shows the reasoned waiver for a genuinely synchronized write.
func Locked(vals []float64, threads int) float64 {
	var mu sync.Mutex
	var sum float64
	sched.Dynamic(len(vals), 64, threads, func(s, e int) {
		var local float64
		for i := s; i < e; i++ {
			local += vals[i]
		}
		mu.Lock()
		//lint:ignore goroutine-capture guarded by mu
		sum += local
		mu.Unlock()
	})
	return sum
}
