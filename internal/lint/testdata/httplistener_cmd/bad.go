// Package goldenbad proves the internal/serve allowlist does not leak:
// command packages — including the serving command itself — still may not
// bind sockets directly. A command that wants a listener goes through
// serve.Server or obsrv.Server, which own drain and probe wiring.
package goldenbad

import (
	"net"
	"net/http"
)

func commandBindsDirectly() {
	_ = http.ListenAndServe(":8080", nil) // want http-listener
	ln, _ := net.Listen("tcp", ":9090")   // want http-listener
	srv := &http.Server{Addr: ":8080"}
	_ = srv.Serve(ln) // want http-listener
}

// throughThePlaneIsFine shows the intended shape: client-side calls to a
// serving plane are untouched.
func throughThePlaneIsFine() {
	_, _ = http.Post("http://127.0.0.1:8080/v1/infer", "application/json", nil)
}
