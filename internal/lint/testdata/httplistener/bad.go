// Package goldenbadhttp exercises the http-listener checker: every way of
// binding a socket or serving HTTP outside internal/obsrv must be flagged,
// and client-side or handler-side use of net/http must not be.
package goldenbadhttp

import (
	"net"
	"net/http"
)

func serveDirectly() {
	_ = http.ListenAndServe(":8080", nil)             // want http-listener
	_ = http.ListenAndServeTLS(":443", "c", "k", nil) // want http-listener
}

func serveOnListener(ln net.Listener) {
	_ = http.Serve(ln, nil)              // want http-listener
	_ = http.ServeTLS(ln, nil, "c", "k") // want http-listener
}

func rawListeners() {
	ln, _ := net.Listen("tcp", ":9090") // want http-listener
	_ = ln
	_, _ = net.ListenPacket("udp", ":53") // want http-listener
}

func serverMethods() {
	srv := &http.Server{Addr: ":8080"}
	_ = srv.ListenAndServe() // want http-listener
	var ln net.Listener
	_ = srv.Serve(ln) // want http-listener
}

func suppressed() {
	//lint:ignore http-listener exercising the suppression path
	_ = http.ListenAndServe(":8081", nil)
}

// clientAndHandlerUseIsFine shows the checker leaves the rest of net/http
// alone: clients, handlers, muxes, and requests are not listener creation.
func clientAndHandlerUseIsFine() {
	_, _ = http.Get("http://127.0.0.1:9090/metrics")
	mux := http.NewServeMux()
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusTeapot)
	})
	_, _ = net.Dial("tcp", "127.0.0.1:9090")
}
