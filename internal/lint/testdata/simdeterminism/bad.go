// Package badsim is golden-test input for the sim-determinism checker under
// the full rule set (loaded as if it lived in internal/memsim): wall-clock
// reads, global rand, and map iteration all break run-to-run replay.
package badsim

import (
	"math/rand"
	"sort"
	"time"
)

// Cycle pretends to advance a simulated clock from nondeterministic inputs.
func Cycle(weights map[int]float64) float64 {
	start := time.Now() // want sim-determinism
	jitter := rand.Float64() // want sim-determinism
	var sum float64
	for _, w := range weights { // want sim-determinism
		sum += w
	}
	_ = time.Since(start) // want sim-determinism
	rand.Shuffle(len(weights), func(i, j int) {}) // want sim-determinism
	return sum + jitter
}

// Replayable is the deterministic counterpart: injected seed, sorted keys.
func Replayable(weights map[int]float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int, 0, len(weights))
	//lint:ignore sim-determinism key collection feeding the sort below; order-insensitive
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += weights[k] * rng.Float64()
	}
	return sum
}

// Clocked shows a reasoned waiver for a wall-clock read that feeds a log
// label rather than simulated time.
func Clocked() int64 {
	//lint:ignore sim-determinism label-only timestamp, never enters simulated time
	return time.Now().UnixNano()
}
