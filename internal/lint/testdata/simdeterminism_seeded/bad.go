// Package badseed is golden-test input for the sim-determinism checker
// under the seeded-package rule set (loaded as if it lived in
// internal/tensor): only global math/rand state is banned there — timing
// and map iteration are the model packages' own business.
package badseed

import (
	"math/rand"
	"time"
)

// Init mixes allowed and banned randomness.
func Init(vals []float32, seed int64) time.Duration {
	start := time.Now() // timing model outputs is fine outside the simulator
	rng := rand.New(rand.NewSource(seed))
	for i := range vals {
		vals[i] = rng.Float32()
	}
	rand.Seed(seed) // want sim-determinism
	vals[0] = rand.Float32() // want sim-determinism
	order := map[int]bool{0: true}
	for range order { // maps allowed here; ordering is the simulator's concern
	}
	return time.Since(start)
}
