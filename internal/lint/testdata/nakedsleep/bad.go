// Package goldenbadsleep exercises the naked-sleep checker: every
// time.Sleep in the serve plane must be flagged; ctx-aware waits and other
// uses of package time must not be.
package goldenbadsleep

import (
	"context"
	"time"
)

func retryLoop() {
	for i := 0; i < 3; i++ {
		time.Sleep(100 * time.Millisecond) // want naked-sleep
	}
}

func backoff(d time.Duration) {
	time.Sleep(d) // want naked-sleep
}

// sleepValue shows the checker catches the function value too, not just
// direct calls: handing time.Sleep to a helper is the same wait.
func sleepValue() func(time.Duration) {
	return time.Sleep // want naked-sleep
}

func suppressed() {
	//lint:ignore naked-sleep exercising the suppression path
	time.Sleep(time.Millisecond)
}

// ctxAwareWaitIsFine is the required shape: the wait loses the race against
// cancellation, so drains and deadlines cut it short.
func ctxAwareWaitIsFine(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// otherTimeUseIsFine shows the checker leaves the rest of package time
// alone: timers, tickers, measurements and arithmetic are not sleeps.
func otherTimeUseIsFine() time.Duration {
	start := time.Now()
	tick := time.NewTicker(time.Second)
	tick.Stop()
	<-time.After(0)
	return time.Since(start)
}
