// Package badgorecover is golden-test input for the goroutine-recover
// checker: library code spawning goroutines directly instead of through
// internal/sched, so a panic in the spawned function kills the process
// rather than surfacing as a *sched.WorkerError.
package badgorecover

import "sync"

// FireAndForget launches an unsupervised goroutine.
func FireAndForget(work func()) {
	go work() // want goroutine-recover
}

// HandRolledPool re-implements a worker pool outside the scheduler.
func HandRolledPool(n int, body func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) { // want goroutine-recover
			defer wg.Done()
			body(i)
		}(i)
	}
	wg.Wait()
}

// BoundLaunch spawns through a named function literal; still a bare
// goroutine.
func BoundLaunch(done chan<- struct{}) {
	f := func() { close(done) }
	go f() // want goroutine-recover
}

// SupervisedExternally is allowed to keep its goroutine because it carries a
// suppression naming its recovery story.
func SupervisedExternally(work func()) {
	//lint:ignore goroutine-recover wrapped in recover by the caller's supervisor
	go work()
}
