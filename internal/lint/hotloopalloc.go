package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotLoopAlloc bans allocation in the kernel packages' for loops: the
// zero-allocation contract of ROADMAP 3. The aggregation inner loops run
// once per vertex and once per edge; a single `make` or growing `append`
// there turns the bandwidth-bound phase the paper optimizes into a
// GC-bound one. Allocation belongs in setup code (constructors, argument
// validation) — per-iteration buffers must be hoisted, preallocated, or
// arena-reused.
//
// Flagged inside any for/range body of a covered package:
//
//   - make(...) and new(...)
//   - append(...) — growth reallocates; preallocate to final capacity
//     outside the loop and index instead
//   - &T{...}, []T{...}, map[...]{...} composite literals (heap backing)
//   - string concatenation (+ / += on strings builds a fresh string per
//     iteration)
type HotLoopAlloc struct {
	// Module is the module path used to resolve covered packages.
	Module string
}

// allocPkgs are the packages whose loops must not allocate: the hot-path
// trio plus internal/compress, whose row codecs run once per edge gather
// when aggregation reads compressed features (§4.3).
var allocPkgs = []string{"internal/kernels", "internal/sparse", "internal/tensor", "internal/compress"}

// Name implements Checker.
func (*HotLoopAlloc) Name() string { return "hotloop-alloc" }

// Doc implements Checker.
func (*HotLoopAlloc) Doc() string {
	return "kernel packages must not allocate inside for loops (no make/new/append/composite literals/string concat); hoist or preallocate"
}

// Applies implements Checker.
func (c *HotLoopAlloc) Applies(importPath string) bool {
	return matchesAny(importPath, c.Module, allocPkgs)
}

// Check implements Checker.
func (c *HotLoopAlloc) Check(pkg *Package) []Finding {
	var out []Finding
	report := func(node ast.Node, format string, args ...any) {
		out = append(out, pkg.finding(c.Name(), node, format, args...))
	}
	inLoop := func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						report(n, "make inside a kernel loop allocates per iteration; preallocate outside the loop")
					case "new":
						report(n, "new inside a kernel loop allocates per iteration; hoist the value outside the loop")
					case "append":
						report(n, "append inside a kernel loop reallocates on growth; preallocate to final capacity and index")
					}
				}
			}
		case *ast.CompositeLit:
			if isAllocatingLit(pkg.Info, n) {
				report(n, "composite literal inside a kernel loop allocates; hoist the value or reuse a buffer")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := n.X.(*ast.CompositeLit); ok {
					report(lit, "&composite literal inside a kernel loop escapes to the heap; reuse one allocation")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pkg.Info, n.X) {
				report(n, "string concatenation inside a kernel loop allocates; use a preallocated builder outside the loop")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pkg.Info, n.Lhs[0]) {
				report(n, "string += inside a kernel loop allocates per iteration; use a preallocated builder outside the loop")
			}
		}
	}
	for _, file := range pkg.Files {
		walkLoops(file, inLoop)
	}
	return dedupeFindings(out)
}

// isAllocatingLit reports whether lit needs heap-backed storage regardless
// of escape analysis: slice and map literals always allocate their backing;
// plain struct/array value literals can live in registers or on the stack
// and are only flagged when their address is taken (the UnaryExpr case).
func isAllocatingLit(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// isString reports whether e has string type.
func isString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// walkLoops calls fn on every node lexically inside a for/range body
// (including nested function literals — a closure defined in a loop runs in
// the loop). Loop init/cond/post clauses and range operands execute once
// per loop entry or once per iteration header, and both matter, so they are
// included once the walker is inside any loop.
func walkLoops(root ast.Node, fn func(ast.Node)) {
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			walk(n.Init, depth)
			walk(n.Cond, depth+1)
			walk(n.Post, depth+1)
			walk(n.Body, depth+1)
			return
		case *ast.RangeStmt:
			walk(n.X, depth)
			walk(n.Body, depth+1)
			return
		}
		if depth > 0 {
			fn(n)
		}
		for _, child := range childNodes(n) {
			walk(child, depth)
		}
	}
	walk(root, 0)
}

// dedupeFindings drops exact duplicates (same position, check, message) —
// the &lit case would otherwise double-report the literal via both the
// UnaryExpr and CompositeLit arms.
func dedupeFindings(in []Finding) []Finding {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, f := range in {
		k := f.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}
