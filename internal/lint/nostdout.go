package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoStdout enforces the observability contract: library packages report
// through telemetry and returned errors, never by printing. Only cmd/,
// examples/, and test files may write to the process streams. It replaces
// the string-grep TestNoStdoutWritesInLibrary from the telemetry PR with a
// type-resolved check (a local variable named fmt no longer confuses it).
type NoStdout struct {
	// Module is the module path; the checker covers the module root
	// package and everything under internal/.
	Module string
}

// bannedFmt are the fmt functions that write to os.Stdout.
var bannedFmt = map[string]bool{"Print": true, "Printf": true, "Println": true}

// bannedLog are the log-package functions that write to the default logger
// (stderr) or abort the process — both off-limits for library code.
var bannedLog = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// Name implements Checker.
func (*NoStdout) Name() string { return "no-stdout" }

// Doc implements Checker.
func (*NoStdout) Doc() string {
	return "library packages must not write to stdout/stderr or the default logger"
}

// Applies implements Checker.
func (c *NoStdout) Applies(importPath string) bool {
	return importPath == c.Module || strings.HasPrefix(importPath, c.Module+"/internal/")
}

// Check implements Checker.
func (c *NoStdout) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				path, name, ok := pkgSelector(pkg.Info, n)
				if !ok {
					return true
				}
				switch {
				case path == "os" && (name == "Stdout" || name == "Stderr"):
					out = append(out, pkg.finding(c.Name(), n,
						"library code references os.%s; return errors or thread an io.Writer instead", name))
				case path == "fmt" && bannedFmt[name]:
					out = append(out, pkg.finding(c.Name(), n,
						"library code writes to stdout via fmt.%s; report through telemetry or returned errors", name))
				case path == "log" && bannedLog[name]:
					out = append(out, pkg.finding(c.Name(), n,
						"library code uses log.%s; report through telemetry or returned errors", name))
				}
			case *ast.Ident:
				if b, ok := pkg.Info.Uses[n].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
					out = append(out, pkg.finding(c.Name(), n,
						"library code calls builtin %s (writes to stderr)", b.Name()))
				}
			}
			return true
		})
	}
	return out
}
