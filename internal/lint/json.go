package lint

import (
	"encoding/json"
	"io"
)

// jsonFinding is the ndjson wire form of one finding, stable for tooling:
// one object per line, keys fixed, no envelope.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// WriteNDJSON writes findings to w as newline-delimited JSON, one finding
// per line, in the order given (Run already sorts by position). An empty
// findings list writes nothing: consumers treat zero lines as a clean run.
func WriteNDJSON(w io.Writer, findings []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		if err := enc.Encode(jsonFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
		}); err != nil {
			return err
		}
	}
	return nil
}

// ParseNDJSON decodes a WriteNDJSON stream back into findings — the format
// test's round trip, and available to tooling that post-processes reports.
func ParseNDJSON(r io.Reader) ([]Finding, error) {
	dec := json.NewDecoder(r)
	var out []Finding
	for dec.More() {
		var jf jsonFinding
		if err := dec.Decode(&jf); err != nil {
			return nil, err
		}
		f := Finding{Check: jf.Check, Message: jf.Message}
		f.Pos.Filename = jf.File
		f.Pos.Line = jf.Line
		f.Pos.Column = jf.Col
		out = append(out, f)
	}
	return out, nil
}
