package lint

import (
	"go/ast"
	"go/types"
)

// AtomicAlign guards the sync/atomic 64-bit alignment contract. The
// telemetry counters and scheduler cursors lean on 64-bit atomics for the
// race-free output-parallel invariant (§4.1), and on 32-bit targets the
// Go runtime only guarantees 8-byte alignment for the first word of a
// struct — atomic.AddInt64 on a misaligned field panics at runtime. The
// checker recomputes struct offsets with 32-bit (gc/386) sizes, so a layout
// that happens to align on amd64 but traps on 386/arm is still caught.
// Fields of type atomic.Int64/Uint64 are exempt: the runtime aligns those
// types by construction.
type AtomicAlign struct{}

// atomic64Funcs are the sync/atomic operations requiring 8-byte alignment.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// Name implements Checker.
func (*AtomicAlign) Name() string { return "atomic-alignment" }

// Doc implements Checker.
func (*AtomicAlign) Doc() string {
	return "struct fields passed to 64-bit sync/atomic ops must be 8-byte aligned on 32-bit targets"
}

// Applies implements Checker.
func (*AtomicAlign) Applies(string) bool { return true }

// Check implements Checker.
func (c *AtomicAlign) Check(pkg *Package) []Finding {
	// Worst-case target: 4-byte words, so only offset-0 and explicitly
	// padded fields land on 8-byte boundaries.
	sizes := types.SizesFor("gc", "386")
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgSelector(pkg.Info, sel)
			if !ok || path != "sync/atomic" || !atomic64Funcs[name] {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op.String() != "&" {
				return true
			}
			fieldSel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pkg.Info.Selections[fieldSel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			off, known := fieldOffset32(sizes, s)
			if known && off%8 != 0 {
				out = append(out, pkg.finding(c.Name(), call,
					"atomic.%s on field %s at 32-bit offset %d (not 8-byte aligned); make it the first field or pad to 8 bytes, or use atomic.Int64",
					name, fieldSel.Sel.Name, off))
			}
			return true
		})
	}
	return out
}

// fieldOffset32 walks the selection's field path and sums offsets under the
// given (32-bit) sizes. known is false when the path crosses a non-struct
// step (e.g. a generic type parameter) and no offset can be computed.
func fieldOffset32(sizes types.Sizes, s *types.Selection) (off int64, known bool) {
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	for _, idx := range s.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		off += sizes.Offsetsof(fields)[idx]
		t = st.Field(idx).Type()
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			// An embedded-pointer hop restarts the offset computation in
			// the pointed-to allocation, whose own base alignment is
			// unknown here; stay conservative and stop.
			_ = ptr
			return 0, false
		}
	}
	return off, true
}
