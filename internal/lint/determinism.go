package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimDeterminism enforces reproducible runs. Table-4-style comparisons
// between simulator configurations are only meaningful when the same inputs
// produce the same cycle counts, so the simulator packages (internal/memsim,
// internal/simgnn) must not read the wall clock, draw from the global
// math/rand state, or iterate maps (whose order changes run to run) on any
// path that feeds ordered output.
//
// The randomness rule additionally covers internal/tensor, internal/gnn,
// and internal/locality: everything random there flows through an injected,
// seeded *rand.Rand, so training runs replay exactly.
type SimDeterminism struct {
	// Module is the module path used to resolve covered packages.
	Module string
}

// simPkgs get the full rule set: wall clock, global rand, and map ranges.
var simPkgs = []string{"internal/memsim", "internal/simgnn"}

// seededPkgs get only the global-rand rule: they may time themselves (their
// timings are outputs, not inputs), but all randomness must be injected.
var seededPkgs = []string{"internal/tensor", "internal/gnn", "internal/locality", "internal/faultinject"}

// bannedRandFuncs are the math/rand (and math/rand/v2) top-level functions
// backed by the shared global source. Constructors (New, NewSource, NewZipf,
// NewPCG, ...) are fine: a *rand.Rand built from an explicit seed is
// deterministic.
var bannedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// Name implements Checker.
func (*SimDeterminism) Name() string { return "sim-determinism" }

// Doc implements Checker.
func (*SimDeterminism) Doc() string {
	return "simulator packages must be deterministic: no wall clock, no global rand, no map iteration; model packages must inject seeded *rand.Rand"
}

func (c *SimDeterminism) fullRules(importPath string) bool {
	return matchesAny(importPath, c.Module, simPkgs)
}

// Applies implements Checker.
func (c *SimDeterminism) Applies(importPath string) bool {
	return c.fullRules(importPath) || matchesAny(importPath, c.Module, seededPkgs)
}

// matchesAny reports whether importPath is one of the module-relative
// package paths or below it.
func matchesAny(importPath, module string, rels []string) bool {
	for _, rel := range rels {
		full := module + "/" + rel
		if importPath == full || strings.HasPrefix(importPath, full+"/") {
			return true
		}
	}
	return false
}

// Check implements Checker.
func (c *SimDeterminism) Check(pkg *Package) []Finding {
	full := c.fullRules(pkg.ImportPath)
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				path, name, ok := pkgSelector(pkg.Info, n)
				if !ok {
					return true
				}
				switch {
				case full && path == "time" && (name == "Now" || name == "Since" || name == "Until"):
					out = append(out, pkg.finding(c.Name(), n,
						"simulator reads the wall clock (time.%s); model time with cycle counters so runs replay exactly", name))
				case (path == "math/rand" || path == "math/rand/v2") && bannedRandFuncs[name]:
					out = append(out, pkg.finding(c.Name(), n,
						"global rand.%s draws from shared process-wide state; inject a seeded *rand.Rand instead", name))
				}
			case *ast.RangeStmt:
				if !full {
					return true
				}
				if tv, ok := pkg.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						out = append(out, pkg.finding(c.Name(), n,
							"map iteration order is nondeterministic; iterate a sorted key slice instead"))
					}
				}
			}
			return true
		})
	}
	return out
}
