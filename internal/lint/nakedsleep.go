package lint

import (
	"go/ast"
	"strings"
)

// NakedSleep bans time.Sleep in the serve plane. A sleeping goroutine in
// internal/serve ignores request deadlines, shutdown, and the chaos
// harness's fault clocks: a drain can stall behind it and a cancelled
// request keeps burning a worker. Every wait in the serve plane must be
// ctx-aware — a select over ctx.Done() with a timer channel, or a
// time.Timer the surrounding select can abandon. Test files are exempt
// (the loader already skips them); deliberate exceptions carry a
// //lint:ignore naked-sleep directive with a reason.
type NakedSleep struct {
	// Module is the module path; internal/serve and its subpackages are
	// covered.
	Module string
}

// Name implements Checker.
func (*NakedSleep) Name() string { return "naked-sleep" }

// Doc implements Checker.
func (*NakedSleep) Doc() string {
	return "time.Sleep is banned in internal/serve; waits must be ctx-aware (select over ctx.Done() and a timer)"
}

// Applies implements Checker.
func (c *NakedSleep) Applies(importPath string) bool {
	serve := c.Module + "/internal/serve"
	return importPath == serve || strings.HasPrefix(importPath, serve+"/")
}

// Check implements Checker.
func (c *NakedSleep) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgSelector(pkg.Info, sel); ok && path == "time" && name == "Sleep" {
				out = append(out, pkg.finding(c.Name(), sel,
					"time.Sleep in the serve plane ignores deadlines and shutdown; select over ctx.Done() and a timer instead"))
			}
			return true
		})
	}
	return out
}
