package lint

import (
	"fmt"
	"sort"
)

// AuditIgnores reviews every //lint:ignore directive in pkgs against what
// the checkers actually report. A directive is debt documentation: it must
// name a real checker, carry a reason (malformed directives are re-reported
// here), and still suppress at least one finding — when the flagged code is
// fixed or deleted, the directive must go with it, otherwise it is a
// standing invitation to reintroduce the violation silently.
//
// Returned findings use the check name "lint-ignore-audit".
func AuditIgnores(pkgs []*Package, checkers []Checker) []Finding {
	known := make(map[string]bool, len(checkers))
	for _, c := range checkers {
		known[c.Name()] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		sup := newSuppressions(pkg)
		for _, f := range sup.malformed {
			f.Check = "lint-ignore-audit"
			out = append(out, f)
		}
		var raw []Finding
		for _, c := range checkers {
			if !c.Applies(pkg.ImportPath) {
				continue
			}
			raw = append(raw, c.Check(pkg)...)
		}
		for _, d := range sup.directives {
			switch {
			case !known[d.check]:
				out = append(out, Finding{
					Pos:     d.pos,
					Check:   "lint-ignore-audit",
					Message: fmt.Sprintf("directive suppresses unknown checker %q (see -list)", d.check),
				})
			case !directiveUsed(d, raw):
				out = append(out, Finding{
					Pos:     d.pos,
					Check:   "lint-ignore-audit",
					Message: fmt.Sprintf("stale directive: no %s finding on this line or the next; delete the ignore", d.check),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// directiveUsed reports whether d suppresses any raw finding: same file,
// matching check, on the directive's line or the line below it (the same
// coverage rule suppressions.covers applies).
func directiveUsed(d directive, raw []Finding) bool {
	for _, f := range raw {
		if f.Check != d.check || f.Pos.Filename != d.pos.Filename {
			continue
		}
		if f.Pos.Line == d.pos.Line || f.Pos.Line == d.pos.Line+1 {
			return true
		}
	}
	return false
}
