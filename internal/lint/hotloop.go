package lint

import (
	"go/ast"
	"go/types"
)

// HotLoopTelemetry keeps instrumentation off the kernel hot paths. The
// telemetry layer's contract (and the reason it can stay enabled in
// production runs) is that kernels sum counts locally and flush once per
// claimed chunk — one atomic per chunk, nothing per vertex or per edge. Any
// telemetry.Sink or telemetry.Histogram method call lexically inside a for
// loop in the kernel packages (internal/kernels, internal/sparse,
// internal/tensor) re-acquires the sink (or adds per-iteration atomics) and
// is flagged.
//
// The same contract covers request tracing: trace annotation stops at
// phase granularity (per layer, in internal/gnn), so Trace/TraceSpan
// method calls and the package-level tracing entry points (StartSpan,
// JoinTraces, NewTrace, ...) inside kernel loops are flagged too — even
// the unsampled fast path is a context lookup per call, and a sampled one
// allocates span records per iteration.
type HotLoopTelemetry struct {
	// Module is the module path used to resolve covered packages.
	Module string
}

// hotPkgs are the kernel packages whose loops are the paper's hot paths.
var hotPkgs = []string{"internal/kernels", "internal/sparse", "internal/tensor"}

// Name implements Checker.
func (*HotLoopTelemetry) Name() string { return "hotloop-telemetry" }

// Doc implements Checker.
func (*HotLoopTelemetry) Doc() string {
	return "kernel packages must not call telemetry sink, histogram, or tracing APIs inside for loops (flush per chunk; trace at phase granularity)"
}

// Applies implements Checker.
func (c *HotLoopTelemetry) Applies(importPath string) bool {
	return matchesAny(importPath, c.Module, hotPkgs)
}

// Check implements Checker.
func (c *HotLoopTelemetry) Check(pkg *Package) []Finding {
	telemetryPath := c.Module + "/internal/telemetry"
	var out []Finding
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			walk(n.Init, loopDepth)
			walk(n.Cond, loopDepth)
			walk(n.Post, loopDepth)
			walk(n.Body, loopDepth+1)
			return
		case *ast.RangeStmt:
			walk(n.X, loopDepth)
			walk(n.Body, loopDepth+1)
			return
		case *ast.SelectorExpr:
			if loopDepth > 0 {
				if recv, ok := telemetryRecv(pkg.Info, n, telemetryPath); ok {
					out = append(out, pkg.finding(c.Name(), n,
						"telemetry.%s.%s inside a for loop; accumulate locally and flush once per chunk", recv, n.Sel.Name))
				} else if fn, ok := telemetryFunc(pkg.Info, n, telemetryPath); ok {
					out = append(out, pkg.finding(c.Name(), n,
						"telemetry.%s inside a for loop; trace annotation stops at phase granularity — kernels never trace", fn))
				}
			}
		}
		for _, child := range childNodes(n) {
			walk(child, loopDepth)
		}
	}
	for _, file := range pkg.Files {
		walk(file, 0)
	}
	return out
}

// hotTelemetryTypes are the telemetry receivers whose methods touch shared
// state per call: the Sink itself, the latency Histogram (three atomic
// adds per Observe — per-edge use would serialize the cores on the bucket
// cache lines), and the request-tracing handles (a span record append
// under a mutex per call).
var hotTelemetryTypes = map[string]bool{
	"Sink": true, "Histogram": true, "Trace": true, "TraceSpan": true,
}

// hotTelemetryFuncs are the package-level tracing entry points. Even the
// unsampled StartSpan fast path costs a context lookup per call, and a
// sampled one allocates — per-iteration use defeats the zero-overhead
// contract either way.
var hotTelemetryFuncs = map[string]bool{
	"StartSpan": true, "JoinTraces": true, "NewTrace": true,
	"NewTraceID": true, "Traced": true, "ContextTraceID": true,
}

// telemetryFunc reports whether sel selects one of the telemetry package's
// tracing functions (package-qualified call, not a method).
func telemetryFunc(info *types.Info, sel *ast.SelectorExpr, telemetryPath string) (string, bool) {
	obj, ok := info.Uses[sel.Sel]
	if !ok {
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != telemetryPath {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false // methods are telemetryRecv's business
	}
	if !hotTelemetryFuncs[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}

// telemetryRecv reports whether sel selects a method of one of the
// telemetry hot types (directly or through a pointer), returning the
// receiver type name.
func telemetryRecv(info *types.Info, sel *ast.SelectorExpr, telemetryPath string) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != telemetryPath || !hotTelemetryTypes[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// childNodes returns n's direct children. ast.Inspect cannot be used in
// Check because the loop-depth bookkeeping needs pre-order control over
// recursion into for bodies.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if m == n {
			return true
		}
		out = append(out, m)
		return false
	})
	return out
}
