package lint

import (
	"go/ast"
	"strings"
)

// GoroutineRecover enforces the module's panic-containment topology: library
// packages may only spawn goroutines through internal/sched, whose workers
// run under a deferred recover that captures panics into *sched.WorkerError.
// A direct `go func` anywhere else creates a goroutine whose panic kills the
// whole process, bypassing the fault-tolerant execution layer that the
// public API's error contract depends on.
//
// internal/sched itself is exempt (it is the containment point), as are the
// main packages under cmd/ and examples/ (process-lifetime helpers such as
// signal listeners are fine there — a panic in main-package code was always
// fatal). Tests are not loaded by the lint driver, so test-only goroutines
// are unaffected. A deliberate exception in library code can carry a
// //lint:ignore goroutine-recover directive naming its recovery story.
type GoroutineRecover struct {
	// Module is the module path used to resolve exempt packages.
	Module string
}

// Name implements Checker.
func (*GoroutineRecover) Name() string { return "goroutine-recover" }

// Doc implements Checker.
func (*GoroutineRecover) Doc() string {
	return "library packages must spawn goroutines through internal/sched so panics are contained"
}

// Applies implements Checker.
func (c *GoroutineRecover) Applies(importPath string) bool {
	if importPath == c.Module+"/internal/sched" {
		return false
	}
	for _, exempt := range []string{"/cmd/", "/examples/"} {
		if strings.Contains(importPath+"/", c.Module+exempt) {
			return false
		}
	}
	return true
}

// Check implements Checker.
func (c *GoroutineRecover) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				out = append(out, pkg.finding(c.Name(), g,
					"go statement outside internal/sched: spawn workers via sched.Dynamic/Static/ForEachThread (or their Ctx forms) so a panic becomes a *sched.WorkerError instead of killing the process"))
			}
			return true
		})
	}
	return out
}
