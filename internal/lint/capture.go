package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCapture guards the race-free output-parallel invariant of
// Algorithm 1 (§4.1): every worker must own a disjoint partition of the
// output, identified by an index it computed itself. A closure that runs
// concurrently — passed to a go statement or to the sched package's worker
// drivers (Dynamic*, Static*, ForEachThread) — and writes through captured
// shared state without any worker-local index in the access path is almost
// always a data race: either a direct write to a captured variable
// (sum += x) or an indexed write whose index is itself captured
// (out[i] with i from an enclosing range).
//
// Writes whose access path involves at least one closure-local variable
// (parameters like worker/start/end, or derived locals) are treated as
// partitioned and allowed; genuinely synchronized shared writes can carry a
// //lint:ignore goroutine-capture directive naming the lock.
type GoroutineCapture struct {
	// Module is the module path; every module package is covered.
	Module string
}

// spawnFuncs are the sched entry points that run their closure argument on
// worker goroutines.
var spawnFuncs = map[string]bool{
	"Dynamic": true, "DynamicTel": true,
	"DynamicCtx": true, "DynamicTelCtx": true,
	"Static": true, "StaticTel": true,
	"StaticCtx": true, "StaticTelCtx": true,
	"ForEachThread": true, "ForEachThreadCtx": true,
	"ForEachThreadTelCtx": true,
}

// Name implements Checker.
func (*GoroutineCapture) Name() string { return "goroutine-capture" }

// Doc implements Checker.
func (*GoroutineCapture) Doc() string {
	return "spawned closures must not write captured shared state without a worker-local index partition"
}

// Applies implements Checker.
func (*GoroutineCapture) Applies(string) bool { return true }

// Check implements Checker.
func (c *GoroutineCapture) Check(pkg *Package) []Finding {
	schedPath := c.Module + "/internal/sched"
	var out []Finding
	for _, file := range pkg.Files {
		// First pass: function literals bound to variables, so that
		// `f := func(){...}; go f()` is caught too.
		bound := make(map[types.Object]*ast.FuncLit)
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				fl, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(as.Lhs) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := pkg.Info.Defs[id]; obj != nil {
						bound[obj] = fl
					} else if obj := pkg.Info.Uses[id]; obj != nil {
						bound[obj] = fl
					}
				}
			}
			return true
		})

		seen := make(map[*ast.FuncLit]bool)
		report := func(fl *ast.FuncLit) {
			if !seen[fl] {
				seen[fl] = true
				out = append(out, c.analyze(pkg, fl)...)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				switch fun := n.Call.Fun.(type) {
				case *ast.FuncLit:
					report(fun)
				case *ast.Ident:
					if fl, ok := bound[pkg.Info.Uses[fun]]; ok {
						report(fl)
					}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				path, name, ok := pkgSelector(pkg.Info, sel)
				if !ok || path != schedPath || !spawnFuncs[name] {
					return true
				}
				for _, arg := range n.Args {
					switch arg := arg.(type) {
					case *ast.FuncLit:
						report(arg)
					case *ast.Ident:
						if fl, ok := bound[pkg.Info.Uses[arg]]; ok {
							report(fl)
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// analyze flags unpartitioned writes to captured state inside the spawned
// closure fl.
func (c *GoroutineCapture) analyze(pkg *Package, fl *ast.FuncLit) []Finding {
	isLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End()
	}
	var out []Finding
	flagWrite := func(target ast.Expr) {
		w := classifyWrite(pkg.Info, target)
		if w.root == nil || isLocal(w.root) {
			return
		}
		for _, idx := range w.indices {
			if refsLocal(pkg.Info, idx, isLocal) {
				return
			}
		}
		if len(w.indices) == 0 {
			out = append(out, pkg.finding(c.Name(), target,
				"spawned closure writes captured variable %s; every concurrent write to shared state is a race — accumulate locally and merge, or partition by worker index", w.root.Name()))
		} else {
			out = append(out, pkg.finding(c.Name(), target,
				"spawned closure writes through captured %s with no worker-local index; partition the output by an index the worker computed (Algorithm 1's race-free invariant)", w.root.Name()))
		}
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				flagWrite(lhs)
			}
		case *ast.IncDecStmt:
			flagWrite(n.X)
		}
		return true
	})
	return out
}

// write describes one assignment target: the root object written through
// and the index/argument expressions along the access path that could
// partition it.
type write struct {
	root    types.Object
	indices []ast.Expr
}

// classifyWrite walks an assignment target down to its root identifier,
// collecting index expressions (out[i]) and call arguments (m.Row(i)[j])
// that may carry a worker-local partition.
func classifyWrite(info *types.Info, e ast.Expr) write {
	var w write
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			w.indices = append(w.indices, t.Index)
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			// A package-qualified global (pkg.Var) roots at the var; a
			// field path (s.f) continues through the receiver.
			if _, _, ok := pkgSelector(info, t); ok {
				w.root = info.Uses[t.Sel]
				return w
			}
			e = t.X
		case *ast.CallExpr:
			// Writing into a call result (m.Row(v)[j] = x) aliases the
			// callee's receiver; the arguments are the partition indices.
			w.indices = append(w.indices, t.Args...)
			e = t.Fun
		case *ast.Ident:
			if obj := info.Uses[t]; obj != nil {
				w.root = obj
			}
			return w
		default:
			return w
		}
	}
}

// refsLocal reports whether expr mentions any object satisfying isLocal.
func refsLocal(info *types.Info, expr ast.Expr, isLocal func(types.Object) bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && isLocal(info.Uses[id]) {
			found = true
		}
		return !found
	})
	return found
}
