package lint

import (
	"go/ast"
	"go/types"
)

// CtxPropagation enforces PR 4's cancellation contract at the scheduler
// boundary: once a context.Context has reached a function in the layers
// above the kernels (gnn, dma, graph), fanning work out through the
// uncancellable sched entry points silently severs the cancellation chain —
// a cancelled training run or a timed-out inference request would keep all
// cores busy until the phase finishes. Any call to sched.Dynamic/Static/
// ForEachThread (and their Tel forms, and NewCursor) from a function that
// has a context.Context in scope must use the *Ctx variant and pass the
// context on.
//
// Functions with no context in scope (pure computational helpers) keep the
// legacy entry points: the uncancellable fast path is the right default
// when there is nothing to propagate.
type CtxPropagation struct {
	// Module is the module path used to resolve covered packages.
	Module string
}

// ctxPkgs are the orchestration packages between the public API and the
// kernels, where contexts arrive and scheduling decisions are made.
var ctxPkgs = []string{"internal/gnn", "internal/dma", "internal/graph"}

// uncancellableSched maps each non-ctx sched entry point to its ctx variant.
var uncancellableSched = map[string]string{
	"Dynamic":          "DynamicCtx",
	"DynamicTel":       "DynamicTelCtx",
	"Static":           "StaticCtx",
	"StaticTel":        "StaticTelCtx",
	"ForEachThread":    "ForEachThreadCtx",
	"ForEachThreadTel": "ForEachThreadTelCtx",
	"NewCursor":        "NewCursorCtx",
}

// Name implements Checker.
func (*CtxPropagation) Name() string { return "ctx-propagation" }

// Doc implements Checker.
func (*CtxPropagation) Doc() string {
	return "gnn/dma/graph functions with a context.Context in scope must call the sched *Ctx variants, not the uncancellable entry points"
}

// Applies implements Checker.
func (c *CtxPropagation) Applies(importPath string) bool {
	return matchesAny(importPath, c.Module, ctxPkgs)
}

// Check implements Checker.
func (c *CtxPropagation) Check(pkg *Package) []Finding {
	schedPath := c.Module + "/internal/sched"
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !ctxInScope(pkg.Info, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if path, name, ok := pkgSelector(pkg.Info, sel); ok && path == schedPath {
					if ctxName, banned := uncancellableSched[name]; banned {
						out = append(out, pkg.finding(c.Name(), call,
							"sched.%s with a context.Context in scope severs cancellation; use sched.%s and pass the context", name, ctxName))
					}
				}
				return true
			})
		}
	}
	return out
}

// ctxInScope reports whether any value of type context.Context is visible
// inside fd: a parameter, a local definition (including closure parameters
// declared within), or a field access like opts.Ctx whose type is
// context.Context.
func ctxInScope(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj, ok := info.Defs[n]; ok && obj != nil && isContextType(obj.Type()) {
				found = true
			}
			if obj, ok := info.Uses[n]; ok && obj != nil && isContextType(obj.Type()) {
				found = true
			}
		case *ast.SelectorExpr:
			if tv, ok := info.Types[ast.Expr(n)]; ok && tv.Type != nil && isContextType(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
