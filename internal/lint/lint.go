package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one reported violation.
type Finding struct {
	// Pos locates the violation.
	Pos token.Position
	// Check is the reporting checker's name.
	Check string
	// Message explains the violation and the fix.
	Message string
}

// String renders the driver's file:line: [check-name] message format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Message)
}

// Checker is one invariant check run over type-checked packages.
type Checker interface {
	// Name is the kebab-case identifier used in reports and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description of the invariant.
	Doc() string
	// Applies reports whether the checker analyzes the package with the
	// given import path.
	Applies(importPath string) bool
	// Check reports violations in pkg. Suppression is handled by the
	// framework; checkers report everything they find.
	Check(pkg *Package) []Finding
}

// Checkers returns the full suite for the given module path, sorted by
// checker name so report order, -list output, and the golden tests are
// independent of registration order.
func Checkers(module string) []Checker {
	cs := []Checker{
		&NoStdout{Module: module},
		&SimDeterminism{Module: module},
		&HotLoopTelemetry{Module: module},
		&HotLoopAlloc{Module: module},
		&HotLoopIface{Module: module},
		&CtxPropagation{Module: module},
		&AtomicAlign{},
		&GoroutineCapture{Module: module},
		&GoroutineRecover{Module: module},
		&HTTPListener{Module: module},
		&NakedSleep{Module: module},
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name() < cs[j].Name() })
	return cs
}

// Run applies every checker to every package it covers, drops suppressed
// findings, reports malformed suppression directives, and returns the
// remainder sorted by position.
func Run(pkgs []*Package, checkers []Checker) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		sup := newSuppressions(pkg)
		out = append(out, sup.malformed...)
		for _, c := range checkers {
			if !c.Applies(pkg.ImportPath) {
				continue
			}
			for _, f := range c.Check(pkg) {
				if !sup.covers(f) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	return out
}

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "//lint:ignore"

// suppressions indexes a package's //lint:ignore directives. A directive
// suppresses findings of the named checks on its own line and on the line
// directly below it (so it can trail the flagged statement or sit above it).
type suppressions struct {
	// byLine maps file:line of the directive to the suppressed check names.
	byLine map[string]map[string]bool
	// malformed collects directives missing a check name or reason.
	malformed []Finding
	// directives lists every well-formed directive for the ignore audit.
	directives []directive
}

// directive is one well-formed //lint:ignore occurrence: the position of
// the comment and one check name it suppresses (a comma-list yields one
// directive per name).
type directive struct {
	pos   token.Position
	check string
}

func newSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[string]bool)}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Finding{
						Pos:     pos,
						Check:   "lint-directive",
						Message: "malformed directive: want //lint:ignore check-name reason",
					})
					continue
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if s.byLine[key] == nil {
					s.byLine[key] = make(map[string]bool)
				}
				for _, name := range strings.Split(fields[0], ",") {
					s.byLine[key][name] = true
					s.directives = append(s.directives, directive{pos: pos, check: name})
				}
			}
		}
	}
	return s
}

// covers reports whether f is suppressed by a directive on its line or the
// line above.
func (s *suppressions) covers(f Finding) bool {
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if checks, ok := s.byLine[fmt.Sprintf("%s:%d", f.Pos.Filename, line)]; ok && checks[f.Check] {
			return true
		}
	}
	return false
}

// pkgSelector resolves sel to (imported package path, selected name) when
// sel.X names an imported package ("fmt.Println" → "fmt", "Println").
func pkgSelector(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// finding builds a Finding at node's position.
func (p *Package) finding(check string, node ast.Node, format string, args ...any) Finding {
	return Finding{
		Pos:     p.Fset.Position(node.Pos()),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}
