package graphite

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestEngineTelemetry is the public-API profiling flow: a traced training
// run must export a Chrome trace with at least three distinct phase names
// and a metrics snapshot with non-zero vertex/edge/FLOP counters.
func TestEngineTelemetry(t *testing.T) {
	g, err := GenerateGraph(ProfileProducts, 400)
	if err != nil {
		t.Fatal(err)
	}
	x := RandomFeatures(g.NumVertices(), 16, 0.5, 1)
	labels := make([]int32, g.NumVertices())
	for i := range labels {
		labels[i] = int32(i % 4)
	}
	var trace bytes.Buffer
	eng, err := NewEngine(Config{
		Model: GCN, Dims: []int{16, 24, 4}, Impl: Combined, Seed: 3,
		Trace: &trace, Metrics: true, LocalityOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := eng.NewWorkload(g, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.NewTrainer(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Epoch(); err != nil {
		t.Fatal(err)
	}

	m := eng.Metrics()
	for _, key := range []string{
		"graphite_vertices_aggregated_total",
		"graphite_edges_aggregated_total",
		"graphite_gemm_flops_total",
		"graphite_sched_rows_total",
	} {
		if m.Counters[key] <= 0 {
			t.Errorf("counter %s = %d, want > 0 (all: %v)", key, m.Counters[key], m.Counters)
		}
	}
	if m.Spans < 3 {
		t.Fatalf("recorded %d spans, want >= 3", m.Spans)
	}

	if err := eng.WriteTrace(); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	phases := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			phases[ev.Name] = true
		}
	}
	if len(phases) < 3 {
		t.Fatalf("trace has %d distinct phase names, want >= 3: %v", len(phases), phases)
	}

	var metrics bytes.Buffer
	if err := eng.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics.String(), "graphite_edges_aggregated_total ") {
		t.Fatalf("metrics text missing edge counter:\n%s", metrics.String())
	}

	// ResetTelemetry returns the engine to a blank profile.
	eng.ResetTelemetry()
	if m := eng.Metrics(); m.Counters["graphite_edges_aggregated_total"] != 0 || m.Spans != 0 {
		t.Fatalf("telemetry not cleared by reset: %+v", m)
	}
}

// TestEngineWithoutTelemetry checks the disabled path: no trace writer, no
// metrics flag — Metrics() still returns the stable zero-valued key set and
// WriteTrace refuses cleanly.
func TestEngineWithoutTelemetry(t *testing.T) {
	g, err := GenerateGraph(ProfileProducts, 200)
	if err != nil {
		t.Fatal(err)
	}
	x := RandomFeatures(g.NumVertices(), 16, 0.5, 1)
	eng, err := NewEngine(Config{Model: GCN, Dims: []int{16, 4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := eng.NewWorkload(g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer(w); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if len(m.Counters) == 0 {
		t.Fatal("Metrics() lost its stable key set when telemetry is off")
	}
	for k, v := range m.Counters {
		if v != 0 {
			t.Fatalf("counter %s = %d with telemetry off", k, v)
		}
	}
	if err := eng.WriteTrace(); err == nil {
		t.Fatal("WriteTrace succeeded without a Config.Trace writer")
	}
}

// The stdout/stderr discipline formerly enforced here by a string-grep test
// (TestNoStdoutWritesInLibrary) now lives in internal/lint's type-resolved
// no-stdout checker, run by cmd/graphite-lint and the lint package's tier-1
// TestRepoClean.
