// Command graphite-sim runs the cycle-approximate machine model directly:
// pick a dataset profile, an implementation variant, and a machine shape,
// and get the simulated cycles, top-down pipeline breakdown, cache/DRAM
// counters, and DMA engine statistics. This is the paper's
// Sniper-experiment workflow as a single command.
//
//	graphite-sim -profile wikipedia -variant fusion+dma -train
//	graphite-sim -variant combined -order locality -cores 16
package main

import (
	"flag"
	"fmt"
	"log"

	"graphite/internal/dma"
	"graphite/internal/graph"
	"graphite/internal/locality"
	"graphite/internal/memsim"
	"graphite/internal/perf"
	"graphite/internal/simgnn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphite-sim: ")
	var (
		profile  = flag.String("profile", "products", "dataset profile: products, wikipedia, papers, twitter")
		vertices = flag.Int("vertices", 4000, "vertex count of the scaled synthetic graph")
		variant  = flag.String("variant", "combined", "distgnn, basic, compression, fusion, combined, fusion+dma")
		features = flag.Int("features", 128, "feature vector length")
		layersN  = flag.Int("layers", 2, "GNN layers")
		train    = flag.Bool("train", false, "simulate a training iteration (forward+backward)")
		aggOnly  = flag.Bool("agg-only", false, "simulate a single aggregation phase only")
		order    = flag.String("order", "natural", "processing order: natural, random, locality")
		cores    = flag.Int("cores", 8, "simulated core count")
		scaled   = flag.Bool("scaled-caches", true, "scale caches down with the graph (paper footprint ratio)")
		tracking = flag.Int("tracking", 32, "DMA memory-request tracking-table entries")
		sparsity = flag.Float64("sparsity", 0.5, "hidden-feature sparsity assumed by compression")
		stlb     = flag.Int("stlb", 0, "enable the STLB model with this many entries (0 = off)")
	)
	flag.Parse()

	v, err := parseVariant(*variant)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.GenerateProfile(graph.Profile(*profile), *vertices)
	if err != nil {
		log.Fatal(err)
	}
	g = g.AddSelfLoops()

	mc := memsim.DefaultConfig(*cores)
	if *scaled {
		mc.L1Bytes = 8 << 10
		mc.L2Bytes = 128 << 10
		mc.L3Bytes = *cores * 176 << 10
	}
	mc.STLBEntries = *stlb
	eng := dma.DefaultEngineConfig()
	eng.TrackingEntries = *tracking
	opt := simgnn.Options{Cores: *cores, Machine: mc, Engine: eng, Sparsity: *sparsity}
	switch *order {
	case "natural":
	case "random":
		opt.Order = locality.Randomized(g.NumVertices(), 1)
	case "locality":
		opt.Order = locality.Reorder(g)
	default:
		log.Fatalf("unknown order %q", *order)
	}

	layers := make([]simgnn.Layer, *layersN)
	for i := range layers {
		layers[i] = simgnn.Layer{Fin: *features, Fout: *features}
	}

	var res simgnn.Result
	switch {
	case *aggOnly:
		res, err = simgnn.SimulateAggregation(g, *features, v, opt)
	case *train:
		res, err = simgnn.SimulateTraining(g, layers, v, opt)
	default:
		res, err = simgnn.SimulateInference(g, layers, v, opt)
	}
	if err != nil {
		log.Fatal(err)
	}

	s := res.Stats
	fmt.Printf("graph %s |V|=%d |E|=%d, variant %s, %d cores, order=%s\n",
		*profile, g.NumVertices(), g.NumEdges(), v, *cores, *order)
	fmt.Printf("cycles (makespan):     %d\n", res.Cycles)
	fmt.Printf("top-down:              %s\n", perf.FromStats(s))
	fmt.Printf("L1: %d accesses, %.1f%% miss   L2: %d accesses, %.1f%% miss\n",
		s.L1Accesses, 100*s.L1MissRate(), s.L2Accesses, 100*s.L2MissRate())
	fmt.Printf("DRAM: %.1f MB read, %.1f MB written\n",
		float64(s.DRAMReadBytes())/1e6, float64(s.DRAMWriteBytes())/1e6)
	if res.EngineJobs > 0 {
		fmt.Printf("DMA engines: %d descriptors executed, %d lines fetched (private caches bypassed)\n",
			res.EngineJobs, res.EngineLines)
	}
}

func parseVariant(s string) (simgnn.Variant, error) {
	switch s {
	case "distgnn":
		return simgnn.VarDistGNN, nil
	case "basic":
		return simgnn.VarBasic, nil
	case "compression":
		return simgnn.VarCompressed, nil
	case "fusion":
		return simgnn.VarFused, nil
	case "combined":
		return simgnn.VarCombined, nil
	case "fusion+dma", "dma":
		return simgnn.VarFusedDMA, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}
