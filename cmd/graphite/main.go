// Command graphite runs full-batch GNN inference or training on a synthetic
// dataset-profile graph with a chosen implementation variant, printing
// per-phase timings and (for training) the loss/accuracy trace.
//
// Examples:
//
//	graphite -model gcn -profile products -vertices 20000 -impl combined
//	graphite -model sage -profile wikipedia -train -epochs 5 -locality
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphite"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphite: ")
	var (
		model    = flag.String("model", "gcn", "GNN model: gcn or sage")
		profile  = flag.String("profile", "products", "dataset profile: products, wikipedia, papers, twitter")
		vertices = flag.Int("vertices", 20_000, "vertex count of the scaled synthetic graph")
		implName = flag.String("impl", "combined", "implementation: distgnn, mkl, basic, fusion, compression, combined")
		hidden   = flag.Int("hidden", 256, "hidden feature length")
		classes  = flag.Int("classes", 16, "output classes")
		layers   = flag.Int("layers", 2, "number of GNN layers")
		threads  = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		train    = flag.Bool("train", false, "train instead of inference")
		epochs   = flag.Int("epochs", 5, "training epochs")
		locality = flag.Bool("locality", false, "apply the §4.4 locality reordering")
		dropout  = flag.Float64("dropout", 0, "hidden-feature dropout during training")
		sparsity = flag.Float64("sparsity", 0.5, "input feature sparsity")
		seed     = flag.Int64("seed", 1, "random seed")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON profile of the run to this file (load in chrome://tracing or Perfetto)")
		metrics  = flag.Bool("metrics", false, "print the telemetry metrics snapshot after the run")
		ckptOut  = flag.String("checkpoint", "", "write network weights to this file after training (and on SIGINT/SIGTERM, at the last completed epoch)")
		resume   = flag.String("resume", "", "load network weights from this checkpoint file before running")
		listen   = flag.String("listen", "", "serve the live observability plane on this host:port while the run executes (/metrics, /healthz, /readyz, /trace, /debug/pprof)")
		sloFlag  = flag.String("slo", "", "comma-separated latency SLOs tracked by -listen, each phase:quantile:threshold (e.g. epoch:0.99:250ms)")
		linger   = flag.Bool("linger", false, "with -listen: keep serving the observability endpoints after the run completes, until interrupted")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the run cooperatively: kernels drain at chunk
	// granularity, the trainer finishes no partial epoch, and (with
	// -checkpoint) the last completed epoch's weights are saved.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	kind, err := parseModel(*model)
	if err != nil {
		log.Fatal(err)
	}
	impl, err := parseImpl(*implName)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := parseProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	if *layers < 1 {
		log.Fatal("need at least one layer")
	}

	g, err := graphite.GenerateGraph(prof, *vertices)
	if err != nil {
		log.Fatal(err)
	}
	stats := g.Stats()
	fmt.Printf("graph %s: |V|=%d |E|=%d avg-degree=%.1f max=%d\n",
		prof, g.NumVertices(), g.NumEdges(), stats.Mean, stats.Max)

	fin := prof.InputFeatureLen()
	dims := []int{fin}
	for i := 1; i < *layers; i++ {
		dims = append(dims, *hidden)
	}
	dims = append(dims, *classes)
	var traceFile *os.File
	cfg := graphite.Config{
		Model: kind, Dims: dims, Impl: impl, Threads: *threads,
		LocalityOrder: *locality, Dropout: *dropout, Seed: *seed,
		Metrics: *metrics, Listen: *listen,
	}
	if *sloFlag != "" {
		if *listen == "" {
			log.Fatal("-slo needs -listen (the SLO series are served, not printed)")
		}
		slos, err := graphite.ParseSLOs(*sloFlag)
		if err != nil {
			log.Fatal(err)
		}
		cfg.SLOs = slos
	}
	if *linger && *listen == "" {
		log.Fatal("-linger needs -listen")
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		traceFile = f
		cfg.Trace = f
	}
	eng, err := graphite.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network %s %v (%d parameters), impl %s, locality=%v\n",
		kind, dims, eng.NumParams(), impl, *locality)

	// The observability plane serves until the signal context is cancelled;
	// with -linger that keeps the endpoints scrapeable after the run.
	var serveErr chan error
	if *listen != "" {
		serveErr = make(chan error, 1)
		go func() { serveErr <- eng.Serve(ctx) }()
		for eng.ObservabilityAddr() == "" {
			select {
			case err := <-serveErr:
				log.Fatal(err)
			default:
				time.Sleep(time.Millisecond)
			}
		}
		fmt.Printf("observability: http://%s/metrics (also /healthz /readyz /events /trace /debug/pprof)\n",
			eng.ObservabilityAddr())
	}

	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.LoadCheckpoint(f); err != nil {
			log.Fatalf("resuming from %s: %v", *resume, err)
		}
		f.Close()
		fmt.Printf("resumed weights from %s\n", *resume)
	}

	x := graphite.RandomFeatures(g.NumVertices(), fin, *sparsity, *seed)
	var labels []int32
	if *train {
		labels = make([]int32, g.NumVertices())
		for i := range labels {
			labels[i] = int32(i % *classes)
		}
	}
	w, err := eng.NewWorkload(g, x, labels)
	if err != nil {
		log.Fatal(err)
	}

	if !*train {
		start := time.Now()
		logits, err := eng.InferContext(ctx, w)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Fatal("inference interrupted")
			}
			log.Fatal(err)
		}
		fmt.Printf("inference: %v for %d vertices (%d logits/vertex)\n",
			time.Since(start).Round(time.Millisecond), logits.Rows, logits.Cols)
	} else {
		tr, err := eng.NewTrainer(w)
		if err != nil {
			log.Fatal(err)
		}
		interrupted := false
		for e := 0; e < *epochs; e++ {
			start := time.Now()
			res, err := tr.EpochContext(ctx)
			if errors.Is(err, context.Canceled) {
				fmt.Printf("interrupted after %d completed epochs\n", tr.CompletedEpochs())
				interrupted = true
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("epoch %2d: loss %.4f acc %.3f  wall %v  (agg %v, update %v, fused %v, backward %v)\n",
				e, res.Loss, res.Accuracy, time.Since(start).Round(time.Millisecond),
				res.Timings.Aggregate.Round(time.Millisecond),
				res.Timings.Update.Round(time.Millisecond),
				res.Timings.Fused.Round(time.Millisecond),
				res.Timings.Backward.Round(time.Millisecond))
		}
		if *ckptOut != "" {
			f, err := os.Create(*ckptOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := eng.SaveCheckpoint(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("checkpoint: wrote %s at epoch %d (resume with -resume %s)\n",
				*ckptOut, tr.CompletedEpochs(), *ckptOut)
		}
		if interrupted && *ckptOut == "" {
			fmt.Println("note: no -checkpoint flag; the partial training progress is discarded")
		}
	}

	if traceFile != nil {
		if err := eng.WriteTrace(); err != nil {
			log.Fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: wrote %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}
	if *metrics {
		fmt.Println("metrics:")
		if err := eng.WriteMetrics(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if serveErr != nil {
		if *linger {
			fmt.Println("linger: observability endpoints stay up until interrupted (Ctrl-C)")
		}
		if !*linger {
			stop() // cancel the signal context so Serve drains now
		}
		if err := <-serveErr; err != nil {
			log.Fatal(err)
		}
	}
}

func parseModel(s string) (graphite.Model, error) {
	switch s {
	case "gcn":
		return graphite.GCN, nil
	case "sage":
		return graphite.SAGE, nil
	case "gin":
		return graphite.GIN, nil
	}
	return 0, fmt.Errorf("unknown model %q (want gcn, sage, or gin)", s)
}

func parseImpl(s string) (graphite.Implementation, error) {
	switch s {
	case "distgnn":
		return graphite.DistGNNBaseline, nil
	case "mkl":
		return graphite.MKLBaseline, nil
	case "basic":
		return graphite.Basic, nil
	case "fusion":
		return graphite.Fusion, nil
	case "compression":
		return graphite.Compression, nil
	case "combined", "":
		return graphite.Combined, nil
	}
	return 0, fmt.Errorf("unknown implementation %q", s)
}

func parseProfile(s string) (graphite.Profile, error) {
	switch graphite.Profile(s) {
	case graphite.ProfileProducts, graphite.ProfileWikipedia, graphite.ProfilePapers, graphite.ProfileTwitter:
		return graphite.Profile(s), nil
	}
	return "", fmt.Errorf("unknown profile %q", s)
}
