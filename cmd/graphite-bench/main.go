// Command graphite-bench regenerates the paper's evaluation tables and
// figures. Each experiment is addressed by id; "all" runs the full set.
//
//	graphite-bench -list
//	graphite-bench fig11a fig14
//	graphite-bench -scale 40000 -simscale 4000 all
//
// Wall-clock experiments (fig2, fig11*, fig13, fig14, fig15, table3) run
// the real kernels on this machine; simulator experiments (fig3, fig12*,
// fig16, table4, table5, fig11*-sim) run on the memsim model of the
// paper's 28-core platform. Absolute numbers depend on the host; the
// printed paper figures are for shape comparison (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"graphite/internal/bench"
	"graphite/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphite-bench: ")
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		scale    = flag.Int("scale", 0, "wall-clock experiment vertex count (default 40000)")
		simScale = flag.Int("simscale", 0, "simulator experiment vertex count (default 4000)")
		hidden   = flag.Int("hidden", 0, "hidden feature length for wall-clock runs (default 256)")
		threads  = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		simCores = flag.Int("simcores", 0, "simulated core count (default 8)")
		reps     = flag.Int("reps", 0, "repetitions per wall-clock measurement, minimum kept (default 1)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON profile of the wall-clock experiments to this file")
		metrics  = flag.Bool("metrics", false, "print the telemetry metrics snapshot after the experiments")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			title, _ := bench.Title(id)
			fmt.Printf("%-12s %s\n", id, title)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		log.Fatal("no experiments given; use -list to see ids or 'all'")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = bench.IDs()
	}
	cfg := bench.Config{
		Scale: *scale, SimScale: *simScale, Hidden: *hidden,
		Threads: *threads, SimCores: *simCores, Reps: *reps,
	}
	if *traceOut != "" || *metrics {
		cfg.Telemetry = telemetry.New(0)
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := bench.Run(id, cfg)
		if err != nil {
			log.Printf("%s: %v", id, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := cfg.Telemetry.WriteTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: wrote %s\n", *traceOut)
	}
	if *metrics {
		fmt.Println("metrics:")
		if err := cfg.Telemetry.WriteMetrics(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
