// Command graphite-bench regenerates the paper's evaluation tables and
// figures. Each experiment is addressed by id; "all" runs the full set.
//
//	graphite-bench -list
//	graphite-bench fig11a fig14
//	graphite-bench -scale 40000 -simscale 4000 all
//
// Wall-clock experiments (fig2, fig11*, fig13, fig14, fig15, table3) run
// the real kernels on this machine; simulator experiments (fig3, fig12*,
// fig16, table4, table5, fig11*-sim) run on the memsim model of the
// paper's 28-core platform. Absolute numbers depend on the host; the
// printed paper figures are for shape comparison (see EXPERIMENTS.md).
//
// Machine-readable reports and regression gating:
//
//	graphite-bench -run fig2 -reps 3 -json BENCH_fig2.json
//	graphite-bench -run fig2 -reps 3 -baseline BENCH_fig2.json
//	graphite-bench -baseline old.json -against new.json
//
// -json writes the run through the versioned internal/benchfmt schema
// (environment fingerprint, per-rep samples, telemetry phase totals,
// counters, latency quantiles, top-down breakdowns for simulator
// experiments). -baseline compares the current run — or, with -against,
// a previously written report — against a stored report and exits
// non-zero if any sample regressed beyond the threshold.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphite/internal/bench"
	"graphite/internal/benchfmt"
	"graphite/internal/obsrv"
	"graphite/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphite-bench: ")
	var (
		list      = flag.Bool("list", false, "list experiment ids and exit")
		scale     = flag.Int("scale", 0, "wall-clock experiment vertex count (default 40000)")
		simScale  = flag.Int("simscale", 0, "simulator experiment vertex count (default 4000)")
		hidden    = flag.Int("hidden", 0, "hidden feature length for wall-clock runs (default 256)")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		simCores  = flag.Int("simcores", 0, "simulated core count (default 8)")
		reps      = flag.Int("reps", 0, "repetitions per wall-clock measurement, minimum kept (default 1)")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON profile of the wall-clock experiments to this file")
		metrics   = flag.Bool("metrics", false, "print the telemetry metrics snapshot after the experiments")
		runIDs    = flag.String("run", "", "comma-separated experiment ids to run (alternative to positional args)")
		jsonOut   = flag.String("json", "", "write a machine-readable benchfmt report to this file (convention: BENCH_<id>.json)")
		baseline  = flag.String("baseline", "", "benchfmt report to compare against; exits 1 on regression")
		against   = flag.String("against", "", "with -baseline: compare this stored report instead of running experiments")
		rev       = flag.String("rev", "", "git revision recorded in the report's environment fingerprint")
		threshold = flag.Float64("threshold", 0, "regression threshold as relative mean slowdown (default 0.10)")
		listen    = flag.String("listen", "", "serve the live observability plane on this host:port while experiments run; per-experiment progress streams as JSON lines on /events")
		serveLoad = flag.String("serve-load", "", "closed-loop load-generator mode: drive the graphite-serve instance at this host:port instead of running experiments (combines with -json/-baseline/-against)")
		serveConc = flag.String("serve-concurrency", "1,2,4", "with -serve-load: comma-separated closed-loop concurrency levels")
		serveDur  = flag.Duration("serve-duration", 2*time.Second, "with -serve-load: wall time per concurrency level")
		serveVert = flag.Int("serve-vertices", 1, "with -serve-load: vertices per inference request")
		chaos     = flag.Bool("chaos", false, "chaos soak mode: run an in-process serve instance under closed-loop load with every serve-plane fault site armed, and assert the overload/degradation invariants")
		chaosDur  = flag.Duration("chaos-duration", 5*time.Second, "with -chaos: soak wall time")
		chaosSeed = flag.Int64("chaos-seed", 1, "with -chaos: fault-injection and workload seed")
		chaosConc = flag.Int("chaos-concurrency", 8, "with -chaos: closed-loop client workers")
	)
	flag.Parse()

	// SIGINT/SIGTERM stop the sweep between experiments: the current
	// experiment finishes, later ones are skipped, and in structured mode
	// the partial report is still flushed so completed measurements are
	// never lost.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *list {
		for _, id := range bench.IDs() {
			title, _ := bench.Title(id)
			fmt.Printf("%-12s %s\n", id, title)
		}
		return
	}

	// Chaos soak mode: in-process serve instance, armed fault sites,
	// invariant assertions. Exit code 1 on any violation.
	if *chaos {
		os.Exit(runChaos(ctx, *chaosDur, *chaosSeed, *chaosConc, *scale))
	}

	// Closed-loop load-generator mode: drives a running server, emits the
	// throughput-vs-p99 curve, and reuses the -json/-baseline gate.
	if *serveLoad != "" {
		os.Exit(runServeLoad(ctx, *serveLoad, *serveConc, *serveDur, *serveVert, *jsonOut, *baseline, *rev, *threshold))
	}

	// Pure file-vs-file compare: no experiments run.
	if *against != "" {
		if *baseline == "" {
			log.Fatal("-against requires -baseline")
		}
		os.Exit(compareFiles(*baseline, *against, *threshold))
	}

	ids := flag.Args()
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		log.Fatal("no experiments given; use -list to see ids or 'all'")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = bench.IDs()
	}
	structured := *jsonOut != "" || *baseline != ""
	if structured && (*traceOut != "" || *metrics) {
		log.Fatal("-json/-baseline use one fresh telemetry sink per experiment; run -trace/-metrics separately")
	}
	cfg := bench.Config{
		Scale: *scale, SimScale: *simScale, Hidden: *hidden,
		Threads: *threads, SimCores: *simCores, Reps: *reps,
	}
	if *traceOut != "" || *metrics {
		cfg.Telemetry = telemetry.New(0)
	}
	// The observability plane scrapes whichever sink the current experiment
	// writes; without -trace/-metrics/-json a sweep-wide sink is created so
	// -listen alone still exposes live counters.
	var obs *obsrv.Server
	if *listen != "" {
		if cfg.Telemetry == nil && !structured {
			cfg.Telemetry = telemetry.New(0)
		}
		obs = obsrv.NewServer(obsrv.Options{Sink: cfg.Telemetry})
		if err := obs.Start(*listen); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observability: http://%s/metrics (experiment progress on /events)\n\n", obs.Addr())
	}
	var file *benchfmt.File
	if structured {
		file = &benchfmt.File{Version: benchfmt.Version, Env: benchfmt.CaptureEnv(*rev)}
	}
	interrupted := false
	for _, id := range ids {
		if ctx.Err() != nil {
			log.Printf("interrupted; skipping %s and later experiments", id)
			interrupted = true
			break
		}
		start := time.Now()
		runCfg := cfg
		var sink *telemetry.Sink
		if structured {
			// One sink per experiment so phase totals, counters and
			// latencies in the report belong to this experiment alone. The
			// wrapping span guarantees a non-empty phase breakdown even for
			// experiments whose kernels are not telemetry-instrumented.
			sink = telemetry.New(0)
			runCfg.Telemetry = sink
			if obs != nil {
				// Scrapers follow the active experiment; rates and SLO
				// windows re-baseline across the swap.
				obs.SetSink(sink)
			}
		}
		if obs != nil {
			obs.Publish(obsrv.Event{Kind: "experiment", Experiment: id, Status: "start"})
		}
		sp := sink.Begin("experiment/" + id)
		rep, err := bench.Run(id, runCfg)
		sp.End()
		wallMS := float64(time.Since(start).Microseconds()) / 1e3
		if err != nil {
			if obs != nil {
				obs.Publish(obsrv.Event{Kind: "experiment", Experiment: id, Status: "error", WallMS: wallMS, Detail: err.Error()})
			}
			log.Printf("%s: %v", id, err)
			os.Exit(1)
		}
		if obs != nil {
			obs.Publish(obsrv.Event{Kind: "experiment", Experiment: id, Status: "done", WallMS: wallMS})
		}
		fmt.Println(rep)
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if structured {
			file.Experiments = append(file.Experiments, rep.Experiment(sink))
		}
	}
	if obs != nil {
		status := "done"
		if interrupted {
			status = "interrupted"
		}
		obs.Publish(obsrv.Event{Kind: "sweep", Status: status})
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := obs.Shutdown(sctx); err != nil {
			log.Printf("observability shutdown: %v", err)
		}
		cancel()
	}
	if *jsonOut != "" {
		if err := benchfmt.WriteFile(*jsonOut, file); err != nil {
			log.Fatal(err)
		}
		if interrupted {
			fmt.Printf("json: wrote %s (partial: %d of %d experiments)\n",
				*jsonOut, len(file.Experiments), len(ids))
		} else {
			fmt.Printf("json: wrote %s\n", *jsonOut)
		}
	}
	if interrupted {
		// Partial results are not comparable against a full baseline;
		// exit with the conventional interrupted status instead.
		os.Exit(130)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := cfg.Telemetry.WriteTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: wrote %s\n", *traceOut)
	}
	if *metrics {
		fmt.Println("metrics:")
		if err := cfg.Telemetry.WriteMetrics(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *baseline != "" {
		old, err := benchfmt.ReadFile(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		os.Exit(report(benchfmt.Compare(old, file, benchfmt.CompareOptions{Threshold: *threshold})))
	}
}

// compareFiles loads two stored reports and prints the delta table.
func compareFiles(oldPath, newPath string, threshold float64) int {
	old, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := benchfmt.ReadFile(newPath)
	if err != nil {
		log.Fatal(err)
	}
	return report(benchfmt.Compare(old, cur, benchfmt.CompareOptions{Threshold: threshold}))
}

// report prints the comparison and returns the process exit code: 1 when
// any sample regressed, 0 otherwise.
func report(c benchfmt.Comparison) int {
	fmt.Print(c.Table())
	if len(c.Regressions()) > 0 {
		return 1
	}
	return 0
}
