package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphite/internal/benchfmt"
	"graphite/internal/telemetry"
)

// serveLoadID is the benchfmt experiment id the load generator reports
// under; the CI load gate self-compares reports by this id.
const serveLoadID = "serve-load"

// maxRecordedLatencies bounds the per-level rep array written into the
// report so long runs do not produce unboundedly large JSON.
const maxRecordedLatencies = 100_000

// levelResult is one concurrency level's closed-loop measurement.
type levelResult struct {
	concurrency int
	ok          int64
	rejected    int64 // 429: queue full
	expired     int64 // 504: deadline spent
	failed      int64 // transport or 5xx
	elapsed     time.Duration
	latencies   []int64 // successful request latencies, ns
	p50, p95    time.Duration
	p99         time.Duration
}

// runServeLoad drives a running graphite-serve instance with closed-loop
// load at each requested concurrency level and emits the
// throughput-vs-p99 curve, optionally as a benchfmt report for the
// regression gate. Returns the process exit code.
func runServeLoad(ctx context.Context, addr, concStr string, dur time.Duration, verts int, jsonOut, baselinePath, rev string, threshold float64) int {
	levels, err := parseConcurrency(concStr)
	if err != nil {
		log.Fatal(err)
	}
	if verts < 1 {
		verts = 1
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	numVerts, maxBatch, err := probeServer(base)
	if err != nil {
		log.Fatalf("probing %s: %v", base, err)
	}
	if verts > maxBatch {
		log.Fatalf("-serve-vertices %d exceeds the server's max batch %d", verts, maxBatch)
	}
	fmt.Printf("serve-load: %s  |V|=%d  %d vertices/request  %v per level  levels %v\n",
		base, numVerts, verts, dur, levels)

	sink := telemetry.New(0)
	var results []levelResult
	for _, c := range levels {
		if ctx.Err() != nil {
			log.Print("interrupted; skipping remaining levels")
			break
		}
		res := runLevel(ctx, base, c, dur, verts, numVerts, sink)
		results = append(results, res)
	}
	if len(results) == 0 {
		return 130
	}

	// The curve: offered concurrency vs achieved throughput and tail
	// latency. A saturated server shows flat throughput and rising p99.
	fmt.Printf("\n%-6s %10s %12s %10s %10s %10s %8s %8s\n",
		"conc", "requests", "req/s", "p50", "p95", "p99", "rejected", "expired")
	for _, r := range results {
		rps := float64(r.ok) / r.elapsed.Seconds()
		fmt.Printf("%-6d %10d %12.1f %10v %10v %10v %8d %8d\n",
			r.concurrency, r.ok, rps,
			r.p50.Round(time.Microsecond), r.p95.Round(time.Microsecond), r.p99.Round(time.Microsecond),
			r.rejected, r.expired)
	}

	printSlowestTraces(base, 5)

	structured := jsonOut != "" || baselinePath != ""
	if !structured {
		return 0
	}
	file := &benchfmt.File{Version: benchfmt.Version, Env: benchfmt.CaptureEnv(rev)}
	exp := benchfmt.Experiment{
		ID:       serveLoadID,
		Title:    fmt.Sprintf("closed-loop serving throughput/latency (%d vertices/request)", verts),
		Counters: map[string]int64{},
	}
	for _, r := range results {
		name := fmt.Sprintf("c=%d", r.concurrency)
		if len(r.latencies) > 0 {
			exp.Samples = append(exp.Samples, benchfmt.NewSample(name+"/latency", benchfmt.UnitNS, r.latencies))
			exp.Samples = append(exp.Samples, benchfmt.NewSample(name+"/p99", benchfmt.UnitNS, []int64{int64(r.p99)}))
		}
		exp.Counters[name+"/ok"] = r.ok
		exp.Counters[name+"/rejected"] = r.rejected
		exp.Counters[name+"/expired"] = r.expired
		exp.Counters[name+"/failed"] = r.failed
		h := sink.Histogram(phaseFor(r.concurrency))
		if h != nil {
			exp.Latencies = append(exp.Latencies, benchfmt.Latency{
				Phase: phaseFor(r.concurrency),
				Count: h.Count(),
				SumNS: int64(h.Sum()),
				P50NS: int64(h.Quantile(0.50)),
				P95NS: int64(h.Quantile(0.95)),
				P99NS: int64(h.Quantile(0.99)),
			})
		}
	}
	file.Experiments = append(file.Experiments, exp)
	if jsonOut != "" {
		if err := benchfmt.WriteFile(jsonOut, file); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("json: wrote %s\n", jsonOut)
	}
	if baselinePath != "" {
		old, err := benchfmt.ReadFile(baselinePath)
		if err != nil {
			log.Fatal(err)
		}
		return report(benchfmt.Compare(old, file, benchfmt.CompareOptions{Threshold: threshold}))
	}
	return 0
}

func phaseFor(c int) string { return fmt.Sprintf("serve-load/c=%d", c) }

// runLevel runs c closed-loop workers for dur: each worker keeps exactly
// one request in flight, so offered load adapts to what the server
// sustains (the classic closed-loop harness shape).
// workerStats is one closed-loop worker's private accumulator; workers are
// partitioned by index and merged after the level completes.
type workerStats struct {
	ok, rejected, expired, failed int64
	latencies                     []int64
}

func runLevel(ctx context.Context, base string, c int, dur time.Duration, verts, numVerts int, sink *telemetry.Sink) levelResult {
	// The default transport keeps only 2 idle connections per host, so at
	// higher concurrency nearly every request would re-dial — measuring
	// connection churn instead of the server. One warm connection per
	// worker keeps the harness closed-loop over stable keep-alives.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        c,
		MaxIdleConnsPerHost: c,
	}}
	var wg sync.WaitGroup
	stop := time.After(dur)
	stopped := make(chan struct{})
	go func() {
		select {
		case <-stop:
		case <-ctx.Done():
		}
		close(stopped)
	}()

	perWorker := make([]workerStats, c)
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &perWorker[w]
			rng := rand.New(rand.NewSource(int64(1000*c + w)))
			for {
				select {
				case <-stopped:
					return
				default:
				}
				ids := make([]int32, verts)
				for i := range ids {
					ids[i] = int32(rng.Intn(numVerts))
				}
				body, _ := json.Marshal(map[string]any{"vertices": ids})
				req, err := http.NewRequest(http.MethodPost, base+"/v1/infer", bytes.NewReader(body))
				if err != nil {
					st.failed++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				// Stamp a sampled W3C traceparent so every load request is
				// trace-joinable: the server records its span tree and the
				// slowest survivors are fetchable from /v1/traces after the
				// run (printed by printSlowestTraces).
				tp := telemetry.TraceParent{TraceID: telemetry.NewTraceID(), Sampled: true}
				rng.Read(tp.Parent[:])
				if tp.Parent.IsZero() {
					tp.Parent[0] = 1
				}
				req.Header.Set("traceparent", tp.String())
				t0 := time.Now()
				resp, err := client.Do(req)
				lat := time.Since(t0)
				if err != nil {
					st.failed++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					st.ok++
					sink.Observe(phaseFor(c), lat)
					if len(st.latencies) < maxRecordedLatencies/c {
						st.latencies = append(st.latencies, int64(lat))
					}
				case http.StatusTooManyRequests:
					st.rejected++
				case http.StatusGatewayTimeout:
					st.expired++
				default:
					st.failed++
				}
			}
		}(w)
	}
	wg.Wait()
	res := levelResult{concurrency: c, elapsed: time.Since(start)}
	for i := range perWorker {
		st := &perWorker[i]
		res.ok += st.ok
		res.rejected += st.rejected
		res.expired += st.expired
		res.failed += st.failed
		res.latencies = append(res.latencies, st.latencies...)
	}
	if h := sink.Histogram(phaseFor(c)); h != nil {
		res.p50, res.p95, res.p99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	}
	return res
}

// printSlowestTraces pulls the server's flight recorder after the run and
// names the slowest retained request traces, attributing their latency to
// queue wait vs batch execution — the post-mortem handle for "why was p99
// what it was".
func printSlowestTraces(base string, n int) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/traces?slowest=%d", base, n))
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return // tracing disabled on the target; nothing to report
	}
	var traces []struct {
		TraceID    string `json:"trace_id"`
		DurationNS int64  `json:"duration_ns"`
		Status     string `json:"status"`
		Spans      []struct {
			Name string `json:"name"`
			Dur  int64  `json:"duration_ns"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil || len(traces) == 0 {
		return
	}
	fmt.Printf("\nslowest traces (GET %s/v1/traces?id=<trace_id> for the full tree):\n", base)
	for _, tr := range traces {
		var queue, batch int64
		for _, sp := range tr.Spans {
			switch sp.Name {
			case telemetry.PhaseServeQueue:
				if sp.Dur > queue {
					queue = sp.Dur
				}
			case telemetry.PhaseServeBatch:
				if sp.Dur > batch {
					batch = sp.Dur
				}
			}
		}
		status := tr.Status
		if status == "" {
			status = "ok"
		}
		fmt.Printf("  %s  %10v  queue %v  batch %v  %s\n",
			tr.TraceID, time.Duration(tr.DurationNS).Round(time.Microsecond),
			time.Duration(queue).Round(time.Microsecond),
			time.Duration(batch).Round(time.Microsecond), status)
	}
}

// probeServer reads /v1/stats for the graph size and batch cap, failing
// fast when the target is not a graphite-serve instance.
func probeServer(base string) (numVerts, maxBatch int, err error) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("/v1/stats returned %d", resp.StatusCode)
	}
	var stats struct {
		GraphVertices int `json:"graph_vertices"`
		MaxBatchSize  int `json:"max_batch_size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return 0, 0, fmt.Errorf("bad /v1/stats body: %v", err)
	}
	if stats.GraphVertices <= 0 || stats.MaxBatchSize <= 0 {
		return 0, 0, fmt.Errorf("target does not look like graphite-serve (stats %+v)", stats)
	}
	return stats.GraphVertices, stats.MaxBatchSize, nil
}

func parseConcurrency(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no concurrency levels in %q", s)
	}
	return out, nil
}
