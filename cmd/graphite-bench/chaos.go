package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphite/internal/faultinject"
	"graphite/internal/gnn"
	"graphite/internal/graph"
	"graphite/internal/serve"
	"graphite/internal/telemetry"
	"graphite/internal/tensor"
)

// Chaos soak mode: an in-process graphite-serve instance is driven with
// closed-loop HTTP load while every serve-plane fault-injection site is
// armed and checkpoint hot swaps run concurrently. Midway through, an
// execution-failure storm trips the snapshot circuit breaker; the storm
// then heals so the soak also exercises the half-open probe and recovery.
//
// The harness asserts the serving invariants the ISSUE contract names:
//
//  1. No mixed-version batches: every 200 response sharing a batch_id
//     reports the same snapshot_version.
//  2. No dropped responses: every request gets exactly one HTTP response
//     well inside the client timeout (a transport error or client timeout
//     is a violation — the server must answer even when faults fire).
//  3. Well-formed error envelopes: every non-200 carries a known
//     machine-readable code, and every 429/503 carries both a Retry-After
//     header and a retry_after_ms field within sane bounds.
//  4. Legal breaker transitions: the recorded history is chain-consistent
//     and every edge is one of the four legal state-machine moves.
//
// It also asserts coverage: every armed site actually fired, and the
// breaker actually tripped — a chaos run that injected nothing proves
// nothing. Exit code 0 means zero violations.

// chaosViolations collects invariant violations under a lock; any entry
// fails the run.
type chaosViolations struct {
	mu   sync.Mutex
	list []string
}

func (v *chaosViolations) add(format string, args ...any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.list) < 100 { // cap the report, not the counting
		v.list = append(v.list, fmt.Sprintf(format, args...))
	}
}

// chaosCodes is the closed vocabulary of envelope error codes.
var chaosCodes = map[string]bool{
	"queue_full": true, "overloaded": true, "breaker_open": true,
	"deadline_exceeded": true, "client_cancelled": true, "draining": true,
	"invalid_request": true, "internal": true,
}

// chaosStats aggregates response outcomes across workers.
type chaosStats struct {
	mu                             sync.Mutex
	requests, ok                   int64
	rejected429, unavailable503    int64
	internal500, expired504, other int64
	degraded                       int64
	batchVersion                   map[uint64]uint64
}

// runChaos is the -chaos entry point. Returns the process exit code.
func runChaos(ctx context.Context, dur time.Duration, seed int64, conc, scale int) int {
	if conc < 1 {
		conc = 8
	}
	if scale <= 0 {
		scale = 1000
	}
	if scale < 200 {
		scale = 200
	}
	inj := faultinject.New(seed)
	// Background fault rates: low enough that most traffic is healthy,
	// high enough that every site fires within even a short smoke soak.
	inj.SetProbability(faultinject.SiteServeAdmission, 0.02)
	inj.SetProbability(faultinject.SiteServeSeal, 0.01)
	inj.SetProbability(faultinject.SiteServeExecute, 0.02)
	inj.SetProbability(faultinject.SiteServeRespond, 0.01)
	inj.FailAt(faultinject.SiteServeSwap, 2) // the second hot swap fails

	g, err := graph.GenerateProfile(graph.Products, scale)
	if err != nil {
		log.Fatal(err)
	}
	x := tensor.NewMatrix(g.NumVertices(), 12)
	x.FillSparse(rand.New(rand.NewSource(seed)), 1, 0.3)
	// The model is deliberately heavy for its graph (wide hidden layer,
	// deep fanouts) so the single execution worker — not the HTTP stack —
	// is the bottleneck and queue sojourn genuinely climbs under the burst.
	net, err := gnn.NewNetwork(gnn.Config{Kind: gnn.GCN, Dims: []int{12, 128, 16}, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Config{
		Net: net, Graph: g, X: x,
		// Deliberately undersized: one worker and a small batch cap against
		// the closed-loop burst, so queue sojourn genuinely exceeds the shed
		// target and both shedding and ladder degradation engage in-soak.
		MaxBatch: 16, MaxLinger: time.Millisecond,
		QueueCap: 64, Workers: 1, Threads: 1,
		Fanouts:  []int{25, 25},
		Deadline: 2 * time.Second,
		Seed:     seed,
		// A tight sojourn target so overload shedding engages under the
		// closed-loop burst; the breaker is tuned to trip fast in the storm
		// and probe quickly after it.
		ShedTarget: 500 * time.Microsecond, ShedInterval: 10 * time.Millisecond,
		BreakerThreshold: 3, BreakerProbe: 100 * time.Millisecond,
		Inject: inj,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	base := "http://" + srv.Addr()
	fmt.Printf("chaos: soaking %s for %v (seed %d, %d workers, |V|=%d)\n",
		base, dur, seed, conc, g.NumVertices())

	var ckpt bytes.Buffer
	if _, err := srv.WriteCheckpoint(&ckpt); err != nil {
		log.Fatal(err)
	}

	viol := &chaosViolations{}
	stats := &chaosStats{batchVersion: make(map[uint64]uint64)}
	stopped := make(chan struct{})
	var wg sync.WaitGroup

	// The failure storm: 40%..60% of the soak executes with a 100% failure
	// rate, guaranteeing consecutive failures (the breaker must trip), then
	// heals (the half-open probe must close it again).
	wg.Add(1)
	go func() {
		defer wg.Done()
		storm := time.NewTimer(dur * 2 / 5)
		defer storm.Stop()
		select {
		case <-storm.C:
		case <-stopped:
			return
		}
		inj.SetProbability(faultinject.SiteServeExecute, 1.0)
		heal := time.NewTimer(dur / 5)
		defer heal.Stop()
		select {
		case <-heal.C:
		case <-stopped:
		}
		inj.SetProbability(faultinject.SiteServeExecute, 0.02)
	}()

	// Concurrent hot swaps, including the one armed to fail.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(dur / 10)
		defer tick.Stop()
		client := &http.Client{Timeout: 10 * time.Second}
		for {
			select {
			case <-stopped:
				return
			case <-tick.C:
			}
			resp, err := client.Post(base+"/v1/swap", "application/octet-stream", bytes.NewReader(ckpt.Bytes()))
			if err != nil {
				viol.add("swap transport error: %v", err)
				continue
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				checkEnvelope(viol, resp, body, "swap")
			}
		}
	}()

	// Overload burst: an open-loop arrival spike over the first 30% of the
	// soak. The closed-loop workers self-limit (one outstanding request
	// each) and can never push queue sojourn past the target on their own;
	// this un-gated arrival stream is what drives the shedder and the
	// degradation ladder, exactly like a real inbound overload.
	wg.Add(1)
	go func() {
		defer wg.Done()
		end := time.NewTimer(dur * 3 / 10)
		defer end.Stop()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		sem := make(chan struct{}, 512)
		// Enough keep-alive connections for the whole burst: the default
		// transport's 2-idle-per-host cap would turn the burst into
		// connection churn instead of queue pressure.
		client := &http.Client{Timeout: 10 * time.Second, Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		}}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		var bwg sync.WaitGroup
		defer bwg.Wait()
		for {
			select {
			case <-end.C:
				return
			case <-stopped:
				return
			case <-tick.C:
			}
			select {
			case sem <- struct{}{}:
			default:
				continue // outstanding cap reached; skip this tick
			}
			ids := make([]int32, 8)
			for i := range ids {
				ids[i] = int32(rng.Intn(g.NumVertices()))
			}
			bwg.Add(1)
			go func(ids []int32) {
				defer bwg.Done()
				defer func() { <-sem }()
				postInfer(client, base, ids, -1, stats, viol)
			}(ids)
		}
	}()

	rngSeed := seed
	for w := 0; w < conc; w++ {
		wg.Add(1)
		rngSeed++
		go func(w int, rngSeed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(rngSeed))
			client := &http.Client{Timeout: 10 * time.Second}
			for {
				select {
				case <-stopped:
					return
				default:
				}
				ids := make([]int32, 8)
				for i := range ids {
					ids[i] = int32(rng.Intn(g.NumVertices()))
				}
				postInfer(client, base, ids, w, stats, viol)
			}
		}(w, rngSeed)
	}

	select {
	case <-time.After(dur):
	case <-ctx.Done():
	}
	close(stopped)
	wg.Wait()

	// Invariant 4: the breaker history is chain-consistent and legal.
	trs := srv.BreakerTransitions()
	for i, tr := range trs {
		if !serve.LegalBreakerTransition(tr) {
			viol.add("illegal breaker transition %d: %v→%v", i, tr.From, tr.To)
		}
		if i > 0 && trs[i-1].To != tr.From {
			viol.add("breaker history not chain-consistent at %d: %v then %v→%v", i, trs[i-1].To, tr.From, tr.To)
		}
	}
	tel := srv.Tel()
	if tel.Counter(telemetry.CtrServeBreakerTrips) == 0 {
		viol.add("breaker never tripped despite the execution-failure storm")
	}
	if tel.Counter(telemetry.CtrServeShed) == 0 {
		viol.add("shedder never fired despite the open-loop overload burst")
	}
	if tel.Counter(telemetry.CtrServeDegraded) == 0 {
		viol.add("no batch executed degraded despite the open-loop overload burst")
	}
	// Coverage: a chaos run that injected nothing proves nothing.
	for _, site := range faultinject.ServeSites() {
		if inj.Fired(site) == 0 {
			viol.add("site %s never fired (reached %d times)", site, inj.Calls(site))
		}
	}

	fmt.Printf("chaos: requests=%d ok=%d 429=%d 503=%d 500=%d 504=%d degraded=%d distinct_batches=%d\n",
		stats.requests, stats.ok, stats.rejected429, stats.unavailable503,
		stats.internal500, stats.expired504, stats.degraded, len(stats.batchVersion))
	for _, site := range faultinject.ServeSites() {
		fmt.Printf("chaos: site %-22s calls=%-6d fired=%d\n", site, inj.Calls(site), inj.Fired(site))
	}
	fmt.Printf("chaos: breaker transitions=%d state=%v trips=%d shed=%d batch_retries=%d\n",
		len(trs), srv.BreakerState(), tel.Counter(telemetry.CtrServeBreakerTrips),
		tel.Counter(telemetry.CtrServeShed), tel.Counter(telemetry.CtrServeRetries))

	// Surface the overload/breaker counter families from the live /metrics
	// exposition (the CI smoke greps these lines out of the log).
	if resp, err := http.Get(base + "/metrics"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "graphite_serve_") &&
				(strings.Contains(line, "shed") || strings.Contains(line, "breaker") ||
					strings.Contains(line, "degrade") || strings.Contains(line, "retries")) {
				fmt.Printf("chaos: metrics %s\n", line)
			}
		}
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		viol.add("shutdown after soak: %v", err)
	}

	if len(viol.list) > 0 {
		fmt.Printf("chaos: %d invariant violations:\n", len(viol.list))
		for _, v := range viol.list {
			fmt.Printf("chaos:   VIOLATION %s\n", v)
		}
		return 1
	}
	fmt.Println("chaos: invariants ok")
	return 0
}

// postInfer issues one inference request and applies the per-response
// invariant checks: exactly one well-formed answer, consistent batch
// versioning on success, a legal envelope on rejection. w >= 0 identifies
// a closed-loop worker; -1 marks a burst request.
func postInfer(client *http.Client, base string, ids []int32, w int, stats *chaosStats, viol *chaosViolations) {
	body, _ := json.Marshal(map[string]any{"vertices": ids})
	stats.mu.Lock()
	stats.requests++
	stats.mu.Unlock()
	resp, err := client.Post(base+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		// Invariant 2: the server must answer every request.
		viol.add("dropped response (worker %d): %v", w, err)
		return
	}
	rbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var ir struct {
			SnapshotVersion uint64 `json:"snapshot_version"`
			BatchID         uint64 `json:"batch_id"`
			DegradeLevel    int    `json:"degrade_level"`
		}
		if err := json.Unmarshal(rbody, &ir); err != nil {
			viol.add("malformed 200 body: %v", err)
			return
		}
		stats.mu.Lock()
		stats.ok++
		if ir.DegradeLevel > 0 {
			stats.degraded++
		}
		// Invariant 1: one batch, one snapshot version.
		if v, seen := stats.batchVersion[ir.BatchID]; seen && v != ir.SnapshotVersion {
			viol.add("mixed-version batch %d: versions %d and %d", ir.BatchID, v, ir.SnapshotVersion)
		}
		stats.batchVersion[ir.BatchID] = ir.SnapshotVersion
		stats.mu.Unlock()
		return
	}
	code := checkEnvelope(viol, resp, rbody, "infer")
	stats.mu.Lock()
	defer stats.mu.Unlock()
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		stats.rejected429++
	case http.StatusServiceUnavailable:
		stats.unavailable503++
	case http.StatusGatewayTimeout:
		stats.expired504++
	case http.StatusInternalServerError:
		stats.internal500++
	default:
		stats.other++
		viol.add("unexpected status %d (code %q)", resp.StatusCode, code)
	}
}

// checkEnvelope validates invariant 3 on a non-200 response and returns
// the envelope code.
func checkEnvelope(viol *chaosViolations, resp *http.Response, body []byte, op string) string {
	var ae struct {
		Error struct {
			Code         string  `json:"code"`
			Message      string  `json:"message"`
			RetryAfterMS float64 `json:"retry_after_ms"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &ae); err != nil {
		viol.add("%s %d: unparseable error envelope %q", op, resp.StatusCode, body)
		return ""
	}
	if !chaosCodes[ae.Error.Code] {
		viol.add("%s %d: unknown envelope code %q", op, resp.StatusCode, ae.Error.Code)
	}
	if ae.Error.Message == "" {
		viol.add("%s %d: empty envelope message", op, resp.StatusCode)
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		if ae.Error.RetryAfterMS <= 0 || ae.Error.RetryAfterMS > 10_000 {
			viol.add("%s %d: retry_after_ms %g out of (0, 10000]", op, resp.StatusCode, ae.Error.RetryAfterMS)
		}
		ra := resp.Header.Get("Retry-After")
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			viol.add("%s %d: bad Retry-After header %q", op, resp.StatusCode, ra)
		}
	}
	return ae.Error.Code
}
