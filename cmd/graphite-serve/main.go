// Command graphite-serve runs the multi-tenant inference server: an HTTP
// front end over one shared model that coalesces concurrent per-vertex
// requests into mini-batches (max-batch-size / max-linger), applies
// admission control with a bounded queue and per-request deadlines, and
// hot-swaps model snapshots with zero downtime.
//
// Endpoints: POST /v1/infer, POST /v1/swap, GET /v1/checkpoint,
// GET /v1/stats, plus the observability plane (/metrics, /healthz,
// /readyz, /events, /trace, /v1/traces, /debug/pprof/).
//
// Requests are trace-annotated (W3C traceparent in, traceparent echo out)
// and the tail-sampling flight recorder keeps errors, SLO breaches and the
// slowest requests for GET /v1/traces; tune with -trace-sample and
// -trace-slowest.
//
// Under overload the server sheds load adaptively (-shed-target,
// -shed-interval), serves degraded at reduced sampling fanouts
// (-degrade-ladder), and trips a circuit breaker around snapshot
// execution (-breaker-threshold, -breaker-probe, -retry-budget); every
// 429/503 carries a Retry-After header and a retry_after_ms field.
//
// Examples:
//
//	graphite-serve -listen :8080 -model gcn -profile products -vertices 20000
//	graphite-serve -listen :8080 -resume weights.ckpt -fanout 10,10 -slo serve-e2e:0.99:50ms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"graphite/internal/gnn"
	"graphite/internal/graph"
	"graphite/internal/obsrv"
	"graphite/internal/serve"
	"graphite/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphite-serve: ")
	var (
		listen    = flag.String("listen", "127.0.0.1:8080", "host:port to serve on")
		model     = flag.String("model", "gcn", "GNN model: gcn, sage, or gin")
		profile   = flag.String("profile", "products", "dataset profile: products, wikipedia, papers, twitter")
		vertices  = flag.Int("vertices", 20_000, "vertex count of the scaled synthetic graph")
		hidden    = flag.Int("hidden", 256, "hidden feature length")
		classes   = flag.Int("classes", 16, "output classes")
		layers    = flag.Int("layers", 2, "number of GNN layers")
		threads   = flag.Int("threads", 0, "kernel threads per batch (0 = GOMAXPROCS)")
		sparsity  = flag.Float64("sparsity", 0.5, "input feature sparsity")
		seed      = flag.Int64("seed", 1, "random seed (weights, features, sampling)")
		resume    = flag.String("resume", "", "load initial weights from this checkpoint file")
		maxBatch  = flag.Int("max-batch", serve.DefaultMaxBatch, "mini-batch size cap in vertices")
		maxLinger = flag.Duration("max-linger", serve.DefaultMaxLinger, "max wait for a batch to fill before dispatching partial")
		queueCap  = flag.Int("queue-cap", serve.DefaultQueueCap, "admission queue capacity (full queue rejects with 429)")
		workers   = flag.Int("workers", serve.DefaultWorkers, "concurrent batch executors")
		deadline  = flag.Duration("deadline", serve.DefaultDeadline, "default per-request deadline when the client sets none")
		fanout    = flag.String("fanout", "", "comma-separated per-layer sampling fanouts (empty = full neighbourhoods, exact inference)")
		sloFlag   = flag.String("slo", "", "comma-separated latency SLOs, each phase:quantile:threshold (e.g. serve-e2e:0.99:100ms)")
		traceRate = flag.Float64("trace-sample", serve.DefaultTraceSample, "request-trace head-sampling probability (negative disables; sampled traceparent headers always trace)")
		traceKeep = flag.Int("trace-slowest", 0, "slowest-traces pool size of the flight recorder (0 = default)")
		shedTgt   = flag.Duration("shed-target", 0, "queue-sojourn target of the adaptive load shedder (0 = default, negative disables shedding and degradation)")
		shedIvl   = flag.Duration("shed-interval", 0, "sojourn must stay above target this long before shedding starts (0 = default)")
		ladder    = flag.String("degrade-ladder", "", "comma-separated fanout fractions per degradation level, first must be 1.0 (empty = default 1.0,0.5,0.25)")
		brkThresh = flag.Int("breaker-threshold", 0, "consecutive batch failures that open the snapshot circuit breaker (0 = default, negative disables)")
		brkProbe  = flag.Duration("breaker-probe", 0, "wait before an open breaker admits a half-open probe (0 = default)")
		retryBdgt = flag.Float64("retry-budget", 0, "retry tokens earned per successful batch, capped (0 = default, negative disables retries)")
	)
	flag.Parse()

	kind, err := parseModel(*model)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := parseProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	if *layers < 1 {
		log.Fatal("need at least one layer")
	}
	fanouts, err := parseFanouts(*fanout, *layers)
	if err != nil {
		log.Fatal(err)
	}
	var slos []obsrv.SLO
	if *sloFlag != "" {
		if slos, err = obsrv.ParseSLOs(*sloFlag); err != nil {
			log.Fatal(err)
		}
	}
	degradeLadder, err := parseLadder(*ladder)
	if err != nil {
		log.Fatal(err)
	}

	g, err := graph.GenerateProfile(prof, *vertices)
	if err != nil {
		log.Fatal(err)
	}
	fin := prof.InputFeatureLen()
	dims := []int{fin}
	for i := 1; i < *layers; i++ {
		dims = append(dims, *hidden)
	}
	dims = append(dims, *classes)

	net, err := gnn.NewNetwork(gnn.Config{Kind: kind, Dims: dims, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			log.Fatal(err)
		}
		loaded, err := gnn.Load(f)
		f.Close()
		if err != nil {
			log.Fatalf("resuming from %s: %v", *resume, err)
		}
		net = loaded
		fmt.Printf("resumed weights from %s\n", *resume)
	}
	x := tensor.NewMatrix(g.NumVertices(), fin)
	x.FillSparse(rand.New(rand.NewSource(*seed)), 1, *sparsity)

	srv, err := serve.NewServer(serve.Config{
		Net: net, Graph: g, X: x,
		MaxBatch: *maxBatch, MaxLinger: *maxLinger, QueueCap: *queueCap,
		Workers: *workers, Threads: *threads, Fanouts: fanouts,
		Deadline: *deadline, Seed: *seed, SLOs: slos,
		TraceSample:   *traceRate,
		TraceRecorder: obsrv.FlightRecorderConfig{TopK: *traceKeep},
		ShedTarget:    *shedTgt, ShedInterval: *shedIvl, DegradeLadder: degradeLadder,
		BreakerThreshold: *brkThresh, BreakerProbe: *brkProbe, RetryBudget: *retryBdgt,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(*listen); err != nil {
		log.Fatal(err)
	}
	stats := g.Stats()
	fmt.Printf("graph %s: |V|=%d |E|=%d avg-degree=%.1f\n", prof, g.NumVertices(), g.NumEdges(), stats.Mean)
	fmt.Printf("model %s %v (%d parameters), snapshot v%d\n", kind, dims, net.NumParams(), srv.Snapshot().Version)
	fmt.Printf("serving: http://%s/v1/infer (max-batch %d, linger %v, queue %d, workers %d)\n",
		srv.Addr(), *maxBatch, *maxLinger, *queueCap, *workers)
	fmt.Printf("observability: http://%s/metrics (also /healthz /readyz /events /v1/stats /v1/traces)\n", srv.Addr())

	// SIGINT/SIGTERM drain gracefully: readiness flips, in-flight
	// requests finish on their pinned snapshot, then the pipeline stops.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("draining...")
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}

func parseModel(s string) (gnn.Kind, error) {
	switch s {
	case "gcn":
		return gnn.GCN, nil
	case "sage":
		return gnn.SAGE, nil
	case "gin":
		return gnn.GIN, nil
	}
	return 0, fmt.Errorf("unknown model %q (want gcn, sage, or gin)", s)
}

func parseProfile(s string) (graph.Profile, error) {
	switch graph.Profile(s) {
	case graph.Products, graph.Wikipedia, graph.Papers, graph.Twitter:
		return graph.Profile(s), nil
	}
	return "", fmt.Errorf("unknown profile %q", s)
}

func parseLadder(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -degrade-ladder entry %q: %v", p, err)
		}
		out[i] = f
	}
	return out, nil
}

func parseFanouts(s string, layers int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != layers {
		return nil, fmt.Errorf("-fanout has %d entries for %d layers", len(parts), layers)
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad fanout %q: %v", p, err)
		}
		out[i] = n
	}
	return out, nil
}
