// Command graphgen generates the synthetic dataset corpus and inspects
// graph statistics.
//
//	graphgen -profile products -vertices 50000 -out products.el
//	graphgen -stats products.el
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"graphite"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphgen: ")
	var (
		profile  = flag.String("profile", "products", "dataset profile: products, wikipedia, papers, twitter")
		vertices = flag.Int("vertices", 10_000, "vertex count")
		out      = flag.String("out", "", "write the graph as an edge list to this file ('-' for stdout)")
		statsIn  = flag.String("stats", "", "read an edge-list file and print its statistics instead of generating")
	)
	flag.Parse()

	if *statsIn != "" {
		f, err := os.Open(*statsIn)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		g, err := graphite.ReadGraph(f)
		if err != nil {
			log.Fatal(err)
		}
		printStats(*statsIn, g)
		return
	}

	p := graphite.Profile(*profile)
	g, err := graphite.GenerateGraph(p, *vertices)
	if err != nil {
		log.Fatal(err)
	}
	printStats(string(p), g)
	if *out == "" {
		return
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graphite.WriteGraph(w, g); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d edges to %s\n", g.NumEdges(), *out)
	}
}

func printStats(name string, g *graphite.Graph) {
	s := g.Stats()
	fmt.Printf("%s: |V|=%d |E|=%d avg-degree=%.2f max-degree=%d degree-variance=%.1f\n",
		name, g.NumVertices(), g.NumEdges(), s.Mean, s.Max, s.Variance)
}
