// graphite-lint runs the repo's static-analysis suite (internal/lint) over
// the module: the concurrency, determinism, and hot-path invariants the
// paper's performance claims depend on but the compiler never checks.
//
// Usage:
//
//	go run ./cmd/graphite-lint ./...          # whole module, AST checkers
//	go run ./cmd/graphite-lint ./internal/gnn # specific packages
//	go run ./cmd/graphite-lint -list          # describe the checkers
//	go run ./cmd/graphite-lint -json ./...    # findings as ndjson
//
// The compiler-diagnostics engine audits the kernel packages' heap escapes
// and residual bounds checks against committed baselines
// (internal/lint/baseline/*.txt):
//
//	go run ./cmd/graphite-lint -compiler-diag             # diff against baselines
//	go run ./cmd/graphite-lint -compiler-diag -update-baseline
//
// Findings print one per line as file:line: [check-name] message, and the
// process exits 1 when anything is found (2 on load errors). Individual
// findings can be waived in source with:
//
//	//lint:ignore check-name reason the code is actually correct
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"graphite/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the checkers and exit")
	check := flag.String("check", "", "comma-separated checker names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as ndjson (one object per line) instead of text")
	compilerDiag := flag.Bool("compiler-diag", false, "also audit kernel-package escape/bounds-check diagnostics against baselines")
	baselineDir := flag.String("baseline", "", "compiler-diag baseline directory (default: <module>/internal/lint/baseline)")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the compiler-diag baselines from the current build and exit")
	flag.Parse()

	loader, err := lint.NewLoader(".")
	if err != nil {
		fail(err)
	}
	checkers := lint.Checkers(loader.Module)
	if *list {
		for _, c := range checkers {
			fmt.Printf("%-20s %s\n", c.Name(), c.Doc())
		}
		return
	}
	if *baselineDir == "" {
		*baselineDir = filepath.Join(loader.Root, "internal", "lint", "baseline")
	}
	if *updateBaseline {
		if err := updateBaselines(loader.Root, *baselineDir); err != nil {
			fail(err)
		}
		return
	}
	if *check != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*check, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []lint.Checker
		for _, c := range checkers {
			if want[c.Name()] {
				sel = append(sel, c)
				delete(want, c.Name())
			}
		}
		for name := range want {
			fail(fmt.Errorf("unknown checker %q (see -list)", name))
		}
		checkers = sel
	}

	pkgs, err := load(loader, flag.Args())
	if err != nil {
		fail(err)
	}
	findings := lint.Run(pkgs, checkers)
	if *compilerDiag {
		diagFindings, skipped, err := lint.CompilerDiagGate(loader.Root, *baselineDir, lint.CompilerDiagPkgs)
		if err != nil {
			fail(err)
		}
		for _, s := range skipped {
			fmt.Fprintf(os.Stderr, "graphite-lint: compiler-diag skipped %s\n", s)
		}
		findings = append(findings, diagFindings...)
	}
	cwd, _ := os.Getwd()
	for i, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
				findings[i] = f
			}
		}
	}
	if *jsonOut {
		if err := lint.WriteNDJSON(os.Stdout, findings); err != nil {
			fail(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Printf("graphite-lint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// updateBaselines regenerates every gated package's baseline file from the
// current build's diagnostics. The resulting diff is the review artifact:
// added lines are new debt being accepted, removed lines are burn-down.
func updateBaselines(root, dir string) error {
	diags, err := lint.RunCompilerDiag(root, lint.CompilerDiagPkgs)
	if err != nil {
		return err
	}
	for _, rel := range lint.CompilerDiagPkgs {
		path := lint.BaselineFile(dir, rel)
		if err := lint.WriteBaseline(path, lint.NewBaseline(diags[rel])); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "graphite-lint: wrote %s (%d diagnostics)\n", path, len(diags[rel]))
	}
	return nil
}

// load resolves the package patterns. No patterns, ".", or "./..." mean the
// whole module; anything else is a directory path.
func load(loader *lint.Loader, args []string) ([]*lint.Package, error) {
	all := len(args) == 0
	for _, a := range args {
		if a == "./..." || a == "..." || a == "." {
			all = true
		}
	}
	if all {
		return loader.LoadAll()
	}
	var pkgs []*lint.Package
	for _, a := range args {
		abs, err := filepath.Abs(strings.TrimSuffix(a, "/..."))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside module %s", a, loader.Root)
		}
		importPath := loader.Module
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphite-lint:", err)
	os.Exit(2)
}
