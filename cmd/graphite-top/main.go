// Command graphite-top is a terminal monitor for the live observability
// plane: it polls a graphite /metrics endpoint and renders a per-phase
// rate/latency table, throughput gauges, and SLO burn state.
//
//	graphite-top -addr 127.0.0.1:9090
//	graphite-top -addr 127.0.0.1:9090 -interval 2s -count 10
//	graphite-top -addr 127.0.0.1:9090 -once
//
// The exposition is parsed strictly (internal/obsrv.ParseExposition): any
// payload a real Prometheus server would reject makes graphite-top exit
// non-zero, which is how the CI smoke job gates the /metrics contract.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"graphite/internal/obsrv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphite-top: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "host:port of a graphite -listen observability plane")
		interval = flag.Duration("interval", time.Second, "poll interval")
		count    = flag.Int("count", 0, "number of polls before exiting (0 = until interrupted)")
		once     = flag.Bool("once", false, "poll once, print one table, exit (shorthand for -count 1; used as a CI exposition gate)")
		clear    = flag.Bool("clear", true, "redraw in place with ANSI clear between polls")
	)
	flag.Parse()
	polls := *count
	if *once {
		polls = 1
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var prev *frame
	for n := 0; polls == 0 || n < polls; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		cur, err := fetch(client, *addr)
		if err != nil {
			log.Fatal(err)
		}
		if *clear && polls != 1 && n > 0 {
			fmt.Print("\033[H\033[2J")
		}
		render(os.Stdout, cur, prev)
		prev = cur
	}
}

// frame is one parsed poll of the /metrics endpoint.
type frame struct {
	at     time.Time
	expo   *obsrv.Exposition
	phases []string
}

// fetch scrapes and strictly validates one exposition.
func fetch(client *http.Client, addr string) (*frame, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	expo, err := obsrv.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("malformed exposition from %s: %w", addr, err)
	}
	f := &frame{at: time.Now(), expo: expo}
	seen := map[string]bool{}
	for _, s := range expo.Family("graphite_phase_latency_seconds_count") {
		if p := s.Labels["phase"]; p != "" && !seen[p] {
			seen[p] = true
			f.phases = append(f.phases, p)
		}
	}
	sort.Strings(f.phases)
	return f, nil
}

// val reads one sample, defaulting to 0 when absent.
func (f *frame) val(name string, labels map[string]string) float64 {
	v, _ := f.expo.Value(name, labels)
	return v
}

// render prints one monitor frame; prev (may be nil) supplies the count
// deltas behind the RATE/S column.
func render(w *os.File, cur, prev *frame) {
	up := time.Duration(cur.val("graphite_uptime_seconds", nil) * float64(time.Second))
	fmt.Fprintf(w, "graphite-top  scrape %d  up %s  GOMAXPROCS %d  ready=%v\n",
		int64(cur.val("graphite_scrapes_total", nil)),
		up.Round(time.Second),
		int64(cur.val("graphite_gomaxprocs", nil)),
		cur.val("graphite_ready", nil) == 1)
	fmt.Fprintf(w, "throughput  %s vertices/s  %s edges/s  %s bytes/s\n\n",
		compact(cur.val("graphite_throughput_vertices_per_second", nil)),
		compact(cur.val("graphite_throughput_edges_per_second", nil)),
		compact(cur.val("graphite_throughput_bytes_per_second", nil)))

	fmt.Fprintf(w, "%-24s %10s %10s %9s %9s %9s %9s\n",
		"PHASE", "COUNT", "RATE/S", "P50", "P95", "P99", "INFLIGHT")
	for _, phase := range cur.phases {
		pl := map[string]string{"phase": phase}
		n := cur.val("graphite_phase_latency_seconds_count", pl)
		rate := "-"
		if prev != nil {
			if dt := cur.at.Sub(prev.at).Seconds(); dt > 0 {
				d := n - prev.val("graphite_phase_latency_seconds_count", pl)
				rate = compact(d / dt)
			}
		}
		q := func(qv string) string {
			return durCell(cur.val("graphite_phase_latency_quantile_seconds",
				map[string]string{"phase": phase, "quantile": qv}))
		}
		fmt.Fprintf(w, "%-24s %10d %10s %9s %9s %9s %9d\n",
			phase, int64(n), rate, q("0.5"), q("0.95"), q("0.99"),
			int64(cur.val("graphite_phase_inflight_spans", pl)))
	}

	slos := cur.expo.Family("graphite_slo_burn_rate")
	if len(slos) > 0 {
		fmt.Fprintln(w)
		for _, s := range slos {
			pl := s.Labels
			state := "ok"
			if cur.val("graphite_slo_breach", pl) == 1 {
				state = "BREACH"
			}
			fmt.Fprintf(w, "slo  %s p%s < %s: now %s  burn %.2f  %s\n",
				pl["phase"], pl["quantile"],
				durCell(cur.val("graphite_slo_threshold_seconds", pl)),
				durCell(cur.val("graphite_slo_quantile_seconds", pl)),
				cur.val("graphite_slo_burn_rate", pl), state)
		}
	}
}

// durCell renders a seconds value as a compact duration table cell.
func durCell(secs float64) string {
	if secs == 0 {
		return "-"
	}
	d := time.Duration(secs * float64(time.Second))
	switch {
	case d < time.Microsecond:
		return d.String()
	case d < time.Millisecond:
		return d.Round(10 * time.Nanosecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(10 * time.Millisecond).String()
	}
}

// compact renders a rate with SI-style suffixes.
func compact(v float64) string {
	switch {
	case v >= 1e9:
		return strconv.FormatFloat(v/1e9, 'f', 2, 64) + "G"
	case v >= 1e6:
		return strconv.FormatFloat(v/1e6, 'f', 2, 64) + "M"
	case v >= 1e3:
		return strconv.FormatFloat(v/1e3, 'f', 2, 64) + "k"
	default:
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
}
