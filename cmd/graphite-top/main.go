// Command graphite-top is a terminal monitor for the live observability
// plane: it polls a graphite /metrics endpoint and renders a per-phase
// rate/latency table, throughput gauges, and SLO burn state.
//
//	graphite-top -addr 127.0.0.1:9090
//	graphite-top -addr 127.0.0.1:9090 -interval 2s -count 10
//	graphite-top -addr 127.0.0.1:9090 -once
//	graphite-top -addr 127.0.0.1:9090 -traces 5
//
// Against a serving instance the default table pins the serve phases
// (serve-queue, serve-batch, serve-e2e) and adds a serve line with queue
// depth and draining state; -traces N appends the N slowest retained
// request traces from /v1/traces with their per-phase latency attribution.
//
// The exposition is parsed strictly (internal/obsrv.ParseExposition): any
// payload a real Prometheus server would reject makes graphite-top exit
// non-zero, which is how the CI smoke job gates the /metrics contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"graphite/internal/obsrv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphite-top: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "host:port of a graphite -listen observability plane")
		interval = flag.Duration("interval", time.Second, "poll interval")
		count    = flag.Int("count", 0, "number of polls before exiting (0 = until interrupted)")
		once     = flag.Bool("once", false, "poll once, print one table, exit (shorthand for -count 1; used as a CI exposition gate)")
		clear    = flag.Bool("clear", true, "redraw in place with ANSI clear between polls")
		traces   = flag.Int("traces", 0, "also show the N slowest retained request traces from /v1/traces")
	)
	flag.Parse()
	polls := *count
	if *once {
		polls = 1
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var prev *frame
	for n := 0; polls == 0 || n < polls; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		cur, err := fetch(client, *addr)
		if err != nil {
			log.Fatal(err)
		}
		if *clear && polls != 1 && n > 0 {
			fmt.Print("\033[H\033[2J")
		}
		render(os.Stdout, cur, prev)
		if *traces > 0 {
			if err := renderTraces(os.Stdout, client, *addr, *traces); err != nil {
				log.Fatal(err)
			}
		}
		prev = cur
	}
}

// frame is one parsed poll of the /metrics endpoint.
type frame struct {
	at     time.Time
	expo   *obsrv.Exposition
	phases []string
}

// fetch scrapes and strictly validates one exposition.
func fetch(client *http.Client, addr string) (*frame, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	expo, err := obsrv.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("malformed exposition from %s: %w", addr, err)
	}
	f := &frame{at: time.Now(), expo: expo}
	seen := map[string]bool{}
	for _, s := range expo.Family("graphite_phase_latency_seconds_count") {
		if p := s.Labels["phase"]; p != "" && !seen[p] {
			seen[p] = true
			f.phases = append(f.phases, p)
		}
	}
	if f.serving() {
		// A serving plane always shows its pipeline phases, even before the
		// first request populates their histograms.
		for _, p := range []string{"serve-queue", "serve-batch", "serve-e2e"} {
			if !seen[p] {
				seen[p] = true
				f.phases = append(f.phases, p)
			}
		}
	}
	sort.Strings(f.phases)
	return f, nil
}

// serving reports whether the scraped plane is an inference server (the
// serve gauges only exist there).
func (f *frame) serving() bool {
	_, ok := f.expo.Value("graphite_serve_queue_capacity", nil)
	return ok
}

// val reads one sample, defaulting to 0 when absent.
func (f *frame) val(name string, labels map[string]string) float64 {
	v, _ := f.expo.Value(name, labels)
	return v
}

// render prints one monitor frame; prev (may be nil) supplies the count
// deltas behind the RATE/S column.
func render(w *os.File, cur, prev *frame) {
	up := time.Duration(cur.val("graphite_uptime_seconds", nil) * float64(time.Second))
	fmt.Fprintf(w, "graphite-top  scrape %d  up %s  GOMAXPROCS %d  ready=%v\n",
		int64(cur.val("graphite_scrapes_total", nil)),
		up.Round(time.Second),
		int64(cur.val("graphite_gomaxprocs", nil)),
		cur.val("graphite_ready", nil) == 1)
	fmt.Fprintf(w, "throughput  %s vertices/s  %s edges/s  %s bytes/s\n",
		compact(cur.val("graphite_throughput_vertices_per_second", nil)),
		compact(cur.val("graphite_throughput_edges_per_second", nil)),
		compact(cur.val("graphite_throughput_bytes_per_second", nil)))
	if cur.serving() {
		state := "serving"
		if cur.val("graphite_serve_draining", nil) == 1 {
			state = "DRAINING"
		}
		fmt.Fprintf(w, "serve       queue %d/%d  inflight %d  snapshot v%d  traces %d/%d kept  %s\n",
			int64(cur.val("graphite_serve_queue_depth", nil)),
			int64(cur.val("graphite_serve_queue_capacity", nil)),
			int64(cur.val("graphite_serve_inflight_batches", nil)),
			int64(cur.val("graphite_serve_snapshot_version", nil)),
			int64(cur.val("graphite_serve_traces_kept", nil)),
			int64(cur.val("graphite_serve_traces_recorded", nil)),
			state)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-24s %10s %10s %9s %9s %9s %9s\n",
		"PHASE", "COUNT", "RATE/S", "P50", "P95", "P99", "INFLIGHT")
	for _, phase := range cur.phases {
		pl := map[string]string{"phase": phase}
		n := cur.val("graphite_phase_latency_seconds_count", pl)
		rate := "-"
		if prev != nil {
			if dt := cur.at.Sub(prev.at).Seconds(); dt > 0 {
				d := n - prev.val("graphite_phase_latency_seconds_count", pl)
				rate = compact(d / dt)
			}
		}
		q := func(qv string) string {
			return durCell(cur.val("graphite_phase_latency_quantile_seconds",
				map[string]string{"phase": phase, "quantile": qv}))
		}
		fmt.Fprintf(w, "%-24s %10d %10s %9s %9s %9s %9d\n",
			phase, int64(n), rate, q("0.5"), q("0.95"), q("0.99"),
			int64(cur.val("graphite_phase_inflight_spans", pl)))
	}

	slos := cur.expo.Family("graphite_slo_burn_rate")
	if len(slos) > 0 {
		fmt.Fprintln(w)
		for _, s := range slos {
			pl := s.Labels
			state := "ok"
			if cur.val("graphite_slo_breach", pl) == 1 {
				state = "BREACH"
			}
			fmt.Fprintf(w, "slo  %s p%s < %s: now %s  burn %.2f  %s\n",
				pl["phase"], pl["quantile"],
				durCell(cur.val("graphite_slo_threshold_seconds", pl)),
				durCell(cur.val("graphite_slo_quantile_seconds", pl)),
				cur.val("graphite_slo_burn_rate", pl), state)
		}
	}
}

// durCell renders a seconds value as a compact duration table cell.
func durCell(secs float64) string {
	if secs == 0 {
		return "-"
	}
	d := time.Duration(secs * float64(time.Second))
	switch {
	case d < time.Microsecond:
		return d.String()
	case d < time.Millisecond:
		return d.Round(10 * time.Nanosecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(10 * time.Millisecond).String()
	}
}

// recTrace is the subset of the /v1/traces full-tree JSON the slowest
// view needs.
type recTrace struct {
	TraceID    string `json:"trace_id"`
	DurationNS int64  `json:"duration_ns"`
	Status     string `json:"status"`
	Reason     string `json:"reason"`
	Spans      []struct {
		Name string `json:"name"`
		Dur  int64  `json:"duration_ns"`
	} `json:"spans"`
}

// renderTraces fetches and prints the n slowest retained request traces,
// each with its top phase-latency contributors.
func renderTraces(w *os.File, client *http.Client, addr string, n int) error {
	resp, err := client.Get(fmt.Sprintf("http://%s/v1/traces?slowest=%d", addr, n))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		fmt.Fprintln(w, "\ntraces: not available (tracing not enabled on this plane)")
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/traces: %s", resp.Status)
	}
	var traces []recTrace
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		return fmt.Errorf("malformed /v1/traces payload from %s: %w", addr, err)
	}
	fmt.Fprintf(w, "\n%-34s %9s %-18s %-8s %s\n", "SLOWEST TRACES", "DUR", "STATUS", "REASON", "BREAKDOWN")
	for _, tr := range traces {
		status := tr.Status
		if status == "" {
			status = "ok"
		}
		fmt.Fprintf(w, "%-34s %9s %-18s %-8s %s\n",
			tr.TraceID, durCell(float64(tr.DurationNS)/1e9), status, tr.Reason, breakdown(tr))
	}
	if len(traces) == 0 {
		fmt.Fprintln(w, "(no traces retained yet)")
	}
	return nil
}

// breakdown sums span time by phase (the root span excluded — it is the
// whole request) and renders the top three contributors.
func breakdown(tr recTrace) string {
	totals := map[string]int64{}
	for _, sp := range tr.Spans {
		if sp.Name == "serve-e2e" {
			continue
		}
		totals[sp.Name] += sp.Dur
	}
	type kv struct {
		name string
		ns   int64
	}
	order := make([]kv, 0, len(totals))
	for name, ns := range totals {
		order = append(order, kv{name, ns})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].ns > order[j].ns })
	if len(order) > 3 {
		order = order[:3]
	}
	out := ""
	for i, e := range order {
		if i > 0 {
			out += "  "
		}
		out += e.name + " " + durCell(float64(e.ns)/1e9)
	}
	return out
}

// compact renders a rate with SI-style suffixes.
func compact(v float64) string {
	switch {
	case v >= 1e9:
		return strconv.FormatFloat(v/1e9, 'f', 2, 64) + "G"
	case v >= 1e6:
		return strconv.FormatFloat(v/1e6, 'f', 2, 64) + "M"
	case v >= 1e3:
		return strconv.FormatFloat(v/1e3, 'f', 2, 64) + "k"
	default:
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
}
