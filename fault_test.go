package graphite_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	graphite "graphite"
)

func faultEngine(t *testing.T, impl graphite.Implementation) (*graphite.Engine, *graphite.Workload) {
	t.Helper()
	eng, err := graphite.NewEngine(graphite.Config{
		Model:   graphite.GCN,
		Dims:    []int{8, 16, 4},
		Impl:    impl,
		Threads: 4,
		Seed:    5,
		Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graphite.GenerateGraph(graphite.ProfileProducts, 300)
	if err != nil {
		t.Fatal(err)
	}
	x := graphite.RandomFeatures(g.NumVertices(), 8, 0.5, 6)
	w, err := eng.NewWorkload(g, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, w
}

// TestInferContainsWorkerPanic is the end-to-end panic-containment
// acceptance test: a workload whose CSR is corrupted after validation (a
// column index pointing past the feature matrix) panics inside a scheduler
// worker goroutine; Engine.Infer must return an error wrapping a
// *graphite.WorkerError — with the worker id, chunk bounds, and the
// worker's stack — the process must survive, and the recovered-panic
// telemetry counter must increment.
func TestInferContainsWorkerPanic(t *testing.T) {
	for _, impl := range []graphite.Implementation{graphite.Basic, graphite.Combined, graphite.DistGNNBaseline} {
		eng, w := faultEngine(t, impl)
		// Shape-corrupt the workload behind the loader's back: vertex 40's
		// first edge now gathers a feature row that does not exist.
		w.G.Col[w.G.Ptr[40]] = 1 << 28

		logits, err := eng.Infer(w)
		if err == nil {
			t.Fatalf("%v: corrupted workload inferred successfully (%d rows)", impl, logits.Rows)
		}
		var we *graphite.WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("%v: err = %v (%T), want a wrapped *graphite.WorkerError", impl, err, err)
		}
		if we.Worker < 0 {
			t.Errorf("%v: worker id %d not populated", impl, we.Worker)
		}
		// Chunk bounds are only known for chunk-scheduled kernels; fused
		// variants run whole thread bodies (the cursor lives inside), so
		// their WorkerError reports no range.
		if impl != graphite.Combined && impl != graphite.Fusion && !(we.Start <= 40 && 40 < we.End) {
			t.Errorf("%v: chunk [%d,%d) does not cover the corrupted vertex 40", impl, we.Start, we.End)
		}
		if len(we.Stack) == 0 {
			t.Errorf("%v: no worker stack captured", impl)
		}
		if we.Recovered == nil {
			t.Errorf("%v: recovered value missing", impl)
		}
		if got := eng.Metrics().Counters["graphite_panics_recovered_total"]; got < 1 {
			t.Errorf("%v: panics-recovered counter = %d, want >= 1", impl, got)
		}
	}
}

// TestInferContextCancellation: cancelling an in-flight public-API
// inference aborts with ctx's error at chunk granularity.
func TestInferContextCancellation(t *testing.T) {
	eng, w := faultEngine(t, graphite.Basic)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.InferContext(ctx, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The background-context path still works on the same engine.
	if _, err := eng.Infer(w); err != nil {
		t.Fatalf("background inference after cancelled one: %v", err)
	}
}

// TestTrainInterruptCheckpointRoundTrip drives checkpoint-on-interrupt
// through the public API: cancel a long TrainContext, save a checkpoint,
// and load it into a fresh engine of the same configuration.
func TestTrainInterruptCheckpointRoundTrip(t *testing.T) {
	cfg := graphite.Config{Model: graphite.GCN, Dims: []int{8, 16, 4}, Impl: graphite.Basic, Threads: 2, Seed: 5}
	eng, err := graphite.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graphite.GenerateGraph(graphite.ProfileProducts, 200)
	if err != nil {
		t.Fatal(err)
	}
	x := graphite.RandomFeatures(g.NumVertices(), 8, 0.5, 6)
	labels := make([]int32, g.NumVertices())
	for i := range labels {
		labels[i] = int32(i % 4)
	}
	w, err := eng.NewWorkload(g, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.NewTrainer(w)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	results, err := tr.TrainContext(ctx, 100_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainContext err = %v after %d epochs, want context.Canceled", err, len(results))
	}
	if len(results) != tr.CompletedEpochs() {
		t.Fatalf("results %d != completed epochs %d", len(results), tr.CompletedEpochs())
	}

	var ckpt bytes.Buffer
	if err := eng.SaveCheckpoint(&ckpt); err != nil {
		t.Fatalf("checkpoint after interrupt: %v", err)
	}
	fresh, err := graphite.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("loading interrupt checkpoint: %v", err)
	}
	// Both engines now hold the same weights: logits must agree exactly.
	a, err := eng.Infer(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Infer(w)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.Rows; v++ {
		ra, rb := a.Row(v), b.Row(v)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("logits diverge at (%d,%d): %g vs %g", v, j, ra[j], rb[j])
			}
		}
	}
}

// TestLoadCheckpointRejectsMismatchedEngine: a checkpoint only loads into
// an engine whose configuration matches its architecture.
func TestLoadCheckpointRejectsMismatchedEngine(t *testing.T) {
	eng, err := graphite.NewEngine(graphite.Config{Model: graphite.GCN, Dims: []int{8, 16, 4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := eng.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	other, err := graphite.NewEngine(graphite.Config{Model: graphite.GCN, Dims: []int{8, 32, 4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = other.LoadCheckpoint(bytes.NewReader(ckpt.Bytes()))
	if err == nil {
		t.Fatal("dimension-mismatched checkpoint accepted")
	}
	if !strings.Contains(err.Error(), "layer") {
		t.Fatalf("error does not name the mismatched layer: %v", err)
	}
}
