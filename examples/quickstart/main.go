// Quickstart: build a small graph by hand, run GCN inference with the full
// Graphite software stack (fusion + compression), and print each vertex's
// predicted class.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"graphite"
)

func main() {
	// A toy co-purchase graph: 6 products, edges mean "customers who
	// bought v also bought u" (v aggregates u's features).
	src := []int32{0, 0, 1, 1, 2, 3, 3, 4, 5, 5}
	dst := []int32{1, 2, 0, 3, 0, 1, 4, 3, 3, 4}
	g, err := graphite.NewGraphFromEdges(6, src, dst)
	if err != nil {
		log.Fatal(err)
	}

	// Three-dimensional input features per product, e.g. price bucket,
	// rating, popularity.
	x := graphite.NewMatrix(6, 3)
	features := [][]float32{
		{0.9, 0.1, 0.4},
		{0.8, 0.2, 0.5},
		{0.1, 0.9, 0.2},
		{0.2, 0.8, 0.3},
		{0.4, 0.5, 0.9},
		{0.5, 0.4, 0.8},
	}
	for v, row := range features {
		copy(x.Row(v), row)
	}

	// Two-layer GCN: 3 input features -> 8 hidden -> 2 classes, executed
	// with layer fusion + feature compression (the paper's "combined").
	eng, err := graphite.NewEngine(graphite.Config{
		Model: graphite.GCN,
		Dims:  []int{3, 8, 2},
		Impl:  graphite.Combined,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, err := eng.NewWorkload(g, x, nil)
	if err != nil {
		log.Fatal(err)
	}
	logits, err := eng.Infer(w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("vertex  class  logits")
	for v := 0; v < g.NumVertices(); v++ {
		row := logits.Row(v)
		best := 0
		if row[1] > row[0] {
			best = 1
		}
		fmt.Printf("%4d    %3d    [%+.3f %+.3f]\n", v, best, row[0], row[1])
	}
}
