// Train a GraphSAGE node classifier full-batch on a synthetic citation
// graph (the papers profile), with community-correlated labels so there is
// real signal to learn, semi-supervised labeling (40% of vertices), and the
// locality-reordered combined implementation — the paper's full software
// training configuration.
//
//	go run ./examples/train_citation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"graphite"
)

const (
	numVertices = 4000
	numClasses  = 4
	inputFeats  = 32
	labeledFrac = 0.4
	epochs      = 30
)

func main() {
	g, err := graphite.GenerateGraph(graphite.ProfilePapers, numVertices)
	if err != nil {
		log.Fatal(err)
	}
	s := g.Stats()
	fmt.Printf("citation graph: %d papers, %d citations, avg degree %.1f\n",
		g.NumVertices(), g.NumEdges(), s.Mean)

	// Ground-truth classes correlate with graph neighbourhoods: a vertex
	// usually shares its class with the majority of its citations, which
	// is the homophily a GNN exploits.
	rng := rand.New(rand.NewSource(7))
	truth := make([]int32, numVertices)
	for v := range truth {
		truth[v] = int32(rng.Intn(numClasses))
	}
	for pass := 0; pass < 3; pass++ {
		for v := 0; v < numVertices; v++ {
			counts := make([]int, numClasses)
			counts[truth[v]] += 2
			for _, u := range g.Neighbors(v) {
				counts[truth[u]]++
			}
			best := 0
			for c, n := range counts {
				if n > counts[best] {
					best = c
				}
			}
			truth[v] = int32(best)
		}
	}

	// Features: a noisy embedding of the class plus random dimensions.
	x := graphite.RandomFeatures(numVertices, inputFeats, 0, 7)
	for v := 0; v < numVertices; v++ {
		row := x.Row(v)
		row[truth[v]] += 2.5 // class-informative coordinate, with noise
	}

	// Semi-supervised: only 40% of vertices reveal their label; the rest
	// are -1 (unlabeled) and are scored as a held-out set.
	labels := make([]int32, numVertices)
	heldOut := make([]int32, numVertices)
	for v := range labels {
		if rng.Float64() < labeledFrac {
			labels[v] = truth[v]
			heldOut[v] = -1
		} else {
			labels[v] = -1
			heldOut[v] = truth[v]
		}
	}

	eng, err := graphite.NewEngine(graphite.Config{
		Model:         graphite.SAGE,
		Dims:          []int{inputFeats, 32, numClasses},
		Impl:          graphite.Combined,
		LocalityOrder: true,
		LearningRate:  0.6,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, err := eng.NewWorkload(g, x, labels)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := eng.NewTrainer(w)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	for e := 0; e < epochs; e++ {
		res, err := tr.Epoch()
		if err != nil {
			log.Fatal(err)
		}
		if e%5 == 0 || e == epochs-1 {
			fmt.Printf("epoch %2d: loss %.4f train-acc %.3f\n", e, res.Loss, res.Accuracy)
		}
	}
	fmt.Printf("trained %d epochs in %v\n", epochs, time.Since(start).Round(time.Millisecond))

	// Score the unlabeled (held-out) vertices.
	logits, err := eng.Infer(w)
	if err != nil {
		log.Fatal(err)
	}
	acc := graphite.Accuracy(logits, heldOut)
	fmt.Printf("held-out accuracy on %d%% unlabeled vertices: %.3f\n",
		int(100*(1-labeledFrac)), acc)
	if acc < 0.5 {
		log.Fatalf("model failed to learn (held-out accuracy %.3f)", acc)
	}
}
