// Demonstrate the temporal-locality vertex reordering (paper §4.4,
// Algorithm 3): compare the cache hit rate and wall-clock training time of
// the natural order, randomized orders, and the locality reorder on a
// products-profile graph whose community structure is hidden behind a
// random labeling — the situation where the reordering shines.
//
//	go run ./examples/reordering
package main

import (
	"fmt"
	"log"
	"time"

	"graphite"
	"graphite/internal/gnn"
	"graphite/internal/locality"
)

const (
	numVertices = 8000
	features    = 64
	epochs      = 3
)

func main() {
	g, err := graphite.GenerateGraph(graphite.ProfileProducts, numVertices)
	if err != nil {
		log.Fatal(err)
	}
	s := g.Stats()
	fmt.Printf("products-profile graph: |V|=%d |E|=%d avg degree %.1f\n",
		g.NumVertices(), g.NumEdges(), s.Mean)

	// First, the reuse-distance oracle: hit rate of an LRU cache holding
	// 128 feature vectors while aggregating in each order.
	orders := []struct {
		name  string
		order []int32
	}{
		{"natural", locality.Identity(g.NumVertices())},
		{"randomized", locality.Randomized(g.NumVertices(), 1)},
		{"locality (Alg. 3)", locality.Reorder(g)},
	}
	fmt.Println("\nLRU(128 rows) hit rate during aggregation:")
	for _, o := range orders {
		hr, err := locality.HitRate(g, o.order, 128)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %.3f\n", o.name, hr)
	}

	// Then wall-clock: train the combined implementation for a few epochs
	// under each order.
	x := graphite.RandomFeatures(numVertices, features, 0.5, 2)
	labels := make([]int32, numVertices)
	for i := range labels {
		labels[i] = int32(i % 8)
	}
	w, err := gnn.NewWorkload(g, gnn.GCN, x, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwall-clock, %d training epochs of combined GCN:\n", epochs)
	for _, o := range orders {
		net, err := gnn.NewNetwork(gnn.Config{Kind: gnn.GCN, Dims: []int{features, 64, 8}, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := gnn.NewTrainer(net, w, gnn.RunOptions{Impl: gnn.ImplCombined, Order: o.order}, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := tr.Train(epochs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %v\n", o.name, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nAlgorithm 3 groups each vertex under its highest-degree neighbour, so")
	fmt.Println("vertices sharing hub neighbours are processed back to back and the hub")
	fmt.Println("features stay cached (§4.4). Its O(|V|+|E|) cost amortises over epochs.")
}
