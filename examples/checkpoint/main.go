// Demonstrate training checkpoints: train a GCN for a few epochs, save the
// network to disk, reload it in a "fresh process", verify the restored
// model produces identical logits, and continue training from the
// checkpoint. Full-batch epochs on 100M-vertex graphs take minutes each at
// paper scale, so resumability matters.
//
// This example reaches into internal/gnn for the checkpoint API.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"graphite/internal/gnn"
	"graphite/internal/graph"
	"graphite/internal/tensor"
)

func main() {
	const n = 1500
	g, err := graph.GenerateProfile(graph.Products, n)
	if err != nil {
		log.Fatal(err)
	}
	// Homophilous labels (majority class among neighbours) so the GNN has
	// graph signal to learn, plus a noisy class-informative feature.
	rng := rand.New(rand.NewSource(1))
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(rng.Intn(4))
	}
	for pass := 0; pass < 2; pass++ {
		for v := 0; v < n; v++ {
			var counts [4]int
			counts[labels[v]] += 2
			for _, u := range g.Neighbors(v) {
				counts[labels[u]]++
			}
			best := 0
			for c, k := range counts {
				if k > counts[best] {
					best = c
				}
			}
			labels[v] = int32(best)
		}
	}
	x := tensor.NewMatrix(n, 16)
	x.FillRandom(rng, 1)
	for i := range labels {
		x.Row(i)[labels[i]] += 2
	}
	w, err := gnn.NewWorkload(g, gnn.GCN, x, labels)
	if err != nil {
		log.Fatal(err)
	}
	net, err := gnn.NewNetwork(gnn.Config{Kind: gnn.GCN, Dims: []int{16, 24, 4}, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	opts := gnn.RunOptions{Impl: gnn.ImplCombined}

	tr, err := gnn.NewTrainer(net, w, opts, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	var last gnn.EpochResult
	for e := 0; e < 8; e++ {
		if last, err = tr.Epoch(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after 8 epochs: loss %.4f acc %.3f\n", last.Loss, last.Accuracy)

	// Checkpoint to disk.
	path := filepath.Join(os.TempDir(), "graphite-checkpoint.bin")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("checkpoint written: %s (%d bytes for %d parameters)\n", path, info.Size(), net.NumParams())

	// "New process": reload and verify bit-identical logits.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := gnn.Load(rf)
	if err != nil {
		log.Fatal(err)
	}
	rf.Close()
	os.Remove(path)

	orig, err := gnn.Infer(net, w, opts)
	if err != nil {
		log.Fatal(err)
	}
	rest, err := gnn.Infer(restored, w, opts)
	if err != nil {
		log.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(orig.Logits(), rest.Logits()); d != 0 {
		log.Fatalf("restored model diverges by %g", d)
	}
	fmt.Println("restored model reproduces the original logits exactly")

	// Resume training from the checkpoint.
	tr2, err := gnn.NewTrainer(restored, w, opts, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	var resumed gnn.EpochResult
	for e := 0; e < 8; e++ {
		if resumed, err = tr2.Epoch(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after 8 more epochs from the checkpoint: loss %.4f acc %.3f\n", resumed.Loss, resumed.Accuracy)
	if resumed.Loss >= last.Loss {
		log.Fatal("resumed training made no progress")
	}
}
